// Command reproserve runs the concurrent query service (internal/server)
// behind a line-oriented protocol, either over stdin/stdout or as a TCP
// server with one session per connection. The workload catalog is TPC-H;
// the named TPC-H queries are preregistered and ad-hoc SQL is accepted.
//
// Usage:
//
//	reproserve                         # interactive, stdin/stdout
//	reproserve -listen :7878           # TCP; try: nc localhost 7878
//	echo 'run SELECT ... FROM ...' | reproserve
//
// The plan cache is bounded with -max-entries (LRU) and -ttl (idle expiry);
// eviction is safe because learned statistics live in the server-wide
// statistics plane and warm-start re-admitted entries. On SIGINT/SIGTERM the
// server shuts down gracefully: it stops accepting connections, drains
// in-flight executions through the admission semaphore, and writes the final
// metrics report to stderr.
//
// Protocol (one command per line; see internal/server/proto.go):
//
//	query q5 Q5          bind the named TPC-H Q5 as statement "q5"
//	prepare s1 SELECT... parse and bind ad-hoc SQL
//	exec q5              execute (feeds cardinalities back to the cache)
//	rows s1              execute and stream result rows
//	run SELECT...        one-shot prepare + exec
//	explain q5           show the current cached plan
//	metrics              cache hit/miss, repair vs full-opt, stats plane
//	quit
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/tpch"
)

func main() {
	listen := flag.String("listen", "", "TCP listen address (e.g. :7878); empty serves stdin/stdout")
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	skew := flag.Float64("skew", 0, "TPC-H Zipf skew on foreign keys")
	parallelism := flag.Int("parallelism", 1, "executor pipeline workers per query; <= 1 is serial")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission bound on concurrently executing queries; 0 sizes it against parallelism")
	maxEntries := flag.Int("max-entries", 0, "plan cache entry bound (LRU eviction); 0 is unbounded")
	ttl := flag.Duration("ttl", 0, "plan cache idle expiry (e.g. 10m); 0 never expires")
	flag.Parse()

	cat := tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: 42, Skew: *skew})
	srv, err := repro.NewServer(cat, repro.ServerOptions{
		Parallelism:   *parallelism,
		MaxConcurrent: *maxConcurrent,
		MaxEntries:    *maxEntries,
		TTL:           *ttl,
		Dict:          tpch.Dict(),
		Date:          tpch.Date,
		Named:         tpch.Queries(),
	})
	if err != nil {
		log.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *listen == "" {
		done := make(chan error, 1)
		go func() { done <- srv.ServeConn(stdio{}) }()
		select {
		case err := <-done:
			if err != nil {
				log.Fatal(err)
			}
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "reproserve: %v, draining in-flight executions\n", s)
		}
		shutdown(srv)
		return
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reproserve: listening on %s (sf=%g, parallelism=%d, max-entries=%d, ttl=%v)\n",
		l.Addr(), *sf, *parallelism, *maxEntries, *ttl)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "reproserve: %v, stop accepting, draining in-flight executions\n", s)
		l.Close()
	}()
	if err := srv.ServeListener(l); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal(err)
	}
	shutdown(srv)
}

// shutdown drains the admission semaphore and flushes the final metrics
// report: the cache and statistics-plane counters a long-running serve
// accumulated, written where an operator (or test harness) can collect them.
func shutdown(srv *repro.Server) {
	start := time.Now()
	srv.Shutdown()
	fmt.Fprintf(os.Stderr, "reproserve: drained in %v, final metrics:\n%s",
		time.Since(start).Round(time.Millisecond), srv.Metrics())
}

// stdio glues stdin and stdout into one io.ReadWriter for ServeConn.
type stdio struct{}

func (stdio) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdio) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

var _ io.ReadWriter = stdio{}
