// Command reproserve runs the concurrent query service (internal/server)
// behind a line-oriented protocol, either over stdin/stdout or as a TCP
// server with one session per connection. The workload catalog is TPC-H;
// the named TPC-H queries are preregistered and ad-hoc SQL is accepted.
//
// Usage:
//
//	reproserve                         # interactive, stdin/stdout
//	reproserve -listen :7878           # TCP; try: nc localhost 7878
//	echo 'run SELECT ... FROM ...' | reproserve
//
// Protocol (one command per line; see internal/server/proto.go):
//
//	query q5 Q5          bind the named TPC-H Q5 as statement "q5"
//	prepare s1 SELECT... parse and bind ad-hoc SQL
//	exec q5              execute (feeds cardinalities back to the cache)
//	rows s1              execute and stream result rows
//	run SELECT...        one-shot prepare + exec
//	explain q5           show the current cached plan
//	metrics              cache hit/miss, repair vs full-opt counters
//	quit
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"

	"repro"
	"repro/internal/tpch"
)

func main() {
	listen := flag.String("listen", "", "TCP listen address (e.g. :7878); empty serves stdin/stdout")
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	skew := flag.Float64("skew", 0, "TPC-H Zipf skew on foreign keys")
	parallelism := flag.Int("parallelism", 1, "executor pipeline workers per query; <= 1 is serial")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission bound on concurrently executing queries; 0 sizes it against parallelism")
	flag.Parse()

	cat := tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: 42, Skew: *skew})
	srv, err := repro.NewServer(cat, repro.ServerOptions{
		Parallelism:   *parallelism,
		MaxConcurrent: *maxConcurrent,
		Dict:          tpch.Dict(),
		Date:          tpch.Date,
		Named:         tpch.Queries(),
	})
	if err != nil {
		log.Fatal(err)
	}

	if *listen == "" {
		if err := srv.ServeConn(stdio{}); err != nil {
			log.Fatal(err)
		}
		return
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reproserve: listening on %s (sf=%g, parallelism=%d)\n",
		l.Addr(), *sf, *parallelism)
	if err := srv.ServeListener(l); err != nil {
		log.Fatal(err)
	}
}

// stdio glues stdin and stdout into one io.ReadWriter for ServeConn.
type stdio struct{}

func (stdio) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdio) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

var _ io.ReadWriter = stdio{}
