// Command reproserve runs the concurrent query service (internal/server)
// behind a line-oriented protocol, either over stdin/stdout or as a TCP
// server with one session per connection. The workload catalog is TPC-H;
// the named TPC-H queries are preregistered and ad-hoc SQL is accepted.
//
// Usage:
//
//	reproserve                         # interactive, stdin/stdout
//	reproserve -listen :7878           # TCP; try: nc localhost 7878
//	echo 'run SELECT ... FROM ...' | reproserve
//
// The plan cache is bounded with -max-entries (LRU) and -ttl (idle expiry);
// eviction is safe because learned statistics live in the server-wide
// statistics plane and warm-start re-admitted entries. On SIGINT/SIGTERM the
// server shuts down gracefully: it stops accepting connections, drains
// in-flight executions through the admission semaphore, and writes the final
// metrics report to stderr.
//
// The statistics plane itself survives restarts and forgets gracefully:
//
//   - -stats-file PATH loads a statistics snapshot on boot (a missing file
//     is a cold start) and saves one on graceful shutdown, rotating it into
//     place atomically (write-to-temp + rename) so a crash mid-save never
//     corrupts the previous snapshot. Restarting with the same -stats-file
//     re-prepares the workload warm: one full optimization per entry, zero
//     relearning.
//   - -stats-half-life N exponentially decays the observation history with
//     a half-life of N logical observations, so after data drift the
//     calibrated factors track the new regime in O(N) observations instead
//     of O(history).
//   - -stats-stale-after N stops warm-starting from fingerprints unseen for
//     N observations and reclaims them entirely at age 2N.
//   - -stats-snapshot-interval D additionally saves the snapshot every D
//     while serving (same atomic rotation), so a crash loses at most D of
//     learning instead of everything since boot. Requires -stats-file.
//
// The final metrics flush includes the stats-plane ageing counters (clock,
// decays, stale, reclaimed), so drift behavior is observable in production.
//
// Memory bounds:
//
//   - -mem-budget-mb N bounds each query's tracked execution memory to
//     N MiB: hash joins and aggregations beyond the budget spill to disk
//     under grace hashing (results and cardinality feedback are identical
//     either way). 0 executes unbounded; peak memory is tracked regardless
//     and digested in /metrics as repro_peak_memory_bytes p50/p95/p99.
//   - -mem-ceiling-mb N admission-gates executions so the sum of admitted
//     queries' budgets never exceeds N MiB; waits surface in the queue-wait
//     histogram and trace as reason=mem. Requires -mem-budget-mb.
//
// Persistent storage:
//
//   - -data-dir DIR binds every table to a log-structured persistent
//     backend under DIR: on first boot the generated TPC-H tables are
//     seeded into it and flushed as immutable sorted column segments on
//     graceful shutdown; later boots load the segments and replay the
//     append log instead of regenerating, so a restart serves identical
//     data. Per-segment zone maps add the segment-pruned scan access path
//     to the optimizer's plan space. Pairs naturally with -stats-file:
//     data and learned statistics then both survive restarts.
//   - -spill-dir DIR places the (immediately unlinked) spill partition
//     files of out-of-core hash joins and aggregations under DIR instead
//     of the system temp directory; write failures there surface as query
//     errors.
//
// -result-cache-mb N gives the semantic result cache an N MiB byte budget
// (0 disables it, the default). With the cache on, sessions share the
// materialized outputs of hot cacheable subexpressions across statements:
// a probe that matches a fingerprint-identical cached subtree serves it as
// zero-copy column windows instead of re-executing it, and a miss spools
// the subtree's output into the cache as a side effect of execution.
// Entries are invalidated by base-table data versions, so mutations are
// never served stale. The shutdown metrics flush reports the cache's
// hit/miss/store/eviction/invalidation counters when enabled.
//
// Observability:
//
//   - -http ADDR serves the debug plane on a second listener: GET /metrics
//     (Prometheus text format — execution latency, queue wait and repair
//     histograms with p50/p95/p99, every server counter, per-entry
//     estimation-error gauges), /metrics.json, /traces (lifecycle events
//     and slow-query dumps), and /debug/pprof/*.
//   - -trace-events N keeps the last N query-lifecycle events (prepare
//     hit/miss, queue wait, exec, repair, result-cache activity) in a ring,
//     readable via the protocol's "trace" command and /traces.
//   - -slow-query D profiles every execution and dumps any one slower than
//     D — its lifecycle events plus a full per-operator EXPLAIN ANALYZE —
//     to stderr and the /traces ring.
//   - -metrics-json renders the final shutdown metrics flush as JSON
//     instead of the text report.
//
// Protocol (one command per line; see internal/server/proto.go):
//
//	query q5 Q5          bind the named TPC-H Q5 as statement "q5"
//	prepare s1 SELECT... parse and bind ad-hoc SQL
//	exec q5              execute (feeds cardinalities back to the cache)
//	rows s1              execute and stream result rows
//	run SELECT...        one-shot prepare + exec
//	explain q5           show the current cached plan
//	analyze q5           execute with per-operator profiling (EXPLAIN ANALYZE)
//	metrics              cache hit/miss, repair vs full-opt, stats plane
//	trace                dump the lifecycle event ring (needs -trace-events)
//	quit
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/tpch"
)

func main() {
	listen := flag.String("listen", "", "TCP listen address (e.g. :7878); empty serves stdin/stdout")
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	skew := flag.Float64("skew", 0, "TPC-H Zipf skew on foreign keys")
	parallelism := flag.Int("parallelism", 1, "executor pipeline workers per query; <= 1 is serial")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission bound on concurrently executing queries; 0 sizes it against parallelism")
	maxEntries := flag.Int("max-entries", 0, "plan cache entry bound (LRU eviction); 0 is unbounded")
	ttl := flag.Duration("ttl", 0, "plan cache idle expiry (e.g. 10m); 0 never expires")
	statsFile := flag.String("stats-file", "", "statistics-plane snapshot path: loaded on boot when present, saved (atomic rotation) on graceful shutdown")
	snapshotInterval := flag.Duration("stats-snapshot-interval", 0, "additionally save the statistics snapshot every interval while serving (e.g. 5m); 0 saves only at shutdown; requires -stats-file")
	memBudgetMB := flag.Int64("mem-budget-mb", 0, "per-query execution memory budget in MiB (hash joins/aggregations spill to disk beyond it); 0 is unbounded")
	memCeilingMB := flag.Int64("mem-ceiling-mb", 0, "admission ceiling on the sum of concurrently executing queries' memory budgets, in MiB; requires -mem-budget-mb; 0 disables")
	halfLife := flag.Float64("stats-half-life", 0, "observation-decay half-life of the statistics plane, in logical observations; 0 keeps full history")
	staleAfter := flag.Uint64("stats-stale-after", 0, "observations after which an unseen fingerprint stops warm-starting (reclaimed at twice this age); 0 keeps everything")
	resultCacheMB := flag.Int64("result-cache-mb", 0, "semantic result cache byte budget in MiB, shared by all sessions (LRU eviction, data-version invalidation); 0 disables result caching")
	httpAddr := flag.String("http", "", "debug/metrics listen address (e.g. 127.0.0.1:9090): /metrics (Prometheus), /metrics.json, /traces, /debug/pprof/*; empty disables")
	traceEvents := flag.Int("trace-events", 0, "query-lifecycle event ring size (prepare/queue/exec/repair/result-cache events); 0 disables tracing")
	slowQuery := flag.Duration("slow-query", 0, "slow-query threshold (e.g. 50ms): slower executions dump lifecycle trace + EXPLAIN ANALYZE to stderr and /traces; 0 disables")
	metricsJSON := flag.Bool("metrics-json", false, "render the final shutdown metrics flush as JSON instead of the text report")
	dataDir := flag.String("data-dir", "", "persistent storage root (one subdirectory per table): tables load from it on boot instead of regenerating, appends flush to immutable column segments on graceful shutdown, and zone maps add the segment-pruned scan access path; empty keeps the catalog purely in memory")
	spillDir := flag.String("spill-dir", "", "directory for out-of-core spill partition files (unlinked at creation); empty uses the system temp directory")
	flag.Parse()

	stats := repro.NewStatsStoreWith(repro.StatsStoreOptions{
		DecayHalfLife: *halfLife,
		StaleAfter:    *staleAfter,
	})
	if *statsFile != "" {
		switch err := stats.LoadFile(*statsFile); {
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(os.Stderr, "reproserve: no snapshot at %s, statistics plane starts cold\n", *statsFile)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Fprintf(os.Stderr, "reproserve: loaded %d statistics fingerprints from %s (clock=%d)\n",
				stats.Len(), *statsFile, stats.Clock())
		}
	}

	if *snapshotInterval > 0 && *statsFile == "" {
		log.Fatal("reproserve: -stats-snapshot-interval requires -stats-file")
	}
	if *snapshotInterval > 0 {
		go func() {
			t := time.NewTicker(*snapshotInterval)
			defer t.Stop()
			for range t.C {
				// SaveFile rotates atomically, so a scrape or crash mid-save
				// always sees a complete snapshot.
				if err := stats.SaveFile(*statsFile); err != nil {
					fmt.Fprintf(os.Stderr, "reproserve: periodic stats snapshot: %v\n", err)
				}
			}
		}()
	}

	cat := tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: 42, Skew: *skew})
	srv, err := repro.NewServer(cat, repro.ServerOptions{
		Parallelism:     *parallelism,
		MaxConcurrent:   *maxConcurrent,
		MemBudgetBytes:  *memBudgetMB << 20,
		MemCeilingBytes: *memCeilingMB << 20,
		MaxEntries:      *maxEntries,
		TTL:             *ttl,
		Stats:           stats,
		Dict:            tpch.Dict(),
		Date:            tpch.Date,
		Named:           tpch.Queries(),

		ResultCacheBytes: *resultCacheMB << 20,

		DataDir:  *dataDir,
		SpillDir: *spillDir,

		TraceEvents:    *traceEvents,
		TraceSlowQuery: *slowQuery,
		TraceOnSlow: func(dump string) {
			fmt.Fprintf(os.Stderr, "reproserve: %s", dump)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		info := srv.StorageInfo()
		fmt.Fprintf(os.Stderr, "reproserve: storage: loaded %d tables (%d rows) from %s, seeded %d from generated data\n",
			info.Loaded, info.Rows, *dataDir, info.Seeded)
	}

	if *httpAddr != "" {
		dl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "reproserve: debug plane on http://%s (/metrics /metrics.json /traces /debug/pprof/)\n", dl.Addr())
		go func() {
			if err := http.Serve(dl, srv.DebugHandler()); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "reproserve: debug plane: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *listen == "" {
		done := make(chan error, 1)
		go func() { done <- srv.ServeConn(stdio{}) }()
		select {
		case err := <-done:
			if err != nil {
				log.Fatal(err)
			}
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "reproserve: %v, draining in-flight executions\n", s)
		}
		shutdown(srv, *statsFile, *metricsJSON)
		return
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reproserve: listening on %s (sf=%g, parallelism=%d, max-entries=%d, ttl=%v)\n",
		l.Addr(), *sf, *parallelism, *maxEntries, *ttl)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "reproserve: %v, stop accepting, draining in-flight executions\n", s)
		l.Close()
	}()
	if err := srv.ServeListener(l); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal(err)
	}
	shutdown(srv, *statsFile, *metricsJSON)
}

// shutdown drains the admission semaphore, persists the statistics plane
// (atomic rotation: the previous snapshot survives any failure), and flushes
// the final metrics report: the cache and statistics-plane counters —
// including the ageing clock, decay, staleness and reclaim totals — a
// long-running serve accumulated, written where an operator (or test
// harness) can collect them.
func shutdown(srv *repro.Server, statsFile string, asJSON bool) {
	start := time.Now()
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "reproserve: storage flush: %v\n", err)
	} else if info := srv.StorageInfo(); info.Loaded+info.Seeded > 0 {
		fmt.Fprintf(os.Stderr, "reproserve: storage: flushed %d tables\n", info.Loaded+info.Seeded)
	}
	if statsFile != "" {
		if err := srv.Stats().SaveFile(statsFile); err != nil {
			fmt.Fprintf(os.Stderr, "reproserve: %v (previous snapshot left intact)\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "reproserve: saved %d statistics fingerprints to %s\n",
				srv.Stats().Len(), statsFile)
		}
	}
	if asJSON {
		blob, err := json.MarshalIndent(srv.Metrics(), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "reproserve: drained in %v, final metrics:\n%s\n",
			time.Since(start).Round(time.Millisecond), blob)
		return
	}
	fmt.Fprintf(os.Stderr, "reproserve: drained in %v, final metrics:\n%s",
		time.Since(start).Round(time.Millisecond), srv.Metrics())
}

// stdio glues stdin and stdout into one io.ReadWriter for ServeConn.
type stdio struct{}

func (stdio) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdio) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

var _ io.ReadWriter = stdio{}
