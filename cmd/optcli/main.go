// Command optcli optimizes a workload query with a selectable optimizer
// architecture and pruning configuration, printing the plan, metrics, and
// optionally the SearchSpace table / and-or-graph.
//
// Usage:
//
//	optcli -query q5 -arch declarative -prune all -graph
//	optcli -query q8join -arch volcano
//	optcli -query q3s -table            # paper Table 1
//	optcli -query q5 -reopt "D=8"       # apply a Figure 5 style update
//	optcli -query q5 -exec -parallelism 4  # execute the plan with 4 workers
//	optcli -query q5 -analyze              # execute with per-operator profiling
//	                                       # (EXPLAIN ANALYZE: time/batches/rows,
//	                                       # est-vs-act cardinality per node)
//	optcli -sql "SELECT c.c_custkey FROM customer c, orders o \
//	  WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'MACHINERY'" -exec
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/systemr"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

func main() {
	query := flag.String("query", "q5", "workload query: q1,q3s,q5,q5s,q6,q10,q8join,q8joins")
	sqlText := flag.String("sql", "", "ad-hoc SQL SELECT to optimize instead of a named query (string and date literals resolve through the TPC-H dictionary)")
	arch := flag.String("arch", "declarative", "optimizer: declarative, volcano, systemr")
	prune := flag.String("prune", "all", "pruning (declarative): none, evita, aggsel, aggsel+refcount, aggsel+b&b, all")
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	graph := flag.Bool("graph", false, "print the and-or-graph (declarative only)")
	table := flag.Bool("table", false, "print the SearchSpace table (declarative only)")
	reopt := flag.String("reopt", "", "comma list of updates, e.g. \"A=0.5,E=8\" (Q5 expressions) or \"scan:orders=4\"")
	doExec := flag.Bool("exec", false, "execute the chosen plan and print row count and timing")
	analyze := flag.Bool("analyze", false, "execute with per-operator profiling and print the EXPLAIN ANALYZE tree (implies -exec)")
	parallelism := flag.Int("parallelism", 1, "executor pipeline workers for -exec; <= 1 is serial")
	flag.Parse()

	cat := tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: 42})
	var q *relalg.Query
	if *sqlText != "" {
		// Ad-hoc SQL reaches the optimizer (and the -exec path) through
		// the same front door the server uses: repro.ParseSQL with the
		// workload dictionary resolving string and date literals.
		var err error
		q, err = repro.ParseSQL(*sqlText, cat, repro.SQLOptions{
			Dict: tpch.Dict(), Date: tpch.Date,
		})
		if err != nil {
			log.Fatalf("parse -sql: %v", err)
		}
	} else {
		queries := map[string]*relalg.Query{}
		for name, qq := range tpch.Queries() {
			queries[strings.ToLower(name)] = qq
		}
		var ok bool
		q, ok = queries[strings.ToLower(*query)]
		if !ok {
			log.Fatalf("unknown query %q", *query)
		}
	}
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	space := relalg.DefaultSpace()

	switch strings.ToLower(*arch) {
	case "volcano":
		res, err := volcano.Optimize(m, space)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volcano: cost %.3f in %v; %d groups, %d alternatives (%d costed, %d pruned)\n",
			res.Cost, res.Metrics.Elapsed, res.Metrics.Groups,
			res.Metrics.Alts, res.Metrics.CostedAlts, res.Metrics.PrunedAlts)
		fmt.Print(res.Plan.Explain(q))
		if *doExec || *analyze {
			execute(q, cat, res.Plan, *parallelism, *analyze)
		}
		return
	case "systemr":
		res, err := systemr.Optimize(m, space)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("systemr: cost %.3f in %v; %d groups, %d alternatives costed\n",
			res.Cost, res.Metrics.Elapsed, res.Metrics.Groups, res.Metrics.CostedAlts)
		fmt.Print(res.Plan.Explain(q))
		if *doExec || *analyze {
			execute(q, cat, res.Plan, *parallelism, *analyze)
		}
		return
	}

	modes := map[string]core.Pruning{
		"none": core.PruneNone, "evita": core.PruneEvita,
		"aggsel": core.PruneAggSel, "aggsel+refcount": core.PruneAggSelRefCount,
		"aggsel+b&b": core.PruneAggSelBound, "all": core.PruneAll,
	}
	mode, ok := modes[strings.ToLower(*prune)]
	if !ok {
		log.Fatalf("unknown pruning %q", *prune)
	}
	o, err := core.New(m, space, mode)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := o.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	met := o.Metrics()
	liveG, liveA := o.LiveState()
	fmt.Printf("declarative (%s): cost %.3f in %v; enumerated %d groups / %d alternatives, alive %d / %d\n",
		mode, plan.Cost, met.Elapsed, met.GroupsEnumerated, met.AltsEnumerated, liveG, liveA)
	fmt.Print(plan.Explain(q))

	if *reopt != "" {
		exprs := map[string]relalg.RelSet{}
		if q.Name == "Q5" || q.Name == "Q5S" {
			for _, ex := range tpch.Q5Expressions() {
				exprs[strings.ToLower(ex.Name[:1])] = ex.Set
			}
		}
		for _, upd := range strings.Split(*reopt, ",") {
			parts := strings.SplitN(upd, "=", 2)
			if len(parts) != 2 {
				log.Fatalf("bad update %q", upd)
			}
			f, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				log.Fatalf("bad factor in %q: %v", upd, err)
			}
			key := strings.ToLower(strings.TrimSpace(parts[0]))
			if rest, ok := strings.CutPrefix(key, "scan:"); ok {
				rel := -1
				for i, rr := range q.Rels {
					if strings.EqualFold(rr.Table, rest) || strings.EqualFold(rr.Alias, rest) {
						rel = i
						break
					}
				}
				if rel < 0 {
					log.Fatalf("unknown relation %q", rest)
				}
				o.UpdateScanCostFactor(rel, f)
				fmt.Printf("\n== update: scan cost of %s x%g ==\n", rest, f)
			} else {
				set, ok := exprs[key]
				if !ok {
					log.Fatalf("unknown expression %q (use A..E with Q5)", key)
				}
				o.UpdateCardFactor(set, f)
				fmt.Printf("\n== update: cardinality of %s x%g ==\n", strings.ToUpper(key), f)
			}
			plan, err = o.Reoptimize()
			if err != nil {
				log.Fatal(err)
			}
			met = o.Metrics()
			fmt.Printf("incremental re-optimization: %v, touched %d entries / %d groups\n",
				met.Elapsed, met.TouchedEntries, met.TouchedGroups)
			fmt.Print(plan.Explain(q))
		}
	}
	if *doExec || *analyze {
		execute(q, cat, plan, *parallelism, *analyze)
	}
	if *table {
		fmt.Println("\n== SearchSpace (cf. Table 1) ==")
		fmt.Print(o.FormatSearchSpace())
	}
	if *graph {
		fmt.Println("\n== and-or-graph (cf. Figure 2) ==")
		fmt.Print(o.AndOrGraph())
	}
}

// execute runs the chosen plan through the vectorized executor — with fused
// parallel pipelines when parallelism > 1 — and prints the result
// cardinality and execution time. With analyze it profiles every operator
// and prints the annotated EXPLAIN ANALYZE tree.
func execute(q *relalg.Query, cat *catalog.Catalog, plan *relalg.Plan, parallelism int, analyze bool) {
	comp := &exec.Compiler{Q: q, Cat: cat, Parallelism: parallelism}
	if analyze {
		comp.Prof = exec.NewPlanProfile()
	}
	v, stats, err := comp.CompileVec(plan)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	n, err := exec.CountVec(v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d result rows in %v (parallelism %d)\n",
		n, time.Since(start), parallelism)
	if analyze {
		fmt.Print(comp.Prof.Format(q, plan, stats))
	}
}
