// Command reprobench regenerates every table and figure of the paper's
// evaluation section (§5) as text tables.
//
// Usage:
//
//	reprobench                  # run everything
//	reprobench -fig 4           # one figure (4,5,6,7,8,9,10)
//	reprobench -table 3         # Table 3
//	reprobench -fig small       # the §5.1 small-query remark
//	reprobench -fig ablation    # the DESIGN.md ablations
//	reprobench -sf 0.01         # TPC-H scale factor
//	reprobench -slices 60       # stream length for Figures 9/10
//	reprobench -parallelism 4   # parallel pipeline workers during execution
//	reprobench -fig layouts     # columnar vs row batch layout, rows/sec
//	reprobench -fig rescache    # semantic result cache, spool/probe vs uncached
//	reprobench -fig drift       # drift adaptation trajectory via the event plane
//	reprobench -fig memory      # memory-bounded execution: unbounded vs budgeted spill
//	reprobench -columnar=false  # run every figure through the row layout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/tpch"
)

func main() {
	fig := flag.String("fig", "", "figure to run (4,5,6,7,8,9,10,small,ablation,layouts,rescache,drift,memory); empty = all")
	table := flag.String("table", "", "table to run (3); empty = all")
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	seed := flag.Uint64("seed", 42, "generator seed")
	slices := flag.Int("slices", 120, "stream slices for Figures 9/10")
	repeats := flag.Int("repeats", 5, "timing repetitions (minimum is reported)")
	parallelism := flag.Int("parallelism", 1,
		"executor pipeline workers wherever plans execute; <= 1 keeps execution serial (the paper's setting)")
	columnar := flag.Bool("columnar", true,
		"execute with columnar batches; false A/Bs the row-at-a-time layout behind the batch adapter")
	flag.Parse()

	env := bench.NewEnv(tpch.Config{ScaleFactor: *sf, Seed: *seed})
	env.Repeats = *repeats
	env.Parallelism = *parallelism
	env.DisableColumnar = !*columnar

	all := *fig == "" && *table == ""
	show := func(ts ...*bench.Table) {
		for _, t := range ts {
			fmt.Println(t.String())
		}
	}

	if all || *fig == "4" {
		show(env.Figure4()...)
	}
	if all || *fig == "5" {
		show(env.Figure5()...)
	}
	if all || *fig == "6" {
		show(env.Figure6(10, 0.5)...)
	}
	if all || *fig == "7" {
		show(env.Figure7()...)
	}
	if all || *fig == "8" {
		show(env.Figure8()...)
	}
	if all || *fig == "9" {
		show(env.Figure9(*slices))
	}
	if all || *fig == "10" {
		show(env.Figure10(*slices))
	}
	if all || *table == "3" {
		show(env.Table3())
	}
	if all || *fig == "small" {
		show(env.SmallQueries())
	}
	if all || *fig == "ablation" {
		show(env.AblationSearchOrder(), env.AblationPlanSpace())
	}
	if all || *fig == "layouts" {
		show(env.ExecLayouts())
	}
	if all || *fig == "rescache" {
		show(env.ResultCache())
	}
	if all || *fig == "drift" {
		show(env.Drift(10))
	}
	if all || *fig == "memory" {
		show(env.MemoryFigure())
	}
	if !all && *fig != "" {
		switch *fig {
		case "4", "5", "6", "7", "8", "9", "10", "small", "ablation", "layouts", "rescache", "drift", "memory":
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
			os.Exit(2)
		}
	}
}
