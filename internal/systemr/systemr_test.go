package systemr

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/stats"
	"repro/internal/testkit"
)

func model(t *testing.T, seed uint64, n int) *cost.Model {
	t.Helper()
	r := stats.NewRand(seed)
	cat := testkit.SyntheticCatalog(r, 3)
	q := testkit.RandomQuery(r, cat, n)
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBottomUpProducesValidPlan(t *testing.T) {
	m := model(t, 9, 5)
	res, err := Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Expr != m.Q.AllRels() || res.Cost <= 0 {
		t.Fatalf("bad result: expr=%v cost=%v", res.Plan.Expr, res.Cost)
	}
	// Bottom-up DP costs the whole space: every enumerated alternative
	// whose children exist is costed.
	if res.Metrics.CostedAlts == 0 || res.Metrics.Groups == 0 {
		t.Fatalf("metrics empty: %+v", res.Metrics)
	}
}

func TestInterestingOrdersMaterialized(t *testing.T) {
	// A query whose optimum may use merge joins must materialize Sorted
	// groups; check the DP table covered more than just Any groups by
	// comparing group count with the count of connected subsets.
	m := model(t, 10, 4)
	res, err := Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	connected := 0
	all := uint64(m.Q.AllRels())
	for v := uint64(1); v <= all; v++ {
		if m.Q.Connected(relalg.RelSet(v)) {
			connected++
		}
	}
	if res.Metrics.Groups <= connected {
		t.Fatalf("only %d groups for %d connected subsets: interesting orders missing",
			res.Metrics.Groups, connected)
	}
}

func TestLeftDeepSpaceRestriction(t *testing.T) {
	m := model(t, 11, 5)
	full, err := Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	ld := relalg.DefaultSpace()
	ld.LeftDeepOnly = true
	left, err := Optimize(m, ld)
	if err != nil {
		t.Fatal(err)
	}
	if left.Cost < full.Cost-1e-9 {
		t.Fatalf("left-deep optimum %v beats full space %v", left.Cost, full.Cost)
	}
	if left.Metrics.Alts > full.Metrics.Alts {
		t.Fatal("left-deep space larger than full space")
	}
	var check func(p *relalg.Plan)
	check = func(p *relalg.Plan) {
		if p == nil {
			return
		}
		if p.Log == relalg.LogJoin && !p.Right.Expr.IsSingle() {
			t.Fatalf("left-deep plan has bushy join: %s", p.Signature())
		}
		check(p.Left)
		check(p.Right)
	}
	check(left.Plan)
}
