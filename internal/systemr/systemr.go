// Package systemr implements the paper's second comparison baseline: a
// System-R-style bottom-up dynamic-programming optimizer with interesting
// orders (Selinger et al., SIGMOD 1979). It enumerates connected
// subexpressions in increasing size and keeps, for every
// (expression, property) pair, the cheapest plan. It performs no
// branch-and-bound pruning — the whole space is costed — which matches how
// the paper treats it ("a dynamic programming-based pruning model that is
// difficult to directly compare").
package systemr

import (
	"fmt"

	"time"

	"repro/internal/cost"
	"repro/internal/relalg"
)

// Metrics mirrors volcano.Metrics for side-by-side reporting.
type Metrics struct {
	Groups     int
	Alts       int
	CostedAlts int
	Elapsed    time.Duration
}

// Result is the output of one optimization.
type Result struct {
	Plan    *relalg.Plan
	Cost    float64
	Metrics Metrics
}

type groupKey struct {
	s relalg.RelSet
	p relalg.Prop
}

// Optimize runs the full bottom-up dynamic program.
func Optimize(m *cost.Model, opts relalg.SpaceOptions) (*Result, error) {
	start := time.Now()
	q := m.Q
	n := len(q.Rels)
	table := map[groupKey]*relalg.Plan{}
	met := Metrics{}

	// Connected subsets grouped by size; within one size ascending bitmap
	// order for determinism.
	bySize := make([][]relalg.RelSet, n+1)
	all := uint64(q.AllRels())
	for v := uint64(1); v <= all; v++ {
		s := relalg.RelSet(v)
		if q.Connected(s) {
			bySize[s.Count()] = append(bySize[s.Count()], s)
		}
	}

	// The properties worth materializing for a subexpression: Any always;
	// Sorted on every join column local to the set (candidate interesting
	// orders for parent merge joins); Indexed on singletons for index-NL
	// inners.
	propsOf := func(s relalg.RelSet) []relalg.Prop {
		props := []relalg.Prop{relalg.AnyProp}
		if s.IsSingle() {
			rel := s.SingleMember()
			for _, jp := range q.Joins {
				for _, c := range [2]relalg.ColID{jp.L, jp.R} {
					if c.Rel == rel {
						props = append(props, relalg.Indexed(c))
					}
				}
			}
		}
		for _, jp := range q.Joins {
			for _, c := range [2]relalg.ColID{jp.L, jp.R} {
				if s.Has(c.Rel) {
					props = append(props, relalg.Sorted(c))
				}
			}
		}
		return dedupProps(props)
	}

	solve := func(s relalg.RelSet, p relalg.Prop) {
		alts := relalg.Split(q, m, opts, s, p)
		met.Alts += len(alts)
		var best *relalg.Plan
		for _, alt := range alts {
			local := m.LocalCost(alt, s, p)
			node := &relalg.Plan{
				Expr: s, Prop: p, Log: alt.Log, Phy: alt.Phy,
				Rel: alt.Rel, Pred: alt.Pred, IdxCol: alt.IdxCol,
				Card: m.Card(s), LocalCost: local,
			}
			total := local
			switch {
			case alt.Leaf():
			case alt.Unary():
				child := table[groupKey{alt.LExpr, alt.LProp}]
				if child == nil {
					continue
				}
				node.Left = child
				total += child.Cost
			default:
				left := table[groupKey{alt.LExpr, alt.LProp}]
				right := table[groupKey{alt.RExpr, alt.RProp}]
				if left == nil || right == nil {
					continue
				}
				node.Left, node.Right = left, right
				total += left.Cost + right.Cost
			}
			node.Cost = total
			met.CostedAlts++
			if best == nil || total < best.Cost {
				best = node
			}
		}
		if best != nil {
			table[groupKey{s, p}] = best
			met.Groups++
		}
	}

	for size := 1; size <= n; size++ {
		for _, s := range bySize[size] {
			// Any and Indexed first (no dependency on same-set
			// Sorted), then Sorted (its enforcer uses same-set Any).
			var sorted []relalg.Prop
			for _, p := range propsOf(s) {
				if p.Kind == relalg.PropSorted {
					sorted = append(sorted, p)
					continue
				}
				solve(s, p)
			}
			for _, p := range sorted {
				solve(s, p)
			}
		}
	}

	root := table[groupKey{q.AllRels(), relalg.AnyProp}]
	if root == nil {
		return nil, fmt.Errorf("systemr: no plan found for query %s", q.Name)
	}
	met.Elapsed = time.Since(start)
	return &Result{Plan: root, Cost: root.Cost, Metrics: met}, nil
}

func dedupProps(props []relalg.Prop) []relalg.Prop {
	seen := map[relalg.Prop]bool{}
	out := props[:0]
	for _, p := range props {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
