package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucketing, HDR-histogram style: histSub linear sub-buckets
// per power of two keep the relative error of any recorded value under
// 1/histSub (~6%) across the full int64 nanosecond range, with a fixed
// 8KB footprint and one atomic add per observation — cheap enough to
// leave on unconditionally.
// The top bucket (index histBuckets-1) ends exactly at MaxInt64, so every
// nonnegative int64 maps in range.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits) * histSub
)

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - histSubBits - 1
	sub := u >> uint(exp) // in [histSub, 2*histSub)
	return (exp+1)*histSub + int(sub) - histSub
}

// bucketUpper is the largest value mapping to bucket i (the inverse of
// bucketIndex, and the value Quantile reports for ranks landing in i).
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := i/histSub - 1
	sub := uint64(i%histSub + histSub)
	return int64((sub+1)<<uint(exp) - 1)
}

// Histogram is a concurrency-safe log-linear duration histogram (see the
// bucketing constants above). All methods are safe for concurrent use;
// Observe is wait-free (three atomic adds plus a bounded max CAS loop).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.buckets[bucketIndex(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
	for {
		m := h.max.Load()
		if n <= m || h.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the cumulative recorded duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest recorded duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket holding that rank — within one sub-bucket (~6%) of the true
// value. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	// Nearest-rank with ceiling: the q-quantile is the smallest value with
	// at least ceil(q·total) observations at or below it. Flooring here
	// under-reports small counts — with two observations a floored p99
	// lands on rank 1 and returns the MINIMUM instead of the maximum.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			seen += c
			if seen >= rank {
				return time.Duration(bucketUpper(i))
			}
		}
	}
	return h.Max()
}

// HistSummary is a point-in-time digest of a Histogram, embeddable in
// metrics snapshots.
type HistSummary struct {
	Count uint64
	Sum   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summary digests the histogram. The digest is computed from live atomic
// counters and is only approximately consistent under concurrent writes.
func (h *Histogram) Summary() HistSummary {
	return HistSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// ObserveInt64 records one nonnegative integer sample. The log-linear
// buckets are unit-agnostic — the same histogram digests nanoseconds or
// bytes — so size distributions (e.g. per-query peak memory) reuse the
// duration machinery verbatim.
func (h *Histogram) ObserveInt64(v int64) { h.Observe(time.Duration(v)) }

// IntSummary is a point-in-time digest of a Histogram recording integer
// samples (ObserveInt64), embeddable in metrics snapshots.
type IntSummary struct {
	Count uint64
	Sum   int64
	P50   int64
	P95   int64
	P99   int64
	Max   int64
}

// SummaryInt64 digests the histogram as integer samples. Like Summary, the
// digest is only approximately consistent under concurrent writes.
func (h *Histogram) SummaryInt64() IntSummary {
	return IntSummary{
		Count: h.Count(),
		Sum:   h.sum.Load(),
		P50:   int64(h.Quantile(0.50)),
		P95:   int64(h.Quantile(0.95)),
		P99:   int64(h.Quantile(0.99)),
		Max:   h.max.Load(),
	}
}

// String renders the integer digest as one metrics-style line.
func (s IntSummary) String() string {
	return fmt.Sprintf("n=%d sum=%d p50=%d p95=%d p99=%d max=%d",
		s.Count, s.Sum, s.P50, s.P95, s.P99, s.Max)
}

// WritePromIntHistogram writes a histogram of integer samples (bytes) to w
// in Prometheus text exposition format plus p50/p95/p99 gauges, mirroring
// WritePromHistogram without the nanoseconds→seconds scaling.
func (h *Histogram) WritePromIntHistogram(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	bi := 0
	for _, bound := range promBounds {
		for bi < histBuckets && bucketUpper(bi) <= bound {
			cum += h.buckets[bi].Load()
			bi++
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	for _, q := range []struct {
		suffix string
		q      float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %d\n",
			name, q.suffix, name, q.suffix, int64(h.Quantile(q.q)))
	}
}

// Mean returns the average recorded duration (0 when empty).
func (s HistSummary) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// String renders the digest as one metrics-style line.
func (s HistSummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean(), s.P50, s.P95, s.P99, s.Max)
}

// promBounds are the exported cumulative bucket boundaries, in
// nanoseconds: powers of 4 from 1µs-ish (1024ns) to ~4.6 minutes. The
// internal resolution is much finer; scrapes only need a stable,
// compact le-series.
var promBounds = func() []int64 {
	var b []int64
	for ns := int64(1 << 10); ns <= int64(1)<<38; ns <<= 2 {
		b = append(b, ns)
	}
	return b
}()

// WritePromHistogram writes the histogram to w in Prometheus text
// exposition format (seconds) as family name (TYPE histogram:
// name_bucket/_sum/_count) plus p50/p95/p99 gauges named name_p50 … so
// percentiles are directly greppable without PromQL.
func (h *Histogram) WritePromHistogram(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	// One pass over the fine-grained buckets, folding counts into the
	// coarse exported boundaries cumulatively.
	var cum uint64
	bi := 0
	for _, bound := range promBounds {
		for bi < histBuckets && bucketUpper(bi) <= bound {
			cum += h.buckets[bi].Load()
			bi++
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(bound)/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	for _, q := range []struct {
		suffix string
		q      float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %g\n",
			name, q.suffix, name, q.suffix, h.Quantile(q.q).Seconds())
	}
}

// WritePromCounter writes one counter sample in Prometheus text format.
func WritePromCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WritePromGauge writes one gauge sample in Prometheus text format.
func WritePromGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}
