package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// Edge cases the tolerance-based quantile test cannot catch: zero
// observations, one observation, tiny counts where nearest-rank flooring
// picks the wrong end, and a fully saturated single bucket.

func TestHistogramEmptyRendersZeroEverywhere(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	s := h.Summary()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Fatalf("empty Summary not all-zero: %+v", s)
	}
	is := h.SummaryInt64()
	if is.Count != 0 || is.Sum != 0 || is.P50 != 0 || is.P95 != 0 || is.P99 != 0 || is.Max != 0 {
		t.Fatalf("empty SummaryInt64 not all-zero: %+v", is)
	}
	var b strings.Builder
	h.WritePromHistogram(&b, "repro_empty_seconds", "edge")
	h.WritePromIntHistogram(&b, "repro_empty_bytes", "edge")
	text := b.String()
	for _, bad := range []string{"NaN", "nan"} {
		if strings.Contains(text, bad) {
			t.Fatalf("empty prom text contains %q:\n%s", bad, text)
		}
	}
	for _, want := range []string{"repro_empty_seconds_count 0", "repro_empty_seconds_p99 0", "repro_empty_bytes_p50 0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("empty prom text missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	v := 3 * time.Millisecond
	h.Observe(v)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < v || got > v*2 {
			t.Fatalf("single-observation Quantile(%v) = %v, want within one bucket above %v", q, got, v)
		}
	}
	if h.Summary().Max != v {
		t.Fatalf("Max = %v, want %v", h.Summary().Max, v)
	}
}

func TestHistogramSmallCountUpperQuantiles(t *testing.T) {
	// Two observations three orders of magnitude apart: p99 must report
	// the larger one. The floored nearest-rank computation returned the
	// SMALLER (rank 1 of 2), hiding the slow outlier entirely.
	var h Histogram
	h.Observe(1 * time.Millisecond)
	h.Observe(1 * time.Second)
	if got := h.Quantile(0.99); got < time.Second {
		t.Fatalf("p99 of {1ms, 1s} = %v, want >= 1s", got)
	}
	if got := h.Quantile(0.50); got > 2*time.Millisecond {
		t.Fatalf("p50 of {1ms, 1s} = %v, want in the 1ms bucket", got)
	}
}

func TestHistogramSaturatedBucket(t *testing.T) {
	var h Histogram
	v := 42 * time.Microsecond
	for i := 0; i < 100000; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.001, 0.5, 0.999} {
		got := h.Quantile(q)
		if got < v || got > v*2 {
			t.Fatalf("saturated-bucket Quantile(%v) = %v, want within one bucket above %v", q, got, v)
		}
	}
	// The top bucket ends exactly at MaxInt64; an extreme sample must not
	// overflow or disappear.
	h.Observe(time.Duration(math.MaxInt64))
	if got := h.Quantile(1); got != time.Duration(math.MaxInt64) {
		t.Fatalf("Quantile(1) with MaxInt64 sample = %v", got)
	}
}
