// Package obs is the low-overhead observability plane shared by the
// executor and the serving layer: per-operator execution profiles (Span),
// a ring-buffered structured event log for query lifecycles (Tracer), and
// HDR-style log-linear latency histograms with Prometheus text rendering
// (Histogram, hist.go).
//
// Everything here is designed to cost nothing when disabled. Span and
// Tracer methods are nil-receiver no-ops, so instrumentation can stay
// wired unconditionally behind nil pointers and the instrumented hot paths
// carry no branches beyond one pointer test; enabling them never changes
// what the instrumented code computes — profiles and traces observe
// executions, they do not participate in them. The executor's
// zero-allocation steady state and the byte-identity of its cardinality
// feedback are asserted with instrumentation both off and on by the tests
// in internal/exec.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// ---- per-operator execution profiles ----

// Span accumulates one operator's execution profile at batch granularity:
// how many batches it emitted, how many live rows they carried, and the
// cumulative wall time spent producing them. Methods are nil-receiver
// no-ops so operators record unconditionally through a possibly-nil
// pointer.
//
// A Span is written by one goroutine at a time (per-worker spans are
// merged single-threaded after the workers join); it is not itself
// concurrency-safe.
type Span struct {
	Batches int64
	Rows    int64
	Nanos   int64 // cumulative wall time, nanoseconds

	// Self marks a span recording self-time only: the fused parallel
	// pipeline attributes each worker's wall time exclusively to the stage
	// the worker is executing, so an annotated-tree renderer adds
	// descendant time back to display the conventional inclusive time.
	// Spans recorded by wrapping operators are inclusive (Self=false):
	// their clock runs across the child's Next call.
	Self bool
}

// Record folds one observation into the span.
func (s *Span) Record(batches, rows int64, d time.Duration) {
	if s == nil {
		return
	}
	s.Batches += batches
	s.Rows += rows
	s.Nanos += int64(d)
}

// Merge folds another span's counters in (the per-worker merge).
func (s *Span) Merge(o *Span) {
	if s == nil || o == nil {
		return
	}
	s.Batches += o.Batches
	s.Rows += o.Rows
	s.Nanos += o.Nanos
}

// Time returns the recorded wall time.
func (s *Span) Time() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.Nanos)
}

// ---- query-lifecycle event log ----

// Kind classifies a lifecycle event.
type Kind uint8

const (
	// KindPrepare is a statement bind: Note is "hit" or "miss", A is the
	// number of warm-started factors (miss only).
	KindPrepare Kind = 1 + iota
	// KindQueueWait is the admission wait before an execution: Dur is the
	// wait, Note is "mem" when the execution waited on the memory-ceiling
	// gate (empty for a plain semaphore wait).
	KindQueueWait
	// KindExec is one finished execution: A is the result row count, B the
	// plan version that ran, Dur the execution wall time, and Note
	// "repaired" when its feedback repaired the plan (empty otherwise).
	KindExec
	// KindRepair is one incremental plan repair: A is the number of
	// optimizer entries touched, B the new plan version (the version
	// bump), Dur the repair time.
	KindRepair
	// KindResultCache is semantic result cache activity during one
	// execution: Note is "probe-hit", "spool" or "invalidate", A the count.
	KindResultCache
	// KindSlowQuery marks an execution beyond the slow-query threshold:
	// Dur is the execution time, Note names the threshold. The full dump
	// is kept separately (the server's slow-trace ring).
	KindSlowQuery
	// KindPhase is a workload phase marker (the drift harness): Note is
	// the phase name, A is 1 at phase start and 2 at phase end, and V
	// carries the statistics plane's end-of-phase estimation error.
	KindPhase
	// KindSpill is one execution's grace-hash spill activity under a memory
	// budget: A is the partition files written, B the bytes spilled, and V
	// the query's peak tracked memory in bytes.
	KindSpill
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPrepare:
		return "prepare"
	case KindQueueWait:
		return "queue-wait"
	case KindExec:
		return "exec"
	case KindRepair:
		return "repair"
	case KindResultCache:
		return "result-cache"
	case KindSlowQuery:
		return "slow-query"
	case KindPhase:
		return "phase"
	case KindSpill:
		return "spill"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one structured lifecycle event. Payload fields are
// kind-specific; see the Kind constants. Query labels the statement the
// event belongs to (the cache entry digest, or a workload name).
type Event struct {
	Seq  uint64
	At   time.Time
	Kind Kind

	Query string
	Note  string
	A, B  int64
	V     float64
	Dur   time.Duration
}

// String renders the event as one log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-5d %s %-12s", e.Seq, e.At.Format("15:04:05.000000"), e.Kind)
	if e.Query != "" {
		fmt.Fprintf(&b, " [%s]", e.Query)
	}
	switch e.Kind {
	case KindPrepare:
		fmt.Fprintf(&b, " %s warm=%d", e.Note, e.A)
	case KindQueueWait:
		fmt.Fprintf(&b, " wait=%v", e.Dur)
		if e.Note != "" {
			fmt.Fprintf(&b, " reason=%s", e.Note)
		}
	case KindExec:
		fmt.Fprintf(&b, " rows=%d v=%d dur=%v", e.A, e.B, e.Dur)
		if e.Note != "" {
			fmt.Fprintf(&b, " %s", e.Note)
		}
	case KindRepair:
		fmt.Fprintf(&b, " touched=%d v=%d dur=%v", e.A, e.B, e.Dur)
	case KindResultCache:
		fmt.Fprintf(&b, " %s n=%d", e.Note, e.A)
	case KindSlowQuery:
		fmt.Fprintf(&b, " dur=%v threshold=%s", e.Dur, e.Note)
	case KindSpill:
		fmt.Fprintf(&b, " partitions=%d bytes=%d peak=%.0f", e.A, e.B, e.V)
	case KindPhase:
		edge := "start"
		if e.A == 2 {
			edge = "end"
		}
		fmt.Fprintf(&b, " %s %s", e.Note, edge)
		if e.A == 2 {
			fmt.Fprintf(&b, " est-err=%.3f", e.V)
		}
	default:
		fmt.Fprintf(&b, " %s a=%d b=%d v=%g dur=%v", e.Note, e.A, e.B, e.V, e.Dur)
	}
	return b.String()
}

// Tracer is a bounded ring buffer of lifecycle events. A nil Tracer is a
// disabled one: Emit is a no-op and Events returns nothing, so callers
// keep a possibly-nil *Tracer and emit unconditionally. Emission takes one
// short mutex-protected copy — events are per query execution, never per
// batch, so the lock is far off any hot path.
type Tracer struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // total events emitted; Seq of the newest event
}

// NewTracer builds a tracer retaining the last size events (minimum 16).
func NewTracer(size int) *Tracer {
	if size < 16 {
		size = 16
	}
	return &Tracer{buf: make([]Event, size)}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit appends an event, stamping its sequence number and — when unset —
// its timestamp. Nil-safe.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.buf[(t.seq-1)%uint64(len(t.buf))] = e
	t.mu.Unlock()
}

// Seq returns the sequence number of the newest event (0: none yet).
// Capture it before an operation and pass it to Since to read just that
// operation's events.
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Events snapshots the buffered events, oldest first.
func (t *Tracer) Events() []Event { return t.Since(0) }

// Since snapshots the buffered events with Seq > seq, oldest first. Events
// older than the ring retains are gone; the caller sees a gap in Seq.
func (t *Tracer) Since(seq uint64) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lo := t.seq
	if n := uint64(len(t.buf)); lo > n {
		lo = n
	}
	first := t.seq - lo + 1 // oldest Seq still buffered
	if seq+1 > first {
		first = seq + 1
	}
	var out []Event
	for s := first; s <= t.seq; s++ {
		out = append(out, t.buf[(s-1)%uint64(len(t.buf))])
	}
	return out
}

// TextRing retains the last size rendered text blobs (slow-query dumps).
// A nil TextRing discards everything.
type TextRing struct {
	mu  sync.Mutex
	buf []string
	n   uint64
}

// NewTextRing builds a ring of the given capacity (minimum 1).
func NewTextRing(size int) *TextRing {
	if size < 1 {
		size = 1
	}
	return &TextRing{buf: make([]string, size)}
}

// Add appends one blob. Nil-safe.
func (r *TextRing) Add(s string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = s
	r.n++
	r.mu.Unlock()
}

// All returns the retained blobs, oldest first. Nil-safe.
func (r *TextRing) All() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if m := uint64(len(r.buf)); n > m {
		n = m
	}
	out := make([]string, 0, n)
	for s := r.n - n; s < r.n; s++ {
		out = append(out, r.buf[s%uint64(len(r.buf))])
	}
	return out
}
