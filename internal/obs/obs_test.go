package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	s.Record(1, 10, time.Millisecond) // must not panic
	s.Merge(&Span{Rows: 5})
	if s.Time() != 0 {
		t.Fatalf("nil span time = %v", s.Time())
	}
	real := &Span{}
	real.Record(2, 20, 3*time.Millisecond)
	real.Record(1, 4, time.Millisecond)
	if real.Batches != 3 || real.Rows != 24 || real.Time() != 4*time.Millisecond {
		t.Fatalf("span = %+v", real)
	}
	sum := &Span{}
	sum.Merge(real)
	sum.Merge(real)
	if sum.Rows != 48 {
		t.Fatalf("merged rows = %d", sum.Rows)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, 1<<20 + 12345, 1 << 40, math.MaxInt64} {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if v > up {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, up, i)
		}
		if up > v && float64(up-v) > 0.07*float64(v)+1 {
			t.Fatalf("bucket upper %d too far above %d: relative error %.3f", up, v, float64(up-v)/float64(v))
		}
		if i > 0 && bucketUpper(i-1) >= v {
			t.Fatalf("value %d should not fit bucket %d (upper %d)", v, i-1, bucketUpper(i-1))
		}
	}
	// Monotone uppers, no index out of range across the whole span.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper not strictly increasing at %d: %d <= %d", i, u, prev)
		}
		prev = u
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1000 observations: 1ms..1000ms linear.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		lo := time.Duration(float64(want) * 0.90)
		hi := time.Duration(float64(want) * 1.10)
		if got < lo || got > hi {
			t.Fatalf("q%.2f = %v, want within 10%% of %v", q, got, want)
		}
	}
	check(0.50, 500*time.Millisecond)
	check(0.95, 950*time.Millisecond)
	check(0.99, 990*time.Millisecond)
	if h.Max() != time.Second {
		t.Fatalf("max = %v", h.Max())
	}
	s := h.Summary()
	if s.Count != 1000 || s.P50 == 0 || s.Mean() == 0 {
		t.Fatalf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "p95=") {
		t.Fatalf("summary string = %q", s.String())
	}
}

func TestHistogramEmptyAndConcurrent(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Summary().Mean() != 0 {
		t.Fatal("empty histogram should be all zeros")
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("concurrent count = %d", h.Count())
	}
}

func TestPromRendering(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	var b strings.Builder
	h.WritePromHistogram(&b, "repro_test_seconds", "test latency")
	out := b.String()
	for _, s := range []string{
		"# TYPE repro_test_seconds histogram",
		`repro_test_seconds_bucket{le="+Inf"} 100`,
		"repro_test_seconds_count 100",
		"repro_test_seconds_p50 ",
		"repro_test_seconds_p99 ",
	} {
		if !strings.Contains(out, s) {
			t.Fatalf("prom output missing %q:\n%s", s, out)
		}
	}
	// p50 must be nonzero and in seconds (~0.002).
	if strings.Contains(out, "repro_test_seconds_p50 0\n") {
		t.Fatalf("p50 rendered as zero:\n%s", out)
	}
	var c strings.Builder
	WritePromCounter(&c, "repro_test_total", "count", 7)
	WritePromGauge(&c, "repro_test_gauge", "gauge", 1.5)
	if !strings.Contains(c.String(), "repro_test_total 7") || !strings.Contains(c.String(), "repro_test_gauge 1.5") {
		t.Fatalf("counter/gauge output:\n%s", c.String())
	}
}

func TestTracerRingAndSince(t *testing.T) {
	var nilT *Tracer
	nilT.Emit(Event{Kind: KindExec}) // no-op
	if nilT.Enabled() || nilT.Events() != nil || nilT.Seq() != 0 {
		t.Fatal("nil tracer should be inert")
	}

	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Emit(Event{Kind: KindExec, A: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("ring kept %d events, want 16", len(evs))
	}
	if evs[0].Seq != 25 || evs[len(evs)-1].Seq != 40 {
		t.Fatalf("ring span = [%d, %d], want [25, 40]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %+v", i, evs)
		}
	}
	since := tr.Since(38)
	if len(since) != 2 || since[0].Seq != 39 {
		t.Fatalf("Since(38) = %+v", since)
	}
	if tr.Seq() != 40 {
		t.Fatalf("Seq = %d", tr.Seq())
	}
	if got := tr.Since(40); len(got) != 0 {
		t.Fatalf("Since(latest) = %+v", got)
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindPrepare, Query: "ab12", Note: "miss", A: 3}, "miss warm=3"},
		{Event{Kind: KindQueueWait, Dur: time.Millisecond}, "wait=1ms"},
		{Event{Kind: KindExec, A: 42, B: 2, Dur: time.Millisecond, Note: "repaired"}, "rows=42 v=2 dur=1ms repaired"},
		{Event{Kind: KindRepair, A: 5, B: 3, Dur: time.Microsecond}, "touched=5 v=3"},
		{Event{Kind: KindResultCache, Note: "probe-hit", A: 1}, "probe-hit n=1"},
		{Event{Kind: KindSlowQuery, Dur: time.Second, Note: "10ms"}, "threshold=10ms"},
		{Event{Kind: KindPhase, Note: "shift", A: 2, V: 0.25}, "shift end est-err=0.250"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Fatalf("event %v rendered %q, want substring %q", c.e.Kind, got, c.want)
		}
	}
	if KindPrepare.String() != "prepare" || Kind(99).String() == "" {
		t.Fatal("kind names")
	}
}

func TestTextRing(t *testing.T) {
	var nilR *TextRing
	nilR.Add("x")
	if nilR.All() != nil {
		t.Fatal("nil ring should be inert")
	}
	r := NewTextRing(3)
	for _, s := range []string{"a", "b", "c", "d"} {
		r.Add(s)
	}
	got := r.All()
	if len(got) != 3 || got[0] != "b" || got[2] != "d" {
		t.Fatalf("ring = %v", got)
	}
}
