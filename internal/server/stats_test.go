package server

import (
	"sync"
	"testing"
	"time"
)

// Two structurally DIFFERENT statements with identical semantics: the FROM
// order is reversed, which CanonicalKey deliberately keeps distinct
// (relation order is structural — column ordinals are positional), so they
// occupy two plan-cache entries. Their subexpressions fingerprint
// identically, which is exactly what the shared statistics plane exists for.
const statsQueryA = `SELECT c.c_custkey FROM customer c, orders o
	WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'MACHINERY'`
const statsQueryB = `SELECT o2.o_custkey FROM orders o2, customer c2
	WHERE c2.c_custkey = o2.o_custkey AND c2.c_mktsegment = 'MACHINERY'`

// repairsOf returns the first live entry with the given cache key (-1
// sentinels when no entry matches; evicted entries have no per-entry line).
func repairsOf(m Metrics, key string) (repairs int64, warm int, fullOpts int64) {
	for _, em := range m.PerEntry {
		if em.Key == key {
			return em.Repairs, em.WarmSeeds, em.FullOpts
		}
	}
	return -1, -1, -1
}

// TestSharedStatsWarmStartAcrossEntries is the acceptance test for the
// statistics plane: concurrently warming query A teaches the shared store
// the true cardinalities of (customer), (orders) and (customer ⋈ orders);
// a first-ever Prepare+Exec of the structurally different query B then
// warm-starts from those fingerprints and repairs strictly less than a
// cold-store baseline; and with the eviction bound forcing churn, an
// evict-then-re-prepare cycle re-admits A with full-opt=1 on the fresh
// entry but zero additional repairs. Runs in the CI race shard.
func TestSharedStatsWarmStartAcrossEntries(t *testing.T) {
	// ---- cold-store baseline: B on a server that never saw A ----
	cold := testServer(t, Options{})
	stB, err := cold.Session().Prepare(statsQueryB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := stB.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	coldRepairs, coldWarm, _ := repairsOf(cold.Metrics(), stB.CacheKey())
	if coldRepairs < 1 {
		t.Fatalf("cold baseline never repaired (repairs=%d); the workload cannot "+
			"demonstrate warm-start", coldRepairs)
	}
	if coldWarm != 0 {
		t.Fatalf("cold baseline warm-seeded %d factors from an empty store", coldWarm)
	}

	// ---- warm path: MaxEntries=1 forces churn between A and B ----
	srv := testServer(t, Options{MaxEntries: 1, MaxConcurrent: 4})

	// Warm A from several goroutines at once: the store must absorb
	// concurrent folds of the same fingerprints.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := srv.Session()
			for i := 0; i < 3; i++ {
				st, err := sess.Prepare(statsQueryA)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Exec(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if n := srv.Stats().Len(); n == 0 {
		t.Fatal("warming A left the statistics plane empty")
	}

	// First-ever prepare of B: a cache miss (different canonical key), but
	// the store already knows every subexpression B is made of.
	sess := srv.Session()
	warmB, err := sess.Prepare(statsQueryB)
	if err != nil {
		t.Fatal(err)
	}
	if warmB.Hit {
		t.Fatal("structurally different B hit A's cache entry")
	}
	for i := 0; i < 3; i++ {
		if _, err := warmB.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	warmRepairs, warmSeeds, _ := repairsOf(srv.Metrics(), warmB.CacheKey())
	if warmSeeds == 0 {
		t.Fatal("B's entry was not warm-started from the shared store")
	}
	if warmRepairs >= coldRepairs {
		t.Fatalf("warm-started B repaired %d times, cold baseline %d — no sharing benefit",
			warmRepairs, coldRepairs)
	}

	// Preparing B above evicted A (MaxEntries=1). Re-preparing A must miss,
	// pay its one from-scratch optimization on the fresh entry, and then
	// execute with zero additional repairs: the statistics survived.
	reA, err := sess.Prepare(statsQueryA)
	if err != nil {
		t.Fatal(err)
	}
	if reA.Hit {
		t.Fatal("A survived an eviction bound of 1 while B was admitted")
	}
	for i := 0; i < 2; i++ {
		res, err := reA.Exec()
		if err != nil {
			t.Fatal(err)
		}
		if res.Repaired {
			t.Fatalf("re-admitted A repaired on exec %d despite warm statistics", i)
		}
	}
	repairs, warm, fullOpts := repairsOf(srv.Metrics(), reA.CacheKey())
	if fullOpts != 1 {
		t.Fatalf("re-admitted A full-opts=%d, want exactly 1 (the re-admission miss)", fullOpts)
	}
	if warm == 0 {
		t.Fatal("re-admitted A was not warm-started")
	}
	if repairs != 0 {
		t.Fatalf("re-admitted A repaired %d times, want 0", repairs)
	}
	m := srv.Metrics()
	if m.Evictions < 2 {
		t.Fatalf("evictions=%d, want at least 2 (A evicted for B, B evicted for A)", m.Evictions)
	}
	// Eviction must not erase history from the aggregate counters: three
	// from-scratch optimizations happened (A, B, re-admitted A) even though
	// only one entry is live.
	if m.FullOpts < 3 {
		t.Fatalf("aggregate full-opts=%d after churn, want >= 3 (evicted history retained)", m.FullOpts)
	}
	if m.Execs < 12+3+2 {
		t.Fatalf("aggregate execs=%d after churn, want all %d executions counted", m.Execs, 12+3+2)
	}
}

// TestEvictionTTL: an entry idle beyond the TTL is expired lazily at the
// next prepare — a miss that re-optimizes (warm) rather than a hit.
func TestEvictionTTL(t *testing.T) {
	// Generous TTL: the re-prepare below must land inside it even on a
	// loaded -race CI runner.
	const ttl = 300 * time.Millisecond
	srv := testServer(t, Options{TTL: ttl})
	sess := srv.Session()
	st, err := sess.Prepare(statsQueryA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(); err != nil {
		t.Fatal(err)
	}
	if again, err := sess.Prepare(statsQueryA); err != nil {
		t.Fatal(err)
	} else if !again.Hit {
		t.Fatal("immediate re-prepare missed despite TTL not elapsed")
	}
	time.Sleep(2 * ttl)
	again, err := sess.Prepare(statsQueryA)
	if err != nil {
		t.Fatal(err)
	}
	if again.Hit {
		t.Fatal("prepare hit an entry idle beyond the TTL")
	}
	m := srv.Metrics()
	if m.Evictions < 1 {
		t.Fatalf("evictions=%d after TTL expiry, want >= 1", m.Evictions)
	}
	// The expired entry's statistics warmed its replacement.
	if _, warm, _ := repairsOf(m, again.CacheKey()); warm == 0 {
		t.Fatal("TTL-expired entry's statistics did not warm the re-admission")
	}
}

// TestEvictionLRUOrder: with a bound of 2, touching the older entry makes
// the other one the LRU victim.
func TestEvictionLRUOrder(t *testing.T) {
	srv := testServer(t, Options{MaxEntries: 2})
	sess := srv.Session()

	a, err := sess.PrepareNamed("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PrepareNamed("Q6"); err != nil {
		t.Fatal(err)
	}
	// Touch Q1 so Q6 becomes least recently used.
	if _, err := sess.PrepareNamed("Q1"); err != nil {
		t.Fatal(err)
	}
	// Admitting a third structure evicts Q6, not Q1.
	if _, err := sess.PrepareNamed("Q5S"); err != nil {
		t.Fatal(err)
	}
	q1, err := sess.PrepareNamed("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if !q1.Hit {
		t.Fatal("recently used Q1 was evicted instead of the LRU entry")
	}
	if q1.entry != a.entry {
		t.Fatal("Q1 re-prepare did not find the original entry")
	}
	q6, err := sess.PrepareNamed("Q6")
	if err != nil {
		t.Fatal(err)
	}
	if q6.Hit {
		t.Fatal("LRU entry Q6 survived the bound")
	}
	if m := srv.Metrics(); m.Entries > 2 {
		t.Fatalf("entries=%d exceeds MaxEntries=2", m.Entries)
	}
}

// TestShutdownDrains: after Shutdown, executions are refused; Shutdown
// itself returns only after in-flight executions complete.
func TestShutdownDrains(t *testing.T) {
	srv := testServer(t, Options{})
	st, err := srv.Session().PrepareNamed("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	if _, err := st.Exec(); err == nil {
		t.Fatal("Exec succeeded after Shutdown")
	}
	srv.Shutdown() // idempotent
}
