// Package server is the concurrent query service over the incremental
// optimizer: the paper's optimizer-state-as-materialized-view kept alive
// across executions AND across sessions. Its heart is a shared plan cache
// keyed by canonical query structure (see CanonicalKey); each entry owns one
// live core.Optimizer whose state survives between executions, so every run
// of a prepared statement — from any session — feeds exact observed
// cardinalities back as cost deltas and the cached plan is incrementally
// REPAIRED, never re-planned from scratch. One session's executions improve
// every other session's plan: the cache entry is the materialized view, the
// feedback stream is its delta log.
//
// Concurrency model (audited against the contracts of the underlying
// packages):
//
//   - catalog.Catalog, relalg.Query and relalg.Plan are immutable after
//     construction (Query.Validate precomputes its lazy adjacency), so
//     executions read them lock-free and in parallel;
//   - each cache entry's mutable trio — cost.Model, core.Optimizer,
//     aqp.Calibrator — is guarded by the entry mutex; the current
//     {plan, version} pair is published behind one atomic pointer, so
//     executions never block on a repair in progress (they run the
//     previous plan and their feedback arrives a moment later);
//   - the cache map itself is under a server-wide RWMutex, held only for
//     lookup/insert (never during optimization or execution);
//   - admission control bounds concurrent executions with a semaphore sized
//     against the executor's Parallelism, so concurrent queries don't
//     oversubscribe the morsel workers.
package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aqp"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/sqlmini"
)

// Options configures a Server. The zero value is serviceable: default cost
// parameters, full plan space, full pruning, serial execution, admission
// sized to the machine.
type Options struct {
	// Params overrides the cost-model constants (nil: defaults).
	Params *cost.Params
	// Space restricts the plan space (nil: the full space).
	Space *relalg.SpaceOptions
	// Pruning selects the optimizer's pruning strategies (nil: all).
	Pruning *core.Pruning

	// Parallelism is the vectorized executor's morsel-driven worker count
	// per query; <= 1 executes serially.
	Parallelism int
	// MaxConcurrent bounds concurrently executing queries (admission
	// control). 0 derives it from GOMAXPROCS / Parallelism so the worker
	// pool is sized against the executor and concurrent queries don't
	// oversubscribe it.
	MaxConcurrent int

	// NonCumulative switches feedback calibration from cumulatively
	// averaged observations (the default, the paper's AQP-Cumulative) to
	// last-execution-only.
	NonCumulative bool
	// FeedbackThreshold suppresses feedback factors within this relative
	// distance of the previously applied one (0: the default 0.2). It is
	// what drives repairs to zero once a cached entry's statistics
	// converge.
	FeedbackThreshold float64

	// Dict resolves string literals in SQL text to dictionary codes and
	// Date encodes date literals; see internal/sqlmini.
	Dict map[string]int64
	Date func(y, m, d int) int64

	// Named registers prepared workload queries addressable by name
	// through Session.PrepareNamed and the line protocol's "query"
	// command (e.g. the TPC-H workload).
	Named map[string]*relalg.Query
}

// Server is the multi-session query service. Create one with New, open
// sessions with Session, and serve wire clients with ServeConn /
// ServeListener. All methods are safe for concurrent use.
type Server struct {
	cat  *catalog.Catalog
	opts Options

	sem chan struct{} // admission slots

	mu      sync.RWMutex
	entries map[string]*planEntry
	order   []string // insertion order, for stable metrics listings

	sessions atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
}

// New builds a server over the catalog. The catalog must not be mutated
// afterwards: executions read its rows and the cost model reads its
// statistics concurrently and lock-free.
func New(cat *catalog.Catalog, opts Options) (*Server, error) {
	if cat == nil {
		return nil, fmt.Errorf("server: nil catalog")
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0) / opts.Parallelism
		if opts.MaxConcurrent < 1 {
			opts.MaxConcurrent = 1
		}
	}
	if opts.FeedbackThreshold == 0 {
		opts.FeedbackThreshold = 0.2
	}
	return &Server{
		cat:     cat,
		opts:    opts,
		sem:     make(chan struct{}, opts.MaxConcurrent),
		entries: map[string]*planEntry{},
	}, nil
}

// Catalog returns the catalog the server executes over.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// Session opens a new session. Sessions are cheap handles: all heavy state
// (plans, optimizers, statistics) lives in the shared cache so that every
// session benefits from every other session's executions.
func (s *Server) Session() *Session {
	return &Session{srv: s, ID: s.sessions.Add(1)}
}

// Session is one client's handle on the server. Safe for concurrent use,
// though clients typically issue one request at a time.
type Session struct {
	srv *Server
	ID  int64

	execs atomic.Int64
}

// Execs reports the number of statements this session has executed.
func (sess *Session) Execs() int64 { return sess.execs.Load() }

// Prepare parses a SQL statement and binds it to the shared plan cache,
// optimizing it from scratch only if no structurally equal statement is
// cached yet.
func (sess *Session) Prepare(sql string) (*Stmt, error) {
	q, err := sqlmini.Parse(sql, sess.srv.cat, sqlmini.Options{
		Dict: sess.srv.opts.Dict, Date: sess.srv.opts.Date,
	})
	if err != nil {
		return nil, err
	}
	return sess.PrepareQuery(q)
}

// PrepareNamed binds a statement from the Options.Named registry.
func (sess *Session) PrepareNamed(name string) (*Stmt, error) {
	q, ok := sess.srv.opts.Named[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown named query %q", name)
	}
	return sess.PrepareQuery(q)
}

// PrepareQuery binds an already-built query to the shared plan cache. The
// query must not be mutated afterwards; validation (and the derived state
// it publishes) is safe even when the same instance is first prepared from
// several goroutines at once.
func (sess *Session) PrepareQuery(q *relalg.Query) (*Stmt, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e, hit, err := sess.srv.entry(q)
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: sess, entry: e, Hit: hit}, nil
}

// entry resolves (or creates) the cache entry for q and ensures it is
// initialized — the only point where a from-scratch optimization ever
// happens.
func (s *Server) entry(q *relalg.Query) (*planEntry, bool, error) {
	key := CanonicalKey(q)

	s.mu.RLock()
	e := s.entries[key]
	s.mu.RUnlock()
	hit := e != nil
	if e == nil {
		s.mu.Lock()
		if e = s.entries[key]; e == nil {
			e = &planEntry{key: key, q: q, name: q.Name}
			s.entries[key] = e
			s.order = append(s.order, key)
		} else {
			hit = true
		}
		s.mu.Unlock()
	}
	if hit {
		s.hits.Add(1)
		e.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	if err := e.ensureInit(s); err != nil {
		return nil, hit, err
	}
	return e, hit, nil
}

// planEntry is one cache slot: the live incremental optimizer for one
// canonical query structure, plus its feedback calibration state and
// metrics. See the package comment for the locking discipline.
type planEntry struct {
	key  string
	q    *relalg.Query
	name string

	// cur is the published {plan, version} pair, swapped as one pointer on
	// every repair so executions always report the generation they
	// actually ran.
	cur   atomic.Pointer[planVersion]
	hits  atomic.Int64
	execs atomic.Int64

	mu      sync.Mutex // guards everything below
	model   *cost.Model
	opt     *core.Optimizer
	cal     *aqp.Calibrator
	initErr error

	fullOpts    int64 // from-scratch optimizations (1, at initialization)
	fullOptTime time.Duration
	repairs     int64 // incremental Reoptimize calls
	repairTime  time.Duration
	converged   int64 // executions whose feedback was within threshold
	touched     int64 // cumulative optimizer entries touched by repairs
}

// planVersion is one published plan generation. The tree is immutable;
// version 1 is the initial optimization, each repair bumps it.
type planVersion struct {
	plan    *relalg.Plan
	version uint64
}

// ensureInit builds the entry's model and optimizer and runs the single
// from-scratch optimization, exactly once. Errors are sticky: a query whose
// model cannot be built fails the same way on every prepare.
func (e *planEntry) ensureInit(s *Server) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.opt != nil || e.initErr != nil {
		return e.initErr
	}
	params := cost.DefaultParams()
	if s.opts.Params != nil {
		params = *s.opts.Params
	}
	space := relalg.DefaultSpace()
	if s.opts.Space != nil {
		space = *s.opts.Space
	}
	mode := core.PruneAll
	if s.opts.Pruning != nil {
		mode = *s.opts.Pruning
	}
	m, err := cost.NewModel(e.q, s.cat, params)
	if err != nil {
		e.initErr = err
		return err
	}
	opt, err := core.New(m, space, mode)
	if err != nil {
		e.initErr = err
		return err
	}
	plan, err := opt.Optimize()
	if err != nil {
		e.initErr = err
		return err
	}
	e.model = m
	e.opt = opt
	e.cal = aqp.NewCalibrator(!s.opts.NonCumulative, s.opts.FeedbackThreshold)
	e.fullOpts++
	e.fullOptTime += opt.Metrics().Elapsed
	e.cur.Store(&planVersion{plan: plan, version: 1})
	return nil
}

// feedback folds one execution's observed cardinalities into the shared
// stats store and incrementally repairs the cached plan when any factor
// moved beyond the feedback threshold. This is the §4 view-maintenance loop
// running as a service: UpdateCardFactor stages the deltas, Reoptimize
// repairs only the affected region, and the repaired plan is published
// atomically for every session.
func (e *planEntry) feedback(cards map[relalg.RelSet]int64) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	changed := e.cal.Observe(cards, e.model)
	if len(changed) == 0 {
		e.converged++
		return false, nil
	}
	for set, f := range changed {
		e.opt.UpdateCardFactor(set, f)
	}
	plan, err := e.opt.Reoptimize()
	if err != nil {
		return false, err
	}
	met := e.opt.Metrics()
	e.repairs++
	e.repairTime += met.Elapsed
	e.touched += int64(met.TouchedEntries)
	e.cur.Store(&planVersion{plan: plan, version: e.cur.Load().version + 1})
	return true, nil
}

// Stmt is a prepared statement: a session's handle on a shared cache entry.
type Stmt struct {
	sess  *Session
	entry *planEntry
	// Hit reports whether Prepare found a live cache entry (true) or paid
	// the one-time from-scratch optimization (false).
	Hit bool
}

// CacheKey returns the statement's canonical cache key.
func (st *Stmt) CacheKey() string { return st.entry.key }

// Plan returns a snapshot of the current cached plan. The tree is immutable;
// later repairs swap in fresh trees without touching it.
func (st *Stmt) Plan() *relalg.Plan { return st.entry.cur.Load().plan }

// PlanVersion returns the current plan generation (1 = the initial plan).
func (st *Stmt) PlanVersion() uint64 { return st.entry.cur.Load().version }

// Query returns the canonical query the statement is bound to.
func (st *Stmt) Query() *relalg.Query { return st.entry.q }

// Result is one execution's outcome.
type Result struct {
	// Rows is the full result set (aggregated rows when the query
	// aggregates). Row slices are immutable and safe to retain.
	Rows []exec.Row
	// PlanVersion identifies the cached plan generation that executed;
	// it converges once feedback stabilizes.
	PlanVersion uint64
	// Repaired reports whether this execution's feedback triggered an
	// incremental repair of the cached plan.
	Repaired bool
	// Elapsed is the execution (not optimization) wall time.
	Elapsed time.Duration
}

// Exec executes the prepared statement: admission, snapshot the cached plan,
// run it on the vectorized executor, then feed the observed cardinalities
// back through the entry's live optimizer. Concurrent Execs of the same
// statement are safe and run in parallel up to the admission bound; the
// repair they trigger is serialized per entry.
func (st *Stmt) Exec() (*Result, error) {
	srv := st.sess.srv
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	e := st.entry
	snap := e.cur.Load()

	start := time.Now()
	comp := &exec.Compiler{Q: e.q, Cat: srv.cat, Parallelism: srv.opts.Parallelism}
	v, stats, err := comp.CompileVec(snap.plan)
	if err != nil {
		return nil, err
	}
	rows, err := exec.DrainVec(v)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	e.execs.Add(1)
	st.sess.execs.Add(1)

	repaired, err := e.feedback(stats.Snapshot())
	if err != nil {
		return nil, err
	}
	return &Result{Rows: rows, PlanVersion: snap.version, Repaired: repaired, Elapsed: elapsed}, nil
}

// Query is the one-shot convenience: Prepare + Exec.
func (sess *Session) Query(sql string) (*Result, error) {
	st, err := sess.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Exec()
}
