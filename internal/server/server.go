// Package server is the concurrent query service over the incremental
// optimizer: the paper's optimizer-state-as-materialized-view kept alive
// across executions AND across sessions. Its heart is a shared plan cache
// keyed by canonical query structure (see CanonicalKey); each entry owns one
// live core.Optimizer whose state survives between executions, so every run
// of a prepared statement — from any session — feeds exact observed
// cardinalities back as cost deltas and the cached plan is incrementally
// REPAIRED, never re-planned from scratch. One session's executions improve
// every other session's plan: the cache entry is the materialized view, the
// feedback stream is its delta log.
//
// Above the per-entry state sits the server-wide statistics plane
// (internal/fbstore): every entry's calibrator reads and writes observation
// state keyed by canonical subexpression fingerprint (relalg.Fingerprinter)
// rather than by the entry's positional RelSets, so two structurally
// different queries over the same tables share one learned history. That
// sharing is what makes the cache safely boundable: eviction (LRU order,
// optional TTL, Options.MaxEntries) discards only the plan and its live
// optimizer — the learned statistics survive in the store and warm-start
// the entry on re-admission, and every cache miss over hot tables seeds its
// fresh cost model from the store before the first optimization, starting
// near-converged instead of repeating the workload's whole learning curve.
//
// Concurrency model (audited against the contracts of the underlying
// packages):
//
//   - catalog.Catalog, relalg.Query and relalg.Plan are immutable after
//     construction (Query.Validate precomputes its lazy adjacency), so
//     executions read them lock-free and in parallel;
//   - each cache entry's mutable trio — cost.Model, core.Optimizer,
//     aqp.Calibrator — is guarded by the entry mutex; the current
//     {plan, version} pair is published behind one atomic pointer, so
//     executions never block on a repair in progress (they run the
//     previous plan and their feedback arrives a moment later);
//   - the fbstore.StatsStore is concurrency-safe on its own (short per-key
//     critical sections; folds are commutative), so entries never serialize
//     against each other on the shared statistics plane;
//   - the cache map itself is under a server-wide RWMutex, held only for
//     lookup/insert/evict (never during optimization or execution); an
//     evicted entry keeps serving statements that already hold it — it
//     merely becomes invisible to new prepares, and its feedback still
//     lands in the shared store;
//   - admission control bounds concurrent executions with a semaphore sized
//     against the executor's Parallelism, so concurrent queries don't
//     oversubscribe the morsel workers.
package server

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aqp"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/fbstore"
	"repro/internal/obs"
	"repro/internal/relalg"
	"repro/internal/rescache"
	"repro/internal/sqlmini"
)

// Options configures a Server. The zero value is serviceable: default cost
// parameters, full plan space, full pruning, serial execution, admission
// sized to the machine, unbounded plan cache, private statistics store.
type Options struct {
	// Params overrides the cost-model constants (nil: defaults).
	Params *cost.Params
	// Space restricts the plan space (nil: the full space).
	Space *relalg.SpaceOptions
	// Pruning selects the optimizer's pruning strategies (nil: all).
	Pruning *core.Pruning

	// Parallelism is the vectorized executor's morsel-driven worker count
	// per query; <= 1 executes serially.
	Parallelism int
	// MaxConcurrent bounds concurrently executing queries (admission
	// control). 0 derives it from GOMAXPROCS / Parallelism so the worker
	// pool is sized against the executor and concurrent queries don't
	// oversubscribe it.
	MaxConcurrent int

	// MemBudgetBytes bounds each query's tracked execution memory: the
	// spill-capable operators (hash join build, hash aggregation) go out
	// of core under grace hashing instead of exceeding it, the rest charge
	// through and record overage. 0 executes unbounded — memory is still
	// tracked, so the peak-memory metrics stay live either way.
	MemBudgetBytes int64
	// MemCeilingBytes bounds the sum of concurrently admitted queries'
	// memory budgets — the second admission gate, under the MaxConcurrent
	// semaphore: an execution whose budget would push the in-flight total
	// past the ceiling waits until running queries release theirs (the
	// wait lands in the queue-wait histogram and traces with reason
	// "mem"). Requires MemBudgetBytes, which must not exceed the ceiling —
	// a single query that could never be admitted is rejected at New.
	// 0 disables the ceiling.
	MemCeilingBytes int64

	// MaxEntries bounds the plan cache: inserting a cache miss beyond the
	// bound evicts the least-recently-used entry first. 0 is unbounded.
	// Eviction discards only the plan and its live optimizer — the learned
	// statistics survive in the shared store and warm-start re-admission.
	MaxEntries int
	// TTL expires cache entries idle longer than this (checked lazily at
	// prepare time, no background sweeper). 0 never expires.
	TTL time.Duration

	// NonCumulative switches feedback calibration from cumulatively
	// averaged observations (the default, the paper's AQP-Cumulative) to
	// last-execution-only.
	NonCumulative bool
	// FeedbackThreshold suppresses feedback factors within this relative
	// distance of the previously applied one (0: the default 0.2). It is
	// what drives repairs to zero once a cached entry's statistics
	// converge.
	FeedbackThreshold float64

	// Stats supplies the server-wide statistics plane; nil creates a
	// private one. Sharing one store between servers (or across server
	// restarts within a process) carries the learned cardinalities over;
	// for restarts across processes, persist the store with its Save/Load
	// snapshot codec (cmd/reproserve's -stats-file does both ends).
	Stats *fbstore.StatsStore

	// DecayHalfLife and StaleAfter configure observation ageing on the
	// private statistics store (see fbstore.Options): the half-life, in
	// logical observations, at which past observations lose half their
	// weight in the calibrated estimates, and the horizon beyond which an
	// unobserved fingerprint stops warm-starting and is eventually
	// reclaimed. Zero values keep the full history forever. Ignored when
	// Stats is supplied — ageing policy belongs to whoever built the store.
	DecayHalfLife float64
	StaleAfter    uint64

	// ResultCacheBytes enables the server-wide semantic result cache
	// (internal/rescache) with this byte budget: materialized outputs of
	// cacheable subplans, keyed by canonical subexpression fingerprint and
	// shared across statements and sessions. 0 (the default) disables
	// result caching entirely.
	ResultCacheBytes int64
	// ResultCacheMinCost is the optimizer-cost threshold below which a
	// cacheable subtree is not worth spooling (0: no threshold — every
	// eligible subtree is cached on first execution).
	ResultCacheMinCost float64
	// ResultCacheStaleAfter is the logical age, in result-cache probes,
	// beyond which an unprobed materialization stops serving and is
	// eventually reclaimed — the result-plane analogue of StaleAfter.
	// 0 keeps materializations until evicted or invalidated.
	ResultCacheStaleAfter uint64

	// DataDir binds every catalog table to a persistent log-structured
	// storage backend rooted at this directory (one subdirectory per
	// table): tables with data on disk are LOADED from it, replacing
	// whatever the process generated, and tables with empty directories
	// are seeded from their in-memory rows. Shutdown flushes unflushed
	// appends as immutable column segments, so a restart serves the same
	// data without regeneration. The bound backends also publish zone maps
	// that add the segment-pruned scan access path to the plan space.
	// Empty keeps today's purely in-memory catalog.
	DataDir string
	// SpillDir is the directory out-of-core operators create their
	// (immediately unlinked) spill partition files in. Empty uses the
	// system temp directory. An unwritable directory surfaces as a query
	// error at spill time, never a wedged query.
	SpillDir string

	// Dict resolves string literals in SQL text to dictionary codes and
	// Date encodes date literals; see internal/sqlmini.
	Dict map[string]int64
	Date func(y, m, d int) int64

	// Named registers prepared workload queries addressable by name
	// through Session.PrepareNamed and the line protocol's "query"
	// command (e.g. the TPC-H workload).
	Named map[string]*relalg.Query

	// TraceEvents enables query-lifecycle tracing: a ring buffer of the
	// last N structured events (prepare hit/miss with warm-seed counts,
	// admission-queue waits, executions, incremental repairs with
	// touched-entry counts and plan-version bumps, result-cache activity),
	// readable via Tracer(), the wire protocol's "trace" command and the
	// debug handler's /traces endpoint. 0 disables tracing entirely — the
	// executor and feedback paths then carry no event instrumentation.
	// The latency/repair/queue-wait histograms in Metrics are independent
	// of this switch and always on (they cost one atomic add per
	// execution).
	TraceEvents int
	// TraceSlowQuery dumps any execution slower than this threshold: the
	// query's lifecycle events plus its full per-operator EXPLAIN ANALYZE
	// profile, retained in a ring readable via SlowTraces() and /traces.
	// A nonzero threshold makes every execution collect a per-operator
	// profile (two clock reads per operator batch) so the dump is complete
	// when the threshold trips. 0 disables.
	TraceSlowQuery time.Duration
	// TraceOnSlow, when set, additionally receives each slow-query dump as
	// it is produced (e.g. to log it). Called synchronously on the
	// executing goroutine; keep it cheap.
	TraceOnSlow func(dump string)
}

// Server is the multi-session query service. Create one with New, open
// sessions with Session, and serve wire clients with ServeConn /
// ServeListener. All methods are safe for concurrent use.
type Server struct {
	cat      *catalog.Catalog
	opts     Options
	stats    *fbstore.StatsStore
	resCache *rescache.Cache     // nil unless Options.ResultCacheBytes > 0
	bind     catalog.BindSummary // what DataDir binding found at New

	sem     chan struct{} // admission slots
	closed  atomic.Bool   // set by Shutdown: no new executions admitted
	drainMu sync.Mutex    // serializes Shutdown drains
	flushed bool          // under drainMu: storage flush ran (first Shutdown)

	// The memory admission gate (MemCeilingBytes): memInUse is the sum of
	// admitted queries' budgets, waiters block on memCond until a release
	// makes room. Guarded by memMu; nil memCond means no ceiling.
	memMu    sync.Mutex
	memCond  *sync.Cond
	memInUse int64

	mu      sync.RWMutex
	entries map[string]*planEntry
	order   []string // insertion order, for stable metrics listings
	// retired accumulates evicted entries' counters so server-wide
	// Metrics totals survive cache churn instead of silently forgetting
	// evicted history. Atomics, folded in by retire OUTSIDE the cache
	// lock: snapshotting a victim takes its entry mutex, which may be
	// held across a whole optimization.
	retired retiredCounters

	sessions  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	warmSeeds atomic.Int64 // factors seeded from the store across all inits

	// The observability plane. The three histograms are always on (one
	// atomic add per execution); trace and slow are nil unless the
	// corresponding Trace* option enables them — emission through a nil
	// tracer/ring is a no-op.
	trace      *obs.Tracer
	slow       *obs.TextRing
	latencyH   *obs.Histogram // execution wall time
	repairH    *obs.Histogram // incremental repair time
	queueH     *obs.Histogram // admission-queue wait
	queueWaits atomic.Int64   // executions that waited > 0 on admission
	memWaits   atomic.Int64   // executions that waited on the memory gate

	// The memory plane: per-query peak tracked bytes, and the spill
	// counters accumulated across executions.
	peakMemH        *obs.Histogram
	spilledQueries  atomic.Int64
	spillPartitions atomic.Int64
	spillBytes      atomic.Int64
	spillRecursions atomic.Int64
}

// New builds a server over the catalog. The catalog must not be mutated
// afterwards: executions read its rows and the cost model reads its
// statistics concurrently and lock-free.
func New(cat *catalog.Catalog, opts Options) (*Server, error) {
	if cat == nil {
		return nil, fmt.Errorf("server: nil catalog")
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0) / opts.Parallelism
		if opts.MaxConcurrent < 1 {
			opts.MaxConcurrent = 1
		}
	}
	if opts.FeedbackThreshold == 0 {
		opts.FeedbackThreshold = 0.2
	}
	if opts.MaxEntries < 0 {
		return nil, fmt.Errorf("server: negative MaxEntries %d", opts.MaxEntries)
	}
	if opts.MemBudgetBytes < 0 || opts.MemCeilingBytes < 0 {
		return nil, fmt.Errorf("server: negative memory bound")
	}
	if opts.MemCeilingBytes > 0 {
		if opts.MemBudgetBytes == 0 {
			return nil, fmt.Errorf("server: MemCeilingBytes requires MemBudgetBytes")
		}
		if opts.MemBudgetBytes > opts.MemCeilingBytes {
			return nil, fmt.Errorf("server: per-query budget %d exceeds memory ceiling %d — no query could ever be admitted",
				opts.MemBudgetBytes, opts.MemCeilingBytes)
		}
	}
	var bind catalog.BindSummary
	if opts.DataDir != "" {
		// Bind before anything reads the catalog: loaded tables replace
		// their generated rows and re-analyze, so plans, statistics, and
		// the result cache all see the persisted data from the start.
		var err error
		bind, err = cat.BindDir(opts.DataDir, catalog.DefaultHistogramBuckets)
		if err != nil {
			return nil, fmt.Errorf("server: bind data dir: %w", err)
		}
	}
	stats := opts.Stats
	if stats == nil {
		stats = fbstore.NewWithOptions(fbstore.Options{
			DecayHalfLife: opts.DecayHalfLife,
			StaleAfter:    opts.StaleAfter,
		})
	}
	var rc *rescache.Cache
	if opts.ResultCacheBytes > 0 {
		rc = rescache.New(rescache.Options{
			MaxBytes:   opts.ResultCacheBytes,
			StaleAfter: opts.ResultCacheStaleAfter,
		})
	}
	srv := &Server{
		cat:      cat,
		opts:     opts,
		stats:    stats,
		resCache: rc,
		bind:     bind,
		sem:      make(chan struct{}, opts.MaxConcurrent),
		entries:  map[string]*planEntry{},
		latencyH: obs.NewHistogram(),
		repairH:  obs.NewHistogram(),
		queueH:   obs.NewHistogram(),
		peakMemH: obs.NewHistogram(),
	}
	if opts.MemCeilingBytes > 0 {
		srv.memCond = sync.NewCond(&srv.memMu)
	}
	if opts.TraceEvents > 0 {
		srv.trace = obs.NewTracer(opts.TraceEvents)
	}
	if opts.TraceSlowQuery > 0 {
		srv.slow = obs.NewTextRing(32)
	}
	return srv, nil
}

// Catalog returns the catalog the server executes over.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// Stats returns the server-wide statistics plane.
func (s *Server) Stats() *fbstore.StatsStore { return s.stats }

// ResultCache returns the server-wide semantic result cache, or nil when
// result caching is disabled.
func (s *Server) ResultCache() *rescache.Cache { return s.resCache }

// Tracer returns the lifecycle event ring, or nil when Options.TraceEvents
// is 0. The returned tracer is safe for concurrent reads (Events, Since)
// alongside serving.
func (s *Server) Tracer() *obs.Tracer { return s.trace }

// SlowTraces returns the retained slow-query dumps, oldest first (empty
// unless Options.TraceSlowQuery is set and a query has tripped it).
func (s *Server) SlowTraces() []string { return s.slow.All() }

// Session opens a new session. Sessions are cheap handles: all heavy state
// (plans, optimizers, statistics) lives in the shared cache so that every
// session benefits from every other session's executions.
func (s *Server) Session() *Session {
	return &Session{srv: s, ID: s.sessions.Add(1)}
}

// StorageInfo reports what the DataDir binding found at New: how many
// tables loaded from disk versus were seeded from generated rows, and the
// total rows loaded. Zero values when Options.DataDir is unset.
func (s *Server) StorageInfo() catalog.BindSummary { return s.bind }

// Shutdown drains the server for a graceful stop: no new executions are
// admitted (Exec returns an error), and Shutdown blocks until every
// in-flight execution has released its admission slot, then — when
// Options.DataDir is set — flushes every table's unflushed appends to its
// persistent backend as immutable segments. Callers stop their listeners
// first, then Shutdown, then read the final Metrics. Safe to call more than
// once; every call waits for the drain (the storage flush runs on the first
// call only — the backends close with it).
func (s *Server) Shutdown() error {
	s.closed.Store(true)
	// Serialize drains: two callers acquiring admission slots concurrently
	// could split the pool between them and deadlock.
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	// Acquiring every admission slot waits out all in-flight executions.
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	for i := 0; i < cap(s.sem); i++ {
		<-s.sem
	}
	if s.opts.DataDir != "" && !s.flushed {
		s.flushed = true
		return s.cat.FlushDir()
	}
	return nil
}

// Session is one client's handle on the server. Safe for concurrent use,
// though clients typically issue one request at a time.
type Session struct {
	srv *Server
	ID  int64

	execs atomic.Int64

	// stmts is the session-local statement handle cache: statement text
	// (or workload name) resolved straight to the shared cache entry, so a
	// re-prepare of a statement this session has already bound skips the
	// parse and the shared-cache lock entirely. Entries are handles, not
	// copies — the plan, optimizer and statistics stay shared — and a
	// handle outliving a server-side eviction keeps serving exactly like
	// any other statement held across an eviction.
	stmtMu sync.Mutex
	stmts  map[string]*planEntry
}

// cachedStmt resolves a session-local statement key, counting a prepare hit.
// An entry the server has since evicted (or idled past the TTL) falls back
// to the shared-cache path so eviction semantics stay exactly those of an
// uncached prepare; both checks are lock-free.
func (sess *Session) cachedStmt(key string) (*Stmt, bool) {
	sess.stmtMu.Lock()
	e := sess.stmts[key]
	sess.stmtMu.Unlock()
	if e == nil {
		return nil, false
	}
	now := time.Now()
	if e.dropped.Load() || sess.srv.expired(e, now) {
		sess.stmtMu.Lock()
		if sess.stmts[key] == e {
			delete(sess.stmts, key)
		}
		sess.stmtMu.Unlock()
		return nil, false
	}
	e.lastUsed.Store(now.UnixNano())
	sess.srv.hits.Add(1)
	e.hits.Add(1)
	sess.srv.trace.Emit(obs.Event{Kind: obs.KindPrepare, Query: e.hash, Note: "hit"})
	return &Stmt{sess: sess, entry: e, Hit: true}, true
}

// storeStmt remembers a resolved statement handle under the session-local
// key.
func (sess *Session) storeStmt(key string, st *Stmt) {
	sess.stmtMu.Lock()
	if sess.stmts == nil {
		sess.stmts = map[string]*planEntry{}
	}
	sess.stmts[key] = st.entry
	sess.stmtMu.Unlock()
}

// Execs reports the number of statements this session has executed.
func (sess *Session) Execs() int64 { return sess.execs.Load() }

// Prepare parses a SQL statement and binds it to the shared plan cache,
// optimizing it from scratch only if no structurally equal statement is
// cached yet. Statements this session has prepared before resolve through
// the session-local handle cache — no parse, no shared-cache lock.
func (sess *Session) Prepare(sql string) (*Stmt, error) {
	key := "sql:" + sql
	if st, ok := sess.cachedStmt(key); ok {
		return st, nil
	}
	q, err := sqlmini.Parse(sql, sess.srv.cat, sqlmini.Options{
		Dict: sess.srv.opts.Dict, Date: sess.srv.opts.Date,
	})
	if err != nil {
		return nil, err
	}
	st, err := sess.PrepareQuery(q)
	if err != nil {
		return nil, err
	}
	sess.storeStmt(key, st)
	return st, nil
}

// PrepareNamed binds a statement from the Options.Named registry, resolving
// repeats through the session-local handle cache like Prepare.
func (sess *Session) PrepareNamed(name string) (*Stmt, error) {
	key := "name:" + name
	if st, ok := sess.cachedStmt(key); ok {
		return st, nil
	}
	q, ok := sess.srv.opts.Named[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown named query %q", name)
	}
	st, err := sess.PrepareQuery(q)
	if err != nil {
		return nil, err
	}
	sess.storeStmt(key, st)
	return st, nil
}

// PrepareQuery binds an already-built query to the shared plan cache. The
// query must not be mutated afterwards; validation (and the derived state
// it publishes) is safe even when the same instance is first prepared from
// several goroutines at once.
func (sess *Session) PrepareQuery(q *relalg.Query) (*Stmt, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e, hit, err := sess.srv.entry(q)
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: sess, entry: e, Hit: hit}, nil
}

// entry resolves (or creates) the cache entry for q and ensures it is
// initialized — the only point where a from-scratch optimization ever
// happens, and the only point where entries are evicted (lazy TTL expiry
// plus the LRU bound on insert).
func (s *Server) entry(q *relalg.Query) (*planEntry, bool, error) {
	key := CanonicalKey(q)
	now := time.Now()

	s.mu.RLock()
	e := s.entries[key]
	s.mu.RUnlock()
	if e != nil && s.expired(e, now) {
		e = nil
	}
	hit := e != nil
	if e == nil {
		var victims []*planEntry
		s.mu.Lock()
		if cur := s.entries[key]; cur != nil && !s.expired(cur, now) {
			e, hit = cur, true // lost the race to another prepare
		} else {
			// An expired cur is removed by evictLocked's TTL sweep.
			victims = s.evictLocked(now)
			e = &planEntry{key: key, hash: keyHash(key), q: q, name: q.Name}
			e.lastUsed.Store(now.UnixNano())
			s.entries[key] = e
			s.order = append(s.order, key)
		}
		s.mu.Unlock()
		s.retire(victims)
	}
	e.lastUsed.Store(now.UnixNano())
	if hit {
		s.hits.Add(1)
		e.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	if err := e.ensureInit(s); err != nil {
		return nil, hit, err
	}
	if s.trace.Enabled() {
		ev := obs.Event{Kind: obs.KindPrepare, Query: e.hash, Note: "hit"}
		if !hit {
			// warmSeeds is written once inside ensureInit (under e.mu,
			// which this goroutine has since acquired and released), so
			// the read here is ordered after the write.
			ev.Note, ev.A = "miss", int64(e.warmSeeds)
		}
		s.trace.Emit(ev)
	}
	return e, hit, nil
}

// expired reports whether e has been idle beyond the TTL.
func (s *Server) expired(e *planEntry, now time.Time) bool {
	return s.opts.TTL > 0 && now.Sub(time.Unix(0, e.lastUsed.Load())) > s.opts.TTL
}

// evictLocked enforces the eviction policy under the cache write lock:
// first lazily expire idle entries (TTL), then evict least-recently-used
// entries until an insert stays within MaxEntries. It returns the victims;
// the caller folds their counters in with retire after releasing the lock.
// Eviction is safe by construction — the entry's learned statistics already
// live in the shared store, so re-admission warm-starts instead of
// relearning — and cheap to keep simple: O(entries) scans, fine at the
// cache sizes a bound implies.
func (s *Server) evictLocked(now time.Time) []*planEntry {
	var victims []*planEntry
	if s.opts.TTL > 0 {
		for key, e := range s.entries {
			if s.expired(e, now) {
				victims = append(victims, s.removeLocked(key))
				s.evictions.Add(1)
			}
		}
	}
	if s.opts.MaxEntries <= 0 {
		return victims
	}
	for len(s.entries) >= s.opts.MaxEntries {
		var lruKey string
		var lruAt int64
		for key, e := range s.entries {
			if at := e.lastUsed.Load(); lruKey == "" || at < lruAt {
				lruKey, lruAt = key, at
			}
		}
		victims = append(victims, s.removeLocked(lruKey))
		s.evictions.Add(1)
	}
	return victims
}

// retiredCounters is the aggregate history of evicted entries, folded into
// the server-wide Metrics totals so eviction never erases what happened.
// Durations are stored as nanoseconds.
type retiredCounters struct {
	execs       atomic.Int64
	fullOpts    atomic.Int64
	fullOptTime atomic.Int64
	repairs     atomic.Int64
	repairTime  atomic.Int64
	converged   atomic.Int64
}

// removeLocked drops one entry from the map and the order listing and
// returns it. Sessions still holding the entry keep executing against it;
// it is simply no longer discoverable, and its feedback keeps flowing into
// the shared store.
func (s *Server) removeLocked(key string) *planEntry {
	e := s.entries[key]
	e.dropped.Store(true)
	delete(s.entries, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return e
}

// retire folds evicted entries' counters into the retired totals. Called
// with the cache lock RELEASED: snapshot takes each victim's entry mutex,
// which may be held across a whole optimization, and waiting for that must
// stall only this prepare, never the server. A Metrics call racing the gap
// between removal and retire transiently undercounts the victim — the
// snapshot is documented as consistent-enough, and the gap closes
// immediately. (Executions an orphaned victim runs after its snapshot are
// not re-counted.)
func (s *Server) retire(victims []*planEntry) {
	for _, e := range victims {
		em := e.snapshot()
		s.retired.execs.Add(em.Execs)
		s.retired.fullOpts.Add(em.FullOpts)
		s.retired.fullOptTime.Add(int64(em.FullOptTime))
		s.retired.repairs.Add(em.Repairs)
		s.retired.repairTime.Add(int64(em.RepairTime))
		s.retired.converged.Add(em.Converged)
	}
}

// planEntry is one cache slot: the live incremental optimizer for one
// canonical query structure, plus its feedback calibration state and
// metrics. See the package comment for the locking discipline.
type planEntry struct {
	key  string
	hash string // short digest of key; the trace label for this entry
	q    *relalg.Query
	name string

	// estErr is the entry's latest cardinality estimation error — the mean
	// |ln(actual/estimated)| over the executed plan's counted nodes,
	// recomputed from every execution's feedback — stored as Float64bits so
	// metrics scrapes read it lock-free. It trends to zero as the entry's
	// statistics converge and spikes when the data drifts.
	estErr atomic.Uint64

	// cur is the published {plan, version} pair, swapped as one pointer on
	// every repair so executions always report the generation they
	// actually ran.
	cur      atomic.Pointer[planVersion]
	hits     atomic.Int64
	execs    atomic.Int64
	lastUsed atomic.Int64 // unix nanos of the last prepare/exec (LRU + TTL)
	dropped  atomic.Bool  // set on eviction; session handle caches re-resolve

	mu      sync.Mutex // guards everything below
	model   *cost.Model
	opt     *core.Optimizer
	cal     *aqp.Calibrator
	fper    *relalg.Fingerprinter // memoized; not concurrency-safe, use under mu
	initErr error

	fullOpts    int64 // from-scratch optimizations (1, at initialization)
	fullOptTime time.Duration
	repairs     int64 // incremental Reoptimize calls
	repairTime  time.Duration
	converged   int64 // executions whose feedback was within threshold
	touched     int64 // cumulative optimizer entries touched by repairs
	warmSeeds   int   // factors seeded from the shared store at init
}

// planVersion is one published plan generation. The tree is immutable;
// version 1 is the initial optimization, each repair bumps it.
type planVersion struct {
	plan    *relalg.Plan
	version uint64
	// cands are the plan's cacheable subtrees for the semantic result
	// cache, derived once per generation (candidates match plan nodes by
	// identity, so they are only valid against exactly this tree). Nil when
	// result caching is disabled.
	cands []exec.CacheCandidate
}

// warmStartBound caps the subexpression enumeration at warm start: beyond
// this many relations the connected-subset lattice is too large to probe
// the store exhaustively, so oversized queries simply start cold. Every
// workload query here is far below it (the paper's largest is an 8-way
// join).
const warmStartBound = 12

// warmSets enumerates the candidate expressions to warm-start from the
// store: every connected subexpression of q (the same no-Cartesian-product
// space the enumerator explores).
func warmSets(q *relalg.Query) []relalg.RelSet {
	if len(q.Rels) > warmStartBound {
		return nil
	}
	all := q.AllRels()
	sets := make([]relalg.RelSet, 0, 1<<uint(len(q.Rels))-1)
	all.ProperSubsets(func(sub relalg.RelSet) {
		if q.Connected(sub) {
			sets = append(sets, sub)
		}
	})
	sets = append(sets, all)
	return sets
}

// ensureInit builds the entry's model and optimizer and runs the single
// from-scratch optimization, exactly once. Before that optimization the
// model is warm-started: every connected subexpression whose fingerprint
// the shared store already knows gets its learned factor seeded, so a
// structurally new query over hot tables optimizes against the workload's
// converged statistics from the very first plan — and an entry re-admitted
// after eviction picks up exactly where its evicted predecessor left off.
// Errors are sticky: a query whose model cannot be built fails the same way
// on every prepare.
func (e *planEntry) ensureInit(s *Server) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.opt != nil || e.initErr != nil {
		return e.initErr
	}
	params := cost.DefaultParams()
	if s.opts.Params != nil {
		params = *s.opts.Params
	}
	space := relalg.DefaultSpace()
	if s.opts.Space != nil {
		space = *s.opts.Space
	}
	mode := core.PruneAll
	if s.opts.Pruning != nil {
		mode = *s.opts.Pruning
	}
	m, err := cost.NewModel(e.q, s.cat, params)
	if err != nil {
		e.initErr = err
		return err
	}
	fp := relalg.NewFingerprinter(e.q)
	cal := aqp.NewSharedCalibrator(s.stats, fp.Fingerprint,
		!s.opts.NonCumulative, s.opts.FeedbackThreshold)
	e.warmSeeds = cal.WarmStart(m, warmSets(e.q))
	s.warmSeeds.Add(int64(e.warmSeeds))
	opt, err := core.New(m, space, mode)
	if err != nil {
		e.initErr = err
		return err
	}
	plan, err := opt.Optimize()
	if err != nil {
		e.initErr = err
		return err
	}
	e.model = m
	e.opt = opt
	e.cal = cal
	e.fper = fp
	e.fullOpts++
	e.fullOptTime += opt.Metrics().Elapsed
	e.cur.Store(&planVersion{plan: plan, version: 1, cands: e.cacheCands(s, plan)})
	return nil
}

// cacheCands derives the result-cache candidates for a freshly published
// plan tree. Caller holds e.mu (the Fingerprinter memo is not
// concurrency-safe).
func (e *planEntry) cacheCands(s *Server, plan *relalg.Plan) []exec.CacheCandidate {
	if !s.resCache.Enabled() {
		return nil
	}
	return exec.BuildCacheCandidates(e.q, plan, e.fper, s.opts.ResultCacheMinCost)
}

// feedbackResult summarizes one feedback application for the caller's
// metrics and trace emission.
type feedbackResult struct {
	repaired bool
	dur      time.Duration // repair time (zero unless repaired)
	touched  int64         // optimizer entries the repair touched
	version  uint64        // plan version published by the repair
	estErr   float64       // this execution's estimation error
}

// planEstErr measures how far the executed plan's cardinality estimates
// were from the observed truth: the mean |ln(actual/estimated)| over the
// plan's counted nodes (both sides floored at one row). 0 is a perfect
// plan; ln 2 ≈ 0.69 means estimates are off by 2x on average.
func planEstErr(plan *relalg.Plan, cards map[relalg.RelSet]int64) float64 {
	var sum float64
	var n int
	var walk func(p *relalg.Plan)
	walk = func(p *relalg.Plan) {
		if p == nil {
			return
		}
		if p.Log != relalg.LogEnforce {
			if act, ok := cards[p.Expr]; ok {
				a, est := float64(act), p.Card
				if a < 1 {
					a = 1
				}
				if est < 1 {
					est = 1
				}
				sum += math.Abs(math.Log(a / est))
				n++
			}
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(plan)
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// feedback folds one execution's observed cardinalities into the shared
// stats store and incrementally repairs the cached plan when any factor
// moved beyond the feedback threshold. This is the §4 view-maintenance loop
// running as a service: UpdateCardFactor stages the deltas, Reoptimize
// repairs only the affected region, and the repaired plan is published
// atomically for every session. snap is the plan generation that executed —
// its estimates, against cards, yield the entry's estimation-error gauge.
func (e *planEntry) feedback(s *Server, snap *planVersion, cards map[relalg.RelSet]int64) (feedbackResult, error) {
	var fb feedbackResult
	fb.estErr = planEstErr(snap.plan, cards)
	e.estErr.Store(math.Float64bits(fb.estErr))
	e.mu.Lock()
	defer e.mu.Unlock()
	changed := e.cal.Observe(cards, e.model)
	if len(changed) == 0 {
		e.converged++
		return fb, nil
	}
	for set, f := range changed {
		e.opt.UpdateCardFactor(set, f)
	}
	plan, err := e.opt.Reoptimize()
	if err != nil {
		return fb, err
	}
	met := e.opt.Metrics()
	e.repairs++
	e.repairTime += met.Elapsed
	e.touched += int64(met.TouchedEntries)
	next := &planVersion{plan: plan, version: e.cur.Load().version + 1,
		cands: e.cacheCands(s, plan)}
	e.cur.Store(next)
	fb.repaired = true
	fb.dur = met.Elapsed
	fb.touched = int64(met.TouchedEntries)
	fb.version = next.version
	return fb, nil
}

// Stmt is a prepared statement: a session's handle on a shared cache entry.
type Stmt struct {
	sess  *Session
	entry *planEntry
	// Hit reports whether Prepare found a live cache entry (true) or paid
	// the one-time from-scratch optimization (false).
	Hit bool
}

// CacheKey returns the statement's canonical cache key.
func (st *Stmt) CacheKey() string { return st.entry.key }

// Plan returns a snapshot of the current cached plan. The tree is immutable;
// later repairs swap in fresh trees without touching it.
func (st *Stmt) Plan() *relalg.Plan { return st.entry.cur.Load().plan }

// PlanVersion returns the current plan generation (1 = the initial plan).
func (st *Stmt) PlanVersion() uint64 { return st.entry.cur.Load().version }

// Query returns the canonical query the statement is bound to.
func (st *Stmt) Query() *relalg.Query { return st.entry.q }

// Result is one execution's outcome.
type Result struct {
	// Rows is the full result set (aggregated rows when the query
	// aggregates). Row slices are immutable and safe to retain.
	Rows []exec.Row
	// PlanVersion identifies the cached plan generation that executed;
	// it converges once feedback stabilizes.
	PlanVersion uint64
	// Repaired reports whether this execution's feedback triggered an
	// incremental repair of the cached plan.
	Repaired bool
	// Elapsed is the execution (not optimization) wall time.
	Elapsed time.Duration
}

// Exec executes the prepared statement: admission, snapshot the cached plan,
// run it on the vectorized executor, then feed the observed cardinalities
// back through the entry's live optimizer. Concurrent Execs of the same
// statement are safe and run in parallel up to the admission bound; the
// repair they trigger is serialized per entry.
func (st *Stmt) Exec() (*Result, error) {
	res, _, err := st.exec(nil)
	return res, err
}

// ExplainAnalyze executes the statement once with per-operator profiling on
// and returns the annotated plan tree alongside the result: every operator's
// batch/row counts and wall time, with estimated-vs-actual cardinality and
// q-error per node. The profiled execution is a real one — its rows are
// returned and its feedback lands like any other execution's.
func (st *Stmt) ExplainAnalyze() (*Result, string, error) {
	return st.exec(exec.NewPlanProfile())
}

// exec is the shared execution path. A non-nil prof collects the
// per-operator profile and the annotated tree is returned as analyzed; a
// nonzero slow-query threshold profiles every execution so the dump is
// complete when the threshold trips.
func (st *Stmt) exec(prof *exec.PlanProfile) (res *Result, analyzed string, err error) {
	srv := st.sess.srv
	enqueued := time.Now()
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	// Second admission gate: hold the execution until its memory budget
	// fits under the server-wide ceiling. The wait folds into the same
	// queue-wait accounting as the semaphore, tagged with its reason.
	memWaited := false
	if budget := srv.opts.MemBudgetBytes; srv.memCond != nil {
		srv.memMu.Lock()
		for srv.memInUse+budget > srv.opts.MemCeilingBytes {
			if !memWaited {
				memWaited = true
				srv.memWaits.Add(1) // counted as the wait begins
			}
			srv.memCond.Wait()
		}
		srv.memInUse += budget
		srv.memMu.Unlock()
		defer func() {
			srv.memMu.Lock()
			srv.memInUse -= budget
			srv.memMu.Unlock()
			srv.memCond.Broadcast()
		}()
	}
	wait := time.Since(enqueued)
	srv.queueH.Observe(wait)
	if wait > 0 {
		srv.queueWaits.Add(1)
	}
	if srv.closed.Load() {
		return nil, "", fmt.Errorf("server: shutting down")
	}

	e := st.entry
	e.lastUsed.Store(time.Now().UnixNano())
	snap := e.cur.Load()

	analyze := prof != nil
	if prof == nil && srv.opts.TraceSlowQuery > 0 {
		prof = exec.NewPlanProfile()
	}
	traceFrom := srv.trace.Seq()
	queueNote := ""
	if memWaited {
		queueNote = "mem"
	}
	srv.trace.Emit(obs.Event{Kind: obs.KindQueueWait, Query: e.hash, Dur: wait, Note: queueNote})
	var rc0 rescache.Metrics
	if srv.trace.Enabled() && srv.resCache.Enabled() {
		rc0 = srv.resCache.Metrics()
	}

	start := time.Now()
	// The tracker is created even without a budget so per-query peak
	// memory stays observable on unbounded servers.
	mem := exec.NewMemTracker(srv.opts.MemBudgetBytes)
	comp := &exec.Compiler{
		Q: e.q, Cat: srv.cat, Parallelism: srv.opts.Parallelism,
		Cache: srv.resCache, CacheCands: snap.cands, Prof: prof,
		MemBudgetBytes: srv.opts.MemBudgetBytes, Mem: mem,
		SpillDir: srv.opts.SpillDir,
	}
	v, stats, err := comp.CompileVec(snap.plan)
	if err != nil {
		return nil, "", err
	}
	rows, err := exec.DrainVec(v)
	if err != nil {
		return nil, "", err
	}
	elapsed := time.Since(start)
	srv.latencyH.Observe(elapsed)
	e.execs.Add(1)
	st.sess.execs.Add(1)

	peak := mem.Peak()
	srv.peakMemH.ObserveInt64(peak)
	if parts, bytes, recs := mem.SpillStats(); parts > 0 {
		srv.spilledQueries.Add(1)
		srv.spillPartitions.Add(parts)
		srv.spillBytes.Add(bytes)
		srv.spillRecursions.Add(recs)
		srv.trace.Emit(obs.Event{Kind: obs.KindSpill, Query: e.hash,
			A: parts, B: bytes, V: float64(peak)})
	}

	if srv.trace.Enabled() && srv.resCache.Enabled() {
		// Result-cache activity is server-wide, so under concurrency the
		// delta may fold in a neighbor's probes — good enough for a trace.
		rc1 := srv.resCache.Metrics()
		for _, d := range []struct {
			note string
			n    int64
		}{
			{"probe-hit", rc1.Hits - rc0.Hits},
			{"spool", rc1.Stores - rc0.Stores},
			{"invalidate", rc1.Invalidations - rc0.Invalidations},
		} {
			if d.n > 0 {
				srv.trace.Emit(obs.Event{Kind: obs.KindResultCache, Query: e.hash, Note: d.note, A: d.n})
			}
		}
	}

	fb, err := e.feedback(srv, snap, stats.Snapshot())
	if err != nil {
		return nil, "", err
	}
	if fb.repaired {
		srv.repairH.Observe(fb.dur)
		srv.trace.Emit(obs.Event{Kind: obs.KindRepair, Query: e.hash,
			A: fb.touched, B: int64(fb.version), Dur: fb.dur})
	}
	note := ""
	if fb.repaired {
		note = "repaired"
	}
	srv.trace.Emit(obs.Event{Kind: obs.KindExec, Query: e.hash,
		A: int64(len(rows)), B: int64(snap.version), Dur: elapsed, Note: note})

	slow := srv.opts.TraceSlowQuery > 0 && elapsed >= srv.opts.TraceSlowQuery
	if analyze || slow {
		analyzed = prof.Format(e.q, snap.plan, stats)
	}
	if slow {
		srv.trace.Emit(obs.Event{Kind: obs.KindSlowQuery, Query: e.hash,
			Dur: elapsed, Note: srv.opts.TraceSlowQuery.String()})
		dump := srv.slowDump(e, snap, elapsed, analyzed, traceFrom)
		srv.slow.Add(dump)
		if srv.opts.TraceOnSlow != nil {
			srv.opts.TraceOnSlow(dump)
		}
	}
	if !analyze {
		analyzed = ""
	}
	res = &Result{Rows: rows, PlanVersion: snap.version, Repaired: fb.repaired, Elapsed: elapsed}
	return res, analyzed, nil
}

// slowDump renders one slow execution: a header, the query's lifecycle
// events since it entered admission, and the per-operator profile.
func (s *Server) slowDump(e *planEntry, snap *planVersion, elapsed time.Duration, analyzed string, fromSeq uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "slow query [%s] %s: %v over threshold %v, plan v%d\n",
		e.hash, e.name, elapsed.Round(time.Microsecond), s.opts.TraceSlowQuery, snap.version)
	events := 0
	for _, ev := range s.trace.Since(fromSeq) {
		if ev.Query != e.hash {
			continue
		}
		if events == 0 {
			b.WriteString("trace:\n")
		}
		events++
		fmt.Fprintf(&b, "  %s\n", ev.String())
	}
	if analyzed != "" {
		b.WriteString(analyzed)
	}
	return b.String()
}

// Query is the one-shot convenience: Prepare + Exec.
func (sess *Session) Query(sql string) (*Result, error) {
	st, err := sess.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Exec()
}
