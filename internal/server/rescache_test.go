package server

import (
	"sync"
	"testing"

	"repro/internal/sqlmini"
)

// sharedSubexprSQL is a hot set whose statements deliberately overlap: every
// statement contains the MACHINERY customer filter scan, and the first two
// share the customer⋈orders join core — the cross-query sharing the semantic
// result cache exists for. Distinct projections keep the plan-cache keys
// distinct while the cacheable subtrees fingerprint identically.
var sharedSubexprSQL = []string{
	`SELECT l.l_orderkey FROM customer c, orders o, lineitem l
	   WHERE c.c_mktsegment = 'MACHINERY' AND c.c_custkey = o.o_custkey
	     AND o.o_orderkey = l.l_orderkey`,
	`SELECT o.o_orderkey FROM customer c, orders o
	   WHERE c.c_mktsegment = 'MACHINERY' AND c.c_custkey = o.o_custkey`,
	`SELECT c.c_custkey FROM customer c WHERE c.c_mktsegment = 'MACHINERY'`,
}

// parseSQL parses one test statement with the server's dictionary.
func parseSQL(t *testing.T, srv *Server, sql string) *Stmt {
	t.Helper()
	st, err := srv.Session().Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeConcurrentStressResultCache extends the race-shard stress to the
// semantic result cache: goroutines hammer a hot set of statements that
// SHARE subexpressions, with result caching enabled. Every multiset must
// match the uncached serial baseline, and the cache must demonstrably serve
// (stores and cross-statement hits both nonzero).
func TestServeConcurrentStressResultCache(t *testing.T) {
	srv := testServer(t, Options{
		MaxConcurrent: 4, Parallelism: 2,
		ResultCacheBytes: 32 << 20,
	})
	baselines := make([]map[string]int, len(sharedSubexprSQL))
	for i, sql := range sharedSubexprSQL {
		q, err := sqlmini.Parse(sql, srv.Catalog(), sqlmini.Options{
			Dict: srv.opts.Dict, Date: srv.opts.Date,
		})
		if err != nil {
			t.Fatal(err)
		}
		baselines[i] = serialBaseline(t, srv.Catalog(), q)
	}

	const goroutines = 8
	const rounds = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := srv.Session()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(sharedSubexprSQL)
				st, err := sess.Prepare(sharedSubexprSQL[i])
				if err != nil {
					t.Errorf("g%d r%d prepare: %v", g, r, err)
					return
				}
				res, err := st.Exec()
				if err != nil {
					t.Errorf("g%d r%d exec: %v", g, r, err)
					return
				}
				if !sameMultiset(multiset(res.Rows), baselines[i]) {
					t.Errorf("g%d r%d: statement %d diverged from the uncached serial baseline (%d rows)",
						g, r, i, len(res.Rows))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	m := srv.Metrics()
	if !m.ResultCacheEnabled {
		t.Fatal("result cache not enabled")
	}
	rc := m.ResultCache
	if rc.Stores == 0 {
		t.Fatal("stress run spooled nothing into the result cache")
	}
	if rc.Hits == 0 {
		t.Fatal("stress run never served from the result cache")
	}
	if rc.Bytes <= 0 || rc.Entries == 0 {
		t.Fatalf("result cache empty after the stress run: %+v", rc)
	}
	if rc.Invalidations != 0 {
		t.Fatalf("spurious invalidations on an immutable catalog: %+v", rc)
	}
}

// TestResultCacheInvalidationDifferential: an Append to a base table bumps
// the catalog data version, every cached result over that table bypasses
// (counted as invalidations), and post-mutation executions match a fresh
// uncached baseline over the MUTATED data — served results never go stale.
func TestResultCacheInvalidationDifferential(t *testing.T) {
	srv := testServer(t, Options{ResultCacheBytes: 32 << 20})
	sql := sharedSubexprSQL[0]
	st := parseSQL(t, srv, sql)

	// Warm the cache, then confirm it serves.
	if _, err := st.Exec(); err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	warm := srv.ResultCache().Metrics()
	if warm.Stores == 0 || warm.Hits == 0 {
		t.Fatalf("cache not serving before the mutation: %+v", warm)
	}
	if !sameMultiset(multiset(res.Rows), serialBaseline(t, srv.Catalog(), st.Query())) {
		t.Fatal("warm result diverged before the mutation")
	}

	// Mutate customer while quiesced: clone the highest-key row under a
	// fresh key so the filtered scan's output genuinely changes.
	cust := srv.Catalog().MustTable("customer")
	row := append([]int64(nil), cust.Rows[0]...)
	row[cust.MustCol("c_custkey")] = int64(len(cust.Rows) + 1000)
	cust.Append(row)
	cust.Analyze(0)

	res, err = st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	after := srv.ResultCache().Metrics()
	if after.Invalidations == 0 {
		t.Fatal("no cache invalidations after Append bumped the data version")
	}
	want := serialBaseline(t, srv.Catalog(), st.Query())
	if !sameMultiset(multiset(res.Rows), want) {
		t.Fatal("post-mutation result diverged from the uncached baseline over mutated data")
	}
	// The re-spooled entries serve the NEW data.
	res, err = st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if srv.ResultCache().Metrics().Hits == after.Hits {
		t.Fatal("cache never re-served after re-spooling the mutated table")
	}
	if !sameMultiset(multiset(res.Rows), want) {
		t.Fatal("re-warmed result diverged from the uncached baseline")
	}
}

// TestResultCacheFeedbackUnaffected is the server-level half of the §5.4
// bar: the RunStats-derived feedback must drive the entry identically with
// the cache on and off — same repair count, same converged plan version.
func TestResultCacheFeedbackUnaffected(t *testing.T) {
	run := func(opts Options) (versions []uint64, repairs []bool) {
		srv := testServer(t, opts)
		st := parseSQL(t, srv, sharedSubexprSQL[0])
		for i := 0; i < 6; i++ {
			res, err := st.Exec()
			if err != nil {
				t.Fatal(err)
			}
			versions = append(versions, res.PlanVersion)
			repairs = append(repairs, res.Repaired)
		}
		return versions, repairs
	}
	v0, r0 := run(Options{})
	v1, r1 := run(Options{ResultCacheBytes: 32 << 20})
	for i := range v0 {
		if v0[i] != v1[i] || r0[i] != r1[i] {
			t.Fatalf("feedback trajectory diverged with caching on:\nuncached versions=%v repairs=%v\ncached   versions=%v repairs=%v",
				v0, r0, v1, r1)
		}
	}
}

// TestSessionStmtCacheResolvesLocally: a re-prepared statement resolves
// through the session-local handle cache to the same shared entry, and a
// different session still shares the entry through the server cache.
func TestSessionStmtCacheResolvesLocally(t *testing.T) {
	srv := testServer(t, Options{})
	sess := srv.Session()
	a, err := sess.Prepare(sharedSubexprSQL[1])
	if err != nil {
		t.Fatal(err)
	}
	if a.Hit {
		t.Fatal("first prepare reported a hit")
	}
	b, err := sess.Prepare(sharedSubexprSQL[1])
	if err != nil {
		t.Fatal(err)
	}
	if !b.Hit || b.entry != a.entry {
		t.Fatal("session re-prepare did not resolve to the shared entry")
	}
	n1, err := srv.Session().Prepare(sharedSubexprSQL[1])
	if err != nil {
		t.Fatal(err)
	}
	if !n1.Hit || n1.entry != a.entry {
		t.Fatal("fresh session did not share the entry")
	}
	// Named statements cache per session too.
	s2 := srv.Session()
	q1, err := s2.PrepareNamed("Q1")
	if err != nil {
		t.Fatal(err)
	}
	q1b, err := s2.PrepareNamed("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if !q1b.Hit || q1b.entry != q1.entry {
		t.Fatal("named re-prepare did not resolve session-locally")
	}
	m := srv.Metrics()
	if m.Hits != 3 {
		t.Fatalf("hits=%d, want 3 (two session-local, one shared)", m.Hits)
	}
}
