package server

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rescache"
)

// EntryMetrics is one cache entry's counters — the paper's Figure 9 story
// (repair cost vs full re-optimization cost) measured per prepared
// statement across a live workload.
type EntryMetrics struct {
	Key   string // canonical cache key
	Hash  string // short digest of Key
	Query string // display name of the first query bound to the entry

	Hits  int64 // prepares that found the entry live
	Execs int64 // executions

	FullOpts    int64         // from-scratch optimizations (1: init only)
	FullOptTime time.Duration // time spent in them
	Repairs     int64         // incremental repairs triggered by feedback
	RepairTime  time.Duration // time spent repairing
	Converged   int64         // executions whose feedback was sub-threshold
	Touched     int64         // cumulative optimizer entries touched
	WarmSeeds   int           // factors seeded from the shared store at init

	PlanVersion   uint64 // current plan generation (1 = initial plan)
	PlanSignature string // canonical structure of the current plan

	// EstErr is the entry's latest cardinality estimation error: the mean
	// |ln(actual/estimated)| over the last executed plan's counted nodes.
	// It trends to zero as feedback converges and spikes on data drift.
	EstErr float64
}

// Metrics is a consistent-enough snapshot of the server's counters: entry
// snapshots are taken per-entry under the entry lock, totals are sums over
// the snapshot.
type Metrics struct {
	Sessions int64 // sessions opened
	Entries  int   // live cache entries

	Hits      int64 // prepares served from cache
	Misses    int64 // prepares that created (and optimized) an entry
	Evictions int64 // entries dropped by the LRU bound or TTL expiry
	Execs     int64

	FullOpts    int64
	FullOptTime time.Duration
	Repairs     int64
	RepairTime  time.Duration
	Converged   int64

	// StatsKeys is the number of canonical subexpression fingerprints the
	// server-wide statistics plane has learned about; WarmSeeds counts the
	// factors it seeded into fresh entries before their first optimization.
	// Statistics outlive evicted entries, so StatsKeys only shrinks when
	// the ageing sweep reclaims fingerprints the workload stopped touching.
	StatsKeys int
	WarmSeeds int64

	// Ageing observability for the statistics plane under data drift:
	// StatsClock is the logical observation clock (total folds absorbed),
	// StatsDecays counts folds that exponentially decayed stored history,
	// StatsStale counts fingerprints currently beyond the staleness horizon
	// (recorded but no longer warm-starting), and StatsReclaimed counts
	// entries the sweep has deleted outright. All zero when ageing is off.
	StatsClock     uint64
	StatsDecays    int64
	StatsStale     int
	StatsReclaimed int64

	// ResultCache snapshots the semantic result cache (all zero when
	// Options.ResultCacheBytes is 0); ResultCacheEnabled distinguishes a
	// disabled cache from an enabled-but-untouched one.
	ResultCacheEnabled bool
	ResultCache        rescache.Metrics

	// QueueWaits counts executions that measurably waited on the admission
	// semaphore; QueueWait, ExecLatency and RepairLatency digest the
	// always-on latency histograms (admission wait and execution wall time
	// per execution, repair wall time per incremental repair). MemWaits
	// counts executions that waited on the memory-ceiling gate
	// specifically (a subset of QueueWaits).
	QueueWaits    int64
	MemWaits      int64
	QueueWait     obs.HistSummary
	ExecLatency   obs.HistSummary
	RepairLatency obs.HistSummary

	// The memory plane: PeakMem digests per-query peak tracked execution
	// memory in bytes (always on — tracked even without a budget), and the
	// Spill* counters accumulate grace-hash spill activity across all
	// executions under a budget. SpilledQueries counts executions that
	// spilled at all.
	PeakMem         obs.IntSummary
	SpilledQueries  int64
	SpillPartitions int64
	SpillBytes      int64
	SpillRecursions int64

	// Retired is the aggregate history of evicted entries. It is already
	// included in the totals above; it is broken out so the totals can be
	// reconciled against the per-entry lines, which cover live entries only.
	Retired RetiredMetrics

	PerEntry []EntryMetrics // in entry creation order
}

// RetiredMetrics is the evicted-entry history folded into Metrics totals.
type RetiredMetrics struct {
	Execs       int64
	FullOpts    int64
	FullOptTime time.Duration
	Repairs     int64
	RepairTime  time.Duration
	Converged   int64
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() Metrics {
	s.mu.RLock()
	entries := make([]*planEntry, 0, len(s.order))
	for _, key := range s.order {
		entries = append(entries, s.entries[key])
	}
	s.mu.RUnlock()

	m := Metrics{
		Sessions:       s.sessions.Load(),
		Entries:        len(entries),
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Evictions:      s.evictions.Load(),
		StatsKeys:      s.stats.Len(),
		WarmSeeds:      s.warmSeeds.Load(),
		StatsClock:     s.stats.Clock(),
		StatsDecays:    s.stats.Decays(),
		StatsStale:     s.stats.StaleKeys(),
		StatsReclaimed: s.stats.Reclaimed(),

		ResultCacheEnabled: s.resCache.Enabled(),
		ResultCache:        s.resCache.Metrics(),

		QueueWaits:    s.queueWaits.Load(),
		MemWaits:      s.memWaits.Load(),
		QueueWait:     s.queueH.Summary(),
		ExecLatency:   s.latencyH.Summary(),
		RepairLatency: s.repairH.Summary(),

		PeakMem:         s.peakMemH.SummaryInt64(),
		SpilledQueries:  s.spilledQueries.Load(),
		SpillPartitions: s.spillPartitions.Load(),
		SpillBytes:      s.spillBytes.Load(),
		SpillRecursions: s.spillRecursions.Load(),

		Retired: RetiredMetrics{
			Execs:       s.retired.execs.Load(),
			FullOpts:    s.retired.fullOpts.Load(),
			FullOptTime: time.Duration(s.retired.fullOptTime.Load()),
			Repairs:     s.retired.repairs.Load(),
			RepairTime:  time.Duration(s.retired.repairTime.Load()),
			Converged:   s.retired.converged.Load(),
		},
	}
	// Start the totals from the retired history so evicted entries' past
	// stays in the aggregate counters (their per-entry lines are gone).
	m.Execs = m.Retired.Execs
	m.FullOpts = m.Retired.FullOpts
	m.FullOptTime = m.Retired.FullOptTime
	m.Repairs = m.Retired.Repairs
	m.RepairTime = m.Retired.RepairTime
	m.Converged = m.Retired.Converged
	for _, e := range entries {
		em := e.snapshot()
		m.Execs += em.Execs
		m.FullOpts += em.FullOpts
		m.FullOptTime += em.FullOptTime
		m.Repairs += em.Repairs
		m.RepairTime += em.RepairTime
		m.Converged += em.Converged
		m.PerEntry = append(m.PerEntry, em)
	}
	return m
}

func (e *planEntry) snapshot() EntryMetrics {
	em := EntryMetrics{
		Key:    e.key,
		Hash:   e.hash,
		Query:  e.name,
		Hits:   e.hits.Load(),
		Execs:  e.execs.Load(),
		EstErr: math.Float64frombits(e.estErr.Load()),
	}
	if snap := e.cur.Load(); snap != nil {
		em.PlanVersion = snap.version
		em.PlanSignature = snap.plan.Signature()
	}
	e.mu.Lock()
	em.FullOpts = e.fullOpts
	em.FullOptTime = e.fullOptTime
	em.Repairs = e.repairs
	em.RepairTime = e.repairTime
	em.Converged = e.converged
	em.Touched = e.touched
	em.WarmSeeds = e.warmSeeds
	e.mu.Unlock()
	return em
}

// String renders the snapshot as a compact report, one line per entry.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions=%d entries=%d hits=%d misses=%d evictions=%d execs=%d\n",
		m.Sessions, m.Entries, m.Hits, m.Misses, m.Evictions, m.Execs)
	fmt.Fprintf(&b, "full-opts=%d (%v) repairs=%d (%v) converged-execs=%d\n",
		m.FullOpts, m.FullOptTime.Round(time.Microsecond),
		m.Repairs, m.RepairTime.Round(time.Microsecond), m.Converged)
	fmt.Fprintf(&b, "retired: execs=%d full-opts=%d (%v) repairs=%d (%v) converged=%d\n",
		m.Retired.Execs, m.Retired.FullOpts, m.Retired.FullOptTime.Round(time.Microsecond),
		m.Retired.Repairs, m.Retired.RepairTime.Round(time.Microsecond), m.Retired.Converged)
	fmt.Fprintf(&b, "latency: %s\n", m.ExecLatency)
	fmt.Fprintf(&b, "queue-wait: waited=%d mem-waited=%d %s\n", m.QueueWaits, m.MemWaits, m.QueueWait)
	fmt.Fprintf(&b, "memory: peak-bytes %s\n", m.PeakMem)
	if m.SpilledQueries > 0 {
		fmt.Fprintf(&b, "spill: queries=%d partitions=%d bytes=%d recursions=%d\n",
			m.SpilledQueries, m.SpillPartitions, m.SpillBytes, m.SpillRecursions)
	}
	if m.RepairLatency.Count > 0 {
		fmt.Fprintf(&b, "repair-latency: %s\n", m.RepairLatency)
	}
	fmt.Fprintf(&b, "stats-plane: keys=%d warm-seeds=%d clock=%d decays=%d stale=%d reclaimed=%d\n",
		m.StatsKeys, m.WarmSeeds, m.StatsClock, m.StatsDecays, m.StatsStale, m.StatsReclaimed)
	if m.ResultCacheEnabled {
		rc := m.ResultCache
		fmt.Fprintf(&b, "result-cache: entries=%d bytes=%d hits=%d misses=%d stores=%d evictions=%d invalidations=%d reclaimed=%d\n",
			rc.Entries, rc.Bytes, rc.Hits, rc.Misses, rc.Stores,
			rc.Evictions, rc.Invalidations, rc.Reclaimed)
	}
	for _, e := range m.PerEntry {
		fmt.Fprintf(&b, "  [%s] %-8s hits=%-3d execs=%-4d full-opt=%d/%v repairs=%d/%v converged=%d touched=%d warm=%d est-err=%.3f plan=v%d\n",
			e.Hash, e.Query, e.Hits, e.Execs,
			e.FullOpts, e.FullOptTime.Round(time.Microsecond),
			e.Repairs, e.RepairTime.Round(time.Microsecond),
			e.Converged, e.Touched, e.WarmSeeds, e.EstErr, e.PlanVersion)
	}
	return b.String()
}

// MarshalJSON renders the snapshot for machine consumption (reproserve
// -metrics-json). Durations marshal as nanosecond integers like any
// time.Duration; the two aggregate optimizer times additionally carry
// human-readable *String twins so the JSON is skimmable as-is.
func (m Metrics) MarshalJSON() ([]byte, error) {
	type alias Metrics // method-free view: avoids MarshalJSON recursion
	return json.Marshal(struct {
		alias
		FullOptTimeString string
		RepairTimeString  string
	}{alias(m), m.FullOptTime.String(), m.RepairTime.String()})
}
