package server

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/rescache"
)

// EntryMetrics is one cache entry's counters — the paper's Figure 9 story
// (repair cost vs full re-optimization cost) measured per prepared
// statement across a live workload.
type EntryMetrics struct {
	Key   string // canonical cache key
	Hash  string // short digest of Key
	Query string // display name of the first query bound to the entry

	Hits  int64 // prepares that found the entry live
	Execs int64 // executions

	FullOpts    int64         // from-scratch optimizations (1: init only)
	FullOptTime time.Duration // time spent in them
	Repairs     int64         // incremental repairs triggered by feedback
	RepairTime  time.Duration // time spent repairing
	Converged   int64         // executions whose feedback was sub-threshold
	Touched     int64         // cumulative optimizer entries touched
	WarmSeeds   int           // factors seeded from the shared store at init

	PlanVersion   uint64 // current plan generation (1 = initial plan)
	PlanSignature string // canonical structure of the current plan
}

// Metrics is a consistent-enough snapshot of the server's counters: entry
// snapshots are taken per-entry under the entry lock, totals are sums over
// the snapshot.
type Metrics struct {
	Sessions int64 // sessions opened
	Entries  int   // live cache entries

	Hits      int64 // prepares served from cache
	Misses    int64 // prepares that created (and optimized) an entry
	Evictions int64 // entries dropped by the LRU bound or TTL expiry
	Execs     int64

	FullOpts    int64
	FullOptTime time.Duration
	Repairs     int64
	RepairTime  time.Duration
	Converged   int64

	// StatsKeys is the number of canonical subexpression fingerprints the
	// server-wide statistics plane has learned about; WarmSeeds counts the
	// factors it seeded into fresh entries before their first optimization.
	// Statistics outlive evicted entries, so StatsKeys only shrinks when
	// the ageing sweep reclaims fingerprints the workload stopped touching.
	StatsKeys int
	WarmSeeds int64

	// Ageing observability for the statistics plane under data drift:
	// StatsClock is the logical observation clock (total folds absorbed),
	// StatsDecays counts folds that exponentially decayed stored history,
	// StatsStale counts fingerprints currently beyond the staleness horizon
	// (recorded but no longer warm-starting), and StatsReclaimed counts
	// entries the sweep has deleted outright. All zero when ageing is off.
	StatsClock     uint64
	StatsDecays    int64
	StatsStale     int
	StatsReclaimed int64

	// ResultCache snapshots the semantic result cache (all zero when
	// Options.ResultCacheBytes is 0); ResultCacheEnabled distinguishes a
	// disabled cache from an enabled-but-untouched one.
	ResultCacheEnabled bool
	ResultCache        rescache.Metrics

	PerEntry []EntryMetrics // in entry creation order
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() Metrics {
	s.mu.RLock()
	entries := make([]*planEntry, 0, len(s.order))
	for _, key := range s.order {
		entries = append(entries, s.entries[key])
	}
	s.mu.RUnlock()

	m := Metrics{
		Sessions:       s.sessions.Load(),
		Entries:        len(entries),
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Evictions:      s.evictions.Load(),
		StatsKeys:      s.stats.Len(),
		WarmSeeds:      s.warmSeeds.Load(),
		StatsClock:     s.stats.Clock(),
		StatsDecays:    s.stats.Decays(),
		StatsStale:     s.stats.StaleKeys(),
		StatsReclaimed: s.stats.Reclaimed(),

		ResultCacheEnabled: s.resCache.Enabled(),
		ResultCache:        s.resCache.Metrics(),

		// Start from the retired totals so evicted entries' history stays
		// in the aggregate counters (their per-entry lines are gone).
		Execs:       s.retired.execs.Load(),
		FullOpts:    s.retired.fullOpts.Load(),
		FullOptTime: time.Duration(s.retired.fullOptTime.Load()),
		Repairs:     s.retired.repairs.Load(),
		RepairTime:  time.Duration(s.retired.repairTime.Load()),
		Converged:   s.retired.converged.Load(),
	}
	for _, e := range entries {
		em := e.snapshot()
		m.Execs += em.Execs
		m.FullOpts += em.FullOpts
		m.FullOptTime += em.FullOptTime
		m.Repairs += em.Repairs
		m.RepairTime += em.RepairTime
		m.Converged += em.Converged
		m.PerEntry = append(m.PerEntry, em)
	}
	return m
}

func (e *planEntry) snapshot() EntryMetrics {
	em := EntryMetrics{
		Key:   e.key,
		Hash:  keyHash(e.key),
		Query: e.name,
		Hits:  e.hits.Load(),
		Execs: e.execs.Load(),
	}
	if snap := e.cur.Load(); snap != nil {
		em.PlanVersion = snap.version
		em.PlanSignature = snap.plan.Signature()
	}
	e.mu.Lock()
	em.FullOpts = e.fullOpts
	em.FullOptTime = e.fullOptTime
	em.Repairs = e.repairs
	em.RepairTime = e.repairTime
	em.Converged = e.converged
	em.Touched = e.touched
	em.WarmSeeds = e.warmSeeds
	e.mu.Unlock()
	return em
}

// String renders the snapshot as a compact report, one line per entry.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions=%d entries=%d hits=%d misses=%d evictions=%d execs=%d\n",
		m.Sessions, m.Entries, m.Hits, m.Misses, m.Evictions, m.Execs)
	fmt.Fprintf(&b, "full-opts=%d (%v) repairs=%d (%v) converged-execs=%d\n",
		m.FullOpts, m.FullOptTime.Round(time.Microsecond),
		m.Repairs, m.RepairTime.Round(time.Microsecond), m.Converged)
	fmt.Fprintf(&b, "stats-plane: keys=%d warm-seeds=%d clock=%d decays=%d stale=%d reclaimed=%d\n",
		m.StatsKeys, m.WarmSeeds, m.StatsClock, m.StatsDecays, m.StatsStale, m.StatsReclaimed)
	if m.ResultCacheEnabled {
		rc := m.ResultCache
		fmt.Fprintf(&b, "result-cache: entries=%d bytes=%d hits=%d misses=%d stores=%d evictions=%d invalidations=%d reclaimed=%d\n",
			rc.Entries, rc.Bytes, rc.Hits, rc.Misses, rc.Stores,
			rc.Evictions, rc.Invalidations, rc.Reclaimed)
	}
	for _, e := range m.PerEntry {
		fmt.Fprintf(&b, "  [%s] %-8s hits=%-3d execs=%-4d full-opt=%d/%v repairs=%d/%v converged=%d touched=%d warm=%d plan=v%d\n",
			e.Hash, e.Query, e.Hits, e.Execs,
			e.FullOpts, e.FullOptTime.Round(time.Microsecond),
			e.Repairs, e.RepairTime.Round(time.Microsecond),
			e.Converged, e.Touched, e.WarmSeeds, e.PlanVersion)
	}
	return b.String()
}
