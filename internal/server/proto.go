package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file implements the server's front door: a line-oriented text
// protocol, one session per connection. Requests are single lines; responses
// are one "ok ..." or "err ..." line, preceded by zero or more continuation
// lines ("row ..." for result rows, "| ..." for reports), so clients can
// drive it with a plain line reader (or a human with netcat).
//
// Commands:
//
//	prepare <stmt> <sql...>   parse SQL, bind to the shared plan cache
//	query   <stmt> <name>     bind a registered named query (Options.Named)
//	exec    <stmt>            execute; reply with the row count
//	rows    <stmt>            execute; stream result rows, then the count
//	run     <sql...>          one-shot prepare (anonymous) + exec
//	explain <stmt>            print the current cached plan
//	analyze <stmt>            execute with per-operator profiling; print the
//	                          EXPLAIN ANALYZE tree, then the row count
//	names                     list the registered named queries
//	metrics                   print the server metrics report
//	trace                     print the lifecycle event ring (needs
//	                          Options.TraceEvents > 0) and slow-query dumps
//	quit                      close the session
type protoSession struct {
	sess  *Session
	stmts map[string]*Stmt
	w     *bufio.Writer
	wmu   sync.Mutex // guards w: concurrent handlers are not used today,
	// but the protocol layer must not interleave lines if they ever are
}

// ServeConn runs the line protocol over one connection (a TCP conn, a
// pipe, or stdin/stdout glued together). It opens one Session and blocks
// until EOF, "quit", or a transport error. Protocol-level errors (bad
// command, failed parse) are reported to the client and do not terminate
// the connection.
func (s *Server) ServeConn(rw io.ReadWriter) error {
	ps := &protoSession{
		sess:  s.Session(),
		stmts: map[string]*Stmt{},
		w:     bufio.NewWriter(rw),
	}
	ps.reply("ok repro serve session=%d (commands: prepare query exec rows run explain analyze names metrics trace quit)", ps.sess.ID)
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !ps.handle(s, line) {
			return nil
		}
	}
	return sc.Err()
}

// ServeListener accepts connections and serves each in its own goroutine
// until the listener is closed.
func (s *Server) ServeListener(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.ServeConn(conn)
		}()
	}
}

// line buffers one continuation line without flushing — used for row
// streams and multi-line reports, which are always terminated by a reply.
func (ps *protoSession) line(format string, args ...any) {
	ps.wmu.Lock()
	fmt.Fprintf(ps.w, format+"\n", args...)
	ps.wmu.Unlock()
}

// reply terminates a response and flushes everything buffered so far.
func (ps *protoSession) reply(format string, args ...any) {
	ps.wmu.Lock()
	fmt.Fprintf(ps.w, format+"\n", args...)
	ps.w.Flush()
	ps.wmu.Unlock()
}

// handle executes one command line; it returns false when the session
// should close.
func (ps *protoSession) handle(s *Server, line string) bool {
	verb, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch strings.ToLower(verb) {
	case "quit", "exit":
		ps.reply("ok bye")
		return false

	case "prepare":
		name, sql, ok := strings.Cut(rest, " ")
		if !ok || strings.TrimSpace(sql) == "" {
			ps.reply("err usage: prepare <stmt> <sql>")
			return true
		}
		st, err := ps.sess.Prepare(strings.TrimSpace(sql))
		if err != nil {
			ps.reply("err %v", err)
			return true
		}
		ps.stmts[name] = st
		ps.reply("ok prepared %s cache=%s key=%s", name, hitMiss(st.Hit), keyHash(st.CacheKey()))

	case "query":
		name, qname, ok := strings.Cut(rest, " ")
		qname = strings.TrimSpace(qname)
		if !ok || qname == "" {
			ps.reply("err usage: query <stmt> <named-query>")
			return true
		}
		st, err := ps.sess.PrepareNamed(qname)
		if err != nil {
			ps.reply("err %v", err)
			return true
		}
		ps.stmts[name] = st
		ps.reply("ok prepared %s cache=%s key=%s", name, hitMiss(st.Hit), keyHash(st.CacheKey()))

	case "exec", "rows":
		st, ok := ps.stmts[rest]
		if !ok {
			ps.reply("err unknown statement %q (prepare it first)", rest)
			return true
		}
		res, err := st.Exec()
		if err != nil {
			ps.reply("err %v", err)
			return true
		}
		if strings.EqualFold(verb, "rows") {
			for _, r := range res.Rows {
				ps.line("row %s", rowString(r))
			}
		}
		ps.reply("ok rows=%d version=%d repaired=%t elapsed=%v",
			len(res.Rows), res.PlanVersion, res.Repaired, res.Elapsed.Round(time.Microsecond))

	case "run":
		if rest == "" {
			ps.reply("err usage: run <sql>")
			return true
		}
		res, err := ps.sess.Query(rest)
		if err != nil {
			ps.reply("err %v", err)
			return true
		}
		ps.reply("ok rows=%d version=%d repaired=%t elapsed=%v",
			len(res.Rows), res.PlanVersion, res.Repaired, res.Elapsed.Round(time.Microsecond))

	case "explain":
		st, ok := ps.stmts[rest]
		if !ok {
			ps.reply("err unknown statement %q (prepare it first)", rest)
			return true
		}
		snap := st.entry.cur.Load()
		for _, l := range strings.Split(strings.TrimRight(snap.plan.Explain(st.Query()), "\n"), "\n") {
			ps.line("| %s", l)
		}
		ps.reply("ok cost=%.3f version=%d", snap.plan.Cost, snap.version)

	case "analyze":
		st, ok := ps.stmts[rest]
		if !ok {
			ps.reply("err unknown statement %q (prepare it first)", rest)
			return true
		}
		res, analyzed, err := st.ExplainAnalyze()
		if err != nil {
			ps.reply("err %v", err)
			return true
		}
		for _, l := range strings.Split(strings.TrimRight(analyzed, "\n"), "\n") {
			ps.line("| %s", l)
		}
		ps.reply("ok rows=%d version=%d repaired=%t elapsed=%v",
			len(res.Rows), res.PlanVersion, res.Repaired, res.Elapsed.Round(time.Microsecond))

	case "trace":
		if !s.trace.Enabled() {
			ps.reply("err tracing disabled (set Options.TraceEvents / reproserve -trace-events)")
			return true
		}
		for _, ev := range s.trace.Events() {
			ps.line("| %s", ev.String())
		}
		dumps := s.SlowTraces()
		for _, dump := range dumps {
			for _, l := range strings.Split(strings.TrimRight(dump, "\n"), "\n") {
				ps.line("| %s", l)
			}
		}
		ps.reply("ok events=%d slow=%d", len(s.trace.Events()), len(dumps))

	case "names":
		names := make([]string, 0, len(s.opts.Named))
		for n := range s.opts.Named {
			names = append(names, n)
		}
		sort.Strings(names)
		ps.reply("ok named=%s", strings.Join(names, ","))

	case "metrics":
		for _, l := range strings.Split(strings.TrimRight(s.Metrics().String(), "\n"), "\n") {
			ps.line("| %s", l)
		}
		ps.reply("ok")

	default:
		ps.reply("err unknown command %q", verb)
	}
	return true
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func rowString(r []int64) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}
