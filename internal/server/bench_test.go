package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/fbstore"
	"repro/internal/tpch"
)

func benchServer(b *testing.B, cat *catalog.Catalog, maxConcurrent int) *Server {
	b.Helper()
	srv, err := New(cat, Options{
		MaxConcurrent: maxConcurrent,
		Named:         tpch.Queries(),
		Dict:          tpch.Dict(),
		Date:          tpch.Date,
	})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// BenchmarkServeThroughput measures end-to-end statement service time
// through the session layer: "cold" pays the one-time from-scratch
// optimization of a cache miss plus one execution; "cached" measures the
// steady state — cache-hit prepare, execution, and the (converged, hence
// skipped) feedback repair — driven by 1, 2 and 4 concurrent sessions.
func BenchmarkServeThroughput(b *testing.B) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42, Skew: 0.5})

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srv := benchServer(b, cat, 1)
			st, err := srv.Session().PrepareNamed("Q3S")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, sessions := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cached/sessions=%d", sessions), func(b *testing.B) {
			srv := benchServer(b, cat, sessions)
			// Warm the entry past its repair phase.
			warm, err := srv.Session().PrepareNamed("Q3S")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := warm.Exec(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					sess := srv.Session()
					for i := s; i < b.N; i += sessions {
						st, err := sess.PrepareNamed("Q3S")
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := st.Exec(); err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
		})
	}
}

// BenchmarkWarmStart compares the first optimization a cache miss pays when
// the statistics plane is empty ("cold") against one seeded by a
// structurally different query's executions ("seeded"): the seeded miss
// optimizes against already-converged factors and its first executions
// skip the repair phase entirely. Measured per miss by re-creating the
// server each iteration; "seeded" shares one warmed fbstore.StatsStore.
func BenchmarkWarmStart(b *testing.B) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42, Skew: 0.5})
	const warmSQL = `SELECT c.c_custkey FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'MACHINERY'`
	// Same semantics, FROM order reversed: a distinct canonical key whose
	// subexpressions all fingerprint-match the warm query's.
	const missSQL = `SELECT o2.o_custkey FROM orders o2, customer c2
		WHERE c2.c_custkey = o2.o_custkey AND c2.c_mktsegment = 'MACHINERY'`

	prepare := func(b *testing.B, store *fbstore.StatsStore) {
		b.Helper()
		srv, err := New(cat, Options{
			Stats: store, Dict: tpch.Dict(), Date: tpch.Date,
		})
		if err != nil {
			b.Fatal(err)
		}
		st, err := srv.Session().Prepare(missSQL)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Exec(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prepare(b, nil) // fresh private store: nothing to seed from
		}
	})

	b.Run("seeded", func(b *testing.B) {
		store := fbstore.New()
		warmSrv, err := New(cat, Options{
			Stats: store, Dict: tpch.Dict(), Date: tpch.Date,
		})
		if err != nil {
			b.Fatal(err)
		}
		warm, err := warmSrv.Session().Prepare(warmSQL)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := warm.Exec(); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prepare(b, store)
		}
	})
}

// BenchmarkResultCache measures the semantic result cache on a shared join
// core (the Q3S join shape, no aggregation): "uncached" executes the plan in
// full every time, "cold" includes the first spooling execution per server,
// and "warm" probes a populated cache — each at 1, 2 and 4 concurrent
// sessions. The warm/uncached ratio at sessions=1 is the figure the
// ISSUE's ≥2x acceptance bar reads.
func BenchmarkResultCache(b *testing.B) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42, Skew: 0.5})

	newSrv := func(bytes int64) *Server {
		srv, err := New(cat, Options{
			MaxConcurrent: 4, Named: tpch.Queries(),
			Dict: tpch.Dict(), Date: tpch.Date,
			ResultCacheBytes: bytes,
		})
		if err != nil {
			b.Fatal(err)
		}
		return srv
	}
	// Warm an entry past its repair phase (and, when caching, its spool).
	warmup := func(srv *Server) {
		b.Helper()
		st, err := srv.Session().PrepareNamed("Q3S")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := st.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	}
	drive := func(b *testing.B, srv *Server, sessions int) {
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := srv.Session()
				for i := s; i < b.N; i += sessions {
					st, err := sess.PrepareNamed("Q3S")
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := st.Exec(); err != nil {
						b.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
	}

	b.Run("cold", func(b *testing.B) {
		// Per-iteration server: every execution spools from scratch.
		for i := 0; i < b.N; i++ {
			srv := newSrv(64 << 20)
			st, err := srv.Session().PrepareNamed("Q3S")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, sessions := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("uncached/sessions=%d", sessions), func(b *testing.B) {
			srv := newSrv(0)
			warmup(srv)
			b.ResetTimer()
			drive(b, srv, sessions)
		})
		b.Run(fmt.Sprintf("warm/sessions=%d", sessions), func(b *testing.B) {
			srv := newSrv(64 << 20)
			warmup(srv)
			if srv.ResultCache().Metrics().Stores == 0 {
				b.Fatal("warmup spooled nothing")
			}
			b.ResetTimer()
			drive(b, srv, sessions)
		})
	}
}
