package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// drive runs every named workload query n times through one session.
func drive(t *testing.T, srv *Server, n int) {
	t.Helper()
	sess := srv.Session()
	for name := range srv.opts.Named {
		st, err := sess.PrepareNamed(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < n; i++ {
			if _, err := st.Exec(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestExplainAnalyzeThroughServer(t *testing.T) {
	srv := testServer(t, Options{Parallelism: 2})
	sess := srv.Session()
	st, err := sess.PrepareNamed("Q5")
	if err != nil {
		t.Fatal(err)
	}
	res, analyzed, err := st.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EXPLAIN ANALYZE", "est=", "act=", "qerr=", "time="} {
		if !strings.Contains(analyzed, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, analyzed)
		}
	}
	// The profiled execution is a real one: rows match the serial baseline
	// and its feedback landed (estimation error is now recorded).
	base := serialBaseline(t, srv.cat, st.Query())
	if !sameMultiset(multiset(res.Rows), base) {
		t.Fatal("profiled execution changed the result multiset")
	}
	var em *EntryMetrics
	for i, e := range srv.Metrics().PerEntry {
		if e.Query == "Q5" {
			em = &srv.Metrics().PerEntry[i]
		}
	}
	if em == nil {
		t.Fatal("Q5 entry missing from metrics")
	}
	if em.Execs != 1 {
		t.Fatalf("profiled exec not counted: execs=%d", em.Execs)
	}
	if em.EstErr == 0 {
		t.Fatal("cold first execution left the estimation-error gauge at zero")
	}
}

// TestTracingDifferential asserts the observability plane observes without
// participating: tracing and slow-query profiling fully on leave result
// multisets and the feedback-driven per-entry optimizer state identical to
// a server with everything off.
func TestTracingDifferential(t *testing.T) {
	quiet := testServer(t, Options{Parallelism: 2})
	traced := testServer(t, Options{Parallelism: 2,
		TraceEvents: 256, TraceSlowQuery: time.Nanosecond})

	for name := range quiet.opts.Named {
		q := quiet.opts.Named[name]
		st0, err := quiet.Session().PrepareNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		st1, err := traced.Session().PrepareNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			r0, err := st0.Exec()
			if err != nil {
				t.Fatal(err)
			}
			r1, err := st1.Exec()
			if err != nil {
				t.Fatal(err)
			}
			if !sameMultiset(multiset(r0.Rows), multiset(r1.Rows)) {
				t.Fatalf("%s: tracing changed the result multiset", name)
			}
			if r0.PlanVersion != r1.PlanVersion || r0.Repaired != r1.Repaired {
				t.Fatalf("%s exec %d: tracing changed plan evolution: v%d/%t vs v%d/%t",
					name, i, r0.PlanVersion, r0.Repaired, r1.PlanVersion, r1.Repaired)
			}
			_ = q
		}
	}
	m0, m1 := quiet.Metrics(), traced.Metrics()
	if m0.Repairs != m1.Repairs || m0.Converged != m1.Converged {
		t.Fatalf("tracing changed feedback totals: repairs %d vs %d, converged %d vs %d",
			m0.Repairs, m1.Repairs, m0.Converged, m1.Converged)
	}
}

func TestLifecycleEventsAndSlowDumps(t *testing.T) {
	var dumps []string
	var mu sync.Mutex
	srv := testServer(t, Options{
		TraceEvents:    512,
		TraceSlowQuery: time.Nanosecond, // everything is slow
		TraceOnSlow: func(d string) {
			mu.Lock()
			dumps = append(dumps, d)
			mu.Unlock()
		},
	})
	sess := srv.Session()
	st, err := sess.PrepareNamed("Q3S")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := st.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	// Session-local re-prepare still traces a hit.
	if _, err := sess.PrepareNamed("Q3S"); err != nil {
		t.Fatal(err)
	}

	kinds := map[obs.Kind]int{}
	for _, ev := range srv.Tracer().Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.Kind{obs.KindPrepare, obs.KindQueueWait, obs.KindExec, obs.KindSlowQuery} {
		if kinds[want] == 0 {
			t.Fatalf("no %v event traced (got %v)", want, kinds)
		}
	}
	// The first exec's feedback repairs the fresh plan at this scale.
	if kinds[obs.KindRepair] == 0 {
		t.Fatalf("no repair event traced (got %v)", kinds)
	}

	mu.Lock()
	got := len(dumps)
	mu.Unlock()
	if got != 2 {
		t.Fatalf("TraceOnSlow fired %d times, want 2", got)
	}
	slow := srv.SlowTraces()
	if len(slow) != 2 {
		t.Fatalf("SlowTraces retained %d dumps, want 2", len(slow))
	}
	for _, want := range []string{"slow query", "trace:", "EXPLAIN ANALYZE", "act="} {
		if !strings.Contains(slow[0], want) {
			t.Fatalf("slow dump missing %q:\n%s", want, slow[0])
		}
	}
}

func TestQueueWaitMeasured(t *testing.T) {
	srv := testServer(t, Options{MaxConcurrent: 1})
	sess := srv.Session()
	st, err := sess.PrepareNamed("Q3S")
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the single admission slot so someone demonstrably queues.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := st.Exec(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	m := srv.Metrics()
	if m.QueueWait.Count != 4 {
		t.Fatalf("queue-wait histogram saw %d executions, want 4", m.QueueWait.Count)
	}
	if m.QueueWaits == 0 {
		t.Fatal("no execution recorded a measurable admission wait")
	}
	if m.ExecLatency.Count != 4 || m.ExecLatency.P50 <= 0 {
		t.Fatalf("latency histogram: count=%d p50=%v", m.ExecLatency.Count, m.ExecLatency.P50)
	}
}

func TestMetricsReportAndJSON(t *testing.T) {
	srv := testServer(t, Options{})
	drive(t, srv, 2)
	m := srv.Metrics()
	text := m.String()
	for _, want := range []string{"retired: execs=0", "latency: n=", "queue-wait: waited=", "est-err="} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics report missing %q:\n%s", want, text)
		}
	}

	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Execs", "ExecLatency", "QueueWait", "Retired", "PerEntry", "FullOptTimeString"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("metrics JSON missing %q:\n%s", key, blob)
		}
	}
	if decoded["Execs"].(float64) != float64(m.Execs) {
		t.Fatalf("JSON Execs=%v, want %d", decoded["Execs"], m.Execs)
	}
}

func TestDebugHandlerScrape(t *testing.T) {
	srv := testServer(t, Options{TraceEvents: 128})
	drive(t, srv, 3)

	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"# TYPE repro_exec_latency_seconds histogram",
		"repro_exec_latency_seconds_bucket{le=",
		"repro_exec_latency_seconds_p50 ",
		"# TYPE repro_queue_wait_seconds histogram",
		"# TYPE repro_repair_seconds histogram",
		"repro_execs_total",
		"repro_entry_est_error{entry=",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom[:min(len(prom), 2000)])
		}
	}
	// A driven workload has nonzero latency percentiles.
	for _, line := range strings.Split(prom, "\n") {
		if strings.HasPrefix(line, "repro_exec_latency_seconds_p50 ") {
			if strings.HasSuffix(line, " 0") {
				t.Fatalf("p50 is zero after a workload: %s", line)
			}
		}
	}

	jsonBody := get("/metrics.json")
	var decoded map[string]any
	if err := json.Unmarshal([]byte(jsonBody), &decoded); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}

	traces := get("/traces")
	if !strings.Contains(traces, "exec") || !strings.Contains(traces, "prepare") {
		t.Fatalf("/traces missing lifecycle events:\n%s", traces)
	}

	if pprofIdx := get("/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Fatal("/debug/pprof/ index not served")
	}
}

func TestProtoAnalyzeAndTrace(t *testing.T) {
	srv := testServer(t, Options{TraceEvents: 64})

	var out strings.Builder
	script := strings.Join([]string{
		"query q3 Q3S",
		"analyze q3",
		"trace",
		"quit",
	}, "\n") + "\n"
	if err := srv.ServeConn(&rwPair{r: strings.NewReader(script), w: &out}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"| EXPLAIN ANALYZE",
		"act=",
		"ok rows=",
		"prepare", // traced bind event
		"exec",    // traced execution event
		"ok events=",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("protocol transcript missing %q:\n%s", want, got)
		}
	}

	// Tracing off: the trace command reports the misconfiguration.
	quiet := testServer(t, Options{})
	out.Reset()
	if err := quiet.ServeConn(&rwPair{r: strings.NewReader("trace\nquit\n"), w: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "err tracing disabled") {
		t.Fatalf("trace on a quiet server should error:\n%s", out.String())
	}
}
