package server

import (
	"fmt"
	"testing"

	"repro/internal/relalg"
	"repro/internal/stats"
)

// This fuzz target guards the two canonicalization layers the serving stack
// leans on: CanonicalKey (plan-cache identity) and relalg.Fingerprinter
// (statistics-plane identity). The soundness contract is directional —
// mutations that preserve query structure (alias renames, predicate
// reordering, join-direction flips) must preserve both the cache key and
// every connected subexpression's fingerprint, while mutations that change
// structure (literals, operators, join columns, added predicates, filter
// selectivities) must change the cache key and the full expression's
// fingerprint. A violation of the first half splits one statement's learned
// history across entries; a violation of the second half pools statistics
// about different quantities — a silently wrong optimizer either way.

// fuzzTables is the pool of distinct table names; relations draw distinct
// tables so canonical member ordering never hits the self-join tie-break
// (which is documented to be minting-order dependent).
var fuzzTables = [6]string{"fa", "fb", "fc", "fd", "fe", "ff"}

// randQuery derives a random connected 2..4-relation query from the RNG.
func randQuery(r *stats.Rand) *relalg.Query {
	n := 2 + int(r.Int64n(3))
	perm := [6]int{0, 1, 2, 3, 4, 5}
	for i := 5; i > 0; i-- { // Fisher-Yates over the table pool
		j := int(r.Int64n(int64(i + 1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	q := &relalg.Query{Name: "fuzz"}
	for i := 0; i < n; i++ {
		q.Rels = append(q.Rels, relalg.RelRef{
			Alias: fmt.Sprintf("r%d", i), Table: fuzzTables[perm[i]],
		})
	}
	// A random spanning construction keeps the join graph connected.
	for i := 1; i < n; i++ {
		q.Joins = append(q.Joins, relalg.JoinPred{
			L: relalg.ColID{Rel: int(r.Int64n(int64(i))), Off: int(r.Int64n(5))},
			R: relalg.ColID{Rel: i, Off: int(r.Int64n(5))},
		})
	}
	ops := [3]relalg.CmpOp{relalg.CmpEQ, relalg.CmpLT, relalg.CmpGT}
	for k := int(r.Int64n(4)); k > 0; k-- {
		q.Scans = append(q.Scans, relalg.ScanPred{
			Col: relalg.ColID{Rel: int(r.Int64n(int64(n))), Off: int(r.Int64n(5))},
			Op:  ops[r.Int64n(3)], Val: r.Int64n(100),
		})
	}
	for k := int(r.Int64n(3)); k > 0; k-- {
		a, b := int(r.Int64n(int64(n))), int(r.Int64n(int64(n)))
		if a == b {
			continue
		}
		q.Filters = append(q.Filters, relalg.FilterPred{
			L:  relalg.ColID{Rel: a, Off: int(r.Int64n(5))},
			R:  relalg.ColID{Rel: b, Off: int(r.Int64n(5))},
			Op: relalg.CmpLT, Off: r.Int64n(10), Sel: 0.5,
		})
	}
	return q
}

func copyQuery(q *relalg.Query) *relalg.Query {
	return &relalg.Query{
		Name:    q.Name,
		Rels:    append([]relalg.RelRef(nil), q.Rels...),
		Scans:   append([]relalg.ScanPred(nil), q.Scans...),
		Joins:   append([]relalg.JoinPred(nil), q.Joins...),
		Filters: append([]relalg.FilterPred(nil), q.Filters...),
	}
}

// preserveMutate applies only structure-preserving spelling changes:
// renamed aliases, shuffled predicate order, flipped join directions.
func preserveMutate(q *relalg.Query, r *stats.Rand) *relalg.Query {
	for i := range q.Rels {
		q.Rels[i].Alias = fmt.Sprintf("zz%d", i)
	}
	shuffle := func(n int, swap func(i, j int)) {
		for i := n - 1; i > 0; i-- {
			swap(i, int(r.Int64n(int64(i+1))))
		}
	}
	shuffle(len(q.Scans), func(i, j int) { q.Scans[i], q.Scans[j] = q.Scans[j], q.Scans[i] })
	shuffle(len(q.Joins), func(i, j int) { q.Joins[i], q.Joins[j] = q.Joins[j], q.Joins[i] })
	shuffle(len(q.Filters), func(i, j int) { q.Filters[i], q.Filters[j] = q.Filters[j], q.Filters[i] })
	for i := range q.Joins {
		if r.Int64n(2) == 0 {
			q.Joins[i].L, q.Joins[i].R = q.Joins[i].R, q.Joins[i].L
		}
	}
	return q
}

// structMutate applies one structure-CHANGING mutation, selected by sel and
// falling through to an always-applicable one when the preferred target is
// absent. It returns a description for failure messages.
func structMutate(q *relalg.Query, r *stats.Rand, sel byte) (*relalg.Query, string) {
	switch sel % 5 {
	case 0:
		if len(q.Scans) > 0 {
			q.Scans[0].Val += 1000003
			return q, "scan literal changed"
		}
	case 1:
		if len(q.Scans) > 0 {
			q.Scans[0].Op = relalg.CmpNE
			return q, "scan operator changed"
		}
	case 2:
		q.Joins[0].R.Off += 101
		return q, "join column changed"
	case 3:
		if len(q.Filters) > 0 {
			q.Filters[0].Sel = 0.37
			return q, "filter selectivity changed"
		}
	case 4:
		q.Joins = append(q.Joins, relalg.JoinPred{
			L: relalg.ColID{Rel: 0, Off: 97},
			R: relalg.ColID{Rel: len(q.Rels) - 1, Off: 98},
		})
		return q, "join predicate added"
	}
	// Preferred target absent: add a scan predicate, always applicable.
	q.Scans = append(q.Scans, relalg.ScanPred{
		Col: relalg.ColID{Rel: int(r.Int64n(int64(len(q.Rels)))), Off: 99},
		Op:  relalg.CmpEQ, Val: 424243,
	})
	return q, "scan predicate added"
}

// connectedSets enumerates every connected subexpression — the sets the
// serving layer fingerprints for warm starts and feedback.
func connectedSets(q *relalg.Query) []relalg.RelSet {
	var sets []relalg.RelSet
	q.AllRels().ProperSubsets(func(sub relalg.RelSet) {
		if q.Connected(sub) {
			sets = append(sets, sub)
		}
	})
	return append(sets, q.AllRels())
}

func FuzzFingerprintStability(f *testing.F) {
	for s := uint64(1); s <= 12; s++ {
		f.Add(s, byte(s))
	}
	f.Fuzz(func(t *testing.T, seed uint64, sel byte) {
		r := stats.NewRand(seed)
		q := randQuery(r)
		key := CanonicalKey(q)
		fp := relalg.NewFingerprinter(q)
		sets := connectedSets(q)
		fps := make(map[relalg.RelSet]string, len(sets))
		for _, set := range sets {
			fps[set] = fp.Fingerprint(set)
		}

		members := make(map[relalg.RelSet][]int, len(sets))
		for _, set := range sets {
			if fp.AmbiguousOrder(set) {
				// Tables are drawn distinct, so descriptors never collide.
				t.Fatalf("descriptor-distinct set %v reported ambiguous", set)
			}
			members[set] = fp.CanonicalMembers(set)
		}

		same := preserveMutate(copyQuery(q), r)
		if got := CanonicalKey(same); got != key {
			t.Fatalf("spelling mutation changed the cache key:\n%s\n%s", key, got)
		}
		fpSame := relalg.NewFingerprinter(same)
		for _, set := range sets {
			if got := fpSame.Fingerprint(set); got != fps[set] {
				t.Fatalf("spelling mutation changed fingerprint of %v:\n%s\n%s", set, fps[set], got)
			}
			// The canonical member order — the result cache's column-order
			// contract — must survive spelling mutations too (relation
			// indices are untouched by preserveMutate, so the orders must
			// be literally equal).
			got := fpSame.CanonicalMembers(set)
			want := members[set]
			if len(got) != len(want) {
				t.Fatalf("spelling mutation changed canonical arity of %v: %v vs %v", set, want, got)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("spelling mutation changed canonical member order of %v: %v vs %v", set, want, got)
				}
			}
			if fpSame.AmbiguousOrder(set) {
				t.Fatalf("spelling mutation made set %v ambiguous", set)
			}
		}

		changed, what := structMutate(copyQuery(q), r, sel)
		if got := CanonicalKey(changed); got == key {
			t.Fatalf("%s but the cache key is unchanged:\n%s", what, key)
		}
		all := q.AllRels()
		if got := relalg.NewFingerprinter(changed).Fingerprint(all); got == fps[all] {
			t.Fatalf("%s but the full-expression fingerprint is unchanged:\n%s", what, got)
		}
	})
}
