package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/relalg"
)

// CanonicalKey canonicalizes a query's structure into its plan-cache key.
// The key is what makes the cache a cache of *prepared statements* rather
// than of SQL strings: two statements that differ only in SQL spelling —
// alias names, whitespace, predicate order, join-predicate direction —
// canonicalize identically and therefore share one cache entry, i.e. one
// live incremental optimizer and one feedback history.
//
// Relation ORDER is structural, not cosmetic: column ordinals are positional
// (relalg.ColID.Rel indexes Query.Rels), so "FROM a, b" and "FROM b, a"
// denote different coordinate systems and get distinct entries. That is a
// deliberate conservatism — merging them would require remapping every
// ColID — and costs only a second warm-up for the reordered spelling.
func CanonicalKey(q *relalg.Query) string {
	var b strings.Builder
	b.WriteString("T:")
	for i, r := range q.Rels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(r.Table)
	}

	scans := make([]string, len(q.Scans))
	for i, p := range q.Scans {
		scans[i] = fmt.Sprintf("%d.%d%s%d", p.Col.Rel, p.Col.Off, p.Op, p.Val)
	}
	sort.Strings(scans)
	b.WriteString("|S:")
	b.WriteString(strings.Join(scans, ","))

	joins := make([]string, len(q.Joins))
	for i, p := range q.Joins {
		l, r := p.L, p.R
		// Equi-joins are symmetric: normalize direction.
		if r.Rel < l.Rel || (r.Rel == l.Rel && r.Off < l.Off) {
			l, r = r, l
		}
		joins[i] = fmt.Sprintf("%d.%d=%d.%d", l.Rel, l.Off, r.Rel, r.Off)
	}
	sort.Strings(joins)
	b.WriteString("|J:")
	b.WriteString(strings.Join(joins, ","))

	filters := make([]string, len(q.Filters))
	for i, f := range q.Filters {
		filters[i] = fmt.Sprintf("%d.%d%s%d.%d+%d@%g",
			f.L.Rel, f.L.Off, f.Op, f.R.Rel, f.R.Off, f.Off, f.Sel)
	}
	sort.Strings(filters)
	b.WriteString("|F:")
	b.WriteString(strings.Join(filters, ","))

	b.WriteString("|A:")
	if a := q.Agg; a != nil {
		for _, c := range a.GroupBy {
			fmt.Fprintf(&b, "g%d.%d,", c.Rel, c.Off)
		}
		for _, c := range a.Sums {
			fmt.Fprintf(&b, "s%d.%d,", c.Rel, c.Off)
		}
		for _, c := range a.CountDistinct {
			fmt.Fprintf(&b, "d%d.%d,", c.Rel, c.Off)
		}
		if a.CountAll {
			b.WriteString("c*")
		}
	}
	return b.String()
}

// keyHash renders a short digest of a cache key for protocol output and
// metrics display. FNV-64: 32-bit digests collide visibly once ad-hoc
// workloads push thousands of distinct keys through metrics output.
func keyHash(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x", h.Sum64())
}
