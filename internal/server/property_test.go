package server

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/stats"
	"repro/internal/tpch"
)

// This property test is the soundness gate for serving cached results: if
// two subexpressions — of the same query or of different random queries —
// fingerprint identically, executing each standalone must produce the SAME
// multiset of rows once both are rendered in the canonical column order
// (relalg.Fingerprinter.CanonicalMembers). That is exactly the substitution
// the result cache performs, so a counterexample here is a wrong query
// answer waiting to happen.

// chainTables is the customer→orders→lineitem join chain the random
// queries draw from, with the real TPC-H key columns.
var chainTables = []struct {
	table     string
	joinL     int // column joining to the previous chain element
	joinRPrev int // the previous element's column
}{
	{table: "customer"},
	{table: "orders", joinL: 1, joinRPrev: 0},   // o_custkey = c_custkey
	{table: "lineitem", joinL: 0, joinRPrev: 0}, // l_orderkey = o_orderkey
}

// predPool is a deliberately small per-table predicate pool so random
// queries collide on subexpression fingerprints often — collisions are what
// the property is about.
var predPool = map[string][]relalg.ScanPred{
	"customer": {
		{Col: relalg.ColID{Off: 2}, Op: relalg.CmpEQ, Val: tpch.SegMachinery},
		{Col: relalg.ColID{Off: 0}, Op: relalg.CmpLT, Val: 40},
	},
	"orders": {
		{Col: relalg.ColID{Off: 2}, Op: relalg.CmpLT, Val: tpch.Date(1995, 3, 15)},
	},
	"lineitem": {
		{Col: relalg.ColID{Off: 3}, Op: relalg.CmpGT, Val: tpch.Date(1995, 3, 15)},
	},
}

// randChainQuery derives a random contiguous subchain query with random
// predicate subsets and a random relation minting order.
func randChainQuery(r *stats.Rand) *relalg.Query {
	start := int(r.Int64n(int64(len(chainTables))))
	n := 1 + int(r.Int64n(int64(len(chainTables)-start)))
	order := make([]int, n) // chain position -> minting index
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.Int64n(int64(i + 1)))
		order[i], order[j] = order[j], order[i]
	}
	q := &relalg.Query{Name: "prop", Rels: make([]relalg.RelRef, n)}
	for pos := 0; pos < n; pos++ {
		ct := chainTables[start+pos]
		q.Rels[order[pos]] = relalg.RelRef{Alias: fmt.Sprintf("p%d", pos), Table: ct.table}
		if pos > 0 {
			q.Joins = append(q.Joins, relalg.JoinPred{
				L: relalg.ColID{Rel: order[pos], Off: ct.joinL},
				R: relalg.ColID{Rel: order[pos-1], Off: ct.joinRPrev},
			})
		}
		for _, sp := range predPool[ct.table] {
			if r.Int64n(2) == 0 {
				sp.Col.Rel = order[pos]
				q.Scans = append(q.Scans, sp)
			}
		}
	}
	return q
}

// subQuery extracts the connected subexpression set of q as a standalone
// query, remapping member relations to ascending fresh indices.
func subQuery(q *relalg.Query, set relalg.RelSet) *relalg.Query {
	members := set.Members()
	idx := make(map[int]int, len(members))
	sub := &relalg.Query{Name: "sub"}
	for newi, rel := range members {
		idx[rel] = newi
		sub.Rels = append(sub.Rels, q.Rels[rel])
	}
	for _, sp := range q.Scans {
		if set.Has(sp.Col.Rel) {
			sp.Col.Rel = idx[sp.Col.Rel]
			sub.Scans = append(sub.Scans, sp)
		}
	}
	for _, jp := range q.Joins {
		if set.Has(jp.L.Rel) && set.Has(jp.R.Rel) {
			jp.L.Rel, jp.R.Rel = idx[jp.L.Rel], idx[jp.R.Rel]
			sub.Joins = append(sub.Joins, jp)
		}
	}
	for _, fp := range q.Filters {
		if set.Has(fp.L.Rel) && set.Has(fp.R.Rel) {
			fp.L.Rel, fp.R.Rel = idx[fp.L.Rel], idx[fp.R.Rel]
			sub.Filters = append(sub.Filters, fp)
		}
	}
	return sub
}

// canonicalMultiset executes sub standalone (fresh optimizer, serial
// executor) and renders the result multiset with columns permuted into the
// canonical member order — the query-independent form two fingerprint-equal
// subexpressions must agree on.
func canonicalMultiset(t *testing.T, cat *catalog.Catalog, sub *relalg.Query) string {
	t.Helper()
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := cost.NewModel(sub, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.New(m, relalg.DefaultSpace(), core.PruneAll)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	comp := &exec.Compiler{Q: sub, Cat: cat}
	v, _, err := comp.CompileVec(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.DrainVec(v)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := comp.PlanSchema(plan)
	if err != nil {
		t.Fatal(err)
	}
	// perm[i] = schema position of the i-th canonical column.
	fper := relalg.NewFingerprinter(sub)
	var perm []int
	for _, rel := range fper.CanonicalMembers(sub.AllRels()) {
		arity := len(cat.MustTable(sub.Rels[rel].Table).ColNames)
		for off := 0; off < arity; off++ {
			pos := -1
			for i, cid := range schema {
				if cid == (relalg.ColID{Rel: rel, Off: off}) {
					pos = i
					break
				}
			}
			if pos < 0 {
				t.Fatalf("column %d.%d missing from plan schema %v", rel, off, schema)
			}
			perm = append(perm, pos)
		}
	}
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for _, p := range perm {
			fmt.Fprintf(&b, "|%d", r[p])
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestFingerprintEqualImpliesResultEqual: across a population of random
// chain queries, every pair of fingerprint-equal connected subexpressions
// produces the identical canonical result multiset.
func TestFingerprintEqualImpliesResultEqual(t *testing.T) {
	cat := testCatalog()
	r := stats.NewRand(99)

	type witness struct {
		multiset string
		origin   string
	}
	seen := map[string]witness{}
	collisions := 0
	for i := 0; i < 60; i++ {
		q := randChainQuery(r)
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		fper := relalg.NewFingerprinter(q)
		sets := connectedSets(q)
		for _, set := range sets {
			if fper.AmbiguousOrder(set) {
				continue // result sharing refuses these; nothing to prove
			}
			fp := fper.Fingerprint(set)
			sub := subQuery(q, set)
			// The remapped standalone query must fingerprint identically —
			// the cross-query half of the canonicalization contract.
			if got := relalg.NewFingerprinter(sub).Fingerprint(sub.AllRels()); got != fp {
				t.Fatalf("standalone remap changed the fingerprint:\n%s\n%s", fp, got)
			}
			ms := canonicalMultiset(t, cat, sub)
			origin := fmt.Sprintf("query %d set %v", i, set)
			if w, ok := seen[fp]; ok {
				collisions++
				if w.multiset != ms {
					t.Fatalf("fingerprint-equal subexpressions disagree:\n%s\nvs %s\nfp=%s",
						w.origin, origin, fp)
				}
			} else {
				seen[fp] = witness{multiset: ms, origin: origin}
			}
		}
	}
	// The property is vacuous without collisions; the small pools guarantee
	// plenty.
	if collisions < 20 {
		t.Fatalf("only %d fingerprint collisions across the population — pool too diverse to test the property", collisions)
	}
}
