package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/obs"
)

// DebugHandler returns the server's observability endpoints, intended for a
// private listener (reproserve -http):
//
//	GET /metrics       Prometheus text exposition: every Metrics counter,
//	                   the latency/queue-wait/repair histograms with
//	                   p50/p95/p99 gauges, and per-entry gauges labeled by
//	                   entry digest.
//	GET /metrics.json  the Metrics snapshot as JSON.
//	GET /traces        recent lifecycle events and slow-query dumps, text.
//	/debug/pprof/*     the standard Go profiling endpoints.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Metrics())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		evs := s.trace.Events()
		if len(evs) == 0 {
			fmt.Fprintln(w, "no lifecycle events (enable with TraceEvents / reproserve -trace-events)")
		}
		for _, ev := range evs {
			fmt.Fprintln(w, ev.String())
		}
		for i, dump := range s.SlowTraces() {
			fmt.Fprintf(w, "\n--- slow trace %d ---\n%s", i+1, dump)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WriteProm writes the server's metrics to w in Prometheus text exposition
// format. Counters come from one Metrics snapshot; the histogram families
// (repro_exec_latency_seconds, repro_queue_wait_seconds,
// repro_repair_seconds) render straight from the live histograms.
func (s *Server) WriteProm(w io.Writer) {
	m := s.Metrics()
	obs.WritePromGauge(w, "repro_sessions", "Sessions opened.", float64(m.Sessions))
	obs.WritePromGauge(w, "repro_plan_cache_entries", "Live plan cache entries.", float64(m.Entries))
	obs.WritePromCounter(w, "repro_prepare_hits_total", "Prepares served from the plan cache.", m.Hits)
	obs.WritePromCounter(w, "repro_prepare_misses_total", "Prepares that optimized from scratch.", m.Misses)
	obs.WritePromCounter(w, "repro_plan_cache_evictions_total", "Plan cache entries evicted (LRU bound or TTL).", m.Evictions)
	obs.WritePromCounter(w, "repro_execs_total", "Statement executions.", m.Execs)
	obs.WritePromCounter(w, "repro_full_opts_total", "From-scratch optimizations.", m.FullOpts)
	obs.WritePromCounter(w, "repro_repairs_total", "Incremental plan repairs triggered by feedback.", m.Repairs)
	obs.WritePromCounter(w, "repro_converged_execs_total", "Executions whose feedback stayed sub-threshold.", m.Converged)
	obs.WritePromCounter(w, "repro_full_opt_seconds_total", "Cumulative from-scratch optimization time.", int64(m.FullOptTime.Seconds()))
	obs.WritePromGauge(w, "repro_stats_keys", "Fingerprints the shared statistics plane has learned.", float64(m.StatsKeys))
	obs.WritePromCounter(w, "repro_warm_seeds_total", "Factors warm-started from the statistics plane.", m.WarmSeeds)
	obs.WritePromCounter(w, "repro_stats_decays_total", "Statistics folds that decayed stored history.", m.StatsDecays)
	obs.WritePromGauge(w, "repro_stats_stale_keys", "Fingerprints beyond the staleness horizon.", float64(m.StatsStale))
	obs.WritePromCounter(w, "repro_queue_waited_total", "Executions that measurably waited on admission.", m.QueueWaits)
	obs.WritePromCounter(w, "repro_mem_waited_total", "Executions that waited on the memory-ceiling gate.", m.MemWaits)
	obs.WritePromCounter(w, "repro_spilled_queries_total", "Executions that spilled to disk under the memory budget.", m.SpilledQueries)
	obs.WritePromCounter(w, "repro_spill_partitions_total", "Grace-hash spill partition files written.", m.SpillPartitions)
	obs.WritePromCounter(w, "repro_spill_bytes_total", "Bytes spilled to disk.", m.SpillBytes)
	obs.WritePromCounter(w, "repro_spill_recursions_total", "Recursive spill repartitioning steps.", m.SpillRecursions)
	if m.ResultCacheEnabled {
		rc := m.ResultCache
		obs.WritePromGauge(w, "repro_result_cache_bytes", "Bytes held by the semantic result cache.", float64(rc.Bytes))
		obs.WritePromGauge(w, "repro_result_cache_entries", "Materializations held by the semantic result cache.", float64(rc.Entries))
		obs.WritePromCounter(w, "repro_result_cache_hits_total", "Result-cache probe hits.", rc.Hits)
		obs.WritePromCounter(w, "repro_result_cache_misses_total", "Result-cache probe misses.", rc.Misses)
		obs.WritePromCounter(w, "repro_result_cache_stores_total", "Subplan outputs spooled into the result cache.", rc.Stores)
		obs.WritePromCounter(w, "repro_result_cache_invalidations_total", "Result-cache invalidations.", rc.Invalidations)
	}
	s.latencyH.WritePromHistogram(w, "repro_exec_latency_seconds", "Statement execution wall time.")
	s.queueH.WritePromHistogram(w, "repro_queue_wait_seconds", "Admission-queue wait before execution.")
	s.repairH.WritePromHistogram(w, "repro_repair_seconds", "Incremental plan repair wall time.")
	s.peakMemH.WritePromIntHistogram(w, "repro_peak_memory_bytes", "Per-query peak tracked execution memory.")
	// Per-entry gauges, labeled by the entry digest so series survive
	// human-readable name changes.
	fmt.Fprintf(w, "# HELP repro_entry_est_error Latest per-entry cardinality estimation error (mean |ln(act/est)|).\n# TYPE repro_entry_est_error gauge\n")
	for _, e := range m.PerEntry {
		fmt.Fprintf(w, "repro_entry_est_error{entry=%q,query=%q} %g\n", e.Hash, promLabel(e.Query), e.EstErr)
	}
	fmt.Fprintf(w, "# HELP repro_entry_plan_version Current plan generation per entry.\n# TYPE repro_entry_plan_version gauge\n")
	for _, e := range m.PerEntry {
		fmt.Fprintf(w, "repro_entry_plan_version{entry=%q,query=%q} %d\n", e.Hash, promLabel(e.Query), e.PlanVersion)
	}
	fmt.Fprintf(w, "# HELP repro_entry_repairs_total Incremental repairs per entry.\n# TYPE repro_entry_repairs_total counter\n")
	for _, e := range m.PerEntry {
		fmt.Fprintf(w, "repro_entry_repairs_total{entry=%q,query=%q} %d\n", e.Hash, promLabel(e.Query), e.Repairs)
	}
}

// promLabel sanitizes a query display name for use as a label value (%q
// handles quote and backslash escaping; newlines just get squashed).
func promLabel(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, s)
}
