package server

import (
	"testing"

	"repro/internal/relalg"
)

// selfJoin builds a customer-customer self-join with configurable join
// columns — the CanonicalKey edge case where table names alone cannot
// distinguish the relations.
func selfJoin(name string, lOff, rOff int) *relalg.Query {
	return &relalg.Query{
		Name: name,
		Rels: []relalg.RelRef{
			{Alias: "a", Table: "customer"},
			{Alias: "b", Table: "customer"},
		},
		Joins: []relalg.JoinPred{
			{L: relalg.ColID{Rel: 0, Off: lOff}, R: relalg.ColID{Rel: 1, Off: rOff}},
		},
	}
}

func TestCanonicalKeySelfJoin(t *testing.T) {
	a := CanonicalKey(selfJoin("sj1", 0, 3))
	b := CanonicalKey(selfJoin("sj2", 0, 3))
	if a != b {
		t.Fatalf("identical self-joins got distinct keys:\n%s\n%s", a, b)
	}
	// Same tables, different join columns: distinct structures.
	if c := CanonicalKey(selfJoin("sj3", 0, 4)); c == a {
		t.Fatalf("self-joins on different columns share key %s", a)
	}
	// Direction normalization must not conflate the two sides of a
	// self-join: a.c0 = b.c3 vs a.c3 = b.c0 relate different columns of
	// different relation ordinals.
	if d := CanonicalKey(selfJoin("sj4", 3, 0)); d == a {
		t.Fatalf("flipped self-join columns share key %s", a)
	}
}

func TestCanonicalKeyDuplicatePredicates(t *testing.T) {
	base := func(dup bool) *relalg.Query {
		q := &relalg.Query{
			Name: "dup",
			Rels: []relalg.RelRef{{Alias: "c", Table: "customer"}},
			Scans: []relalg.ScanPred{
				{Col: relalg.ColID{Rel: 0, Off: 1}, Op: relalg.CmpLT, Val: 9},
			},
		}
		if dup {
			q.Scans = append(q.Scans, q.Scans[0])
		}
		return q
	}
	// A duplicated predicate is rendered deterministically...
	if CanonicalKey(base(true)) != CanonicalKey(base(true)) {
		t.Fatal("duplicate predicates render nondeterministically")
	}
	// ...and keeps the duplicated structure distinct from the single one.
	if CanonicalKey(base(true)) == CanonicalKey(base(false)) {
		t.Fatal("duplicated predicate collapsed into the single-predicate key")
	}
}

// TestCanonicalKeyNoCollisions: vary every structural dimension one at a
// time and assert all resulting keys are pairwise distinct — distinct
// structures must never share a cache entry (they would share an optimizer
// over the wrong coordinate system).
func TestCanonicalKeyNoCollisions(t *testing.T) {
	col := func(rel, off int) relalg.ColID { return relalg.ColID{Rel: rel, Off: off} }
	variants := map[string]*relalg.Query{
		"base": {
			Rels:  []relalg.RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
			Scans: []relalg.ScanPred{{Col: col(0, 1), Op: relalg.CmpEQ, Val: 5}},
			Joins: []relalg.JoinPred{{L: col(0, 0), R: col(1, 1)}},
		},
		"reordered-from": {
			Rels:  []relalg.RelRef{{Alias: "o", Table: "orders"}, {Alias: "c", Table: "customer"}},
			Scans: []relalg.ScanPred{{Col: col(1, 1), Op: relalg.CmpEQ, Val: 5}},
			Joins: []relalg.JoinPred{{L: col(1, 0), R: col(0, 1)}},
		},
		"different-literal": {
			Rels:  []relalg.RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
			Scans: []relalg.ScanPred{{Col: col(0, 1), Op: relalg.CmpEQ, Val: 6}},
			Joins: []relalg.JoinPred{{L: col(0, 0), R: col(1, 1)}},
		},
		"different-op": {
			Rels:  []relalg.RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
			Scans: []relalg.ScanPred{{Col: col(0, 1), Op: relalg.CmpLT, Val: 5}},
			Joins: []relalg.JoinPred{{L: col(0, 0), R: col(1, 1)}},
		},
		"different-join-col": {
			Rels:  []relalg.RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
			Scans: []relalg.ScanPred{{Col: col(0, 1), Op: relalg.CmpEQ, Val: 5}},
			Joins: []relalg.JoinPred{{L: col(0, 0), R: col(1, 2)}},
		},
		"with-filter": {
			Rels:    []relalg.RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
			Scans:   []relalg.ScanPred{{Col: col(0, 1), Op: relalg.CmpEQ, Val: 5}},
			Joins:   []relalg.JoinPred{{L: col(0, 0), R: col(1, 1)}},
			Filters: []relalg.FilterPred{{L: col(0, 2), R: col(1, 3), Op: relalg.CmpLT, Sel: 0.5}},
		},
		"with-agg": {
			Rels:  []relalg.RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
			Scans: []relalg.ScanPred{{Col: col(0, 1), Op: relalg.CmpEQ, Val: 5}},
			Joins: []relalg.JoinPred{{L: col(0, 0), R: col(1, 1)}},
			Agg:   &relalg.AggSpec{GroupBy: []relalg.ColID{col(0, 0)}, CountAll: true},
		},
	}
	keys := map[string]string{}
	for name, q := range variants {
		key := CanonicalKey(q)
		if prev, ok := keys[key]; ok {
			t.Errorf("structures %q and %q collide on key %s", name, prev, key)
		}
		keys[key] = name
	}
	// And the join-direction normalization still dedupes what SHOULD dedupe:
	flipped := &relalg.Query{
		Rels:  []relalg.RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
		Scans: []relalg.ScanPred{{Col: col(0, 1), Op: relalg.CmpEQ, Val: 5}},
		Joins: []relalg.JoinPred{{L: col(1, 1), R: col(0, 0)}},
	}
	if CanonicalKey(flipped) != CanonicalKey(variants["base"]) {
		t.Error("flipped join direction failed to canonicalize")
	}
}
