package server

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/storage"
)

// restartNamed is the workload replayed on both sides of a restart:
// single-table aggregation (Q1, Q6) and grouped multi-way joins (Q5, Q10).
// All four aggregate, so their output schema is fixed by the query; the
// projection-less join queries (Q3S, Q5S) emit columns in plan order, which
// two servers with different plan-cache warmup may legitimately permute.
var restartNamed = []string{"Q1", "Q6", "Q5", "Q10"}

const restartAdhoc = `SELECT o.o_orderkey, o.o_custkey FROM orders o WHERE o.o_orderkey < 500`

// execWorkload runs the restart workload once and returns one multiset per
// statement.
func execWorkload(t *testing.T, srv *Server) map[string]map[string]int {
	t.Helper()
	out := map[string]map[string]int{}
	sess := srv.Session()
	for _, name := range restartNamed {
		st, err := sess.PrepareNamed(name)
		if err != nil {
			t.Fatalf("prepare %s: %v", name, err)
		}
		res, err := st.Exec()
		if err != nil {
			t.Fatalf("exec %s: %v", name, err)
		}
		out[name] = multiset(res.Rows)
	}
	st, err := sess.Prepare(restartAdhoc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	out["adhoc"] = multiset(res.Rows)
	return out
}

// TestStorageRestartDifferential is the persistence acceptance bar: a server
// seeded into a data directory, mutated, and flushed must serve byte-identical
// result multisets after a restart that loads the directory instead of
// regenerating — and the mutation must invalidate version-pinned cached
// results before the restart.
func TestStorageRestartDifferential(t *testing.T) {
	dir := t.TempDir()

	// In-memory baseline over identically generated data: the persistent
	// server must match it exactly before any mutation.
	want := execWorkload(t, testServer(t, Options{}))

	srv := testServer(t, Options{DataDir: dir, ResultCacheBytes: 32 << 20})
	if info := srv.StorageInfo(); info.Seeded == 0 || info.Loaded != 0 {
		t.Fatalf("first boot should seed every generated table: %+v", info)
	}
	got := execWorkload(t, srv)
	for k := range want {
		if !sameMultiset(got[k], want[k]) {
			t.Fatalf("disk-backed server diverged from in-memory baseline on %s", k)
		}
	}
	if warm := srv.ResultCache().Metrics(); warm.Stores == 0 {
		t.Fatalf("result cache not spooling on the disk-backed server: %+v", warm)
	}

	// Mutate lineitem: duplicating a row of an existing order bumps the data
	// version, so every cached result over lineitem must bypass
	// (invalidation), and the aggregates must reflect the extra row.
	li := srv.Catalog().MustTable("lineitem")
	v1 := li.DataVersion()
	row := append([]int64(nil), li.Rows[0]...)
	if err := li.AppendRows([][]int64{row}); err != nil {
		t.Fatal(err)
	}
	li.Analyze(catalog.DefaultHistogramBuckets)
	if v := li.DataVersion(); v <= v1 {
		t.Fatalf("Append did not advance the data version: %d -> %d", v1, v)
	}
	want2 := execWorkload(t, srv)
	if inv := srv.ResultCache().Metrics().Invalidations; inv == 0 {
		t.Fatal("no result-cache invalidations after Append bumped the data version")
	}
	if sameMultiset(want2["Q1"], want["Q1"]) {
		t.Fatal("mutation did not change the Q1 result; the differential would be vacuous")
	}

	liRows := len(srv.Catalog().MustTable("lineitem").Rows)
	liVersion := srv.Catalog().MustTable("lineitem").DataVersion()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Restart: every table loads from the directory (zero regeneration),
	// versions never regress, and the workload reproduces the post-mutation
	// truth exactly — including the appended customer row.
	srv2 := testServer(t, Options{DataDir: dir, ResultCacheBytes: 32 << 20})
	info := srv2.StorageInfo()
	if info.Loaded == 0 || info.Seeded != 0 {
		t.Fatalf("restart regenerated instead of loading: %+v", info)
	}
	if n := len(srv2.Catalog().MustTable("lineitem").Rows); n != liRows {
		t.Fatalf("lineitem rows across restart: %d, want %d", n, liRows)
	}
	if v := srv2.Catalog().MustTable("lineitem").DataVersion(); v < liVersion {
		t.Fatalf("data version regressed across restart: %d -> %d", liVersion, v)
	}
	got2 := execWorkload(t, srv2)
	for k := range want2 {
		if !sameMultiset(got2[k], want2[k]) {
			t.Fatalf("restarted server diverged from pre-shutdown truth on %s", k)
		}
	}
	if err := srv2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Shutdown (and its flush) must be idempotent.
	if err := srv2.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestStorageConcurrentAppendExec is the mutation-safety race test: a writer
// appends rows to a table while reader goroutines execute queries over it.
// Under -race this catches any executor reading columns an Append reallocated
// — the hazard the atomic snapshot swap in storage.MemStore closes. (Analyze
// stays out of the writer loop: statistics refresh has always required
// quiescence, only row appends are safe under concurrent execution.)
// Afterwards a quiesced execution must match a fresh serial baseline over the
// final data.
func TestStorageConcurrentAppendExec(t *testing.T) {
	srv := testServer(t, Options{MaxConcurrent: 4, Parallelism: 2, ResultCacheBytes: 8 << 20})
	cust := srv.Catalog().MustTable("customer")
	tmpl := append([]int64(nil), cust.Rows[0]...)
	ckey := cust.MustCol("c_custkey")

	var stop atomic.Bool
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; !stop.Load(); i++ {
			row := append([]int64(nil), tmpl...)
			row[ckey] = int64(1<<20 + i)
			if err := cust.AppendRows([][]int64{row}); err != nil {
				t.Errorf("concurrent append: %v", err)
				return
			}
		}
	}()

	names := []string{"Q3S", "Q10", "Q6"}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			sess := srv.Session()
			for r := 0; r < 12; r++ {
				st, err := sess.PrepareNamed(names[(g+r)%len(names)])
				if err != nil {
					t.Errorf("g%d r%d prepare: %v", g, r, err)
					return
				}
				if _, err := st.Exec(); err != nil {
					t.Errorf("g%d r%d exec: %v", g, r, err)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	stop.Store(true)
	writer.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: the server's result over the mutated table must equal a
	// fresh serial optimize+execute over the same catalog. Q10 aggregates,
	// so its output schema is plan-independent.
	cust.Analyze(0)
	st, err := srv.Session().PrepareNamed("Q10")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(multiset(res.Rows), serialBaseline(t, srv.Catalog(), srv.opts.Named["Q10"])) {
		t.Fatal("post-quiesce result diverged from the serial baseline over mutated data")
	}
}

// forceAccessPath rewrites every non-index scan leaf of relation rel to the
// given access path (PhySegScan with idx as the zone column, or PhyTableScan).
// It returns how many leaves it rewrote.
func forceAccessPath(p *relalg.Plan, rel int, phy relalg.PhyOp, idx relalg.ColID) int {
	if p == nil {
		return 0
	}
	n := forceAccessPath(p.Left, rel, phy, idx) + forceAccessPath(p.Right, rel, phy, idx)
	if p.Log == relalg.LogScan && p.Rel == rel && p.Prop.Kind != relalg.PropIndexed {
		p.Phy = phy
		p.IdxCol = idx
		n++
	}
	return n
}

// TestSegScanZonePruningDifferential builds a disk-backed lineitem with two
// zone-disjoint segments plus an unflushed tail, proves the store actually
// prunes, and then — for selective and non-selective zone predicates, at
// parallelism 1, 2, and 4 — asserts the segment-pruned access path returns
// exactly the table-scan multiset over the same plan.
func TestSegScanZonePruningDifferential(t *testing.T) {
	dir := t.TempDir()

	// Cycle 1: seed from the generator, flush one sorted segment per table.
	srv := testServer(t, Options{DataDir: dir})
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Cycle 2: append a strictly higher key range so the next flush writes a
	// second segment whose l_orderkey zone is disjoint from the first.
	srv = testServer(t, Options{DataDir: dir})
	li := srv.Catalog().MustTable("lineitem")
	okey := li.MustCol("l_orderkey")
	var maxKey int64
	for _, r := range li.Rows {
		if r[okey] > maxKey {
			maxKey = r[okey]
		}
	}
	var batch [][]int64
	for i := 0; i < 500; i++ {
		row := append([]int64(nil), li.Rows[i]...)
		row[okey] = maxKey + 1 + int64(i)
		batch = append(batch, row)
	}
	if err := li.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	li.Analyze(0)
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Cycle 3: load both segments, append an unflushed tail, and test.
	srv = testServer(t, Options{DataDir: dir})
	defer srv.Shutdown()
	li = srv.Catalog().MustTable("lineitem")
	tail := append([]int64(nil), li.Rows[0]...)
	tail[okey] = maxKey + 1000
	if err := li.AppendRows([][]int64{tail}); err != nil {
		t.Fatal(err)
	}
	li.Analyze(0)

	st := li.Store()
	if st.Kind() != "disk" {
		t.Fatalf("lineitem store kind = %q, want disk", st.Kind())
	}
	if zc := li.ZoneCols(); len(zc) != 1 || zc[0] != okey {
		t.Fatalf("lineitem zone cols = %v, want [%d]", zc, okey)
	}

	// Storage level: a predicate selecting only the low key range must skip
	// the high segment entirely.
	it := st.Scan([]storage.Pred{{Col: okey, Op: storage.CmpLT, Val: 200}}, 0)
	scanned := 0
	for {
		_, n, ok := it.Next()
		if !ok {
			break
		}
		scanned += n
	}
	pruned := it.PrunedRows()
	it.Release()
	if pruned == 0 {
		t.Fatal("zone maps pruned nothing for a range hitting only the first segment")
	}
	if total := len(li.Rows); scanned+pruned != total {
		t.Fatalf("scanned %d + pruned %d != %d rows", scanned, pruned, total)
	}

	// The enumerator must offer the segment-pruned scan for a zone-column
	// predicate on the disk-backed table...
	queries := []string{
		`SELECT l.l_orderkey, l.l_quantity, l.l_extendedprice FROM lineitem l WHERE l.l_orderkey < 400`,
		`SELECT l.l_orderkey, l.l_extendedprice FROM lineitem l WHERE l.l_orderkey > ` + itoa(maxKey),
		`SELECT o.o_orderkey, l.l_quantity FROM orders o, lineitem l
		   WHERE o.o_orderkey = l.l_orderkey AND l.l_orderkey < 400`,
	}
	cat := srv.Catalog()
	q0, err := srv.Session().Prepare(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	m0, err := cost.NewModel(q0.Query(), cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	segAlts := 0
	for _, a := range relalg.Split(q0.Query(), m0, relalg.DefaultSpace(), relalg.Single(0), relalg.AnyProp) {
		if a.Phy == relalg.PhySegScan {
			segAlts++
		}
	}
	if segAlts != 1 {
		t.Fatalf("enumerator offered %d segment scans for a zone predicate, want 1", segAlts)
	}
	// ...and must NOT offer it for the same query over a memstore catalog:
	// the plan space of in-memory tables is unchanged.
	memSrv := testServer(t, Options{})
	qm, err := memSrv.Session().Prepare(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	mm, err := cost.NewModel(qm.Query(), memSrv.Catalog(), cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range relalg.Split(qm.Query(), mm, relalg.DefaultSpace(), relalg.Single(0), relalg.AnyProp) {
		if a.Phy == relalg.PhySegScan {
			t.Fatal("enumerator offered a segment scan for an in-memory table")
		}
	}

	// Pruned-vs-unpruned differential: same optimized plan, lineitem leaf
	// forced to SegScan vs TableScan, compiled at P ∈ {1, 2, 4}.
	for _, sql := range queries {
		stq, err := srv.Session().Prepare(sql)
		if err != nil {
			t.Fatalf("prepare %q: %v", sql, err)
		}
		q := stq.Query()
		model, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.New(model, relalg.DefaultSpace(), core.PruneAll)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := opt.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		liRel := -1
		for i, r := range q.Rels {
			if r.Table == "lineitem" {
				liRel = i
			}
		}
		zoneCol := relalg.ColID{Rel: liRel, Off: okey}
		seg := plan.Clone()
		if n := forceAccessPath(seg, liRel, relalg.PhySegScan, zoneCol); n == 0 {
			t.Fatalf("no forcible lineitem leaf in plan:\n%s", plan.Explain(q))
		}
		full := plan.Clone()
		forceAccessPath(full, liRel, relalg.PhyTableScan, relalg.ColID{})
		for _, p := range []int{1, 2, 4} {
			run := func(pl *relalg.Plan) map[string]int {
				comp := &exec.Compiler{Q: q, Cat: cat, Parallelism: p}
				v, _, err := comp.CompileVec(pl)
				if err != nil {
					t.Fatalf("compile (P=%d): %v", p, err)
				}
				rows, err := exec.DrainVec(v)
				if err != nil {
					t.Fatalf("drain (P=%d): %v", p, err)
				}
				return multiset(rows)
			}
			if !sameMultiset(run(seg), run(full)) {
				t.Fatalf("segment-pruned scan diverged from table scan (P=%d) for %q", p, sql)
			}
		}
	}
}

// itoa formats an int64 without pulling strconv into the test imports twice.
func itoa(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestMetricsFreshServerNoNaN: a server that has executed nothing must render
// finite numbers everywhere — the JSON snapshot and the Prometheus text both
// contain no NaN (empty histograms report zero quantiles).
func TestMetricsFreshServerNoNaN(t *testing.T) {
	srv := testServer(t, Options{ResultCacheBytes: 1 << 20})
	b, err := json.Marshal(srv.Metrics())
	if err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if s := string(b); strings.Contains(s, "NaN") {
		t.Fatalf("fresh-server metrics JSON contains NaN:\n%s", s)
	}
	var sb strings.Builder
	srv.WriteProm(&sb)
	text := sb.String()
	if strings.Contains(text, "NaN") || strings.Contains(text, "nan") {
		t.Fatalf("fresh-server prom text contains NaN:\n%s", text)
	}
	for _, want := range []string{"repro_exec_latency_seconds_p99 0", "repro_execs_total 0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("fresh-server prom text missing %q:\n%s", want, text)
		}
	}
}
