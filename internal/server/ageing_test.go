package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fbstore"
)

// execNamed prepares name and executes it n times, failing the test on any
// error; it returns the prepared statement.
func execNamed(t *testing.T, srv *Server, name string, n int) *Stmt {
	t.Helper()
	st, err := srv.Session().PrepareNamed(name)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := st.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// execSQL is execNamed for ad-hoc SQL.
func execSQL(t *testing.T, srv *Server, sql string, n int) *Stmt {
	t.Helper()
	st, err := srv.Session().Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := st.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestSnapshotDifferentialRepairs is the persistence differential: a fresh
// server over a Load-ed copy of the statistics plane must walk the exact
// same repair trajectory as a fresh server over the live store that
// produced the snapshot. If the codec drops or rounds anything the
// calibrators consume, the two runs diverge in repair counts, warm seeds,
// or convergence — so equality here means the snapshot round trip is
// behavior-preserving, not merely structure-preserving.
func TestSnapshotDifferentialRepairs(t *testing.T) {
	workload := func(srv *Server) Metrics {
		execSQL(t, srv, statsQueryA, 4)
		execSQL(t, srv, statsQueryB, 3)
		execNamed(t, srv, "Q3S", 3)
		return srv.Metrics()
	}

	// Producer: learn from scratch, then snapshot the plane.
	producer := testServer(t, Options{})
	prodM := workload(producer)
	if prodM.Repairs == 0 {
		t.Fatal("producer never repaired; the workload teaches nothing")
	}
	var snap bytes.Buffer
	if err := producer.Stats().Save(&snap); err != nil {
		t.Fatal(err)
	}

	// Twins: fresh servers, one on the live store, one on the loaded copy.
	loaded := fbstore.New()
	if err := loaded.Load(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	live := testServer(t, Options{Stats: producer.Stats()})
	disk := testServer(t, Options{Stats: loaded})
	liveM, diskM := workload(live), workload(disk)

	if len(liveM.PerEntry) != len(diskM.PerEntry) {
		t.Fatalf("entry counts diverged: live %d, disk %d", len(liveM.PerEntry), len(diskM.PerEntry))
	}
	for i, le := range liveM.PerEntry {
		de := diskM.PerEntry[i]
		if le.Key != de.Key {
			t.Fatalf("entry order diverged: %s vs %s", le.Hash, de.Hash)
		}
		if le.Repairs != de.Repairs || le.FullOpts != de.FullOpts ||
			le.Converged != de.Converged || le.WarmSeeds != de.WarmSeeds ||
			le.PlanVersion != de.PlanVersion {
			t.Errorf("entry %s diverged across the snapshot round trip:\nlive %+v\ndisk %+v",
				le.Hash, le, de)
		}
		if le.WarmSeeds == 0 {
			t.Errorf("entry %s not warm-started from the producer's statistics", le.Hash)
		}
	}
	// Both twins learned from converged statistics: strictly fewer repairs
	// than the producer's cold learning curve.
	if liveM.Repairs >= prodM.Repairs || diskM.Repairs != liveM.Repairs {
		t.Fatalf("repair totals: producer %d, live twin %d, disk twin %d — want twins equal and below producer",
			prodM.Repairs, liveM.Repairs, diskM.Repairs)
	}
}

// TestEvictionAgeingTable drives the MaxEntries/TTL eviction machinery with
// observation ageing on, through the regimes that matter under drift: hot
// statistics must survive evict/re-admit churn (decay alone never forgets
// an actively observed fingerprint), while statistics the workload stopped
// touching go stale — no longer warm-starting — and are eventually
// reclaimed from the plane entirely.
func TestEvictionAgeingTable(t *testing.T) {
	const stale = 10
	cases := []struct {
		name string
		opts Options
		// run returns the statement whose cache entry is inspected.
		run          func(t *testing.T, srv *Server) *Stmt
		wantWarm     bool // re-admitted entry warm-started
		wantRepairs  bool // re-admitted entry repaired again (relearning)
		wantReclaims bool // plane reclaimed stale fingerprints
	}{
		{
			// LRU churn with decay on: A converges, B evicts A, A re-admits
			// warm with zero repairs — eviction still never forgets.
			name: "lru-churn/hot-retained",
			opts: Options{MaxEntries: 1, DecayHalfLife: 50},
			run: func(t *testing.T, srv *Server) *Stmt {
				execSQL(t, srv, statsQueryA, 3)
				execSQL(t, srv, statsQueryB, 1)
				return execSQL(t, srv, statsQueryA, 2)
			},
			wantWarm: true,
		},
		{
			// TTL expiry with decay on: the idle entry expires, its
			// statistics do not.
			name: "ttl-expiry/hot-retained",
			opts: Options{TTL: 200 * time.Millisecond, DecayHalfLife: 50},
			run: func(t *testing.T, srv *Server) *Stmt {
				execSQL(t, srv, statsQueryA, 3)
				time.Sleep(500 * time.Millisecond)
				st := execSQL(t, srv, statsQueryA, 2)
				if st.Hit {
					t.Skip("entry survived the TTL (loaded runner); nothing to assert")
				}
				return st
			},
			wantWarm: true,
		},
		{
			// Repeated evict/re-admit cycles with both ageing knobs on: the
			// entry stays hot throughout, so every re-admission warm-starts.
			name: "evict-readmit-cycles/hot-retained",
			opts: Options{MaxEntries: 1, DecayHalfLife: 30, StaleAfter: 500},
			run: func(t *testing.T, srv *Server) *Stmt {
				execSQL(t, srv, statsQueryA, 3)
				for i := 0; i < 3; i++ {
					execSQL(t, srv, statsQueryB, 1)
					execSQL(t, srv, statsQueryA, 1)
				}
				return execSQL(t, srv, statsQueryA, 1)
			},
			wantWarm: true,
		},
		{
			// The workload abandons A: disjoint lineitem traffic (Q1/Q6)
			// advances the observation clock far past the horizon, A's
			// fingerprints go stale and are reclaimed, and a re-admitted A
			// starts cold and relearns.
			name: "abandoned/stale-reclaimed",
			opts: Options{MaxEntries: 1, StaleAfter: stale},
			run: func(t *testing.T, srv *Server) *Stmt {
				execSQL(t, srv, statsQueryA, 3)
				execNamed(t, srv, "Q1", 15)
				execNamed(t, srv, "Q6", 15)
				srv.Stats().Sweep()
				return execSQL(t, srv, statsQueryA, 3)
			},
			wantWarm:     false,
			wantRepairs:  true,
			wantReclaims: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := testServer(t, tc.opts)
			st := tc.run(t, srv)
			m := srv.Metrics()
			repairs, warm, fullOpts := repairsOf(m, st.CacheKey())
			if fullOpts != 1 {
				t.Errorf("re-admitted entry full-opts=%d, want 1", fullOpts)
			}
			if (warm > 0) != tc.wantWarm {
				t.Errorf("warm seeds = %d, want warm=%v", warm, tc.wantWarm)
			}
			if (repairs > 0) != tc.wantRepairs {
				t.Errorf("repairs = %d, want repairs=%v", repairs, tc.wantRepairs)
			}
			if (m.StatsReclaimed > 0) != tc.wantReclaims {
				t.Errorf("reclaimed = %d, want reclaims=%v", m.StatsReclaimed, tc.wantReclaims)
			}
			if m.Evictions == 0 && (tc.opts.MaxEntries > 0 || tc.opts.TTL > 0) {
				t.Error("scenario produced no evictions; the table row tests nothing")
			}
			if tc.opts.DecayHalfLife > 0 && m.StatsDecays == 0 {
				t.Error("decay enabled but no fold ever decayed")
			}
		})
	}
}
