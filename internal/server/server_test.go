package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/tpch"
)

func testCatalog() *catalog.Catalog {
	return tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42, Skew: 0.5})
}

func testServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Dict == nil {
		opts.Dict = tpch.Dict()
		opts.Date = tpch.Date
	}
	if opts.Named == nil {
		opts.Named = tpch.Queries()
	}
	srv, err := New(testCatalog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// multiset renders a result set order-insensitively.
func multiset(rows []exec.Row) map[string]int {
	m := map[string]int{}
	for _, r := range rows {
		m[fmt.Sprint([]int64(r))]++
	}
	return m
}

// serialBaseline executes q once through a fresh optimizer and a serial
// executor — the single-session reference every concurrent result must
// match (any correct plan produces the same multiset).
func serialBaseline(t *testing.T, cat *catalog.Catalog, q *relalg.Query) map[string]int {
	t.Helper()
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.New(m, relalg.DefaultSpace(), core.PruneAll)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	comp := &exec.Compiler{Q: q, Cat: cat}
	v, _, err := comp.CompileVec(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.DrainVec(v)
	if err != nil {
		t.Fatal(err)
	}
	return multiset(rows)
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

func TestCanonicalKeyNormalizesSpelling(t *testing.T) {
	srv := testServer(t, Options{})
	sess := srv.Session()

	a, err := sess.Prepare(`SELECT c.c_custkey FROM customer c, orders o
		WHERE c.c_mktsegment = 'MACHINERY' AND c.c_custkey = o.o_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	// Different aliases, reordered predicates, flipped join direction.
	b, err := sess.Prepare(`SELECT cust.c_custkey FROM customer cust, orders ord
		WHERE ord.o_custkey = cust.c_custkey AND cust.c_mktsegment = 'MACHINERY'`)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheKey() != b.CacheKey() {
		t.Fatalf("spelling variants got distinct keys:\n%s\n%s", a.CacheKey(), b.CacheKey())
	}
	if a.Hit || !b.Hit {
		t.Fatalf("expected miss-then-hit, got %v then %v", a.Hit, b.Hit)
	}
	if a.entry != b.entry {
		t.Fatal("equal keys did not share the cache entry")
	}

	// A different literal is a different structure.
	c, err := sess.Prepare(`SELECT c.c_custkey FROM customer c, orders o
		WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheKey() == a.CacheKey() {
		t.Fatal("different literal collided with the cached structure")
	}
}

func TestPreparedAcrossSessionsSharesOptimizer(t *testing.T) {
	srv := testServer(t, Options{})
	s1, s2 := srv.Session(), srv.Session()

	st1, err := s1.PrepareNamed("Q3S")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hit {
		t.Fatal("first prepare reported a cache hit")
	}
	// Session 1 executes until the entry converges.
	for i := 0; i < 4; i++ {
		if _, err := st1.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	v1 := st1.PlanVersion()

	// Session 2 binds the same structure: it must get the repaired plan
	// without paying any optimization.
	st2, err := s2.PrepareNamed("Q3S")
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Hit {
		t.Fatal("second session missed the cache")
	}
	if st2.entry != st1.entry {
		t.Fatal("sessions did not share the cache entry")
	}
	res, err := st2.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanVersion != v1 {
		t.Fatalf("session 2 executed plan v%d, want the repaired v%d", res.PlanVersion, v1)
	}

	m := srv.Metrics()
	if m.FullOpts != 1 {
		t.Fatalf("full optimizations = %d, want exactly 1 for one cached structure", m.FullOpts)
	}
	if m.Repairs < 1 {
		t.Fatal("no incremental repairs recorded")
	}
}

// TestServeConcurrentStress is the race-shard workhorse: many goroutines
// hammer one server over a mixed hot/cold query set. Every result multiset
// must match the serial single-session baseline, cached entries must be
// repaired incrementally (repair count > 0, and exactly one from-scratch
// optimization per entry), and entry plans must converge after warmup.
func TestServeConcurrentStress(t *testing.T) {
	hot := []string{"Q3S", "Q5", "Q10"}
	cold := []string{"Q1", "Q6", "Q5S"}

	srv := testServer(t, Options{MaxConcurrent: 4, Parallelism: 2})
	baselines := map[string]map[string]int{}
	for _, name := range append(append([]string{}, hot...), cold...) {
		baselines[name] = serialBaseline(t, srv.Catalog(), srv.opts.Named[name])
	}

	const goroutines = 8
	const rounds = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := srv.Session()
			for r := 0; r < rounds; r++ {
				name := hot[(g+r)%len(hot)]
				if (g+r)%5 == 0 {
					name = cold[(g+r)%len(cold)] // occasional cold query
				}
				st, err := sess.PrepareNamed(name)
				if err != nil {
					t.Errorf("g%d r%d prepare %s: %v", g, r, name, err)
					return
				}
				res, err := st.Exec()
				if err != nil {
					t.Errorf("g%d r%d exec %s: %v", g, r, name, err)
					return
				}
				if !sameMultiset(multiset(res.Rows), baselines[name]) {
					t.Errorf("g%d r%d: %s result diverged from serial baseline (%d rows)",
						g, r, name, len(res.Rows))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Warmup is over: every further execution must reuse the converged
	// plan — no repair, no from-scratch re-optimization, stable version.
	sess := srv.Session()
	before := srv.Metrics()
	for _, name := range hot {
		st, err := sess.PrepareNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Hit {
			t.Fatalf("%s missed the cache after the stress run", name)
		}
		v0 := st.PlanVersion()
		for i := 0; i < 2; i++ {
			res, err := st.Exec()
			if err != nil {
				t.Fatal(err)
			}
			if res.Repaired {
				t.Errorf("%s still repairing after warmup (exec %d)", name, i)
			}
			if !sameMultiset(multiset(res.Rows), baselines[name]) {
				t.Errorf("%s post-warmup result diverged", name)
			}
		}
		if v := st.PlanVersion(); v != v0 {
			t.Errorf("%s plan did not converge: version moved %d -> %d", name, v0, v)
		}
	}
	after := srv.Metrics()
	if after.FullOpts != before.FullOpts {
		t.Errorf("from-scratch re-optimizations after warmup: %d", after.FullOpts-before.FullOpts)
	}

	for _, em := range after.PerEntry {
		if em.FullOpts != 1 {
			t.Errorf("entry %s: %d full optimizations, want exactly 1", em.Query, em.FullOpts)
		}
	}
	// The hot entries saw skewed data: their feedback must have repaired
	// the cached plan incrementally at least once.
	var hotRepairs int64
	for _, em := range after.PerEntry {
		for _, name := range hot {
			if em.Query == name {
				hotRepairs += em.Repairs
			}
		}
	}
	if hotRepairs == 0 {
		t.Error("no incremental repairs across the hot set")
	}
	if after.Misses != int64(len(hot)+len(cold)) {
		t.Errorf("misses = %d, want one per distinct structure (%d)",
			after.Misses, len(hot)+len(cold))
	}
}

func TestProtoSessionRoundTrip(t *testing.T) {
	srv := testServer(t, Options{})

	var out strings.Builder
	script := strings.Join([]string{
		"query q3 Q3S",
		"exec q3",
		"exec q3",
		"explain q3",
		"run SELECT c.c_custkey FROM customer c WHERE c.c_mktsegment = 'MACHINERY'",
		"names",
		"metrics",
		"bogus",
		"quit",
	}, "\n") + "\n"
	if err := srv.ServeConn(&rwPair{r: strings.NewReader(script), w: &out}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"ok prepared q3 cache=miss",
		"repaired=true",
		"repaired=false",
		"| HashJoin", // explain renders an operator tree
		"ok named=",
		"misses=2", // Q3S + the ad-hoc run
		`err unknown command "bogus"`,
		"ok bye",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("protocol transcript missing %q:\n%s", want, got)
		}
	}
}

// rwPair glues a reader and writer into an io.ReadWriter for ServeConn.
type rwPair struct {
	r *strings.Reader
	w *strings.Builder
}

func (p *rwPair) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *rwPair) Write(b []byte) (int, error) { return p.w.Write(b) }
