package server

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMemBudgetDifferential asserts the memory plane observes without
// participating: a server under a budget tight enough to force spilling
// produces result multisets and plan evolution identical to an unbounded
// one, while its metrics record the spill activity and a bounded peak.
func TestMemBudgetDifferential(t *testing.T) {
	const budget = 96 << 10
	free := testServer(t, Options{Parallelism: 2})
	tight := testServer(t, Options{Parallelism: 2, MemBudgetBytes: budget})

	for name := range free.opts.Named {
		st0, err := free.Session().PrepareNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		st1, err := tight.Session().PrepareNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			r0, err := st0.Exec()
			if err != nil {
				t.Fatal(err)
			}
			r1, err := st1.Exec()
			if err != nil {
				t.Fatal(err)
			}
			if !sameMultiset(multiset(r0.Rows), multiset(r1.Rows)) {
				t.Fatalf("%s: the memory budget changed the result multiset", name)
			}
			if r0.PlanVersion != r1.PlanVersion || r0.Repaired != r1.Repaired {
				t.Fatalf("%s exec %d: the memory budget changed plan evolution: v%d/%t vs v%d/%t",
					name, i, r0.PlanVersion, r0.Repaired, r1.PlanVersion, r1.Repaired)
			}
		}
	}

	m0, m1 := free.Metrics(), tight.Metrics()
	if m0.Repairs != m1.Repairs || m0.Converged != m1.Converged {
		t.Fatalf("the memory budget changed feedback totals: repairs %d vs %d, converged %d vs %d",
			m0.Repairs, m1.Repairs, m0.Converged, m1.Converged)
	}
	// Peak memory is observable on both servers — tracking is always on.
	if m0.PeakMem.Count != uint64(m0.Execs) || m0.PeakMem.Max <= 0 {
		t.Fatalf("unbounded server peak memory unobserved: %s", m0.PeakMem)
	}
	if m1.PeakMem.Count != uint64(m1.Execs) {
		t.Fatalf("budgeted server peak memory unobserved: %s", m1.PeakMem)
	}
	// At this scale with the workload's joins, the tight budget must spill.
	if m1.SpilledQueries == 0 || m1.SpillPartitions == 0 || m1.SpillBytes == 0 {
		t.Fatalf("tight budget never spilled: %+v", m1)
	}
	if m0.SpilledQueries != 0 {
		t.Fatalf("unbounded server spilled: %+v", m0)
	}
	// The strict peak <= budget bound is asserted in internal/exec, where
	// per-query Overage is visible (non-spillable operators Force past the
	// budget); here it suffices that the budget shrank the observed peak.
	if m1.PeakMem.Max >= m0.PeakMem.Max {
		t.Fatalf("budget did not reduce peak memory: %d vs unbounded %d",
			m1.PeakMem.Max, m0.PeakMem.Max)
	}
	text := m1.String()
	for _, want := range []string{"memory: peak-bytes", "spill: queries="} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics report missing %q:\n%s", want, text)
		}
	}
}

// TestMemCeilingGate fills the memory ceiling from the test (same package,
// so the gate state is reachable), proves an execution blocks on the gate,
// then drains the ceiling and asserts the waiter completes and is counted
// and traced with the "mem" queue-wait reason. Pre-filling makes the
// contention deterministic on any GOMAXPROCS.
func TestMemCeilingGate(t *testing.T) {
	const budget = 64 << 10
	srv := testServer(t, Options{
		MaxConcurrent:   8, // slots are plentiful; memory is the bottleneck
		MemBudgetBytes:  budget,
		MemCeilingBytes: budget, // one admitted query's budget fills it
		TraceEvents:     256,
	})
	sess := srv.Session()
	st, err := sess.PrepareNamed("Q3S")
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the whole ceiling, as an admitted query would.
	srv.memMu.Lock()
	srv.memInUse = budget
	srv.memMu.Unlock()

	done := make(chan error, 1)
	go func() {
		_, execErr := st.Exec()
		done <- execErr
	}()

	// The waiter registers in MemWaits as its wait begins; once it has,
	// it is provably parked inside the gate.
	deadline := time.Now().Add(10 * time.Second)
	for srv.memWaits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("execution never reached the memory gate")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("execution completed past a full ceiling: %v", err)
	default:
	}

	// Release the ceiling; the waiter must now be admitted and finish.
	srv.memMu.Lock()
	srv.memInUse = 0
	srv.memMu.Unlock()
	srv.memCond.Broadcast()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if m.MemWaits != 1 {
		t.Fatalf("MemWaits=%d, want 1", m.MemWaits)
	}
	memReasons := 0
	for _, ev := range srv.Tracer().Events() {
		if ev.Kind == obs.KindQueueWait && ev.Note == "mem" {
			memReasons++
			if !strings.Contains(ev.String(), "reason=mem") {
				t.Fatalf("queue-wait event does not render its reason: %s", ev.String())
			}
		}
	}
	if memReasons != 1 {
		t.Fatalf("traced %d mem-tagged queue waits, want 1", memReasons)
	}
}

func TestMemOptionValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"negative budget", Options{MemBudgetBytes: -1}},
		{"negative ceiling", Options{MemCeilingBytes: -1}},
		{"ceiling without budget", Options{MemCeilingBytes: 1 << 20}},
		{"budget exceeds ceiling", Options{MemBudgetBytes: 2 << 20, MemCeilingBytes: 1 << 20}},
	} {
		if _, err := New(testCatalog(), tc.opts); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.opts)
		}
	}
}
