package relalg

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// CmpOp is a comparison operator used in selection and (non-equi) join
// predicates.
type CmpOp uint8

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOp) String() string {
	switch o {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}

// Eval applies the comparison to two int64 values.
func (o CmpOp) Eval(a, b int64) bool {
	switch o {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

// ScanPred is a local selection predicate "col op literal" pushed into the
// scan of its relation.
type ScanPred struct {
	Col ColID
	Op  CmpOp
	Val int64
}

// JoinPred is an equi-join predicate L = R between columns of two distinct
// relations. Non-equi conditions between relations are expressed as
// FilterPreds and applied as residual filters at the join that first brings
// both sides together.
type JoinPred struct {
	L, R ColID
}

// Touches reports whether the predicate references relation i.
func (p JoinPred) Touches(i int) bool { return p.L.Rel == i || p.R.Rel == i }

// Crosses reports whether the predicate connects the two disjoint sets,
// regardless of direction.
func (p JoinPred) Crosses(l, r RelSet) bool {
	return (l.Has(p.L.Rel) && r.Has(p.R.Rel)) || (r.Has(p.L.Rel) && l.Has(p.R.Rel))
}

// FilterPred is a residual comparison between columns of two relations,
// optionally with a constant offset on the right side: "L op R + Off"
// (e.g. Linear Road's "r2_seg < r3_seg" and "r2_seg > r3_seg - 10"). It
// does not participate in join enumeration; it is applied, and its
// selectivity charged, at the first join whose output contains both
// columns.
type FilterPred struct {
	L, R ColID
	Op   CmpOp
	Off  int64
	// Sel is the estimated selectivity of the filter (0, 1].
	Sel float64
}

// RelRef names one occurrence of a base table in the FROM list.
type RelRef struct {
	Alias string // unique within the query
	Table string // catalog table name
}

// AggSpec describes the (optional) aggregation applied on top of the join
// result. It does not participate in plan enumeration (its cost is identical
// for every join order) but is executed by internal/exec.
type AggSpec struct {
	GroupBy  []ColID
	Sums     []ColID // SUM(col) aggregates
	CountAll bool    // COUNT(*)
	// CountDistinct columns, e.g. Linear Road's COUNT(DISTINCT r5_xpos).
	CountDistinct []ColID
}

// Query is a single-block select-project-join(-aggregate) query: the input
// to every optimizer in this repository. The paper's workload (TPC-H Q1, Q3,
// Q5, Q5S, Q6, Q10, Q8Join, Q8JoinS and Linear Road SegTollS) is expressed
// in this form by internal/tpch and internal/linearroad.
type Query struct {
	Name    string
	Rels    []RelRef
	Scans   []ScanPred
	Joins   []JoinPred
	Filters []FilterPred
	Agg     *AggSpec

	// adj is the join-graph adjacency (relation -> join pred indices),
	// built on first use and published atomically: concurrent first calls
	// may build it redundantly (the result is deterministic) but never
	// race. Validate prewarms it so validated queries do no lazy work.
	adj atomic.Pointer[[][]int]
}

// Validate checks structural sanity: relation ordinals in range, aliases
// unique, predicates well-formed. Optimizers call it once up front. It also
// precomputes the join-graph adjacency so that a validated Query is
// immutable and safe for concurrent read-only use — the serving layer
// shares one Query instance between the cached optimizer and every
// concurrently executing session.
func (q *Query) Validate() error {
	if len(q.Rels) == 0 {
		return fmt.Errorf("query %s: no relations", q.Name)
	}
	if len(q.Rels) > 64 {
		return fmt.Errorf("query %s: %d relations exceeds RelSet capacity", q.Name, len(q.Rels))
	}
	seen := map[string]bool{}
	for _, r := range q.Rels {
		if seen[r.Alias] {
			return fmt.Errorf("query %s: duplicate alias %q", q.Name, r.Alias)
		}
		seen[r.Alias] = true
	}
	checkCol := func(c ColID, what string) error {
		if c.Rel < 0 || c.Rel >= len(q.Rels) || c.Off < 0 {
			return fmt.Errorf("query %s: %s references invalid column %+v", q.Name, what, c)
		}
		return nil
	}
	for _, p := range q.Scans {
		if err := checkCol(p.Col, "scan predicate"); err != nil {
			return err
		}
	}
	for _, p := range q.Joins {
		if err := checkCol(p.L, "join predicate"); err != nil {
			return err
		}
		if err := checkCol(p.R, "join predicate"); err != nil {
			return err
		}
		if p.L.Rel == p.R.Rel {
			return fmt.Errorf("query %s: join predicate within one relation %+v", q.Name, p)
		}
	}
	for _, p := range q.Filters {
		if err := checkCol(p.L, "filter predicate"); err != nil {
			return err
		}
		if err := checkCol(p.R, "filter predicate"); err != nil {
			return err
		}
		if p.Sel <= 0 || p.Sel > 1 {
			return fmt.Errorf("query %s: filter selectivity %v out of (0,1]", q.Name, p.Sel)
		}
	}
	q.adjacency()
	return nil
}

// AllRels returns the set of every relation in the query.
func (q *Query) AllRels() RelSet {
	return RelSet(1)<<uint(len(q.Rels)) - 1
}

// ScanPredsOf returns the local selection predicates of relation i.
func (q *Query) ScanPredsOf(i int) []ScanPred {
	var out []ScanPred
	for _, p := range q.Scans {
		if p.Col.Rel == i {
			out = append(out, p)
		}
	}
	return out
}

func (q *Query) adjacency() [][]int {
	if p := q.adj.Load(); p != nil {
		return *p
	}
	adj := make([][]int, len(q.Rels))
	for pi, p := range q.Joins {
		adj[p.L.Rel] = append(adj[p.L.Rel], pi)
		adj[p.R.Rel] = append(adj[p.R.Rel], pi)
	}
	q.adj.Store(&adj)
	return adj
}

// Connected reports whether the relations of s form a connected subgraph of
// the join graph. Singleton sets are connected. The shared enumerator only
// generates connected subexpressions (no Cartesian products), as System R
// does.
func (q *Query) Connected(s RelSet) bool {
	if s.Empty() {
		return false
	}
	if s.IsSingle() {
		return true
	}
	adj := q.adjacency()
	start := s.Members()[0]
	visited := Single(start)
	frontier := []int{start}
	for len(frontier) > 0 {
		r := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, pi := range adj[r] {
			p := q.Joins[pi]
			for _, other := range [2]int{p.L.Rel, p.R.Rel} {
				if s.Has(other) && !visited.Has(other) {
					visited = visited.Add(other)
					frontier = append(frontier, other)
				}
			}
		}
	}
	return visited == s
}

// CrossPreds returns the indices into q.Joins of every equi-join predicate
// connecting the two disjoint sets.
func (q *Query) CrossPreds(l, r RelSet) []int {
	var out []int
	for pi, p := range q.Joins {
		if p.Crosses(l, r) {
			out = append(out, pi)
		}
	}
	return out
}

// InternalPreds returns the indices of join predicates entirely inside s.
func (q *Query) InternalPreds(s RelSet) []int {
	var out []int
	for pi, p := range q.Joins {
		if s.Has(p.L.Rel) && s.Has(p.R.Rel) {
			out = append(out, pi)
		}
	}
	return out
}

// InternalFilters returns the indices of residual filters entirely inside s.
func (q *Query) InternalFilters(s RelSet) []int {
	var out []int
	for fi, f := range q.Filters {
		if s.Has(f.L.Rel) && s.Has(f.R.Rel) {
			out = append(out, fi)
		}
	}
	return out
}

// SetString renders a relation set with aliases, e.g. "(C,O,L)", matching
// the paper's Figure 2 notation.
func (q *Query) SetString(s RelSet) string {
	var b strings.Builder
	b.WriteByte('(')
	first := true
	s.EachMember(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(q.Rels[i].Alias)
	})
	b.WriteByte(')')
	return b.String()
}

// ColString renders a column with its alias, e.g. "O.c1".
func (q *Query) ColString(c ColID) string {
	if c.Rel >= 0 && c.Rel < len(q.Rels) {
		return fmt.Sprintf("%s.c%d", q.Rels[c.Rel].Alias, c.Off)
	}
	return fmt.Sprintf("r%d.c%d", c.Rel, c.Off)
}
