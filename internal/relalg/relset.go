// Package relalg defines the relational-algebra vocabulary shared by every
// optimizer architecture in this repository: relation-set bitmaps, physical
// and logical operators, plan properties ("interesting orders" and index
// availability), the single-block query model, the join graph, the common
// plan-space enumerator (the paper's Fn_split / Fn_isleaf built-ins), and
// physical plan trees.
//
// Keeping this vocabulary in one package mirrors the paper's methodology:
// "wherever possible we used common code across the implementations" — the
// Volcano-style, System-R-style and declarative/incremental optimizers all
// enumerate exactly the same search space and therefore must agree on the
// optimum, which the test suite verifies.
package relalg

import (
	"fmt"
	"math/bits"
	"strings"
)

// RelSet is a bitmap over the base relations of a query: bit i is set when
// the i-th relation of Query.Rels participates in the (sub)expression. This
// is the paper's Expr key of the SearchSpace relation. A query may reference
// at most 64 relations, far beyond the paper's largest workload (8-way join).
type RelSet uint64

// Single returns the set containing only relation i.
func Single(i int) RelSet { return RelSet(1) << uint(i) }

// Has reports whether relation i is a member of s.
func (s RelSet) Has(i int) bool { return s&Single(i) != 0 }

// Add returns s with relation i included.
func (s RelSet) Add(i int) RelSet { return s | Single(i) }

// Union returns the set union of s and t.
func (s RelSet) Union(t RelSet) RelSet { return s | t }

// Intersect returns the set intersection of s and t.
func (s RelSet) Intersect(t RelSet) RelSet { return s & t }

// Without returns s with every member of t removed.
func (s RelSet) Without(t RelSet) RelSet { return s &^ t }

// Count returns the number of member relations.
func (s RelSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s RelSet) Empty() bool { return s == 0 }

// IsSingle reports whether the set has exactly one member, i.e. whether the
// expression is a leaf in the sense of the paper's Fn_isleaf built-in.
func (s RelSet) IsSingle() bool { return s != 0 && s&(s-1) == 0 }

// SingleMember returns the index of the sole member of a singleton set.
// It panics if the set is not a singleton.
func (s RelSet) SingleMember() int {
	if !s.IsSingle() {
		panic(fmt.Sprintf("relalg: SingleMember of non-singleton %b", uint64(s)))
	}
	return bits.TrailingZeros64(uint64(s))
}

// IsSubset reports whether every member of s is also in t.
func (s RelSet) IsSubset(t RelSet) bool { return s&^t == 0 }

// Members returns the member indices in ascending order.
func (s RelSet) Members() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &= v - 1
	}
	return out
}

// EachMember calls fn for every member index in ascending order.
func (s RelSet) EachMember(fn func(i int)) {
	for v := uint64(s); v != 0; {
		fn(bits.TrailingZeros64(v))
		v &= v - 1
	}
}

// ProperSubsets calls fn for every non-empty proper subset of s, in
// ascending numeric order of the subset bitmap. It is used by the bottom-up
// (System-R style) enumerator.
func (s RelSet) ProperSubsets(fn func(sub RelSet)) {
	u := uint64(s)
	// Standard sub-mask enumeration: iterates all non-zero submasks.
	for sub := (u - 1) & u; sub != 0; sub = (sub - 1) & u {
		fn(RelSet(sub))
	}
}

// String renders the set as a compact brace list of member indices, e.g.
// "{0,2,3}". Query.SetString renders names instead.
func (s RelSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.EachMember(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
