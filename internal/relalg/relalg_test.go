package relalg

import (
	"testing"
	"testing/quick"
)

func TestRelSetBasics(t *testing.T) {
	s := Single(0).Add(3).Add(5)
	if s.Count() != 3 || !s.Has(3) || s.Has(1) {
		t.Fatalf("set ops wrong: %v", s)
	}
	if got := s.Members(); len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Members = %v", got)
	}
	if !Single(3).IsSubset(s) || s.IsSubset(Single(3)) {
		t.Fatal("IsSubset wrong")
	}
	if s.Without(Single(3)) != Single(0).Add(5) {
		t.Fatal("Without wrong")
	}
	if !Single(4).IsSingle() || s.IsSingle() || RelSet(0).IsSingle() {
		t.Fatal("IsSingle wrong")
	}
	if Single(4).SingleMember() != 4 {
		t.Fatal("SingleMember wrong")
	}
	if s.String() != "{0,3,5}" {
		t.Fatalf("String = %q", s.String())
	}
}

// TestRelSetProperties are testing/quick algebraic laws of the bitset.
func TestRelSetProperties(t *testing.T) {
	type pair struct{ A, B uint16 }
	laws := map[string]func(p pair) bool{
		"union commutative": func(p pair) bool {
			a, b := RelSet(p.A), RelSet(p.B)
			return a.Union(b) == b.Union(a)
		},
		"intersect within both": func(p pair) bool {
			a, b := RelSet(p.A), RelSet(p.B)
			i := a.Intersect(b)
			return i.IsSubset(a) && i.IsSubset(b)
		},
		"without disjoint": func(p pair) bool {
			a, b := RelSet(p.A), RelSet(p.B)
			return a.Without(b).Intersect(b).Empty()
		},
		"count additive": func(p pair) bool {
			a, b := RelSet(p.A), RelSet(p.B)
			return a.Union(b).Count() == a.Count()+b.Count()-a.Intersect(b).Count()
		},
	}
	for name, law := range laws {
		if err := quick.Check(law, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestProperSubsetsEnumeration(t *testing.T) {
	s := RelSet(0b1011)
	seen := map[RelSet]bool{}
	s.ProperSubsets(func(sub RelSet) {
		if sub.Empty() || sub == s {
			t.Fatalf("ProperSubsets yielded %v", sub)
		}
		if !sub.IsSubset(s) {
			t.Fatalf("non-subset %v", sub)
		}
		if seen[sub] {
			t.Fatalf("duplicate %v", sub)
		}
		seen[sub] = true
	})
	// 2^3 - 2 non-empty proper subsets of a 3-element set... s has 3 bits:
	// {0,1,3}; proper non-empty subsets: 2^3-2 = 6.
	if len(seen) != 6 {
		t.Fatalf("enumerated %d subsets, want 6", len(seen))
	}
}

func chainQuery(n int) *Query {
	q := &Query{Name: "chain"}
	for i := 0; i < n; i++ {
		q.Rels = append(q.Rels, RelRef{Alias: string(rune('A' + i)), Table: "t"})
	}
	for i := 1; i < n; i++ {
		q.Joins = append(q.Joins, JoinPred{
			L: ColID{Rel: i - 1, Off: 0}, R: ColID{Rel: i, Off: 0},
		})
	}
	return q
}

func TestConnected(t *testing.T) {
	q := chainQuery(4) // A-B-C-D
	cases := []struct {
		set  RelSet
		want bool
	}{
		{Single(0), true},
		{Single(0).Add(1), true},
		{Single(0).Add(2), false}, // A and C not adjacent
		{Single(0).Add(1).Add(2).Add(3), true},
		{Single(1).Add(3), false},
	}
	for _, c := range cases {
		if got := q.Connected(c.set); got != c.want {
			t.Errorf("Connected(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestCrossAndInternalPreds(t *testing.T) {
	q := chainQuery(3)
	if got := q.CrossPreds(Single(0), Single(1).Add(2)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("CrossPreds = %v", got)
	}
	if got := q.InternalPreds(Single(1).Add(2)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("InternalPreds = %v", got)
	}
	if got := q.CrossPreds(Single(0), Single(2)); len(got) != 0 {
		t.Fatalf("CrossPreds non-adjacent = %v", got)
	}
}

func TestValidateRejectsBadQueries(t *testing.T) {
	bad := []*Query{
		{Name: "empty"},
		{Name: "dup", Rels: []RelRef{{Alias: "A"}, {Alias: "A"}}},
		{Name: "badcol", Rels: []RelRef{{Alias: "A"}},
			Scans: []ScanPred{{Col: ColID{Rel: 5, Off: 0}}}},
		{Name: "selfjoinpred", Rels: []RelRef{{Alias: "A"}, {Alias: "B"}},
			Joins: []JoinPred{{L: ColID{Rel: 0, Off: 0}, R: ColID{Rel: 0, Off: 1}}}},
		{Name: "badsel", Rels: []RelRef{{Alias: "A"}, {Alias: "B"}},
			Filters: []FilterPred{{L: ColID{Rel: 0, Off: 0}, R: ColID{Rel: 1, Off: 0}, Sel: 0}}},
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("query %s should fail validation", q.Name)
		}
	}
}

func TestCmpOpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b int64
		want bool
	}{
		{CmpEQ, 3, 3, true}, {CmpEQ, 3, 4, false},
		{CmpNE, 3, 4, true}, {CmpLT, 3, 4, true}, {CmpLT, 4, 4, false},
		{CmpLE, 4, 4, true}, {CmpGT, 5, 4, true}, {CmpGE, 4, 4, true},
		{CmpGE, 3, 4, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %v", c.op, c.a, c.b, got)
		}
	}
}

type fakeSchema struct {
	idx    map[int][]int
	sorted map[int]int
}

func (f fakeSchema) IndexCols(rel int) []int { return f.idx[rel] }
func (f fakeSchema) SortedCol(rel int) int {
	if c, ok := f.sorted[rel]; ok {
		return c
	}
	return -1
}

// TestSplitWellFormed checks structural invariants of the enumerator on a
// chain query: children partition the set, are connected, properties are
// only demanded where satisfiable, and the enumeration is deterministic.
func TestSplitWellFormed(t *testing.T) {
	q := chainQuery(4)
	schema := fakeSchema{idx: map[int][]int{0: {0}, 2: {0}}}
	opts := DefaultSpace()
	all := q.AllRels()
	alts := Split(q, schema, opts, all, AnyProp)
	if len(alts) == 0 {
		t.Fatal("no alternatives for the root")
	}
	for _, a := range alts {
		if a.Leaf() {
			t.Fatal("leaf alternative for a 4-relation set")
		}
		if a.Unary() {
			t.Fatal("enforcer in an Any group")
		}
		if a.LExpr.Union(a.RExpr) != all || !a.LExpr.Intersect(a.RExpr).Empty() {
			t.Fatalf("children do not partition: %v %v", a.LExpr, a.RExpr)
		}
		if !q.Connected(a.LExpr) || !q.Connected(a.RExpr) {
			t.Fatalf("disconnected child: %v %v", a.LExpr, a.RExpr)
		}
		if a.Phy == PhyIndexNLJoin {
			if !a.LExpr.IsSingle() {
				t.Fatal("index NL inner must be a single relation")
			}
			if a.LProp.Kind != PropIndexed {
				t.Fatal("index NL inner must demand Indexed")
			}
		}
		if a.Phy == PhyMergeJoin {
			if a.LProp.Kind != PropSorted || a.RProp.Kind != PropSorted {
				t.Fatal("merge join children must demand Sorted")
			}
		}
	}
	again := Split(q, schema, opts, all, AnyProp)
	if len(again) != len(alts) {
		t.Fatal("Split not deterministic")
	}
	for i := range alts {
		if alts[i] != again[i] {
			t.Fatal("Split order not deterministic")
		}
	}
}

func TestSplitProps(t *testing.T) {
	q := chainQuery(2)
	schema := fakeSchema{idx: map[int][]int{0: {0}}}
	opts := DefaultSpace()

	// Indexed group satisfiable only with an index.
	if alts := Split(q, schema, opts, Single(0), Indexed(ColID{Rel: 0, Off: 0})); len(alts) != 1 || alts[0].Phy != PhyIndexScan {
		t.Fatalf("indexed leaf alts = %+v", alts)
	}
	if alts := Split(q, schema, opts, Single(1), Indexed(ColID{Rel: 1, Off: 0})); len(alts) != 0 {
		t.Fatalf("unsatisfiable indexed group got %+v", alts)
	}
	// Sorted group always has the enforcer; index scan if available.
	alts := Split(q, schema, opts, Single(0), Sorted(ColID{Rel: 0, Off: 0}))
	var haveSort, haveIx bool
	for _, a := range alts {
		if a.Phy == PhySort {
			haveSort = true
		}
		if a.Phy == PhyIndexScan {
			haveIx = true
		}
	}
	if !haveSort || !haveIx {
		t.Fatalf("sorted leaf alts = %+v", alts)
	}
	// LeftDeepOnly restricts right children to single relations.
	ld := opts
	ld.LeftDeepOnly = true
	q4 := chainQuery(4)
	for _, a := range Split(q4, schema, ld, q4.AllRels(), AnyProp) {
		if !a.RExpr.IsSingle() {
			t.Fatalf("left-deep violation: right = %v", a.RExpr)
		}
	}
}

func TestPlanHelpers(t *testing.T) {
	leaf := func(rel int) *Plan {
		return &Plan{Expr: Single(rel), Log: LogScan, Phy: PhyTableScan, Rel: rel}
	}
	join := &Plan{
		Expr: Single(0).Add(1), Log: LogJoin, Phy: PhyHashJoin,
		Left: leaf(0), Right: leaf(1),
	}
	if join.Nodes() != 3 {
		t.Fatalf("Nodes = %d", join.Nodes())
	}
	if got := join.Leaves(nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Leaves = %v", got)
	}
	if join.Signature() != "hashjoin(ts0,ts1)" {
		t.Fatalf("Signature = %q", join.Signature())
	}
	cp := join.Clone()
	cp.Left.Rel = 9
	if join.Left.Rel == 9 {
		t.Fatal("Clone is shallow")
	}
}
