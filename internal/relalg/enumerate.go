package relalg

// This file implements the shared plan-space enumerator: the paper's
// Fn_split built-in (plus Fn_isleaf, which is RelSet.IsSingle). Given an
// (expression, property) pair it produces the full list of alternative
// "AND nodes" — SearchSpace tuples — for that "OR node". All three optimizer
// architectures call this same function, so they explore identical spaces.

// SchemaInfo supplies the physical-design facts the enumerator needs about
// base tables. internal/cost.Model implements it from the catalog.
type SchemaInfo interface {
	// IndexCols returns the column offsets (within the base table of
	// query relation rel) that carry an index, in ascending order.
	IndexCols(rel int) []int
	// SortedCol returns the column offset the base table of relation rel
	// is physically sorted by, or -1 if none.
	SortedCol(rel int) int
}

// ZoneInfo extends SchemaInfo for storage backends that keep per-segment
// zone maps (min/max summaries). A schema that also implements ZoneInfo
// lets the enumerator offer PhySegScan — a sequential scan that skips
// segments a local predicate provably excludes — as a third access path
// alongside table and index scans.
type ZoneInfo interface {
	// ZoneCols returns the column offsets of relation rel whose segment
	// zone maps make predicate pruning effective, or nil.
	ZoneCols(rel int) []int
}

// SpaceOptions selects which physical alternatives the enumerator generates.
// The defaults enable the full space used in the paper's evaluation
// (pipelined hash join, sort-merge join, index nested-loops join, sort
// enforcers, bushy trees). LeftDeepOnly restricts to left-linear expressions,
// the System-R variant the paper mentions in footnote 1; it is exercised by
// the ablation benchmarks.
type SpaceOptions struct {
	HashJoin     bool
	MergeJoin    bool
	IndexNL      bool
	SortEnforcer bool
	LeftDeepOnly bool
}

// DefaultSpace returns the full plan space configuration.
func DefaultSpace() SpaceOptions {
	return SpaceOptions{HashJoin: true, MergeJoin: true, IndexNL: true, SortEnforcer: true}
}

// Alt is one alternative plan for a group: a SearchSpace tuple minus the
// (Expr, Prop, Index) key, which the caller supplies. For scans only Rel is
// meaningful; for joins Pred indexes q.Joins and names the primary equi-join
// predicate (residual cross predicates are applied as filters); for the sort
// enforcer only the left child is used.
type Alt struct {
	Log    LogOp
	Phy    PhyOp
	Rel    int   // scans: relation ordinal
	Pred   int   // joins: index into Query.Joins of the primary predicate
	IdxCol ColID // index scans: the key column

	LExpr RelSet
	LProp Prop
	RExpr RelSet
	RProp Prop
}

// Unary reports whether the alternative has exactly one child group.
func (a Alt) Unary() bool { return a.Log == LogEnforce }

// Leaf reports whether the alternative has no child groups.
func (a Alt) Leaf() bool { return a.Log == LogScan }

// Split enumerates the alternatives for the group (s, p). The result order
// is deterministic: partitions ascend by left-bitmap value, operators in a
// fixed order, so every optimizer assigns identical Index values and metrics
// are comparable across architectures.
func Split(q *Query, schema SchemaInfo, opts SpaceOptions, s RelSet, p Prop) []Alt {
	if s.IsSingle() {
		return splitLeaf(q, schema, opts, s.SingleMember(), p)
	}
	var alts []Alt
	// Enumerate ordered connected partitions (L, R). Submask enumeration
	// yields each unordered partition twice (once per orientation), which
	// is what we want: hash join is asymmetric (build left / probe right)
	// and index NL requires the inner on the left (paper Table 1).
	s.ProperSubsets(func(l RelSet) {
		r := s.Without(l)
		if opts.LeftDeepOnly && !r.IsSingle() {
			return
		}
		if !q.Connected(l) || !q.Connected(r) {
			return
		}
		cross := q.CrossPreds(l, r)
		if len(cross) == 0 {
			return // no Cartesian products
		}
		primary := cross[0]
		if opts.HashJoin && p.Kind == PropAny {
			alts = append(alts, Alt{
				Log: LogJoin, Phy: PhyHashJoin, Pred: primary,
				LExpr: l, LProp: AnyProp, RExpr: r, RProp: AnyProp,
			})
		}
		if opts.MergeJoin {
			for _, pi := range cross {
				jp := q.Joins[pi]
				lcol, rcol := jp.L, jp.R
				if !l.Has(lcol.Rel) {
					lcol, rcol = rcol, lcol
				}
				// The merge output is sorted on both equated
				// columns; it belongs in the Any group and in
				// the Sorted groups of either column.
				if p.Kind == PropAny || (p.Kind == PropSorted && (p.Col == lcol || p.Col == rcol)) {
					alts = append(alts, Alt{
						Log: LogJoin, Phy: PhyMergeJoin, Pred: pi,
						LExpr: l, LProp: Sorted(lcol), RExpr: r, RProp: Sorted(rcol),
					})
				}
			}
		}
		if opts.IndexNL && p.Kind == PropAny && l.IsSingle() {
			inner := l.SingleMember()
			idxCols := schema.IndexCols(inner)
			for _, pi := range cross {
				jp := q.Joins[pi]
				innerCol := jp.L
				if innerCol.Rel != inner {
					innerCol = jp.R
				}
				if innerCol.Rel != inner || !hasInt(idxCols, innerCol.Off) {
					continue
				}
				alts = append(alts, Alt{
					Log: LogJoin, Phy: PhyIndexNLJoin, Pred: pi,
					LExpr: l, LProp: Indexed(innerCol), RExpr: r, RProp: AnyProp,
				})
			}
		}
	})
	if opts.SortEnforcer && p.Kind == PropSorted {
		alts = append(alts, Alt{
			Log: LogEnforce, Phy: PhySort,
			LExpr: s, LProp: AnyProp,
		})
	}
	return alts
}

func splitLeaf(q *Query, schema SchemaInfo, opts SpaceOptions, rel int, p Prop) []Alt {
	idxCols := schema.IndexCols(rel)
	switch p.Kind {
	case PropAny:
		alts := []Alt{{Log: LogScan, Phy: PhyTableScan, Rel: rel}}
		// Access-path selection: an index scan competes under Any when
		// a local predicate on the key column can restrict it.
		for _, pr := range q.ScanPredsOf(rel) {
			if hasInt(idxCols, pr.Col.Off) {
				alts = append(alts, Alt{Log: LogScan, Phy: PhyIndexScan, Rel: rel, IdxCol: pr.Col})
				break
			}
		}
		// A segment-pruned scan competes when the backend keeps zone maps
		// and a local predicate lands on a zone column (IdxCol doubles as
		// the zone column, exactly as it names the key for index scans).
		if zi, ok := schema.(ZoneInfo); ok {
			if zoneCols := zi.ZoneCols(rel); len(zoneCols) > 0 {
				for _, pr := range q.ScanPredsOf(rel) {
					if hasInt(zoneCols, pr.Col.Off) {
						alts = append(alts, Alt{Log: LogScan, Phy: PhySegScan, Rel: rel, IdxCol: pr.Col})
						break
					}
				}
			}
		}
		return alts
	case PropSorted:
		if p.Col.Rel != rel {
			return nil
		}
		var alts []Alt
		if schema.SortedCol(rel) == p.Col.Off {
			alts = append(alts, Alt{Log: LogScan, Phy: PhyTableScan, Rel: rel})
		}
		if hasInt(idxCols, p.Col.Off) {
			alts = append(alts, Alt{Log: LogScan, Phy: PhyIndexScan, Rel: rel, IdxCol: p.Col})
		}
		if opts.SortEnforcer {
			alts = append(alts, Alt{Log: LogEnforce, Phy: PhySort,
				LExpr: Single(rel), LProp: AnyProp})
		}
		return alts
	case PropIndexed:
		if p.Col.Rel != rel || !hasInt(idxCols, p.Col.Off) {
			return nil
		}
		return []Alt{{Log: LogScan, Phy: PhyIndexScan, Rel: rel, IdxCol: p.Col}}
	}
	return nil
}

func hasInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
