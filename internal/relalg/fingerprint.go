package relalg

import (
	"fmt"
	"sort"
	"strings"
)

// This file derives canonical, query-independent fingerprints for
// subexpressions. A RelSet is positional — bit i indexes one query's Rels —
// so a RelSet means nothing outside the query that minted it. The
// fingerprint re-expresses the subexpression in terms the whole server can
// agree on: the multiset of (table, local predicates) descriptors of its
// member relations, plus the join and residual-filter predicates internal to
// the subset rendered over a canonical ordering of those members. Two
// subexpressions of two different queries that read the same tables under
// the same predicates fingerprint identically, which is what lets learned
// cardinalities outlive any single plan-cache entry (internal/fbstore).
//
// Soundness over completeness: equal fingerprints imply structurally
// isomorphic subexpressions (same tables, same predicates up to relabeling),
// so shared statistics are always statistics about the same quantity.
// The converse does not fully hold — when a subset contains two relations
// with identical descriptors (a self-join), ties are broken by the minting
// query's relation order, so a reordered self-join spelling may fingerprint
// differently and merely forgo sharing. That conservatism costs a warm-up,
// never a wrong estimate.

// Fingerprinter derives canonical fingerprints for the subexpressions of one
// query. It precomputes per-relation descriptors once and memoizes per-set
// results, since the serving layer fingerprints the same few sets on every
// execution. Not safe for concurrent use; callers serialize it with the
// calibration state it feeds.
type Fingerprinter struct {
	q     *Query
	desc  []string // canonical per-relation descriptor
	cache map[RelSet]string
}

// NewFingerprinter builds the per-relation descriptors for q.
func NewFingerprinter(q *Query) *Fingerprinter {
	f := &Fingerprinter{q: q, desc: make([]string, len(q.Rels)), cache: map[RelSet]string{}}
	for i, r := range q.Rels {
		preds := make([]string, 0, 2)
		for _, p := range q.ScanPredsOf(i) {
			preds = append(preds, fmt.Sprintf("c%d%s%d", p.Col.Off, p.Op, p.Val))
		}
		sort.Strings(preds)
		f.desc[i] = r.Table + "{" + strings.Join(preds, ",") + "}"
	}
	return f
}

// CanonicalMembers returns the member relations of s in the canonical order
// Fingerprint renders them: by per-relation descriptor, ties by the minting
// query's relation order. Because two fingerprint-equal subexpressions agree
// descriptor-by-descriptor along this order, it is also the column order a
// materialized result of s can be shared in across queries — provided the
// order is not ambiguous (see AmbiguousOrder).
func (f *Fingerprinter) CanonicalMembers(s RelSet) []int {
	members := s.Members()
	sort.SliceStable(members, func(i, j int) bool {
		return f.desc[members[i]] < f.desc[members[j]]
	})
	return members
}

// AmbiguousOrder reports whether two members of s share a descriptor (a
// self-join under identical local predicates). The canonical member order
// then falls back to the minting query's relation order, so equal
// fingerprints still mean isomorphic subexpressions but no longer pin WHICH
// member maps to which — statistics sharing stays sound (cardinalities are
// permutation-invariant), result sharing is not (columns are not). Result
// caching refuses ambiguous sets.
func (f *Fingerprinter) AmbiguousOrder(s RelSet) bool {
	members := f.CanonicalMembers(s)
	for i := 1; i < len(members); i++ {
		if f.desc[members[i-1]] == f.desc[members[i]] {
			return true
		}
	}
	return false
}

// Fingerprint renders the canonical fingerprint of subexpression s.
func (f *Fingerprinter) Fingerprint(s RelSet) string {
	if fp, ok := f.cache[s]; ok {
		return fp
	}
	members := f.CanonicalMembers(s)
	pos := map[int]int{}
	for p, rel := range members {
		pos[rel] = p
	}

	var b strings.Builder
	b.WriteString("T:")
	for p, rel := range members {
		if p > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.desc[rel])
	}

	joins := make([]string, 0, 2)
	for _, pi := range f.q.InternalPreds(s) {
		p := f.q.Joins[pi]
		l := fmt.Sprintf("%d.%d", pos[p.L.Rel], p.L.Off)
		r := fmt.Sprintf("%d.%d", pos[p.R.Rel], p.R.Off)
		if r < l { // equi-joins are symmetric: normalize direction
			l, r = r, l
		}
		joins = append(joins, l+"="+r)
	}
	sort.Strings(joins)
	b.WriteString("|J:")
	b.WriteString(strings.Join(joins, ","))

	filters := make([]string, 0, 1)
	for _, fi := range f.q.InternalFilters(s) {
		fp := f.q.Filters[fi]
		filters = append(filters, fmt.Sprintf("%d.%d%s%d.%d+%d@%g",
			pos[fp.L.Rel], fp.L.Off, fp.Op, pos[fp.R.Rel], fp.R.Off, fp.Off, fp.Sel))
	}
	sort.Strings(filters)
	b.WriteString("|F:")
	b.WriteString(strings.Join(filters, ","))

	fp := b.String()
	f.cache[s] = fp
	return fp
}
