package relalg

import "fmt"

// LogOp is a logical operator: the paper's LogOp attribute of SearchSpace.
type LogOp uint8

const (
	// LogScan reads a base relation, applying that relation's local
	// selection predicates (the paper's "tablescans with selection
	// predicates applied").
	LogScan LogOp = iota
	// LogJoin combines two subexpressions on their connecting predicates.
	LogJoin
	// LogEnforce is a property enforcer: it does not change the logical
	// expression, only its physical properties (a Sort node).
	LogEnforce
)

func (o LogOp) String() string {
	switch o {
	case LogScan:
		return "scan"
	case LogJoin:
		return "join"
	case LogEnforce:
		return "enforce"
	}
	return fmt.Sprintf("LogOp(%d)", uint8(o))
}

// PhyOp is a physical operator: the paper's PhyOp attribute of SearchSpace.
type PhyOp uint8

const (
	// PhyTableScan is a sequential ("local") scan of a base relation.
	PhyTableScan PhyOp = iota
	// PhyIndexScan reads a base relation through one of its indexes,
	// producing output sorted by (and indexed on) the key column.
	PhyIndexScan
	// PhyHashJoin is a pipelined hash join: build on the left input,
	// probe with the right input. It imposes no input properties.
	PhyHashJoin
	// PhyMergeJoin is a sort-merge join: both inputs must be sorted on
	// the join columns; the output is sorted on them too.
	PhyMergeJoin
	// PhyIndexNLJoin is an index nested-loops join. Following the paper's
	// Table 1, the LEFT child is the inner (a single base relation with
	// an index on the join column, demanded with an Indexed property) and
	// the RIGHT child is the outer.
	PhyIndexNLJoin
	// PhySort is the sort enforcer that turns an Any-property plan into a
	// Sorted-property plan for the same expression.
	PhySort
	// PhySegScan is a segment-pruned sequential scan: the storage backend
	// skips immutable column segments whose zone maps (per-segment min/max
	// on the zone column, held in IdxCol) prove that no row can satisfy a
	// pushed-down predicate. Output order and properties match
	// PhyTableScan; only the I/O fraction differs.
	PhySegScan
)

func (o PhyOp) String() string {
	switch o {
	case PhyTableScan:
		return "tablescan"
	case PhyIndexScan:
		return "indexscan"
	case PhyHashJoin:
		return "hashjoin"
	case PhyMergeJoin:
		return "mergejoin"
	case PhyIndexNLJoin:
		return "indexnljoin"
	case PhySort:
		return "sort"
	case PhySegScan:
		return "segscan"
	}
	return fmt.Sprintf("PhyOp(%d)", uint8(o))
}

// PropKind classifies plan output properties.
type PropKind uint8

const (
	// PropAny places no requirement on (or makes no promise about) the
	// physical organization of the data.
	PropAny PropKind = iota
	// PropSorted requires/promises the rows sorted by a column — the
	// classic "interesting order" of System R.
	PropSorted
	// PropIndexed requires/promises random access by key on a column; it
	// is only satisfiable by an index scan of a base relation and is
	// demanded by the inner side of an index nested-loops join, exactly
	// as in the paper's Table 1 ("index on L_orderkey").
	PropIndexed
)

// ColID names a column of the query by (relation ordinal, column offset in
// that relation's base table). It is comparable and used as a map key.
type ColID struct {
	Rel int // index into Query.Rels
	Off int // column offset within the base table's row
}

// Prop is a physical property: the paper's Prop attribute. The zero value is
// PropAny.
type Prop struct {
	Kind PropKind
	Col  ColID // meaningful for PropSorted and PropIndexed
}

// AnyProp is the "no requirement" property.
var AnyProp = Prop{Kind: PropAny}

// Sorted returns the property "rows sorted by c".
func Sorted(c ColID) Prop { return Prop{Kind: PropSorted, Col: c} }

// Indexed returns the property "keyed random access on c".
func Indexed(c ColID) Prop { return Prop{Kind: PropIndexed, Col: c} }

func (p Prop) String() string {
	switch p.Kind {
	case PropAny:
		return "-"
	case PropSorted:
		return fmt.Sprintf("sorted(r%d.c%d)", p.Col.Rel, p.Col.Off)
	case PropIndexed:
		return fmt.Sprintf("indexed(r%d.c%d)", p.Col.Rel, p.Col.Off)
	}
	return "?"
}
