package relalg

import (
	"fmt"
	"strings"
)

// Plan is a physical plan tree: the output of every optimizer. Each node
// corresponds to one chosen SearchSpace alternative, annotated with the cost
// model's estimates at optimization time.
type Plan struct {
	Expr RelSet
	Prop Prop
	Log  LogOp
	Phy  PhyOp

	Rel    int   // scans
	Pred   int   // joins: primary predicate index into Query.Joins
	IdxCol ColID // index scans

	Left, Right *Plan // Right nil for unary, both nil for leaves

	Card      float64 // estimated output cardinality
	LocalCost float64 // estimated cost of this operator alone
	Cost      float64 // cumulative: LocalCost + children costs
}

// Clone deep-copies the plan tree.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	cp := *p
	cp.Left = p.Left.Clone()
	cp.Right = p.Right.Clone()
	return &cp
}

// Leaves appends the scan relations of the tree in left-to-right order.
func (p *Plan) Leaves(out []int) []int {
	if p == nil {
		return out
	}
	if p.Log == LogScan {
		return append(out, p.Rel)
	}
	out = p.Left.Leaves(out)
	return p.Right.Leaves(out)
}

// Nodes counts the operators in the tree.
func (p *Plan) Nodes() int {
	if p == nil {
		return 0
	}
	return 1 + p.Left.Nodes() + p.Right.Nodes()
}

// Signature returns a compact canonical string identifying the plan's
// structure (operators, join order, access paths) without cost annotations.
// Two plans with equal signatures are the same physical plan; the AQP layer
// uses it to detect plan switches.
func (p *Plan) Signature() string {
	if p == nil {
		return "-"
	}
	switch p.Log {
	case LogScan:
		if p.Phy == PhyIndexScan {
			return fmt.Sprintf("ix%d.%d", p.Rel, p.IdxCol.Off)
		}
		if p.Phy == PhySegScan {
			return fmt.Sprintf("ss%d.%d", p.Rel, p.IdxCol.Off)
		}
		return fmt.Sprintf("ts%d", p.Rel)
	case LogEnforce:
		return fmt.Sprintf("sort[%s](%s)", p.Prop, p.Left.Signature())
	default:
		return fmt.Sprintf("%s(%s,%s)", p.Phy, p.Left.Signature(), p.Right.Signature())
	}
}

// Explain renders the plan as an indented operator tree with cost and
// cardinality estimates, resolving names through the query.
func (p *Plan) Explain(q *Query) string {
	var b strings.Builder
	p.explain(q, &b, 0)
	return b.String()
}

func (p *Plan) explain(q *Query, b *strings.Builder, depth int) {
	if p == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	switch p.Log {
	case LogScan:
		name := "?"
		if q != nil && p.Rel < len(q.Rels) {
			name = q.Rels[p.Rel].Alias
		}
		if p.Phy == PhyIndexScan {
			fmt.Fprintf(b, "IndexScan %s key=%s", name, q.ColString(p.IdxCol))
		} else if p.Phy == PhySegScan {
			fmt.Fprintf(b, "SegScan %s zone=%s", name, q.ColString(p.IdxCol))
		} else {
			fmt.Fprintf(b, "TableScan %s", name)
		}
	case LogEnforce:
		fmt.Fprintf(b, "Sort %s", p.Prop)
	default:
		op := map[PhyOp]string{
			PhyHashJoin:    "HashJoin",
			PhyMergeJoin:   "MergeJoin",
			PhyIndexNLJoin: "IndexNLJoin",
		}[p.Phy]
		pred := ""
		if q != nil && p.Pred < len(q.Joins) {
			jp := q.Joins[p.Pred]
			pred = fmt.Sprintf(" on %s=%s", q.ColString(jp.L), q.ColString(jp.R))
		}
		fmt.Fprintf(b, "%s%s", op, pred)
	}
	fmt.Fprintf(b, "  [card=%.1f local=%.3f cost=%.3f]\n", p.Card, p.LocalCost, p.Cost)
	p.Left.explain(q, b, depth+1)
	p.Right.explain(q, b, depth+1)
}
