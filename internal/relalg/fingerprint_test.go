package relalg

import "testing"

// fpQuery builds a two-to-three relation query for fingerprint tests.
func fpQuery(rels []RelRef, scans []ScanPred, joins []JoinPred, filters []FilterPred) *Query {
	q := &Query{Name: "fp", Rels: rels, Scans: scans, Joins: joins, Filters: filters}
	return q
}

// TestFingerprintCrossQuery: the same subexpression appearing at different
// positions (and relation orders) of two different queries fingerprints
// identically — the property that makes learned statistics shareable across
// plan-cache entries.
func TestFingerprintCrossQuery(t *testing.T) {
	// Query A: customer(0), orders(1); scan on customer, join c0=c1.
	qa := fpQuery(
		[]RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
		[]ScanPred{{Col: ColID{Rel: 0, Off: 2}, Op: CmpEQ, Val: 7}},
		[]JoinPred{{L: ColID{Rel: 0, Off: 0}, R: ColID{Rel: 1, Off: 1}}},
		nil,
	)
	// Query B: orders(0), customer(1), lineitem(2); same predicates,
	// relations reordered, join direction flipped, plus an extra join.
	qb := fpQuery(
		[]RelRef{{Alias: "o", Table: "orders"}, {Alias: "c", Table: "customer"}, {Alias: "l", Table: "lineitem"}},
		[]ScanPred{{Col: ColID{Rel: 1, Off: 2}, Op: CmpEQ, Val: 7}},
		[]JoinPred{
			{L: ColID{Rel: 0, Off: 1}, R: ColID{Rel: 1, Off: 0}},
			{L: ColID{Rel: 0, Off: 3}, R: ColID{Rel: 2, Off: 0}},
		},
		nil,
	)
	fa, fb := NewFingerprinter(qa), NewFingerprinter(qb)

	// {customer} matches across queries.
	if got, want := fb.Fingerprint(Single(1)), fa.Fingerprint(Single(0)); got != want {
		t.Fatalf("customer fingerprints differ:\n%s\n%s", got, want)
	}
	// {customer, orders} matches despite reordering and flipped join.
	setA := Single(0).Add(1)
	setB := Single(0).Add(1)
	if got, want := fb.Fingerprint(setB), fa.Fingerprint(setA); got != want {
		t.Fatalf("join fingerprints differ:\n%s\n%s", got, want)
	}
	// {orders} alone differs from {customer} alone.
	if fa.Fingerprint(Single(0)) == fa.Fingerprint(Single(1)) {
		t.Fatal("distinct relations share a fingerprint")
	}
	// B's three-way set is not A's two-way set.
	if fb.Fingerprint(qb.AllRels()) == fa.Fingerprint(qa.AllRels()) {
		t.Fatal("different subexpressions share a fingerprint")
	}
}

// TestFingerprintPredicatesMatter: scan predicates (including their
// literals), join predicates, and residual filters all distinguish
// fingerprints — sharing statistics between them would mix different
// quantities.
func TestFingerprintPredicatesMatter(t *testing.T) {
	base := func(val int64, joinOff int, filters []FilterPred) string {
		q := fpQuery(
			[]RelRef{{Alias: "a", Table: "t1"}, {Alias: "b", Table: "t2"}},
			[]ScanPred{{Col: ColID{Rel: 0, Off: 1}, Op: CmpLT, Val: val}},
			[]JoinPred{{L: ColID{Rel: 0, Off: 0}, R: ColID{Rel: 1, Off: joinOff}}},
			filters,
		)
		return NewFingerprinter(q).Fingerprint(q.AllRels())
	}
	if base(10, 0, nil) == base(11, 0, nil) {
		t.Fatal("scan literal ignored by fingerprint")
	}
	if base(10, 0, nil) == base(10, 2, nil) {
		t.Fatal("join column ignored by fingerprint")
	}
	f := []FilterPred{{L: ColID{Rel: 0, Off: 3}, R: ColID{Rel: 1, Off: 3}, Op: CmpLT, Sel: 0.5}}
	if base(10, 0, nil) == base(10, 0, f) {
		t.Fatal("residual filter ignored by fingerprint")
	}
}

// TestFingerprintSelfJoin: duplicate-table members stay distinguishable —
// ties in the canonical member order break by the minting query's relation
// order, so a self-join whose two sides join to different columns never
// merges them into one ambiguous rendering.
func TestFingerprintSelfJoin(t *testing.T) {
	q := fpQuery(
		[]RelRef{{Alias: "r1", Table: "t"}, {Alias: "r2", Table: "t"}, {Alias: "s", Table: "u"}},
		nil,
		[]JoinPred{
			{L: ColID{Rel: 0, Off: 1}, R: ColID{Rel: 2, Off: 0}},
			{L: ColID{Rel: 1, Off: 5}, R: ColID{Rel: 2, Off: 0}},
		},
		nil,
	)
	f := NewFingerprinter(q)
	a := f.Fingerprint(Single(0).Add(2)) // t(join col 1) ⋈ u
	b := f.Fingerprint(Single(1).Add(2)) // t(join col 5) ⋈ u
	if a == b {
		t.Fatalf("self-join sides with different join columns share a fingerprint:\n%s", a)
	}
	// Deterministic: repeated fingerprinting (memoized and fresh) agrees.
	if f.Fingerprint(Single(0).Add(2)) != a || NewFingerprinter(q).Fingerprint(Single(0).Add(2)) != a {
		t.Fatal("fingerprint not deterministic")
	}
}

// TestCanonicalMembersOrder: the canonical member order sorts by descriptor
// (so it is query-independent for descriptor-distinct sets) and is exactly
// the order Fingerprint renders — the column-order contract the result cache
// builds on.
func TestCanonicalMembersOrder(t *testing.T) {
	q := fpQuery(
		[]RelRef{{Alias: "o", Table: "orders"}, {Alias: "c", Table: "customer"}, {Alias: "l", Table: "lineitem"}},
		[]ScanPred{{Col: ColID{Rel: 1, Off: 2}, Op: CmpEQ, Val: 7}},
		[]JoinPred{
			{L: ColID{Rel: 0, Off: 1}, R: ColID{Rel: 1, Off: 0}},
			{L: ColID{Rel: 0, Off: 3}, R: ColID{Rel: 2, Off: 0}},
		},
		nil,
	)
	f := NewFingerprinter(q)
	all := q.AllRels()
	members := f.CanonicalMembers(all)
	if len(members) != 3 {
		t.Fatalf("3-way set has %d canonical members", len(members))
	}
	for i := 1; i < len(members); i++ {
		if f.desc[members[i-1]] > f.desc[members[i]] {
			t.Fatalf("canonical members out of descriptor order: %v", members)
		}
	}
	if f.AmbiguousOrder(all) {
		t.Fatal("descriptor-distinct set reported ambiguous")
	}
	// A structurally equal query with relations reordered maps position by
	// position onto the same descriptor sequence.
	q2 := fpQuery(
		[]RelRef{{Alias: "l", Table: "lineitem"}, {Alias: "o", Table: "orders"}, {Alias: "c", Table: "customer"}},
		[]ScanPred{{Col: ColID{Rel: 2, Off: 2}, Op: CmpEQ, Val: 7}},
		[]JoinPred{
			{L: ColID{Rel: 1, Off: 1}, R: ColID{Rel: 2, Off: 0}},
			{L: ColID{Rel: 1, Off: 3}, R: ColID{Rel: 0, Off: 0}},
		},
		nil,
	)
	f2 := NewFingerprinter(q2)
	members2 := f2.CanonicalMembers(q2.AllRels())
	for i := range members {
		if f.desc[members[i]] != f2.desc[members2[i]] {
			t.Fatalf("canonical descriptor sequence differs at %d: %q vs %q",
				i, f.desc[members[i]], f2.desc[members2[i]])
		}
	}
}

// TestAmbiguousOrderSelfJoin: two members with identical descriptors make
// the order ambiguous — result caching must refuse such sets while sets
// distinguished by local predicates stay unambiguous.
func TestAmbiguousOrderSelfJoin(t *testing.T) {
	q := fpQuery(
		[]RelRef{{Alias: "r1", Table: "t"}, {Alias: "r2", Table: "t"}, {Alias: "s", Table: "u"}},
		[]ScanPred{{Col: ColID{Rel: 1, Off: 0}, Op: CmpGT, Val: 5}},
		[]JoinPred{
			{L: ColID{Rel: 0, Off: 1}, R: ColID{Rel: 2, Off: 0}},
			{L: ColID{Rel: 1, Off: 1}, R: ColID{Rel: 2, Off: 0}},
			{L: ColID{Rel: 0, Off: 2}, R: ColID{Rel: 1, Off: 2}},
		},
		nil,
	)
	f := NewFingerprinter(q)
	// r1 and r2 differ by r2's scan predicate: unambiguous everywhere.
	if f.AmbiguousOrder(q.AllRels()) || f.AmbiguousOrder(Single(0).Add(1)) {
		t.Fatal("predicate-distinguished self-join reported ambiguous")
	}
	// Without the scan predicate the two t references collide.
	q2 := fpQuery(q.Rels, nil, q.Joins, nil)
	f2 := NewFingerprinter(q2)
	if !f2.AmbiguousOrder(q2.AllRels()) || !f2.AmbiguousOrder(Single(0).Add(1)) {
		t.Fatal("identical self-join references reported unambiguous")
	}
	if f2.AmbiguousOrder(Single(0).Add(2)) {
		t.Fatal("set with one t reference reported ambiguous")
	}
}
