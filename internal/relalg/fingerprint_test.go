package relalg

import "testing"

// fpQuery builds a two-to-three relation query for fingerprint tests.
func fpQuery(rels []RelRef, scans []ScanPred, joins []JoinPred, filters []FilterPred) *Query {
	q := &Query{Name: "fp", Rels: rels, Scans: scans, Joins: joins, Filters: filters}
	return q
}

// TestFingerprintCrossQuery: the same subexpression appearing at different
// positions (and relation orders) of two different queries fingerprints
// identically — the property that makes learned statistics shareable across
// plan-cache entries.
func TestFingerprintCrossQuery(t *testing.T) {
	// Query A: customer(0), orders(1); scan on customer, join c0=c1.
	qa := fpQuery(
		[]RelRef{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
		[]ScanPred{{Col: ColID{Rel: 0, Off: 2}, Op: CmpEQ, Val: 7}},
		[]JoinPred{{L: ColID{Rel: 0, Off: 0}, R: ColID{Rel: 1, Off: 1}}},
		nil,
	)
	// Query B: orders(0), customer(1), lineitem(2); same predicates,
	// relations reordered, join direction flipped, plus an extra join.
	qb := fpQuery(
		[]RelRef{{Alias: "o", Table: "orders"}, {Alias: "c", Table: "customer"}, {Alias: "l", Table: "lineitem"}},
		[]ScanPred{{Col: ColID{Rel: 1, Off: 2}, Op: CmpEQ, Val: 7}},
		[]JoinPred{
			{L: ColID{Rel: 0, Off: 1}, R: ColID{Rel: 1, Off: 0}},
			{L: ColID{Rel: 0, Off: 3}, R: ColID{Rel: 2, Off: 0}},
		},
		nil,
	)
	fa, fb := NewFingerprinter(qa), NewFingerprinter(qb)

	// {customer} matches across queries.
	if got, want := fb.Fingerprint(Single(1)), fa.Fingerprint(Single(0)); got != want {
		t.Fatalf("customer fingerprints differ:\n%s\n%s", got, want)
	}
	// {customer, orders} matches despite reordering and flipped join.
	setA := Single(0).Add(1)
	setB := Single(0).Add(1)
	if got, want := fb.Fingerprint(setB), fa.Fingerprint(setA); got != want {
		t.Fatalf("join fingerprints differ:\n%s\n%s", got, want)
	}
	// {orders} alone differs from {customer} alone.
	if fa.Fingerprint(Single(0)) == fa.Fingerprint(Single(1)) {
		t.Fatal("distinct relations share a fingerprint")
	}
	// B's three-way set is not A's two-way set.
	if fb.Fingerprint(qb.AllRels()) == fa.Fingerprint(qa.AllRels()) {
		t.Fatal("different subexpressions share a fingerprint")
	}
}

// TestFingerprintPredicatesMatter: scan predicates (including their
// literals), join predicates, and residual filters all distinguish
// fingerprints — sharing statistics between them would mix different
// quantities.
func TestFingerprintPredicatesMatter(t *testing.T) {
	base := func(val int64, joinOff int, filters []FilterPred) string {
		q := fpQuery(
			[]RelRef{{Alias: "a", Table: "t1"}, {Alias: "b", Table: "t2"}},
			[]ScanPred{{Col: ColID{Rel: 0, Off: 1}, Op: CmpLT, Val: val}},
			[]JoinPred{{L: ColID{Rel: 0, Off: 0}, R: ColID{Rel: 1, Off: joinOff}}},
			filters,
		)
		return NewFingerprinter(q).Fingerprint(q.AllRels())
	}
	if base(10, 0, nil) == base(11, 0, nil) {
		t.Fatal("scan literal ignored by fingerprint")
	}
	if base(10, 0, nil) == base(10, 2, nil) {
		t.Fatal("join column ignored by fingerprint")
	}
	f := []FilterPred{{L: ColID{Rel: 0, Off: 3}, R: ColID{Rel: 1, Off: 3}, Op: CmpLT, Sel: 0.5}}
	if base(10, 0, nil) == base(10, 0, f) {
		t.Fatal("residual filter ignored by fingerprint")
	}
}

// TestFingerprintSelfJoin: duplicate-table members stay distinguishable —
// ties in the canonical member order break by the minting query's relation
// order, so a self-join whose two sides join to different columns never
// merges them into one ambiguous rendering.
func TestFingerprintSelfJoin(t *testing.T) {
	q := fpQuery(
		[]RelRef{{Alias: "r1", Table: "t"}, {Alias: "r2", Table: "t"}, {Alias: "s", Table: "u"}},
		nil,
		[]JoinPred{
			{L: ColID{Rel: 0, Off: 1}, R: ColID{Rel: 2, Off: 0}},
			{L: ColID{Rel: 1, Off: 5}, R: ColID{Rel: 2, Off: 0}},
		},
		nil,
	)
	f := NewFingerprinter(q)
	a := f.Fingerprint(Single(0).Add(2)) // t(join col 1) ⋈ u
	b := f.Fingerprint(Single(1).Add(2)) // t(join col 5) ⋈ u
	if a == b {
		t.Fatalf("self-join sides with different join columns share a fingerprint:\n%s", a)
	}
	// Deterministic: repeated fingerprinting (memoized and fresh) agrees.
	if f.Fingerprint(Single(0).Add(2)) != a || NewFingerprinter(q).Fingerprint(Single(0).Add(2)) != a {
		t.Fatal("fingerprint not deterministic")
	}
}
