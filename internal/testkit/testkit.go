// Package testkit builds synthetic catalogs and random single-block queries
// for the differential and property-based test suites. Random queries have
// connected join graphs (a random spanning tree plus optional extra edges),
// random local predicates, and random physical designs (indexes, sort
// orders) so that every operator alternative in the plan space gets
// exercised.
package testkit

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/relalg"
	"repro/internal/stats"
)

// ColsPerTable is the arity of every synthetic table.
const ColsPerTable = 4

// SyntheticCatalog creates nTables tables T0..T(n-1) with randomized sizes
// (10..100k rows), per-column distinct counts, and a random physical design:
// each column independently gets an index with probability 1/2, and each
// table is clustered on column 0 with probability 1/3.
func SyntheticCatalog(r *stats.Rand, nTables int) *catalog.Catalog {
	cat := catalog.New()
	for i := 0; i < nTables; i++ {
		t := catalog.NewTable(fmt.Sprintf("T%d", i), "c0", "c1", "c2", "c3")
		rows := float64(10 + r.Intn(100000))
		distincts := make([]int64, ColsPerTable)
		for c := range distincts {
			d := int64(1 + r.Intn(int(rows)))
			distincts[c] = d
		}
		t.SetSyntheticStats(rows, distincts)
		for c := 0; c < ColsPerTable; c++ {
			if r.Intn(2) == 0 {
				t.AddIndex(fmt.Sprintf("c%d", c))
			}
		}
		if r.Intn(3) == 0 {
			t.SortedBy = 0
		}
		cat.Add(t)
	}
	return cat
}

// RandomQuery builds a query over nRels relations drawn from the catalog's
// tables (with repetition — self-joins occur), a random spanning tree of
// equi-join predicates, up to two extra join edges, and up to nRels random
// selection predicates.
func RandomQuery(r *stats.Rand, cat *catalog.Catalog, nRels int) *relalg.Query {
	names := cat.Names()
	q := &relalg.Query{Name: fmt.Sprintf("rand%d", r.Intn(1_000_000))}
	for i := 0; i < nRels; i++ {
		table := names[r.Intn(len(names))]
		q.Rels = append(q.Rels, relalg.RelRef{
			Alias: fmt.Sprintf("R%d", i),
			Table: table,
		})
	}
	// Random spanning tree: attach each relation i>0 to a random earlier
	// relation.
	for i := 1; i < nRels; i++ {
		j := r.Intn(i)
		q.Joins = append(q.Joins, relalg.JoinPred{
			L: relalg.ColID{Rel: j, Off: r.Intn(ColsPerTable)},
			R: relalg.ColID{Rel: i, Off: r.Intn(ColsPerTable)},
		})
	}
	// Extra edges make the join graph cyclic sometimes, which exercises
	// multiple connecting predicates per partition.
	for k := 0; k < 2 && nRels > 2; k++ {
		if r.Intn(2) == 0 {
			continue
		}
		a := r.Intn(nRels)
		b := r.Intn(nRels)
		if a == b {
			continue
		}
		q.Joins = append(q.Joins, relalg.JoinPred{
			L: relalg.ColID{Rel: a, Off: r.Intn(ColsPerTable)},
			R: relalg.ColID{Rel: b, Off: r.Intn(ColsPerTable)},
		})
	}
	// Random local selections.
	for i := 0; i < nRels; i++ {
		if r.Intn(2) == 0 {
			continue
		}
		t := cat.MustTable(q.Rels[i].Table)
		off := r.Intn(ColsPerTable)
		max := t.Cols[off].Max
		if max < 1 {
			max = 1
		}
		ops := []relalg.CmpOp{relalg.CmpEQ, relalg.CmpLT, relalg.CmpGT, relalg.CmpLE, relalg.CmpGE}
		q.Scans = append(q.Scans, relalg.ScanPred{
			Col: relalg.ColID{Rel: i, Off: off},
			Op:  ops[r.Intn(len(ops))],
			Val: r.Int64n(max + 1),
		})
	}
	if err := q.Validate(); err != nil {
		panic(err)
	}
	return q
}

// RandomConnectedSubset returns a random connected subexpression of the
// query with at least minSize relations — the target of a synthetic
// cardinality update.
func RandomConnectedSubset(r *stats.Rand, q *relalg.Query, minSize int) relalg.RelSet {
	n := len(q.Rels)
	for tries := 0; tries < 100; tries++ {
		s := relalg.Single(r.Intn(n))
		size := minSize + r.Intn(n-minSize+1)
		for s.Count() < size {
			grown := false
			for _, jp := range q.Joins {
				if s.Has(jp.L.Rel) != s.Has(jp.R.Rel) && r.Intn(2) == 0 {
					s = s.Add(jp.L.Rel).Add(jp.R.Rel)
					grown = true
					break
				}
			}
			if !grown {
				break
			}
		}
		if s.Count() >= minSize && q.Connected(s) {
			return s
		}
	}
	return q.AllRels()
}
