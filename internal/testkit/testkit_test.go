package testkit

import (
	"testing"

	"repro/internal/stats"
)

func TestSyntheticCatalogShape(t *testing.T) {
	r := stats.NewRand(1)
	cat := SyntheticCatalog(r, 4)
	names := cat.Names()
	if len(names) != 4 {
		t.Fatalf("tables = %v", names)
	}
	for _, n := range names {
		tb := cat.MustTable(n)
		if len(tb.ColNames) != ColsPerTable {
			t.Fatalf("%s arity = %d", n, len(tb.ColNames))
		}
		if tb.NumRows < 10 {
			t.Fatalf("%s rows = %v", n, tb.NumRows)
		}
		for c := 0; c < ColsPerTable; c++ {
			if tb.Cols[c].Distinct < 1 || tb.Cols[c].Hist == nil {
				t.Fatalf("%s col %d stats missing", n, c)
			}
		}
	}
}

func TestRandomQueryConnectedAndValid(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		r := stats.NewRand(seed)
		cat := SyntheticCatalog(r, 3)
		n := 2 + r.Intn(6)
		q := RandomQuery(r, cat, n)
		if err := q.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !q.Connected(q.AllRels()) {
			t.Fatalf("seed %d: query disconnected", seed)
		}
		if len(q.Joins) < n-1 {
			t.Fatalf("seed %d: too few join predicates", seed)
		}
	}
}

func TestRandomConnectedSubset(t *testing.T) {
	r := stats.NewRand(2)
	cat := SyntheticCatalog(r, 3)
	q := RandomQuery(r, cat, 6)
	for i := 0; i < 50; i++ {
		s := RandomConnectedSubset(r, q, 2)
		if s.Count() < 2 || !q.Connected(s) {
			t.Fatalf("bad subset %v", s)
		}
	}
}
