// Package tpch generates TPC-H-style data and defines the paper's workload
// queries (Q1, Q3S, Q5, Q5S, Q6, Q10 and the hand-built eight-way joins
// Q8Join / Q8JoinS of Table 2). Everything is integer-encoded: names and
// segments are dictionary codes, prices are cents, and dates are day
// offsets from 1992-01-01.
//
// The generator is deterministic (splitmix64-seeded) and supports a Zipf
// skew factor on foreign-key choices — the substitute for the Microsoft
// Research skewed TPC-D generator the paper uses (skew factor 0 reproduces
// the uniform TPC-H distributions, 0.5 the paper's skewed runs).
package tpch

import (
	"repro/internal/catalog"
	"repro/internal/stats"
)

// Mktsegment dictionary codes.
const (
	SegAutomobile int64 = iota
	SegBuilding
	SegFurniture
	SegHousehold
	SegMachinery
	NumSegments
)

// Returnflag dictionary codes.
const (
	FlagA int64 = iota
	FlagN
	FlagR
	NumFlags
)

// Dict returns the string-literal dictionary of the generated schema: the
// region names (r_name), market segments (c_mktsegment) and return flags
// (l_returnflag) mapped to their integer codes. It is what lets ad-hoc SQL
// like "WHERE r.r_name = 'ASIA'" resolve against the integer-encoded data —
// pass it (with Date) to sqlmini / repro.ParseSQL / the server options.
func Dict() map[string]int64 {
	return map[string]int64{
		// region codes follow TPC-H alphabetical order
		"AFRICA": 0, "AMERICA": 1, "ASIA": 2, "EUROPE": 3, "MIDDLE EAST": 4,
		"AUTOMOBILE": SegAutomobile, "BUILDING": SegBuilding,
		"FURNITURE": SegFurniture, "HOUSEHOLD": SegHousehold,
		"MACHINERY": SegMachinery,
		"A":         FlagA, "N": FlagN, "R": FlagR,
	}
}

// Date returns the day offset of y-m-d from 1992-01-01 (months and days
// 1-based, 30-day months — sufficient for selectivity realism).
func Date(y, m, d int) int64 {
	return int64((y-1992)*360 + (m-1)*30 + (d - 1))
}

// Config controls generation.
type Config struct {
	// ScaleFactor scales table sizes relative to TPC-H SF1 (1500000
	// orders). The evaluation uses 0.002–0.02 to keep runs laptop-sized.
	ScaleFactor float64
	// Skew is the Zipf exponent applied to foreign-key choices; 0 means
	// uniform.
	Skew float64
	// Seed drives the deterministic generator.
	Seed uint64
	// HistogramBuckets for Analyze (default catalog.DefaultHistogramBuckets).
	HistogramBuckets int
}

// DefaultConfig is the evaluation's standard configuration.
func DefaultConfig() Config {
	return Config{ScaleFactor: 0.005, Skew: 0, Seed: 42}
}

func (c Config) n(base int) int {
	n := int(float64(base) * c.ScaleFactor)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds the eight TPC-H tables with data, statistics and the
// physical design used throughout the evaluation (primary and foreign key
// indexes; orders and lineitem clustered on the order key).
func Generate(cfg Config) *catalog.Catalog {
	r := stats.NewRand(cfg.Seed)
	cat := catalog.New()

	region := catalog.NewTable("region", "r_regionkey", "r_name")
	for i := 0; i < 5; i++ {
		region.Append([]int64{int64(i), int64(i)})
	}
	region.AddIndex("r_regionkey")
	cat.Add(region)

	nation := catalog.NewTable("nation", "n_nationkey", "n_name", "n_regionkey")
	for i := 0; i < 25; i++ {
		nation.Append([]int64{int64(i), int64(i), int64(i % 5)})
	}
	nation.AddIndex("n_nationkey")
	nation.AddIndex("n_regionkey")
	cat.Add(nation)

	nSupp := cfg.n(10000)
	supplier := catalog.NewTable("supplier", "s_suppkey", "s_name", "s_nationkey")
	for i := 0; i < nSupp; i++ {
		supplier.Append([]int64{int64(i), int64(i), r.Int64n(25)})
	}
	supplier.AddIndex("s_suppkey")
	supplier.AddIndex("s_nationkey")
	cat.Add(supplier)

	nCust := cfg.n(150000)
	customer := catalog.NewTable("customer", "c_custkey", "c_name", "c_mktsegment", "c_nationkey")
	for i := 0; i < nCust; i++ {
		customer.Append([]int64{int64(i), int64(i), r.Int64n(NumSegments), r.Int64n(25)})
	}
	customer.AddIndex("c_custkey")
	customer.AddIndex("c_nationkey")
	cat.Add(customer)

	nPart := cfg.n(200000)
	part := catalog.NewTable("part", "p_partkey", "p_name", "p_size")
	for i := 0; i < nPart; i++ {
		part.Append([]int64{int64(i), int64(i), 1 + r.Int64n(50)})
	}
	part.AddIndex("p_partkey")
	cat.Add(part)

	partsupp := catalog.NewTable("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty")
	for i := 0; i < nPart; i++ {
		for j := 0; j < 4; j++ {
			partsupp.Append([]int64{int64(i), int64((i + j*nPart/4) % nSupp), 1 + r.Int64n(9999)})
		}
	}
	partsupp.AddIndex("ps_partkey")
	partsupp.AddIndex("ps_suppkey")
	cat.Add(partsupp)

	var custZipf, partZipf, suppZipf *stats.Zipf
	if cfg.Skew > 0 {
		custZipf = stats.NewZipf(nCust, cfg.Skew)
		partZipf = stats.NewZipf(nPart, cfg.Skew)
		suppZipf = stats.NewZipf(nSupp, cfg.Skew)
	}
	pickKey := func(n int, z *stats.Zipf) int64 {
		if z != nil {
			return int64(z.Sample(r) - 1)
		}
		return r.Int64n(int64(n))
	}

	nOrders := cfg.n(1500000)
	orders := catalog.NewTable("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	orders.SortedBy = 0
	lineitem := catalog.NewTable("lineitem",
		"l_orderkey", "l_partkey", "l_suppkey", "l_shipdate", "l_quantity",
		"l_extendedprice", "l_discount", "l_returnflag", "l_linestatus")
	lineitem.SortedBy = 0
	maxDate := Date(1998, 12, 1)
	for i := 0; i < nOrders; i++ {
		odate := r.Int64n(maxDate)
		orders.Append([]int64{int64(i), pickKey(nCust, custZipf), odate, r.Int64n(3)})
		lines := 1 + r.Intn(7)
		for j := 0; j < lines; j++ {
			ship := odate + 1 + r.Int64n(120)
			lineitem.Append([]int64{
				int64(i),
				pickKey(nPart, partZipf),
				pickKey(nSupp, suppZipf),
				ship,
				1 + r.Int64n(50),
				100 + r.Int64n(100000), // cents
				r.Int64n(11),           // discount in %
				r.Int64n(NumFlags),
				r.Int64n(2),
			})
		}
	}
	orders.AddIndex("o_orderkey")
	orders.AddIndex("o_custkey")
	lineitem.AddIndex("l_orderkey")
	lineitem.AddIndex("l_partkey")
	lineitem.AddIndex("l_suppkey")
	cat.Add(orders)
	cat.Add(lineitem)

	cat.AnalyzeAll(cfg.HistogramBuckets)
	return cat
}
