package tpch

import (
	"fmt"

	"repro/internal/relalg"
)

// This file defines the paper's workload queries over the generated schema
// (Table 2 and §5). Helper col builds a ColID from a relation ordinal and
// column offset; the offsets follow the schemas in gen.go.

func col(rel, off int) relalg.ColID { return relalg.ColID{Rel: rel, Off: off} }

// Q3S is the paper's driving example (Example 1): simplified TPC-H Q3 with
// aggregates removed — customer ⋈ orders ⋈ lineitem.
func Q3S() *relalg.Query {
	const (
		C = iota // customer
		O        // orders
		L        // lineitem
	)
	q := &relalg.Query{
		Name: "Q3S",
		Rels: []relalg.RelRef{
			{Alias: "C", Table: "customer"},
			{Alias: "O", Table: "orders"},
			{Alias: "L", Table: "lineitem"},
		},
		Scans: []relalg.ScanPred{
			{Col: col(C, 2), Op: relalg.CmpEQ, Val: SegMachinery},      // c_mktsegment = 'MACHINERY'
			{Col: col(O, 2), Op: relalg.CmpLT, Val: Date(1995, 3, 15)}, // o_orderdate < 1995-03-15
			{Col: col(L, 3), Op: relalg.CmpGT, Val: Date(1995, 3, 15)}, // l_shipdate > 1995-03-15
		},
		Joins: []relalg.JoinPred{
			{L: col(C, 0), R: col(O, 1)}, // c_custkey = o_custkey
			{L: col(O, 0), R: col(L, 0)}, // o_orderkey = l_orderkey
		},
	}
	mustValidate(q)
	return q
}

// Q5 relation ordinals, exported for the Figure 5 expression sweep.
const (
	Q5Region = iota
	Q5Nation
	Q5Customer
	Q5Orders
	Q5Lineitem
	Q5Supplier
)

// Q5 is TPC-H Q5 (six-way join with aggregation): revenue by nation within
// a region and date range.
func Q5() *relalg.Query {
	q := q5join("Q5")
	q.Agg = &relalg.AggSpec{
		GroupBy: []relalg.ColID{col(Q5Nation, 1)},   // n_name
		Sums:    []relalg.ColID{col(Q5Lineitem, 5)}, // sum(l_extendedprice)
	}
	return q
}

// Q5S is Q5 with the aggregation removed, as the paper constructs it "to
// create greater query diversity".
func Q5S() *relalg.Query { return q5join("Q5S") }

func q5join(name string) *relalg.Query {
	q := &relalg.Query{
		Name: name,
		Rels: []relalg.RelRef{
			{Alias: "R", Table: "region"},
			{Alias: "N", Table: "nation"},
			{Alias: "C", Table: "customer"},
			{Alias: "O", Table: "orders"},
			{Alias: "L", Table: "lineitem"},
			{Alias: "S", Table: "supplier"},
		},
		Scans: []relalg.ScanPred{
			{Col: col(Q5Region, 1), Op: relalg.CmpEQ, Val: 2},                // r_name = 'ASIA'
			{Col: col(Q5Orders, 2), Op: relalg.CmpGE, Val: Date(1994, 1, 1)}, // o_orderdate >= 1994-01-01
			{Col: col(Q5Orders, 2), Op: relalg.CmpLT, Val: Date(1995, 1, 1)}, // o_orderdate < 1995-01-01
		},
		Joins: []relalg.JoinPred{
			{L: col(Q5Region, 0), R: col(Q5Nation, 2)},     // r_regionkey = n_regionkey
			{L: col(Q5Customer, 3), R: col(Q5Nation, 0)},   // c_nationkey = n_nationkey
			{L: col(Q5Customer, 0), R: col(Q5Orders, 1)},   // c_custkey  = o_custkey
			{L: col(Q5Orders, 0), R: col(Q5Lineitem, 0)},   // o_orderkey = l_orderkey
			{L: col(Q5Lineitem, 2), R: col(Q5Supplier, 0)}, // l_suppkey = s_suppkey
			{L: col(Q5Supplier, 2), R: col(Q5Nation, 0)},   // s_nationkey = n_nationkey
		},
	}
	mustValidate(q)
	return q
}

// Q5Expressions returns the five left-deep chain expressions of the
// Figure 5 sweep: A = REGION⋈NATION, B = CUSTOMER⋈A, C = ORDERS⋈B,
// D = LINEITEM⋈C, E = SUPPLIER⋈D.
func Q5Expressions() []struct {
	Name string
	Set  relalg.RelSet
} {
	a := relalg.Single(Q5Region).Add(Q5Nation)
	b := a.Add(Q5Customer)
	c := b.Add(Q5Orders)
	d := c.Add(Q5Lineitem)
	e := d.Add(Q5Supplier)
	return []struct {
		Name string
		Set  relalg.RelSet
	}{
		{"A=REGION*NATION", a},
		{"B=CUSTOMER*A", b},
		{"C=ORDERS*B", c},
		{"D=LINEITEM*C", d},
		{"E=SUPPLIER*D", e},
	}
}

// Q10 is TPC-H Q10 (four-way join): returned-item reporting.
func Q10() *relalg.Query {
	const (
		C = iota
		O
		L
		N
	)
	q := &relalg.Query{
		Name: "Q10",
		Rels: []relalg.RelRef{
			{Alias: "C", Table: "customer"},
			{Alias: "O", Table: "orders"},
			{Alias: "L", Table: "lineitem"},
			{Alias: "N", Table: "nation"},
		},
		Scans: []relalg.ScanPred{
			{Col: col(O, 2), Op: relalg.CmpGE, Val: Date(1993, 10, 1)},
			{Col: col(O, 2), Op: relalg.CmpLT, Val: Date(1994, 1, 1)},
			{Col: col(L, 7), Op: relalg.CmpEQ, Val: FlagR}, // l_returnflag = 'R'
		},
		Joins: []relalg.JoinPred{
			{L: col(C, 0), R: col(O, 1)},
			{L: col(O, 0), R: col(L, 0)},
			{L: col(C, 3), R: col(N, 0)},
		},
		Agg: &relalg.AggSpec{
			GroupBy: []relalg.ColID{col(C, 0), col(N, 1)},
			Sums:    []relalg.ColID{col(L, 5)},
		},
	}
	mustValidate(q)
	return q
}

// Q8Join is the paper's hand-constructed eight-way join (Table 2).
func Q8Join() *relalg.Query {
	q := q8join("Q8Join")
	const (
		O  = iota // orders
		L         // lineitem
		C         // customer
		P         // part
		PS        // partsupp
		S         // supplier
		N         // nation
		R         // region
	)
	q.Agg = &relalg.AggSpec{
		GroupBy: []relalg.ColID{col(C, 1), col(P, 1), col(PS, 2), col(S, 1), col(O, 1), col(R, 1), col(N, 1)},
		Sums:    []relalg.ColID{col(L, 5)},
	}
	return q
}

// Q8JoinS is Q8Join with the aggregation removed.
func Q8JoinS() *relalg.Query { return q8join("Q8JoinS") }

func q8join(name string) *relalg.Query {
	const (
		O  = iota // orders
		L         // lineitem
		C         // customer
		P         // part
		PS        // partsupp
		S         // supplier
		N         // nation
		R         // region
	)
	q := &relalg.Query{
		Name: name,
		Rels: []relalg.RelRef{
			{Alias: "O", Table: "orders"},
			{Alias: "L", Table: "lineitem"},
			{Alias: "C", Table: "customer"},
			{Alias: "P", Table: "part"},
			{Alias: "PS", Table: "partsupp"},
			{Alias: "S", Table: "supplier"},
			{Alias: "N", Table: "nation"},
			{Alias: "R", Table: "region"},
		},
		Joins: []relalg.JoinPred{
			{L: col(O, 0), R: col(L, 0)},  // o_orderkey = l_orderkey
			{L: col(C, 0), R: col(O, 1)},  // c_custkey = o_custkey
			{L: col(P, 0), R: col(L, 1)},  // p_partkey = l_partkey
			{L: col(PS, 0), R: col(P, 0)}, // ps_partkey = p_partkey
			{L: col(S, 0), R: col(PS, 1)}, // s_suppkey = ps_suppkey
			{L: col(R, 0), R: col(N, 2)},  // r_regionkey = n_regionkey
			{L: col(S, 2), R: col(N, 0)},  // s_nationkey = n_nationkey
		},
	}
	mustValidate(q)
	return q
}

// Q1 is TPC-H Q1: single-table aggregation over lineitem.
func Q1() *relalg.Query {
	q := &relalg.Query{
		Name: "Q1",
		Rels: []relalg.RelRef{{Alias: "L", Table: "lineitem"}},
		Scans: []relalg.ScanPred{
			{Col: col(0, 3), Op: relalg.CmpLE, Val: Date(1998, 9, 2)},
		},
		Agg: &relalg.AggSpec{
			GroupBy:  []relalg.ColID{col(0, 7), col(0, 8)},
			Sums:     []relalg.ColID{col(0, 4), col(0, 5)},
			CountAll: true,
		},
	}
	mustValidate(q)
	return q
}

// Q6 is TPC-H Q6: single-table range aggregation over lineitem.
func Q6() *relalg.Query {
	q := &relalg.Query{
		Name: "Q6",
		Rels: []relalg.RelRef{{Alias: "L", Table: "lineitem"}},
		Scans: []relalg.ScanPred{
			{Col: col(0, 3), Op: relalg.CmpGE, Val: Date(1994, 1, 1)},
			{Col: col(0, 3), Op: relalg.CmpLT, Val: Date(1995, 1, 1)},
			{Col: col(0, 4), Op: relalg.CmpLT, Val: 24},
			{Col: col(0, 6), Op: relalg.CmpGE, Val: 5},
		},
		Agg: &relalg.AggSpec{
			Sums: []relalg.ColID{col(0, 5)},
		},
	}
	mustValidate(q)
	return q
}

// Queries returns the full optimizer workload of §5 keyed by name.
func Queries() map[string]*relalg.Query {
	return map[string]*relalg.Query{
		"Q1": Q1(), "Q3S": Q3S(), "Q5": Q5(), "Q5S": Q5S(),
		"Q6": Q6(), "Q10": Q10(), "Q8Join": Q8Join(), "Q8JoinS": Q8JoinS(),
	}
}

// JoinWorkload returns the queries the paper focuses its optimizer
// comparison on ("join queries with more than 3-way joins"), in
// presentation order.
func JoinWorkload() []*relalg.Query {
	return []*relalg.Query{Q5(), Q5S(), Q10(), Q8Join(), Q8JoinS()}
}

func mustValidate(q *relalg.Query) {
	if err := q.Validate(); err != nil {
		panic(fmt.Sprintf("tpch: %v", err))
	}
}
