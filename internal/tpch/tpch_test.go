package tpch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/systemr"
	"repro/internal/volcano"
)

func tinyConfig() Config {
	return Config{ScaleFactor: 0.001, Seed: 42}
}

func TestGenerateSizesScale(t *testing.T) {
	cat := Generate(tinyConfig())
	if n := cat.MustTable("region").NumRows; n != 5 {
		t.Fatalf("region rows = %v", n)
	}
	if n := cat.MustTable("nation").NumRows; n != 25 {
		t.Fatalf("nation rows = %v", n)
	}
	orders := cat.MustTable("orders").NumRows
	if orders < 1000 || orders > 2000 {
		t.Fatalf("orders rows = %v, want ~1500 at SF 0.001", orders)
	}
	li := cat.MustTable("lineitem").NumRows
	if li < 3*orders || li > 8*orders {
		t.Fatalf("lineitem/orders ratio off: %v / %v", li, orders)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(tinyConfig())
	b := Generate(tinyConfig())
	ra := a.MustTable("lineitem").Rows
	rb := b.MustTable("lineitem").Rows
	if len(ra) != len(rb) {
		t.Fatal("row counts differ across runs")
	}
	for i := range ra {
		for c := range ra[i] {
			if ra[i][c] != rb[i][c] {
				t.Fatalf("row %d col %d differs", i, c)
			}
		}
	}
}

func TestSkewConcentratesKeys(t *testing.T) {
	uniform := Generate(Config{ScaleFactor: 0.002, Seed: 1, Skew: 0})
	skewed := Generate(Config{ScaleFactor: 0.002, Seed: 1, Skew: 0.9})
	count := func(rows [][]int64, col int) (maxFreq int) {
		freq := map[int64]int{}
		for _, r := range rows {
			freq[r[col]]++
			if freq[r[col]] > maxFreq {
				maxFreq = freq[r[col]]
			}
		}
		return
	}
	u := count(uniform.MustTable("lineitem").Rows, 1) // l_partkey
	s := count(skewed.MustTable("lineitem").Rows, 1)
	if s <= 2*u {
		t.Fatalf("skewed hottest part freq %d not > 2x uniform %d", s, u)
	}
}

func TestDateEncodingMonotone(t *testing.T) {
	if !(Date(1995, 3, 15) > Date(1995, 3, 14) &&
		Date(1995, 3, 15) > Date(1994, 12, 31) &&
		Date(1992, 1, 1) == 0) {
		t.Fatal("date encoding broken")
	}
}

func TestAllQueriesValidate(t *testing.T) {
	cat := Generate(tinyConfig())
	for name, q := range Queries() {
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := cost.NewModel(q, cat, cost.DefaultParams()); err != nil {
			t.Fatalf("%s: model: %v", name, err)
		}
	}
}

func TestQ5ExpressionsAreConnectedChain(t *testing.T) {
	q := Q5()
	exprs := Q5Expressions()
	if len(exprs) != 5 {
		t.Fatalf("want 5 expressions, got %d", len(exprs))
	}
	prev := relalg.RelSet(0)
	for _, ex := range exprs {
		if !q.Connected(ex.Set) {
			t.Fatalf("%s not connected", ex.Name)
		}
		if !prev.IsSubset(ex.Set) || ex.Set.Count() != prev.Count()+2 && !prev.Empty() {
			if !prev.Empty() && ex.Set.Count() != prev.Count()+1 {
				t.Fatalf("%s does not extend the chain", ex.Name)
			}
		}
		prev = ex.Set
	}
	if prev != q.AllRels() {
		t.Fatalf("chain does not end at the full query: %v", prev)
	}
}

// TestWorkloadOptimizesAcrossArchitectures: every workload query gets the
// same optimal cost from all three optimizers over generated TPC-H data.
func TestWorkloadOptimizesAcrossArchitectures(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.002, Seed: 7})
	space := relalg.DefaultSpace()
	for name, q := range Queries() {
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vr, err := volcano.Optimize(m, space)
		if err != nil {
			t.Fatalf("%s: volcano: %v", name, err)
		}
		sr, err := systemr.Optimize(m, space)
		if err != nil {
			t.Fatalf("%s: systemr: %v", name, err)
		}
		o, err := core.New(m, space, core.PruneAll)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := o.Optimize()
		if err != nil {
			t.Fatalf("%s: declarative: %v", name, err)
		}
		if rel := (vr.Cost - sr.Cost) / vr.Cost; rel > 1e-6 || rel < -1e-6 {
			t.Fatalf("%s: volcano %v != systemr %v", name, vr.Cost, sr.Cost)
		}
		if rel := (vr.Cost - dp.Cost) / vr.Cost; rel > 1e-6 || rel < -1e-6 {
			t.Fatalf("%s: volcano %v != declarative %v", name, vr.Cost, dp.Cost)
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestQ3SExecutes runs the paper's driving example end to end.
func TestQ3SExecutes(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.002, Seed: 7})
	q := Q3S()
	m, _ := cost.NewModel(q, cat, cost.DefaultParams())
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	comp := &exec.Compiler{Q: q, Cat: cat}
	it, st, err := comp.Compile(vr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	n, err := exec.Count(it)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Q3S returned no rows; predicates or data generation broken")
	}
	if actual, ok := st.Card(q.AllRels()); !ok || actual != n {
		t.Fatalf("root cardinality probe %v != result rows %v", actual, n)
	}
}

// TestQ5AggregateExecutes runs the aggregated Q5 and checks grouping.
func TestQ5AggregateExecutes(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.002, Seed: 7})
	q := Q5()
	m, _ := cost.NewModel(q, cat, cost.DefaultParams())
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	comp := &exec.Compiler{Q: q, Cat: cat}
	it, _, err := comp.Compile(vr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	// Group-by n_name within one region: at most 5 nations.
	if len(rows) > 5 {
		t.Fatalf("Q5 produced %d groups, want <= 5", len(rows))
	}
	for _, r := range rows {
		if len(r) != 2 || r[1] <= 0 {
			t.Fatalf("bad aggregate row %v", r)
		}
	}
}
