package core

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/relalg"
)

// This file implements §4: incremental re-optimization as view maintenance.
// Cost-parameter updates are staged on the optimizer, translated into
// LocalCost deltas over the affected region of the materialized state, and
// propagated by the same worklist that performed initial optimization. The
// untouched majority of the plan space — including subexpressions that were
// never enumerated thanks to pruning — is never visited, which is where the
// paper's order-of-magnitude speedups come from.

type pendingUpdate struct {
	isScan bool
	set    relalg.RelSet // card-factor updates: affected iff set ⊆ group expr
	rel    int           // scan-cost updates
}

// UpdateCardFactor stages a cardinality override: the estimated cardinality
// of every expression containing s is multiplied by factor (relative to the
// original estimate). This models a join-selectivity re-estimate, the
// paper's Figure 5 experiment, and the execution-feedback loop of Figure 6.
// Call Reoptimize to propagate.
func (o *Optimizer) UpdateCardFactor(s relalg.RelSet, factor float64) {
	o.enter("UpdateCardFactor")
	defer o.leave()
	o.model.SetCardFactor(s, factor)
	o.pending = append(o.pending, pendingUpdate{set: s})
}

// UpdateScanCostFactor stages a scan-cost change for one base relation of
// the query — the paper's Figure 8 experiment ("Orders has updated scan
// cost"). Call Reoptimize to propagate.
func (o *Optimizer) UpdateScanCostFactor(rel int, factor float64) {
	o.enter("UpdateScanCostFactor")
	defer o.leave()
	o.model.SetScanCostFactor(rel, factor)
	o.pending = append(o.pending, pendingUpdate{isScan: true, rel: rel})
}

// Reoptimize incrementally repairs the optimizer state under the staged
// updates and returns the (possibly new) best plan. Metrics.TouchedEntries
// and Metrics.TouchedGroups afterwards report the size of the affected
// region — the paper's "update ratio" numerators.
func (o *Optimizer) Reoptimize() (*relalg.Plan, error) {
	o.enter("Reoptimize")
	defer o.leave()
	if !o.optimized {
		return nil, fmt.Errorf("core: Reoptimize before Optimize")
	}
	start := time.Now()
	o.epoch++
	o.met.TouchedEntries = 0
	o.met.TouchedGroups = 0

	// Translate staged parameter updates into LocalCost deltas over the
	// affected entries. Group creation order makes the sweep
	// deterministic. Dead (released) groups are updated too: their
	// retained aggregate state must stay exact so revival decisions are
	// sound (§4.1/§4.2); they are part of the affected region either
	// way. Never-enumerated groups cost nothing — they do not exist.
	for _, g := range o.order {
		if !o.groupAffected(g) {
			continue
		}
		for _, e := range g.entries {
			if !o.entryAffected(e) {
				continue
			}
			nl := o.model.LocalCost(e.alt, g.key.expr, g.key.prop)
			if nl == e.localCost {
				continue
			}
			e.localCost = nl
			o.touchEntry(e)
			if e.expanded {
				o.queueRecost(e)
			}
			o.queueContrib(e)
			// An unexpanded suppressed entry may now fit under
			// the threshold (or a viable one exceed it).
			o.queueReconcile(g)
		}
	}
	o.pending = o.pending[:0]
	o.drain()
	o.met.Elapsed = time.Since(start)
	return o.extract()
}

// groupAffected reports whether any staged update can change local costs
// inside g.
func (o *Optimizer) groupAffected(g *group) bool {
	for _, u := range o.pending {
		if u.isScan {
			// Scan costs matter to scans of the relation (which
			// live in its singleton groups) and to index-NL joins
			// probing it (which live in groups containing it).
			if g.key.expr.Has(u.rel) {
				return true
			}
			continue
		}
		if cost.CardDependsOn(g.key.expr, u.set) {
			return true
		}
	}
	return false
}

// entryAffected narrows the sweep within an affected group to entries whose
// local cost formula actually reads a changed parameter.
func (o *Optimizer) entryAffected(e *entry) bool {
	for _, u := range o.pending {
		if u.isScan {
			if cost.ScanAffects(e.alt, u.rel) {
				return true
			}
			continue
		}
		// A cardinality change on u.set reaches the operator's output
		// estimate (expr ⊇ set) or either child estimate; expr ⊇ set
		// covers all three since children are subsets of expr. Scan
		// operators' local costs never read cardinality overrides
		// (they depend on raw row counts and predicate selectivities).
		if e.alt.Log == relalg.LogScan {
			continue
		}
		if u.set.IsSubset(e.g.key.expr) {
			return true
		}
	}
	return false
}
