package core

import (
	"fmt"
	"math"
)

// CheckInvariants verifies the internal consistency of the optimizer state
// at fixpoint. It is exercised by the unit and property test suites after
// every optimization and re-optimization, and documents the semantics the
// delta engine must preserve:
//
//  1. Aggregate consistency: every costed entry appears in its group's
//     multiset exactly once with its current cost; BestCost equals the
//     multiset minimum; PlanCost equals LocalCost + Σ children BestCost.
//  2. Pruning soundness: a live (unpruned) costed entry never exceeds the
//     group's bound; the designated best entry is live in any group that
//     is alive and reachable; pruned costed entries are ≥ the best.
//  3. Reference counting: refCount equals the number of live, expanded,
//     reference-holding parent entries (+1 pin for the root); with
//     RefCount mode, alive == refCount > 0.
//  4. Bounds (rule r1–r4 fixpoint): bound == min(bestCost, max over live
//     parent contributions), and each stored contribution matches its
//     defining expression.
func (o *Optimizer) CheckInvariants() error {
	const eps = 1e-6
	refs := map[*group]int{}
	if o.root != nil {
		refs[o.root]++
	}
	for _, g := range o.order {
		for _, e := range g.entries {
			if e.refHeld {
				for _, c := range e.children {
					if c != nil {
						refs[c]++
					}
				}
			}
		}
	}
	for _, g := range o.order {
		// 1. aggregate consistency
		inSet := map[*entry]float64{}
		last := math.Inf(-1)
		for _, it := range g.costs.items {
			if it.cost < last {
				return fmt.Errorf("group %v: multiset out of order", g.key)
			}
			last = it.cost
			if _, dup := inSet[it.e]; dup {
				return fmt.Errorf("group %v: duplicate multiset entry", g.key)
			}
			inSet[it.e] = it.cost
		}
		for _, e := range g.entries {
			if e.costKnown {
				c, ok := inSet[e]
				if !ok {
					return fmt.Errorf("group %v entry %d: costed but absent from aggregate", g.key, e.index)
				}
				if c != e.cost {
					return fmt.Errorf("group %v entry %d: aggregate holds %v, entry says %v", g.key, e.index, c, e.cost)
				}
				want := e.localCost
				incomplete := false
				for _, ch := range e.children {
					if ch == nil {
						continue
					}
					if !ch.hasBest {
						incomplete = true
						break
					}
					want += ch.bestCost
				}
				if !incomplete && math.Abs(want-e.cost) > eps*math.Max(1, math.Abs(want)) {
					return fmt.Errorf("group %v entry %d: PlanCost %v != LocalCost+children %v", g.key, e.index, e.cost, want)
				}
			} else if _, ok := inSet[e]; ok {
				return fmt.Errorf("group %v entry %d: in aggregate without a cost", g.key, e.index)
			}
		}
		if it, ok := g.costs.Min(); ok {
			if !g.hasBest || g.bestCost != it.cost {
				return fmt.Errorf("group %v: bestCost %v != aggregate min %v", g.key, g.bestCost, it.cost)
			}
		} else if g.hasBest {
			return fmt.Errorf("group %v: hasBest with empty aggregate", g.key)
		}

		// 2. pruning soundness (floor-gated under suppression)
		if o.mode.Bound {
			for _, e := range g.entries {
				v := e.cost
				if o.mode.Suppress {
					v = e.floor()
				}
				if e.costKnown && !e.pruned && v > g.bound+eps*mathMax1(g.bound) {
					return fmt.Errorf("group %v entry %d: live value %v exceeds bound %v", g.key, e.index, v, g.bound)
				}
			}
		}
		if o.mode.AggSel && g.hasBest {
			for _, e := range g.entries {
				if e.costKnown && e.pruned && e.cost < g.bestCost-eps {
					return fmt.Errorf("group %v entry %d: pruned cost %v below best %v", g.key, e.index, e.cost, g.bestCost)
				}
			}
		}
		// floor validity: the cached floor matches its definition and
		// never exceeds any exact plan cost.
		if g.floor != computeFloor(g) {
			return fmt.Errorf("group %v: cached floor %v != computed %v", g.key, g.floor, computeFloor(g))
		}
		for _, e := range g.entries {
			if e.costKnown && e.floor() > e.cost+eps*mathMax1(e.cost) {
				return fmt.Errorf("group %v entry %d: floor %v exceeds exact cost %v", g.key, e.index, e.floor(), e.cost)
			}
		}

		// 3. reference counting
		if g.refCount != refs[g] {
			return fmt.Errorf("group %v: refCount %d != live references %d", g.key, g.refCount, refs[g])
		}
		if o.mode.RefCount && g.alive != (g.refCount > 0) {
			return fmt.Errorf("group %v: alive=%v with refCount=%d", g.key, g.alive, g.refCount)
		}

		// 4. bounds fixpoint
		if o.mode.Bound {
			want := infinity
			if g.hasBest {
				want = g.bestCost
			}
			if mx := g.contribs.Max(); mx < want {
				want = mx
			}
			if !eqOrBothInf(want, g.bound, eps) {
				return fmt.Errorf("group %v: bound %v != min(best,maxContrib) %v", g.key, g.bound, want)
			}
			for k, v := range g.contribs.vals {
				if k.e.pruned || !k.e.expanded {
					return fmt.Errorf("group %v: contribution from pruned/unexpanded parent", g.key)
				}
				want := infinity
				pg := k.e.g
				sib := k.e.children[1-k.s]
				if pg.bound < infinity {
					want = slack(pg.bound) - k.e.localCost
					if sib != nil {
						want -= sib.floor
					}
				}
				if !eqOrBothInf(want, v, eps) {
					return fmt.Errorf("group %v: contribution %v != r1/r2 value %v", g.key, v, want)
				}
			}
		}
	}
	return nil
}

func mathMax1(x float64) float64 {
	if x < 1 && x > -1 {
		return 1
	}
	return math.Abs(x)
}

func eqOrBothInf(a, b, eps float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= eps*math.Max(1, math.Abs(a))
}
