package core

import (
	"fmt"

	"repro/internal/relalg"
)

// extract materializes the BestPlan view (rule R10): descend from the root
// group, at each group following the cheapest live alternative.
func (o *Optimizer) extract() (*relalg.Plan, error) {
	if o.root == nil || !o.root.hasBest {
		return nil, fmt.Errorf("core: no plan found for query %s", o.model.Q.Name)
	}
	plan, err := o.buildPlan(o.root, map[*group]bool{})
	if err != nil {
		return nil, err
	}
	return plan, nil
}

func (o *Optimizer) buildPlan(g *group, onPath map[*group]bool) (*relalg.Plan, error) {
	if onPath[g] {
		return nil, fmt.Errorf("core: cycle through group %v during extraction", g.key)
	}
	onPath[g] = true
	defer delete(onPath, g)

	chosen, err := o.bestEntry(g)
	if err != nil {
		return nil, err
	}
	node := &relalg.Plan{
		Expr: g.key.expr, Prop: g.key.prop,
		Log: chosen.alt.Log, Phy: chosen.alt.Phy,
		Rel: chosen.alt.Rel, Pred: chosen.alt.Pred, IdxCol: chosen.alt.IdxCol,
		Card:      o.model.Card(g.key.expr),
		LocalCost: chosen.localCost,
	}
	total := chosen.localCost
	for _, c := range chosen.children {
		if c == nil {
			continue
		}
		child, err := o.buildPlan(c, onPath)
		if err != nil {
			return nil, err
		}
		total += child.Cost
		if node.Left == nil {
			node.Left = child
		} else {
			node.Right = child
		}
	}
	node.Cost = total
	return node, nil
}

// bestEntry returns the cheapest unpruned alternative of a group: the
// BestPlan tuple (rule R10 joins BestCost with PlanCost; pruned PlanCost
// tuples were deleted from the view, so they are skipped here even though
// their values remain in the aggregate's internal state).
func (o *Optimizer) bestEntry(g *group) (*entry, error) {
	for _, it := range g.costs.items {
		if !it.e.pruned {
			return it.e, nil
		}
	}
	return nil, fmt.Errorf("core: group %s %s has no live plan",
		o.model.Q.SetString(g.key.expr), g.key.prop)
}

// WorstPlan extracts a deliberately poor plan: at every group it follows
// the most expensive costed alternative. It is only meaningful for an
// optimizer run without pruning (PruneNone), where every alternative is
// costed; the evaluation uses it as the "bad plan" baseline of Figure 10.
func (o *Optimizer) WorstPlan() (*relalg.Plan, error) {
	if o.root == nil || !o.root.hasBest {
		return nil, fmt.Errorf("core: no plan found for query %s", o.model.Q.Name)
	}
	return o.buildWorst(o.root, map[*group]bool{})
}

func (o *Optimizer) buildWorst(g *group, onPath map[*group]bool) (*relalg.Plan, error) {
	if onPath[g] {
		return nil, fmt.Errorf("core: cycle through group %v during extraction", g.key)
	}
	onPath[g] = true
	defer delete(onPath, g)
	var chosen *entry
	for i := len(g.costs.items) - 1; i >= 0; i-- {
		e := g.costs.items[i].e
		// Avoid the sort-enforcer-over-self edge at the worst end: an
		// enforcer whose child is this group's own expression would
		// recurse into a sibling group of the same expression; allow
		// it (the onPath check breaks true cycles) but prefer real
		// operators when available.
		chosen = e
		break
	}
	if chosen == nil {
		return nil, fmt.Errorf("core: group %s has no costed plan", o.model.Q.SetString(g.key.expr))
	}
	node := &relalg.Plan{
		Expr: g.key.expr, Prop: g.key.prop,
		Log: chosen.alt.Log, Phy: chosen.alt.Phy,
		Rel: chosen.alt.Rel, Pred: chosen.alt.Pred, IdxCol: chosen.alt.IdxCol,
		Card:      o.model.Card(g.key.expr),
		LocalCost: chosen.localCost,
	}
	total := chosen.localCost
	for _, c := range chosen.children {
		if c == nil {
			continue
		}
		child, err := o.buildWorst(c, onPath)
		if err != nil {
			return nil, err
		}
		total += child.Cost
		if node.Left == nil {
			node.Left = child
		} else {
			node.Right = child
		}
	}
	node.Cost = total
	return node, nil
}
