package core

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/testkit"
	"repro/internal/volcano"
)

const costEps = 1e-6

func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= costEps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

var allModes = []Pruning{
	PruneNone, PruneEvita, PruneAggSel, PruneAggSelRefCount, PruneAggSelBound, PruneAll,
}

func newModel(t *testing.T, seed uint64, nRels int) *cost.Model {
	t.Helper()
	r := stats.NewRand(seed)
	cat := testkit.SyntheticCatalog(r, 4)
	q := testkit.RandomQuery(r, cat, nRels)
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

// TestAgreesWithBaselines is the central correctness property: for random
// queries, every pruning configuration of the declarative optimizer finds
// exactly the optimum found by the Volcano-style and System-R-style
// baselines ("we still guarantee the discovery of the best plan").
func TestAgreesWithBaselines(t *testing.T) {
	space := relalg.DefaultSpace()
	for seed := uint64(1); seed <= 40; seed++ {
		for _, nRels := range []int{2, 3, 4, 5, 6} {
			m := newModel(t, seed*97+uint64(nRels), nRels)
			vr, err := volcano.Optimize(m, space)
			if err != nil {
				t.Fatalf("seed %d n %d: volcano: %v", seed, nRels, err)
			}
			sr, err := systemr.Optimize(m, space)
			if err != nil {
				t.Fatalf("seed %d n %d: systemr: %v", seed, nRels, err)
			}
			if !approxEqual(vr.Cost, sr.Cost) {
				t.Fatalf("seed %d n %d: volcano %v != systemr %v", seed, nRels, vr.Cost, sr.Cost)
			}
			for _, mode := range allModes {
				o, err := New(m, space, mode)
				if err != nil {
					t.Fatalf("New(%v): %v", mode, err)
				}
				plan, err := o.Optimize()
				if err != nil {
					t.Fatalf("seed %d n %d mode %v: %v", seed, nRels, mode, err)
				}
				if !approxEqual(plan.Cost, vr.Cost) {
					t.Fatalf("seed %d n %d mode %v: declarative %v != volcano %v\nplan:\n%s",
						seed, nRels, mode, plan.Cost, vr.Cost, plan.Explain(m.Q))
				}
				if err := o.CheckInvariants(); err != nil {
					t.Fatalf("seed %d n %d mode %v: invariants: %v", seed, nRels, mode, err)
				}
			}
		}
	}
}

// TestIncrementalEqualsScratch drives random update streams through
// Reoptimize and checks, after every step, that the maintained optimum
// equals a from-scratch optimization under the same cost parameters, and
// that all internal invariants hold.
func TestIncrementalEqualsScratch(t *testing.T) {
	space := relalg.DefaultSpace()
	factors := []float64{0.125, 0.25, 0.5, 2, 4, 8}
	for seed := uint64(1); seed <= 25; seed++ {
		nRels := 3 + int(seed%4)
		r := stats.NewRand(seed * 1337)
		cat := testkit.SyntheticCatalog(r, 4)
		q := testkit.RandomQuery(r, cat, nRels)
		// A parallel model receives the same updates and is optimized
		// from scratch as the oracle.
		oracle, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatalf("NewModel(oracle): %v", err)
		}

		for _, mode := range allModes {
			m2, _ := cost.NewModel(q, cat, cost.DefaultParams())
			o, err := New(m2, space, mode)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if _, err := o.Optimize(); err != nil {
				t.Fatalf("Optimize: %v", err)
			}
			// Reset oracle overrides.
			oracle, _ = cost.NewModel(q, cat, cost.DefaultParams())

			for step := 0; step < 8; step++ {
				if r.Intn(3) == 0 {
					rel := r.Intn(nRels)
					f := factors[r.Intn(len(factors))]
					o.UpdateScanCostFactor(rel, f)
					oracle.SetScanCostFactor(rel, f)
				} else {
					s := testkit.RandomConnectedSubset(r, q, 2)
					f := factors[r.Intn(len(factors))]
					o.UpdateCardFactor(s, f)
					oracle.SetCardFactor(s, f)
				}
				plan, err := o.Reoptimize()
				if err != nil {
					t.Fatalf("seed %d mode %v step %d: Reoptimize: %v", seed, mode, step, err)
				}
				want, err := volcano.Optimize(oracle, space)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				if !approxEqual(plan.Cost, want.Cost) {
					t.Fatalf("seed %d mode %v step %d: incremental %v != scratch %v\nplan:\n%s",
						seed, mode, step, plan.Cost, want.Cost, plan.Explain(q))
				}
				if err := o.CheckInvariants(); err != nil {
					t.Fatalf("seed %d mode %v step %d: invariants: %v", seed, mode, step, err)
				}
			}
		}
	}
}

// TestExtractedPlanCostConsistent re-derives the cost of the extracted plan
// tree bottom-up through the cost model and compares it with the optimizer's
// claimed cost.
func TestExtractedPlanCostConsistent(t *testing.T) {
	space := relalg.DefaultSpace()
	for seed := uint64(1); seed <= 20; seed++ {
		m := newModel(t, seed*31, 2+int(seed%5))
		o, err := New(m, space, PruneAll)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := o.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		var recompute func(p *relalg.Plan) float64
		recompute = func(p *relalg.Plan) float64 {
			if p == nil {
				return 0
			}
			alt := relalg.Alt{
				Log: p.Log, Phy: p.Phy, Rel: p.Rel, Pred: p.Pred, IdxCol: p.IdxCol,
			}
			if p.Left != nil {
				alt.LExpr, alt.LProp = p.Left.Expr, p.Left.Prop
			}
			if p.Right != nil {
				alt.RExpr, alt.RProp = p.Right.Expr, p.Right.Prop
			}
			return m.LocalCost(alt, p.Expr, p.Prop) + recompute(p.Left) + recompute(p.Right)
		}
		got := recompute(plan)
		if !approxEqual(got, plan.Cost) {
			t.Fatalf("seed %d: plan cost %v, recomputed %v", seed, plan.Cost, got)
		}
	}
}

// TestPruningReducesState checks the qualitative claims of Figure 4/7: the
// full declarative configuration keeps strictly less alive state than the
// census, Evita never releases groups, and each added technique can only
// shrink (never grow) the alive alternative count.
func TestPruningReducesState(t *testing.T) {
	space := relalg.DefaultSpace()
	for seed := uint64(2); seed <= 10; seed++ {
		m := newModel(t, seed*911, 5)
		type state struct {
			met          Metrics
			groups, alts int
		}
		results := map[string]state{}
		for _, mode := range allModes {
			o, err := New(m, space, mode)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := o.Optimize(); err != nil {
				t.Fatal(err)
			}
			g, a := o.LiveState()
			results[mode.String()] = state{o.Metrics(), g, a}
		}
		census := results["none"]
		if census.met.AltsSuppressed != 0 || census.met.GroupsReleased != 0 {
			t.Fatalf("census mode pruned state: %+v", census.met)
		}
		if census.alts != census.met.AltsEnumerated {
			t.Fatalf("census did not cost every alternative: %d live of %d",
				census.alts, census.met.AltsEnumerated)
		}
		if ev := results["evita"]; ev.met.GroupsReleased != 0 || ev.groups != census.groups {
			t.Fatalf("evita pruned plan table entries (%d of %d); paper says it never does",
				ev.groups, census.groups)
		}
		full := results["all"]
		if full.alts > census.alts {
			t.Fatalf("full pruning has more alive alternatives (%d) than census (%d)",
				full.alts, census.alts)
		}
		if full.groups > census.groups {
			t.Fatalf("full pruning has more alive groups than census")
		}
		if full.alts >= results["evita"].alts {
			t.Fatalf("full pruning (%d live alts) should beat evita (%d)", full.alts, results["evita"].alts)
		}
	}
}

// TestUpdateRatioSmallForLargeExpressions reproduces the qualitative claim
// of Figure 5: updating the cardinality of a LARGER subexpression touches
// fewer entries than updating a smaller one, because fewer supersets exist.
func TestUpdateRatioSmallForLargeExpressions(t *testing.T) {
	m := newModel(t, 424242, 6)
	space := relalg.DefaultSpace()
	o, err := New(m, space, PruneAll)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Optimize(); err != nil {
		t.Fatal(err)
	}
	// Compare a 2-relation expression against the full 6-relation one.
	jp := m.Q.Joins[0]
	small := relalg.Single(jp.L.Rel).Add(jp.R.Rel)
	o.UpdateCardFactor(small, 2)
	if _, err := o.Reoptimize(); err != nil {
		t.Fatal(err)
	}
	touchedSmall := o.Metrics().TouchedEntries

	o.UpdateCardFactor(small, 1) // revert
	if _, err := o.Reoptimize(); err != nil {
		t.Fatal(err)
	}

	o.UpdateCardFactor(m.Q.AllRels(), 2)
	if _, err := o.Reoptimize(); err != nil {
		t.Fatal(err)
	}
	touchedLarge := o.Metrics().TouchedEntries
	if touchedLarge > touchedSmall {
		t.Fatalf("updating the root expression touched %d entries, more than a small expression's %d",
			touchedLarge, touchedSmall)
	}
}
