// Package core implements the paper's primary contribution: a cost-based
// query optimizer whose state — the SearchSpace, PlanCost, BestCost/BestPlan
// and Bound relations of the ten datalog rules in the paper's appendix — is
// an incrementally maintainable materialized view. After a cost or
// cardinality update, only the affected region of the plan space is
// recomputed, instead of re-running optimization from scratch.
//
// # Architecture
//
// The optimizer state is organized exactly as the paper's dataflow
// (Figure 1):
//
//   - a group ("OR node") per (expression, property) pair holds the
//     BestCost aggregate: an ordered multiset over every computed plan cost.
//     Following §4.1, the aggregate retains all inputs — including pruned
//     ones — so the "next best" value is recoverable when the minimum is
//     deleted or raised.
//   - an entry ("AND node") per SearchSpace alternative carries LocalCost
//     and the recursive PlanCost = LocalCost + Σ children BestCost (rules
//     R6–R8).
//   - deltas (cost insertions, deletions, updates; bound updates; reference
//     count changes) flow through a worklist until fixpoint, mimicking the
//     pipelined push-based execution of the ASPEN engine. Expansion tasks
//     are processed depth-first and cost deltas first, so cost information
//     can outrun enumeration — which is what lets aggregate selection
//     cancel the expansion of provably useless subtrees, the paper's
//     "opportunistic" pruning.
//
// The three pruning strategies of §3 are independently switchable (Pruning),
// enabling the paper's Figure 7/8 breakdowns and the Evita-Raced
// compatibility mode used as a baseline in Figure 4.
package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/relalg"
)

// Pruning selects which of the paper's pruning strategies are active.
type Pruning struct {
	// AggSel enables aggregate selection (§3.1): a PlanCost tuple that
	// cannot beat the current BestCost of its group is pruned (not
	// propagated downstream), though its value is retained inside the
	// aggregate for next-best recovery.
	AggSel bool
	// Suppress enables tuple source suppression (§3.1): pruning a
	// PlanCost tuple cascades a deletion to its SearchSpace source,
	// cancelling any not-yet-performed expansion of its children.
	// Without it (the Evita-Raced mode), pruning is bookkeeping only.
	Suppress bool
	// RefCount enables reference counting (§3.2): a group whose parent
	// plans have all been suppressed is released, recursively.
	RefCount bool
	// Bound enables recursive bounding (§3.3): the generalized
	// branch-and-bound Bound relation of rules r1–r4.
	Bound bool
}

// Validate rejects combinations the paper calls out as nonsensical
// ("reference counting must be combined with one of the other techniques,
// and branch-and-bound requires aggregate selection").
func (p Pruning) Validate() error {
	if p.Suppress && !p.AggSel {
		return fmt.Errorf("core: Suppress requires AggSel")
	}
	if p.RefCount && !p.Suppress {
		return fmt.Errorf("core: RefCount requires Suppress")
	}
	if p.Bound && !p.AggSel {
		return fmt.Errorf("core: Bound requires AggSel")
	}
	return nil
}

// The pruning presets used throughout the evaluation.
var (
	// PruneNone disables all pruning: the full space is enumerated and
	// costed. Used to compute census denominators for pruning ratios.
	PruneNone = Pruning{}
	// PruneEvita reproduces the Evita Raced baseline: pruning only
	// against logically equivalent plans for the same output properties,
	// with no source suppression (it "never prunes plan table entries").
	PruneEvita = Pruning{AggSel: true}
	// PruneAggSel is aggregate selection with tuple source suppression.
	PruneAggSel = Pruning{AggSel: true, Suppress: true}
	// PruneAggSelRefCount adds reference counting.
	PruneAggSelRefCount = Pruning{AggSel: true, Suppress: true, RefCount: true}
	// PruneAggSelBound adds recursive bounding.
	PruneAggSelBound = Pruning{AggSel: true, Suppress: true, Bound: true}
	// PruneAll is the full declarative optimizer of the paper.
	PruneAll = Pruning{AggSel: true, Suppress: true, RefCount: true, Bound: true}
)

// String names the preset for reports.
func (p Pruning) String() string {
	switch p {
	case PruneNone:
		return "none"
	case PruneEvita:
		return "evita"
	case PruneAggSel:
		return "aggsel"
	case PruneAggSelRefCount:
		return "aggsel+refcount"
	case PruneAggSelBound:
		return "aggsel+b&b"
	case PruneAll:
		return "all"
	}
	return fmt.Sprintf("%+v", struct{ A, S, R, B bool }{p.AggSel, p.Suppress, p.RefCount, p.Bound})
}

// Metrics instruments the optimizer along the paper's two reporting axes —
// plan-table entries (groups / "OR nodes") and plan alternatives (entries /
// "AND nodes") — plus delta-propagation counters for the incremental
// experiments.
type Metrics struct {
	GroupsEnumerated int // OR nodes materialized
	AltsEnumerated   int // AND nodes materialized (SearchSpace insertions)

	AltsCosted     int // alternatives whose full cost was ever computed
	GroupsReleased int // groups currently dead (reference count zero)
	AltsSuppressed int // alternatives currently pruned
	AltsUnexpanded int // alternatives whose expansion was cancelled

	CostRecomputations int64 // PlanCost delta evaluations
	BestUpdates        int64 // BestCost deltas emitted
	BoundUpdates       int64 // Bound deltas emitted
	Suppressions       int64 // SearchSpace deletions (monotone)
	Revivals           int64 // SearchSpace re-insertions (monotone)
	GroupKills         int64 // reference-count releases (monotone)
	GroupRevives       int64 // reference-count revivals (monotone)

	// Filled by Reoptimize: the size of the affected region.
	TouchedEntries int
	TouchedGroups  int

	Elapsed time.Duration
}

// AliveGroups counts groups that remain part of the maintained view.
func (m Metrics) AliveGroups() int { return m.GroupsEnumerated - m.GroupsReleased }

// Optimizer is the incremental declarative optimizer. Create one per query
// with New, call Optimize once, then interleave cost updates
// (Model.SetCardFactor / Model.SetScanCostFactor via UpdateCardFactor /
// UpdateScanCostFactor) with Reoptimize calls.
//
// Concurrency contract: an Optimizer (and the cost.Model it owns) is NOT
// safe for concurrent use — Optimize, Reoptimize, UpdateCardFactor,
// UpdateScanCostFactor and Metrics must be externally serialized, e.g. by
// the per-cache-entry mutex of internal/server. Plans returned by
// Optimize/Reoptimize are freshly built trees and may be read (and
// executed) concurrently with later repairs. A cheap atomic guard detects
// accidental concurrent entry into the mutating methods and panics rather
// than silently corrupting the materialized view.
type Optimizer struct {
	model *cost.Model
	space relalg.SpaceOptions
	mode  Pruning

	groups map[groupKey]*group
	order  []*group // creation order, for deterministic iteration
	root   *group

	hot  taskQueue // cost/bound/refcount deltas (FIFO)
	cold taskStack // expansion tasks (LIFO: depth-first)

	// breadthFirst switches expansion scheduling from depth-first (LIFO)
	// to breadth-first (FIFO) — the search-order ablation; §2.3 notes
	// that "a top-down search may have a depth-first, breadth-first or
	// another order" without affecting correctness.
	breadthFirst bool

	met       Metrics
	epoch     uint64 // bumped per Optimize/Reoptimize for touch tracking
	optimized bool
	nextID    int

	pending []pendingUpdate // staged cost-parameter updates

	// busy is the misuse detector of the concurrency contract above: 1
	// while a mutating method runs, so overlapped calls fail fast.
	busy atomic.Int32
}

// enter flags the optimizer as mutating; overlapping entry is a caller bug
// (two goroutines sharing one optimizer without serialization).
func (o *Optimizer) enter(op string) {
	if !o.busy.CompareAndSwap(0, 1) {
		panic("core: concurrent " + op + " on Optimizer; callers must serialize access (see concurrency contract)")
	}
}

func (o *Optimizer) leave() { o.busy.Store(0) }

// New creates an optimizer for the model's query with the given plan space
// and pruning configuration.
func New(m *cost.Model, space relalg.SpaceOptions, mode Pruning) (*Optimizer, error) {
	if err := mode.Validate(); err != nil {
		return nil, err
	}
	return &Optimizer{
		model:  m,
		space:  space,
		mode:   mode,
		groups: map[groupKey]*group{},
	}, nil
}

// Model exposes the cost model the optimizer was built over.
func (o *Optimizer) Model() *cost.Model { return o.model }

// Mode returns the pruning configuration.
func (o *Optimizer) Mode() Pruning { return o.mode }

// Metrics returns a snapshot of the instrumentation counters.
func (o *Optimizer) Metrics() Metrics { return o.met }

// LiveState counts the state that remains part of the maintained view: the
// alive plan-table entries (groups) and the alive plan alternatives
// (costed, unpruned SearchSpace tuples in alive groups). These are the
// numerators of the paper's pruning ratios; the denominators are the census
// sizes of a pruning-free run.
func (o *Optimizer) LiveState() (groups, alts int) {
	for _, g := range o.order {
		if !g.alive {
			continue
		}
		groups++
		for _, e := range g.entries {
			if e.costKnown && !e.pruned {
				alts++
			}
		}
	}
	return groups, alts
}

// SetBreadthFirst switches the expansion order before Optimize is called;
// correctness is unaffected (the tests verify it), only pruning
// effectiveness varies.
func (o *Optimizer) SetBreadthFirst(b bool) { o.breadthFirst = b }

// Optimize performs the initial optimization: it seeds the root group
// (the query's full relation set with no required property), runs the
// delta worklist to fixpoint, and extracts the best plan.
func (o *Optimizer) Optimize() (*relalg.Plan, error) {
	o.enter("Optimize")
	defer o.leave()
	if o.optimized {
		return o.extract()
	}
	start := time.Now()
	o.cold.fifo = o.breadthFirst
	o.epoch++
	o.root = o.demandGroup(groupKey{o.model.Q.AllRels(), relalg.AnyProp})
	o.root.refCount++ // pinned: the root is always demanded
	o.drain()
	o.optimized = true
	o.met.Elapsed = time.Since(start)
	return o.extract()
}

// BestCost returns the current best cost of the root group. It is only
// meaningful after Optimize.
func (o *Optimizer) BestCost() (float64, bool) {
	if o.root == nil || !o.root.hasBest {
		return 0, false
	}
	return o.root.bestCost, true
}

// GroupBestCost exposes the BestCost view for any (expression, property)
// pair that has been materialized — used by the deltalog oracle tests.
func (o *Optimizer) GroupBestCost(s relalg.RelSet, p relalg.Prop) (float64, bool) {
	g := o.groups[groupKey{s, p}]
	if g == nil || !g.hasBest {
		return 0, false
	}
	return g.bestCost, true
}

func (o *Optimizer) threshold(g *group) float64 {
	t := math.Inf(1)
	if o.mode.AggSel && g.hasBest {
		t = g.bestCost
	}
	if o.mode.Bound && g.bound < t {
		t = g.bound
	}
	return t
}

var infinity = math.Inf(1)
