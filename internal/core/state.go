package core

import (
	"math"
	"sort"

	"repro/internal/relalg"
)

// groupKey identifies an "OR node": the (Expr, Prop) key shared by the
// paper's SearchSpace, BestCost and Bound relations.
type groupKey struct {
	expr relalg.RelSet
	prop relalg.Prop
}

// side distinguishes an entry's child slots.
type side uint8

const (
	sideLeft side = iota
	sideRight
)

// entry is an "AND node": one SearchSpace tuple plus its PlanCost state.
type entry struct {
	id    int // creation ordinal; deterministic tiebreak in multisets
	g     *group
	index int // the paper's Index attribute within the group
	alt   relalg.Alt

	localCost float64

	// children: resolved child groups once the entry has been expanded.
	expanded bool
	children [2]*group // [sideLeft, sideRight]; nil where absent

	costKnown bool
	cost      float64 // LocalCost + Σ children bestCost

	// pruned marks the PlanCost tuple as removed by aggregate selection
	// or bounding. With Pruning.Suppress the SearchSpace source is also
	// suppressed (expansion cancelled / child references dropped).
	pruned bool
	// refHeld reports whether this entry currently holds reference
	// counts on its children (RefCount mode bookkeeping).
	refHeld bool

	// worklist dedup flags
	recostQueued  bool
	contribQueued bool

	touchEpoch uint64
}

// floor is a certified lower bound on the entry's eventual (true) plan
// cost: its local cost plus the floors of its children. Crucially it never
// reads a child's BestCost — during pipelined execution a BestCost can be
// transiently inflated (the child's cheap plans not yet costed), and an
// inflated value inside a lower bound would make pruning unsound. Floors
// are monotone up the expression DAG and converge to the exact plan cost
// once the subtree is fully expanded and costed.
func (e *entry) floor() float64 {
	f := e.localCost
	for _, c := range e.children {
		if c != nil {
			f += c.floor
		}
	}
	return f
}

// parentRef records that a parent entry demanded this group as one of its
// children — the reverse edges along which BestCost deltas propagate
// upward and bound contributions propagate downward.
type parentRef struct {
	e *entry
	s side
}

// group is an "OR node" with the aggregate state of rules R9–R10 (BestCost)
// and r1–r4 (Bound).
type group struct {
	key     groupKey
	entries []*entry

	// costs is the min-aggregate's internal state: an ordered multiset
	// over every computed PlanCost, including pruned ones (§4.1: "the
	// aggregate operator preserves all the computed, even pruned,
	// PlanCost tuples ... so it can find the next best value").
	costs costMultiset

	hasBest  bool
	bestCost float64

	// refCount counts live parent references (plus one pin for the
	// root). alive == refCount > 0 when RefCount mode is active.
	refCount int
	alive    bool

	parents []parentRef

	// bound is the recursive Bound relation value (+inf when inactive);
	// contribs is the MaxBound aggregate over parent-bound contributions.
	bound    float64
	contribs boundContribs

	// floor is a certified lower bound on the cost of any plan this group
	// can ever produce: min over entries of entry.floor(). It gates every
	// suppression side effect (reference release, expansion
	// cancellation), which keeps pruning sound against transiently
	// inflated BestCost values; see engine.go.
	floor float64

	reconcileQueued bool
	boundQueued     bool

	touchEpoch uint64
}

// ---- ordered cost multiset ----

// costItem is one PlanCost value inside the aggregate.
type costItem struct {
	cost float64
	e    *entry
}

// costMultiset is an ordered multiset of (cost, entry) pairs, sorted by
// cost then entry id. It supports the delete-minimum / next-best recovery
// the paper's extended aggregation operators require. Group fan-in is small
// (tens of alternatives), so a sorted slice with binary search is both
// simple and fast.
type costMultiset struct {
	items []costItem
}

func (m *costMultiset) search(c float64, id int) int {
	return sort.Search(len(m.items), func(i int) bool {
		it := m.items[i]
		if it.cost != c {
			return it.cost > c
		}
		return it.e.id >= id
	})
}

// Insert adds a (cost, entry) pair.
func (m *costMultiset) Insert(e *entry, c float64) {
	i := m.search(c, e.id)
	m.items = append(m.items, costItem{})
	copy(m.items[i+1:], m.items[i:])
	m.items[i] = costItem{cost: c, e: e}
}

// Remove deletes the pair previously inserted for e at cost c.
func (m *costMultiset) Remove(e *entry, c float64) {
	i := m.search(c, e.id)
	if i >= len(m.items) || m.items[i].e != e {
		panic("core: costMultiset.Remove of absent item")
	}
	m.items = append(m.items[:i], m.items[i+1:]...)
}

// Min returns the least item, or ok=false when empty.
func (m *costMultiset) Min() (costItem, bool) {
	if len(m.items) == 0 {
		return costItem{}, false
	}
	return m.items[0], true
}

// Len returns the number of stored values.
func (m *costMultiset) Len() int { return len(m.items) }

// ---- bound contributions (the MaxBound aggregate of rule r3) ----

// contribKey identifies one ParentBound derivation: a parent entry and
// which of its child slots this group occupies.
type contribKey struct {
	e *entry
	s side
}

// boundContribs maintains the per-group ParentBound values and their max.
// As with costMultiset, all inputs are retained so deletions and updates
// can recompute the aggregate exactly (§4.3).
type boundContribs struct {
	vals map[contribKey]float64
}

// Set installs or updates a contribution and reports the new maximum.
func (b *boundContribs) Set(k contribKey, v float64) {
	if b.vals == nil {
		b.vals = map[contribKey]float64{}
	}
	b.vals[k] = v
}

// Delete removes a contribution if present.
func (b *boundContribs) Delete(k contribKey) {
	delete(b.vals, k)
}

// Max returns the MaxBound value. A group with no registered parent slots
// (the root, or a group all of whose parents are suppressed) is
// unconstrained from above: +inf. Likewise any single +inf slot (a parent
// whose own bound is not yet finite) makes the maximum +inf — a plan is
// viable if it is viable for ANY parent, so one unconstrained parent means
// no constraint at all.
func (b *boundContribs) Max() float64 {
	if len(b.vals) == 0 {
		return math.Inf(1)
	}
	max := math.Inf(-1)
	for _, v := range b.vals {
		if v > max {
			max = v
		}
	}
	return max
}

// ---- worklists ----

// task is one pending delta evaluation.
type task func()

// taskQueue is a FIFO queue for cost/bound/reference deltas.
type taskQueue struct {
	items []task
	head  int
}

func (q *taskQueue) push(t task) { q.items = append(q.items, t) }

func (q *taskQueue) pop() (task, bool) {
	if q.head >= len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		return nil, false
	}
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	return t, true
}

// taskStack holds expansion tasks. By default it is a LIFO stack —
// depth-first exploration completes one full plan quickly, seeding the
// pruning thresholds — but it can run as a FIFO queue for the
// breadth-first search-order ablation.
type taskStack struct {
	items []task
	head  int
	fifo  bool
}

func (s *taskStack) push(t task) { s.items = append(s.items, t) }

func (s *taskStack) pop() (task, bool) {
	if s.fifo {
		if s.head >= len(s.items) {
			s.items = s.items[:0]
			s.head = 0
			return nil, false
		}
		t := s.items[s.head]
		s.items[s.head] = nil
		s.head++
		return t, true
	}
	n := len(s.items)
	if n <= s.head {
		return nil, false
	}
	t := s.items[n-1]
	s.items[n-1] = nil
	s.items = s.items[:n-1]
	return t, true
}
