package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relalg"
)

// This file renders the optimizer's state for humans: the SearchSpace
// relation (the paper's Table 1) and the annotated and-or-graph (Figure 2).

// SearchSpaceRow is one live SearchSpace tuple.
type SearchSpaceRow struct {
	Expr, Prop, Index, LogOp, PhyOp string
	LExpr, LProp, RExpr, RProp      string
	PlanCost                        string
	Best                            bool
}

// SearchSpaceTable returns the live SearchSpace tuples in a deterministic
// order (expression size, then bitmap, then property, then index),
// formatted like the paper's Table 1.
func (o *Optimizer) SearchSpaceTable() []SearchSpaceRow {
	q := o.model.Q
	groups := append([]*group(nil), o.order...)
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].key, groups[j].key
		if a.expr.Count() != b.expr.Count() {
			return a.expr.Count() > b.expr.Count()
		}
		if a.expr != b.expr {
			return a.expr < b.expr
		}
		return a.prop.String() < b.prop.String()
	})
	var rows []SearchSpaceRow
	for _, g := range groups {
		if !g.alive {
			continue
		}
		best, _ := o.bestEntry(g)
		for _, e := range g.entries {
			if e.pruned {
				continue
			}
			row := SearchSpaceRow{
				Expr:  q.SetString(g.key.expr),
				Prop:  g.key.prop.String(),
				Index: fmt.Sprintf("%d", e.index+1),
				LogOp: e.alt.Log.String(),
				PhyOp: e.alt.Phy.String(),
				Best:  e == best,
			}
			if !e.alt.Leaf() {
				row.LExpr = q.SetString(e.alt.LExpr)
				row.LProp = e.alt.LProp.String()
				if !e.alt.Unary() {
					row.RExpr = q.SetString(e.alt.RExpr)
					row.RProp = e.alt.RProp.String()
				} else {
					row.RExpr, row.RProp = "-", "-"
				}
			} else {
				row.LExpr, row.LProp, row.RExpr, row.RProp = "-", "-", "-", "-"
			}
			if e.costKnown {
				row.PlanCost = fmt.Sprintf("%.3f", e.cost)
			} else {
				row.PlanCost = "?"
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatSearchSpace renders SearchSpaceTable as an aligned text table.
func (o *Optimizer) FormatSearchSpace() string {
	rows := o.SearchSpaceTable()
	header := []string{"*Expr", "*Prop", "*Index", "LogOp", "*PhyOp", "lExpr", "lProp", "rExpr", "rProp", "PlanCost", ""}
	cells := [][]string{header}
	for _, r := range rows {
		mark := ""
		if r.Best {
			mark = "<- best"
		}
		cells = append(cells, []string{r.Expr, r.Prop, r.Index, r.LogOp, r.PhyOp,
			r.LExpr, r.LProp, r.RExpr, r.RProp, r.PlanCost, mark})
	}
	return alignTable(cells)
}

// AndOrGraph renders the current and-or-graph with BestCost on OR nodes and
// LocalCost / PlanCost on AND nodes, in the spirit of the paper's Figure 2.
func (o *Optimizer) AndOrGraph() string {
	q := o.model.Q
	groups := append([]*group(nil), o.order...)
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].key, groups[j].key
		if a.expr.Count() != b.expr.Count() {
			return a.expr.Count() > b.expr.Count()
		}
		if a.expr != b.expr {
			return a.expr < b.expr
		}
		return a.prop.String() < b.prop.String()
	})
	var b strings.Builder
	for _, g := range groups {
		if !g.alive {
			continue
		}
		fmt.Fprintf(&b, "OR %s %s", q.SetString(g.key.expr), g.key.prop)
		if g.hasBest {
			fmt.Fprintf(&b, "  BestCost=%.3f", g.bestCost)
		}
		if o.mode.Bound && g.bound < infinity {
			fmt.Fprintf(&b, "  Bound=%.3f", g.bound)
		}
		if o.mode.RefCount {
			fmt.Fprintf(&b, "  refs=%d", g.refCount)
		}
		b.WriteByte('\n')
		best, _ := o.bestEntry(g)
		for _, e := range g.entries {
			status := ""
			if e.pruned {
				status = "  [pruned]"
			} else if e == best {
				status = "  <- best"
			}
			desc := e.alt.Phy.String()
			if !e.alt.Leaf() {
				desc += " " + q.SetString(e.alt.LExpr)
				if !e.alt.Unary() {
					desc += " x " + q.SetString(e.alt.RExpr)
				}
			}
			cost := "?"
			if e.costKnown {
				cost = fmt.Sprintf("%.3f", e.cost)
			}
			fmt.Fprintf(&b, "  AND #%d %-40s Local=%.3f Plan=%s%s\n",
				e.index+1, desc, e.localCost, cost, status)
		}
	}
	return b.String()
}

// alignTable renders rows of cells as a space-aligned text table.
func alignTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	width := make([]int, 0)
	for _, r := range rows {
		for i, c := range r {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, r := range rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DumpGroup renders one group's full internal state (entries, costs,
// floors, pruning flags, bound contributions) for debugging.
func (o *Optimizer) DumpGroup(s relalg.RelSet, p relalg.Prop) string {
	g := o.groups[groupKey{s, p}]
	if g == nil {
		return "group not materialized"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "group %s %s alive=%v refs=%d hasBest=%v best=%g bound=%g floor=%g\n",
		o.model.Q.SetString(s), p, g.alive, g.refCount, g.hasBest, g.bestCost, g.bound, g.floor)
	for _, e := range g.entries {
		fmt.Fprintf(&b, "  #%d %v %s lexpr=%s rexpr=%s local=%g costKnown=%v cost=%g floor=%g pruned=%v expanded=%v refHeld=%v\n",
			e.index, e.alt.Log, e.alt.Phy, o.model.Q.SetString(e.alt.LExpr), o.model.Q.SetString(e.alt.RExpr),
			e.localCost, e.costKnown, e.cost, e.floor(), e.pruned, e.expanded, e.refHeld)
	}
	for k, v := range g.contribs.vals {
		fmt.Fprintf(&b, "  contrib from group %s %s entry#%d side%d = %g\n",
			o.model.Q.SetString(k.e.g.key.expr), k.e.g.key.prop, k.e.index, k.s, v)
	}
	for _, pr := range g.parents {
		fmt.Fprintf(&b, "  parent %s %s #%d pruned=%v cost=%g bound=%g\n",
			o.model.Q.SetString(pr.e.g.key.expr), pr.e.g.key.prop, pr.e.index, pr.e.pruned, pr.e.cost, pr.e.g.bound)
	}
	return b.String()
}

// SpaceEntry is one enumerated SearchSpace tuple in structured form, for
// external consumers (the deltalog oracle re-executes rules R6-R10 over it).
type SpaceEntry struct {
	Expr  relalg.RelSet
	Prop  relalg.Prop
	Index int
	Alt   relalg.Alt
}

// ExportSpace returns every enumerated SearchSpace tuple in deterministic
// (creation) order.
func (o *Optimizer) ExportSpace() []SpaceEntry {
	var out []SpaceEntry
	for _, g := range o.order {
		for _, e := range g.entries {
			out = append(out, SpaceEntry{
				Expr: g.key.expr, Prop: g.key.prop, Index: e.index, Alt: e.alt,
			})
		}
	}
	return out
}
