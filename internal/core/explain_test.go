package core

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/tpch"
)

func q3sOptimizer(t *testing.T, mode Pruning) *Optimizer {
	t.Helper()
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	m, err := cost.NewModel(tpch.Q3S(), cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(m, relalg.DefaultSpace(), mode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Optimize(); err != nil {
		t.Fatal(err)
	}
	return o
}

// TestSearchSpaceTableShape reproduces the structure of the paper's
// Table 1: after full pruning, the live SearchSpace for Q3S holds exactly
// the tuples of the optimal plan tree ("by the end of the process ...
// SearchSpace and PlanCost only contain those plans that are on the final
// optimal plan tree").
func TestSearchSpaceTableShape(t *testing.T) {
	o := q3sOptimizer(t, PruneAll)
	rows := o.SearchSpaceTable()
	plan, err := o.extract()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != plan.Nodes() {
		t.Fatalf("live SearchSpace has %d tuples, optimal plan has %d nodes:\n%s",
			len(rows), plan.Nodes(), o.FormatSearchSpace())
	}
	best := 0
	for _, r := range rows {
		if r.Best {
			best++
		}
		if r.Expr == "" || r.PhyOp == "" {
			t.Fatalf("malformed row %+v", r)
		}
	}
	if best != len(rows) {
		t.Fatalf("%d of %d live tuples are best; with full pruning all should be", best, len(rows))
	}
	text := o.FormatSearchSpace()
	for _, want := range []string{"(C,O,L)", "*Expr", "PlanCost"} {
		if !strings.Contains(text, want) {
			t.Fatalf("FormatSearchSpace missing %q:\n%s", want, text)
		}
	}
}

func TestAndOrGraphRenders(t *testing.T) {
	o := q3sOptimizer(t, PruneEvita)
	g := o.AndOrGraph()
	for _, want := range []string{"OR (C,O,L)", "BestCost=", "AND #1", "[pruned]", "<- best"} {
		if !strings.Contains(g, want) {
			t.Fatalf("AndOrGraph missing %q:\n%s", want, g)
		}
	}
}

func TestDumpGroupRenders(t *testing.T) {
	o := q3sOptimizer(t, PruneAll)
	s := o.DumpGroup(o.model.Q.AllRels(), relalg.AnyProp)
	if !strings.Contains(s, "group (C,O,L)") || !strings.Contains(s, "hasBest=true") {
		t.Fatalf("DumpGroup output:\n%s", s)
	}
	if got := o.DumpGroup(relalg.RelSet(1)<<40, relalg.AnyProp); got != "group not materialized" {
		t.Fatalf("missing group dump = %q", got)
	}
}

// TestBreadthFirstAgrees: the search-order ablation must find the same
// optimum (§2.3: order affects pruning, not correctness).
func TestBreadthFirstAgrees(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	for _, q := range tpch.JoinWorkload() {
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		costs := map[bool]float64{}
		for _, breadth := range []bool{false, true} {
			o, err := New(m, relalg.DefaultSpace(), PruneAll)
			if err != nil {
				t.Fatal(err)
			}
			o.SetBreadthFirst(breadth)
			plan, err := o.Optimize()
			if err != nil {
				t.Fatalf("%s breadth=%v: %v", q.Name, breadth, err)
			}
			if err := o.CheckInvariants(); err != nil {
				t.Fatalf("%s breadth=%v: %v", q.Name, breadth, err)
			}
			costs[breadth] = plan.Cost
		}
		if costs[false] != costs[true] {
			t.Fatalf("%s: depth-first %v != breadth-first %v", q.Name, costs[false], costs[true])
		}
	}
}

// TestWorstPlanIsWorse: the Figure 10 bad-plan baseline must cost at least
// as much as the optimum and execute the same logical query (same leaves).
func TestWorstPlanIsWorse(t *testing.T) {
	o := q3sOptimizer(t, PruneNone)
	best, err := o.extract()
	if err != nil {
		t.Fatal(err)
	}
	worst, err := o.WorstPlan()
	if err != nil {
		t.Fatal(err)
	}
	if worst.Cost < best.Cost {
		t.Fatalf("worst %v < best %v", worst.Cost, best.Cost)
	}
	if len(worst.Leaves(nil)) != len(best.Leaves(nil)) {
		t.Fatal("worst plan covers different relations")
	}
}

// TestGroupBestCostAccessor covers the oracle-facing accessor.
func TestGroupBestCostAccessor(t *testing.T) {
	o := q3sOptimizer(t, PruneNone)
	if _, ok := o.GroupBestCost(o.model.Q.AllRels(), relalg.AnyProp); !ok {
		t.Fatal("root best missing")
	}
	if _, ok := o.GroupBestCost(relalg.RelSet(1)<<40, relalg.AnyProp); ok {
		t.Fatal("nonexistent group has a best")
	}
}

// TestReoptimizeBeforeOptimizeFails covers the API misuse guard.
func TestReoptimizeBeforeOptimizeFails(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 1})
	m, _ := cost.NewModel(tpch.Q3S(), cat, cost.DefaultParams())
	o, _ := New(m, relalg.DefaultSpace(), PruneAll)
	if _, err := o.Reoptimize(); err == nil {
		t.Fatal("Reoptimize before Optimize accepted")
	}
}

// TestPruningModeValidation covers the combination constraints.
func TestPruningModeValidation(t *testing.T) {
	bad := []Pruning{
		{Suppress: true},
		{AggSel: true, Suppress: true, RefCount: false, Bound: false}, // valid
	}
	if err := bad[0].Validate(); err == nil {
		t.Fatal("Suppress without AggSel accepted")
	}
	if err := (Pruning{RefCount: true, AggSel: true}).Validate(); err == nil {
		t.Fatal("RefCount without Suppress accepted")
	}
	if err := (Pruning{Bound: true}).Validate(); err == nil {
		t.Fatal("Bound without AggSel accepted")
	}
	if err := bad[1].Validate(); err != nil {
		t.Fatalf("valid mode rejected: %v", err)
	}
}
