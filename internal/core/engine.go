package core

import (
	"math"

	"repro/internal/relalg"
)

// This file is the delta-propagation engine: the counterpart of the ASPEN
// pipelined executor running the paper's rules. Every state transition is a
// small task on one of two worklists; drain runs them to fixpoint.
//
// Scheduling policy: cost/bound/reference deltas (the "hot" FIFO queue) are
// always processed before expansion tasks (the "cold" LIFO stack). Hot-first
// lets cost information race ahead of enumeration — the paper's decoupling
// of cost estimation from plan enumeration — and LIFO expansion yields a
// depth-first descent that completes one full plan quickly, seeding the
// aggregate-selection and bounding thresholds that later expansions are
// tested against. Correctness is order-independent (the tests shuffle
// policies); only the amount of pruning varies, as §3.1 observes.

// drain runs the worklists to fixpoint.
func (o *Optimizer) drain() {
	steps := 0
	for {
		if t, ok := o.hot.pop(); ok {
			t()
		} else if t, ok := o.cold.pop(); ok {
			t()
		} else {
			return
		}
		steps++
		if steps > 200_000_000 {
			panic("core: delta worklist failed to converge")
		}
	}
}

// demandGroup materializes the group for key if needed, enumerating its
// SearchSpace alternatives (rules R1–R5 via the shared Fn_split) and
// scheduling their expansion.
func (o *Optimizer) demandGroup(key groupKey) *group {
	if g := o.groups[key]; g != nil {
		return g
	}
	g := &group{key: key, alive: true, bound: infinity, floor: infinity}
	o.groups[key] = g
	o.order = append(o.order, g)
	o.met.GroupsEnumerated++
	o.touchGroup(g)

	alts := relalg.Split(o.model.Q, o.model, o.space, key.expr, key.prop)
	o.met.AltsEnumerated += len(alts)
	g.entries = make([]*entry, len(alts))
	for i, alt := range alts {
		e := &entry{
			id:        o.nextID,
			g:         g,
			index:     i,
			alt:       alt,
			localCost: o.model.LocalCost(alt, key.expr, key.prop),
		}
		o.nextID++
		g.entries[i] = e
	}
	g.floor = computeFloor(g)
	// LIFO stack: push in reverse so alternative 0 expands first.
	for i := len(g.entries) - 1; i >= 0; i-- {
		e := g.entries[i]
		o.cold.push(func() { o.expandEntry(e) })
	}
	return g
}

// computeFloor evaluates the group floor from current entry floors.
func computeFloor(g *group) float64 {
	f := infinity
	for _, e := range g.entries {
		if v := e.floor(); v < f {
			f = v
		}
	}
	return f
}

// expandEntry performs the SearchSpace tuple's recursive step: demand the
// child groups (which enumerates them if new). Before doing so it applies
// pre-expansion pruning — if even a lower bound on the eventual plan cost
// already exceeds the group's threshold, the SearchSpace tuple is
// suppressed without ever exploring its children. This is where tuple
// source suppression converts pruned costs into avoided enumeration.
func (o *Optimizer) expandEntry(e *entry) {
	if e.expanded || e.pruned {
		return
	}
	g := e.g
	if o.mode.RefCount && !g.alive {
		return // dormant; reviveGroup re-schedules expansion
	}
	if o.mode.Suppress && e.floor() > slack(o.threshold(g)) {
		o.suppressEntry(e)
		return
	}
	e.expanded = true
	alt := e.alt
	if !alt.Leaf() {
		e.children[sideLeft] = o.demandChild(e, sideLeft, groupKey{alt.LExpr, alt.LProp})
		if !alt.Unary() {
			e.children[sideRight] = o.demandChild(e, sideRight, groupKey{alt.RExpr, alt.RProp})
		}
	}
	o.acquireRefs(e)
	o.tryCost(e)
	o.queueContrib(e)
	// Expansion can move the group floor (children bests now feed the
	// entry's lower bound) even when no cost is computed yet.
	o.queueReconcile(g)
}

func (o *Optimizer) demandChild(e *entry, s side, key groupKey) *group {
	g := o.demandGroup(key)
	g.parents = append(g.parents, parentRef{e, s})
	return g
}

// tryCost evaluates rules R6–R8 for one entry: PlanCost = LocalCost + the
// BestCost of each child group. It runs for pruned entries too — the
// aggregate's retained values stay exact, so revival decisions never rely
// on stale data (§4.1's requirement that next-best values be recoverable).
func (o *Optimizer) tryCost(e *entry) {
	if !e.expanded {
		return
	}
	c := e.localCost
	for _, ch := range e.children {
		if ch == nil {
			continue
		}
		if !ch.hasBest {
			return // re-triggered when the child's BestCost first appears
		}
		c += ch.bestCost
	}
	o.setCost(e, c)
}

// setCost installs a PlanCost delta: insertion on first computation,
// update otherwise.
func (o *Optimizer) setCost(e *entry, c float64) {
	if e.costKnown && e.cost == c {
		return
	}
	o.met.CostRecomputations++
	o.touchEntry(e)
	g := e.g
	if e.costKnown {
		g.costs.Remove(e, e.cost)
	} else {
		o.met.AltsCosted++
	}
	e.cost = c
	e.costKnown = true
	g.costs.Insert(e, c)
	o.queueReconcile(g)
}

// ---- group reconciliation: BestCost maintenance + pruning alignment ----

func (o *Optimizer) queueReconcile(g *group) {
	if g.reconcileQueued {
		return
	}
	g.reconcileQueued = true
	o.hot.push(func() { o.reconcileGroup(g) })
}

// reconcileGroup recomputes the group's BestCost from the aggregate state
// (the four delta cases of §4.1 collapse to "take the multiset minimum",
// because the multiset retains everything), notifies parents and bound
// machinery of BestCost deltas, and re-aligns every entry's pruned flag
// with the current thresholds — performing both directions of §4.3's case
// analysis (prune on lowered bounds, revive on raised ones).
func (o *Optimizer) reconcileGroup(g *group) {
	g.reconcileQueued = false
	if it, ok := g.costs.Min(); ok {
		if !g.hasBest || g.bestCost != it.cost {
			g.hasBest = true
			g.bestCost = it.cost
			o.met.BestUpdates++
			o.touchGroup(g)
			for _, pr := range g.parents {
				o.queueRecost(pr.e)
				// The parent entry's lower bound moved with this
				// BestCost, so the parent group's floor may move.
				o.queueReconcile(pr.e.g)
			}
			if o.mode.Bound {
				o.queueBound(g)
				for _, pr := range g.parents {
					o.queueContrib(pr.e) // sibling contributions shift
				}
			}
		}
	}
	if o.mode.AggSel {
		o.applyPruning(g)
	}
	// Floor maintenance: a moved floor re-triggers the parents that read
	// it — their bound contributions (rules r1–r2) and their own pruning
	// decisions, which are floor-gated under suppression.
	if f := computeFloor(g); f != g.floor {
		g.floor = f
		for _, pr := range g.parents {
			o.queueReconcile(pr.e.g)
			if o.mode.Bound {
				o.queueContrib(pr.e)
			}
		}
	}
}

// applyPruning aligns each entry's pruned state with the thresholds.
func (o *Optimizer) applyPruning(g *group) {
	thr := o.threshold(g)
	var bestE *entry
	if it, ok := g.costs.Min(); ok {
		bestE = it.e
	}
	for _, e := range g.entries {
		desired := o.shouldBePruned(g, e, thr, bestE)
		if desired && !e.pruned {
			o.suppressEntry(e)
		} else if !desired && e.pruned {
			o.reviveEntry(e)
		}
	}
}

// shouldBePruned is the pruning predicate φ of §4.3. Bound comparisons use
// a small relative slack: bounds are derived by subtraction chains
// (rules r1–r2) while plan costs are derived by addition chains (R6–R8),
// so the two sides of the comparison can disagree by a few ulps even when
// they are mathematically equal — without slack the bound would prune the
// very best plan it was derived from.
func (o *Optimizer) shouldBePruned(g *group, e *entry, thr float64, bestE *entry) bool {
	if e.costKnown {
		// Under tuple source suppression, pruning has side effects
		// (reference release, expansion cancellation) that can sever
		// cost propagation, so the test must use the certified floor:
		// a PlanCost value computed from a child's transiently
		// inflated BestCost may later fall, and an entry pruned on
		// such a value with its subtree severed could never recover.
		// The floor converges to the exact cost once the subtree is
		// fully costed, so at fixpoint this is exactly aggregate
		// selection (Proposition 5).
		v := e.cost
		if o.mode.Suppress {
			v = e.floor()
		}
		if o.mode.Bound && v > slack(g.bound) {
			// Proposition 7: exceeds the recursive bound.
			return true
		}
		return e != bestE && v >= g.bestCost
	}
	// Not yet costed: pre-expansion suppression is only meaningful with
	// tuple source suppression enabled.
	return o.mode.Suppress && e.floor() > slack(thr)
}

// slack widens a pruning threshold by a relative epsilon (see
// shouldBePruned).
func slack(b float64) float64 {
	if b == infinity {
		return b
	}
	return b + 1e-9*math.Abs(b) + 1e-12
}

// suppressEntry deletes the entry's PlanCost tuple (aggregate selection);
// with Suppress also its SearchSpace tuple (tuple source suppression),
// releasing child references and bound contributions.
func (o *Optimizer) suppressEntry(e *entry) {
	if e.pruned {
		return
	}
	e.pruned = true
	o.met.Suppressions++
	o.met.AltsSuppressed++
	o.touchEntry(e)
	if o.mode.Suppress {
		o.releaseRefs(e)
	}
	if o.mode.Bound {
		// A pruned LocalCost tuple no longer derives ParentBound
		// facts (rules r1–r2 join against live SearchSpace state).
		o.removeContribs(e)
	}
}

// reviveEntry undoes suppression: the "propagate an insertion to the
// previous stage" of §4.1. Unexpanded entries are (re-)scheduled for
// expansion; expanded ones re-acquire child references.
func (o *Optimizer) reviveEntry(e *entry) {
	if !e.pruned {
		return
	}
	e.pruned = false
	o.met.Revivals++
	o.met.AltsSuppressed--
	o.touchEntry(e)
	if o.mode.Suppress {
		if !e.expanded {
			o.cold.push(func() { o.expandEntry(e) })
		} else {
			o.acquireRefs(e)
			o.queueRecost(e)
		}
	}
	o.queueContrib(e)
}

func (o *Optimizer) queueRecost(e *entry) {
	if e.recostQueued {
		return
	}
	e.recostQueued = true
	o.hot.push(func() {
		e.recostQueued = false
		o.tryCost(e)
	})
}

// ---- reference counting (§3.2 / §4.2) ----

// acquireRefs makes the entry hold a reference on each child group.
func (o *Optimizer) acquireRefs(e *entry) {
	if e.refHeld || !e.expanded {
		return
	}
	e.refHeld = true
	for _, c := range e.children {
		if c != nil {
			o.retainGroup(c)
		}
	}
}

// releaseRefs drops the entry's child references.
func (o *Optimizer) releaseRefs(e *entry) {
	if !e.refHeld {
		return
	}
	e.refHeld = false
	for _, c := range e.children {
		if c != nil {
			o.releaseGroup(c)
		}
	}
}

func (o *Optimizer) retainGroup(g *group) {
	g.refCount++
	if g.refCount == 1 && !g.alive {
		o.reviveGroup(g)
	}
}

func (o *Optimizer) releaseGroup(g *group) {
	g.refCount--
	if g.refCount < 0 {
		panic("core: negative reference count")
	}
	if g.refCount == 0 && o.mode.RefCount && g.alive {
		o.killGroup(g)
	}
}

// killGroup removes a group whose reference count dropped to zero
// (Proposition 6), recursively releasing its entries' child references.
// State is retained so the group can be revived cheaply if a reference
// reappears, exactly as §4.2 prescribes for counts going 0→1.
func (o *Optimizer) killGroup(g *group) {
	g.alive = false
	o.met.GroupsReleased++
	o.met.GroupKills++
	o.touchGroup(g)
	for _, e := range g.entries {
		o.releaseRefs(e)
		if o.mode.Bound {
			o.removeContribs(e)
		}
	}
}

// reviveGroup resurrects a released group: unexpanded viable entries are
// re-scheduled and expanded ones re-acquire their child references.
func (o *Optimizer) reviveGroup(g *group) {
	g.alive = true
	o.met.GroupsReleased--
	o.met.GroupRevives++
	o.touchGroup(g)
	for _, e := range g.entries {
		if e.pruned {
			continue
		}
		if e.expanded {
			o.acquireRefs(e)
			o.queueRecost(e)
			o.queueContrib(e)
		} else {
			ec := e
			o.cold.push(func() { o.expandEntry(ec) })
		}
	}
}

// ---- recursive bounding (§3.3 / §4.3, rules r1–r4) ----

func (o *Optimizer) queueBound(g *group) {
	if !o.mode.Bound || g.boundQueued {
		return
	}
	g.boundQueued = true
	o.hot.push(func() { o.recomputeBound(g) })
}

// recomputeBound evaluates rule r4: Bound = min(BestCost, MaxBound). A
// change re-aligns this group's pruning and refreshes the ParentBound
// contributions this group's entries give their children (rules r1–r2).
func (o *Optimizer) recomputeBound(g *group) {
	g.boundQueued = false
	nb := infinity
	if g.hasBest && g.bestCost < nb {
		nb = g.bestCost
	}
	if mx := g.contribs.Max(); mx < nb {
		nb = mx
	}
	if nb == g.bound {
		return
	}
	g.bound = nb
	o.met.BoundUpdates++
	o.touchGroup(g)
	o.queueReconcile(g)
	for _, e := range g.entries {
		o.queueContrib(e)
	}
}

func (o *Optimizer) queueContrib(e *entry) {
	if !o.mode.Bound || e.contribQueued {
		return
	}
	e.contribQueued = true
	o.hot.push(func() {
		e.contribQueued = false
		o.refreshContribs(e)
	})
}

// refreshContribs evaluates rules r1–r2 for one LocalCost tuple: the bound
// a parent plan passes to one child is the parent group's bound minus the
// operator's local cost minus the cost of the opposite (sibling) child.
//
// Soundness refinement over a literal reading of r1–r2: the rules subtract
// the sibling's BestCost, but during pipelined execution a sibling whose
// cheap alternatives are still suppressed or unexpanded reports an inflated
// BestCost; subtracting it would make the child's bound too tight and the
// system could settle into a self-consistent suboptimal fixpoint (each
// sibling's inflated best justifying pruning in the other). We therefore
// subtract the sibling's floor — a certified lower bound on any plan it can
// ever produce — which is never larger than the eventual BestCost, so the
// bound stays a valid upper bound on useful plan costs (Proposition 7)
// while converging to the paper's r1–r2 values once the sibling is fully
// costed.
func (o *Optimizer) refreshContribs(e *entry) {
	if !e.expanded || e.pruned {
		return
	}
	if o.mode.RefCount && !e.g.alive {
		return // a released group's plans derive no ParentBound facts
	}
	// The contribution derives from the parent bound WITH its pruning
	// slack applied: the invariant "a live parent implies its children's
	// cheapest plans stay under their bounds" must compose through the
	// subtraction chain, and slack is relative to the parent's (possibly
	// much larger) magnitude.
	gb := slack(e.g.bound)
	l := e.children[sideLeft]
	r := e.children[sideRight]
	if l != nil {
		v := infinity
		if gb < infinity {
			v = gb - e.localCost
			if r != nil {
				v -= r.floor
			}
		}
		o.setContrib(l, contribKey{e, sideLeft}, v)
	}
	if r != nil {
		v := infinity
		if gb < infinity && l != nil {
			v = gb - e.localCost - l.floor
		}
		o.setContrib(r, contribKey{e, sideRight}, v)
	}
}

func (o *Optimizer) setContrib(g *group, k contribKey, v float64) {
	if old, ok := g.contribs.vals[k]; ok && old == v {
		return
	}
	g.contribs.Set(k, v)
	o.queueBound(g)
}

func (o *Optimizer) removeContribs(e *entry) {
	for _, c := range e.children {
		if c == nil {
			continue
		}
		if _, ok := c.contribs.vals[contribKey{e, sideLeft}]; ok {
			c.contribs.Delete(contribKey{e, sideLeft})
			o.queueBound(c)
		}
		if _, ok := c.contribs.vals[contribKey{e, sideRight}]; ok {
			c.contribs.Delete(contribKey{e, sideRight})
			o.queueBound(c)
		}
	}
}

// ---- touch tracking (update-ratio metrics) ----

func (o *Optimizer) touchEntry(e *entry) {
	if e.touchEpoch != o.epoch {
		e.touchEpoch = o.epoch
		o.met.TouchedEntries++
	}
}

func (o *Optimizer) touchGroup(g *group) {
	if g.touchEpoch != o.epoch {
		g.touchEpoch = o.epoch
		o.met.TouchedGroups++
	}
}
