package volcano

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/stats"
	"repro/internal/testkit"
)

func model(t *testing.T, seed uint64, n int) *cost.Model {
	t.Helper()
	r := stats.NewRand(seed)
	cat := testkit.SyntheticCatalog(r, 3)
	q := testkit.RandomQuery(r, cat, n)
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOptimizeProducesValidPlan(t *testing.T) {
	m := model(t, 3, 4)
	res, err := Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Expr != m.Q.AllRels() {
		t.Fatalf("root covers %v, want all relations", res.Plan.Expr)
	}
	leaves := res.Plan.Leaves(nil)
	if len(leaves) != len(m.Q.Rels) {
		t.Fatalf("plan has %d leaves, want %d", len(leaves), len(m.Q.Rels))
	}
	if res.Cost <= 0 {
		t.Fatalf("cost = %v", res.Cost)
	}
	if res.Metrics.Groups == 0 || res.Metrics.Alts == 0 {
		t.Fatalf("metrics empty: %+v", res.Metrics)
	}
}

func TestDeterministic(t *testing.T) {
	m := model(t, 4, 5)
	a, err := Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Plan.Signature() != b.Plan.Signature() {
		t.Fatal("optimization not deterministic")
	}
}

func TestBranchAndBoundPrunes(t *testing.T) {
	m := model(t, 5, 6)
	res, err := Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PrunedAlts == 0 {
		t.Fatal("branch-and-bound pruned nothing on a 6-way join")
	}
	if res.Metrics.CostedAlts >= res.Metrics.Alts {
		t.Fatal("every alternative was fully costed despite pruning")
	}
}

func TestDisconnectedQueryFails(t *testing.T) {
	r := stats.NewRand(1)
	cat := testkit.SyntheticCatalog(r, 2)
	q := &relalg.Query{
		Name: "disc",
		Rels: []relalg.RelRef{{Alias: "A", Table: "T0"}, {Alias: "B", Table: "T1"}},
		// no join predicates: Cartesian products are not enumerated
	}
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(m, relalg.DefaultSpace()); err == nil {
		t.Fatal("disconnected query produced a plan without cross products")
	}
}
