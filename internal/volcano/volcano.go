// Package volcano implements the paper's first comparison baseline: a
// Volcano-style top-down query optimizer with memoization and
// branch-and-bound pruning (Graefe & McKenna, ICDE 1993). It shares the
// plan-space enumerator and cost model with every other architecture in the
// repository, so its optimum must (and, per the test suite, does) coincide
// with the System-R and declarative/incremental optimizers'.
package volcano

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cost"
	"repro/internal/relalg"
)

// Metrics reports how much of the search space the optimizer touched, using
// the same two axes as the paper's Figures 4, 5, 7 and 8: plan-table
// entries ("OR nodes" / groups) and plan alternatives ("AND nodes").
type Metrics struct {
	Groups     int // memo groups materialized
	Alts       int // alternatives enumerated into the memo
	CostedAlts int // alternatives fully costed
	PrunedAlts int // alternatives abandoned by branch-and-bound
	Elapsed    time.Duration
}

// Result is the output of one optimization.
type Result struct {
	Plan    *relalg.Plan
	Cost    float64
	Metrics Metrics
}

type groupKey struct {
	s relalg.RelSet
	p relalg.Prop
}

type memoEntry struct {
	alts      []relalg.Alt
	best      *relalg.Plan
	bestCost  float64
	done      bool    // best is the proven group optimum
	failBound float64 // highest bound under which the search came up empty
}

type optimizer struct {
	m    *cost.Model
	opts relalg.SpaceOptions
	memo map[groupKey]*memoEntry
	met  Metrics
}

// Optimize finds the minimum-cost physical plan for the model's query.
func Optimize(m *cost.Model, opts relalg.SpaceOptions) (*Result, error) {
	start := time.Now()
	o := &optimizer{m: m, opts: opts, memo: map[groupKey]*memoEntry{}}
	plan, ok := o.group(m.Q.AllRels(), relalg.AnyProp, math.Inf(1))
	if !ok {
		return nil, fmt.Errorf("volcano: no plan found for query %s", m.Q.Name)
	}
	o.met.Groups = len(o.memo)
	o.met.Elapsed = time.Since(start)
	return &Result{Plan: plan, Cost: plan.Cost, Metrics: o.met}, nil
}

// group returns the optimal plan for (s, p) whose cost does not exceed
// bound, or ok=false if no such plan exists. On success the returned plan is
// the true optimum of the group (not merely some plan under the bound): the
// running limit below shrinks to the best cost found so far, so any
// alternative abandoned had a proven cost above the eventual optimum.
func (o *optimizer) group(s relalg.RelSet, p relalg.Prop, bound float64) (*relalg.Plan, bool) {
	key := groupKey{s, p}
	e := o.memo[key]
	if e == nil {
		e = &memoEntry{failBound: math.Inf(-1)}
		e.alts = relalg.Split(o.m.Q, o.m, o.opts, s, p)
		o.met.Alts += len(e.alts)
		o.memo[key] = e
	}
	if e.done {
		if e.bestCost <= bound {
			return e.best, true
		}
		return nil, false
	}
	if bound <= e.failBound {
		return nil, false
	}

	best := math.Inf(1)
	var bestPlan *relalg.Plan
	for _, alt := range e.alts {
		limit := math.Min(bound, best)
		local := o.m.LocalCost(alt, s, p)
		if local > limit {
			o.met.PrunedAlts++
			continue
		}
		node := &relalg.Plan{
			Expr: s, Prop: p, Log: alt.Log, Phy: alt.Phy,
			Rel: alt.Rel, Pred: alt.Pred, IdxCol: alt.IdxCol,
			Card: o.m.Card(s), LocalCost: local,
		}
		total := local
		switch {
		case alt.Leaf():
			// nothing further
		case alt.Unary():
			child, ok := o.group(alt.LExpr, alt.LProp, limit-total)
			if !ok {
				o.met.PrunedAlts++
				continue
			}
			node.Left = child
			total += child.Cost
		default:
			left, ok := o.group(alt.LExpr, alt.LProp, limit-total)
			if !ok {
				o.met.PrunedAlts++
				continue
			}
			total += left.Cost
			right, ok := o.group(alt.RExpr, alt.RProp, limit-total)
			if !ok {
				o.met.PrunedAlts++
				continue
			}
			total += right.Cost
			node.Left, node.Right = left, right
		}
		node.Cost = total
		o.met.CostedAlts++
		if total < best {
			best = total
			bestPlan = node
		}
	}
	if bestPlan != nil {
		e.done = true
		e.best = bestPlan
		e.bestCost = best
		return bestPlan, true
	}
	if bound > e.failBound {
		e.failBound = bound
	}
	return nil, false
}
