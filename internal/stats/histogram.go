// Package stats provides the statistical machinery the cost model relies
// on: equi-depth histograms over int64 columns, distinct-value estimation,
// and the deterministic Zipf generator used to produce skewed data (our
// substitute for the Microsoft Research skewed TPC-D generator cited by the
// paper).
package stats

import (
	"fmt"
	"sort"
)

// Histogram is an equi-depth (equal-frequency) histogram over int64 values.
// Each of the B buckets covers (lo, hi] and holds approximately the same
// number of rows, so selectivity estimates have bounded relative error on
// skewed data — the property the paper's workload depends on.
type Histogram struct {
	// Bounds has B+1 entries: bucket i covers (Bounds[i], Bounds[i+1]].
	// Bounds[0] is min-1 so the first bucket includes the minimum.
	Bounds []int64
	// Counts[i] is the exact number of rows in bucket i.
	Counts []float64
	// DistinctPerBucket[i] estimates distinct values inside bucket i.
	DistinctPerBucket []float64
	Total             float64
}

// BuildHistogram constructs an equi-depth histogram with at most buckets
// buckets from the given column values. Values are copied and sorted.
func BuildHistogram(values []int64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	n := len(values)
	if n == 0 {
		return &Histogram{Bounds: []int64{0, 0}, Counts: []float64{0}, DistinctPerBucket: []float64{0}}
	}
	sorted := make([]int64, n)
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	h := &Histogram{Total: float64(n)}
	h.Bounds = append(h.Bounds, sorted[0]-1)
	target := n / buckets
	if target < 1 {
		target = 1
	}
	i := 0
	for i < n {
		j := i + target
		if j > n {
			j = n
		}
		// Extend the bucket so equal values never straddle a boundary.
		for j < n && sorted[j] == sorted[j-1] {
			j++
		}
		hi := sorted[j-1]
		distinct := 1.0
		for k := i + 1; k < j; k++ {
			if sorted[k] != sorted[k-1] {
				distinct++
			}
		}
		h.Bounds = append(h.Bounds, hi)
		h.Counts = append(h.Counts, float64(j-i))
		h.DistinctPerBucket = append(h.DistinctPerBucket, distinct)
		i = j
	}
	return h
}

// Min returns the minimum value covered.
func (h *Histogram) Min() int64 { return h.Bounds[0] + 1 }

// Max returns the maximum value covered.
func (h *Histogram) Max() int64 { return h.Bounds[len(h.Bounds)-1] }

// Distinct estimates the total number of distinct values.
func (h *Histogram) Distinct() float64 {
	var d float64
	for _, v := range h.DistinctPerBucket {
		d += v
	}
	if d < 1 {
		d = 1
	}
	return d
}

// FracLE estimates the fraction of rows with value <= v, interpolating
// linearly within the containing bucket.
func (h *Histogram) FracLE(v int64) float64 {
	if h.Total == 0 {
		return 0
	}
	if v <= h.Bounds[0] {
		return 0
	}
	if v >= h.Max() {
		return 1
	}
	var acc float64
	for i := range h.Counts {
		lo, hi := h.Bounds[i], h.Bounds[i+1]
		if v > hi {
			acc += h.Counts[i]
			continue
		}
		span := float64(hi - lo)
		if span <= 0 {
			span = 1
		}
		acc += h.Counts[i] * float64(v-lo) / span
		break
	}
	return clamp01(acc / h.Total)
}

// FracEQ estimates the fraction of rows with value == v using the distinct
// count of the containing bucket.
func (h *Histogram) FracEQ(v int64) float64 {
	if h.Total == 0 {
		return 0
	}
	if v <= h.Bounds[0] || v > h.Max() {
		return 0
	}
	for i := range h.Counts {
		if v <= h.Bounds[i+1] {
			d := h.DistinctPerBucket[i]
			if d < 1 {
				d = 1
			}
			return clamp01(h.Counts[i] / d / h.Total)
		}
	}
	return 0
}

// FracCmp estimates the selectivity of "col op v" for the comparison
// operators used by the query model. op is one of "=", "<>", "<", "<=",
// ">", ">=".
func (h *Histogram) FracCmp(op string, v int64) (float64, error) {
	switch op {
	case "=":
		return h.FracEQ(v), nil
	case "<>":
		return clamp01(1 - h.FracEQ(v)), nil
	case "<":
		return h.FracLE(v - 1), nil
	case "<=":
		return h.FracLE(v), nil
	case ">":
		return clamp01(1 - h.FracLE(v)), nil
	case ">=":
		return clamp01(1 - h.FracLE(v-1)), nil
	}
	return 0, fmt.Errorf("stats: unknown comparison %q", op)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
