package stats

// Deterministic pseudo-random machinery. The whole repository avoids
// math/rand so that data generation is reproducible across Go versions: the
// generators below are fixed algorithms (splitmix64 and a standard Zipf
// rejection-inversion sampler) whose output can never change under us.

import "math"

// Rand is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0.
type Rand struct{ state uint64 }

// NewRand returns a generator with the given seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64n returns a uniform int64 in [0, n).
func (r *Rand) Int64n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int64n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Zipf samples integers in [1, n] with P(k) proportional to 1/k^s using
// inverse-CDF over the precomputed harmonic table (exact, not approximate,
// which keeps generation deterministic and the skew factor faithful).
// For s == 0 it degenerates to the uniform distribution, matching the
// paper's "Zipfian skew factor 0" baseline.
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf builds a sampler over [1, n] with exponent s >= 0.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{n: n, cdf: make([]float64, n)}
	var total float64
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		z.cdf[k-1] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	return z
}

// Sample draws one value in [1, n].
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
