package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds collide on first draw")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int64n(3); v < 0 || v >= 3 {
			t.Fatalf("Int64n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestHistogramExactOnKnownData(t *testing.T) {
	// 100 values 0..99: FracLE(49) should be ~0.50.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	h := BuildHistogram(vals, 10)
	if h.Min() != 0 || h.Max() != 99 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if d := h.Distinct(); math.Abs(d-100) > 1 {
		t.Fatalf("distinct = %v", d)
	}
	if f := h.FracLE(49); math.Abs(f-0.5) > 0.05 {
		t.Fatalf("FracLE(49) = %v", f)
	}
	if f := h.FracEQ(50); math.Abs(f-0.01) > 0.005 {
		t.Fatalf("FracEQ(50) = %v", f)
	}
	if f := h.FracLE(-5); f != 0 {
		t.Fatalf("FracLE below min = %v", f)
	}
	if f := h.FracLE(1000); f != 1 {
		t.Fatalf("FracLE above max = %v", f)
	}
}

func TestHistogramSkewedData(t *testing.T) {
	// 90% of values are 7; equi-depth must still estimate EQ well.
	var vals []int64
	for i := 0; i < 900; i++ {
		vals = append(vals, 7)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, int64(100+i))
	}
	h := BuildHistogram(vals, 8)
	if f := h.FracEQ(7); math.Abs(f-0.9) > 0.15 {
		t.Fatalf("FracEQ(7) = %v, want ~0.9", f)
	}
}

// TestHistogramProperties: estimates are monotone in v and bounded in [0,1].
func TestHistogramProperties(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRand(seed)
		n := 10 + r.Intn(500)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = r.Int64n(1000)
		}
		h := BuildHistogram(vals, 1+r.Intn(16))
		last := -1.0
		for v := int64(-10); v <= 1010; v += 15 {
			f := h.FracLE(v)
			if f < 0 || f > 1 || f < last-1e-12 {
				return false
			}
			last = f
			if e := h.FracEQ(v); e < 0 || e > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramEstimatesVsExact checks bounded error against exact counts.
func TestHistogramEstimatesVsExact(t *testing.T) {
	r := NewRand(99)
	n := 2000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = r.Int64n(200)
	}
	h := BuildHistogram(vals, 32)
	for _, v := range []int64{10, 50, 100, 150, 190} {
		exact := 0
		for _, x := range vals {
			if x <= v {
				exact++
			}
		}
		if got := h.FracLE(v); math.Abs(got-float64(exact)/float64(n)) > 0.05 {
			t.Fatalf("FracLE(%d) = %v, exact %v", v, got, float64(exact)/float64(n))
		}
	}
}

func TestFracCmpOperators(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	h := BuildHistogram(vals, 10)
	ge, _ := h.FracCmp(">=", 50)
	lt, _ := h.FracCmp("<", 50)
	if math.Abs(ge+lt-1) > 1e-9 {
		t.Fatalf(">= and < don't partition: %v + %v", ge, lt)
	}
	if _, err := h.FracCmp("??", 1); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestZipfUniformAtZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := NewRand(5)
	counts := make([]int, 11)
	for i := 0; i < 20000; i++ {
		counts[z.Sample(r)]++
	}
	for k := 1; k <= 10; k++ {
		if math.Abs(float64(counts[k])-2000) > 300 {
			t.Fatalf("skew-0 not uniform: counts[%d]=%d", k, counts[k])
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := NewRand(5)
	head := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if z.Sample(r) <= 10 {
			head++
		}
	}
	// With s=1 over [1,100], the top 10 values carry ~56% of the mass.
	if frac := float64(head) / draws; frac < 0.45 || frac > 0.7 {
		t.Fatalf("head mass = %v, want ~0.56", frac)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(7, 0.5)
	r := NewRand(11)
	for i := 0; i < 1000; i++ {
		if v := z.Sample(r); v < 1 || v > 7 {
			t.Fatalf("sample out of range: %d", v)
		}
	}
}
