package driftkit

import (
	"testing"

	"repro/internal/linearroad"
	"repro/internal/obs"
	"repro/internal/server"
)

// stationary pins each car to a fixed expressway and segment, overriding
// the generator's burst teleports: within a phase the workload is genuinely
// stationary (cardinality noise comes only from which cars report into the
// sliding windows), so the phase boundary is the only regime change.
func stationary(r []int64) {
	car := r[linearroad.ColCarID]
	r[linearroad.ColExpway] = car % 10
	r[linearroad.ColSeg] = car % 100
}

// drift scenario: a long stationary regime in which every car reports in
// direction 0 (the SegTollS scan predicates match almost everything), then a
// step change where only one car in three stays in direction 0 — the scan
// and join cardinalities the entry's statistics were confident about drop
// several-fold at the boundary, while the surviving population stays large
// enough that window-membership noise sits well inside the feedback
// threshold.
func scenario() Scenario {
	return Scenario{
		Seed:        7,
		Cars:        240,
		QuietWindow: 4,
		Phases: []Phase{
			{Name: "warm", Execs: 10, Seconds: 30,
				Mutate: func(r []int64) {
					stationary(r)
					r[linearroad.ColDir] = 0
				}},
			{Name: "shift", Execs: 20, Seconds: 30,
				Mutate: func(r []int64) {
					stationary(r)
					if r[linearroad.ColCarID]%3 == 0 {
						r[linearroad.ColDir] = 0
					} else {
						r[linearroad.ColDir] = 1
					}
				}},
		},
	}
}

// replay runs the scenario on a fresh server with the given ageing policy.
// Both replays are built from the same Scenario, so they see byte-identical
// streams; the ageing policy is the only difference.
func replay(t *testing.T, halfLife float64) *Report {
	t.Helper()
	h := New(scenario())
	// Threshold 0.3: wide enough to suppress the window-membership noise
	// inside a stationary phase, far below the ~8x step at the shift.
	srv, err := server.New(h.Catalog(), server.Options{
		DecayHalfLife: halfLife, FeedbackThreshold: 0.3, TraceEvents: 512})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("half-life=%v:\n%s", halfLife, rep)
	return rep
}

// TestDriftReconvergence is the acceptance test for the statistics plane
// under data drift: after a mid-run phase shift, the server with observation
// decay shows fresh repairs followed by re-convergence (zero repairs over
// the phase's final window), while a decay-disabled control run over the
// identical stream ends the post-shift phase strictly worse — later repairs
// (slower adaptation) or calibrated estimates further from the observed
// data (worse plan quality).
func TestDriftReconvergence(t *testing.T) {
	// Half-life of 30 logical observations ≈ 3 executions of the nine
	// SegTollS subexpressions: long enough to smooth slice noise, short
	// enough to flush the dead regime within a few post-shift executions.
	dec := replay(t, 30)
	ctl := replay(t, 0)

	warm := dec.Phase("warm")
	if warm == nil || warm.Repairs == 0 {
		t.Fatalf("warm phase never repaired — the workload teaches nothing: %+v", warm)
	}
	if !warm.Reconverged {
		t.Fatalf("warm phase did not converge before the shift: %+v", warm)
	}

	shift := dec.Phase("shift")
	if shift.Repairs == 0 {
		t.Fatalf("phase shift triggered no repairs — the drift is invisible to feedback: %+v", shift)
	}
	if !shift.Reconverged {
		t.Fatalf("decayed server did not re-converge after the shift: %+v", shift)
	}

	// The control must be strictly worse on at least one axis: it either
	// fails to quiet down inside the phase, is still repairing later than
	// the decayed run (repair latency), or ends the phase with calibrated
	// estimates further from the observed cardinalities (plan quality).
	ctlShift := ctl.Phase("shift")
	worse := (shift.Reconverged && !ctlShift.Reconverged) ||
		ctlShift.LastRepair > shift.LastRepair ||
		ctlShift.EstimationError > shift.EstimationError
	if !worse {
		t.Fatalf("decay-disabled control matched the decayed run after the shift:\ndecayed: %+v\ncontrol: %+v",
			shift, ctlShift)
	}
}

// TestHarnessDeterminism: two harnesses built from one scenario replay
// byte-identical trajectories on identically configured servers — the
// property that makes control-versus-treatment comparisons sound.
func TestHarnessDeterminism(t *testing.T) {
	short := scenario()
	short.Phases = short.Phases[:1]
	short.Phases[0].Execs = 4
	run := func() string {
		h := New(short)
		srv, err := server.New(h.Catalog(), server.Options{DecayHalfLife: 30, TraceEvents: 256})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.Run(srv)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical scenarios diverged:\n%s\n%s", a, b)
	}
}

// TestHarnessSingleUse: a harness refuses to replay twice — its stream
// clock and window state are spent.
func TestHarnessSingleUse(t *testing.T) {
	short := scenario()
	short.Phases = []Phase{{Name: "p", Execs: 1, Seconds: 5}}
	h := New(short)
	srv, err := server.New(h.Catalog(), server.Options{TraceEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(srv); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(srv); err == nil {
		t.Fatal("second Run on a spent harness succeeded")
	}
}

// TestHarnessRequiresEventPlane: the harness reads its trajectory from the
// server's lifecycle events, so a trace-disabled server is a configuration
// error, and a traced replay brackets each phase with phase markers any
// scrape-side consumer can follow.
func TestHarnessRequiresEventPlane(t *testing.T) {
	short := scenario()
	short.Phases = []Phase{{Name: "p", Execs: 2, Seconds: 5}}

	h := New(short)
	quiet, err := server.New(h.Catalog(), server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(quiet); err == nil {
		t.Fatal("Run against a trace-disabled server succeeded")
	}

	h = New(short)
	srv, err := server.New(h.Catalog(), server.Options{TraceEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(srv)
	if err != nil {
		t.Fatal(err)
	}
	starts, ends, execs := 0, 0, 0
	for _, ev := range srv.Tracer().Events() {
		switch {
		case ev.Kind == obs.KindPhase && ev.A == 1:
			starts++
		case ev.Kind == obs.KindPhase && ev.A == 2:
			ends++
			if ev.V != rep.Phases[0].EstimationError {
				t.Fatalf("phase-end event est-err=%v, report says %v", ev.V, rep.Phases[0].EstimationError)
			}
		case ev.Kind == obs.KindExec:
			execs++
		}
	}
	if starts != 1 || ends != 1 || execs != 2 {
		t.Fatalf("phase markers wrong: starts=%d ends=%d execs=%d", starts, ends, execs)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points reconstructed from events: %d, want 2", len(rep.Points))
	}
}
