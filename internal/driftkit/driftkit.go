// Package driftkit is the scenario harness for the statistics plane under
// data drift: it replays a phase-shifted stream workload against a live
// query service (internal/server) and reports the repair/convergence
// trajectory phase by phase, so tests can assert not just "the server
// adapts" but the shape of the adaptation — fresh repairs right after a
// distribution shift, then re-convergence to zero repairs once the learned
// statistics catch up with the new regime.
//
// The stream is the Linear Road generator of internal/linearroad (bursty
// car position reports with drifting hot segments); a Phase sharpens its
// drift into a step change by transforming every generated report with a
// Mutate hook, so the boundary between phases is a genuine regime shift in
// the observed cardinalities rather than a slow wander. Between executions
// the harness ingests one stream slice into the query's window tables and
// re-materializes them — the same split-point discipline as the §5.4
// adaptive loop, but driven through the serving layer: the server's cached
// entry holds the live incremental optimizer, and every execution's
// feedback lands in the server-wide fbstore.StatsStore, whose ageing policy
// is exactly what drift scenarios exercise.
//
// The harness is deliberately deterministic: the generator is seeded, the
// replay is single-session and serial, and the statistics plane's ageing
// runs on its logical observation clock, so two runs of the same Scenario
// against servers that differ only in ageing policy see byte-identical
// streams — the control-versus-treatment comparison every adaptivity claim
// needs.
package driftkit

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/linearroad"
	"repro/internal/obs"
	"repro/internal/relalg"
	"repro/internal/server"
)

// Phase is one stationary regime of the replayed stream.
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// Execs is how many split points (ingest + materialize + execute
	// rounds) the phase runs.
	Execs int
	// Seconds is how many stream-seconds are ingested before each
	// execution.
	Seconds int64
	// Mutate transforms each generated report in place (nil: identity).
	// It is what turns the generator's gradual drift into this phase's
	// regime: e.g. forcing the direction field remaps the selectivity of
	// every dir-predicate for the whole phase.
	Mutate func(row []int64)
}

// Scenario is a reproducible phase-shifted workload.
type Scenario struct {
	// Seed and Cars parameterize the Linear Road generator.
	Seed uint64
	Cars int
	// Query is the statement replayed at every split point (nil: the
	// paper's SegTollS five-way window join).
	Query *relalg.Query
	// QuietWindow is how many trailing executions of a phase must be
	// repair-free for the phase to count as re-converged.
	QuietWindow int
	// Phases run in order over one continuous stream clock.
	Phases []Phase
}

// Point is one execution of the replay.
type Point struct {
	Phase       string
	Exec        int // 1-based index within the phase
	Repaired    bool
	PlanVersion uint64
	Rows        int
}

// PhaseReport summarizes one phase's adaptation trajectory.
type PhaseReport struct {
	Name    string
	Execs   int
	Repairs int // executions whose feedback repaired the cached plan
	// FirstRepair and LastRepair are 1-based execution indices within the
	// phase (0: the phase never repaired).
	FirstRepair int
	LastRepair  int
	// Reconverged reports whether the trailing QuietWindow executions were
	// repair-free: the plan settled before the phase ended.
	Reconverged bool
	// EstimationError is the mean |ln(estimate/lastObservation)| over the
	// statistics-plane fingerprints observed during this phase, measured at
	// phase end — how far the plane's calibrated estimates sit from what
	// the data currently shows. A plane that keeps up with drift ends each
	// phase with a small error; a frozen one drags the dead regime along.
	EstimationError float64
}

// Report is the whole replay's trajectory.
type Report struct {
	Points []Point
	Phases []PhaseReport
}

// Phase returns the report of the named phase, or nil.
func (r *Report) Phase(name string) *PhaseReport {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// Harness owns the stream state of one Scenario replay: the seeded
// generator, the window tables, and the stream clock. Build the server over
// Catalog() and hand it to Run. Not safe for concurrent use; a harness
// replays one scenario once.
type Harness struct {
	sc  Scenario
	gen *linearroad.Gen
	win *linearroad.Windows
	t   int64 // stream clock, continuous across phases
	ran bool
}

// New builds a harness for the scenario.
func New(sc Scenario) *Harness {
	if sc.Query == nil {
		sc.Query = linearroad.SegTollS()
	}
	if sc.QuietWindow <= 0 {
		sc.QuietWindow = 3
	}
	return &Harness{
		sc:  sc,
		gen: linearroad.NewGen(sc.Seed, sc.Cars),
		win: linearroad.NewWindows(),
	}
}

// Catalog returns the window-backed catalog the server must be built over.
func (h *Harness) Catalog() *catalog.Catalog { return h.win.Catalog() }

// Run replays the scenario against the server: for every execution of every
// phase it ingests one stream slice (with the phase's Mutate applied),
// re-materializes the window tables, and executes the scenario query
// through a server session, so the server's feedback loop — calibration,
// ageing, incremental repair — runs exactly as it would in production. The
// statement is prepared once, after the first slice is materialized, so the
// entry's initial cost model sees real (pre-drift) statistics.
//
// Run drives the server strictly serially and re-materializes the catalog
// between executions; do not execute other statements against the same
// server concurrently.
//
// The trajectory is read back from the server's lifecycle event plane, not
// from private return values: each phase is bracketed by obs.KindPhase
// markers (start, then end carrying the phase's estimation error), and the
// per-execution Points are reconstructed from the KindExec events the
// server emitted in between. The server must therefore be built with
// Options.TraceEvents large enough to retain one phase's events (execs,
// repairs and queue waits — a phase's Execs * 4 is a safe bound); any
// scrape-side consumer watching the same tracer sees exactly the trajectory
// the Report summarizes.
func (h *Harness) Run(srv *server.Server) (*Report, error) {
	if h.ran {
		return nil, fmt.Errorf("driftkit: harness already ran; build a new one per replay")
	}
	h.ran = true
	tr := srv.Tracer()
	if !tr.Enabled() {
		return nil, fmt.Errorf("driftkit: server must be built with Options.TraceEvents > 0 (the harness reads the trajectory from the event plane)")
	}
	sess := srv.Session()
	var st *server.Stmt
	rep := &Report{}
	for pi, ph := range h.sc.Phases {
		if ph.Execs <= 0 || ph.Seconds <= 0 {
			return nil, fmt.Errorf("driftkit: phase %d (%s) needs positive Execs and Seconds", pi, ph.Name)
		}
		phaseStartClock := srv.Stats().Clock()
		phaseStartSeq := tr.Seq()
		tr.Emit(obs.Event{Kind: obs.KindPhase, Note: ph.Name, A: 1})
		for i := 1; i <= ph.Execs; i++ {
			rows := h.gen.Slice(h.t, h.t+ph.Seconds)
			h.t += ph.Seconds
			if ph.Mutate != nil {
				for _, r := range rows {
					ph.Mutate(r)
				}
			}
			h.win.Ingest(rows)
			h.win.Materialize()
			if st == nil {
				var err error
				st, err = sess.PrepareQuery(h.sc.Query)
				if err != nil {
					return nil, fmt.Errorf("driftkit: prepare: %w", err)
				}
			}
			if _, err := st.Exec(); err != nil {
				return nil, fmt.Errorf("driftkit: phase %s exec %d: %w", ph.Name, i, err)
			}
		}
		points, err := phasePoints(tr.Since(phaseStartSeq), ph)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, points...)
		pr := h.phaseReport(srv, ph, points, phaseStartClock)
		tr.Emit(obs.Event{Kind: obs.KindPhase, Note: ph.Name, A: 2, V: pr.EstimationError})
		rep.Phases = append(rep.Phases, pr)
	}
	return rep, nil
}

// phasePoints reconstructs one phase's execution trajectory from the
// lifecycle events emitted since the phase started.
func phasePoints(events []obs.Event, ph Phase) ([]Point, error) {
	var points []Point
	for _, ev := range events {
		if ev.Kind != obs.KindExec {
			continue
		}
		points = append(points, Point{
			Phase:       ph.Name,
			Exec:        len(points) + 1,
			Repaired:    ev.Note == "repaired",
			PlanVersion: uint64(ev.B),
			Rows:        int(ev.A),
		})
	}
	if len(points) != ph.Execs {
		return nil, fmt.Errorf("driftkit: phase %s: event plane retained %d of %d executions — raise Options.TraceEvents so one phase fits the ring",
			ph.Name, len(points), ph.Execs)
	}
	return points, nil
}

// phaseReport folds one phase's points and the statistics plane's end-state
// into a PhaseReport.
func (h *Harness) phaseReport(srv *server.Server, ph Phase, points []Point, startClock uint64) PhaseReport {
	pr := PhaseReport{Name: ph.Name, Execs: len(points)}
	for _, p := range points {
		if !p.Repaired {
			continue
		}
		pr.Repairs++
		if pr.FirstRepair == 0 {
			pr.FirstRepair = p.Exec
		}
		pr.LastRepair = p.Exec
	}
	quiet := h.sc.QuietWindow
	if quiet > len(points) {
		quiet = len(points)
	}
	pr.Reconverged = pr.LastRepair <= len(points)-quiet

	// Estimation error over the fingerprints this phase actually observed
	// (their last fold is stamped after the phase's starting clock).
	var sum float64
	var n int
	for _, sn := range srv.Stats().Snapshot() {
		if sn.Tick <= startClock || sn.ObsAvg <= 0 || sn.LastObs <= 0 {
			continue
		}
		sum += math.Abs(math.Log(sn.ObsAvg / sn.LastObs))
		n++
	}
	if n > 0 {
		pr.EstimationError = sum / float64(n)
	}
	return pr
}

// String renders the trajectory compactly: one line per phase, a repair map
// per execution ('R' repaired, '.' converged).
func (r *Report) String() string {
	out := ""
	for _, ph := range r.Phases {
		trace := make([]byte, 0, ph.Execs)
		for _, p := range r.Points {
			if p.Phase != ph.Name {
				continue
			}
			c := byte('.')
			if p.Repaired {
				c = 'R'
			}
			trace = append(trace, c)
		}
		out += fmt.Sprintf("%-10s %s repairs=%d reconverged=%v estErr=%.3f\n",
			ph.Name, trace, ph.Repairs, ph.Reconverged, ph.EstimationError)
	}
	return out
}
