package sqlmini

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

func tpchOpts() Options {
	return Options{
		Dict: map[string]int64{
			"MACHINERY": tpch.SegMachinery,
			"BUILDING":  tpch.SegBuilding,
			"ASIA":      2,
			"R":         tpch.FlagR,
		},
		Date: func(y, m, d int) int64 { return tpch.Date(y, m, d) },
	}
}

func parseOK(t *testing.T, sql string) *relalg.Query {
	t.Helper()
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 42})
	q, err := Parse(sql, cat, tpchOpts())
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q
}

func TestParseQ3SEquivalentToBuilder(t *testing.T) {
	sql := `SELECT l.l_orderkey, o.o_orderdate, o.o_shippriority
	        FROM customer c, orders o, lineitem l
	        WHERE c.c_mktsegment = 'MACHINERY'
	          AND c.c_custkey = o.o_custkey
	          AND o.o_orderkey = l.l_orderkey
	          AND o.o_orderdate < '1995-03-15'
	          AND l.l_shipdate > '1995-03-15'`
	q := parseOK(t, sql)
	ref := tpch.Q3S()
	if len(q.Rels) != len(ref.Rels) || len(q.Joins) != len(ref.Joins) || len(q.Scans) != len(ref.Scans) {
		t.Fatalf("shape differs from builder: %d/%d rels %d/%d joins %d/%d scans",
			len(q.Rels), len(ref.Rels), len(q.Joins), len(ref.Joins), len(q.Scans), len(ref.Scans))
	}
	// The parsed and hand-built queries must optimize to the same cost.
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	mp, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mr, err := cost.NewModel(ref, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a, err := volcano.Optimize(mp, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := volcano.Optimize(mr, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-9*b.Cost {
		t.Fatalf("parsed cost %v != builder cost %v", a.Cost, b.Cost)
	}
}

func TestParseAggregates(t *testing.T) {
	q := parseOK(t, `SELECT n.n_name, SUM(l.l_extendedprice), COUNT(*), COUNT(DISTINCT o.o_custkey)
		FROM orders o, lineitem l, customer c, nation n
		WHERE o.o_orderkey = l.l_orderkey AND c.c_custkey = o.o_custkey
		  AND c.c_nationkey = n.n_nationkey
		GROUP BY n.n_name`)
	if q.Agg == nil {
		t.Fatal("no aggregate spec")
	}
	if len(q.Agg.Sums) != 1 || !q.Agg.CountAll || len(q.Agg.CountDistinct) != 1 || len(q.Agg.GroupBy) != 1 {
		t.Fatalf("agg spec = %+v", q.Agg)
	}
}

func TestParseUnqualifiedColumns(t *testing.T) {
	q := parseOK(t, `SELECT * FROM orders o, lineitem l WHERE o_orderkey = l_orderkey AND o_orderdate < 800`)
	if len(q.Joins) != 1 || len(q.Scans) != 1 {
		t.Fatalf("unqualified resolution failed: %+v", q)
	}
	if q.Joins[0].L.Rel == q.Joins[0].R.Rel {
		t.Fatal("join endpoints collapsed")
	}
}

func TestParseNonEquiFilterWithOffset(t *testing.T) {
	q := parseOK(t, `SELECT * FROM orders o1, orders o2, lineitem l
		WHERE o1.o_custkey = o2.o_custkey AND o1.o_orderkey = l.l_orderkey
		  AND o1.o_orderdate < o2.o_orderdate - 30`)
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %+v", q.Filters)
	}
	f := q.Filters[0]
	if f.Off != -30 || f.Op != relalg.CmpLT {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 42})
	bad := map[string]string{
		"SELECT":                                                                  "expected select item",
		"SELECT * FROM nosuch":                                                    "unknown table",
		"SELECT * FROM orders o, orders o":                                        "duplicate alias",
		"SELECT * FROM orders o WHERE o.zzz = 1":                                  "no column",
		"SELECT * FROM orders o WHERE o.o_orderkey ~ 1":                           "unexpected character",
		"SELECT * FROM orders o, lineitem l WHERE o_custkey = 'X'":                "cannot resolve string",
		"SELECT * FROM orders o, customer c WHERE o_custkey = c_custkey trailing": "trailing input",
		"SELECT * FROM orders o WHERE o_orderkey = o_custkey":                     "within one relation",
	}
	for sql, wantSub := range bad {
		_, err := Parse(sql, cat, tpchOpts())
		if err == nil {
			t.Errorf("accepted %q", sql)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%q: error %q does not mention %q", sql, err, wantSub)
		}
	}
}

func TestParsedQueryOptimizesEndToEnd(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	q, err := Parse(`SELECT SUM(l.l_extendedprice) FROM region r, nation n, customer c, orders o, lineitem l, supplier s
		WHERE r.r_regionkey = n.n_regionkey AND c.c_nationkey = n.n_nationkey
		  AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
		  AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
		  AND r.r_name = 'ASIA'`, cat, tpchOpts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.New(m, relalg.DefaultSpace(), core.PruneAll)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Expr != q.AllRels() {
		t.Fatal("plan incomplete")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLexerStringsAndSymbols(t *testing.T) {
	toks, err := lex("a.b <= 'x y' <> != 12")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{tokIdent, tokSymbol, tokIdent, tokSymbol, tokString, tokSymbol, tokSymbol, tokNumber, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count %d, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d kind %v, want %v", i, toks[i].kind, k)
		}
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
}
