package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/relalg"
)

// Options configures name resolution.
type Options struct {
	// Dict resolves string literals to their integer dictionary codes
	// (e.g. 'MACHINERY' -> tpch.SegMachinery). Nil rejects strings.
	Dict map[string]int64
	// Date encodes 'YYYY-MM-DD' literals; nil rejects date literals.
	Date func(y, m, d int) int64
}

// Parse compiles a single-block SELECT statement into a relalg.Query,
// resolving table and column names through the catalog.
func Parse(sql string, cat *catalog.Catalog, opts Options) (*relalg.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat, opts: opts}
	q, err := p.parse()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	cat  *catalog.Catalog
	opts Options

	q       *relalg.Query
	aliases map[string]int   // alias -> relation ordinal
	tables  []*catalog.Table // per relation
	selects []selectItem     // deferred until FROM is resolved
	groupBy []colRef
}

type selectItem struct {
	star          bool
	col           *colRef
	sum           *colRef
	countAll      bool
	countDistinct *colRef
}

type colRef struct {
	alias string // empty when unqualified
	name  string
	pos   int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("sqlmini: offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(word string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.keyword(word) {
		return p.errf(p.cur(), "expected %s, found %q", strings.ToUpper(word), p.cur().text)
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parse() (*relalg.Query, error) {
	p.q = &relalg.Query{Name: "sql"}
	p.aliases = map[string]int{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(); err != nil {
		return nil, err
	}
	if p.keyword("where") {
		if err := p.parseWhere(); err != nil {
			return nil, err
		}
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		if err := p.parseGroupBy(); err != nil {
			return nil, err
		}
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errf(t, "trailing input %q", t.text)
	}
	return p.q, p.buildAgg()
}

func (p *parser) parseSelectList() error {
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		p.selects = append(p.selects, item)
		if !p.symbol(",") {
			return nil
		}
	}
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.symbol("*") {
		return selectItem{star: true}, nil
	}
	t := p.cur()
	if t.kind != tokIdent {
		return selectItem{}, p.errf(t, "expected select item, found %q", t.text)
	}
	switch {
	case strings.EqualFold(t.text, "sum"):
		p.pos++
		if !p.symbol("(") {
			return selectItem{}, p.errf(p.cur(), "expected ( after SUM")
		}
		c, err := p.parseColRef()
		if err != nil {
			return selectItem{}, err
		}
		if !p.symbol(")") {
			return selectItem{}, p.errf(p.cur(), "expected ) after SUM argument")
		}
		return selectItem{sum: &c}, nil
	case strings.EqualFold(t.text, "count"):
		p.pos++
		if !p.symbol("(") {
			return selectItem{}, p.errf(p.cur(), "expected ( after COUNT")
		}
		if p.symbol("*") {
			if !p.symbol(")") {
				return selectItem{}, p.errf(p.cur(), "expected ) after COUNT(*)")
			}
			return selectItem{countAll: true}, nil
		}
		if err := p.expectKeyword("distinct"); err != nil {
			return selectItem{}, err
		}
		c, err := p.parseColRef()
		if err != nil {
			return selectItem{}, err
		}
		if !p.symbol(")") {
			return selectItem{}, p.errf(p.cur(), "expected ) after COUNT(DISTINCT ...)")
		}
		return selectItem{countDistinct: &c}, nil
	}
	c, err := p.parseColRef()
	if err != nil {
		return selectItem{}, err
	}
	return selectItem{col: &c}, nil
}

func (p *parser) parseColRef() (colRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return colRef{}, p.errf(t, "expected column, found %q", t.text)
	}
	if p.symbol(".") {
		name := p.next()
		if name.kind != tokIdent {
			return colRef{}, p.errf(name, "expected column after %q.", t.text)
		}
		return colRef{alias: t.text, name: name.text, pos: t.pos}, nil
	}
	return colRef{name: t.text, pos: t.pos}, nil
}

func (p *parser) parseFrom() error {
	for {
		t := p.next()
		if t.kind != tokIdent {
			return p.errf(t, "expected table name, found %q", t.text)
		}
		tb, err := p.cat.Table(strings.ToLower(t.text))
		if err != nil {
			// Allow exact-case names too.
			tb, err = p.cat.Table(t.text)
			if err != nil {
				return p.errf(t, "unknown table %q", t.text)
			}
		}
		alias := t.text
		p.keyword("as")
		if a := p.cur(); a.kind == tokIdent && !isKeyword(a.text) {
			alias = a.text
			p.pos++
		}
		key := strings.ToLower(alias)
		if _, dup := p.aliases[key]; dup {
			return p.errf(t, "duplicate alias %q", alias)
		}
		p.aliases[key] = len(p.q.Rels)
		p.q.Rels = append(p.q.Rels, relalg.RelRef{Alias: alias, Table: tb.Name})
		p.tables = append(p.tables, tb)
		if !p.symbol(",") {
			return nil
		}
	}
}

func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "where", "group", "by", "and", "select", "from", "as":
		return true
	}
	return false
}

// resolve turns a column reference into a relalg.ColID.
func (p *parser) resolve(c colRef) (relalg.ColID, error) {
	if c.alias != "" {
		rel, ok := p.aliases[strings.ToLower(c.alias)]
		if !ok {
			return relalg.ColID{}, fmt.Errorf("sqlmini: offset %d: unknown alias %q", c.pos, c.alias)
		}
		off, err := p.tables[rel].ColIndex(strings.ToLower(c.name))
		if err != nil {
			return relalg.ColID{}, fmt.Errorf("sqlmini: offset %d: %v", c.pos, err)
		}
		return relalg.ColID{Rel: rel, Off: off}, nil
	}
	// Unqualified: must be unambiguous across the FROM list.
	found := relalg.ColID{Rel: -1}
	for rel, tb := range p.tables {
		if off, err := tb.ColIndex(strings.ToLower(c.name)); err == nil {
			if found.Rel >= 0 {
				return relalg.ColID{}, fmt.Errorf("sqlmini: offset %d: column %q is ambiguous", c.pos, c.name)
			}
			found = relalg.ColID{Rel: rel, Off: off}
		}
	}
	if found.Rel < 0 {
		return relalg.ColID{}, fmt.Errorf("sqlmini: offset %d: unknown column %q", c.pos, c.name)
	}
	return found, nil
}

var cmpOps = map[string]relalg.CmpOp{
	"=": relalg.CmpEQ, "<>": relalg.CmpNE, "!=": relalg.CmpNE,
	"<": relalg.CmpLT, "<=": relalg.CmpLE, ">": relalg.CmpGT, ">=": relalg.CmpGE,
}

func (p *parser) parseWhere() error {
	for {
		if err := p.parseConjunct(); err != nil {
			return err
		}
		if !p.keyword("and") {
			return nil
		}
	}
}

func (p *parser) parseConjunct() error {
	lc, err := p.parseColRef()
	if err != nil {
		return err
	}
	l, err := p.resolve(lc)
	if err != nil {
		return err
	}
	opTok := p.next()
	op, ok := cmpOps[opTok.text]
	if opTok.kind != tokSymbol || !ok {
		return p.errf(opTok, "expected comparison operator, found %q", opTok.text)
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return p.errf(t, "bad number %q", t.text)
		}
		p.q.Scans = append(p.q.Scans, relalg.ScanPred{Col: l, Op: op, Val: v})
		return nil
	case tokString:
		p.pos++
		v, err := p.literal(t)
		if err != nil {
			return err
		}
		p.q.Scans = append(p.q.Scans, relalg.ScanPred{Col: l, Op: op, Val: v})
		return nil
	case tokIdent:
		rc, err := p.parseColRef()
		if err != nil {
			return err
		}
		r, err := p.resolve(rc)
		if err != nil {
			return err
		}
		var off int64
		if t := p.cur(); t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			sign := int64(1)
			if t.text == "-" {
				sign = -1
			}
			p.pos++
			num := p.next()
			if num.kind != tokNumber {
				return p.errf(num, "expected integer offset, found %q", num.text)
			}
			v, err := strconv.ParseInt(num.text, 10, 64)
			if err != nil {
				return p.errf(num, "bad number %q", num.text)
			}
			off = sign * v
		}
		if l.Rel == r.Rel {
			return p.errf(opTok, "predicates within one relation are not supported")
		}
		if op == relalg.CmpEQ && off == 0 {
			p.q.Joins = append(p.q.Joins, relalg.JoinPred{L: l, R: r})
			return nil
		}
		// Non-equi (or offset) comparison: a residual filter with a
		// default selectivity estimate.
		p.q.Filters = append(p.q.Filters, relalg.FilterPred{
			L: l, R: r, Op: op, Off: off, Sel: defaultFilterSel(op),
		})
		return nil
	}
	return p.errf(t, "expected literal or column, found %q", t.text)
}

func defaultFilterSel(op relalg.CmpOp) float64 {
	if op == relalg.CmpEQ || op == relalg.CmpNE {
		return 0.1
	}
	return 1.0 / 3.0
}

// literal resolves a string literal: a date 'YYYY-MM-DD' or a dictionary
// word.
func (p *parser) literal(t token) (int64, error) {
	s := t.text
	if len(s) == 10 && s[4] == '-' && s[7] == '-' && p.opts.Date != nil {
		y, err1 := strconv.Atoi(s[0:4])
		m, err2 := strconv.Atoi(s[5:7])
		d, err3 := strconv.Atoi(s[8:10])
		if err1 == nil && err2 == nil && err3 == nil {
			return p.opts.Date(y, m, d), nil
		}
	}
	if p.opts.Dict != nil {
		if v, ok := p.opts.Dict[strings.ToUpper(s)]; ok {
			return v, nil
		}
	}
	return 0, p.errf(t, "cannot resolve string literal %q (no dictionary entry)", s)
}

func (p *parser) parseGroupBy() error {
	for {
		c, err := p.parseColRef()
		if err != nil {
			return err
		}
		p.groupBy = append(p.groupBy, c)
		if !p.symbol(",") {
			return nil
		}
	}
}

// buildAgg assembles the AggSpec from the select list and GROUP BY.
func (p *parser) buildAgg() error {
	var agg relalg.AggSpec
	hasAgg := false
	for _, it := range p.selects {
		switch {
		case it.sum != nil:
			c, err := p.resolve(*it.sum)
			if err != nil {
				return err
			}
			agg.Sums = append(agg.Sums, c)
			hasAgg = true
		case it.countAll:
			agg.CountAll = true
			hasAgg = true
		case it.countDistinct != nil:
			c, err := p.resolve(*it.countDistinct)
			if err != nil {
				return err
			}
			agg.CountDistinct = append(agg.CountDistinct, c)
			hasAgg = true
		case it.col != nil:
			// Validate the reference even if projection is not part
			// of the optimization problem.
			if _, err := p.resolve(*it.col); err != nil {
				return err
			}
		}
	}
	for _, c := range p.groupBy {
		col, err := p.resolve(c)
		if err != nil {
			return err
		}
		agg.GroupBy = append(agg.GroupBy, col)
		hasAgg = true
	}
	if hasAgg {
		p.q.Agg = &agg
	}
	return nil
}
