// Package sqlmini is a compact SQL front-end for the optimizer: it parses
// single-block SELECT statements — the query class the paper's optimizer
// handles — and resolves them against a catalog into relalg.Query values.
//
// Supported grammar (case-insensitive keywords):
//
//	SELECT <item> [, <item>...]
//	FROM   <table> [AS] <alias> [, ...]
//	[WHERE <conj> [AND <conj>...]]
//	[GROUP BY <col> [, <col>...]]
//
//	item := * | col | SUM(col) | COUNT(*) | COUNT(DISTINCT col)
//	conj := col <cmp> col [<+|-> int] | col <cmp> int | col = 'string'
//	cmp  := = | <> | != | < | <= | > | >=
//	col  := alias.column | column        (unambiguous names may drop the alias)
//
// String literals are resolved through an optional dictionary (the
// workload's integer encodings); dates may be written as integers or
// 'YYYY-MM-DD' and are encoded with the supplied date function.
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input; errors carry byte offsets.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '-' && l.pos == start) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != '\'' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sqlmini: unterminated string literal at offset %d", start)
	}
	l.toks = append(l.toks, token{kind: tokString, text: l.src[start+1 : l.pos], pos: start})
	l.pos++ // closing quote
	return nil
}

var symbols = []string{"<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*", "+", "-"}

func (l *lexer) lexSymbol() error {
	rest := l.src[l.pos:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			l.toks = append(l.toks, token{kind: tokSymbol, text: s, pos: l.pos})
			l.pos += len(s)
			return nil
		}
	}
	return fmt.Errorf("sqlmini: unexpected character %q at offset %d", l.src[l.pos], l.pos)
}
