// Package linearroad implements the streaming side of the evaluation: a
// compact Linear Road-style data generator (bursty car position reports
// with drifting hot segments, our substitute for the benchmark's validated
// generator) and the paper's SegTollS query (Table 2) — a five-way windowed
// self-join over the CarLocStr stream — together with the sliding and
// partitioned window state the query's FROM clause declares.
package linearroad

import (
	"repro/internal/catalog"
	"repro/internal/relalg"
	"repro/internal/stats"
)

// CarLocStr column offsets.
const (
	ColTime = iota
	ColCarID
	ColSpeed
	ColExpway
	ColLane
	ColDir
	ColSeg
	ColXPos
	NumCols
)

// Window table names; each window of the SegTollS FROM clause is
// materialized as its own table so the optimizer sees per-window
// statistics.
var WindowTables = []string{"w1", "w2", "w3", "w4", "w5"}

// SegTollS is the unfolded five-way join of the paper's Table 2:
//
//	SELECT r1_expway, r1_dir, r1_seg, COUNT(DISTINCT r5_xpos)
//	FROM CarLocStr [300 s] r1, [1 tuple BY expway,dir,seg] r2,
//	     [1 tuple BY carid] r3, [30 s] r4, [4 tuples BY carid] r5
//	WHERE r2_expway=r3_expway AND r2_dir=0 AND r3_dir=0
//	  AND r2_seg < r3_seg AND r2_seg > r3_seg-10
//	  AND r3_carid=r4_carid AND r3_carid=r5_carid
//	  AND r1_expway=r2_expway AND r1_dir=r2_dir AND r1_seg=r2_seg
//	GROUP BY r2_expway, r2_dir, r2_seg
func SegTollS() *relalg.Query {
	col := func(rel, off int) relalg.ColID { return relalg.ColID{Rel: rel, Off: off} }
	const (
		R1 = iota
		R2
		R3
		R4
		R5
	)
	q := &relalg.Query{
		Name: "SegTollS",
		Rels: []relalg.RelRef{
			{Alias: "r1", Table: "w1"},
			{Alias: "r2", Table: "w2"},
			{Alias: "r3", Table: "w3"},
			{Alias: "r4", Table: "w4"},
			{Alias: "r5", Table: "w5"},
		},
		Scans: []relalg.ScanPred{
			{Col: col(R2, ColDir), Op: relalg.CmpEQ, Val: 0},
			{Col: col(R3, ColDir), Op: relalg.CmpEQ, Val: 0},
		},
		Joins: []relalg.JoinPred{
			{L: col(R2, ColExpway), R: col(R3, ColExpway)}, // r2_expway = r3_expway
			{L: col(R3, ColCarID), R: col(R4, ColCarID)},   // r3_carid = r4_carid
			{L: col(R3, ColCarID), R: col(R5, ColCarID)},   // r3_carid = r5_carid
			{L: col(R1, ColExpway), R: col(R2, ColExpway)}, // r1_expway = r2_expway
			{L: col(R1, ColDir), R: col(R2, ColDir)},       // r1_dir = r2_dir
			{L: col(R1, ColSeg), R: col(R2, ColSeg)},       // r1_seg = r2_seg
		},
		Filters: []relalg.FilterPred{
			{L: col(R2, ColSeg), R: col(R3, ColSeg), Op: relalg.CmpLT, Sel: 0.5},           // r2_seg < r3_seg
			{L: col(R2, ColSeg), R: col(R3, ColSeg), Op: relalg.CmpGT, Off: -10, Sel: 0.3}, // r2_seg > r3_seg - 10
		},
		Agg: &relalg.AggSpec{
			GroupBy:       []relalg.ColID{col(R2, ColExpway), col(R2, ColDir), col(R2, ColSeg)},
			CountDistinct: []relalg.ColID{col(R5, ColXPos)},
		},
	}
	if err := q.Validate(); err != nil {
		panic(err)
	}
	return q
}

// Windows maintains the five window states of SegTollS over the raw stream:
// two time-sliding windows (300 s and 30 s) and three partitioned last-N
// windows. Ingest applies a batch of reports; Materialize copies current
// window contents into the catalog tables and refreshes their statistics —
// the state-migration substitute described in DESIGN.md (window state is
// the shared state carried across plan switches, as in CAPS).
type Windows struct {
	cat *catalog.Catalog

	w1 *timeWindow // 300 s
	w2 *lastN      // 1 per (expway,dir,seg)
	w3 *lastN      // 1 per carid
	w4 *timeWindow // 30 s
	w5 *lastN      // 4 per carid
}

// NewWindows creates empty windows and their backing catalog with the
// scaled default spans (60 s / 30 s). The paper's Table 2 declares a 300 s
// window for r1; at our report rates and with full per-slice re-execution
// (see DESIGN.md's state-migration substitution) that span makes every
// slice join hundreds of thousands of rows, so the evaluation scales it to
// 60 s — the adaptivity behaviour (drifting selectivities between slices)
// is unchanged. Use NewWindowsSpans(300, 30) for the literal benchmark
// spans.
func NewWindows() *Windows { return NewWindowsSpans(60, 30) }

// NewWindowsSpans creates windows with explicit w1/w4 time spans.
func NewWindowsSpans(w1Span, w4Span int64) *Windows {
	cat := catalog.New()
	cols := []string{"time", "carid", "speed", "expway", "lane", "dir", "seg", "xpos"}
	for _, name := range WindowTables {
		t := catalog.NewTable(name, cols...)
		t.AddIndex("carid")
		t.AddIndex("expway")
		cat.Add(t)
	}
	return &Windows{
		cat: cat,
		w1:  &timeWindow{span: w1Span},
		w2:  &lastN{n: 1, key: func(r []int64) int64 { return r[ColExpway]<<20 | r[ColDir]<<16 | r[ColSeg] }},
		w3:  &lastN{n: 1, key: func(r []int64) int64 { return r[ColCarID] }},
		w4:  &timeWindow{span: w4Span},
		w5:  &lastN{n: 4, key: func(r []int64) int64 { return r[ColCarID] }},
	}
}

// Catalog returns the window-backed catalog (tables w1..w5).
func (w *Windows) Catalog() *catalog.Catalog { return w.cat }

// Ingest applies a batch of reports in timestamp order.
func (w *Windows) Ingest(rows [][]int64) {
	for _, r := range rows {
		w.w1.add(r)
		w.w2.add(r)
		w.w3.add(r)
		w.w4.add(r)
		w.w5.add(r)
	}
}

// Materialize snapshots the window contents into the catalog tables and
// recomputes their statistics.
func (w *Windows) Materialize() {
	snap := [][][]int64{w.w1.rows(), w.w2.rows(), w.w3.rows(), w.w4.rows(), w.w5.rows()}
	for i, name := range WindowTables {
		t := w.cat.MustTable(name)
		t.Rows = snap[i]
		t.Analyze(16)
	}
}

// Data exposes the current window rows for the executor's Data hook; rel is
// the SegTollS relation ordinal.
func (w *Windows) Data(rel int) [][]int64 {
	return w.cat.MustTable(WindowTables[rel]).Rows
}

// timeWindow keeps rows whose timestamp is within span of the newest.
type timeWindow struct {
	span int64
	buf  [][]int64
}

func (tw *timeWindow) add(r []int64) {
	tw.buf = append(tw.buf, r)
	now := r[ColTime]
	i := 0
	for i < len(tw.buf) && tw.buf[i][ColTime] <= now-tw.span {
		i++
	}
	if i > 0 {
		tw.buf = append(tw.buf[:0], tw.buf[i:]...)
	}
}

func (tw *timeWindow) rows() [][]int64 { return append([][]int64(nil), tw.buf...) }

// lastN keeps the most recent n rows per key.
type lastN struct {
	n    int
	key  func([]int64) int64
	byK  map[int64][][]int64
	keys []int64 // insertion order of first sight, for determinism
}

func (l *lastN) add(r []int64) {
	if l.byK == nil {
		l.byK = map[int64][][]int64{}
	}
	k := l.key(r)
	b, seen := l.byK[k]
	if !seen {
		l.keys = append(l.keys, k)
	}
	b = append(b, r)
	if len(b) > l.n {
		b = b[len(b)-l.n:]
	}
	l.byK[k] = b
}

func (l *lastN) rows() [][]int64 {
	var out [][]int64
	for _, k := range l.keys {
		out = append(out, l.byK[k]...)
	}
	return out
}

// Gen produces the synthetic stream: cars on expressways reporting
// positions each second. Burstiness and drift come from a moving "hot"
// region that concentrates a varying fraction of cars on a few segments,
// so different stream slices prefer different join orders — the property
// the adaptive experiments need.
type Gen struct {
	r       *stats.Rand
	numCars int
	cars    []carState
}

type carState struct {
	expway, dir, seg, xpos int64
}

// NewGen creates a generator with the given car population.
func NewGen(seed uint64, numCars int) *Gen {
	g := &Gen{r: stats.NewRand(seed), numCars: numCars}
	g.cars = make([]carState, numCars)
	for i := range g.cars {
		g.cars[i] = carState{
			expway: g.r.Int64n(10),
			dir:    g.r.Int64n(2),
			seg:    g.r.Int64n(100),
			xpos:   g.r.Int64n(528000),
		}
	}
	return g
}

// Slice emits the reports for stream seconds [from, to).
func (g *Gen) Slice(from, to int64) [][]int64 {
	var out [][]int64
	for t := from; t < to; t++ {
		// The hot region drifts over time; burst phases concentrate
		// reporting on it.
		hotExpway := (t / 20) % 10
		hotSeg := (t * 3) % 100
		burst := (t/15)%3 == 0
		for i := range g.cars {
			c := &g.cars[i]
			// move
			if g.r.Intn(4) == 0 {
				c.seg = (c.seg + 1) % 100
			}
			c.xpos = (c.xpos + 50 + g.r.Int64n(100)) % 528000
			// teleport some cars toward the hot region
			if burst && g.r.Intn(3) == 0 {
				c.expway = hotExpway
				c.seg = (hotSeg + g.r.Int64n(5)) % 100
				c.dir = 0
			}
			// report with time-varying probability
			p := 8
			if burst {
				p = 5
			}
			if g.r.Intn(p) != 0 {
				continue
			}
			out = append(out, []int64{
				t, int64(i), 30 + g.r.Int64n(70),
				c.expway, g.r.Int64n(4), c.dir, c.seg, c.xpos,
			})
		}
	}
	return out
}
