package linearroad

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
)

func TestSegTollSValidates(t *testing.T) {
	q := SegTollS()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 5 || len(q.Joins) != 6 || len(q.Filters) != 2 {
		t.Fatalf("SegTollS shape wrong: %d rels %d joins %d filters",
			len(q.Rels), len(q.Joins), len(q.Filters))
	}
	if !q.Connected(q.AllRels()) {
		t.Fatal("SegTollS join graph disconnected")
	}
}

func TestGenDeterministicAndBursty(t *testing.T) {
	a := NewGen(3, 50).Slice(0, 30)
	b := NewGen(3, 50).Slice(0, 30)
	if len(a) != len(b) {
		t.Fatal("generator not deterministic")
	}
	for i := range a {
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				t.Fatal("generator rows differ")
			}
		}
	}
	// Burst phases must vary the per-second report volume.
	perSec := map[int64]int{}
	for _, r := range a {
		perSec[r[ColTime]]++
	}
	min, max := 1<<30, 0
	for _, n := range perSec {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max <= min {
		t.Fatalf("no burstiness: min=%d max=%d", min, max)
	}
}

func TestTimeWindowExpires(t *testing.T) {
	w := &timeWindow{span: 10}
	for ts := int64(0); ts < 25; ts++ {
		w.add([]int64{ts, 0, 0, 0, 0, 0, 0, 0})
	}
	rows := w.rows()
	for _, r := range rows {
		if r[ColTime] <= 24-10 {
			t.Fatalf("expired row retained: t=%d", r[ColTime])
		}
	}
	if len(rows) != 10 {
		t.Fatalf("window rows = %d, want 10", len(rows))
	}
}

func TestLastNCaps(t *testing.T) {
	w := &lastN{n: 2, key: func(r []int64) int64 { return r[ColCarID] }}
	for i := int64(0); i < 5; i++ {
		w.add([]int64{i, 7, 0, 0, 0, 0, 0, i * 100})
	}
	w.add([]int64{9, 8, 0, 0, 0, 0, 0, 0})
	rows := w.rows()
	if len(rows) != 3 {
		t.Fatalf("lastN rows = %d, want 3 (2 for car 7, 1 for car 8)", len(rows))
	}
	// The retained rows for car 7 are the two most recent.
	if rows[0][ColXPos] != 300 || rows[1][ColXPos] != 400 {
		t.Fatalf("lastN kept wrong rows: %v", rows)
	}
}

func TestWindowsIngestAndMaterialize(t *testing.T) {
	gen := NewGen(1, 40)
	win := NewWindows()
	win.Ingest(gen.Slice(0, 20))
	win.Materialize()
	cat := win.Catalog()
	for _, name := range WindowTables {
		tb := cat.MustTable(name)
		if tb.NumRows == 0 {
			t.Fatalf("window %s empty after 20s of stream", name)
		}
		if tb.Cols[ColCarID].Hist == nil {
			t.Fatalf("window %s missing statistics", name)
		}
	}
	// w2 and w3 are 1-per-key windows.
	w3 := cat.MustTable("w3")
	seen := map[int64]bool{}
	for _, r := range w3.Rows {
		if seen[r[ColCarID]] {
			t.Fatal("w3 has more than one row per car")
		}
		seen[r[ColCarID]] = true
	}
}

// TestSegTollSExecutesConsistently: the optimal and the worst plan for
// SegTollS over live windows return identical result multisets.
func TestSegTollSExecutesConsistently(t *testing.T) {
	gen := NewGen(2, 60)
	win := NewWindows()
	win.Ingest(gen.Slice(0, 40))
	win.Materialize()

	q := SegTollS()
	m, err := cost.NewModel(q, win.Catalog(), cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.New(m, relalg.DefaultSpace(), core.PruneNone)
	if err != nil {
		t.Fatal(err)
	}
	best, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	worst, err := o.WorstPlan()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *relalg.Plan) []exec.Row {
		// Execute through the vectorized path with parallel window
		// scans enabled — the aggregate output order is deterministic
		// regardless.
		comp := &exec.Compiler{Q: q, Cat: win.Catalog(), Data: win.Data, Parallelism: 4}
		v, _, err := comp.CompileVec(p)
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, p.Explain(q))
		}
		rows, err := exec.DrainVec(v)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(best), run(worst)
	if len(a) != len(b) {
		t.Fatalf("plan results differ: %d vs %d groups", len(a), len(b))
	}
	for i := range a {
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				t.Fatalf("group row %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
	if len(a) == 0 {
		t.Fatal("SegTollS produced no groups; generator or windows broken")
	}
}
