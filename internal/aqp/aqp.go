// Package aqp implements the adaptive query processing loop of §5.4: the
// data-partitioned model of Ives et al. [15], in which the system pauses at
// "split points" between stream slices, re-estimates costs from observed
// execution statistics, re-optimizes (incrementally or from scratch), and
// continues executing — migrating window state across plan switches in the
// manner of CAPS [26] (the windows are the shared state; operator state is
// rebuilt from them at a switch, and that rebuild cost is charged to
// execution time).
package aqp

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
)

// Strategy selects how the controller chooses plans at split points.
type Strategy int

const (
	// Incremental re-optimizes with the paper's incremental declarative
	// optimizer: only state affected by the feedback deltas is repaired.
	Incremental Strategy = iota
	// FullReopt re-runs a complete optimization from scratch at every
	// split point — the non-incremental comparator (Tukwila-style [15]).
	FullReopt
	// Static executes a fixed plan and never re-optimizes.
	Static
)

func (s Strategy) String() string {
	switch s {
	case Incremental:
		return "incremental"
	case FullReopt:
		return "full-reopt"
	case Static:
		return "static"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Config assembles a controller.
type Config struct {
	Query   *relalg.Query
	Cat     *catalog.Catalog // statistics source at construction time
	Params  cost.Params
	Space   relalg.SpaceOptions
	Pruning core.Pruning

	Strategy Strategy
	// Cumulative selects whether feedback factors are derived from
	// cumulatively averaged observations (the paper's AQP-Cumulative) or
	// from the last slice only (AQP-NonCumulative, which "fits" the plan
	// to local data characteristics).
	Cumulative bool
	// StaticPlan is required for Strategy == Static.
	StaticPlan *relalg.Plan
	// FeedbackThreshold suppresses feedback whose factor is within this
	// relative distance of the previously applied one (default 0.2): a
	// cost update that would not change any decision is not worth
	// propagating, and it is what lets re-optimization overhead converge
	// to zero as statistics stabilize (Figure 9).
	FeedbackThreshold float64
	// Parallelism caps the workers of the vectorized executor's
	// morsel-driven parallelism during slice execution — full fused
	// pipelines (scan → join probes → partial aggregation) where the plan
	// shape allows, parallel leaf scans otherwise; <= 1 is serial.
	// Feedback cardinalities are exact at any setting, so the adaptive
	// loop is unaffected by the parallelism choice.
	Parallelism int
	// DisableColumnar executes slices through the row-at-a-time engine
	// behind a batch adapter instead of the columnar operators — the
	// layout A/B switch, forwarded to exec.Compiler. Feedback
	// cardinalities are identical either way.
	DisableColumnar bool
	// MemBudgetBytes bounds each slice execution's tracked memory,
	// forwarded to exec.Compiler: hash joins and aggregations spill under
	// grace hashing instead of exceeding it. Feedback cardinalities are
	// byte-identical with spilling on or off, so the adaptive loop is
	// unaffected by the budget choice. 0 executes unbounded.
	MemBudgetBytes int64
}

// SliceResult reports one split-point round trip.
type SliceResult struct {
	Reopt    time.Duration
	Exec     time.Duration
	Rows     int64 // result rows produced
	Plan     *relalg.Plan
	Switched bool // plan differs from the previous slice's
	Touched  int  // optimizer entries touched by the incremental repair
	BestCost float64
}

// Controller drives the adaptive loop. Not safe for concurrent use.
type Controller struct {
	cfg   Config
	model *cost.Model
	opt   *core.Optimizer // Incremental strategy

	lastSig string
	first   bool

	cal     *Calibrator               // observation → factor calibration
	pending map[relalg.RelSet]float64 // staged factors for the next reopt
}

// NewController builds the controller. The cost model snapshots the
// catalog's statistics now ("the optimizer starts with zero statistical
// information" when the window tables are still empty); all later knowledge
// arrives through feedback factors.
func NewController(cfg Config) (*Controller, error) {
	m, err := cost.NewModel(cfg.Query, cfg.Cat, cfg.Params)
	if err != nil {
		return nil, err
	}
	if cfg.FeedbackThreshold == 0 {
		cfg.FeedbackThreshold = 0.2
	}
	c := &Controller{
		cfg: cfg, model: m, first: true,
		cal:     NewCalibrator(cfg.Cumulative, cfg.FeedbackThreshold),
		pending: map[relalg.RelSet]float64{},
	}
	if cfg.Strategy == Incremental {
		opt, err := core.New(m, cfg.Space, cfg.Pruning)
		if err != nil {
			return nil, err
		}
		c.opt = opt
	}
	if cfg.Strategy == Static && cfg.StaticPlan == nil {
		return nil, fmt.Errorf("aqp: Static strategy requires StaticPlan")
	}
	return c, nil
}

// Model exposes the controller's cost model (for inspection in tests).
func (c *Controller) Model() *cost.Model { return c.model }

// RunSlice performs one split-point round: re-optimize under the feedback
// staged from the previous slice, then execute the chosen plan over the
// current window contents supplied by data.
func (c *Controller) RunSlice(data func(rel int) [][]int64) (SliceResult, error) {
	var res SliceResult

	start := time.Now()
	var plan *relalg.Plan
	var err error
	switch c.cfg.Strategy {
	case Static:
		plan = c.cfg.StaticPlan
	case Incremental:
		for s, f := range c.pending {
			c.opt.UpdateCardFactor(s, f)
		}
		if c.first {
			plan, err = c.opt.Optimize()
		} else {
			plan, err = c.opt.Reoptimize()
		}
		if err == nil {
			res.Touched = c.opt.Metrics().TouchedEntries
		}
	case FullReopt:
		for s, f := range c.pending {
			c.model.SetCardFactor(s, f)
		}
		// A complete fresh optimization over the same model: all
		// state rebuilt from scratch, as a non-incremental
		// re-optimizer must.
		var opt *core.Optimizer
		opt, err = core.New(c.model, c.cfg.Space, c.cfg.Pruning)
		if err == nil {
			plan, err = opt.Optimize()
			res.Touched = opt.Metrics().TouchedEntries
		}
	}
	if err != nil {
		return res, err
	}
	clearMap(c.pending)
	res.Reopt = time.Since(start)
	res.Plan = plan
	res.BestCost = plan.Cost
	sig := plan.Signature()
	res.Switched = !c.first && sig != c.lastSig
	c.lastSig = sig
	c.first = false

	// Execute over the current windows with the vectorized executor and
	// collect actual cardinalities.
	start = time.Now()
	comp := &exec.Compiler{Q: c.cfg.Query, Cat: c.cfg.Cat, Data: data,
		Parallelism: c.cfg.Parallelism, DisableColumnar: c.cfg.DisableColumnar,
		MemBudgetBytes: c.cfg.MemBudgetBytes}
	v, stats, err := comp.CompileVec(plan)
	if err != nil {
		return res, err
	}
	n, err := exec.CountVec(v)
	if err != nil {
		return res, err
	}
	res.Exec = time.Since(start)
	res.Rows = n

	c.observe(stats)
	return res, nil
}

// observe converts the executed plan's actual cardinalities into staged
// feedback factors for the next split point, delegating the calibration
// math to the shared Calibrator (see calibrate.go). The pending map
// re-submits each changed factor at the next RunSlice, which stages the
// delta with the incremental optimizer (the model mutation itself is
// idempotent).
func (c *Controller) observe(stats *exec.RunStats) {
	if c.cfg.Strategy == Static {
		return
	}
	for set, f := range c.cal.Observe(stats.Snapshot(), c.model) {
		c.pending[set] = f
	}
}

// obsForTest exposes the most recent raw observation for an expression
// (test hook).
func (c *Controller) obsForTest(set relalg.RelSet) float64 { return c.cal.LastObs(set) }

func clearMap(m map[relalg.RelSet]float64) {
	for k := range m {
		delete(m, k)
	}
}
