package aqp

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/linearroad"
	"repro/internal/relalg"
)

func runStream(t *testing.T, cfg Config, slices int) []SliceResult {
	t.Helper()
	gen := linearroad.NewGen(11, 80)
	win := linearroad.NewWindows()
	cfg.Query = linearroad.SegTollS()
	cfg.Cat = win.Catalog()
	cfg.Params = cost.DefaultParams()
	cfg.Space = relalg.DefaultSpace()
	if cfg.Pruning == (core.Pruning{}) {
		cfg.Pruning = core.PruneAll
	}
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []SliceResult
	for s := 0; s < slices; s++ {
		win.Ingest(gen.Slice(int64(s*2), int64(s*2+2)))
		win.Materialize()
		res, err := ctl.RunSlice(win.Data)
		if err != nil {
			t.Fatalf("slice %d: %v", s, err)
		}
		out = append(out, res)
	}
	return out
}

func TestIncrementalControllerRuns(t *testing.T) {
	res := runStream(t, Config{Strategy: Incremental, Cumulative: true}, 8)
	for i, r := range res {
		if r.Plan == nil || r.BestCost <= 0 {
			t.Fatalf("slice %d: no plan", i)
		}
	}
	if res[0].Switched {
		t.Fatal("first slice cannot be a switch")
	}
}

// TestIncrementalMatchesFullReopt: both strategies see the same stream and
// the same feedback rule, so they must choose plans of identical estimated
// cost at every slice.
func TestIncrementalMatchesFullReopt(t *testing.T) {
	inc := runStream(t, Config{Strategy: Incremental, Cumulative: true}, 8)
	full := runStream(t, Config{Strategy: FullReopt, Cumulative: true}, 8)
	for i := range inc {
		a, b := inc[i].BestCost, full[i].BestCost
		if math.Abs(a-b) > 1e-6*math.Max(1, math.Max(a, b)) {
			t.Fatalf("slice %d: incremental best %v != full-reopt best %v", i, a, b)
		}
	}
}

// TestFeedbackConvergesToZeroTouched: with stable data, the incremental
// optimizer's touched-entry count must drop to zero once feedback factors
// stabilize within the quantization threshold (the Figure 9 effect).
func TestFeedbackConvergesToZeroTouched(t *testing.T) {
	res := runStream(t, Config{Strategy: Incremental, Cumulative: true}, 14)
	zeros := 0
	for _, r := range res[7:] {
		if r.Touched == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatalf("touched entries never converged to zero: %+v", touchedOf(res))
	}
}

func touchedOf(res []SliceResult) []int {
	out := make([]int, len(res))
	for i, r := range res {
		out[i] = r.Touched
	}
	return out
}

// TestFeedbackCalibration: after observing a slice and re-optimizing, the
// model's estimate for every observed expression equals the observation
// (the calibrated-factor property that prevents compounding corrections).
func TestFeedbackCalibration(t *testing.T) {
	gen := linearroad.NewGen(13, 60)
	win := linearroad.NewWindows()
	q := linearroad.SegTollS()
	ctl, err := NewController(Config{
		Query: q, Cat: win.Catalog(), Params: cost.DefaultParams(),
		Space: relalg.DefaultSpace(), Pruning: core.PruneAll,
		Strategy: Incremental, Cumulative: false,
		FeedbackThreshold: 1e-9, // exact calibration for this test
	})
	if err != nil {
		t.Fatal(err)
	}
	win.Ingest(gen.Slice(0, 10))
	win.Materialize()
	if _, err := ctl.RunSlice(win.Data); err != nil {
		t.Fatal(err)
	}
	// Freeze the stream: re-running the same windows must reproduce the
	// same observations, and the calibrated model must predict them.
	res, err := ctl.RunSlice(win.Data)
	if err != nil {
		t.Fatal(err)
	}
	m := ctl.Model()
	for set := range ctl.cal.local {
		est := m.Card(set)
		obs := ctl.obsForTest(set)
		if obs == 0 {
			continue
		}
		if math.Abs(est-obs) > 0.02*math.Max(1, obs) {
			t.Fatalf("calibration off for %v: estimate %v, observed %v (plan %s)",
				set, est, obs, res.Plan.Signature())
		}
	}
}

// TestStaticStrategy: a static controller never switches and spends no
// re-optimization time after the setup.
func TestStaticStrategy(t *testing.T) {
	// Derive some plan first.
	gen := linearroad.NewGen(11, 80)
	win := linearroad.NewWindows()
	q := linearroad.SegTollS()
	m, _ := cost.NewModel(q, win.Catalog(), cost.DefaultParams())
	o, _ := core.New(m, relalg.DefaultSpace(), core.PruneAll)
	win.Ingest(gen.Slice(0, 2))
	win.Materialize()
	plan, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	res := runStream(t, Config{Strategy: Static, StaticPlan: plan}, 5)
	for i, r := range res {
		if r.Switched {
			t.Fatalf("static plan switched at slice %d", i)
		}
		if r.Plan.Signature() != plan.Signature() {
			t.Fatalf("static plan replaced at slice %d", i)
		}
	}
}

func TestStaticRequiresPlan(t *testing.T) {
	if _, err := NewController(Config{
		Query: linearroad.SegTollS(), Cat: linearroad.NewWindows().Catalog(),
		Params: cost.DefaultParams(), Space: relalg.DefaultSpace(),
		Pruning: core.PruneAll, Strategy: Static,
	}); err == nil {
		t.Fatal("static without a plan accepted")
	}
}
