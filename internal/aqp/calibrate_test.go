package aqp

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/fbstore"
	"repro/internal/linearroad"
	"repro/internal/relalg"
)

// TestThresholdSymmetric: the suppression test is the doc-comment's
// "relative distance", measured in ratio space so growth and shrink
// suppress identically. The old |f-prev| <= T*prev form suppressed shrinks
// of up to T*prev but growths of up to T*prev too — asymmetric in ratio
// terms: a factor moving 1.0 -> 0.833 (ratio 1.2) was suppressed while
// 1.0 -> 1.21 (ratio 1.21) was not, yet 0.80 (|delta| = T exactly) was
// also suppressed even though its ratio 1.25 exceeds 1+T.
func TestThresholdSymmetric(t *testing.T) {
	c := NewCalibrator(true, 0.2)
	cases := []struct {
		factor, prev float64
		within       bool
	}{
		{1.2, 1.0, true}, // ratio exactly 1+T
		{1.0, 1.2, true}, // same pair, shrink direction
		{1.0 / 1.2, 1.0, true},
		{1.0, 1.0 / 1.2, true},
		{1.21, 1.0, false},
		{1.0, 1.21, false},
		{0.80, 1.0, false}, // ratio 1.25 > 1+T; old asymmetric test passed it
		{1.0, 0.80, false},
		{5, 5, true},
	}
	for _, tc := range cases {
		if got := c.withinThreshold(tc.factor, tc.prev); got != tc.within {
			t.Errorf("withinThreshold(%v, %v) = %v, want %v", tc.factor, tc.prev, got, tc.within)
		}
	}
}

// TestSharedCalibratorsShareHistory: two calibrators over one store and one
// key translation fold into the same cumulative history, so the second
// calibrator's estimate reflects the first one's observations.
func TestSharedCalibratorsShareHistory(t *testing.T) {
	store := fbstore.New()
	key := func(s relalg.RelSet) string { return "expr" } // one expression
	a := NewSharedCalibrator(store, key, true, 0.2)
	b := NewSharedCalibrator(store, key, true, 0.2)

	set := relalg.Single(0)
	if est := mustFold(a, store, set, 100); est != 100 {
		t.Fatalf("first fold estimate = %v, want 100", est)
	}
	// b sees a's observation in the cumulative average.
	if est := mustFold(b, store, set, 200); est != 150 {
		t.Fatalf("cross-calibrator cumulative estimate = %v, want 150", est)
	}
	if n := store.Len(); n != 1 {
		t.Fatalf("store keys = %d, want 1 shared key", n)
	}
}

func mustFold(c *Calibrator, store *fbstore.StatsStore, set relalg.RelSet, obs float64) float64 {
	return store.Fold(c.keyOf(set), obs, c.Cumulative)
}

// TestWarmStartSeedsAndSuppresses: a calibrator warm-started from a store
// factor installs it in the model and treats a matching re-derivation as
// converged (no emitted change).
func TestWarmStartSeedsAndSuppresses(t *testing.T) {
	store := fbstore.New()
	key := func(s relalg.RelSet) string { return "k" + s.String() }
	store.SetFactor("k{0}", 4.0)

	c := NewSharedCalibrator(store, key, true, 0.2)
	set := relalg.Single(0)
	m, err := cost.NewModel(linearroad.SegTollS(), linearroad.NewWindows().Catalog(), cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if n := c.WarmStart(m, []relalg.RelSet{set}); n != 1 {
		t.Fatalf("warm start seeded %d factors, want 1", n)
	}
	if f, ok := c.local[set]; !ok || f != 4.0 {
		t.Fatalf("local suppression state not primed: %v %v", f, ok)
	}
	if f := m.CardFactor(set); f != 4.0 {
		t.Fatalf("model not seeded: CardFactor = %v, want 4", f)
	}
}

// driftModel builds a cost model over materialized Linear Road windows, so
// base cardinalities are non-degenerate.
func driftModel(t *testing.T) *cost.Model {
	t.Helper()
	gen := linearroad.NewGen(7, 50)
	win := linearroad.NewWindows()
	win.Ingest(gen.Slice(0, 5))
	win.Materialize()
	m, err := cost.NewModel(linearroad.SegTollS(), win.Catalog(), cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCalibratorDecayOverturn: the ageing half of the drift story, measured
// at the calibrator. Both calibrators learn a confidently-wrong 50x factor
// from a long stationary history; after the regime shifts back, the one over
// a decaying store overturns the factor within a few half-lives, while the
// full-history calibrator is still anchored to the dead regime after the
// same number of observations (its average needs O(history) to move).
func TestCalibratorDecayOverturn(t *testing.T) {
	const history, budget = 30, 30
	set := relalg.Single(0)

	overturnAfter := func(store *fbstore.StatsStore) int {
		m := driftModel(t)
		cal := NewSharedCalibrator(store, nil, true, 0.2)
		base := m.Card(set) / m.CardFactor(set)
		obsOld := map[relalg.RelSet]int64{set: int64(50 * base)}
		obsNew := map[relalg.RelSet]int64{set: int64(base)}
		for i := 0; i < history; i++ {
			cal.Observe(obsOld, m)
		}
		if f := m.CardFactor(set); f < 25 {
			t.Fatalf("history did not install the wrong factor (got %v)", f)
		}
		for i := 1; i <= budget; i++ {
			cal.Observe(obsNew, m)
			if m.CardFactor(set) < 2 {
				return i
			}
		}
		return budget + 1 // never overturned within budget
	}

	decayed := overturnAfter(fbstore.NewWithOptions(fbstore.Options{DecayHalfLife: 3}))
	frozen := overturnAfter(fbstore.New())
	if decayed > budget {
		t.Fatalf("decaying calibrator never overturned the stale factor within %d observations", budget)
	}
	if frozen <= budget {
		t.Fatalf("full-history control overturned after %d observations — drift control is broken", frozen)
	}
	t.Logf("overturn: decayed after %d observations, frozen control still wrong after %d", decayed, budget)
}
