package aqp

import (
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/fbstore"
	"repro/internal/relalg"
)

// Calibrator converts observed per-expression cardinalities into calibrated
// cost-model feedback factors (§5.2.2: "re-optimized given the cumulatively
// observed statistics"). It is the feedback half of the adaptive loop,
// factored out so that the split-point Controller and the serving layer's
// shared plan cache (internal/server) derive factors identically: the server
// is the same loop, driven by prepared-statement executions instead of
// stream slices.
//
// Observation state lives in an fbstore.StatsStore rather than in the
// calibrator itself, keyed by a canonical subexpression fingerprint so the
// state is meaningful beyond the one query whose RelSets index it. A private
// store (NewCalibrator) reproduces the classic per-query behavior; a shared
// store (NewSharedCalibrator, used by the server) makes every calibrator a
// reader and writer of one workload-wide statistics plane: structurally
// different queries over the same tables calibrate against the same
// cumulative history, and WarmStart seeds a fresh model with factors other
// queries already converged to.
//
// The store's ageing policy (fbstore.Options) flows straight through the
// calibrator: when the store decays its cumulative sums, the estimate Fold
// returns is an exponentially weighted average, so under data drift the
// factors Observe emits overturn a confidently-wrong correction in
// O(half-life) observations instead of O(history) — and once a fingerprint
// crosses the staleness horizon, Factor reports it unknown and WarmStart
// stops seeding it, so dead statistics cannot poison a fresh model.
//
// Factors are CALIBRATED: overrides compose multiplicatively up the subset
// lattice (an override on S scales every expression containing S), so the
// factor for S must be computed against the estimate that already includes
// the corrections inherited from S's subexpressions — otherwise child and
// parent corrections double-count and compound to absurd cardinalities.
// Observations are therefore processed in ascending expression size, each
// factor chosen so that the corrected estimate equals the observation.
//
// A Calibrator is not safe for concurrent use; callers serialize it together
// with the cost.Model it feeds (the Controller is single-threaded, the
// server holds the per-cache-entry mutex). The shared store underneath is
// concurrency-safe on its own.
type Calibrator struct {
	// Cumulative selects whether factors derive from cumulatively averaged
	// observations (the paper's AQP-Cumulative) or from the last execution
	// only (AQP-NonCumulative, which "fits" the plan to local data).
	Cumulative bool
	// Threshold suppresses feedback whose factor is within this relative
	// distance of the previously applied one: a cost update that would not
	// change any decision is not worth propagating, and it is what lets
	// re-optimization overhead converge to zero as statistics stabilize
	// (Figure 9). The distance is measured in ratio space —
	// max(f,prev)/min(f,prev)-1 <= Threshold — so growth and shrink
	// suppress symmetrically.
	Threshold float64

	store *fbstore.StatsStore
	key   func(relalg.RelSet) string // RelSet -> canonical store key
	keys  map[relalg.RelSet]string   // memoized translations
	local map[relalg.RelSet]float64  // factor installed in THIS model
}

// NewCalibrator builds a calibrator over a private statistics store;
// threshold 0 selects the default 0.2. Observation state is keyed by the
// query's own RelSets, so behavior matches the classic per-query calibrator.
func NewCalibrator(cumulative bool, threshold float64) *Calibrator {
	return NewSharedCalibrator(fbstore.New(), nil, cumulative, threshold)
}

// NewSharedCalibrator builds a calibrator over a shared statistics store.
// key translates the caller's positional RelSets into the store's canonical
// fingerprints (typically relalg.Fingerprinter.Fingerprint for the same
// query); nil keys by the RelSet itself, which is only meaningful when the
// store is private.
func NewSharedCalibrator(store *fbstore.StatsStore, key func(relalg.RelSet) string, cumulative bool, threshold float64) *Calibrator {
	if threshold == 0 {
		threshold = 0.2
	}
	if key == nil {
		key = func(s relalg.RelSet) string { return s.String() }
	}
	return &Calibrator{
		Cumulative: cumulative,
		Threshold:  threshold,
		store:      store,
		key:        key,
		keys:       map[relalg.RelSet]string{},
		local:      map[relalg.RelSet]float64{},
	}
}

// keyOf memoizes the RelSet -> store-key translation: each entry's local
// sets are translated to fingerprints once and reused on every execution.
func (c *Calibrator) keyOf(set relalg.RelSet) string {
	k, ok := c.keys[set]
	if !ok {
		k = c.key(set)
		c.keys[set] = k
	}
	return k
}

// withinThreshold reports whether factor is within the relative distance
// Threshold of prev, measured symmetrically in ratio space.
func (c *Calibrator) withinThreshold(factor, prev float64) bool {
	hi, lo := factor, prev
	if hi < lo {
		hi, lo = lo, hi
	}
	return hi/lo-1 <= c.Threshold
}

// Observe folds one execution's observed cardinalities (a RunStats.Snapshot)
// into the shared calibration state, applies the resulting override factors
// to the model, and returns the factors that moved beyond the threshold —
// empty when statistics have converged and no re-optimization is warranted.
// Each returned factor has already been installed with Model.SetCardFactor;
// incremental callers additionally stage it with Optimizer.UpdateCardFactor
// (the model mutation is idempotent).
func (c *Calibrator) Observe(cards map[relalg.RelSet]int64, m *cost.Model) map[relalg.RelSet]float64 {
	sets := make([]relalg.RelSet, 0, len(cards))
	for set := range cards {
		sets = append(sets, set)
	}
	sort.Slice(sets, func(i, j int) bool {
		if sets[i].Count() != sets[j].Count() {
			return sets[i].Count() < sets[j].Count()
		}
		return sets[i] < sets[j]
	})
	var changed map[relalg.RelSet]float64
	for _, set := range sets {
		obs := float64(cards[set])
		if obs < 0.5 {
			obs = 0.5 // zero observations still carry information
		}
		est := c.store.Fold(c.keyOf(set), obs, c.Cumulative)
		// Estimate for set under the corrections applied so far,
		// excluding set's own current factor.
		inherited := m.Card(set) / m.CardFactor(set)
		factor := est / inherited
		factor = math.Min(math.Max(factor, 1e-6), 1e9)
		prev, ok := c.local[set]
		if ok && c.withinThreshold(factor, prev) {
			continue // statistically unchanged; no delta worth emitting
		}
		c.local[set] = factor
		c.store.SetFactor(c.keyOf(set), factor)
		if changed == nil {
			changed = map[relalg.RelSet]float64{}
		}
		changed[set] = factor
		// Apply immediately so larger sets in this batch calibrate
		// against it.
		m.SetCardFactor(set, factor)
	}
	return changed
}

// WarmStart seeds the model with the factors the shared store already holds
// for the candidate expressions, before the model's first optimization, and
// primes the suppression state so that a first execution whose observations
// match the workload's converged statistics triggers no repair at all. It
// returns the number of factors seeded. Factors compose multiplicatively up
// the subset lattice exactly as they did in the queries that learned them,
// so seeding every known subset reproduces the converged estimates.
func (c *Calibrator) WarmStart(m *cost.Model, sets []relalg.RelSet) int {
	n := 0
	for _, set := range sets {
		f, ok := c.store.Factor(c.keyOf(set))
		if !ok {
			continue
		}
		c.local[set] = f
		m.SetCardFactor(set, f)
		n++
	}
	return n
}

// LastObs returns the most recent raw observation for an expression (0 when
// never observed).
func (c *Calibrator) LastObs(set relalg.RelSet) float64 {
	return c.store.LastObs(c.keyOf(set))
}
