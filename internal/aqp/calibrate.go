package aqp

import (
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/relalg"
)

// Calibrator converts observed per-expression cardinalities into calibrated
// cost-model feedback factors (§5.2.2: "re-optimized given the cumulatively
// observed statistics"). It is the feedback half of the adaptive loop,
// factored out so that the split-point Controller and the serving layer's
// shared plan cache (internal/server) derive factors identically: the server
// is the same loop, driven by prepared-statement executions instead of
// stream slices.
//
// Factors are CALIBRATED: overrides compose multiplicatively up the subset
// lattice (an override on S scales every expression containing S), so the
// factor for S must be computed against the estimate that already includes
// the corrections inherited from S's subexpressions — otherwise child and
// parent corrections double-count and compound to absurd cardinalities.
// Observations are therefore processed in ascending expression size, each
// factor chosen so that the corrected estimate equals the observation.
//
// A Calibrator is not safe for concurrent use; callers serialize it together
// with the cost.Model it feeds (the Controller is single-threaded, the
// server holds the per-cache-entry mutex).
type Calibrator struct {
	// Cumulative selects whether factors derive from cumulatively averaged
	// observations (the paper's AQP-Cumulative) or from the last execution
	// only (AQP-NonCumulative, which "fits" the plan to local data).
	Cumulative bool
	// Threshold suppresses feedback whose factor is within this relative
	// distance of the previously applied one: a cost update that would not
	// change any decision is not worth propagating, and it is what lets
	// re-optimization overhead converge to zero as statistics stabilize
	// (Figure 9).
	Threshold float64

	obsSum  map[relalg.RelSet]float64 // sum of observations per expression
	obsN    map[relalg.RelSet]float64 // number of observations
	applied map[relalg.RelSet]float64 // last factor actually emitted
	lastObs map[relalg.RelSet]float64 // most recent raw observations
}

// NewCalibrator builds a calibrator; threshold 0 selects the default 0.2.
func NewCalibrator(cumulative bool, threshold float64) *Calibrator {
	if threshold == 0 {
		threshold = 0.2
	}
	return &Calibrator{
		Cumulative: cumulative,
		Threshold:  threshold,
		obsSum:     map[relalg.RelSet]float64{},
		obsN:       map[relalg.RelSet]float64{},
		applied:    map[relalg.RelSet]float64{},
		lastObs:    map[relalg.RelSet]float64{},
	}
}

// Observe folds one execution's observed cardinalities (a RunStats.Snapshot)
// into the calibration state, applies the resulting override factors to the
// model, and returns the factors that moved beyond the threshold — empty
// when statistics have converged and no re-optimization is warranted. Each
// returned factor has already been installed with Model.SetCardFactor;
// incremental callers additionally stage it with Optimizer.UpdateCardFactor
// (the model mutation is idempotent).
func (c *Calibrator) Observe(cards map[relalg.RelSet]int64, m *cost.Model) map[relalg.RelSet]float64 {
	sets := make([]relalg.RelSet, 0, len(cards))
	for set := range cards {
		sets = append(sets, set)
	}
	sort.Slice(sets, func(i, j int) bool {
		if sets[i].Count() != sets[j].Count() {
			return sets[i].Count() < sets[j].Count()
		}
		return sets[i] < sets[j]
	})
	var changed map[relalg.RelSet]float64
	for _, set := range sets {
		obs := float64(cards[set])
		if obs < 0.5 {
			obs = 0.5 // zero observations still carry information
		}
		c.lastObs[set] = obs
		var est float64
		if c.Cumulative {
			c.obsSum[set] += obs
			c.obsN[set]++
			est = c.obsSum[set] / c.obsN[set]
		} else {
			est = obs
		}
		// Estimate for set under the corrections applied so far,
		// excluding set's own current factor.
		inherited := m.Card(set) / m.CardFactor(set)
		factor := est / inherited
		factor = math.Min(math.Max(factor, 1e-6), 1e9)
		prev, ok := c.applied[set]
		if ok && math.Abs(factor-prev) <= c.Threshold*prev {
			continue // statistically unchanged; no delta worth emitting
		}
		c.applied[set] = factor
		if changed == nil {
			changed = map[relalg.RelSet]float64{}
		}
		changed[set] = factor
		// Apply immediately so larger sets in this batch calibrate
		// against it.
		m.SetCardFactor(set, factor)
	}
	return changed
}

// LastObs returns the most recent raw observation for an expression (0 when
// never observed).
func (c *Calibrator) LastObs(set relalg.RelSet) float64 { return c.lastObs[set] }
