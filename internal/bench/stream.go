package bench

import (
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/linearroad"
	"repro/internal/relalg"
)

// streamRun drives one AQP controller over its own deterministic copy of
// the Linear Road stream (the generator is seeded, so every controller sees
// the identical stream), returning the per-slice results.
func (e *Env) streamRun(cfg aqp.Config, seed uint64, cars int, slices int, sliceSeconds int64) []aqp.SliceResult {
	gen := linearroad.NewGen(seed, cars)
	win := linearroad.NewWindows()
	cfg.Query = linearroad.SegTollS()
	cfg.Cat = win.Catalog()
	cfg.Params = e.Params
	cfg.Space = e.Space
	cfg.Parallelism = e.Parallelism
	cfg.DisableColumnar = e.DisableColumnar
	if cfg.Pruning == (core.Pruning{}) {
		cfg.Pruning = core.PruneAll
	}
	ctl, err := aqp.NewController(cfg)
	if err != nil {
		panic(err)
	}
	var out []aqp.SliceResult
	for s := 0; s < slices; s++ {
		from := int64(s) * sliceSeconds
		win.Ingest(gen.Slice(from, from+sliceSeconds))
		win.Materialize()
		res, err := ctl.RunSlice(win.Data)
		if err != nil {
			panic(fmt.Sprintf("bench: stream slice %d: %v", s, err))
		}
		out = append(out, res)
	}
	return out
}

// goodAndBadPlans derives the Figure 10 static baselines: the "good single
// plan" is the plan an incremental controller converges to after seeing the
// whole stream (complete information), and the "bad plan" follows the most
// expensive alternative at every group under the same converged knowledge.
func (e *Env) goodAndBadPlans(seed uint64, cars int, slices int, sliceSeconds int64) (good, bad *relalg.Plan) {
	gen := linearroad.NewGen(seed, cars)
	win := linearroad.NewWindows()
	q := linearroad.SegTollS()
	ctl, err := aqp.NewController(aqp.Config{
		Query: q, Cat: win.Catalog(), Params: e.Params, Space: e.Space,
		Pruning: core.PruneAll, Strategy: aqp.Incremental, Cumulative: true,
	})
	if err != nil {
		panic(err)
	}
	var last aqp.SliceResult
	for s := 0; s < slices; s++ {
		from := int64(s) * sliceSeconds
		win.Ingest(gen.Slice(from, from+sliceSeconds))
		win.Materialize()
		last, err = ctl.RunSlice(win.Data)
		if err != nil {
			panic(err)
		}
	}
	good = last.Plan

	// Census over the converged model yields every alternative costed;
	// WorstPlan descends the most expensive ones.
	census, err := core.New(ctl.Model(), e.Space, core.PruneNone)
	if err != nil {
		panic(err)
	}
	if _, err := census.Optimize(); err != nil {
		panic(err)
	}
	bad, err = census.WorstPlan()
	if err != nil {
		panic(err)
	}
	return good, bad
}

// Figure9 reproduces Figure 9: per-slice re-optimization time over the
// Linear Road stream — a non-incremental re-optimizer pays a roughly
// constant price per slice while the incremental one converges toward zero.
func (e *Env) Figure9(slices int) *Table {
	const (
		seed  = 7
		cars  = 150
		secs  = 1
		every = 10 // print every k-th slice to keep the table readable
	)
	inc := e.streamRun(aqp.Config{Strategy: aqp.Incremental, Cumulative: true}, seed, cars, slices, secs)
	full := e.streamRun(aqp.Config{Strategy: aqp.FullReopt, Cumulative: true}, seed, cars, slices, secs)

	t := &Table{Title: "Figure 9: AQP re-optimization time per slice (SegTollS, Linear Road)",
		Header: []string{"slice", "non-incremental", "incremental", "inc-touched-entries"}}
	for s := 0; s < slices; s++ {
		if s%every != 0 && s != slices-1 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(s), ms(full[s].Reopt), ms(inc[s].Reopt), fmt.Sprint(inc[s].Touched),
		})
	}
	var incTot, fullTot time.Duration
	for s := range inc {
		incTot += inc[s].Reopt
		fullTot += full[s].Reopt
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("totals over %d slices: non-incremental %s, incremental %s", slices, ms(fullTot), ms(incTot)),
		"paper: non-incremental stays ~constant (~200ms each); incremental drops off rapidly, going to nearly zero")
	return t
}

// Figure10 reproduces Figure 10: cumulative execution time of the bad
// static plan, the good static plan, and the two adaptive schemes.
func (e *Env) Figure10(slices int) *Table {
	const (
		seed = 7
		cars = 150
		secs = 1
	)
	good, bad := e.goodAndBadPlans(seed, cars, slices, secs)

	runs := []struct {
		name string
		cfg  aqp.Config
	}{
		{"BadPlan", aqp.Config{Strategy: aqp.Static, StaticPlan: bad}},
		{"GoodPlan", aqp.Config{Strategy: aqp.Static, StaticPlan: good}},
		{"AQP-Cumulative", aqp.Config{Strategy: aqp.Incremental, Cumulative: true}},
		{"AQP-NonCumulative", aqp.Config{Strategy: aqp.Incremental, Cumulative: false}},
	}
	series := make([][]aqp.SliceResult, len(runs))
	for i, r := range runs {
		series[i] = e.streamRun(r.cfg, seed, cars, slices, secs)
	}

	t := &Table{Title: "Figure 10: AQP cumulative execution time (ms, log-scale in the paper)",
		Header: []string{"slice", runs[0].name, runs[1].name, runs[2].name, runs[3].name}}
	cum := make([]time.Duration, len(runs))
	for s := 0; s < slices; s++ {
		row := []string{fmt.Sprint(s)}
		for i := range runs {
			cum[i] += series[i][s].Exec
			row = append(row, fmt.Sprintf("%.2f", float64(cum[i].Nanoseconds())/1e6))
		}
		if s%3 == 0 || s == slices-1 {
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper: adaptive (re-optimizing every second) beats even the good single static plan, because it fits the plan to the current window; the bad plan is orders of magnitude worse")
	return t
}

// Table3 reproduces Table 3: the adaptation-frequency sweet spot — total
// re-optimization time vs execution time for 1 s / 5 s / 10 s slices over a
// 20-second stream (scaled stream parameters; shape, not absolute values).
func (e *Env) Table3() *Table {
	const (
		seed  = 7
		cars  = 150
		total = int64(60)
	)
	t := &Table{Title: "Table 3: frequency of adaptation (60 s stream)",
		Header: []string{"per-slice", "re-opt time", "exec time", "total"}}
	for _, secs := range []int64{1, 5, 10} {
		slices := int(total / secs)
		res := e.streamRun(aqp.Config{Strategy: aqp.Incremental, Cumulative: false}, seed, cars, slices, secs)
		var reopt, execT time.Duration
		for _, r := range res {
			reopt += r.Reopt
			execT += r.Exec
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%ds", secs), ms(reopt), ms(execT), ms(reopt + execT),
		})
	}
	t.Notes = append(t.Notes,
		"paper (20s stream): 1s slices: 5.75s reopt + 2.20s exec; 5s: 1.23s + 6.82s; 10s: 0.63s + 13.35s — significant gains from 10s to 5s, little more at 1s",
		"re-opt column reproduces the paper's shape (finer slices => more total re-optimization time);",
		"exec column diverges by construction: the paper's continuous engine processes each tuple once regardless",
		"of slice size, whereas this reproduction re-executes over the full window at every split point, so",
		"finer slices also multiply execution work (see DESIGN.md, state-migration substitution)")
	return t
}
