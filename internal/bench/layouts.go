package bench

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// ExecLayouts A/B-compares the executor's two batch layouts on the
// benchmark queries: columnar (typed column vectors, the default) against
// the row-at-a-time engine behind the batch adapter (reprobench
// -columnar=false flips every other figure to the row layout too). Both
// layouts execute the same optimized plan and produce identical results
// and RunStats; the table reports minimum wall time and scan throughput —
// total base-table rows referenced by the query per second of execution.
func (e *Env) ExecLayouts() *Table {
	par := e.Parallelism
	if par < 1 {
		par = 1
	}
	t := &Table{
		Title:  fmt.Sprintf("Executor batch layouts: columnar vs row (parallelism %d)", par),
		Header: []string{"query", "layout", "min-time", "base-rows/sec"},
	}
	for _, q := range []*relalg.Query{tpch.Q1(), tpch.Q3S(), tpch.Q5()} {
		vr, err := volcano.Optimize(e.Model(q), e.Space)
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
		}
		var base int64
		for _, r := range q.Rels {
			tab, err := e.Cat.Table(r.Table)
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
			}
			base += int64(len(tab.Rows))
		}
		for _, layout := range []struct {
			name    string
			disable bool
		}{{"columnar", false}, {"row", true}} {
			comp := &exec.Compiler{Q: q, Cat: e.Cat, Parallelism: e.Parallelism,
				DisableColumnar: layout.disable || e.DisableColumnar}
			d := e.timeIt(func() {
				v, _, err := comp.CompileVec(vr.Plan)
				if err != nil {
					panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
				}
				if _, err := exec.CountVec(v); err != nil {
					panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
				}
			})
			t.Rows = append(t.Rows, []string{q.Name, layout.name,
				d.String(), fmt.Sprintf("%.0f", float64(base)/d.Seconds())})
		}
	}
	t.Notes = append(t.Notes,
		"base-rows/sec = total base-table rows referenced by the query / min wall time")
	return t
}
