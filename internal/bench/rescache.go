package bench

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/rescache"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// ResultCache measures the semantic result cache's spool/probe pair on the
// no-aggregation join queries (the shared join cores a multi-query workload
// re-executes): one uncached execution baseline, the first cache-enabled
// execution (which pays the spooling tee), and the warm steady state where
// probes replace the cacheable subtrees with zero-copy windows over the
// materialized results. warm-speedup is uncached / warm-probe — the ratio
// the ISSUE's ≥2x acceptance bar reads at parallelism 1.
func (e *Env) ResultCache() *Table {
	par := e.Parallelism
	if par < 1 {
		par = 1
	}
	t := &Table{
		Title: fmt.Sprintf("Semantic result cache: spool/probe vs uncached (parallelism %d)", par),
		Header: []string{"query", "cands", "uncached", "spool-first", "warm-probe",
			"warm-speedup", "cached-bytes"},
	}
	for _, q := range []*relalg.Query{tpch.Q3S(), tpch.Q5S(), tpch.Q8JoinS()} {
		vr, err := volcano.Optimize(e.Model(q), e.Space)
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
		}
		fper := relalg.NewFingerprinter(q)
		cands := exec.BuildCacheCandidates(q, vr.Plan, fper, 0)
		run := func(cache *rescache.Cache) {
			comp := &exec.Compiler{Q: q, Cat: e.Cat,
				Parallelism: e.Parallelism, DisableColumnar: e.DisableColumnar,
				Cache: cache, CacheCands: cands}
			v, _, err := comp.CompileVec(vr.Plan)
			if err != nil {
				panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
			}
			if _, err := exec.CountVec(v); err != nil {
				panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
			}
		}
		uncached := e.timeIt(func() { run(nil) })
		cache := rescache.New(rescache.Options{MaxBytes: 256 << 20})
		spool := e.timeOnce(func() { run(cache) })
		warm := e.timeIt(func() { run(cache) })
		met := cache.Metrics()
		t.Rows = append(t.Rows, []string{
			q.Name, fmt.Sprintf("%d", len(cands)),
			uncached.String(), spool.String(), warm.String(),
			fmt.Sprintf("%.1fx", uncached.Seconds()/warm.Seconds()),
			fmt.Sprintf("%d", met.Bytes),
		})
	}
	t.Notes = append(t.Notes,
		"spool-first = first cache-enabled execution (materializes + stores the cacheable subtrees)",
		"warm-probe = steady state, cacheable subtrees served as zero-copy column windows",
		"warm-speedup = uncached / warm-probe")
	return t
}
