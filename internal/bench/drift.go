package bench

import (
	"fmt"

	"repro/internal/driftkit"
	"repro/internal/linearroad"
	"repro/internal/server"
)

// Drift replays the phase-shifted Linear Road scenario through the serving
// layer and renders the adaptation trajectory per phase — repairs, repair
// latency within the phase, re-convergence, and the statistics plane's
// end-of-phase estimation error. The trajectory is read back from the
// server's lifecycle event plane (obs.KindPhase / obs.KindExec), i.e. this
// figure exercises the same scrape surface an operator would watch.
func (e *Env) Drift(execsPerPhase int) *Table {
	if execsPerPhase < 4 {
		execsPerPhase = 4
	}
	sc := driftkit.Scenario{
		Seed:        7,
		Cars:        240,
		QuietWindow: 3,
		Phases: []driftkit.Phase{
			{Name: "warm", Execs: execsPerPhase, Seconds: 30,
				Mutate: func(r []int64) {
					r[linearroad.ColExpway] = r[linearroad.ColCarID] % 10
					r[linearroad.ColSeg] = r[linearroad.ColCarID] % 100
					r[linearroad.ColDir] = 0
				}},
			{Name: "shift", Execs: 2 * execsPerPhase, Seconds: 30,
				Mutate: func(r []int64) {
					r[linearroad.ColExpway] = r[linearroad.ColCarID] % 10
					r[linearroad.ColSeg] = r[linearroad.ColCarID] % 100
					if r[linearroad.ColCarID]%3 == 0 {
						r[linearroad.ColDir] = 0
					} else {
						r[linearroad.ColDir] = 1
					}
				}},
		},
	}
	h := driftkit.New(sc)
	srv, err := server.New(h.Catalog(), server.Options{
		DecayHalfLife: 30, FeedbackThreshold: 0.3,
		Parallelism: e.Parallelism, TraceEvents: 16 * (3 * execsPerPhase),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: drift: %v", err))
	}
	rep, err := h.Run(srv)
	if err != nil {
		panic(fmt.Sprintf("bench: drift: %v", err))
	}

	t := &Table{
		Title:  "Drift adaptation via the event plane (Linear Road, step change after warm)",
		Header: []string{"phase", "execs", "repairs", "first-repair", "last-repair", "reconverged", "est-err"},
	}
	for _, ph := range rep.Phases {
		t.Rows = append(t.Rows, []string{
			ph.Name, fmt.Sprintf("%d", ph.Execs), fmt.Sprintf("%d", ph.Repairs),
			fmt.Sprintf("%d", ph.FirstRepair), fmt.Sprintf("%d", ph.LastRepair),
			fmt.Sprintf("%v", ph.Reconverged), fmt.Sprintf("%.3f", ph.EstimationError),
		})
	}
	m := srv.Metrics()
	t.Notes = append(t.Notes,
		"trajectory reconstructed from the server's lifecycle event ring (Options.TraceEvents)",
		fmt.Sprintf("repair trace: %s", trajectory(rep)),
		fmt.Sprintf("server latency: %s", m.ExecLatency),
	)
	return t
}

// trajectory renders the replay's repair map ('R' repaired, '.' converged),
// phases separated by '|'.
func trajectory(rep *driftkit.Report) string {
	out := ""
	for i, ph := range rep.Phases {
		if i > 0 {
			out += "|"
		}
		for _, p := range rep.Points {
			if p.Phase != ph.Name {
				continue
			}
			if p.Repaired {
				out += "R"
			} else {
				out += "."
			}
		}
	}
	return out
}
