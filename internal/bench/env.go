package bench

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// Env is the shared experimental environment: a generated TPC-H catalog,
// the cost-model parameters, the plan-space options, and the census cache
// (the size of the unpruned search space per query, used as the denominator
// of every pruning and update ratio).
type Env struct {
	Cat    *catalog.Catalog
	Params cost.Params
	Space  relalg.SpaceOptions

	// Repeats controls how many times timed measurements are repeated
	// (the paper averages across 10 runs); the minimum is reported to
	// suppress scheduler noise.
	Repeats int

	// Parallelism is forwarded to the vectorized executor wherever a
	// runner executes plans, enabling fused parallel pipelines and
	// morsel-driven scans; <= 1 keeps execution serial (the default, so
	// figure timings stay comparable to the paper's single-threaded
	// setting). Exposed on the reprobench CLI as -parallelism.
	Parallelism int

	// DisableColumnar routes every plan execution through the
	// row-at-a-time engine behind a batch adapter instead of the columnar
	// operators — the layout A/B switch behind reprobench -columnar=false.
	DisableColumnar bool

	census map[string]census
}

type census struct {
	groups, alts int
}

// NewEnv generates the TPC-H environment.
func NewEnv(cfg tpch.Config) *Env {
	return &Env{
		Cat:     tpch.Generate(cfg),
		Params:  cost.DefaultParams(),
		Space:   relalg.DefaultSpace(),
		Repeats: 5,
		census:  map[string]census{},
	}
}

// Model builds a fresh cost model for q.
func (e *Env) Model(q *relalg.Query) *cost.Model {
	m, err := cost.NewModel(q, e.Cat, e.Params)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return m
}

// Census returns the full (unpruned) search-space size of q: the number of
// plan-table entries (groups) and plan alternatives.
func (e *Env) Census(q *relalg.Query) (groups, alts int) {
	if c, ok := e.census[q.Name]; ok {
		return c.groups, c.alts
	}
	o, err := core.New(e.Model(q), e.Space, core.PruneNone)
	if err != nil {
		panic(err)
	}
	if _, err := o.Optimize(); err != nil {
		panic(fmt.Sprintf("bench: census of %s: %v", q.Name, err))
	}
	m := o.Metrics()
	e.census[q.Name] = census{m.GroupsEnumerated, m.AltsEnumerated}
	return m.GroupsEnumerated, m.AltsEnumerated
}

// timeOnce measures a single, non-repeatable operation.
func (e *Env) timeOnce(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// timeIt runs fn Repeats times and returns the minimum duration.
func (e *Env) timeIt(fn func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < e.Repeats; i++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// volcanoTime measures a fresh Volcano optimization of q under the model's
// current cost parameters.
func (e *Env) volcanoTime(m *cost.Model) time.Duration {
	return e.timeIt(func() {
		if _, err := volcano.Optimize(m, e.Space); err != nil {
			panic(err)
		}
	})
}
