package bench

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// MemoryFigure measures memory-bounded execution on the benchmark queries:
// each query runs once unbounded (tracked, not limited) to establish its
// peak memory, then again under a budget of a quarter of that peak, forcing
// the hash joins and aggregations through the grace-hash spill path. The
// table reports the tracked peak, the spill volume (partition files, bytes,
// recursive repartitions) and the wall-time cost of going out of core.
// Results and cardinality feedback are byte-identical between the two runs
// by construction (asserted by the differential tests in internal/exec);
// the row counts are cross-checked here anyway.
func (e *Env) MemoryFigure() *Table {
	par := e.Parallelism
	if par < 1 {
		par = 1
	}
	t := &Table{
		Title:  fmt.Sprintf("Memory-bounded execution: unbounded vs budgeted peak and spill volume (parallelism %d)", par),
		Header: []string{"query", "budget", "peak-bytes", "overage", "spill-parts", "spill-bytes", "recursions", "rows", "min-time"},
	}
	const minBudget = 64 << 10
	for _, q := range []*relalg.Query{tpch.Q1(), tpch.Q3S(), tpch.Q5(), tpch.Q10()} {
		vr, err := volcano.Optimize(e.Model(q), e.Space)
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
		}
		run := func(budget int64) (*exec.MemTracker, int64, time.Duration) {
			var mem *exec.MemTracker
			var rows int64
			d := e.timeIt(func() {
				// A compiler carrying a tracker is single-execution, so
				// each repetition compiles fresh.
				mem = exec.NewMemTracker(budget)
				comp := &exec.Compiler{Q: q, Cat: e.Cat, Parallelism: e.Parallelism,
					DisableColumnar: e.DisableColumnar, MemBudgetBytes: budget, Mem: mem}
				v, _, err := comp.CompileVec(vr.Plan)
				if err != nil {
					panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
				}
				n, err := exec.CountVec(v)
				if err != nil {
					panic(fmt.Sprintf("bench: %s: %v", q.Name, err))
				}
				rows = n
			})
			return mem, rows, d
		}
		free, freeRows, freeTime := run(0)
		budget := free.Peak() / 4
		if budget < minBudget {
			budget = minBudget
		}
		bounded, boundedRows, boundedTime := run(budget)
		if boundedRows != freeRows {
			panic(fmt.Sprintf("bench: %s: budgeted run returned %d rows, unbounded %d",
				q.Name, boundedRows, freeRows))
		}
		t.Rows = append(t.Rows, []string{q.Name, "unbounded",
			fmt.Sprint(free.Peak()), "0", "0", "0", "0",
			fmt.Sprint(freeRows), freeTime.String()})
		parts, bytes, recs := bounded.SpillStats()
		t.Rows = append(t.Rows, []string{q.Name, fmt.Sprint(budget),
			fmt.Sprint(bounded.Peak()), fmt.Sprint(bounded.Overage()),
			fmt.Sprint(parts), fmt.Sprint(bytes), fmt.Sprint(recs),
			fmt.Sprint(boundedRows), boundedTime.String()})
	}
	t.Notes = append(t.Notes,
		"budget = unbounded peak / 4 (min 64KiB); overage = bytes Force-charged past the budget by non-spillable operators",
		"peak-bytes <= budget whenever overage is 0: the spill path keeps tracked memory under the bound")
	return t
}
