package bench

import (
	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/tpch"
)

// AblationSearchOrder compares depth-first against breadth-first expansion
// scheduling (the design choice called out in DESIGN.md §5 and in the
// paper's §2.3 remark that any search order is admissible): correctness is
// identical, pruning effectiveness differs.
func (e *Env) AblationSearchOrder() *Table {
	t := &Table{Title: "Ablation: expansion order (full pruning, alive alternatives after initial optimization)",
		Header: []string{"query", "census-alts", "depth-first", "breadth-first"}}
	for _, q := range tpch.JoinWorkload() {
		_, ca := e.Census(q)
		run := func(breadth bool) int {
			o, err := core.New(e.Model(q), e.Space, core.PruneAll)
			if err != nil {
				panic(err)
			}
			o.SetBreadthFirst(breadth)
			if _, err := o.Optimize(); err != nil {
				panic(err)
			}
			return o.Metrics().AltsCosted
		}
		t.Rows = append(t.Rows, []string{q.Name,
			itoa(ca), itoa(run(false)), itoa(run(true))})
	}
	t.Notes = append(t.Notes,
		"costed alternatives: lower is better pruning; both orders find the identical optimum (verified by tests)")
	return t
}

// AblationPlanSpace measures how each plan-space feature (bushy trees,
// merge joins, index nested-loops) affects the optimum and the space size —
// the classic System-R left-deep restriction appears as footnote 1 in the
// paper.
func (e *Env) AblationPlanSpace() *Table {
	t := &Table{Title: "Ablation: plan-space features (Q5; best cost and census size)",
		Header: []string{"space", "best-cost", "census-groups", "census-alts"}}
	q := tpch.Q5()
	variants := []struct {
		name  string
		space relalg.SpaceOptions
	}{
		{"full", relalg.DefaultSpace()},
		{"left-deep", func() relalg.SpaceOptions { s := relalg.DefaultSpace(); s.LeftDeepOnly = true; return s }()},
		{"no-mergejoin", func() relalg.SpaceOptions { s := relalg.DefaultSpace(); s.MergeJoin = false; return s }()},
		{"no-indexnl", func() relalg.SpaceOptions { s := relalg.DefaultSpace(); s.IndexNL = false; return s }()},
		{"hash-only", relalg.SpaceOptions{HashJoin: true, SortEnforcer: true}},
	}
	for _, v := range variants {
		o, err := core.New(e.Model(q), v.space, core.PruneNone)
		if err != nil {
			panic(err)
		}
		plan, err := o.Optimize()
		if err != nil {
			panic(err)
		}
		m := o.Metrics()
		t.Rows = append(t.Rows, []string{v.name, f3(plan.Cost),
			itoa(m.GroupsEnumerated), itoa(m.AltsEnumerated)})
	}
	return t
}

func itoa(v int) string { return f0(float64(v)) }

func f0(v float64) string {
	if v == float64(int64(v)) {
		return trimZeros(v)
	}
	return f2(v)
}

func trimZeros(v float64) string {
	s := f2(v)
	for len(s) > 0 && (s[len(s)-1] == '0') {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
