package bench

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/tpch"
)

func smokeEnv() *Env {
	e := NewEnv(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	e.Repeats = 1
	return e
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("ratio cell %q: %v", s, err)
	}
	return v
}

// TestFigure4Shape validates the qualitative claims of Figure 4 on a small
// environment: Evita never prunes plan-table entries, the declarative
// configuration prunes both axes, and all ratios are proper fractions.
func TestFigure4Shape(t *testing.T) {
	tables := smokeEnv().Figure4()
	if len(tables) != 3 {
		t.Fatalf("Figure4 returned %d tables", len(tables))
	}
	groups := tables[1]
	alts := tables[2]
	for _, row := range groups.Rows {
		decl := parseRatio(t, row[1])
		evita := parseRatio(t, row[2])
		if evita != 0 {
			t.Fatalf("%s: evita pruned plan table entries: %v", row[0], evita)
		}
		if decl <= 0 || decl > 1 {
			t.Fatalf("%s: declarative group pruning ratio %v out of (0,1]", row[0], decl)
		}
	}
	for _, row := range alts.Rows {
		decl := parseRatio(t, row[1])
		evita := parseRatio(t, row[2])
		if decl <= evita {
			t.Fatalf("%s: declarative (%v) should out-prune evita (%v)", row[0], decl, evita)
		}
	}
}

// TestFigure5Shape: larger changed expressions touch no more state than
// smaller ones (the paper's monotonicity), and a no-op ratio touches none.
func TestFigure5Shape(t *testing.T) {
	tables := smokeEnv().Figure5()
	altRatios := tables[2]
	for _, row := range altRatios.Rows {
		if row[0] == "1" {
			for i := 1; i < len(row); i++ {
				if parseRatio(t, row[i]) != 0 {
					t.Fatalf("ratio-1 update touched state: %v", row)
				}
			}
			continue
		}
		// Monotone non-increasing from A (smallest) to E (largest).
		prev := 2.0
		for i := 1; i < len(row); i++ {
			v := parseRatio(t, row[i])
			if v > prev+1e-9 {
				t.Fatalf("update ratio not monotone along the chain: %v", row)
			}
			prev = v
		}
	}
}

func TestFigure6Runs(t *testing.T) {
	tables := smokeEnv().Figure6(4, 0.5)
	if len(tables) != 3 || len(tables[0].Rows) != 3 {
		t.Fatalf("Figure6 shape wrong: %d tables", len(tables))
	}
}

func TestFigure7Shape(t *testing.T) {
	tables := smokeEnv().Figure7()
	prune := tables[1]
	for _, row := range prune.Rows {
		aggsel := parseRatio(t, row[1])
		withRef := parseRatio(t, row[2])
		if withRef < aggsel-1e-9 {
			t.Fatalf("%s: refcount reduced group pruning (%v -> %v)", row[0], aggsel, withRef)
		}
	}
}

func TestFigure8Runs(t *testing.T) {
	tables := smokeEnv().Figure8()
	if len(tables) != 3 || len(tables[0].Rows) != len(Figure5Ratios) {
		t.Fatal("Figure8 shape wrong")
	}
}

func TestStreamFiguresRun(t *testing.T) {
	e := smokeEnv()
	f9 := e.Figure9(12)
	if len(f9.Rows) == 0 {
		t.Fatal("Figure9 empty")
	}
	f10 := e.Figure10(9)
	if len(f10.Rows) == 0 {
		t.Fatal("Figure10 empty")
	}
	// Cumulative execution time columns must be non-decreasing.
	var last [4]float64
	for _, row := range f10.Rows {
		for c := 1; c <= 4; c++ {
			v := parseRatio(t, row[c])
			if v < last[c-1]-1e-9 {
				t.Fatalf("cumulative time decreased in column %d: %v", c, row)
			}
			last[c-1] = v
		}
	}
}

func TestTable3Runs(t *testing.T) {
	tb := smokeEnv().Table3()
	if len(tb.Rows) != 3 {
		t.Fatalf("Table3 rows = %d", len(tb.Rows))
	}
}

func TestSmallQueriesRuns(t *testing.T) {
	tb := smokeEnv().SmallQueries()
	if len(tb.Rows) != 3 {
		t.Fatal("SmallQueries rows wrong")
	}
}

func TestAblationsRun(t *testing.T) {
	e := smokeEnv()
	so := e.AblationSearchOrder()
	if len(so.Rows) == 0 {
		t.Fatal("search-order ablation empty")
	}
	ps := e.AblationPlanSpace()
	if len(ps.Rows) < 4 {
		t.Fatal("plan-space ablation empty")
	}
	// The restricted spaces can never beat the full space's optimum.
	full := parseRatio(t, ps.Rows[0][1])
	for _, row := range ps.Rows[1:] {
		if parseRatio(t, row[1]) < full-1e-6 {
			t.Fatalf("restricted space beat the full space: %v", row)
		}
	}
}

// TestResultCacheFigureShape: the rescache figure runs on the smoke
// environment, produces one row per shared join core, materializes bytes
// into the cache, and reports a warm-probe speedup of at least 1x (the
// ≥2x acceptance bar is read from the full-size benchmark, not the smoke
// run — here only the direction is asserted, since Repeats=1 timings on a
// tiny catalog are noisy).
func TestResultCacheFigureShape(t *testing.T) {
	tb := smokeEnv().ResultCache()
	if len(tb.Rows) != 3 {
		t.Fatalf("ResultCache rows = %d, want 3", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("row width %d != header width %d: %v", len(row), len(tb.Header), row)
		}
		if cands := parseRatio(t, row[1]); cands < 1 {
			t.Fatalf("%s: no cache candidates", row[0])
		}
		speedup := parseRatio(t, strings.TrimSuffix(row[5], "x"))
		if speedup < 1 {
			t.Fatalf("%s: warm probe slower than uncached: %s", row[0], row[5])
		}
		if bytes := parseRatio(t, row[6]); bytes <= 0 {
			t.Fatalf("%s: nothing materialized into the cache", row[0])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "x", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	out := tb.String()
	for _, want := range []string{"== x ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
