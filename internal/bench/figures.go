package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/systemr"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// Figure4 reproduces Figure 4: initial ("from scratch") optimization across
// architectures — (a) running time normalized to Volcano, (b) pruning ratio
// of plan-table entries, (c) pruning ratio of plan alternatives.
func (e *Env) Figure4() []*Table {
	queries := tpch.JoinWorkload()
	ta := &Table{Title: "Figure 4(a): initial optimization time (normalized to Volcano)",
		Header: []string{"query", "volcano(abs)", "volcano", "systemr", "evita", "declarative"}}
	tb := &Table{Title: "Figure 4(b): pruning ratio, plan table entries",
		Header: []string{"query", "declarative", "evita", "volcano"}}
	tc := &Table{Title: "Figure 4(c): pruning ratio, plan alternatives",
		Header: []string{"query", "declarative", "evita", "volcano"}}

	for _, q := range queries {
		cg, ca := e.Census(q)
		m := e.Model(q)

		volT := e.volcanoTime(m)
		vr, err := volcano.Optimize(m, e.Space)
		if err != nil {
			panic(err)
		}
		sysT := e.timeIt(func() { systemr.Optimize(m, e.Space) })

		run := func(mode core.Pruning) (liveG, liveA int, norm float64) {
			d := e.timeIt(func() {
				o, err := core.New(e.Model(q), e.Space, mode)
				if err != nil {
					panic(err)
				}
				if _, err := o.Optimize(); err != nil {
					panic(err)
				}
				liveG, liveA = o.LiveState()
			})
			return liveG, liveA, float64(d) / float64(volT)
		}
		evG, evA, evN := run(core.PruneEvita)
		declG, declA, declN := run(core.PruneAll)

		ta.Rows = append(ta.Rows, []string{q.Name, ms(volT), "1.00",
			f2(float64(sysT) / float64(volT)), f2(evN), f2(declN)})
		tb.Rows = append(tb.Rows, []string{q.Name,
			f2(1 - ratio(declG, cg)),
			f2(1 - ratio(evG, cg)),
			f2(1 - ratio(vr.Metrics.Groups, cg)),
		})
		tc.Rows = append(tc.Rows, []string{q.Name,
			f2(1 - ratio(declA, ca)),
			f2(1 - ratio(evA, ca)),
			f2(1 - ratio(vr.Metrics.CostedAlts, ca)),
		})
	}
	tb.Notes = append(tb.Notes,
		"paper: declarative prunes 35-80% of plan table entries, Evita Raced 0%")
	tc.Notes = append(tc.Notes,
		"paper: declarative prunes 55-75% of alternatives, 4-8% above Evita Raced")
	return []*Table{ta, tb, tc}
}

// Figure5Ratios is the join-selectivity sweep of Figure 5.
var Figure5Ratios = []float64{0.125, 0.25, 0.5, 1, 2, 4, 8}

// Figure5 reproduces Figure 5: incremental re-optimization of Q5 after a
// synthetic change to one join expression's selectivity — (a) re-opt time
// normalized to a full Volcano optimization, (b) fraction of plan-table
// entries updated, (c) fraction of plan alternatives updated.
func (e *Env) Figure5() []*Table {
	q := tpch.Q5()
	cg, ca := e.Census(q)
	exprs := tpch.Q5Expressions()

	header := []string{"ratio"}
	for _, ex := range exprs {
		header = append(header, ex.Name)
	}
	ta := &Table{Title: "Figure 5(a): Q5 re-optimization time after join-selectivity change (normalized to Volcano)", Header: header}
	tb := &Table{Title: "Figure 5(b): update ratio, plan table entries", Header: header}
	tc := &Table{Title: "Figure 5(c): update ratio, plan alternatives", Header: header}

	m := e.Model(q)
	o, err := core.New(m, e.Space, core.PruneAll)
	if err != nil {
		panic(err)
	}
	if _, err := o.Optimize(); err != nil {
		panic(err)
	}
	volT := e.volcanoTime(e.Model(q))

	for _, r := range Figure5Ratios {
		rowA := []string{fmt.Sprintf("%g", r)}
		rowB := []string{fmt.Sprintf("%g", r)}
		rowC := []string{fmt.Sprintf("%g", r)}
		for _, ex := range exprs {
			var reoptT float64
			var met core.Metrics
			// Alternate the factor with its reset so every timed
			// Reoptimize call propagates a real delta; keep the
			// minimum across repeats, like the paper's averaging
			// across runs.
			for rep := 0; rep < e.Repeats; rep++ {
				o.UpdateCardFactor(ex.Set, r)
				d := e.once(func() {
					if _, err := o.Reoptimize(); err != nil {
						panic(err)
					}
				})
				met = o.Metrics()
				o.UpdateCardFactor(ex.Set, 1)
				if _, err := o.Reoptimize(); err != nil {
					panic(err)
				}
				if rep == 0 || d < reoptT {
					reoptT = d
				}
			}
			rowA = append(rowA, fmt.Sprintf("%.4f", reoptT/float64(volT)))
			rowB = append(rowB, f3(ratio(met.TouchedGroups, cg)))
			rowC = append(rowC, f3(ratio(met.TouchedEntries, ca)))
		}
		ta.Rows = append(ta.Rows, rowA)
		tb.Rows = append(tb.Rows, rowB)
		tc.Rows = append(tc.Rows, rowC)
	}
	ta.Notes = append(ta.Notes,
		"paper: speedups of 12x (lowest join) to 300x (topmost join); larger expressions are cheaper to update")
	return []*Table{ta, tb, tc}
}

// Figure6 reproduces Figure 6: re-optimization of Q5 driven by ACTUAL
// execution feedback over partitions of skewed data — per-round re-opt time
// (normalized to Volcano) and update ratios.
func (e *Env) Figure6(partitions int, skew float64) []*Table {
	q := tpch.Q5()
	cg, ca := e.Census(q)

	m := e.Model(q) // uniform statistics, as the paper optimizes partition 0
	o, err := core.New(m, e.Space, core.PruneAll)
	if err != nil {
		panic(err)
	}
	plan, err := o.Optimize()
	if err != nil {
		panic(err)
	}
	volT := e.volcanoTime(e.Model(q))

	ta := &Table{Title: "Figure 6(a): Q5 re-optimization time from real execution feedback (normalized to Volcano)",
		Header: []string{"round", "reopt/volcano", "reopt(abs)", "plan-changed"}}
	tb := &Table{Title: "Figure 6(b): update ratio, plan table entries",
		Header: []string{"round", "ratio"}}
	tc := &Table{Title: "Figure 6(c): update ratio, plan alternatives",
		Header: []string{"round", "ratio"}}

	// Cumulative observed cardinalities across partitions.
	cum := map[relalg.RelSet]float64{}
	applied := map[relalg.RelSet]float64{}
	n := 0.0
	lastSig := plan.Signature()
	for round := 1; round < partitions; round++ {
		// Each partition is an independently generated skewed catalog
		// (Zipf) with its own seed — "each of which exhibits
		// different properties".
		pcat := tpch.Generate(tpch.Config{
			ScaleFactor:      0.002,
			Skew:             skew,
			Seed:             uint64(1000 + round),
			HistogramBuckets: 16,
		})
		comp := &exec.Compiler{Q: q, Cat: pcat, Parallelism: e.Parallelism,
			DisableColumnar: e.DisableColumnar}
		v, stats, err := comp.CompileVec(plan)
		if err != nil {
			panic(err)
		}
		if _, err := exec.CountVec(v); err != nil {
			panic(err)
		}
		n++
		for set, c := range stats.Cards {
			cum[set] += float64(*c)
		}
		for set, sum := range cum {
			obs := sum / n
			if obs < 0.5 {
				obs = 0.5
			}
			factor := obs / m.CardBase(set)
			// Quantized feedback: skip statistically unchanged
			// factors (within 2x of what the optimizer already
			// believes — the cost model's decisions are stable
			// well beyond that band), as the AQP layer does.
			prev := applied[set]
			if prev != 0 && factor > 0.5*prev && factor < 2*prev {
				continue
			}
			applied[set] = factor
			o.UpdateCardFactor(set, factor)
		}
		d := e.once(func() {
			plan, err = o.Reoptimize()
			if err != nil {
				panic(err)
			}
		})
		met := o.Metrics()
		changed := plan.Signature() != lastSig
		lastSig = plan.Signature()
		ta.Rows = append(ta.Rows, []string{fmt.Sprint(round),
			fmt.Sprintf("%.4f", d/float64(volT)),
			fmt.Sprintf("%.3fms", d/1e6),
			fmt.Sprint(changed)})
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(round), f3(ratio(met.TouchedGroups, cg))})
		tc.Rows = append(tc.Rows, []string{fmt.Sprint(round), f3(ratio(met.TouchedEntries, ca))})
	}
	ta.Notes = append(ta.Notes, "paper: speedups of 10x or greater; 20-60 re-optimizations/second vs Volcano's 2")
	return []*Table{ta, tb, tc}
}

// Figure7Configs are the pruning-strategy combinations of Figures 7 and 8.
func Figure7Configs() []core.Pruning {
	return []core.Pruning{
		core.PruneAggSel,
		core.PruneAggSelRefCount,
		core.PruneAggSelBound,
		core.PruneAll,
	}
}

// Figure7 reproduces Figure 7: the contribution of each pruning strategy to
// initial optimization across the workload.
func (e *Env) Figure7() []*Table {
	queries := tpch.JoinWorkload()
	configs := Figure7Configs()
	header := []string{"query"}
	for _, c := range configs {
		header = append(header, c.String())
	}
	ta := &Table{Title: "Figure 7(a): initial optimization time by pruning config (normalized to Volcano)", Header: header}
	tb := &Table{Title: "Figure 7(b): pruning ratio, plan table entries", Header: header}
	tc := &Table{Title: "Figure 7(c): pruning ratio, plan alternatives", Header: header}

	for _, q := range queries {
		cg, ca := e.Census(q)
		volT := e.volcanoTime(e.Model(q))
		rowA := []string{q.Name}
		rowB := []string{q.Name}
		rowC := []string{q.Name}
		for _, cfg := range configs {
			var liveG, liveA int
			d := e.timeIt(func() {
				o, err := core.New(e.Model(q), e.Space, cfg)
				if err != nil {
					panic(err)
				}
				if _, err := o.Optimize(); err != nil {
					panic(err)
				}
				liveG, liveA = o.LiveState()
			})
			rowA = append(rowA, f2(float64(d)/float64(volT)))
			rowB = append(rowB, f2(1-ratio(liveG, cg)))
			rowC = append(rowC, f2(1-ratio(liveA, ca)))
		}
		ta.Rows = append(ta.Rows, rowA)
		tb.Rows = append(tb.Rows, rowB)
		tc.Rows = append(tc.Rows, rowC)
	}
	ta.Notes = append(ta.Notes, "paper: each technique adds at most ~10% runtime overhead at initial optimization")
	tb.Notes = append(tb.Notes, "paper: each technique adds pruning capability")
	return []*Table{ta, tb, tc}
}

// Figure8 reproduces Figure 8: the pruning strategies during INCREMENTAL
// re-optimization of Q5 when the Orders scan cost changes — re-opt time
// normalized to Volcano, plus the amount of (re)pruning performed.
func (e *Env) Figure8() []*Table {
	q := tpch.Q5()
	cg, ca := e.Census(q)
	configs := Figure7Configs()
	header := []string{"scan-ratio"}
	for _, c := range configs {
		header = append(header, c.String())
	}
	ta := &Table{Title: "Figure 8(a): Q5 re-optimization time, Orders scan-cost sweep (normalized to Volcano)", Header: header}
	tb := &Table{Title: "Figure 8(b): pruning performed during re-opt, plan table entries", Header: header}
	tc := &Table{Title: "Figure 8(c): pruning performed during re-opt, plan alternatives", Header: header}

	volT := e.volcanoTime(e.Model(q))
	for _, r := range Figure5Ratios {
		rowA := []string{fmt.Sprintf("%g", r)}
		rowB := []string{fmt.Sprintf("%g", r)}
		rowC := []string{fmt.Sprintf("%g", r)}
		for _, cfg := range configs {
			m := e.Model(q)
			o, err := core.New(m, e.Space, cfg)
			if err != nil {
				panic(err)
			}
			if _, err := o.Optimize(); err != nil {
				panic(err)
			}
			before := o.Metrics()
			o.UpdateScanCostFactor(tpch.Q5Orders, r)
			d := e.once(func() {
				if _, err := o.Reoptimize(); err != nil {
					panic(err)
				}
			})
			after := o.Metrics()
			rowA = append(rowA, fmt.Sprintf("%.4f", d/float64(volT)))
			flippedGroups := int(after.GroupKills - before.GroupKills + after.GroupRevives - before.GroupRevives)
			flippedAlts := int(after.Suppressions - before.Suppressions + after.Revivals - before.Revivals)
			rowB = append(rowB, f3(ratio(flippedGroups, cg)))
			rowC = append(rowC, f3(ratio(flippedAlts, ca)))
		}
		ta.Rows = append(ta.Rows, rowA)
		tb.Rows = append(tb.Rows, rowB)
		tc.Rows = append(tc.Rows, rowC)
	}
	ta.Notes = append(ta.Notes, "paper: techniques work best in combination; significant running-time benefits in the incremental setting")
	return []*Table{ta, tb, tc}
}

// SmallQueries reproduces the §5.1 remark: Q1, Q3S and Q6 are simple enough
// that every architecture optimizes them quickly (paper: under 80 ms, with
// the declarative engine adding 10-50 ms of startup overhead).
func (e *Env) SmallQueries() *Table {
	t := &Table{Title: "Section 5.1: small-query optimization times",
		Header: []string{"query", "volcano", "systemr", "declarative"}}
	for _, q := range []*relalg.Query{tpch.Q1(), tpch.Q3S(), tpch.Q6()} {
		m := e.Model(q)
		volT := e.volcanoTime(m)
		sysT := e.timeIt(func() { systemr.Optimize(m, e.Space) })
		declT := e.timeIt(func() {
			o, _ := core.New(e.Model(q), e.Space, core.PruneAll)
			if _, err := o.Optimize(); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{q.Name, ms(volT), ms(sysT), ms(declT)})
	}
	return t
}

// once measures a single non-repeatable operation in nanoseconds.
func (e *Env) once(fn func()) float64 {
	d := e.timeOnce(fn)
	return float64(d)
}
