// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§5), each emitting the same rows/series the
// paper reports, as plain text tables. cmd/reprobench drives it and
// bench_test.go wraps each runner in a testing.B benchmark.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	all := append([][]string{t.Header}, t.Rows...)
	width := make([]int, 0)
	for _, r := range all {
		for i, c := range r {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	for ri, r := range all {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range t.Header {
				b.WriteString(strings.Repeat("-", width[i]) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func ms(d time.Duration) string { return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6) }

func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
