package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/relalg"
	"repro/internal/stats"
	"repro/internal/testkit"
)

func testModel(t *testing.T, seed uint64, nRels int) *Model {
	t.Helper()
	r := stats.NewRand(seed)
	cat := testkit.SyntheticCatalog(r, 3)
	q := testkit.RandomQuery(r, cat, nRels)
	m, err := NewModel(q, cat, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCardBasics(t *testing.T) {
	m := testModel(t, 1, 4)
	all := m.Q.AllRels()
	if c := m.Card(all); c <= 0 {
		t.Fatalf("Card(all) = %v", c)
	}
	// Product form: card of a union with a fresh join predicate's
	// selectivity applied never exceeds the product of parts.
	for _, jp := range m.Q.Joins {
		l, r := relalg.Single(jp.L.Rel), relalg.Single(jp.R.Rel)
		u := l.Union(r)
		if m.Card(u) > m.Card(l)*m.Card(r)+1e-9 {
			t.Fatalf("join did not reduce cardinality: %v > %v*%v",
				m.Card(u), m.Card(l), m.Card(r))
		}
	}
}

func TestCardFactorOverrides(t *testing.T) {
	m := testModel(t, 2, 4)
	all := m.Q.AllRels()
	s := relalg.Single(m.Q.Joins[0].L.Rel).Add(m.Q.Joins[0].R.Rel)
	base := m.Card(all)
	sub := m.Card(s)

	m.SetCardFactor(s, 4)
	if got := m.Card(s); math.Abs(got-4*sub) > 1e-6*sub {
		t.Fatalf("Card(s) with factor 4 = %v, want %v", got, 4*sub)
	}
	if got := m.Card(all); math.Abs(got-4*base) > 1e-6*base {
		t.Fatalf("Card(all) must inherit the factor: %v want %v", got, 4*base)
	}
	// A disjoint-from-s expression is unaffected.
	var other relalg.RelSet
	for i := range m.Q.Rels {
		if !s.Has(i) {
			other = relalg.Single(i)
			break
		}
	}
	if !other.Empty() {
		before := m.CardBase(other)
		if got := m.Card(other); math.Abs(got-before) > 1e-9*before {
			t.Fatalf("unrelated expression affected: %v vs %v", got, before)
		}
	}
	if m.CardFactor(s) != 4 {
		t.Fatal("CardFactor lookup wrong")
	}
	m.SetCardFactor(s, 1) // removal
	if got := m.Card(all); math.Abs(got-base) > 1e-6*base {
		t.Fatalf("factor removal did not restore: %v want %v", got, base)
	}
	if m.CardFactor(s) != 1 {
		t.Fatal("factor not removed")
	}
}

func TestEpochBumpsOnOverrides(t *testing.T) {
	m := testModel(t, 3, 3)
	e0 := m.Epoch
	m.SetCardFactor(m.Q.AllRels(), 2)
	if m.Epoch == e0 {
		t.Fatal("epoch not bumped by card factor")
	}
	e1 := m.Epoch
	m.SetScanCostFactor(0, 2)
	if m.Epoch == e1 {
		t.Fatal("epoch not bumped by scan factor")
	}
}

func TestScanCostFactorScalesScans(t *testing.T) {
	m := testModel(t, 4, 3)
	alt := relalg.Alt{Log: relalg.LogScan, Phy: relalg.PhyTableScan, Rel: 0}
	before := m.LocalCost(alt, relalg.Single(0), relalg.AnyProp)
	m.SetScanCostFactor(0, 8)
	after := m.LocalCost(alt, relalg.Single(0), relalg.AnyProp)
	if math.Abs(after-8*before) > 1e-6*before {
		t.Fatalf("scan factor: %v -> %v, want x8", before, after)
	}
}

func TestScanAffects(t *testing.T) {
	scan := relalg.Alt{Log: relalg.LogScan, Phy: relalg.PhyTableScan, Rel: 2}
	if !ScanAffects(scan, 2) || ScanAffects(scan, 1) {
		t.Fatal("ScanAffects scan wrong")
	}
	inl := relalg.Alt{Log: relalg.LogJoin, Phy: relalg.PhyIndexNLJoin,
		LExpr: relalg.Single(1), RExpr: relalg.Single(0).Add(2)}
	if !ScanAffects(inl, 1) || ScanAffects(inl, 0) {
		t.Fatal("ScanAffects index-NL wrong")
	}
	hash := relalg.Alt{Log: relalg.LogJoin, Phy: relalg.PhyHashJoin,
		LExpr: relalg.Single(1), RExpr: relalg.Single(0)}
	if ScanAffects(hash, 1) {
		t.Fatal("hash join must not depend on scan factors")
	}
}

func TestCardDependsOn(t *testing.T) {
	a := relalg.Single(0).Add(1)
	if !CardDependsOn(a.Add(2), a) || CardDependsOn(relalg.Single(0).Add(2), a) {
		t.Fatal("CardDependsOn wrong")
	}
}

// TestLocalCostsPositive: every alternative of every group in random
// queries has a strictly positive finite local cost.
func TestLocalCostsPositive(t *testing.T) {
	prop := func(seed uint64) bool {
		r := stats.NewRand(seed)
		cat := testkit.SyntheticCatalog(r, 3)
		q := testkit.RandomQuery(r, cat, 2+r.Intn(4))
		m, err := NewModel(q, cat, DefaultParams())
		if err != nil {
			return false
		}
		all := q.AllRels()
		var check func(s relalg.RelSet, p relalg.Prop) bool
		seen := map[string]bool{}
		check = func(s relalg.RelSet, p relalg.Prop) bool {
			key := s.String() + p.String()
			if seen[key] {
				return true
			}
			seen[key] = true
			for _, alt := range relalg.Split(q, m, relalg.DefaultSpace(), s, p) {
				c := m.LocalCost(alt, s, p)
				if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
					return false
				}
				if !alt.Leaf() {
					if !check(alt.LExpr, alt.LProp) {
						return false
					}
					if !alt.Unary() && !check(alt.RExpr, alt.RProp) {
						return false
					}
				}
			}
			return true
		}
		return check(all, relalg.AnyProp)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestModelRejectsUnknownTable(t *testing.T) {
	r := stats.NewRand(1)
	cat := testkit.SyntheticCatalog(r, 2)
	q := &relalg.Query{Name: "bad", Rels: []relalg.RelRef{{Alias: "A", Table: "nope"}}}
	if _, err := NewModel(q, cat, DefaultParams()); err == nil {
		t.Fatal("unknown table accepted")
	}
}
