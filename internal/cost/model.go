// Package cost implements the shared cost model: cardinality summaries (the
// paper's Fn_scansummary / Fn_nonscansummary), per-operator cost functions
// (Fn_scancost / Fn_nonscancost), and — crucially for this paper — the
// runtime cost-parameter overrides that drive incremental re-optimization:
// per-expression cardinality factors (a join-selectivity update, Figure 5)
// and per-relation scan-cost factors (Figure 8).
//
// Every optimizer architecture in the repository computes costs exclusively
// through this package, mirroring the paper's methodology ("reuse the
// histogram, cost estimation, and other core components"), so their optima
// are directly comparable.
package cost

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/relalg"
)

// Params are the constants of the cost model, in abstract cost units
// (roughly: 1.0 == one sequential page read).
type Params struct {
	SeqPage      float64 // sequential page I/O
	RandPage     float64 // random page I/O
	PageSize     float64 // bytes per page
	CPUTuple     float64 // per-tuple CPU handling
	CPUCompare   float64 // per-tuple comparison (merge, sort)
	CPUHashBuild float64 // per-tuple hash-table insert
	CPUHashProbe float64 // per-tuple hash-table probe
	IndexLookup  float64 // one B-tree descent
	SortFactor   float64 // multiplier on n*log2(n) comparisons
}

// DefaultParams returns the parameter set used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		SeqPage:      1.0,
		RandPage:     4.0,
		PageSize:     8192,
		CPUTuple:     0.01,
		CPUCompare:   0.02,
		CPUHashBuild: 0.03,
		CPUHashProbe: 0.015,
		IndexLookup:  0.5,
		SortFactor:   1.0,
	}
}

// cardOverride is one SetCardFactor entry: every expression that contains
// Over gets its cardinality multiplied by Factor.
type cardOverride struct {
	Over   relalg.RelSet
	Factor float64
}

// Model binds a query to a catalog and parameter set and answers every
// cost-model question the optimizers ask. It is not safe for concurrent
// mutation; optimizers own their model.
type Model struct {
	Q   *relalg.Query
	Cat *catalog.Catalog
	P   Params

	tables    []*catalog.Table
	baseRows  []float64 // raw row counts per query relation
	baseCard  []float64 // after local selection predicates
	scanSel   []float64
	joinSel   []float64 // per q.Joins entry
	filterSel []float64 // per q.Filters entry

	overrides  []cardOverride // sorted by Over for determinism
	scanFactor []float64      // per query relation, default 1

	cardCache map[relalg.RelSet]float64

	// Epoch increments on every override mutation; incremental optimizers
	// use it to detect staleness of cached costs.
	Epoch uint64
}

// NewModel resolves the query against the catalog and precomputes base
// selectivities. It fails if a relation or column cannot be resolved.
func NewModel(q *relalg.Query, cat *catalog.Catalog, p Params) (*Model, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Q: q, Cat: cat, P: p, cardCache: map[relalg.RelSet]float64{}}
	m.tables = make([]*catalog.Table, len(q.Rels))
	m.baseRows = make([]float64, len(q.Rels))
	m.baseCard = make([]float64, len(q.Rels))
	m.scanSel = make([]float64, len(q.Rels))
	m.scanFactor = make([]float64, len(q.Rels))
	for i, r := range q.Rels {
		t, err := cat.Table(r.Table)
		if err != nil {
			return nil, fmt.Errorf("query %s relation %s: %w", q.Name, r.Alias, err)
		}
		m.tables[i] = t
		m.baseRows[i] = math.Max(t.NumRows, 1)
		m.scanFactor[i] = 1
		sel := 1.0
		for _, pr := range q.ScanPredsOf(i) {
			s, err := m.predSel(t, pr)
			if err != nil {
				return nil, err
			}
			sel *= s
		}
		m.scanSel[i] = sel
		m.baseCard[i] = math.Max(m.baseRows[i]*sel, 1e-6)
	}
	m.joinSel = make([]float64, len(q.Joins))
	for pi, jp := range q.Joins {
		dl := m.colDistinct(jp.L)
		dr := m.colDistinct(jp.R)
		m.joinSel[pi] = 1 / math.Max(math.Max(dl, dr), 1)
	}
	m.filterSel = make([]float64, len(q.Filters))
	for fi, f := range q.Filters {
		m.filterSel[fi] = f.Sel
	}
	return m, nil
}

func (m *Model) predSel(t *catalog.Table, pr relalg.ScanPred) (float64, error) {
	cs := t.Cols[pr.Col.Off]
	if cs.Hist != nil {
		return cs.Hist.FracCmp(pr.Op.String(), pr.Val)
	}
	// No histogram: textbook defaults.
	switch pr.Op {
	case relalg.CmpEQ:
		return 1 / math.Max(cs.Distinct, 1), nil
	case relalg.CmpNE:
		return 1 - 1/math.Max(cs.Distinct, 1), nil
	default:
		return 1.0 / 3.0, nil
	}
}

func (m *Model) colDistinct(c relalg.ColID) float64 {
	t := m.tables[c.Rel]
	if c.Off < len(t.Cols) {
		d := t.Cols[c.Off].Distinct
		if d >= 1 {
			return d
		}
	}
	return math.Max(t.NumRows, 1)
}

// ---- relalg.SchemaInfo ----

// IndexCols implements relalg.SchemaInfo.
func (m *Model) IndexCols(rel int) []int { return m.tables[rel].Indexes }

// SortedCol implements relalg.SchemaInfo.
func (m *Model) SortedCol(rel int) int { return m.tables[rel].SortedBy }

// ZoneCols implements relalg.ZoneInfo: the columns whose segment zone maps
// make predicate pruning effective on rel's storage backend. Tables on the
// default in-memory backend report none, so the plan space is unchanged
// unless a persistent backend is bound.
func (m *Model) ZoneCols(rel int) []int { return m.tables[rel].ZoneCols() }

// segScanSlack is the read fraction added to the zone-column selectivity
// when costing a segment-pruned scan: segments whose key range straddles a
// predicate boundary must still be read whole, so pruning rarely achieves
// the predicate's exact selectivity.
const segScanSlack = 0.10

// Table returns the resolved base table of a query relation.
func (m *Model) Table(rel int) *catalog.Table { return m.tables[rel] }

// ---- overrides (the incremental re-optimization inputs) ----

// SetCardFactor installs a cardinality override: the estimated cardinality
// of every expression containing s is multiplied by factor. Setting factor
// 1 removes the override. This models the paper's Figure 5 experiment
// ("change to join selectivity estimate" of a subexpression) and the
// feedback loop of Figure 6 (actual/estimated cardinality ratios observed
// during execution).
func (m *Model) SetCardFactor(s relalg.RelSet, factor float64) {
	if s.Empty() {
		panic("cost: SetCardFactor of empty set")
	}
	m.Epoch++
	m.cardCache = map[relalg.RelSet]float64{}
	for i := range m.overrides {
		if m.overrides[i].Over == s {
			if factor == 1 {
				m.overrides = append(m.overrides[:i], m.overrides[i+1:]...)
			} else {
				m.overrides[i].Factor = factor
			}
			return
		}
	}
	if factor == 1 {
		return
	}
	m.overrides = append(m.overrides, cardOverride{Over: s, Factor: factor})
	sort.Slice(m.overrides, func(i, j int) bool { return m.overrides[i].Over < m.overrides[j].Over })
}

// CardFactor returns the current override factor for exactly s (1 if none).
func (m *Model) CardFactor(s relalg.RelSet) float64 {
	for _, o := range m.overrides {
		if o.Over == s {
			return o.Factor
		}
	}
	return 1
}

// SetScanCostFactor scales the I/O cost of reading the base relation rel
// (table scans, index scans, and index-NL inner fetches). This models the
// paper's Figure 8 experiment ("Orders has updated scan cost").
func (m *Model) SetScanCostFactor(rel int, factor float64) {
	if factor <= 0 {
		panic("cost: non-positive scan cost factor")
	}
	m.Epoch++
	m.scanFactor[rel] = factor
}

// ScanCostFactor returns the current factor for rel.
func (m *Model) ScanCostFactor(rel int) float64 { return m.scanFactor[rel] }

// CardDependsOn reports whether the cardinality of expression e is affected
// by an override on s — i.e. whether s ⊆ e. The incremental optimizer uses
// it to locate the affected region of its state.
func CardDependsOn(e, s relalg.RelSet) bool { return s.IsSubset(e) }

// ---- summaries (Fn_scansummary / Fn_nonscansummary) ----

// Card estimates the output cardinality of expression s: the product of the
// base cardinalities (after local predicates), the selectivities of every
// join and filter predicate internal to s, and every matching override
// factor. The product form makes the estimate independent of join order, so
// all plans of one group agree on it — the paper's memoized summary.
func (m *Model) Card(s relalg.RelSet) float64 {
	if c, ok := m.cardCache[s]; ok {
		return c
	}
	card := 1.0
	s.EachMember(func(i int) { card *= m.baseCard[i] })
	for _, pi := range m.Q.InternalPreds(s) {
		card *= m.joinSel[pi]
	}
	for _, fi := range m.Q.InternalFilters(s) {
		card *= m.filterSel[fi]
	}
	for _, o := range m.overrides {
		if o.Over.IsSubset(s) {
			card *= o.Factor
		}
	}
	card = math.Max(card, 1e-6)
	m.cardCache[s] = card
	return card
}

// CardBase estimates the output cardinality of s ignoring every override —
// the denominator the adaptive layer divides observed cardinalities by to
// derive feedback factors.
func (m *Model) CardBase(s relalg.RelSet) float64 {
	card := 1.0
	s.EachMember(func(i int) { card *= m.baseCard[i] })
	for _, pi := range m.Q.InternalPreds(s) {
		card *= m.joinSel[pi]
	}
	for _, fi := range m.Q.InternalFilters(s) {
		card *= m.filterSel[fi]
	}
	return math.Max(card, 1e-6)
}

// BaseRows returns the raw row count of relation rel.
func (m *Model) BaseRows(rel int) float64 { return m.baseRows[rel] }

// BaseCard returns the post-selection cardinality of relation rel (without
// overrides).
func (m *Model) BaseCard(rel int) float64 { return m.baseCard[rel] }

// ---- operator costs (Fn_scancost / Fn_nonscancost) ----

// LocalCost computes the cost of the operator described by alt, rooted at
// expression s demanded with property prop, excluding children. It is the
// single cost function shared by all optimizers.
func (m *Model) LocalCost(alt relalg.Alt, s relalg.RelSet, prop relalg.Prop) float64 {
	p := m.P
	switch alt.Phy {
	case relalg.PhyTableScan:
		rel := alt.Rel
		rows := m.baseRows[rel]
		pages := rows * m.tables[rel].Width / p.PageSize
		return m.scanFactor[rel] * (p.SeqPage*pages + p.CPUTuple*rows)

	case relalg.PhyIndexScan:
		rel := alt.Rel
		if prop.Kind == relalg.PropIndexed {
			// Demanded as the inner of an index-NL join: the index
			// already exists; per-probe work is charged at the join.
			return p.IndexLookup
		}
		// Fetch through the index, restricted by local predicates on
		// the key column; residual predicates filter after the fetch.
		sel := 1.0
		for _, pr := range m.Q.ScanPredsOf(rel) {
			if pr.Col == alt.IdxCol {
				s, err := m.predSel(m.tables[rel], pr)
				if err == nil {
					sel *= s
				}
			}
		}
		fetched := math.Max(m.baseRows[rel]*sel, 1)
		return m.scanFactor[rel] * (p.IndexLookup + fetched*(p.RandPage+p.CPUTuple))

	case relalg.PhySegScan:
		// A sequential scan that reads only the fraction of segments the
		// zone maps on alt.IdxCol cannot prune. The read fraction is
		// approximated by the selectivity of the local predicates on the
		// zone column plus slack for partially overlapping segments; it
		// never exceeds a full table scan, and at moderate selectivity it
		// undercuts an index scan's random fetches.
		rel := alt.Rel
		sel := 1.0
		for _, pr := range m.Q.ScanPredsOf(rel) {
			if pr.Col == alt.IdxCol {
				s, err := m.predSel(m.tables[rel], pr)
				if err == nil {
					sel *= s
				}
			}
		}
		frac := math.Min(1, sel+segScanSlack)
		rows := m.baseRows[rel]
		pages := rows * m.tables[rel].Width / p.PageSize
		return m.scanFactor[rel] * frac * (p.SeqPage*pages + p.CPUTuple*rows)

	case relalg.PhyHashJoin:
		lc := m.Card(alt.LExpr)
		rc := m.Card(alt.RExpr)
		out := m.Card(s)
		return p.CPUHashBuild*lc + p.CPUHashProbe*rc + p.CPUTuple*out

	case relalg.PhyMergeJoin:
		lc := m.Card(alt.LExpr)
		rc := m.Card(alt.RExpr)
		out := m.Card(s)
		return p.CPUCompare*(lc+rc) + p.CPUTuple*out

	case relalg.PhyIndexNLJoin:
		inner := alt.LExpr.SingleMember()
		probes := m.Card(alt.RExpr)
		jp := m.Q.Joins[alt.Pred]
		innerCol := jp.L
		if innerCol.Rel != inner {
			innerCol = jp.R
		}
		perProbe := m.baseRows[inner] / math.Max(m.colDistinct(innerCol), 1)
		fetched := probes * math.Max(perProbe, 1e-6)
		out := m.Card(s)
		return probes*p.IndexLookup +
			m.scanFactor[inner]*fetched*(p.RandPage+p.CPUTuple) +
			p.CPUTuple*out

	case relalg.PhySort:
		n := math.Max(m.Card(s), 2)
		return p.SortFactor * p.CPUCompare * n * math.Log2(n)
	}
	panic(fmt.Sprintf("cost: unknown physical operator %v", alt.Phy))
}

// ScanAffects reports whether a scan-cost factor change on rel affects the
// local cost of alt: true for scans of rel and for index-NL joins whose
// inner is rel.
func ScanAffects(alt relalg.Alt, rel int) bool {
	switch alt.Phy {
	case relalg.PhyTableScan, relalg.PhyIndexScan, relalg.PhySegScan:
		return alt.Rel == rel
	case relalg.PhyIndexNLJoin:
		return alt.LExpr == relalg.Single(rel)
	}
	return false
}
