package fbstore

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestFoldCumulativeAverage(t *testing.T) {
	s := New()
	if est := s.Fold("k", 10, true); est != 10 {
		t.Fatalf("first fold = %v, want 10", est)
	}
	if est := s.Fold("k", 30, true); est != 20 {
		t.Fatalf("second fold = %v, want cumulative average 20", est)
	}
	if est := s.Fold("k", 100, false); est != 100 {
		t.Fatalf("non-cumulative fold = %v, want the observation 100", est)
	}
	if got := s.LastObs("k"); got != 100 {
		t.Fatalf("LastObs = %v, want 100", got)
	}
	if got := s.LastObs("missing"); got != 0 {
		t.Fatalf("LastObs of unknown key = %v, want 0", got)
	}
}

func TestFactorRoundTrip(t *testing.T) {
	s := New()
	if f, ok := s.Factor("k"); ok || f != 1 {
		t.Fatalf("unknown key factor = %v,%v, want 1,false", f, ok)
	}
	s.SetFactor("k", 2.5)
	if f, ok := s.Factor("k"); !ok || f != 2.5 {
		t.Fatalf("factor = %v,%v, want 2.5,true", f, ok)
	}
}

func TestSnapshotExport(t *testing.T) {
	s := New()
	s.Fold("b", 4, true)
	s.Fold("b", 8, true)
	s.SetFactor("b", 1.5)
	s.Fold("a", 7, true)

	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Key != "a" || snap[1].Key != "b" {
		t.Fatalf("snapshot keys wrong: %+v", snap)
	}
	if snap[1].ObsN != 2 || snap[1].ObsAvg != 6 || snap[1].LastObs != 8 {
		t.Fatalf("snapshot state wrong: %+v", snap[1])
	}
	if !snap[1].Applied || snap[1].Factor != 1.5 {
		t.Fatalf("snapshot factor wrong: %+v", snap[1])
	}
	if snap[0].Applied || snap[0].Factor != 1 {
		t.Fatalf("unapplied entry reports a factor: %+v", snap[0])
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

// TestConcurrentFolds hammers one store from many goroutines over a mix of
// shared and private keys; cumulative sums must come out exact because folds
// are commutative. Run under -race in CI.
func TestConcurrentFolds(t *testing.T) {
	s := New()
	const goroutines = 8
	const folds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < folds; i++ {
				s.Fold("shared", 2, true)
				s.Fold(fmt.Sprintf("private-%d", g), float64(i), true)
				s.SetFactor("shared", 2)
				if f, ok := s.Factor("shared"); !ok || f != 2 {
					t.Errorf("g%d: factor = %v,%v", g, f, ok)
					return
				}
				_ = s.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, e := range s.Snapshot() {
		if e.Key == "shared" {
			if e.ObsN != goroutines*folds || math.Abs(e.ObsAvg-2) > 1e-12 {
				t.Fatalf("shared key state: n=%v avg=%v, want n=%d avg=2",
					e.ObsN, e.ObsAvg, goroutines*folds)
			}
		}
	}
	if s.Len() != goroutines+1 {
		t.Fatalf("Len = %d, want %d", s.Len(), goroutines+1)
	}
}
