package fbstore

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// This file is the snapshot codec: the statistics plane serialized as one
// versioned JSON document so a server restart resumes with everything the
// workload had learned. The logical observation clock is part of the
// snapshot — ageing continues across restarts exactly where it stopped,
// instead of every reloaded entry looking freshly observed.
//
// The format is versioned and strict: Load rejects unknown versions and
// non-finite numbers rather than silently admitting state a newer (or
// corrupted) writer produced. Loading replaces the store's contents
// wholesale; it is a boot-time operation, not a merge.

// codecVersion identifies the snapshot format. Bump it when the entry
// schema changes incompatibly.
const codecVersion = 1

// snapshotDoc is the on-disk document.
type snapshotDoc struct {
	Version int         `json:"version"`
	Clock   uint64      `json:"clock"`
	Stats   []statEntry `json:"stats"`
}

// statEntry is one fingerprint's serialized state.
type statEntry struct {
	Key      string  `json:"key"`
	ObsSum   float64 `json:"obs_sum"`
	ObsN     float64 `json:"obs_n"`
	LastObs  float64 `json:"last_obs"`
	LastSeen int64   `json:"last_seen_unix_nano"`
	Tick     uint64  `json:"tick"`
	Factor   float64 `json:"factor"`
	Applied  bool    `json:"applied"`
}

// Save writes a versioned snapshot of the whole store. The output is
// deterministic for a quiescent store (entries sorted by key), so snapshots
// diff and hash cleanly. Concurrent folds during a save are safe; each entry
// is copied under its own lock. The raw cumulative sums are serialized
// bit-exactly (not reconstructed from the average), so a loaded store is
// numerically indistinguishable from the one that saved it.
func (s *StatsStore) Save(w io.Writer) error {
	doc := snapshotDoc{Version: codecVersion, Clock: s.clock.Load()}
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	stats := make([]*stat, len(keys))
	for i, k := range keys {
		stats[i] = s.m[k]
	}
	s.mu.RUnlock()
	for i, e := range stats {
		e.mu.Lock()
		doc.Stats = append(doc.Stats, statEntry{
			Key:      keys[i],
			ObsSum:   e.obsSum,
			ObsN:     e.obsN,
			LastObs:  e.lastObs,
			LastSeen: e.lastSeen.UnixNano(),
			Tick:     e.tick,
			Factor:   e.factor,
			Applied:  e.hasFac,
		})
		e.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("fbstore: save: %w", err)
	}
	return nil
}

// Load replaces the store's contents (and logical clock) with a snapshot
// previously written by Save. It validates the codec version and every
// number before touching the store, so a failed load leaves the store
// unchanged. Ageing options are NOT part of the snapshot: they belong to
// the receiving store, so an operator can turn decay on (or change the
// half-life) across a restart and the reloaded history ages under the new
// policy.
func (s *StatsStore) Load(r io.Reader) error {
	var doc snapshotDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("fbstore: load: %w", err)
	}
	if doc.Version != codecVersion {
		return fmt.Errorf("fbstore: load: snapshot version %d, this build reads %d", doc.Version, codecVersion)
	}
	m := make(map[string]*stat, len(doc.Stats))
	for i, se := range doc.Stats {
		if se.Key == "" {
			return fmt.Errorf("fbstore: load: entry %d has an empty key", i)
		}
		if _, dup := m[se.Key]; dup {
			return fmt.Errorf("fbstore: load: duplicate key %q", se.Key)
		}
		for _, v := range [...]float64{se.ObsSum, se.ObsN, se.LastObs, se.Factor} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("fbstore: load: key %q has a non-finite value", se.Key)
			}
		}
		if se.ObsN < 0 || se.ObsSum < 0 {
			return fmt.Errorf("fbstore: load: key %q has negative observation state (sum=%v n=%v)", se.Key, se.ObsSum, se.ObsN)
		}
		// Applied factors are clamped positive at calibration time; a zero
		// or negative one warm-starts NaN/negative cardinalities into cost
		// models, so it can only be corruption.
		if se.Applied && se.Factor <= 0 {
			return fmt.Errorf("fbstore: load: key %q has non-positive applied factor %v", se.Key, se.Factor)
		}
		tick := se.Tick
		if tick > doc.Clock { // entry from the future: clamp to the clock
			tick = doc.Clock
		}
		m[se.Key] = &stat{
			obsSum:   se.ObsSum,
			obsN:     se.ObsN,
			lastObs:  se.LastObs,
			lastSeen: time.Unix(0, se.LastSeen),
			tick:     tick,
			factor:   se.Factor,
			hasFac:   se.Applied,
		}
	}
	s.mu.Lock()
	s.m = m
	s.lastSweep = doc.Clock
	s.mu.Unlock()
	s.clock.Store(doc.Clock)
	return nil
}

// SaveFile atomically replaces path with a snapshot of the store: the
// document is written to a temporary file in the same directory, synced,
// and rotated into place with rename, so a crash mid-save leaves the
// previous snapshot intact and a reader never observes a torn file.
func (s *StatsStore) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fbstore: save %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fbstore: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fbstore: save %s: %w", path, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("fbstore: save %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fbstore: save %s: %w", path, err)
	}
	return nil
}

// LoadFile loads a snapshot from path. A missing file is reported with an
// error wrapping os.ErrNotExist, which callers treat as a cold boot.
func (s *StatsStore) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fbstore: load %s: %w", path, err)
	}
	defer f.Close()
	return s.Load(f)
}
