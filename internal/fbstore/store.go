// Package fbstore is the server-wide feedback statistics plane: a concurrent
// store of calibrated cardinality-observation state keyed by canonical
// subexpression fingerprint (relalg.Fingerprinter). It is the paper's move —
// derived optimizer state is durable, incrementally maintainable data —
// applied one level up: where a plan-cache entry materializes one query's
// optimizer state, the store materializes what the whole workload has
// learned about the data, so that two structurally different queries over
// the same tables calibrate against one shared history, and evicting a plan
// never forgets the statistics that shaped it.
//
// The store holds per-fingerprint observation state (cumulative sum and
// count, the last raw observation, and the last applied factor). Calibration
// itself — turning observations into model factors, thresholding, staging
// optimizer deltas — stays in aqp.Calibrator, which reads and writes through
// a shared store; the store is deliberately dumb so its concurrency story
// stays trivial: a RWMutex map of entries, each entry with its own mutex,
// every operation a short critical section.
package fbstore

import (
	"sort"
	"sync"
	"time"
)

// Stat is one fingerprint's calibration state.
type stat struct {
	mu       sync.Mutex
	obsSum   float64 // sum of observations
	obsN     float64 // number of observations
	lastObs  float64 // most recent raw observation
	lastSeen time.Time
	factor   float64 // last factor a calibrator applied beyond threshold
	hasFac   bool
}

// StatsStore maps canonical subexpression fingerprints to calibration state.
// Safe for concurrent use by any number of calibrators.
type StatsStore struct {
	mu sync.RWMutex
	m  map[string]*stat
}

// New builds an empty store.
func New() *StatsStore {
	return &StatsStore{m: map[string]*stat{}}
}

func (s *StatsStore) get(key string, create bool) *stat {
	s.mu.RLock()
	e := s.m[key]
	s.mu.RUnlock()
	if e != nil || !create {
		return e
	}
	s.mu.Lock()
	if e = s.m[key]; e == nil {
		e = &stat{}
		s.m[key] = e
	}
	s.mu.Unlock()
	return e
}

// Fold records one observation for key and returns the calibration estimate:
// the cumulative average when cumulative is true, the observation itself
// otherwise. Cumulative sums are commutative, so interleaved folds from
// concurrent calibrators land in a consistent state regardless of order.
func (s *StatsStore) Fold(key string, obs float64, cumulative bool) float64 {
	e := s.get(key, true)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.obsSum += obs
	e.obsN++
	e.lastObs = obs
	e.lastSeen = time.Now()
	if cumulative {
		return e.obsSum / e.obsN
	}
	return obs
}

// SetFactor records the factor a calibrator just applied for key. Last
// writer wins; concurrent writers have folded near-identical observations,
// so their factors agree to within the feedback threshold.
func (s *StatsStore) SetFactor(key string, factor float64) {
	e := s.get(key, true)
	e.mu.Lock()
	e.factor = factor
	e.hasFac = true
	e.mu.Unlock()
}

// Factor returns the last applied factor for key, and whether one exists.
// It is the warm-start read: a fresh cost model seeded with these factors
// starts where the workload's learning left off.
func (s *StatsStore) Factor(key string) (float64, bool) {
	e := s.get(key, false)
	if e == nil {
		return 1, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.factor, e.hasFac
}

// LastObs returns the most recent raw observation for key (0 when never
// observed).
func (s *StatsStore) LastObs(key string) float64 {
	e := s.get(key, false)
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastObs
}

// Len reports the number of fingerprints with recorded state.
func (s *StatsStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// StatSnapshot is one fingerprint's exported state.
type StatSnapshot struct {
	Key      string
	ObsN     float64
	ObsAvg   float64 // cumulative average observation
	LastObs  float64
	LastSeen time.Time
	Factor   float64 // last applied factor (1 when none applied yet)
	Applied  bool    // whether any factor has been applied
}

// Snapshot exports the store for metrics, sorted by key. Each entry is
// internally consistent (copied under its lock); the set of entries is the
// store's contents at the moment of the map copy.
func (s *StatsStore) Snapshot() []StatSnapshot {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	stats := make([]*stat, 0, len(s.m))
	for k, e := range s.m {
		keys = append(keys, k)
		stats = append(stats, e)
	}
	s.mu.RUnlock()

	out := make([]StatSnapshot, len(keys))
	for i, e := range stats {
		e.mu.Lock()
		out[i] = StatSnapshot{
			Key: keys[i], ObsN: e.obsN, LastObs: e.lastObs,
			LastSeen: e.lastSeen, Factor: 1, Applied: e.hasFac,
		}
		if e.obsN > 0 {
			out[i].ObsAvg = e.obsSum / e.obsN
		}
		if e.hasFac {
			out[i].Factor = e.factor
		}
		e.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
