// Package fbstore is the server-wide feedback statistics plane: a concurrent
// store of calibrated cardinality-observation state keyed by canonical
// subexpression fingerprint (relalg.Fingerprinter). It is the paper's move —
// derived optimizer state is durable, incrementally maintainable data —
// applied one level up: where a plan-cache entry materializes one query's
// optimizer state, the store materializes what the whole workload has
// learned about the data, so that two structurally different queries over
// the same tables calibrate against one shared history, and evicting a plan
// never forgets the statistics that shaped it.
//
// The store holds per-fingerprint observation state (cumulative sum and
// count, the last raw observation, and the last applied factor). Calibration
// itself — turning observations into model factors, thresholding, staging
// optimizer deltas — stays in aqp.Calibrator, which reads and writes through
// a shared store; the store is deliberately dumb so its concurrency story
// stays trivial: a RWMutex map of entries, each entry with its own mutex,
// every operation a short critical section.
//
// # Ageing under data drift
//
// Learned statistics are only as good as the data that produced them. Under
// drift a frozen cumulative history actively misleads: a factor learned from
// a million old observations needs a million new ones to move. The store
// therefore supports observation ageing, keyed by a LOGICAL observation
// clock (one tick per fold, so ageing is deterministic and independent of
// wall-clock execution speed):
//
//   - Options.DecayHalfLife exponentially decays the cumulative sums: at
//     each fold, the stored sum and count are scaled by 2^(-age/halfLife)
//     before the new observation lands, so the cumulative average becomes an
//     exponentially weighted one and post-drift observations overturn a
//     confidently-wrong estimate in O(halfLife) observations instead of
//     O(history).
//   - Options.StaleAfter is the staleness horizon: a fingerprint not
//     observed for more than StaleAfter ticks stops warm-starting (Factor
//     reports it unknown — a wrong old factor is worse than a cold start),
//     and once its age exceeds twice the horizon the entry is reclaimed
//     entirely by the amortized sweep.
//
// Both default to off (New), preserving the full-history behavior.
//
// The store also survives restarts: Save/Load write and read a versioned
// snapshot of the whole plane, including the logical clock, so a reloaded
// server resumes ageing exactly where the saved one stopped (see persist.go).
package fbstore

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures observation ageing. The zero value disables it: the
// store keeps the full, undecayed cumulative history forever.
type Options struct {
	// DecayHalfLife is the number of logical observations (store-wide folds)
	// after which the weight of a past observation halves in the cumulative
	// average. 0 disables decay.
	DecayHalfLife float64
	// StaleAfter is the logical age (in store-wide folds) beyond which an
	// unobserved fingerprint's factor stops warm-starting; entries older
	// than twice this age are reclaimed by the sweep. 0 disables both.
	StaleAfter uint64
}

// reclaimAfter is the logical age at which a stale entry is deleted.
func (o Options) reclaimAfter() uint64 { return 2 * o.StaleAfter }

// Stat is one fingerprint's calibration state.
type stat struct {
	mu       sync.Mutex
	obsSum   float64 // sum of observations (decayed when ageing is on)
	obsN     float64 // number of observations (decayed alongside obsSum)
	lastObs  float64 // most recent raw observation
	lastSeen time.Time
	tick     uint64  // logical clock at the last fold / factor application
	factor   float64 // last factor a calibrator applied beyond threshold
	hasFac   bool
	// dead marks an entry the sweep has unlinked from the map, set under
	// mu in the same critical section as the delete. A writer that fetched
	// the pointer before the sweep must not land its update in the orphan
	// (it would be silently lost): writers retry against the map, readers
	// treat the entry as absent.
	dead bool
}

// StatsStore maps canonical subexpression fingerprints to calibration state.
// Safe for concurrent use by any number of calibrators.
type StatsStore struct {
	opts  Options
	clock atomic.Uint64 // logical observation clock: one tick per Fold

	decays    atomic.Int64 // folds that applied exponential decay
	reclaimed atomic.Int64 // entries deleted by the staleness sweep

	mu        sync.RWMutex
	m         map[string]*stat
	lastSweep uint64 // clock value of the last staleness sweep
}

// New builds an empty store with ageing disabled (full cumulative history).
func New() *StatsStore { return NewWithOptions(Options{}) }

// NewWithOptions builds an empty store with the given ageing configuration.
func NewWithOptions(o Options) *StatsStore {
	return &StatsStore{opts: o, m: map[string]*stat{}}
}

// Clock returns the logical observation clock: the total number of folds the
// store has absorbed (including those restored by Load).
func (s *StatsStore) Clock() uint64 { return s.clock.Load() }

// Decays reports how many folds applied exponential decay to stored sums.
func (s *StatsStore) Decays() int64 { return s.decays.Load() }

// Reclaimed reports how many entries the staleness sweep has deleted.
func (s *StatsStore) Reclaimed() int64 { return s.reclaimed.Load() }

func (s *StatsStore) get(key string, create bool) *stat {
	s.mu.RLock()
	e := s.m[key]
	s.mu.RUnlock()
	if e != nil || !create {
		return e
	}
	s.mu.Lock()
	if e = s.m[key]; e == nil {
		e = &stat{tick: s.clock.Load()}
		s.m[key] = e
	}
	s.mu.Unlock()
	return e
}

// age returns how many logical ticks ago the entry was last touched. Called
// with e.mu held.
func (s *StatsStore) age(e *stat, now uint64) uint64 {
	if now < e.tick { // clock restored behind a live entry; treat as fresh
		return 0
	}
	return now - e.tick
}

// decay scales the entry's cumulative sums by the exponential-ageing weight
// for its current age. Called with e.mu held, before folding a new
// observation at logical time now.
func (s *StatsStore) decay(e *stat, now uint64) {
	if s.opts.DecayHalfLife <= 0 || e.obsN == 0 {
		return
	}
	age := s.age(e, now)
	if age == 0 {
		return
	}
	w := math.Exp2(-float64(age) / s.opts.DecayHalfLife)
	e.obsSum *= w
	e.obsN *= w
	s.decays.Add(1)
}

// Fold records one observation for key and returns the calibration estimate:
// the cumulative average when cumulative is true, the observation itself
// otherwise. With ageing off, cumulative sums are commutative, so
// interleaved folds from concurrent calibrators land in a consistent state
// regardless of order; with decay on, interleaving can shift each fold's
// weight by at most one tick — immaterial at any sane half-life.
func (s *StatsStore) Fold(key string, obs float64, cumulative bool) float64 {
	now := s.clock.Add(1)
	s.maybeSweep(now)
	e := s.lockLive(key)
	defer e.mu.Unlock()
	s.decay(e, now)
	e.obsSum += obs
	e.obsN++
	e.lastObs = obs
	e.lastSeen = time.Now()
	e.tick = now
	if cumulative {
		return e.obsSum / e.obsN
	}
	return obs
}

// lockLive returns the live entry for key with its mutex held, creating one
// as needed. A concurrent sweep can unlink an entry between the map lookup
// and the entry lock; retrying against the map keeps the update from
// landing in the orphan (a fresh entry replaces it on the next lookup, so
// the loop terminates).
func (s *StatsStore) lockLive(key string) *stat {
	for {
		e := s.get(key, true)
		e.mu.Lock()
		if !e.dead {
			return e
		}
		e.mu.Unlock()
	}
}

// SetFactor records the factor a calibrator just applied for key. Last
// writer wins; concurrent writers have folded near-identical observations,
// so their factors agree to within the feedback threshold. Applying a factor
// refreshes the entry's logical timestamp: a factor in active use is not
// stale.
func (s *StatsStore) SetFactor(key string, factor float64) {
	e := s.lockLive(key)
	e.factor = factor
	e.hasFac = true
	e.tick = s.clock.Load()
	e.mu.Unlock()
}

// Factor returns the last applied factor for key, and whether one exists.
// It is the warm-start read: a fresh cost model seeded with these factors
// starts where the workload's learning left off. A factor beyond the
// staleness horizon is reported as unknown — past the horizon a cold start
// beats warm-starting from statistics the drifted data has outgrown.
func (s *StatsStore) Factor(key string) (float64, bool) {
	e := s.get(key, false)
	if e == nil {
		return 1, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead || s.stale(e, s.clock.Load()) {
		return 1, false
	}
	return e.factor, e.hasFac
}

// stale reports whether the entry is beyond the staleness horizon. Called
// with e.mu held.
func (s *StatsStore) stale(e *stat, now uint64) bool {
	return s.opts.StaleAfter > 0 && s.age(e, now) > s.opts.StaleAfter
}

// LastObs returns the most recent raw observation for key (0 when never
// observed).
func (s *StatsStore) LastObs(key string) float64 {
	e := s.get(key, false)
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return 0
	}
	return e.lastObs
}

// Len reports the number of fingerprints with recorded state.
func (s *StatsStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// StaleKeys reports how many recorded fingerprints are currently beyond the
// staleness horizon (0 when ageing is off): learned state that no longer
// warm-starts and is awaiting reclamation.
func (s *StatsStore) StaleKeys() int {
	if s.opts.StaleAfter == 0 {
		return 0
	}
	now := s.clock.Load()
	s.mu.RLock()
	stats := make([]*stat, 0, len(s.m))
	for _, e := range s.m {
		stats = append(stats, e)
	}
	s.mu.RUnlock()
	n := 0
	for _, e := range stats {
		e.mu.Lock()
		if s.stale(e, now) {
			n++
		}
		e.mu.Unlock()
	}
	return n
}

// maybeSweep runs the staleness sweep at most once per StaleAfter ticks, so
// reclamation cost amortizes to O(1) per fold.
func (s *StatsStore) maybeSweep(now uint64) {
	if s.opts.StaleAfter == 0 {
		return
	}
	s.mu.RLock()
	due := now-s.lastSweep >= s.opts.StaleAfter
	s.mu.RUnlock()
	if due {
		s.Sweep()
	}
}

// Sweep reclaims every entry older than twice the staleness horizon and
// returns how many it deleted. It runs automatically (amortized) during
// folds; exposing it lets servers and tests reclaim deterministically.
func (s *StatsStore) Sweep() int {
	if s.opts.StaleAfter == 0 {
		return 0
	}
	now := s.clock.Load()
	horizon := s.opts.reclaimAfter()
	n := 0
	s.mu.Lock()
	s.lastSweep = now
	for key, e := range s.m {
		e.mu.Lock()
		dead := s.age(e, now) > horizon
		e.dead = dead // tombstone: writers holding the pointer retry
		e.mu.Unlock()
		if dead {
			delete(s.m, key)
			n++
		}
	}
	s.mu.Unlock()
	s.reclaimed.Add(int64(n))
	return n
}

// StatSnapshot is one fingerprint's exported state.
type StatSnapshot struct {
	Key      string
	ObsN     float64 // observation count (decayed weight when ageing is on)
	ObsAvg   float64 // cumulative (exponentially weighted) average observation
	LastObs  float64
	LastSeen time.Time
	Tick     uint64  // logical clock at the last observation
	Stale    bool    // beyond the staleness horizon (never warm-starts)
	Factor   float64 // last applied factor (1 when none applied yet)
	Applied  bool    // whether any factor has been applied
}

// Snapshot exports the store for metrics, sorted by key. Each entry is
// internally consistent (copied under its lock); the set of entries is the
// store's contents at the moment of the map copy.
func (s *StatsStore) Snapshot() []StatSnapshot {
	now := s.clock.Load()
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	stats := make([]*stat, 0, len(s.m))
	for k, e := range s.m {
		keys = append(keys, k)
		stats = append(stats, e)
	}
	s.mu.RUnlock()

	out := make([]StatSnapshot, len(keys))
	for i, e := range stats {
		e.mu.Lock()
		out[i] = StatSnapshot{
			Key: keys[i], ObsN: e.obsN, LastObs: e.lastObs,
			LastSeen: e.lastSeen, Tick: e.tick, Stale: s.stale(e, now),
			Factor: 1, Applied: e.hasFac,
		}
		if e.obsN > 0 {
			out[i].ObsAvg = e.obsSum / e.obsN
		}
		if e.hasFac {
			out[i].Factor = e.factor
		}
		e.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
