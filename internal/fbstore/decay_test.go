package fbstore

import (
	"math"
	"sync"
	"testing"
)

// advance folds n observations into a disjoint key, moving the store-wide
// logical clock without touching the keys under test.
func advance(s *StatsStore, n int) {
	for i := 0; i < n; i++ {
		s.Fold("clock-filler", 1, true)
	}
}

// TestDecayHalfLifeWeighting: with decay on, the cumulative average is an
// exponentially weighted one — immediately-consecutive folds age by one tick
// each, so the numbers are exactly computable.
func TestDecayHalfLifeWeighting(t *testing.T) {
	s := NewWithOptions(Options{DecayHalfLife: 1})
	if est := s.Fold("k", 10, true); est != 10 {
		t.Fatalf("first fold = %v, want 10", est)
	}
	// Second fold is one tick later: the first observation's weight halves.
	// avg = (10*0.5 + 30) / (0.5 + 1) = 35 / 1.5.
	want := 35.0 / 1.5
	if est := s.Fold("k", 30, true); math.Abs(est-want) > 1e-12 {
		t.Fatalf("decayed average = %v, want %v", est, want)
	}
	if s.Decays() != 1 {
		t.Fatalf("Decays = %d, want 1", s.Decays())
	}
	// Non-cumulative folds still return the raw observation.
	if est := s.Fold("k", 100, false); est != 100 {
		t.Fatalf("non-cumulative fold = %v, want 100", est)
	}
}

// TestDecayOverturnsStaleEstimate is the drift property the half-life
// exists for: after a regime shift in the observations, the decayed
// estimate reaches the new regime in O(halfLife) folds while the
// full-history average is still dominated by the old regime.
func TestDecayOverturnsStaleEstimate(t *testing.T) {
	const oldObs, newObs = 1000.0, 100.0
	const history, post = 50, 24 // 24 post-shift folds = 8 half-lives

	decayed := NewWithOptions(Options{DecayHalfLife: 3})
	frozen := New()
	var dEst, fEst float64
	for i := 0; i < history; i++ {
		dEst = decayed.Fold("k", oldObs, true)
		fEst = frozen.Fold("k", oldObs, true)
	}
	for i := 0; i < post; i++ {
		dEst = decayed.Fold("k", newObs, true)
		fEst = frozen.Fold("k", newObs, true)
	}
	if relErr := math.Abs(dEst-newObs) / newObs; relErr > 0.25 {
		t.Fatalf("decayed estimate %v still %.0f%% from the new regime %v", dEst, 100*relErr, newObs)
	}
	if fEst < 5*newObs {
		t.Fatalf("full-history estimate %v converged implausibly fast — the control is broken", fEst)
	}
}

// TestAgeingTable drives the staleness/reclaim state machine through its
// regimes: fresh factors warm-start, factors beyond the horizon do not,
// entries beyond twice the horizon are reclaimed, and keys that stay hot
// survive arbitrary clock advancement.
func TestAgeingTable(t *testing.T) {
	const stale = 5
	cases := []struct {
		name        string
		opts        Options
		idleTicks   int  // clock advancement after the key's last activity
		keepHot     bool // re-fold the key each step instead of idling
		wantWarm    bool // Factor reports a usable warm-start factor
		wantKeyLive bool // entry still present after Sweep
		wantStale   int  // StaleKeys after advancement, before Sweep
	}{
		{name: "ageing-off/long-idle", opts: Options{}, idleTicks: 100,
			wantWarm: true, wantKeyLive: true, wantStale: 0},
		{name: "fresh/inside-horizon", opts: Options{StaleAfter: stale}, idleTicks: stale,
			wantWarm: true, wantKeyLive: true, wantStale: 0},
		{name: "stale/outside-horizon", opts: Options{StaleAfter: stale}, idleTicks: stale + 1,
			wantWarm: false, wantKeyLive: true, wantStale: 1},
		{name: "dead/beyond-reclaim", opts: Options{StaleAfter: stale}, idleTicks: 2*stale + 1,
			wantWarm: false, wantKeyLive: false, wantStale: 1},
		{name: "decay+stale/dead", opts: Options{DecayHalfLife: 2, StaleAfter: stale}, idleTicks: 2*stale + 1,
			wantWarm: false, wantKeyLive: false, wantStale: 1},
		{name: "hot-key-survives", opts: Options{DecayHalfLife: 2, StaleAfter: stale}, idleTicks: 20 * stale,
			keepHot: true, wantWarm: true, wantKeyLive: true, wantStale: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewWithOptions(tc.opts)
			s.Fold("k", 42, true)
			s.SetFactor("k", 2.0)
			if tc.keepHot {
				for i := 0; i < tc.idleTicks; i++ {
					s.Fold("clock-filler", 1, true)
					s.Fold("k", 42, true)
				}
			} else {
				advance(s, tc.idleTicks)
			}
			if got := s.StaleKeys(); got != tc.wantStale {
				t.Errorf("StaleKeys = %d, want %d", got, tc.wantStale)
			}
			if _, ok := s.Factor("k"); ok != tc.wantWarm {
				t.Errorf("Factor warm = %v, want %v", ok, tc.wantWarm)
			}
			s.Sweep()
			_, live := func() (float64, bool) {
				for _, sn := range s.Snapshot() {
					if sn.Key == "k" {
						return sn.Factor, true
					}
				}
				return 0, false
			}()
			if live != tc.wantKeyLive {
				t.Errorf("entry live after Sweep = %v, want %v", live, tc.wantKeyLive)
			}
			if !tc.wantKeyLive && s.Reclaimed() == 0 {
				t.Error("Reclaimed counter did not move for a reclaimed entry")
			}
		})
	}
}

// TestAmortizedSweep: the sweep fires from Fold itself once the clock
// advances a full horizon past the last sweep — no explicit Sweep call, no
// background goroutine needed for a live server to forget dead keys.
func TestAmortizedSweep(t *testing.T) {
	s := NewWithOptions(Options{StaleAfter: 4})
	s.Fold("dead", 1, true)
	// 2*StaleAfter+1 ticks of disjoint traffic age "dead" beyond reclaim;
	// the folds themselves must trigger the sweep along the way.
	advance(s, 20)
	for _, sn := range s.Snapshot() {
		if sn.Key == "dead" {
			t.Fatalf("dead key survived %d ticks of amortized sweeping", 20)
		}
	}
	if s.Reclaimed() == 0 {
		t.Fatal("amortized sweep reclaimed nothing")
	}
}

// TestSweepFoldRace hammers folds of one key against concurrent sweeps that
// keep reclaiming it: no fold may land in a tombstoned orphan, so every
// observation must be accounted for — either in the live entry's history or
// as part of a reclaimed generation — and the final entry state must be
// consistent (a live entry always shows the latest fold). Run under -race
// in CI.
func TestSweepFoldRace(t *testing.T) {
	s := NewWithOptions(Options{StaleAfter: 1}) // reclaim at age 2: maximal churn
	const goroutines = 4
	const folds = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < folds; i++ {
				s.Fold("contested", 7, true)
				s.SetFactor("contested", 3)
				s.Sweep()
			}
		}()
	}
	wg.Wait()
	// The key was folded moments ago from whichever goroutine finished
	// last; a write lost to a tombstoned orphan would leave the live entry
	// missing its observation.
	for _, sn := range s.Snapshot() {
		if sn.Key == "contested" && sn.ObsN > 0 && sn.LastObs != 7 {
			t.Fatalf("live entry lost its last fold: %+v", sn)
		}
	}
	if s.Clock() != goroutines*folds {
		t.Fatalf("clock = %d, want %d (every fold ticks exactly once)", s.Clock(), goroutines*folds)
	}
}

// TestSnapshotAgeingFields: Snapshot exposes the logical tick and staleness
// verdict the metrics plane reports.
func TestSnapshotAgeingFields(t *testing.T) {
	s := NewWithOptions(Options{StaleAfter: 2})
	s.Fold("a", 5, true)
	advance(s, 3)
	var a, filler *StatSnapshot
	for _, sn := range s.Snapshot() {
		sn := sn
		switch sn.Key {
		case "a":
			a = &sn
		case "clock-filler":
			filler = &sn
		}
	}
	if a == nil || !a.Stale || a.Tick != 1 {
		t.Fatalf("aged entry snapshot wrong: %+v", a)
	}
	if filler == nil || filler.Stale {
		t.Fatalf("fresh entry snapshot wrong: %+v", filler)
	}
}
