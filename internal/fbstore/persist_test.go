package fbstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// populated builds a store with a few keys in distinct states: folded only,
// folded+factored, aged.
func populated(t *testing.T, opts Options) *StatsStore {
	t.Helper()
	s := NewWithOptions(opts)
	s.Fold("join:a*b", 120, true)
	s.Fold("join:a*b", 80, true)
	s.SetFactor("join:a*b", 2.5)
	s.Fold("scan:a", 40, true)
	s.Fold("scan:b", 7, false)
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := populated(t, Options{DecayHalfLife: 4, StaleAfter: 100})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	dst := NewWithOptions(Options{DecayHalfLife: 4, StaleAfter: 100})
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Clock() != src.Clock() {
		t.Fatalf("clock %d did not survive the round trip (got %d)", src.Clock(), dst.Clock())
	}
	if !sameStore(t, src, dst) {
		t.Fatalf("snapshot round trip diverged:\nsrc %+v\ndst %+v", src.Snapshot(), dst.Snapshot())
	}
	// Behavioral equivalence, not just structural: the next fold lands on
	// identical state, so both stores answer identically forever after.
	if a, b := src.Fold("join:a*b", 100, true), dst.Fold("join:a*b", 100, true); a != b {
		t.Fatalf("post-load fold diverged: src %v, dst %v", a, b)
	}
	if fa, oa := src.Factor("join:a*b"); true {
		if fb, ob := dst.Factor("join:a*b"); fa != fb || oa != ob {
			t.Fatalf("post-load factor diverged: src %v,%v dst %v,%v", fa, oa, fb, ob)
		}
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := populated(t, Options{})
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two saves of a quiescent store differ")
	}
}

// TestLoadRejects: every malformed snapshot is rejected, and rejection
// leaves the store untouched.
func TestLoadRejects(t *testing.T) {
	good := func() string {
		var buf bytes.Buffer
		if err := populated(t, Options{}).Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := []struct {
		name, doc string
	}{
		{"garbage", "not json at all"},
		{"truncated", good[:len(good)/2]},
		{"future-version", strings.Replace(good, fmt.Sprintf(`"version":%d`, codecVersion), `"version":99`, 1)},
		{"empty-key", `{"version":1,"clock":1,"stats":[{"key":"","obs_n":1}]}`},
		{"duplicate-key", `{"version":1,"clock":1,"stats":[{"key":"k","obs_n":1},{"key":"k","obs_n":2}]}`},
		{"negative-count", `{"version":1,"clock":1,"stats":[{"key":"k","obs_n":-3}]}`},
		{"negative-sum", `{"version":1,"clock":1,"stats":[{"key":"k","obs_sum":-5,"obs_n":1}]}`},
		{"zero-applied-factor", `{"version":1,"clock":1,"stats":[{"key":"k","obs_n":1,"factor":0,"applied":true}]}`},
		{"negative-applied-factor", `{"version":1,"clock":1,"stats":[{"key":"k","obs_n":1,"factor":-2,"applied":true}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := populated(t, Options{})
			before := s.Snapshot()
			if err := s.Load(strings.NewReader(tc.doc)); err == nil {
				t.Fatal("malformed snapshot loaded without error")
			}
			if !reflect.DeepEqual(before, s.Snapshot()) {
				t.Fatal("failed load mutated the store")
			}
		})
	}
}

// TestLoadClampsFutureTicks: an entry stamped after the snapshot clock
// (corruption or a racing writer) is clamped rather than living in the
// future, where it would never age.
func TestLoadClampsFutureTicks(t *testing.T) {
	s := New()
	doc := `{"version":1,"clock":10,"stats":[{"key":"k","obs_sum":5,"obs_n":1,"tick":99}]}`
	if err := s.Load(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	for _, sn := range s.Snapshot() {
		if sn.Key == "k" && sn.Tick > 10 {
			t.Fatalf("tick %d not clamped to clock 10", sn.Tick)
		}
	}
}

func TestSaveFileAtomicRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stats.json")
	src := populated(t, Options{})
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Rotate over the previous snapshot: the new content fully replaces it.
	src.Fold("scan:new", 9, true)
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temporary files left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "stats.json" {
		t.Fatalf("directory not clean after rotation: %v", ents)
	}

	dst := New()
	if err := dst.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !sameStore(t, src, dst) {
		t.Fatal("rotated file did not round-trip the store")
	}
}

// sameStore compares two stores by their serialized form: bit-exact sums,
// counts, factors, ticks and timestamps, without tripping over the
// monotonic-clock component reflect.DeepEqual sees in live time.Time values.
func sameStore(t *testing.T, a, b *StatsStore) bool {
	t.Helper()
	var ab, bb bytes.Buffer
	if err := a.Save(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bb); err != nil {
		t.Fatal(err)
	}
	return ab.String() == bb.String()
}

func TestLoadFileMissingIsNotExist(t *testing.T) {
	err := New().LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot error = %v, want os.ErrNotExist", err)
	}
}
