package deltalog

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/stats"
	"repro/internal/testkit"
)

// This file is the differential-testing oracle promised in DESIGN.md: the
// paper's cost-estimation and plan-selection rules R6–R10 are expressed as
// deltalog rules over the exported SearchSpace, LocalCost updates flow
// through as deltas, and the maintained BestCost view must agree with the
// specialized incremental optimizer of internal/core at every step. This
// checks, end to end, that internal/core really is incremental view
// maintenance of the paper's datalog program.

const microScale = 1e6 // costs are fixed-point micro-units in tuples

type oracle struct {
	eng *Engine
	lc  *Relation // LocalCost: (gid, eid, kind, lgid, rgid, cost)
	bc  *Relation // BestCost:  (gid, cost)

	gids    map[groupID]int64
	entries []oracleEntry
}

type groupID struct {
	expr relalg.RelSet
	prop relalg.Prop
}

type oracleEntry struct {
	tuple Tuple // current LC tuple
	alt   relalg.Alt
	expr  relalg.RelSet
	prop  relalg.Prop
}

const (
	kindLeaf int64 = iota
	kindUnary
	kindBinary
)

// buildOracle wires the rule graph:
//
//	R6:  PlanCost(g,e,c)          :- LC(g,e,leaf,_,_,c).
//	R7:  PlanCost(g,e,c+bl)       :- LC(g,e,unary,l,_,c), BestCost(l,bl).
//	R8:  PlanCost(g,e,c+bl+br)    :- LC(g,e,binary,l,r,c), BestCost(l,bl), BestCost(r,br).
//	R9:  BestCost(g,min<c>)       :- PlanCost(g,e,c).
//
// (R10, BestPlan, is the join of BestCost with PlanCost; plan extraction is
// checked separately through the optimizer's own output.)
func buildOracle(space []core.SpaceEntry, m *cost.Model) *oracle {
	o := &oracle{eng: NewEngine(), gids: map[groupID]int64{}}
	gid := func(s relalg.RelSet, p relalg.Prop) int64 {
		k := groupID{s, p}
		if id, ok := o.gids[k]; ok {
			return id
		}
		id := int64(len(o.gids) + 1)
		o.gids[k] = id
		return id
	}

	o.lc = o.eng.Relation("localcost", 6)
	pc := o.eng.Relation("plancost", 3)
	pc1 := o.eng.Relation("plancost_partial", 4) // (gid,eid,rgid,partial)
	o.bc = o.eng.Relation("bestcost", 2)

	// R6
	o.eng.Map(o.lc, pc, func(t Tuple) []Tuple {
		if t[2] == kindLeaf {
			return []Tuple{{t[0], t[1], t[5]}}
		}
		return nil
	})
	// R7
	lcUnary := o.eng.Relation("localcost_unary", 6)
	o.eng.Map(o.lc, lcUnary, func(t Tuple) []Tuple {
		if t[2] == kindUnary {
			return []Tuple{t}
		}
		return nil
	})
	o.eng.Join(lcUnary, o.bc, []int{3}, []int{0}, pc, func(l, b Tuple) []Tuple {
		return []Tuple{{l[0], l[1], l[5] + b[1]}}
	})
	// R8 in two steps (left child, then right child)
	lcBinary := o.eng.Relation("localcost_binary", 6)
	o.eng.Map(o.lc, lcBinary, func(t Tuple) []Tuple {
		if t[2] == kindBinary {
			return []Tuple{t}
		}
		return nil
	})
	o.eng.Join(lcBinary, o.bc, []int{3}, []int{0}, pc1, func(l, b Tuple) []Tuple {
		return []Tuple{{l[0], l[1], l[4], l[5] + b[1]}}
	})
	o.eng.Join(pc1, o.bc, []int{2}, []int{0}, pc, func(p, b Tuple) []Tuple {
		return []Tuple{{p[0], p[1], p[3] + b[1]}}
	})
	// R9
	o.eng.GroupExtreme(pc, o.bc, []int{0}, 2, AggMin)

	for i, se := range space {
		g := gid(se.Expr, se.Prop)
		t := Tuple{g, int64(i), kindLeaf, 0, 0, micro(m.LocalCost(se.Alt, se.Expr, se.Prop))}
		switch {
		case se.Alt.Unary():
			t[2] = kindUnary
			t[3] = gid(se.Alt.LExpr, se.Alt.LProp)
		case !se.Alt.Leaf():
			t[2] = kindBinary
			t[3] = gid(se.Alt.LExpr, se.Alt.LProp)
			t[4] = gid(se.Alt.RExpr, se.Alt.RProp)
		}
		o.entries = append(o.entries, oracleEntry{tuple: t, alt: se.Alt, expr: se.Expr, prop: se.Prop})
		o.eng.Insert(o.lc, t)
	}
	o.eng.Run()
	return o
}

// refresh re-derives every LocalCost from the model and emits update deltas
// for changed ones.
func (o *oracle) refresh(m *cost.Model) int {
	changed := 0
	for i := range o.entries {
		e := &o.entries[i]
		nc := micro(m.LocalCost(e.alt, e.expr, e.prop))
		if nc == e.tuple[5] {
			continue
		}
		old := e.tuple.clone()
		e.tuple[5] = nc
		o.eng.Delete(o.lc, old)
		o.eng.Insert(o.lc, e.tuple)
		changed++
	}
	o.eng.Run()
	return changed
}

// best returns the maintained BestCost of a group.
func (o *oracle) best(s relalg.RelSet, p relalg.Prop) (float64, bool) {
	id, ok := o.gids[groupID{s, p}]
	if !ok {
		return 0, false
	}
	for _, t := range o.bc.Snapshot() {
		if t[0] == id {
			return float64(t[1]) / microScale, true
		}
	}
	return 0, false
}

func micro(c float64) int64 { return int64(math.Round(c * microScale)) }

// TestOracleMatchesCore compares the deltalog-maintained BestCost view with
// the specialized incremental optimizer across random queries and random
// cost-update streams.
func TestOracleMatchesCore(t *testing.T) {
	space := relalg.DefaultSpace()
	factors := []float64{0.125, 0.5, 2, 8}
	for seed := uint64(1); seed <= 12; seed++ {
		rnd := stats.NewRand(seed * 7717)
		cat := testkit.SyntheticCatalog(rnd, 3)
		q := testkit.RandomQuery(rnd, cat, 2+int(seed%4))
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		// The census optimizer maintains the full space with no pruning;
		// the oracle re-executes R6-R10 over the same space.
		opt, err := core.New(m, space, core.PruneNone)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Optimize(); err != nil {
			t.Fatal(err)
		}
		orc := buildOracle(opt.ExportSpace(), m)

		compare := func(step int) {
			for gk := range orc.gids {
				want, wok := opt.GroupBestCost(gk.expr, gk.prop)
				got, gok := orc.best(gk.expr, gk.prop)
				if wok != gok {
					t.Fatalf("seed %d step %d group %v %v: presence mismatch core=%v oracle=%v",
						seed, step, gk.expr, gk.prop, wok, gok)
				}
				if !wok {
					continue
				}
				if math.Abs(want-got) > 1e-3*math.Max(1, want) {
					t.Fatalf("seed %d step %d group %v %v: core best %v != oracle best %v",
						seed, step, gk.expr, gk.prop, want, got)
				}
			}
		}
		compare(-1)

		for step := 0; step < 5; step++ {
			if rnd.Intn(2) == 0 {
				rel := rnd.Intn(len(q.Rels))
				f := factors[rnd.Intn(len(factors))]
				opt.UpdateScanCostFactor(rel, f)
			} else {
				s := testkit.RandomConnectedSubset(rnd, q, 1)
				f := factors[rnd.Intn(len(factors))]
				opt.UpdateCardFactor(s, f)
			}
			if _, err := opt.Reoptimize(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			orc.refresh(m) // same model: sees the same parameter changes
			compare(step)
		}
	}
}
