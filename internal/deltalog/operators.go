package deltalog

import (
	"fmt"
	"sort"
)

// This file implements the incremental view operators: selection/projection
// (Map), equi-join, and the min-aggregate with next-best recovery. Each
// operator subscribes to its inputs and emits deltas into its output
// relation through the engine queue, so arbitrarily recursive rule graphs
// evaluate to fixpoint by semi-naive propagation.

// MapFunc transforms an input tuple into zero or more output tuples.
// It must be deterministic: deletions replay it to retract exactly what the
// corresponding insertion produced.
type MapFunc func(Tuple) []Tuple

type mapOp struct {
	eng *Engine
	out *Relation
	fn  MapFunc
}

// Map registers a selection/projection/function rule: out ⊇ fn(in).
func (e *Engine) Map(in *Relation, out *Relation, fn MapFunc) {
	op := &mapOp{eng: e, out: out, fn: fn}
	in.subs = append(in.subs, op)
}

func (m *mapOp) onDelta(_ *Relation, d Delta) {
	for _, t := range m.fn(d.Tuple) {
		m.eng.Enqueue(m.out, Delta{Tuple: t, Count: d.Count})
	}
}

// JoinFunc combines a left and right tuple into zero or more output tuples.
type JoinFunc func(l, r Tuple) []Tuple

type joinOp struct {
	eng          *Engine
	left, right  *Relation
	lcols, rcols []int
	out          *Relation
	fn           JoinFunc

	lIndex map[string][]Tuple
	rIndex map[string][]Tuple
}

// Join registers an incremental equi-join: tuples of left and right match
// when their key columns agree; fn forms output tuples. The operator
// maintains hash indexes on both sides and applies the standard delta
// rules: Δout = ΔL⋈R ∪ L⋈ΔR (ΔL⋈ΔR is covered because indexes are updated
// before probing the opposite side).
func (e *Engine) Join(left, right *Relation, lcols, rcols []int, out *Relation, fn JoinFunc) {
	if len(lcols) != len(rcols) {
		panic("deltalog: join key arity mismatch")
	}
	op := &joinOp{
		eng: e, left: left, right: right,
		lcols: lcols, rcols: rcols, out: out, fn: fn,
		lIndex: map[string][]Tuple{}, rIndex: map[string][]Tuple{},
	}
	left.subs = append(left.subs, op)
	right.subs = append(right.subs, op)
}

func (j *joinOp) onDelta(src *Relation, d Delta) {
	if src == j.left {
		k := d.Tuple.Key(j.lcols)
		j.lIndex[k] = applyIndex(j.lIndex[k], d)
		for _, r := range j.rIndex[k] {
			for _, t := range j.fn(d.Tuple, r) {
				j.eng.Enqueue(j.out, Delta{Tuple: t, Count: d.Count})
			}
		}
		return
	}
	k := d.Tuple.Key(j.rcols)
	j.rIndex[k] = applyIndex(j.rIndex[k], d)
	for _, l := range j.lIndex[k] {
		for _, t := range j.fn(l, d.Tuple) {
			j.eng.Enqueue(j.out, Delta{Tuple: t, Count: d.Count})
		}
	}
}

func applyIndex(bucket []Tuple, d Delta) []Tuple {
	if d.Count > 0 {
		return append(bucket, d.Tuple.clone())
	}
	key := d.Tuple.Key(allCols(len(d.Tuple)))
	for i, t := range bucket {
		if t.Key(allCols(len(t))) == key {
			return append(bucket[:i], bucket[i+1:]...)
		}
	}
	return bucket
}

// ---- min/max aggregate with next-best recovery ----

type aggKind int

// Aggregate kinds.
const (
	AggMin aggKind = iota
	AggMax
)

type groupAggOp struct {
	eng      *Engine
	kind     aggKind
	groupBy  []int
	valCol   int
	out      *Relation
	groups   map[string]*aggGroup
	emitted  map[string]int64
	hasEmit  map[string]bool
	groupLen int
}

type aggGroup struct {
	key  Tuple   // group-by values
	vals []int64 // ordered multiset of all input values (retained, §4.1)
}

// GroupExtreme registers an incremental min (or max) aggregate:
// out(groupBy..., extreme) with one output tuple per group. The operator
// retains every input value in an ordered multiset, so when the current
// extremum is deleted it emits an update to the next-best value — the
// extended aggregation operator of §4.1.
func (e *Engine) GroupExtreme(in *Relation, out *Relation, groupBy []int, valCol int, kind aggKind) {
	op := &groupAggOp{
		eng: e, kind: kind, groupBy: groupBy, valCol: valCol, out: out,
		groups:   map[string]*aggGroup{},
		emitted:  map[string]int64{},
		hasEmit:  map[string]bool{},
		groupLen: len(groupBy),
	}
	in.subs = append(in.subs, op)
}

func (a *groupAggOp) onDelta(_ *Relation, d Delta) {
	k := d.Tuple.Key(a.groupBy)
	g := a.groups[k]
	if g == nil {
		key := make(Tuple, a.groupLen)
		for i, c := range a.groupBy {
			key[i] = d.Tuple[c]
		}
		g = &aggGroup{key: key}
		a.groups[k] = g
	}
	v := d.Tuple[a.valCol]
	if d.Count > 0 {
		i := sort.Search(len(g.vals), func(i int) bool { return g.vals[i] >= v })
		g.vals = append(g.vals, 0)
		copy(g.vals[i+1:], g.vals[i:])
		g.vals[i] = v
	} else {
		i := sort.Search(len(g.vals), func(i int) bool { return g.vals[i] >= v })
		if i >= len(g.vals) || g.vals[i] != v {
			panic(fmt.Sprintf("deltalog: aggregate deletion of absent value %d", v))
		}
		g.vals = append(g.vals[:i], g.vals[i+1:]...)
	}
	a.refresh(k, g)
}

func (a *groupAggOp) refresh(k string, g *aggGroup) {
	var cur int64
	have := len(g.vals) > 0
	if have {
		if a.kind == AggMin {
			cur = g.vals[0]
		} else {
			cur = g.vals[len(g.vals)-1]
		}
	}
	prev, had := a.emitted[k], a.hasEmit[k]
	if had && (!have || prev != cur) {
		old := append(g.key.clone(), prev)
		a.eng.Enqueue(a.out, Delta{Tuple: old, Count: -1})
		a.hasEmit[k] = false
	}
	if have && (!had || prev != cur) {
		now := append(g.key.clone(), cur)
		a.eng.Enqueue(a.out, Delta{Tuple: now, Count: 1})
		a.emitted[k] = cur
		a.hasEmit[k] = true
	}
}
