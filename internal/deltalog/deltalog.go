// Package deltalog is a small generic delta-processing dataflow engine: the
// repository's stand-in for the ASPEN query processor the paper runs its
// declarative optimizer on. It provides exactly the extended-operator
// semantics §4 requires:
//
//   - relations are counted multisets: every tuple value carries a
//     (possibly temporarily negative) multiplicity, converging to
//     non-negative counts as deltas drain (the counting scheme of Gupta,
//     Mumick & Subrahmanian that the paper cites as [14]);
//   - operators consume and emit delta tuples (insert / delete; an update
//     is a delete+insert pair), maintaining internal state incrementally —
//     joins follow the delta rules ΔL⋈R ∪ L⋈ΔR ∪ ΔL⋈ΔR;
//   - min/max group aggregates retain every input value in an ordered
//     multiset so the "next best" value can be recovered when the current
//     extremum is deleted (§4.1);
//   - a scheduler drains operator queues to fixpoint, supporting recursive
//     (cyclic) dataflows via semi-naive delta propagation.
//
// Tuples are flat []int64 records; fractional values (costs) are stored as
// fixed-point micro-units by the callers that need them. The engine is used
// standalone (it has its own examples and tests) and as a differential
// oracle for internal/core: the paper's cost-estimation and plan-selection
// rules R6–R10 are expressed over it and maintained under random update
// streams, and the resulting BestCost view must match the specialized
// incremental optimizer.
package deltalog

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a flat record. Tuples are immutable once handed to the engine.
type Tuple []int64

// Key extracts the values at the given column offsets as a comparable
// string key.
func (t Tuple) Key(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d", t[c])
	}
	return b.String()
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (t Tuple) clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Delta is one change notification: Count > 0 inserts the tuple that many
// times, Count < 0 deletes.
type Delta struct {
	Tuple Tuple
	Count int
}

// Relation is a named counted multiset with subscriber operators.
type Relation struct {
	Name  string
	Arity int

	counts map[string]*row
	subs   []operator
	eng    *Engine
}

type row struct {
	tuple Tuple
	count int
}

// Len returns the number of distinct tuples with positive count.
func (r *Relation) Len() int {
	n := 0
	for _, rw := range r.counts {
		if rw.count > 0 {
			n++
		}
	}
	return n
}

// Count returns the multiplicity of a tuple.
func (r *Relation) Count(t Tuple) int {
	if rw, ok := r.counts[t.Key(allCols(len(t)))]; ok {
		return rw.count
	}
	return 0
}

// Snapshot returns the distinct positive tuples in deterministic order.
func (r *Relation) Snapshot() []Tuple {
	var out []Tuple
	for _, rw := range r.counts {
		if rw.count > 0 {
			out = append(out, rw.tuple)
		}
	}
	sort.Slice(out, func(i, j int) bool { return tupleLess(out[i], out[j]) })
	return out
}

func tupleLess(a, b Tuple) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func allCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// apply folds a delta into the counted state and reports whether the
// positive-support of the tuple changed (0→positive or positive→0), which
// is when downstream operators must be notified under set semantics; under
// bag semantics every delta propagates.
func (r *Relation) apply(d Delta) {
	k := d.Tuple.Key(allCols(len(d.Tuple)))
	rw, ok := r.counts[k]
	if !ok {
		rw = &row{tuple: d.Tuple.clone()}
		r.counts[k] = rw
	}
	rw.count += d.Count
}

// Engine owns relations and operators and drains deltas to fixpoint.
type Engine struct {
	relations map[string]*Relation
	order     []*Relation
	queue     []queued
	steps     int
}

type queued struct {
	rel *Relation
	d   Delta
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{relations: map[string]*Relation{}}
}

// Relation creates (or returns) a named relation of the given arity.
func (e *Engine) Relation(name string, arity int) *Relation {
	if r, ok := e.relations[name]; ok {
		if r.Arity != arity {
			panic(fmt.Sprintf("deltalog: relation %s arity mismatch", name))
		}
		return r
	}
	r := &Relation{Name: name, Arity: arity, counts: map[string]*row{}, eng: e}
	e.relations[name] = r
	e.order = append(e.order, r)
	return r
}

// Insert enqueues an insertion delta.
func (e *Engine) Insert(r *Relation, t Tuple) { e.Enqueue(r, Delta{Tuple: t, Count: 1}) }

// Delete enqueues a deletion delta.
func (e *Engine) Delete(r *Relation, t Tuple) { e.Enqueue(r, Delta{Tuple: t, Count: -1}) }

// Update enqueues a replacement (delete old, insert new).
func (e *Engine) Update(r *Relation, old, new Tuple) {
	e.Delete(r, old)
	e.Insert(r, new)
}

// Enqueue schedules an arbitrary delta against a relation.
func (e *Engine) Enqueue(r *Relation, d Delta) {
	if len(d.Tuple) != r.Arity {
		panic(fmt.Sprintf("deltalog: arity mismatch inserting into %s", r.Name))
	}
	e.queue = append(e.queue, queued{r, d})
}

// Run drains all pending deltas to fixpoint and returns the number of delta
// propagation steps performed (a measure of incremental work).
func (e *Engine) Run() int {
	steps := 0
	for len(e.queue) > 0 {
		q := e.queue[0]
		e.queue = e.queue[1:]
		before := 0
		k := q.d.Tuple.Key(allCols(len(q.d.Tuple)))
		if rw, ok := q.rel.counts[k]; ok {
			before = rw.count
		}
		q.rel.apply(q.d)
		after := before + q.d.Count
		// Set-semantics notification: operators see logical
		// insertions (support 0→+) and deletions (+→0).
		var notify *Delta
		if before <= 0 && after > 0 {
			notify = &Delta{Tuple: q.d.Tuple, Count: 1}
		} else if before > 0 && after <= 0 {
			notify = &Delta{Tuple: q.d.Tuple, Count: -1}
		}
		if notify != nil {
			for _, op := range q.rel.subs {
				op.onDelta(q.rel, *notify)
			}
		}
		steps++
		if steps > 50_000_000 {
			panic("deltalog: delta propagation failed to converge")
		}
	}
	e.steps += steps
	return steps
}

// operator is an incremental view operator subscribed to input relations.
type operator interface {
	onDelta(src *Relation, d Delta)
}
