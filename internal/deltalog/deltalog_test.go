package deltalog

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// TestCountedSemantics verifies the counted-multiset behaviour of §4:
// deletions processed out of order with their insertions leave temporarily
// negative counts that converge to non-negative values.
func TestCountedSemantics(t *testing.T) {
	e := NewEngine()
	r := e.Relation("r", 1)
	e.Delete(r, Tuple{1}) // deletion first: count dips to -1
	e.Run()
	if got := r.Count(Tuple{1}); got != -1 {
		t.Fatalf("count after early deletion = %d, want -1", got)
	}
	e.Insert(r, Tuple{1})
	e.Run()
	if got := r.Count(Tuple{1}); got != 0 {
		t.Fatalf("count after converging = %d, want 0", got)
	}
	e.Insert(r, Tuple{1})
	e.Insert(r, Tuple{1})
	e.Run()
	if got := r.Count(Tuple{1}); got != 2 {
		t.Fatalf("bag count = %d, want 2", got)
	}
	if r.Len() != 1 {
		t.Fatalf("distinct positive tuples = %d, want 1", r.Len())
	}
}

// TestMapMaintainsView checks that a Map rule retracts exactly what it
// derived when the input is deleted.
func TestMapMaintainsView(t *testing.T) {
	e := NewEngine()
	in := e.Relation("in", 2)
	out := e.Relation("out", 1)
	e.Map(in, out, func(t Tuple) []Tuple {
		if t[0] > 10 {
			return []Tuple{{t[0] + t[1]}}
		}
		return nil
	})
	e.Insert(in, Tuple{20, 1})
	e.Insert(in, Tuple{5, 1})
	e.Run()
	if out.Len() != 1 || out.Count(Tuple{21}) != 1 {
		t.Fatalf("map output wrong: %v", out.Snapshot())
	}
	e.Delete(in, Tuple{20, 1})
	e.Run()
	if out.Len() != 0 {
		t.Fatalf("map output not retracted: %v", out.Snapshot())
	}
}

// joinOracle recomputes the join from relation snapshots.
func joinOracle(l, r *Relation, lc, rc int) map[string]int {
	out := map[string]int{}
	for _, lt := range l.Snapshot() {
		for _, rt := range r.Snapshot() {
			if lt[lc] == rt[rc] {
				k := lt.String() + rt.String()
				out[k]++
			}
		}
	}
	return out
}

// TestJoinIncrementalEqualsRecompute drives random insert/delete streams
// through an incremental join and compares against recomputation from
// scratch — the Gupta-Mumick-Subrahmanian delta-rule property.
func TestJoinIncrementalEqualsRecompute(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rnd := stats.NewRand(seed)
		e := NewEngine()
		l := e.Relation("l", 2)
		r := e.Relation("r", 2)
		out := e.Relation("out", 4)
		e.Join(l, r, []int{1}, []int{0}, out, func(a, b Tuple) []Tuple {
			return []Tuple{{a[0], a[1], b[0], b[1]}}
		})
		var live []Tuple
		target := map[*Relation][]Tuple{}
		for step := 0; step < 120; step++ {
			rel := l
			if rnd.Intn(2) == 0 {
				rel = r
			}
			if len(target[rel]) > 0 && rnd.Intn(3) == 0 {
				i := rnd.Intn(len(target[rel]))
				e.Delete(rel, target[rel][i])
				target[rel] = append(target[rel][:i], target[rel][i+1:]...)
			} else {
				tu := Tuple{rnd.Int64n(5), rnd.Int64n(5)}
				e.Insert(rel, tu)
				target[rel] = append(target[rel], tu)
			}
			e.Run()
			want := joinOracle(l, r, 1, 0)
			for _, ot := range out.Snapshot() {
				k := Tuple(ot[:2]).String() + Tuple(ot[2:]).String()
				if want[k] <= 0 {
					t.Fatalf("seed %d step %d: spurious output %v", seed, step, ot)
				}
				delete(want, k)
			}
			_ = live
			if len(want) != 0 {
				t.Fatalf("seed %d step %d: missing outputs %v", seed, step, want)
			}
		}
	}
}

// TestGroupMinNextBest exercises the extended min-aggregate of §4.1: when
// the minimum is deleted, the operator recovers the next-best value and
// emits an update.
func TestGroupMinNextBest(t *testing.T) {
	e := NewEngine()
	in := e.Relation("plancost", 2) // (group, cost)
	best := e.Relation("bestcost", 2)
	e.GroupExtreme(in, best, []int{0}, 1, AggMin)

	e.Insert(in, Tuple{7, 30})
	e.Insert(in, Tuple{7, 10})
	e.Insert(in, Tuple{7, 20})
	e.Run()
	if best.Count(Tuple{7, 10}) != 1 || best.Len() != 1 {
		t.Fatalf("min wrong: %v", best.Snapshot())
	}
	// Case 2 of §4.1: deleting the minimum must surface the next best.
	e.Delete(in, Tuple{7, 10})
	e.Run()
	if best.Count(Tuple{7, 20}) != 1 || best.Len() != 1 {
		t.Fatalf("next-best recovery failed: %v", best.Snapshot())
	}
	// Case 3: an update that raises the minimum.
	e.Update(in, Tuple{7, 20}, Tuple{7, 40})
	e.Run()
	if best.Count(Tuple{7, 30}) != 1 || best.Len() != 1 {
		t.Fatalf("raise-min update failed: %v", best.Snapshot())
	}
	// Case 4: an update that lowers below the current minimum.
	e.Update(in, Tuple{7, 40}, Tuple{7, 5})
	e.Run()
	if best.Count(Tuple{7, 5}) != 1 || best.Len() != 1 {
		t.Fatalf("lower-min update failed: %v", best.Snapshot())
	}
}

// TestGroupMinProperty is a testing/quick property: for random
// insert/delete streams the maintained minimum equals the recomputed one.
func TestGroupMinProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rnd := stats.NewRand(seed)
		e := NewEngine()
		in := e.Relation("in", 2)
		best := e.Relation("best", 2)
		e.GroupExtreme(in, best, []int{0}, 1, AggMin)
		var live []Tuple
		for step := 0; step < 60; step++ {
			if len(live) > 0 && rnd.Intn(3) == 0 {
				i := rnd.Intn(len(live))
				e.Delete(in, live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				tu := Tuple{rnd.Int64n(3), rnd.Int64n(50)}
				e.Insert(in, tu)
				live = append(live, tu)
			}
			e.Run()
			// oracle: min per group over live
			mins := map[int64]int64{}
			for _, tu := range live {
				if m, ok := mins[tu[0]]; !ok || tu[1] < m {
					mins[tu[0]] = tu[1]
				}
			}
			snap := best.Snapshot()
			if len(snap) != len(mins) {
				return false
			}
			for _, bt := range snap {
				if mins[bt[0]] != bt[1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTransitiveClosureIncremental maintains a recursive reachability view
// (the classic recursive-datalog example) under edge insertions and
// deletions... the engine supports recursion through a self-joining rule
// graph, evaluated to fixpoint by the queue.
func TestTransitiveClosureIncremental(t *testing.T) {
	e := NewEngine()
	edge := e.Relation("edge", 2)
	path := e.Relation("path", 2)
	// path(x,y) :- edge(x,y).
	e.Map(edge, path, func(t Tuple) []Tuple { return []Tuple{{t[0], t[1]}} })
	// path(x,z) :- path(x,y), edge(y,z).
	e.Join(path, edge, []int{1}, []int{0}, path, func(p, ed Tuple) []Tuple {
		return []Tuple{{p[0], ed[1]}}
	})

	edges := [][2]int64{{1, 2}, {2, 3}, {3, 4}}
	for _, ed := range edges {
		e.Insert(edge, Tuple{ed[0], ed[1]})
	}
	e.Run()
	if path.Count(Tuple{1, 4}) < 1 {
		t.Fatalf("closure missing 1->4: %v", path.Snapshot())
	}
	// Deleting the middle edge must retract the derived paths.
	e.Delete(edge, Tuple{2, 3})
	e.Run()
	for _, want := range [][2]int64{{1, 3}, {1, 4}, {2, 3}, {2, 4}} {
		if path.Count(Tuple{want[0], want[1]}) > 0 {
			t.Fatalf("stale path %v after deletion: %v", want, path.Snapshot())
		}
	}
	if path.Count(Tuple{1, 2}) < 1 || path.Count(Tuple{3, 4}) < 1 {
		t.Fatalf("base paths lost: %v", path.Snapshot())
	}
}
