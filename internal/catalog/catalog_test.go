package catalog

import (
	"math"
	"testing"
)

func TestTableSchemaHelpers(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	if off, err := tb.ColIndex("b"); err != nil || off != 1 {
		t.Fatalf("ColIndex = %d, %v", off, err)
	}
	if _, err := tb.ColIndex("zzz"); err == nil {
		t.Fatal("missing column accepted")
	}
	tb.AddIndex("c")
	tb.AddIndex("a")
	tb.AddIndex("c") // idempotent
	if len(tb.Indexes) != 2 || tb.Indexes[0] != 0 || tb.Indexes[1] != 2 {
		t.Fatalf("Indexes = %v", tb.Indexes)
	}
	if !tb.HasIndex(2) || tb.HasIndex(1) {
		t.Fatal("HasIndex wrong")
	}
}

func TestAppendArityCheck(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch not caught")
		}
	}()
	tb.Append([]int64{1})
}

func TestAnalyze(t *testing.T) {
	tb := NewTable("t", "k", "v")
	for i := 0; i < 100; i++ {
		tb.Append([]int64{int64(i), int64(i % 5)})
	}
	tb.Analyze(8)
	if tb.NumRows != 100 {
		t.Fatalf("NumRows = %v", tb.NumRows)
	}
	if d := tb.Cols[0].Distinct; math.Abs(d-100) > 1 {
		t.Fatalf("distinct(k) = %v", d)
	}
	if d := tb.Cols[1].Distinct; math.Abs(d-5) > 0.5 {
		t.Fatalf("distinct(v) = %v", d)
	}
	if tb.Cols[0].Min != 0 || tb.Cols[0].Max != 99 {
		t.Fatalf("min/max = %d/%d", tb.Cols[0].Min, tb.Cols[0].Max)
	}
	if tb.Cols[0].Hist == nil {
		t.Fatal("histogram missing")
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	tb := NewTable("t", "a")
	tb.Analyze(4)
	if tb.NumRows != 0 || tb.Cols[0].Distinct != 1 {
		t.Fatalf("empty analyze: rows=%v distinct=%v", tb.NumRows, tb.Cols[0].Distinct)
	}
}

func TestSetSyntheticStats(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.SetSyntheticStats(1000, []int64{50, 1000})
	if tb.NumRows != 1000 {
		t.Fatalf("rows = %v", tb.NumRows)
	}
	if tb.Cols[0].Distinct != 50 || tb.Cols[1].Distinct != 1000 {
		t.Fatalf("distincts = %v %v", tb.Cols[0].Distinct, tb.Cols[1].Distinct)
	}
	if tb.Cols[0].Hist == nil || tb.Cols[0].Hist.Total != 1000 {
		t.Fatal("synthetic histogram missing or mis-sized")
	}
}

func TestCatalogRegistry(t *testing.T) {
	c := New()
	c.Add(NewTable("a", "x"))
	c.Add(NewTable("b", "x"))
	c.Add(NewTable("a", "x", "y")) // replace keeps order
	if got := c.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	tb, err := c.Table("a")
	if err != nil || len(tb.ColNames) != 2 {
		t.Fatalf("replaced table wrong: %v %v", tb, err)
	}
	if _, err := c.Table("zzz"); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestAnalyzeAll(t *testing.T) {
	c := New()
	tb := NewTable("t", "a")
	tb.Append([]int64{1})
	tb.Append([]int64{2})
	c.Add(tb)
	c.AnalyzeAll(4)
	if tb.NumRows != 2 {
		t.Fatalf("AnalyzeAll did not run: %v", tb.NumRows)
	}
}

func TestDataVersion(t *testing.T) {
	tb := NewTable("t", "a", "b")
	if tb.DataVersion() != 0 {
		t.Fatalf("fresh table at version %d", tb.DataVersion())
	}
	tb.Append([]int64{1, 2})
	v1 := tb.DataVersion()
	if v1 == 0 {
		t.Fatal("Append did not bump the data version")
	}
	tb.Analyze(4)
	v2 := tb.DataVersion()
	if v2 <= v1 {
		t.Fatal("Analyze did not bump the data version")
	}
	// Reads leave the version alone.
	tb.Columns()
	_, _ = tb.ColIndex("a")
	if tb.DataVersion() != v2 {
		t.Fatal("read-only access bumped the data version")
	}
	tb.Append([]int64{3, 4})
	if tb.DataVersion() <= v2 {
		t.Fatal("second Append did not bump the data version")
	}
}
