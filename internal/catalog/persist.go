package catalog

import (
	"fmt"
	"path/filepath"

	"repro/internal/storage"
)

// BindSummary reports what BindDir found on disk.
type BindSummary struct {
	Loaded int // tables whose rows came from disk
	Seeded int // tables that had rows in memory and an empty directory
	Rows   int // total rows loaded from disk
}

// BindDir binds every table in the catalog to a persistent DiskStore under
// dir (one subdirectory per table). Tables with data on disk are loaded
// from it — the on-disk rows REPLACE whatever the process generated, and
// the persisted data version carries over, so a restart serves the same
// data without regeneration. Tables with an empty directory keep their
// in-memory rows and are seeded into the store; the first Flush persists
// them. Statistics are refreshed for loaded tables.
func (c *Catalog) BindDir(dir string, buckets int) (BindSummary, error) {
	var sum BindSummary
	for _, name := range c.Names() {
		t := c.tables[name]
		st, err := storage.OpenDiskStore(filepath.Join(dir, name), name, len(t.ColNames), t.SortedBy, t.Indexes)
		if err != nil {
			return sum, fmt.Errorf("catalog: bind %s: %w", name, err)
		}
		snap := st.Snapshot()
		if snap.N > 0 {
			// Disk wins: materialize the row-major mirror from the loaded
			// snapshot and adopt the persisted data version.
			rows := make([][]int64, snap.N)
			flat := make([]int64, snap.N*len(t.ColNames))
			for i := 0; i < snap.N; i++ {
				row := flat[i*len(t.ColNames) : (i+1)*len(t.ColNames) : (i+1)*len(t.ColNames)]
				for col := range t.ColNames {
					row[col] = snap.Cols[col][i]
				}
				rows[i] = row
			}
			t.mu.Lock()
			t.Rows = rows
			t.store = st
			t.mu.Unlock()
			t.SetDataVersion(st.LoadedVersion())
			t.Analyze(buckets)
			sum.Loaded++
			sum.Rows += snap.N
		} else {
			// Fresh directory: seed the store from the generated rows; the
			// next Flush writes them out as segments.
			t.mu.Lock()
			st.ResetRows(t.Rows)
			t.store = st
			t.mu.Unlock()
			sum.Seeded++
		}
	}
	return sum, nil
}

// FlushDir persists every table bound to a disk backend — unflushed
// appends and wholesale resets become immutable segments stamped with the
// table's current data version — then closes the stores. Call on graceful
// shutdown.
func (c *Catalog) FlushDir() error {
	var firstErr error
	for _, name := range c.Names() {
		t := c.tables[name]
		t.mu.Lock()
		st := t.store
		t.mu.Unlock()
		if st == nil || st.Kind() != "disk" {
			continue
		}
		if err := st.Flush(t.DataVersion()); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("catalog: flush %s: %w", name, err)
		}
		if err := st.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("catalog: close %s: %w", name, err)
		}
	}
	return firstErr
}
