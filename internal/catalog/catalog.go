// Package catalog models the database's physical design and statistics:
// tables, columns, indexes, sort orders, row data, and the per-column
// statistics (row counts, distincts, min/max, equi-depth histograms) that
// the cost model consumes. The paper's built-in functions Fn_scansummary and
// the histogram machinery it mentions live on top of this package.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/storage"
)

// DefaultHistogramBuckets is the bucket count used when analyzing tables.
const DefaultHistogramBuckets = 32

// ColStats carries the optimizer-visible statistics of one column.
type ColStats struct {
	Distinct float64
	Min, Max int64
	Hist     *stats.Histogram // nil until Analyze
}

// Table is a base table: schema, optional row data, physical design and
// statistics. Rows are fixed-arity []int64 records; strings and decimals are
// dictionary/fixed-point encoded by the workload generators. Alongside the
// row-major Rows, the table binds to a storage.Backend holding the
// column-major mirror (see ColumnSnapshot) that the vectorized executor
// scans as zero-copy column windows. The default backend is a volatile
// MemStore; persistent deployments bind a DiskStore via Catalog.BindDir.
type Table struct {
	Name     string
	ColNames []string
	Rows     [][]int64

	NumRows  float64
	Width    float64 // estimated bytes per row, for page-count costing
	Cols     []ColStats
	Indexes  []int // column offsets carrying an index, ascending
	SortedBy int   // column offset of the physical sort order, or -1

	// mu serializes mutators (Append, Analyze, store binding) and the
	// store-resync check; executions never hold it while scanning — they
	// read an immutable storage.Snapshot instead.
	mu    sync.Mutex
	store storage.Backend

	// dataVersion counts data mutations: every Append and every Analyze
	// (Rows may have been replaced wholesale before an Analyze) bumps it.
	// Derived state materialized from the table's rows — cached query
	// results above all — pins the version it read and treats any later
	// value as an invalidation signal. A spurious bump (an Analyze that
	// changed nothing) costs a rematerialization, never a wrong result.
	dataVersion atomic.Uint64
}

// NewTable creates an empty table with the given schema. SortedBy defaults
// to -1 (heap organization).
func NewTable(name string, cols ...string) *Table {
	return &Table{
		Name:     name,
		ColNames: cols,
		Cols:     make([]ColStats, len(cols)),
		SortedBy: -1,
		Width:    float64(8 * len(cols)),
	}
}

// ColIndex returns the offset of the named column, or an error.
func (t *Table) ColIndex(name string) (int, error) {
	for i, c := range t.ColNames {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("catalog: table %s has no column %q", t.Name, name)
}

// MustCol is ColIndex for statically known names; it panics on a typo.
func (t *Table) MustCol(name string) int {
	i, err := t.ColIndex(name)
	if err != nil {
		panic(err)
	}
	return i
}

// AddIndex registers an index on the named column (idempotent).
func (t *Table) AddIndex(col string) {
	off := t.MustCol(col)
	for _, o := range t.Indexes {
		if o == off {
			return
		}
	}
	t.Indexes = append(t.Indexes, off)
	sort.Ints(t.Indexes)
}

// HasIndex reports whether the column offset carries an index.
func (t *Table) HasIndex(off int) bool {
	for _, o := range t.Indexes {
		if o == off {
			return true
		}
	}
	return false
}

// Append adds a row. The caller must Analyze afterwards to refresh stats.
// It panics on arity mismatch or a storage failure; mutation paths that
// must surface storage errors (persistent backends) use AppendRows.
func (t *Table) Append(row []int64) {
	if err := t.AppendRows([][]int64{row}); err != nil {
		panic(fmt.Sprintf("catalog: append to %s: %v", t.Name, err))
	}
}

// AppendRows adds a batch of rows through the bound storage backend and
// bumps the data version. In-flight executions are unaffected: they keep
// reading the storage snapshot they captured, which appends never mutate.
func (t *Table) AppendRows(rows [][]int64) error {
	for _, row := range rows {
		if len(row) != len(t.ColNames) {
			return fmt.Errorf("row arity %d != schema arity %d", len(row), len(t.ColNames))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.store != nil {
		// Resync first if a legacy path replaced Rows since the last sync,
		// then append through the backend so the publication is atomic.
		if t.store.Snapshot().N != len(t.Rows) {
			t.store.ResetRows(t.Rows)
		}
		if err := t.store.Append(rows); err != nil {
			return err
		}
	}
	// With no backend bound yet (bulk load before the first Analyze), rows
	// accumulate here and the mirror is built once, at Analyze.
	t.Rows = append(t.Rows, rows...)
	t.dataVersion.Add(1)
	return nil
}

// DataVersion returns the table's data version: a counter bumped by every
// mutation of the stored rows (Append, wholesale replacement via Analyze).
// Consumers of materialized derived state compare the version they captured
// at materialization time against the current one to detect staleness.
func (t *Table) DataVersion() uint64 { return t.dataVersion.Load() }

// SetDataVersion seeds the version counter, e.g. with the value a
// persistent backend recorded at its last flush, so versions stay monotonic
// across restarts.
func (t *Table) SetDataVersion(v uint64) { t.dataVersion.Store(v) }

// Bind attaches a storage backend. The backend's snapshot must already hold
// the table's rows (or be resynced by the next Analyze/ColumnSnapshot).
func (t *Table) Bind(st storage.Backend) {
	t.mu.Lock()
	t.store = st
	t.mu.Unlock()
}

// Store returns the bound storage backend, creating and populating the
// default in-memory backend on first use.
func (t *Table) Store() storage.Backend {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncedStoreLocked()
}

// syncedStoreLocked returns the backend, lazily bound and resynced to Rows
// if a legacy path replaced them wholesale. Caller holds t.mu.
func (t *Table) syncedStoreLocked() storage.Backend {
	if t.store == nil {
		t.store = storage.NewMemStoreRows(len(t.ColNames), t.Rows)
		return t.store
	}
	if t.store.Snapshot().N != len(t.Rows) {
		t.store.ResetRows(t.Rows)
	}
	return t.store
}

// ColumnSnapshot returns an immutable column-major view of the rows:
// cols[c][i] == Rows[i][c] for i < n. The pair is consistent — later
// appends publish new snapshots without disturbing this one — so it is safe
// to scan concurrently with mutations.
func (t *Table) ColumnSnapshot() (cols [][]int64, n int) {
	t.mu.Lock()
	snap := t.syncedStoreLocked().Snapshot()
	t.mu.Unlock()
	return snap.Cols, snap.N
}

// Columns returns the column-major mirror of Rows: Columns()[c][i] ==
// Rows[i][c]. It is a convenience over ColumnSnapshot for callers that read
// the row count separately; concurrent mutators make that pair racy, so
// execution paths use ColumnSnapshot.
func (t *Table) Columns() [][]int64 {
	cols, _ := t.ColumnSnapshot()
	return cols
}

// Analyze recomputes NumRows and per-column statistics (distincts, min/max,
// equi-depth histograms) from the stored rows, and resyncs the storage
// backend (Rows may have been replaced wholesale since the last sync).
func (t *Table) Analyze(buckets int) {
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	t.mu.Lock()
	t.NumRows = float64(len(t.Rows))
	t.Cols = make([]ColStats, len(t.ColNames))
	if t.store == nil {
		t.store = storage.NewMemStoreRows(len(t.ColNames), t.Rows)
	} else {
		t.store.ResetRows(t.Rows)
	}
	t.dataVersion.Add(1)
	snap := t.store.Snapshot()
	t.mu.Unlock()
	if snap.N == 0 {
		for i := range t.Cols {
			t.Cols[i] = ColStats{Distinct: 1}
		}
		return
	}
	for c := range t.ColNames {
		h := stats.BuildHistogram(snap.Cols[c], buckets)
		t.Cols[c] = ColStats{
			Distinct: h.Distinct(),
			Min:      h.Min(),
			Max:      h.Max(),
			Hist:     h,
		}
	}
}

// ZoneCols returns the column offsets whose segment zone maps make
// predicate pruning effective on the bound backend (none for the in-memory
// store). The optimizer enumerates segment-pruned scans over these.
func (t *Table) ZoneCols() []int {
	t.mu.Lock()
	st := t.store
	t.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.ZoneCols()
}

// SetSyntheticStats configures statistics without row data, for
// optimizer-only experiments: rows, and per-column distinct counts with
// value domain [0, distinct). Histograms are built over the uniform domain.
func (t *Table) SetSyntheticStats(rows float64, distincts []int64) {
	if len(distincts) != len(t.ColNames) {
		panic("catalog: SetSyntheticStats arity mismatch")
	}
	t.NumRows = rows
	t.Cols = make([]ColStats, len(t.ColNames))
	for c, d := range distincts {
		if d < 1 {
			d = 1
		}
		// A compact synthetic equi-depth histogram: one bucket per
		// decile of the domain, uniform counts.
		vals := make([]int64, 0, 64)
		per := rows / 64
		if per < 1 {
			per = 1
		}
		for i := 0; i < 64; i++ {
			vals = append(vals, int64(i)*d/64)
		}
		h := stats.BuildHistogram(vals, 8)
		h.Total = rows
		for i := range h.Counts {
			h.Counts[i] = rows / float64(len(h.Counts))
			h.DistinctPerBucket[i] = float64(d) / float64(len(h.Counts))
		}
		t.Cols[c] = ColStats{Distinct: float64(d), Min: 0, Max: d - 1, Hist: h}
	}
}

// Catalog is a named collection of tables.
type Catalog struct {
	tables map[string]*Table
	order  []string
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// Add registers a table, replacing any previous table of the same name.
func (c *Catalog) Add(t *Table) {
	if _, ok := c.tables[t.Name]; !ok {
		c.order = append(c.order, t.Name)
	}
	c.tables[t.Name] = t
}

// Table looks a table up by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// MustTable is Table for statically known names.
func (c *Catalog) MustTable(name string) *Table {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Names returns the table names in registration order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// AnalyzeAll refreshes statistics on every table holding row data.
func (c *Catalog) AnalyzeAll(buckets int) {
	for _, name := range c.order {
		t := c.tables[name]
		if len(t.Rows) > 0 || t.NumRows == 0 {
			t.Analyze(buckets)
		}
	}
}
