// Package catalog models the database's physical design and statistics:
// tables, columns, indexes, sort orders, row data, and the per-column
// statistics (row counts, distincts, min/max, equi-depth histograms) that
// the cost model consumes. The paper's built-in functions Fn_scansummary and
// the histogram machinery it mentions live on top of this package.
package catalog

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// DefaultHistogramBuckets is the bucket count used when analyzing tables.
const DefaultHistogramBuckets = 32

// ColStats carries the optimizer-visible statistics of one column.
type ColStats struct {
	Distinct float64
	Min, Max int64
	Hist     *stats.Histogram // nil until Analyze
}

// Table is a base table: schema, optional row data, physical design and
// statistics. Rows are fixed-arity []int64 records; strings and decimals are
// dictionary/fixed-point encoded by the workload generators. Alongside the
// row-major Rows, the table maintains a column-major mirror (see Columns)
// that the vectorized executor scans as zero-copy column windows.
type Table struct {
	Name     string
	ColNames []string
	Rows     [][]int64

	NumRows  float64
	Width    float64 // estimated bytes per row, for page-count costing
	Cols     []ColStats
	Indexes  []int // column offsets carrying an index, ascending
	SortedBy int   // column offset of the physical sort order, or -1

	// column-major mirror of Rows: colData[c][i] == Rows[i][c]. Built by
	// Analyze (or lazily by Columns) and invalidated by Append; all
	// columns share one contiguous backing array.
	colData [][]int64
	colRows int

	// dataVersion counts data mutations: every Append and every Analyze
	// (Rows may have been replaced wholesale before an Analyze) bumps it.
	// Derived state materialized from the table's rows — cached query
	// results above all — pins the version it read and treats any later
	// value as an invalidation signal. A spurious bump (an Analyze that
	// changed nothing) costs a rematerialization, never a wrong result.
	dataVersion uint64
}

// NewTable creates an empty table with the given schema. SortedBy defaults
// to -1 (heap organization).
func NewTable(name string, cols ...string) *Table {
	return &Table{
		Name:     name,
		ColNames: cols,
		Cols:     make([]ColStats, len(cols)),
		SortedBy: -1,
		Width:    float64(8 * len(cols)),
	}
}

// ColIndex returns the offset of the named column, or an error.
func (t *Table) ColIndex(name string) (int, error) {
	for i, c := range t.ColNames {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("catalog: table %s has no column %q", t.Name, name)
}

// MustCol is ColIndex for statically known names; it panics on a typo.
func (t *Table) MustCol(name string) int {
	i, err := t.ColIndex(name)
	if err != nil {
		panic(err)
	}
	return i
}

// AddIndex registers an index on the named column (idempotent).
func (t *Table) AddIndex(col string) {
	off := t.MustCol(col)
	for _, o := range t.Indexes {
		if o == off {
			return
		}
	}
	t.Indexes = append(t.Indexes, off)
	sort.Ints(t.Indexes)
}

// HasIndex reports whether the column offset carries an index.
func (t *Table) HasIndex(off int) bool {
	for _, o := range t.Indexes {
		if o == off {
			return true
		}
	}
	return false
}

// Append adds a row. The caller must Analyze afterwards to refresh stats.
func (t *Table) Append(row []int64) {
	if len(row) != len(t.ColNames) {
		panic(fmt.Sprintf("catalog: row arity %d != schema arity %d for %s",
			len(row), len(t.ColNames), t.Name))
	}
	t.Rows = append(t.Rows, row)
	t.colData = nil // column mirror is stale until the next Analyze/Columns
	t.dataVersion++
}

// DataVersion returns the table's data version: a counter bumped by every
// mutation of the stored rows (Append, wholesale replacement via Analyze).
// Consumers of materialized derived state compare the version they captured
// at materialization time against the current one to detect staleness.
func (t *Table) DataVersion() uint64 { return t.dataVersion }

// Columns returns the column-major mirror of Rows: Columns()[c][i] ==
// Rows[i][c], with every column a window of one contiguous allocation. The
// mirror is built by Analyze — callers that replace Rows wholesale (window
// materialization) must Analyze before executing, which they already do for
// statistics. Lazy (re)builds here are NOT safe under concurrent readers;
// concurrent execution paths only ever see tables whose mirror Analyze has
// already built.
func (t *Table) Columns() [][]int64 {
	if t.colData != nil && t.colRows == len(t.Rows) {
		return t.colData
	}
	w := len(t.ColNames)
	n := len(t.Rows)
	cols := make([][]int64, w)
	flat := make([]int64, w*n)
	for c := range cols {
		cols[c] = flat[c*n : (c+1)*n : (c+1)*n]
	}
	for i, r := range t.Rows {
		for c, v := range r {
			cols[c][i] = v
		}
	}
	t.colData = cols
	t.colRows = n
	return cols
}

// Analyze recomputes NumRows and per-column statistics (distincts, min/max,
// equi-depth histograms) from the stored rows.
func (t *Table) Analyze(buckets int) {
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	t.NumRows = float64(len(t.Rows))
	t.Cols = make([]ColStats, len(t.ColNames))
	t.colData = nil // Rows may have been replaced wholesale; rebuild
	t.dataVersion++
	if len(t.Rows) == 0 {
		for i := range t.Cols {
			t.Cols[i] = ColStats{Distinct: 1}
		}
		t.Columns()
		return
	}
	// Building histograms already transposes each column; Columns reuses
	// that transposition as the executor's column-major mirror.
	cols := t.Columns()
	for c := range t.ColNames {
		h := stats.BuildHistogram(cols[c], buckets)
		t.Cols[c] = ColStats{
			Distinct: h.Distinct(),
			Min:      h.Min(),
			Max:      h.Max(),
			Hist:     h,
		}
	}
}

// SetSyntheticStats configures statistics without row data, for
// optimizer-only experiments: rows, and per-column distinct counts with
// value domain [0, distinct). Histograms are built over the uniform domain.
func (t *Table) SetSyntheticStats(rows float64, distincts []int64) {
	if len(distincts) != len(t.ColNames) {
		panic("catalog: SetSyntheticStats arity mismatch")
	}
	t.NumRows = rows
	t.Cols = make([]ColStats, len(t.ColNames))
	for c, d := range distincts {
		if d < 1 {
			d = 1
		}
		// A compact synthetic equi-depth histogram: one bucket per
		// decile of the domain, uniform counts.
		vals := make([]int64, 0, 64)
		per := rows / 64
		if per < 1 {
			per = 1
		}
		for i := 0; i < 64; i++ {
			vals = append(vals, int64(i)*d/64)
		}
		h := stats.BuildHistogram(vals, 8)
		h.Total = rows
		for i := range h.Counts {
			h.Counts[i] = rows / float64(len(h.Counts))
			h.DistinctPerBucket[i] = float64(d) / float64(len(h.Counts))
		}
		t.Cols[c] = ColStats{Distinct: float64(d), Min: 0, Max: d - 1, Hist: h}
	}
}

// Catalog is a named collection of tables.
type Catalog struct {
	tables map[string]*Table
	order  []string
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// Add registers a table, replacing any previous table of the same name.
func (c *Catalog) Add(t *Table) {
	if _, ok := c.tables[t.Name]; !ok {
		c.order = append(c.order, t.Name)
	}
	c.tables[t.Name] = t
}

// Table looks a table up by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// MustTable is Table for statically known names.
func (c *Catalog) MustTable(name string) *Table {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Names returns the table names in registration order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// AnalyzeAll refreshes statistics on every table holding row data.
func (c *Catalog) AnalyzeAll(buckets int) {
	for _, name := range c.order {
		t := c.tables[name]
		if len(t.Rows) > 0 || t.NumRows == 0 {
			t.Analyze(buckets)
		}
	}
}
