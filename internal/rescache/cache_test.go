package rescache

import "testing"

// fixedVersions builds a cur func over a static table→version map.
func fixedVersions(m map[string]uint64) func(string) (uint64, bool) {
	return func(table string) (uint64, bool) {
		v, ok := m[table]
		return v, ok
	}
}

func entry(n int, cols int, tables ...TableVersion) *Entry {
	e := &Entry{N: n, Cards: map[string]int64{"root": int64(n)}, Versions: tables}
	for i := 0; i < cols; i++ {
		col := make([]int64, n)
		for j := range col {
			col[j] = int64(j)
		}
		e.Cols = append(e.Cols, col)
	}
	return e
}

func TestStoreProbeRoundTrip(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	live := fixedVersions(map[string]uint64{"a": 1})
	if _, ok := c.Probe("fp", live, nil); ok {
		t.Fatal("probe hit on an empty cache")
	}
	e := entry(100, 2, TableVersion{Table: "a", Version: 1})
	if !c.Store("fp", e) {
		t.Fatal("store rejected a fitting entry")
	}
	got, ok := c.Probe("fp", live, nil)
	if !ok || got != e {
		t.Fatal("probe did not return the stored entry")
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Stores != 1 || m.Entries != 1 {
		t.Fatalf("metrics %+v, want 1 hit / 1 miss / 1 store / 1 entry", m)
	}
	if m.Bytes != e.Bytes() || e.Bytes() <= int64(100*2*8) {
		t.Fatalf("accounted %d bytes, entry %d (payload floor %d)", m.Bytes, e.Bytes(), 100*2*8)
	}
}

func TestDisabledCache(t *testing.T) {
	for _, c := range []*Cache{nil, New(Options{})} {
		if c.Enabled() {
			t.Fatal("disabled cache claims enabled")
		}
		if c.Store("fp", entry(1, 1)) {
			t.Fatal("disabled cache admitted an entry")
		}
		if _, ok := c.Probe("fp", fixedVersions(nil), nil); ok {
			t.Fatal("disabled cache served an entry")
		}
		if c.MaxBytes() != 0 {
			t.Fatal("disabled cache reports a budget")
		}
		_ = c.Metrics() // must not panic on nil
	}
}

func TestVersionMismatchInvalidates(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	c.Store("fp", entry(10, 1, TableVersion{Table: "a", Version: 1}))
	if _, ok := c.Probe("fp", fixedVersions(map[string]uint64{"a": 2}), nil); ok {
		t.Fatal("probe served a stale data version")
	}
	m := c.Metrics()
	if m.Invalidations != 1 || m.Entries != 0 || m.Bytes != 0 {
		t.Fatalf("metrics %+v, want the entry invalidated and unaccounted", m)
	}
	// A vanished table invalidates too.
	c.Store("fp", entry(10, 1, TableVersion{Table: "gone", Version: 1}))
	if _, ok := c.Probe("fp", fixedVersions(nil), nil); ok {
		t.Fatal("probe served an entry over a dropped table")
	}
	if m := c.Metrics(); m.Invalidations != 2 {
		t.Fatalf("invalidations=%d, want 2", m.Invalidations)
	}
}

func TestAcceptRejectionKeepsEntry(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	live := fixedVersions(map[string]uint64{"a": 1})
	c.Store("fp", entry(10, 1, TableVersion{Table: "a", Version: 1}))
	if _, ok := c.Probe("fp", live, func(*Entry) bool { return false }); ok {
		t.Fatal("probe served a rejected entry")
	}
	m := c.Metrics()
	if m.Misses != 1 || m.Entries != 1 {
		t.Fatalf("metrics %+v: rejection must miss but keep the entry", m)
	}
	if _, ok := c.Probe("fp", live, func(*Entry) bool { return true }); !ok {
		t.Fatal("entry gone after an accept rejection")
	}
}

func TestBudgetEvictsLRU(t *testing.T) {
	a := entry(100, 1)
	per := a.size()
	c := New(Options{MaxBytes: 3 * per})
	c.Store("a", a)
	c.Store("b", entry(100, 1))
	c.Store("c", entry(100, 1))
	// Probe "a" so "b" is the least recently used.
	if _, ok := c.Probe("a", fixedVersions(nil), nil); !ok {
		t.Fatal("warm entry a missed")
	}
	c.Store("d", entry(100, 1))
	if m := c.Metrics(); m.Evictions != 1 || m.Entries != 3 || m.Bytes != 3*per {
		t.Fatalf("metrics %+v, want one eviction at 3 entries / %d bytes", m, 3*per)
	}
	if _, ok := c.Probe("b", fixedVersions(nil), nil); ok {
		t.Fatal("LRU entry b survived the budget")
	}
	for _, fp := range []string{"a", "c", "d"} {
		if _, ok := c.Probe(fp, fixedVersions(nil), nil); !ok {
			t.Fatalf("recently used entry %s was evicted", fp)
		}
	}
}

func TestOversizeRejected(t *testing.T) {
	c := New(Options{MaxBytes: 64})
	if c.Store("big", entry(1000, 4)) {
		t.Fatal("entry larger than the whole budget was admitted")
	}
	if m := c.Metrics(); m.Stores != 0 || m.Entries != 0 {
		t.Fatalf("metrics %+v after a rejected store", m)
	}
}

func TestStoreReplacesSameFingerprint(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	c.Store("fp", entry(10, 1))
	e2 := entry(20, 1)
	c.Store("fp", e2)
	got, ok := c.Probe("fp", fixedVersions(nil), nil)
	if !ok || got != e2 {
		t.Fatal("replacement store did not win")
	}
	if m := c.Metrics(); m.Entries != 1 || m.Bytes != e2.Bytes() {
		t.Fatalf("metrics %+v, want exactly the replacement accounted", m)
	}
}

func TestStalenessHorizonAndReclaim(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, StaleAfter: 5})
	c.Store("old", entry(10, 1))
	// Advance the logical clock past the horizon with unrelated probes.
	for i := 0; i < 6; i++ {
		c.Probe("none", fixedVersions(nil), nil)
	}
	if _, ok := c.Probe("old", fixedVersions(nil), nil); ok {
		t.Fatal("entry served beyond the staleness horizon")
	}
	// Past twice the horizon the sweep reclaims it.
	for i := 0; i < 10; i++ {
		c.Probe("none", fixedVersions(nil), nil)
	}
	if m := c.Metrics(); m.Reclaimed != 1 || m.Entries != 0 {
		t.Fatalf("metrics %+v, want the stale entry reclaimed", m)
	}
}

func TestProbeRefreshesAge(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, StaleAfter: 5})
	c.Store("hot", entry(10, 1))
	// Keep touching the entry: it must never go stale.
	for i := 0; i < 30; i++ {
		if _, ok := c.Probe("hot", fixedVersions(nil), nil); !ok {
			t.Fatalf("hot entry went stale at probe %d", i)
		}
	}
}

func TestInvalidateByTable(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	c.Store("ab", entry(10, 1, TableVersion{Table: "a", Version: 1}, TableVersion{Table: "b", Version: 1}))
	c.Store("b", entry(10, 1, TableVersion{Table: "b", Version: 1}))
	c.Store("c", entry(10, 1, TableVersion{Table: "c", Version: 1}))
	if n := c.Invalidate("b"); n != 2 {
		t.Fatalf("invalidated %d entries over table b, want 2", n)
	}
	m := c.Metrics()
	if m.Entries != 1 || m.Invalidations != 2 {
		t.Fatalf("metrics %+v, want only the c entry left", m)
	}
	if _, ok := c.Probe("c", fixedVersions(map[string]uint64{"c": 1}), nil); !ok {
		t.Fatal("unrelated entry was invalidated")
	}
}
