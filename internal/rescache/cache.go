// Package rescache is the server-wide semantic result cache: materialized
// columnar outputs of hot cacheable subplans, keyed by canonical
// subexpression fingerprint (relalg.Fingerprinter). Where the statistics
// plane (internal/fbstore) shares what the workload has LEARNED about a
// subexpression, this cache shares what an execution has already COMPUTED
// for it: two structurally different queries whose plans contain
// fingerprint-equal subtrees — the same filtered dimension scan, the same
// join core — execute the shared region once and serve it from memory
// thereafter, across statements and across sessions.
//
// The cache is deliberately dumb about plans: it stores opaque column
// vectors plus the bookkeeping needed to serve them soundly, and leaves all
// plan surgery (candidate selection, probe/spool decisions, column
// permutations, cardinality replay) to internal/exec. Three mechanisms keep
// a stored result trustworthy and the store bounded:
//
//   - Invalidation: every entry pins the data version (catalog.Table's
//     mutation counter) of each base table it was materialized from. A
//     probe revalidates the pinned versions against the live catalog; any
//     mismatch deletes the entry and reports a miss — appended rows can
//     never be served stale.
//   - Byte budget: entries are sized in bytes and admitted against
//     Options.MaxBytes with least-recently-probed eviction; an entry larger
//     than the whole budget is rejected outright.
//   - Ageing: like the statistics plane, the cache runs a LOGICAL clock —
//     one tick per probe — and Options.StaleAfter is the horizon beyond
//     which an unprobed entry stops serving (a cold recompute beats a
//     possibly-drifted materialization paired with drifting statistics);
//     entries older than twice the horizon are reclaimed by an amortized
//     sweep, so a retired workload's results do not squat in the budget.
//
// Concurrency: one mutex guards the map, the LRU list and the counters.
// Critical sections are O(1) outside eviction/sweep; the expensive parts —
// executing, materializing, permuting — all happen outside the cache.
// Entries are immutable after Store, so a reader holding a returned *Entry
// across an eviction or invalidation keeps a consistent (merely orphaned)
// result alive until it drops the pointer.
package rescache

import "sync"

// TableVersion pins one base table's data version at materialization time.
type TableVersion struct {
	Table   string
	Version uint64
}

// Entry is one materialized subexpression result. All fields are set by the
// producer before Store and immutable afterwards.
type Entry struct {
	// Cols is the column-major result in CANONICAL column order: the member
	// relations of the subexpression in relalg.Fingerprinter.CanonicalMembers
	// order, each contributing its full base-table arity. Canonical order is
	// what makes the entry query-independent — every consumer permutes these
	// headers (zero-copy) back into its own plan's schema order.
	Cols [][]int64
	// N is the row count (every column has length N).
	N int
	// Cards maps the canonical fingerprint of the subtree root and of every
	// counted interior node of the PRODUCING plan to its exact observed
	// cardinality. A consumer replays these into its RunStats so the
	// adaptive feedback loop sees byte-identical cardinalities whether the
	// subtree executed or was served from cache; a consumer whose subtree
	// shape needs a fingerprint the entry lacks must treat the probe as a
	// miss.
	Cards map[string]int64
	// Versions pins the data version of every base table the result was
	// materialized from; probes revalidate them against the live catalog.
	Versions []TableVersion

	bytes      int64
	tick       uint64 // logical clock at the last probe hit / store
	prev, next *Entry // LRU list, most recently used first
	fp         string
}

// Bytes returns the entry's accounted size.
func (e *Entry) Bytes() int64 { return e.bytes }

// size computes the accounted byte cost: the column payload plus a fixed
// per-entry overhead standing in for headers, map and bookkeeping.
func (e *Entry) size() int64 {
	const overhead = 256
	return int64(len(e.Cols))*int64(e.N)*8 + int64(len(e.Cards))*64 + overhead
}

// Options configures a Cache.
type Options struct {
	// MaxBytes is the byte budget across all entries; storing beyond it
	// evicts least-recently-probed entries first. <= 0 disables the cache
	// entirely (Store rejects, Probe always misses).
	MaxBytes int64
	// StaleAfter is the logical age (in probes) beyond which an unprobed
	// entry stops serving; entries older than twice this age are reclaimed
	// by the amortized sweep. 0 disables ageing.
	StaleAfter uint64
}

// reclaimAfter is the logical age at which a stale entry is deleted.
func (o Options) reclaimAfter() uint64 { return 2 * o.StaleAfter }

// Cache is a bounded, invalidating store of materialized subexpression
// results. Safe for concurrent use.
type Cache struct {
	opts Options

	mu         sync.Mutex
	m          map[string]*Entry
	head, tail *Entry // LRU list: head = most recently probed
	bytes      int64
	clock      uint64 // logical clock: one tick per probe
	lastSweep  uint64

	hits, misses, stores     int64
	evictions, invalidations int64
	reclaimed                int64
}

// New builds an empty cache.
func New(opts Options) *Cache {
	return &Cache{opts: opts, m: map[string]*Entry{}}
}

// Enabled reports whether the cache can hold anything at all.
func (c *Cache) Enabled() bool { return c != nil && c.opts.MaxBytes > 0 }

// Probe looks the fingerprint up and revalidates the entry's pinned table
// versions through cur (current data version by table name; ok=false means
// the table is gone). It returns the entry only when every version matches,
// the entry is within the staleness horizon, and accept (if non-nil)
// approves it; a version mismatch deletes the entry (counted as an
// invalidation), while an accept rejection counts a plain miss and leaves
// the entry in place — the rejecting caller's plan shape is incompatible,
// but other consumers' may not be, and a follow-up Store simply replaces
// it. Each probe ticks the logical clock and periodically sweeps
// reclaimable entries.
func (c *Cache) Probe(fp string, cur func(table string) (uint64, bool), accept func(*Entry) bool) (*Entry, bool) {
	if !c.Enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.maybeSweepLocked()
	e := c.m[fp]
	if e == nil {
		c.misses++
		return nil, false
	}
	if c.opts.StaleAfter > 0 && c.clock-e.tick > c.opts.StaleAfter {
		// Beyond the horizon: stop serving but leave the entry for the
		// sweep, so a barely-stale hot set can (not) come back cheaply and
		// the reclaim accounting stays in one place.
		c.misses++
		return nil, false
	}
	for _, v := range e.Versions {
		now, ok := cur(v.Table)
		if !ok || now != v.Version {
			c.unlinkLocked(e)
			c.invalidations++
			c.misses++
			return nil, false
		}
	}
	if accept != nil && !accept(e) {
		c.misses++
		return nil, false
	}
	e.tick = c.clock
	c.touchLocked(e)
	c.hits++
	return e, true
}

// MaxBytes returns the configured byte budget (0 when disabled). Producers
// use it to abandon a materialization that could never be admitted.
func (c *Cache) MaxBytes() int64 {
	if c == nil {
		return 0
	}
	return c.opts.MaxBytes
}

// Store admits a materialized entry under the fingerprint, evicting
// least-recently-probed entries until the byte budget holds. It rejects
// (returns false) when the cache is disabled or the entry alone exceeds the
// budget. Storing over an existing fingerprint replaces it — last writer
// wins; concurrent producers materialized the same logical result.
func (c *Cache) Store(fp string, e *Entry) bool {
	if !c.Enabled() || e == nil {
		return false
	}
	e.bytes = e.size()
	if e.bytes > c.opts.MaxBytes {
		return false
	}
	e.fp = fp
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.m[fp]; old != nil {
		c.unlinkLocked(old)
	}
	for c.bytes+e.bytes > c.opts.MaxBytes && c.tail != nil {
		c.unlinkLocked(c.tail)
		c.evictions++
	}
	e.tick = c.clock
	c.m[fp] = e
	c.pushFrontLocked(e)
	c.bytes += e.bytes
	c.stores++
	return true
}

// Invalidate drops every entry whose pinned versions include the table —
// the eager path for callers that know a table changed (tests, admin
// commands); regular serving relies on probe-time revalidation.
func (c *Cache) Invalidate(table string) int {
	if !c.Enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.m {
		for _, v := range e.Versions {
			if v.Table == table {
				c.unlinkLocked(e)
				c.invalidations++
				n++
				break
			}
		}
	}
	return n
}

// maybeSweepLocked reclaims entries beyond twice the staleness horizon, at
// most once per StaleAfter ticks so the cost amortizes to O(1) per probe.
func (c *Cache) maybeSweepLocked() {
	if c.opts.StaleAfter == 0 || c.clock-c.lastSweep < c.opts.StaleAfter {
		return
	}
	c.lastSweep = c.clock
	horizon := c.opts.reclaimAfter()
	for _, e := range c.m {
		if c.clock-e.tick > horizon {
			c.unlinkLocked(e)
			c.reclaimed++
		}
	}
}

func (c *Cache) pushFrontLocked(e *Entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) touchLocked(e *Entry) {
	if c.head == e {
		return
	}
	// unlink from the list only (stays in the map)
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	c.pushFrontLocked(e)
}

// unlinkLocked removes e from the map, the LRU list and the byte account.
func (c *Cache) unlinkLocked(e *Entry) {
	delete(c.m, e.fp)
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.bytes -= e.bytes
}

// Metrics is a consistent snapshot of the cache counters.
type Metrics struct {
	Entries int
	Bytes   int64
	Clock   uint64

	Hits          int64 // probes served from cache
	Misses        int64 // probes that found nothing servable
	Stores        int64 // entries admitted
	Evictions     int64 // entries evicted by the byte budget
	Invalidations int64 // entries dropped on a data-version mismatch
	Reclaimed     int64 // entries reclaimed by the staleness sweep
}

// Metrics snapshots the counters.
func (c *Cache) Metrics() Metrics {
	if c == nil {
		return Metrics{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{
		Entries: len(c.m), Bytes: c.bytes, Clock: c.clock,
		Hits: c.hits, Misses: c.misses, Stores: c.stores,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Reclaimed: c.reclaimed,
	}
}
