// Package exec is a pipelined, pull-based query executor over in-memory
// []int64 rows. It executes the physical plans produced by the optimizers —
// table/index scans with pushed-down selections, hash join, sort-merge
// join, index nested-loops join, sort, and hash aggregation — and collects
// per-operator actual output cardinalities, which the adaptive layer feeds
// back into incremental re-optimization (the paper's §5.2.2 "changes based
// on real execution" and §5.4 loop).
//
// The primary execution model is vectorized and columnar: operators
// implement VecIterator and exchange column-major batches — up to BatchSize
// rows held as one contiguous []int64 per column, with a selection vector
// for pushed-down predicates (batch.go). Leaf scans hand out zero-copy
// column windows over column-major base-table storage (catalog.Columns),
// so a filtering scan reads only the columns its conditions touch; the hot
// kernels — per-operator predicate selection, vectorized multiplicative
// hashing, join result stitching via Gather, flat-table aggregation — are
// tight loops over contiguous slices dispatched once per batch (kernels.go,
// exprkernels.go, vecjoin.go, agg.go). Batch column slices are recycled, so
// consumers copy values out before the producer's next call; DrainVec and
// the operator-internal materializing drains do exactly one such copy per
// row. Under the compiler's Parallelism option, parallelism is morsel-driven and
// extends across whole pipelines (pipeline.go): right-spine hash-join
// chains over a large leaf scan fuse into a parallelPipelineOp whose
// workers each run the full scan → probe cascade → partial-aggregate chain
// privately — join tables are built once with a partitioned parallel insert
// and shared read-only, aggregation state is worker-local in a flat
// open-addressing aggTable (agg.go, no per-row key allocation), and partial
// aggregates and exact per-operator cardinality counts merge once at the
// end, so RunStats feedback is byte-identical at any parallelism. Plans
// that don't match the pipeline shape fall back to morsel-driven parallel
// leaf scans behind an exchange channel (parallel.go). The row-at-a-time
// Iterator model below is kept both as a compatibility shim (NewRowIterator
// adapts any vectorized tree, so Drain/Count work unchanged) and as a
// differential baseline (Compiler.CompileRow) for testing and benchmarking
// the vectorized path.
package exec

import (
	"errors"
	"fmt"
	"sort"
)

// Row is one tuple. Strings and decimals are dictionary/fixed-point encoded
// by the workload generators, so the executor is integer-only.
type Row []int64

// Iterator is the Volcano-style operator interface.
type Iterator interface {
	// Open prepares the operator (builds hash tables, sorts inputs).
	Open() error
	// Next returns the next row, or ok=false at end of stream.
	Next() (Row, bool, error)
	// Close releases operator state.
	Close() error
}

// Drain runs an iterator to completion and returns all rows.
func Drain(it Iterator) ([]Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	var out []Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, errors.Join(err, it.Close())
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, it.Close()
}

// Count runs an iterator to completion and returns the row count without
// retaining rows.
func Count(it Iterator) (int64, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	var n int64
	for {
		_, ok, err := it.Next()
		if err != nil {
			return n, errors.Join(err, it.Close())
		}
		if !ok {
			break
		}
		n++
	}
	return n, it.Close()
}

// PredFn tests a row.
type PredFn func(Row) bool

// ---- scan ----

type scanOp struct {
	rows  [][]int64
	preds []PredFn
	pos   int
}

// NewScan returns a filtering scan over materialized rows.
func NewScan(rows [][]int64, preds []PredFn) Iterator {
	return &scanOp{rows: rows, preds: preds}
}

func (s *scanOp) Open() error { s.pos = 0; return nil }

func (s *scanOp) Next() (Row, bool, error) {
outer:
	for s.pos < len(s.rows) {
		r := Row(s.rows[s.pos])
		s.pos++
		for _, p := range s.preds {
			if !p(r) {
				continue outer
			}
		}
		return r, true, nil
	}
	return nil, false, nil
}

func (s *scanOp) Close() error { return nil }

// ---- hash join ----

type hashJoinOp struct {
	left, right  Iterator
	lKeys, rKeys []int
	residual     []PredFn // over the concatenated output row
	lWidth       int
	table        map[uint64][]Row
	probeRow     Row
	matches      []Row
	matchIdx     int
	rightDrained bool
}

// NewHashJoin builds a hash table over the left input keyed on the compound
// key of lKeys and probes it with the right input keyed on rKeys (the
// pipelined hash join of the paper's Table 1). Keying on every available
// equi-join column keeps match sets minimal; residual predicates (non-equi
// conditions) are evaluated over the concatenated (left ++ right) output
// row. Compound keys collide only by hash; a defensive equality check runs
// on every match.
func NewHashJoin(left, right Iterator, lKeys, rKeys []int, lWidth int, residual []PredFn) Iterator {
	return &hashJoinOp{left: left, right: right, lKeys: lKeys, rKeys: rKeys,
		lWidth: lWidth, residual: residual}
}

// hashKey combines key columns with an FNV-1a style mix.
func hashKey(r Row, cols []int) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range cols {
		v := uint64(r[c])
		for s := 0; s < 64; s += 8 {
			h ^= (v >> uint(s)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func keysEqual(l Row, lCols []int, r Row, rCols []int) bool {
	for i := range lCols {
		if l[lCols[i]] != r[rCols[i]] {
			return false
		}
	}
	return true
}

func (j *hashJoinOp) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	j.table = make(map[uint64][]Row)
	if err := j.left.Open(); err != nil {
		return err
	}
	for {
		r, ok, err := j.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := hashKey(r, j.lKeys)
		j.table[k] = append(j.table[k], r)
	}
	return j.left.Close()
}

func (j *hashJoinOp) Next() (Row, bool, error) {
	for {
		for j.matchIdx < len(j.matches) {
			l := j.matches[j.matchIdx]
			j.matchIdx++
			if !keysEqual(l, j.lKeys, j.probeRow, j.rKeys) {
				continue
			}
			out := make(Row, 0, j.lWidth+len(j.probeRow))
			out = append(out, l...)
			out = append(out, j.probeRow...)
			if evalAll(j.residual, out) {
				return out, true, nil
			}
		}
		if j.rightDrained {
			return nil, false, nil
		}
		r, ok, err := j.right.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.rightDrained = true
			return nil, false, nil
		}
		j.probeRow = r
		j.matches = j.table[hashKey(r, j.rKeys)]
		j.matchIdx = 0
	}
}

func (j *hashJoinOp) Close() error { j.table = nil; return j.right.Close() }

// ---- sort ----

type sortOp struct {
	in   Iterator
	col  int
	rows []Row
	pos  int
}

// NewSort materializes and sorts its input by the given column (the sort
// enforcer).
func NewSort(in Iterator, col int) Iterator { return &sortOp{in: in, col: col} }

func (s *sortOp) Open() error {
	rows, err := Drain(s.in)
	if err != nil {
		return err
	}
	sortRowsRefStable(rows, s.col)
	s.rows = rows
	s.pos = 0
	return nil
}

func (s *sortOp) Next() (Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sortOp) Close() error { s.rows = nil; return nil }

// ---- merge join ----

type mergeJoinOp struct {
	left, right Iterator
	lKey, rKey  int
	residual    []PredFn
	lRows       []Row
	rRows       []Row
	li, ri      int
	groupL      []Row
	groupR      []Row
	gi, gj      int
}

// NewMergeJoin joins two inputs already sorted on their key columns.
func NewMergeJoin(left, right Iterator, lKey, rKey int, residual []PredFn) Iterator {
	return &mergeJoinOp{left: left, right: right, lKey: lKey, rKey: rKey, residual: residual}
}

func (m *mergeJoinOp) Open() error {
	var err error
	if m.lRows, err = Drain(m.left); err != nil {
		return err
	}
	if m.rRows, err = Drain(m.right); err != nil {
		return err
	}
	// Defensive check: inputs must be sorted (the optimizer guarantees
	// it via properties; a violation is a planning bug worth surfacing).
	for i := 1; i < len(m.lRows); i++ {
		if m.lRows[i-1][m.lKey] > m.lRows[i][m.lKey] {
			return fmt.Errorf("exec: merge join left input not sorted on col %d", m.lKey)
		}
	}
	for i := 1; i < len(m.rRows); i++ {
		if m.rRows[i-1][m.rKey] > m.rRows[i][m.rKey] {
			return fmt.Errorf("exec: merge join right input not sorted on col %d", m.rKey)
		}
	}
	return nil
}

func (m *mergeJoinOp) Next() (Row, bool, error) {
	for {
		for m.gi < len(m.groupL) {
			for m.gj < len(m.groupR) {
				l, r := m.groupL[m.gi], m.groupR[m.gj]
				m.gj++
				out := make(Row, 0, len(l)+len(r))
				out = append(out, l...)
				out = append(out, r...)
				if evalAll(m.residual, out) {
					return out, true, nil
				}
			}
			m.gj = 0
			m.gi++
		}
		// advance to next matching key group
		if m.li >= len(m.lRows) || m.ri >= len(m.rRows) {
			return nil, false, nil
		}
		lk, rk := m.lRows[m.li][m.lKey], m.rRows[m.ri][m.rKey]
		switch {
		case lk < rk:
			m.li++
		case lk > rk:
			m.ri++
		default:
			ls, rs := m.li, m.ri
			for m.li < len(m.lRows) && m.lRows[m.li][m.lKey] == lk {
				m.li++
			}
			for m.ri < len(m.rRows) && m.rRows[m.ri][m.rKey] == rk {
				m.ri++
			}
			m.groupL, m.groupR = m.lRows[ls:m.li], m.rRows[rs:m.ri]
			m.gi, m.gj = 0, 0
		}
	}
}

func (m *mergeJoinOp) Close() error { m.lRows, m.rRows = nil, nil; return nil }

// ---- index nested-loops join ----

// Index is a hash index over one column of a base table's rows.
type Index map[int64][]Row

// BuildIndex constructs an index on column col; preds filter indexed rows
// (pushed-down local selections of the inner relation).
func BuildIndex(rows [][]int64, col int, preds []PredFn) Index {
	ix := Index{}
	for _, raw := range rows {
		r := Row(raw)
		keep := true
		for _, p := range preds {
			if !p(r) {
				keep = false
				break
			}
		}
		if keep {
			ix[r[col]] = append(ix[r[col]], r)
		}
	}
	return ix
}

type indexNLOp struct {
	outer    Iterator // the plan's RIGHT child
	index    Index    // inner: the plan's LEFT child (paper Table 1)
	outerKey int
	innerLen int
	residual []PredFn
	outerRow Row
	matches  []Row
	mi       int
	done     bool
}

// NewIndexNLJoin probes a prebuilt inner index with each outer row. The
// output row is inner ++ outer, matching the plan convention that the
// indexed inner is the left child.
func NewIndexNLJoin(outer Iterator, index Index, outerKey, innerLen int, residual []PredFn) Iterator {
	return &indexNLOp{outer: outer, index: index, outerKey: outerKey,
		innerLen: innerLen, residual: residual}
}

func (j *indexNLOp) Open() error { return j.outer.Open() }

func (j *indexNLOp) Next() (Row, bool, error) {
	for {
		for j.mi < len(j.matches) {
			in := j.matches[j.mi]
			j.mi++
			out := make(Row, 0, j.innerLen+len(j.outerRow))
			out = append(out, in...)
			out = append(out, j.outerRow...)
			if evalAll(j.residual, out) {
				return out, true, nil
			}
		}
		if j.done {
			return nil, false, nil
		}
		r, ok, err := j.outer.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.done = true
			return nil, false, nil
		}
		j.outerRow = r
		j.matches = j.index[r[j.outerKey]]
		j.mi = 0
	}
}

func (j *indexNLOp) Close() error { return j.outer.Close() }

// ---- projection ----

type projectOp struct {
	in   Iterator
	cols []int
}

// NewProject returns column projection.
func NewProject(in Iterator, cols []int) Iterator { return &projectOp{in: in, cols: cols} }

func (p *projectOp) Open() error { return p.in.Open() }

func (p *projectOp) Next() (Row, bool, error) {
	r, ok, err := p.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.cols))
	for i, c := range p.cols {
		out[i] = r[c]
	}
	return out, true, nil
}

func (p *projectOp) Close() error { return p.in.Close() }

// ---- counter (cardinality collection) ----

type counterOp struct {
	in Iterator
	n  *int64
}

// NewCounter wraps an iterator and accumulates its output cardinality into
// n — the execution-feedback probes of §5.2.2.
func NewCounter(in Iterator, n *int64) Iterator { return &counterOp{in: in, n: n} }

func (c *counterOp) Open() error { return c.in.Open() }

func (c *counterOp) Next() (Row, bool, error) {
	r, ok, err := c.in.Next()
	if ok {
		*c.n++
	}
	return r, ok, err
}

func (c *counterOp) Close() error { return c.in.Close() }

func sortRowsRefStable(rows []Row, col int) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i][col] < rows[j][col] })
}

func sortRowsStable(rows [][]int64, col int) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i][col] < rows[j][col] })
}

func evalAll(preds []PredFn, r Row) bool {
	for _, p := range preds {
		if !p(r) {
			return false
		}
	}
	return true
}
