package exec

import (
	"sync"

	"repro/internal/relalg"
)

// This file holds the batch kernels that make the vectorized path fast:
// predicate selection loops specialized per comparison operator (one
// operator dispatch per batch instead of one closure call per row) and a
// chained open-addressing hash table for the vectorized hash join (no
// per-probe map overhead, hash prefiltering before key comparison).

// ScanCond is a structured pushed-down selection: row[Off] <Op> Val. The
// vectorized scans evaluate conditions with per-batch kernels; opaque
// PredFn closures remain supported as a fallback.
type ScanCond struct {
	Off int
	Op  relalg.CmpOp
	Val int64
}

// ScanFilter bundles the pushed-down selections of one scan.
type ScanFilter struct {
	Conds []ScanCond
	Preds []PredFn // opaque fallback predicates, applied after Conds
}

// Empty reports whether the filter passes every row.
func (f ScanFilter) Empty() bool { return len(f.Conds) == 0 && len(f.Preds) == 0 }

// Sel computes the selection vector of chunk into buf (reused across
// batches by the caller). The first condition scans the chunk densely; each
// further condition compacts the selection in place.
func (f ScanFilter) Sel(chunk [][]int64, buf []int) []int {
	sel := buf[:0]
	dense := true
	for _, c := range f.Conds {
		if dense {
			sel = condSelDense(chunk, c, sel)
			dense = false
		} else {
			sel = condSelRefine(chunk, c, sel)
		}
	}
	if dense {
		for i := range chunk {
			sel = append(sel, i)
		}
	}
	for _, p := range f.Preds {
		out := sel[:0]
		for _, i := range sel {
			if p(Row(chunk[i])) {
				out = append(out, i)
			}
		}
		sel = out
	}
	return sel
}

// condSelDense appends the indices of chunk rows satisfying c to sel, with
// one operator dispatch for the whole chunk.
func condSelDense(chunk [][]int64, c ScanCond, sel []int) []int {
	off, val := c.Off, c.Val
	switch c.Op {
	case relalg.CmpEQ:
		for i, r := range chunk {
			if r[off] == val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpNE:
		for i, r := range chunk {
			if r[off] != val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpLT:
		for i, r := range chunk {
			if r[off] < val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpLE:
		for i, r := range chunk {
			if r[off] <= val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpGT:
		for i, r := range chunk {
			if r[off] > val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpGE:
		for i, r := range chunk {
			if r[off] >= val {
				sel = append(sel, i)
			}
		}
	}
	return sel
}

// condSelRefine compacts sel in place to the rows also satisfying c.
func condSelRefine(chunk [][]int64, c ScanCond, sel []int) []int {
	off, val := c.Off, c.Val
	out := sel[:0]
	switch c.Op {
	case relalg.CmpEQ:
		for _, i := range sel {
			if chunk[i][off] == val {
				out = append(out, i)
			}
		}
	case relalg.CmpNE:
		for _, i := range sel {
			if chunk[i][off] != val {
				out = append(out, i)
			}
		}
	case relalg.CmpLT:
		for _, i := range sel {
			if chunk[i][off] < val {
				out = append(out, i)
			}
		}
	case relalg.CmpLE:
		for _, i := range sel {
			if chunk[i][off] <= val {
				out = append(out, i)
			}
		}
	case relalg.CmpGT:
		for _, i := range sel {
			if chunk[i][off] > val {
				out = append(out, i)
			}
		}
	case relalg.CmpGE:
		for _, i := range sel {
			if chunk[i][off] >= val {
				out = append(out, i)
			}
		}
	}
	return out
}

// hashCols mixes the compound key columns of r with a multiplicative hash —
// cheaper than the row path's byte-wise FNV, and strong enough for bucket
// selection since every chain hit is verified by hash and key equality.
func hashCols(r []int64, cols []int) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, c := range cols {
		h = (h ^ uint64(r[c])) * 0xBF58476D1CE4E5B9
	}
	h ^= h >> 32
	return h
}

// joinTable is the vectorized hash join's build-side table: a power-of-two
// bucket array of chain heads plus per-row next links and full hashes for
// prefiltering, laid out as flat arrays instead of a Go map.
type joinTable struct {
	mask   uint64
	head   []int32 // bucket -> 1-based index of the chain head row
	next   []int32 // row -> 1-based index of the next row in its chain
	hashes []uint64
	rows   [][]int64
}

func buildJoinTable(rows [][]int64, keys []int) *joinTable {
	size := 16
	for size < 2*len(rows) {
		size <<= 1
	}
	t := &joinTable{
		mask:   uint64(size - 1),
		head:   make([]int32, size),
		next:   make([]int32, len(rows)),
		hashes: make([]uint64, len(rows)),
		rows:   rows,
	}
	for i, r := range rows {
		h := hashCols(r, keys)
		b := h & t.mask
		t.hashes[i] = h
		t.next[i] = t.head[b]
		t.head[b] = int32(i + 1)
	}
	return t
}

// newJoinTable picks the build strategy: partitioned parallel when the
// build side is large enough to pay for worker startup, serial otherwise.
// Either way the resulting table is the same read-only structure the probe
// loops already use.
func newJoinTable(rows [][]int64, keys []int, workers int) *joinTable {
	if workers > 1 && len(rows) >= minParallelRows {
		return buildJoinTableParallel(rows, keys, workers)
	}
	return buildJoinTable(rows, keys)
}

// buildJoinTableParallel builds the same flat chained table as
// buildJoinTable with a two-phase partitioned insert. Phase 1: workers hash
// disjoint row chunks and bin the row indices by destination bucket
// partition into per-(worker, partition) buffers. Phase 2: each partition
// owner links exactly the rows binned for its contiguous bucket range, so
// every head and next slot is written by a single goroutine and the table
// comes out identical (up to chain order, which the probe treats as a
// multiset) without any synchronization on the hot arrays.
func buildJoinTableParallel(rows [][]int64, keys []int, workers int) *joinTable {
	n := len(rows)
	size := 16
	for size < 2*n {
		size <<= 1
	}
	t := &joinTable{
		mask:   uint64(size - 1),
		head:   make([]int32, size),
		next:   make([]int32, n),
		hashes: make([]uint64, n),
		rows:   rows,
	}
	if workers > n {
		workers = n
	}
	// partition p owns buckets [p*size/workers, (p+1)*size/workers)
	partOf := func(bucket uint64) int { return int(bucket) * workers / size }

	bins := make([][][]int32, workers) // bins[worker][partition] -> row indices
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			mine := make([][]int32, workers)
			for i := lo; i < hi; i++ {
				h := hashCols(rows[i], keys)
				t.hashes[i] = h
				p := partOf(h & t.mask)
				mine[p] = append(mine[p], int32(i))
			}
			bins[w] = mine
		}(w, lo, hi)
	}
	wg.Wait()
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for w := 0; w < workers; w++ {
				if bins[w] == nil {
					continue
				}
				for _, i := range bins[w][p] {
					b := t.hashes[i] & t.mask
					t.next[i] = t.head[b]
					t.head[b] = i + 1
				}
			}
		}(p)
	}
	wg.Wait()
	return t
}
