package exec

import (
	"sync"

	"repro/internal/relalg"
)

// This file holds the batch kernels that make the vectorized path fast:
// predicate selection loops specialized per comparison operator running
// over one contiguous column slice each (one operator dispatch per batch,
// no per-row pointer chase), a vectorized multiplicative hash over key
// columns, and a chained open-addressing hash table for the vectorized
// hash join whose build side is stored column-major.

// ScanCond is a structured pushed-down selection: col[Off] <Op> Val. The
// vectorized scans evaluate conditions with per-batch single-column
// kernels; opaque PredFn closures remain supported as a fallback.
type ScanCond struct {
	Off int
	Op  relalg.CmpOp
	Val int64
}

// ScanFilter bundles the pushed-down selections of one scan.
type ScanFilter struct {
	Conds []ScanCond
	Preds []PredFn // opaque fallback predicates, applied after Conds
}

// Empty reports whether the filter passes every row.
func (f ScanFilter) Empty() bool { return len(f.Conds) == 0 && len(f.Preds) == 0 }

// SelCols computes the selection vector of a column-major chunk (cols[c]
// holding rows 0..n-1) into buf, which is reused across batches by the
// caller. The first condition scans its column densely; each further
// condition compacts the selection in place, touching only its own column.
// Opaque fallback predicates gather a scratch row per surviving candidate
// (the slow path; compiler-generated filters always use Conds).
func (f ScanFilter) SelCols(cols [][]int64, n int, buf []int) []int {
	sel := buf[:0]
	dense := true
	for _, c := range f.Conds {
		if dense {
			sel = condSelDense(cols[c.Off], n, c.Op, c.Val, sel)
			dense = false
		} else {
			sel = condSelRefine(cols[c.Off], c.Op, c.Val, sel)
		}
	}
	if dense {
		for i := 0; i < n; i++ {
			sel = append(sel, i)
		}
	}
	if len(f.Preds) > 0 {
		scratch := make(Row, len(cols))
		out := sel[:0]
		for _, i := range sel {
			for c := range cols {
				scratch[c] = cols[c][i]
			}
			keep := true
			for _, p := range f.Preds {
				if !p(scratch) {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, i)
			}
		}
		sel = out
	}
	return sel
}

// condSelDense appends the indices i < n with col[i] <op> val to sel, with
// one operator dispatch for the whole column.
func condSelDense(col []int64, n int, op relalg.CmpOp, val int64, sel []int) []int {
	col = col[:n]
	switch op {
	case relalg.CmpEQ:
		for i, v := range col {
			if v == val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpNE:
		for i, v := range col {
			if v != val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpLT:
		for i, v := range col {
			if v < val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpLE:
		for i, v := range col {
			if v <= val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpGT:
		for i, v := range col {
			if v > val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpGE:
		for i, v := range col {
			if v >= val {
				sel = append(sel, i)
			}
		}
	}
	return sel
}

// condSelRefine compacts sel in place to the rows whose col value also
// satisfies the condition.
func condSelRefine(col []int64, op relalg.CmpOp, val int64, sel []int) []int {
	out := sel[:0]
	switch op {
	case relalg.CmpEQ:
		for _, i := range sel {
			if col[i] == val {
				out = append(out, i)
			}
		}
	case relalg.CmpNE:
		for _, i := range sel {
			if col[i] != val {
				out = append(out, i)
			}
		}
	case relalg.CmpLT:
		for _, i := range sel {
			if col[i] < val {
				out = append(out, i)
			}
		}
	case relalg.CmpLE:
		for _, i := range sel {
			if col[i] <= val {
				out = append(out, i)
			}
		}
	case relalg.CmpGT:
		for _, i := range sel {
			if col[i] > val {
				out = append(out, i)
			}
		}
	case relalg.CmpGE:
		for _, i := range sel {
			if col[i] >= val {
				out = append(out, i)
			}
		}
	}
	return out
}

// ColPred is a structured residual predicate over a joined output row:
// row[L] <Op> row[R] + Off. Join equality residuals are {L, R, CmpEQ, 0};
// cross-relation filters carry their constant offset. Every residual the
// compiler generates has this shape, so joins evaluate residuals with
// column kernels on (build, probe) index pairs instead of gathering a row
// and calling a closure.
type ColPred struct {
	L, R int
	Op   relalg.CmpOp
	Off  int64
}

// evalColPredsRow evaluates the predicates against a materialized row —
// the row-shim and test helper; hot paths use filterPairs.
func evalColPredsRow(preds []ColPred, r Row) bool {
	for _, p := range preds {
		if !p.Op.Eval(r[p.L], r[p.R]+p.Off) {
			return false
		}
	}
	return true
}

// ---- vectorized hashing ----

const (
	hashSeed = uint64(0x9E3779B97F4A7C15)
	hashMul  = uint64(0xBF58476D1CE4E5B9)
)

// hashCols mixes the compound key columns of r with a multiplicative hash —
// cheaper than the row path's byte-wise FNV, and strong enough for bucket
// selection since every chain hit is verified by hash and key equality.
// hashLive and hashDenseRange compute bit-identical values column-wise.
func hashCols(r []int64, cols []int) uint64 {
	h := hashSeed
	for _, c := range cols {
		h = (h ^ uint64(r[c])) * hashMul
	}
	h ^= h >> 32
	return h
}

// hashLive computes the hash of every live row of a column-major chunk into
// dst (reused across batches), one column pass per key: dst[k] is the hash
// of the k-th live row. The per-element recurrence is exactly hashCols'.
// One- and two-column keys (nearly every join and group-by in the workload)
// get fused single-pass loops; wider keys fall back to a pass per column.
func hashLive(dst []uint64, cols [][]int64, keys []int, n int, sel []int) []uint64 {
	m := n
	if sel != nil {
		m = len(sel)
	}
	if m == 0 {
		return dst[:0]
	}
	if cap(dst) < m {
		dst = make([]uint64, m)
	}
	dst = dst[:m]
	switch len(keys) {
	case 1:
		col := cols[keys[0]]
		if sel == nil {
			for i := 0; i < n; i++ {
				h := (hashSeed ^ uint64(col[i])) * hashMul
				dst[i] = h ^ h>>32
			}
		} else {
			for k, i := range sel {
				h := (hashSeed ^ uint64(col[i])) * hashMul
				dst[k] = h ^ h>>32
			}
		}
		return dst
	case 2:
		c0, c1 := cols[keys[0]], cols[keys[1]]
		if sel == nil {
			for i := 0; i < n; i++ {
				h := (hashSeed ^ uint64(c0[i])) * hashMul
				h = (h ^ uint64(c1[i])) * hashMul
				dst[i] = h ^ h>>32
			}
		} else {
			for k, i := range sel {
				h := (hashSeed ^ uint64(c0[i])) * hashMul
				h = (h ^ uint64(c1[i])) * hashMul
				dst[k] = h ^ h>>32
			}
		}
		return dst
	}
	for k := range dst {
		dst[k] = hashSeed
	}
	for _, key := range keys {
		col := cols[key]
		if sel == nil {
			for i := 0; i < n; i++ {
				dst[i] = (dst[i] ^ uint64(col[i])) * hashMul
			}
		} else {
			for k, i := range sel {
				dst[k] = (dst[k] ^ uint64(col[i])) * hashMul
			}
		}
	}
	for k := range dst {
		dst[k] ^= dst[k] >> 32
	}
	return dst
}

// hashDenseRange fills dst[lo:hi] with the hashes of rows lo..hi-1 of a
// column-major row set — the build-side hashing pass, shared by the serial
// and partitioned parallel join-table builds.
func hashDenseRange(dst []uint64, cols [][]int64, keys []int, lo, hi int) {
	if lo >= hi {
		return
	}
	switch len(keys) {
	case 1:
		col := cols[keys[0]]
		for i := lo; i < hi; i++ {
			h := (hashSeed ^ uint64(col[i])) * hashMul
			dst[i] = h ^ h>>32
		}
		return
	case 2:
		c0, c1 := cols[keys[0]], cols[keys[1]]
		for i := lo; i < hi; i++ {
			h := (hashSeed ^ uint64(c0[i])) * hashMul
			h = (h ^ uint64(c1[i])) * hashMul
			dst[i] = h ^ h>>32
		}
		return
	}
	for i := lo; i < hi; i++ {
		dst[i] = hashSeed
	}
	for _, key := range keys {
		col := cols[key]
		for i := lo; i < hi; i++ {
			dst[i] = (dst[i] ^ uint64(col[i])) * hashMul
		}
	}
	for i := lo; i < hi; i++ {
		dst[i] ^= dst[i] >> 32
	}
}

// colKeysEqual compares the compound key of build row bi against probe row
// pi, both column-major.
func colKeysEqual(bCols [][]int64, bKeys []int, bi int, pCols [][]int64, pKeys []int, pi int) bool {
	for k := range bKeys {
		if bCols[bKeys[k]][bi] != pCols[pKeys[k]][pi] {
			return false
		}
	}
	return true
}

// ---- join hash table ----

// joinTable is the vectorized hash join's build-side table: a power-of-two
// bucket array of chain heads plus per-row next links and full hashes for
// prefiltering, laid out as flat arrays instead of a Go map. The build rows
// themselves are column-major, so probe-time key verification and result
// stitching read contiguous column slices.
type joinTable struct {
	mask   uint64
	head   []int32 // bucket -> 1-based index of the chain head row
	next   []int32 // row -> 1-based index of the next row in its chain
	hashes []uint64
	data   colData
}

func buildJoinTable(data colData, keys []int) *joinTable {
	n := data.n
	size := 16
	for size < 2*n {
		size <<= 1
	}
	t := &joinTable{
		mask:   uint64(size - 1),
		head:   make([]int32, size),
		next:   make([]int32, n),
		hashes: make([]uint64, n),
		data:   data,
	}
	hashDenseRange(t.hashes, data.cols, keys, 0, n)
	for i := 0; i < n; i++ {
		b := t.hashes[i] & t.mask
		t.next[i] = t.head[b]
		t.head[b] = int32(i + 1)
	}
	return t
}

// newJoinTable picks the build strategy: partitioned parallel when the
// build side is large enough to pay for worker startup, serial otherwise.
// Either way the resulting table is the same read-only structure the probe
// loops already use.
func newJoinTable(data colData, keys []int, workers int) *joinTable {
	if workers > 1 && data.n >= minParallelRows {
		return buildJoinTableParallel(data, keys, workers)
	}
	return buildJoinTable(data, keys)
}

// buildJoinTableParallel builds the same flat chained table as
// buildJoinTable with a two-phase partitioned insert. Phase 1: workers hash
// disjoint row ranges column-wise and bin the row indices by destination
// bucket partition into per-(worker, partition) buffers. Phase 2: each
// partition owner links exactly the rows binned for its contiguous bucket
// range, so every head and next slot is written by a single goroutine and
// the table comes out identical (up to chain order, which the probe treats
// as a multiset) without any synchronization on the hot arrays.
func buildJoinTableParallel(data colData, keys []int, workers int) *joinTable {
	n := data.n
	size := 16
	for size < 2*n {
		size <<= 1
	}
	t := &joinTable{
		mask:   uint64(size - 1),
		head:   make([]int32, size),
		next:   make([]int32, n),
		hashes: make([]uint64, n),
		data:   data,
	}
	if workers > n {
		workers = n
	}
	// partition p owns buckets [p*size/workers, (p+1)*size/workers)
	partOf := func(bucket uint64) int { return int(bucket) * workers / size }

	bins := make([][][]int32, workers) // bins[worker][partition] -> row indices
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			hashDenseRange(t.hashes, data.cols, keys, lo, hi)
			mine := make([][]int32, workers)
			for i := lo; i < hi; i++ {
				p := partOf(t.hashes[i] & t.mask)
				mine[p] = append(mine[p], int32(i))
			}
			bins[w] = mine
		}(w, lo, hi)
	}
	wg.Wait()
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for w := 0; w < workers; w++ {
				if bins[w] == nil {
					continue
				}
				for _, i := range bins[w][p] {
					b := t.hashes[i] & t.mask
					t.next[i] = t.head[b]
					t.head[b] = i + 1
				}
			}
		}(p)
	}
	wg.Wait()
	return t
}

// ---- sort kernel ----

// sortColsStable stable-sorts a column-major row set by one column: it
// sorts a row-index permutation, then gathers every column once through it.
func sortColsStable(data colData, col int) colData {
	if data.n == 0 {
		return data
	}
	n := data.n
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	key := data.cols[col]
	stableSortPerm(perm, key)
	out := colData{cols: make([][]int64, data.width()), n: n}
	flat := make([]int64, data.width()*n)
	for c, src := range data.cols {
		dst := flat[c*n : (c+1)*n : (c+1)*n]
		Gather(dst, src, perm)
		out.cols[c] = dst
	}
	return out
}
