package exec

import "repro/internal/relalg"

// This file holds the batch kernels that make the vectorized path fast:
// predicate selection loops specialized per comparison operator (one
// operator dispatch per batch instead of one closure call per row) and a
// chained open-addressing hash table for the vectorized hash join (no
// per-probe map overhead, hash prefiltering before key comparison).

// ScanCond is a structured pushed-down selection: row[Off] <Op> Val. The
// vectorized scans evaluate conditions with per-batch kernels; opaque
// PredFn closures remain supported as a fallback.
type ScanCond struct {
	Off int
	Op  relalg.CmpOp
	Val int64
}

// ScanFilter bundles the pushed-down selections of one scan.
type ScanFilter struct {
	Conds []ScanCond
	Preds []PredFn // opaque fallback predicates, applied after Conds
}

// Empty reports whether the filter passes every row.
func (f ScanFilter) Empty() bool { return len(f.Conds) == 0 && len(f.Preds) == 0 }

// Sel computes the selection vector of chunk into buf (reused across
// batches by the caller). The first condition scans the chunk densely; each
// further condition compacts the selection in place.
func (f ScanFilter) Sel(chunk [][]int64, buf []int) []int {
	sel := buf[:0]
	dense := true
	for _, c := range f.Conds {
		if dense {
			sel = condSelDense(chunk, c, sel)
			dense = false
		} else {
			sel = condSelRefine(chunk, c, sel)
		}
	}
	if dense {
		for i := range chunk {
			sel = append(sel, i)
		}
	}
	for _, p := range f.Preds {
		out := sel[:0]
		for _, i := range sel {
			if p(Row(chunk[i])) {
				out = append(out, i)
			}
		}
		sel = out
	}
	return sel
}

// condSelDense appends the indices of chunk rows satisfying c to sel, with
// one operator dispatch for the whole chunk.
func condSelDense(chunk [][]int64, c ScanCond, sel []int) []int {
	off, val := c.Off, c.Val
	switch c.Op {
	case relalg.CmpEQ:
		for i, r := range chunk {
			if r[off] == val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpNE:
		for i, r := range chunk {
			if r[off] != val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpLT:
		for i, r := range chunk {
			if r[off] < val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpLE:
		for i, r := range chunk {
			if r[off] <= val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpGT:
		for i, r := range chunk {
			if r[off] > val {
				sel = append(sel, i)
			}
		}
	case relalg.CmpGE:
		for i, r := range chunk {
			if r[off] >= val {
				sel = append(sel, i)
			}
		}
	}
	return sel
}

// condSelRefine compacts sel in place to the rows also satisfying c.
func condSelRefine(chunk [][]int64, c ScanCond, sel []int) []int {
	off, val := c.Off, c.Val
	out := sel[:0]
	switch c.Op {
	case relalg.CmpEQ:
		for _, i := range sel {
			if chunk[i][off] == val {
				out = append(out, i)
			}
		}
	case relalg.CmpNE:
		for _, i := range sel {
			if chunk[i][off] != val {
				out = append(out, i)
			}
		}
	case relalg.CmpLT:
		for _, i := range sel {
			if chunk[i][off] < val {
				out = append(out, i)
			}
		}
	case relalg.CmpLE:
		for _, i := range sel {
			if chunk[i][off] <= val {
				out = append(out, i)
			}
		}
	case relalg.CmpGT:
		for _, i := range sel {
			if chunk[i][off] > val {
				out = append(out, i)
			}
		}
	case relalg.CmpGE:
		for _, i := range sel {
			if chunk[i][off] >= val {
				out = append(out, i)
			}
		}
	}
	return out
}

// hashCols mixes the compound key columns of r with a multiplicative hash —
// cheaper than the row path's byte-wise FNV, and strong enough for bucket
// selection since every chain hit is verified by hash and key equality.
func hashCols(r []int64, cols []int) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, c := range cols {
		h = (h ^ uint64(r[c])) * 0xBF58476D1CE4E5B9
	}
	h ^= h >> 32
	return h
}

// joinTable is the vectorized hash join's build-side table: a power-of-two
// bucket array of chain heads plus per-row next links and full hashes for
// prefiltering, laid out as flat arrays instead of a Go map.
type joinTable struct {
	mask   uint64
	head   []int32 // bucket -> 1-based index of the chain head row
	next   []int32 // row -> 1-based index of the next row in its chain
	hashes []uint64
	rows   [][]int64
}

func buildJoinTable(rows [][]int64, keys []int) *joinTable {
	size := 16
	for size < 2*len(rows) {
		size <<= 1
	}
	t := &joinTable{
		mask:   uint64(size - 1),
		head:   make([]int32, size),
		next:   make([]int32, len(rows)),
		hashes: make([]uint64, len(rows)),
		rows:   rows,
	}
	for i, r := range rows {
		h := hashCols(r, keys)
		b := h & t.mask
		t.hashes[i] = h
		t.next[i] = t.head[b]
		t.head[b] = int32(i + 1)
	}
	return t
}
