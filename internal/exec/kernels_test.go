package exec

import (
	"math/rand"
	"testing"

	"repro/internal/relalg"
)

// ---- expression kernel unit tests ----

func TestGather(t *testing.T) {
	src := []int64{10, 20, 30, 40, 50}
	dst := make([]int64, 3)
	Gather(dst, src, []int32{4, 0, 2})
	if dst[0] != 50 || dst[1] != 10 || dst[2] != 30 {
		t.Fatalf("Gather = %v", dst)
	}
	// Empty index vector: no writes, no panic.
	Gather(dst[:0], src, nil)
	// Full-batch identity gather.
	full := make([]int64, len(src))
	idx := make([]int32, len(src))
	for i := range idx {
		idx[i] = int32(i)
	}
	Gather(full, src, idx)
	for i := range src {
		if full[i] != src[i] {
			t.Fatalf("identity gather differs at %d", i)
		}
	}
}

func TestArithmeticKernels(t *testing.T) {
	a := []int64{1, -2, 3, 1 << 40}
	b := []int64{10, 20, -30, 5}
	dst := make([]int64, 4)
	AddCols(dst, a, b)
	for i := range dst {
		if dst[i] != a[i]+b[i] {
			t.Fatalf("AddCols[%d] = %d", i, dst[i])
		}
	}
	SubCols(dst, a, b)
	for i := range dst {
		if dst[i] != a[i]-b[i] {
			t.Fatalf("SubCols[%d] = %d", i, dst[i])
		}
	}
	MulCols(dst, a, b)
	for i := range dst {
		if dst[i] != a[i]*b[i] {
			t.Fatalf("MulCols[%d] = %d", i, dst[i])
		}
	}
	AddConst(dst, a, 7)
	for i := range dst {
		if dst[i] != a[i]+7 {
			t.Fatalf("AddConst[%d] = %d", i, dst[i])
		}
	}
	// Empty destination: all kernels are no-ops.
	AddCols(nil, nil, nil)
	SubCols(nil, nil, nil)
	MulCols(nil, nil, nil)
	AddConst(nil, nil, 1)
}

func TestMinMaxCol(t *testing.T) {
	col := []int64{5, -3, 8, 0, 8, -3}
	if v, ok := MinCol(col, len(col), nil); !ok || v != -3 {
		t.Fatalf("MinCol dense = %d, %v", v, ok)
	}
	if v, ok := MaxCol(col, len(col), nil); !ok || v != 8 {
		t.Fatalf("MaxCol dense = %d, %v", v, ok)
	}
	sel := []int{0, 2, 3}
	if v, ok := MinCol(col, len(col), sel); !ok || v != 0 {
		t.Fatalf("MinCol sel = %d, %v", v, ok)
	}
	if v, ok := MaxCol(col, len(col), sel); !ok || v != 8 {
		t.Fatalf("MaxCol sel = %d, %v", v, ok)
	}
	// Empty selection and empty column both report ok=false.
	if _, ok := MinCol(col, len(col), []int{}); ok {
		t.Fatal("MinCol on empty selection reported ok")
	}
	if _, ok := MaxCol(nil, 0, nil); ok {
		t.Fatal("MaxCol on empty column reported ok")
	}
	// Single-element edge.
	if v, ok := MinCol(col, 1, nil); !ok || v != 5 {
		t.Fatalf("MinCol n=1 = %d, %v", v, ok)
	}
}

func TestCaseSelect(t *testing.T) {
	cond := []int64{1, 0, -7, 0}
	a := []int64{10, 20, 30, 40}
	b := []int64{-1, -2, -3, -4}
	dst := make([]int64, 4)
	CaseSelect(dst, cond, a, b)
	want := []int64{10, -2, 30, -4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("CaseSelect = %v, want %v", dst, want)
		}
	}
	CaseSelect(nil, nil, nil, nil) // empty batch is a no-op
}

// ---- property test: columnar selection vs row-path closures ----

// TestSelColsMatchesRowClosures drives ScanFilter.SelCols over random
// column-major chunks with random condition sets and checks the selected
// row set against evaluating the equivalent row-at-a-time closures, the
// way the legacy interpreter does. Also pins the empty-selection and
// full-batch edges.
func TestSelColsMatchesRowClosures(t *testing.T) {
	ops := []relalg.CmpOp{relalg.CmpEQ, relalg.CmpNE, relalg.CmpLT,
		relalg.CmpLE, relalg.CmpGT, relalg.CmpGE}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(4)
		n := rng.Intn(2 * BatchSize)
		cols := make([][]int64, width)
		for c := range cols {
			cols[c] = make([]int64, n)
			for i := range cols[c] {
				cols[c][i] = int64(rng.Intn(20))
			}
		}
		nconds := rng.Intn(4)
		conds := make([]ScanCond, nconds)
		for k := range conds {
			conds[k] = ScanCond{Off: rng.Intn(width),
				Op: ops[rng.Intn(len(ops))], Val: int64(rng.Intn(20))}
		}
		filter := ScanFilter{Conds: conds}

		got := filter.SelCols(cols, n, nil)
		want := make([]int, 0, n)
		for i := 0; i < n; i++ {
			keep := true
			for _, c := range conds {
				if !c.Op.Eval(cols[c.Off][i], c.Val) {
					keep = false
					break
				}
			}
			if keep {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: selected %d rows, row closures keep %d",
				trial, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: selection[%d] = %d, want %d",
					trial, k, got[k], want[k])
			}
		}
	}

	// Edges: a contradiction selects nothing; a tautology selects all rows
	// in order; the no-condition filter is dense.
	col := []int64{3, 1, 4, 1, 5}
	cols := [][]int64{col}
	empty := ScanFilter{Conds: []ScanCond{
		{Off: 0, Op: relalg.CmpLT, Val: 2},
		{Off: 0, Op: relalg.CmpGT, Val: 2},
	}}.SelCols(cols, len(col), nil)
	if len(empty) != 0 {
		t.Fatalf("contradictory filter selected %v", empty)
	}
	full := ScanFilter{Conds: []ScanCond{{Off: 0, Op: relalg.CmpGE, Val: 0}}}.
		SelCols(cols, len(col), nil)
	if len(full) != len(col) {
		t.Fatalf("tautological filter selected %d of %d rows", len(full), len(col))
	}
	for i := range full {
		if full[i] != i {
			t.Fatalf("tautological selection out of order: %v", full)
		}
	}
	dense := ScanFilter{}.SelCols(cols, len(col), nil)
	if len(dense) != len(col) {
		t.Fatalf("empty filter selected %d rows", len(dense))
	}
}

// ---- steady-state allocation test ----

// TestScanAggSteadyStateAllocs pins the zero-allocation contract of the
// serial columnar scan + aggregation loop — the Q1 benchmark shape at P=1.
// After one warm-up pass has sized the selection buffer, the hash/gid
// scratch, and the group table, re-running the scan and folding every batch
// into the table must not allocate: batches are zero-copy column windows
// and every per-batch buffer is recycled.
func TestScanAggSteadyStateAllocs(t *testing.T) {
	n := 8 * BatchSize
	rng := rand.New(rand.NewSource(17))
	data := colData{cols: make([][]int64, 4), n: n}
	for c := range data.cols {
		data.cols[c] = make([]int64, n)
		for i := range data.cols[c] {
			data.cols[c][i] = int64(rng.Intn(8))
		}
	}
	filter := ScanFilter{Conds: []ScanCond{{Off: 0, Op: relalg.CmpLT, Val: 7}}}
	spec := AggSpecExec{GroupBy: []int{1, 2}, Sums: []int{3}, CountAll: true}
	scan := NewVecScan(data.cols, data.n, filter).(*vecScanOp)
	table := newAggTable(spec)
	var scratch aggScratch
	// Memory accounting rides the same loop: per-batch tracker traffic on
	// both the nil (untracked) and the unbounded-root fast paths must stay
	// allocation-free too.
	tracked := NewMemTracker(0).Child("agg")
	var untracked *MemTracker
	pass := func() {
		if err := scan.Open(); err != nil {
			t.Fatal(err)
		}
		for {
			b, err := scan.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			sz := colBytes(b.Width(), b.Len())
			if !tracked.Reserve(sz) {
				t.Fatal("unbounded tracker refused a reservation")
			}
			tracked.Force(sz)
			untracked.Reserve(sz)
			untracked.Force(sz)
			table.addBatch(b.Cols, b.N, b.Sel, &scratch)
		}
		tracked.ReleaseAll()
		untracked.ReleaseAll()
	}
	pass() // warm-up: sizes sel buffer, scratch, and creates all groups
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
		t.Fatalf("steady-state scan+agg allocates %.1f times per pass, want 0", allocs)
	}
}

// ---- kernel microbenchmarks ----

func BenchmarkSelColsDense(b *testing.B) {
	n := BatchSize
	col := make([]int64, n)
	for i := range col {
		col[i] = int64(i % 100)
	}
	cols := [][]int64{col}
	filter := ScanFilter{Conds: []ScanCond{{Off: 0, Op: relalg.CmpLT, Val: 90}}}
	buf := make([]int, 0, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = filter.SelCols(cols, n, buf)
	}
}

func BenchmarkHashLive2Key(b *testing.B) {
	n := BatchSize
	c0, c1 := make([]int64, n), make([]int64, n)
	for i := range c0 {
		c0[i] = int64(i)
		c1[i] = int64(i % 7)
	}
	cols := [][]int64{c0, c1}
	var dst []uint64
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = hashLive(dst, cols, []int{0, 1}, n, nil)
	}
}

func BenchmarkGather(b *testing.B) {
	n := BatchSize
	src := make([]int64, n)
	idx := make([]int32, n)
	for i := range src {
		src[i] = int64(i)
		idx[i] = int32((i * 7) % n)
	}
	dst := make([]int64, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gather(dst, src, idx)
	}
}
