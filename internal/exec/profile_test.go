package exec

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// TestExplainAnalyzeMatchesRunStats asserts the tentpole invariant: the
// row count a profiling span records for a plan node equals the RunStats
// cardinality of that node's subexpression, for every counted node of
// every workload query, serial and under fused parallel pipelines.
func TestExplainAnalyzeMatchesRunStats(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	for name, q := range tpch.Queries() {
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vr, err := volcano.Optimize(m, relalg.DefaultSpace())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, par := range []int{1, 2, 4} {
			prof := NewPlanProfile()
			comp := &Compiler{Q: q, Cat: cat, Parallelism: par, Prof: prof}
			v, stats, err := comp.CompileVec(vr.Plan)
			if err != nil {
				t.Fatalf("%s (par=%d): %v", name, par, err)
			}
			rows, err := DrainVec(v)
			if err != nil {
				t.Fatalf("%s (par=%d): %v", name, par, err)
			}
			checked := 0
			var walk func(p *relalg.Plan)
			walk = func(p *relalg.Plan) {
				if p == nil {
					return
				}
				act, counted := stats.Card(p.Expr)
				if counted && p.Log != relalg.LogEnforce {
					sp := prof.SpanOf(p)
					if sp == nil {
						// The index-NL inner leaf is folded into the join
						// operator and never compiled as its own node.
						if !(p.Log == relalg.LogScan && p.Expr.IsSingle() && !hasOwnCounter(vr.Plan, p)) {
							t.Fatalf("%s (par=%d): counted node %v has no span", name, par, p.Expr)
						}
					} else if sp.Rows != act {
						t.Fatalf("%s (par=%d): span of %v recorded %d rows, RunStats %d",
							name, par, p.Expr, sp.Rows, act)
					} else {
						checked++
					}
				}
				walk(p.Left)
				walk(p.Right)
			}
			walk(vr.Plan)
			if checked == 0 {
				t.Fatalf("%s (par=%d): no counted node verified", name, par)
			}
			// The terminal aggregation span must cover the emitted result.
			if q.Agg != nil && prof.Agg.Rows != int64(len(rows)) {
				t.Fatalf("%s (par=%d): agg span rows=%d, result rows=%d",
					name, par, prof.Agg.Rows, len(rows))
			}
			text := prof.Format(q, vr.Plan, stats)
			if !strings.Contains(text, "act=") || !strings.Contains(text, "time=") {
				t.Fatalf("%s (par=%d): analyze output missing annotations:\n%s", name, par, text)
			}
		}
	}
}

// hasOwnCounter reports whether node p is compiled as its own operator —
// false only for the inner (indexed) leaf of an index-NL join, which the
// join operator absorbs.
func hasOwnCounter(root, p *relalg.Plan) bool {
	var parent func(n *relalg.Plan) bool
	parent = func(n *relalg.Plan) bool {
		if n == nil {
			return false
		}
		if n.Phy == relalg.PhyIndexNLJoin && n.Left == p {
			return true
		}
		return parent(n.Left) || parent(n.Right)
	}
	return !parent(root)
}

// TestProfilingDifferential asserts profiling observes without
// participating: with Prof on, result multisets and RunStats feedback are
// byte-identical to the unprofiled execution at every parallelism.
func TestProfilingDifferential(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	for name, q := range tpch.Queries() {
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vr, err := volcano.Optimize(m, relalg.DefaultSpace())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, par := range []int{1, 2, 4} {
			base := &Compiler{Q: q, Cat: cat, Parallelism: par}
			v0, stats0, err := base.CompileVec(vr.Plan)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rows0, err := DrainVec(v0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			profiled := &Compiler{Q: q, Cat: cat, Parallelism: par, Prof: NewPlanProfile()}
			v1, stats1, err := profiled.CompileVec(vr.Plan)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rows1, err := DrainVec(v1)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			if rowMultiset(rows1) != rowMultiset(rows0) {
				t.Fatalf("%s (par=%d): profiling changed the result multiset", name, par)
			}
			statsEqual(t, name, stats1.Snapshot(), stats0.Snapshot())
		}
	}
}

func TestFormatAnalyzeRendering(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	q := tpch.Q5()
	m, _ := cost.NewModel(q, cat, cost.DefaultParams())
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	prof := NewPlanProfile()
	comp := &Compiler{Q: q, Cat: cat, Parallelism: 4, Prof: prof}
	v, stats, err := comp.CompileVec(vr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DrainVec(v); err != nil {
		t.Fatal(err)
	}
	text := prof.Format(q, vr.Plan, stats)
	for _, want := range []string{"EXPLAIN ANALYZE", "parallelism=4", "est=", "act=", "qerr=", "batches=", "time="} {
		if !strings.Contains(text, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, text)
		}
	}
	if q.Agg != nil && !strings.Contains(text, "HashAggregate") {
		t.Fatalf("analyze output missing aggregate line:\n%s", text)
	}
}

func TestQError(t *testing.T) {
	for _, c := range []struct {
		est  float64
		act  int64
		want float64
	}{{100, 100, 1}, {10, 100, 10}, {100, 10, 10}, {0, 0, 1}, {0.5, 2, 2}} {
		if got := qError(c.est, c.act); got != c.want {
			t.Fatalf("qError(%v, %d) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

// BenchmarkProfilingOverhead is the overhead guard: "off" must track the
// unprofiled baseline (same code path, Prof untouched), "on" bounds the
// cost of full per-operator profiling.
func BenchmarkProfilingOverhead(b *testing.B) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 7})
	q := tpch.Q3S()
	m, _ := cost.NewModel(q, cat, cost.DefaultParams())
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, profiled bool) {
		for i := 0; i < b.N; i++ {
			comp := &Compiler{Q: q, Cat: cat, Parallelism: 1}
			if profiled {
				comp.Prof = NewPlanProfile()
			}
			v, _, err := comp.CompileVec(vr.Plan)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := CountVec(v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
