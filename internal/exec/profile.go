package exec

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/relalg"
)

// Per-operator execution profiling (EXPLAIN ANALYZE). Setting Compiler.Prof
// to a fresh PlanProfile makes CompileVec wrap every compiled operator in a
// timing shim (profVec) that records batches, live rows and cumulative wall
// time at batch granularity into a per-plan-node obs.Span; the fused
// parallel pipeline instead registers per-stage self-time spans filled from
// per-worker clocks (pipeline.go) and merged exactly once. With Prof nil —
// the default — no shim is inserted anywhere and the operator tree is
// byte-for-byte the one an unprofiled compile produces, so profiling is
// provably free when off (TestScanAggSteadyStateAllocs and the RunStats
// differentials run both ways).
//
// Profiling never changes results or feedback: the shim sits OUTSIDE the
// cardinality counter of its node, so the rows a span records are exactly
// the rows RunStats counts (asserted at P ∈ {1,2,4} by
// TestExplainAnalyzeMatchesRunStats).

// PlanProfile collects the execution profile of one compiled plan: one span
// per plan node plus one for the terminal aggregation. Build it with
// NewPlanProfile, hand it to Compiler.Prof, execute, then render with
// Format. A profile belongs to a single execution; do not reuse across
// compiles.
type PlanProfile struct {
	spans map[*relalg.Plan]*obs.Span
	// Agg profiles the terminal aggregation (hash agg above the plan root,
	// or the fused pipeline's worker-local partial aggregation).
	Agg *obs.Span
	// workers is the compile-time parallelism, recorded for rendering:
	// fused-pipeline span times are summed across workers.
	workers int
}

// NewPlanProfile returns an empty profile ready for Compiler.Prof.
func NewPlanProfile() *PlanProfile {
	return &PlanProfile{spans: map[*relalg.Plan]*obs.Span{}, Agg: &obs.Span{}}
}

// span returns the (inclusive-time) span of a plan node, registering it on
// first use.
func (pp *PlanProfile) span(p *relalg.Plan) *obs.Span {
	sp, ok := pp.spans[p]
	if !ok {
		sp = &obs.Span{}
		pp.spans[p] = sp
	}
	return sp
}

// selfSpan registers a node's span in self-time mode (the fused pipeline's
// exclusive per-stage attribution; see obs.Span.Self).
func (pp *PlanProfile) selfSpan(p *relalg.Plan) *obs.Span {
	sp := pp.span(p)
	sp.Self = true
	return sp
}

// SpanOf returns the recorded span of a plan node (nil when the node was
// never executed, e.g. a subtree served from the result cache).
func (pp *PlanProfile) SpanOf(p *relalg.Plan) *obs.Span { return pp.spans[p] }

// displayNanos returns the inclusive wall time to display for a node:
// inclusive spans stand as recorded, self-time spans (fused pipeline
// stages) add their children back, and unexecuted nodes contribute their
// children's time (zero when the whole subtree was skipped).
func (pp *PlanProfile) displayNanos(p *relalg.Plan) int64 {
	if p == nil {
		return 0
	}
	sp := pp.spans[p]
	if sp != nil && !sp.Self {
		return sp.Nanos
	}
	kids := pp.displayNanos(p.Left) + pp.displayNanos(p.Right)
	if sp != nil {
		return sp.Nanos + kids
	}
	return kids
}

// Format renders the EXPLAIN ANALYZE tree: the physical plan annotated per
// node with the optimizer's estimated cardinality against the actual row
// count (and their q-error — the paper's estimation error, made visible per
// query), plus batches and cumulative wall time from the execution profile.
// stats is the RunStats of the same execution. Span times of fused parallel
// pipelines are summed across workers (CPU time, not wall time); the header
// notes the parallelism.
func (pp *PlanProfile) Format(q *relalg.Query, plan *relalg.Plan, stats *RunStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE")
	if pp.workers > 1 {
		fmt.Fprintf(&b, " (parallelism=%d, operator times are summed across workers)", pp.workers)
	}
	b.WriteByte('\n')
	if pp.Agg != nil && (pp.Agg.Batches > 0 || pp.Agg.Nanos > 0) {
		nanos := pp.Agg.Nanos
		if pp.Agg.Self {
			nanos += pp.displayNanos(plan)
		}
		fmt.Fprintf(&b, "HashAggregate  [rows=%d batches=%d time=%v]\n",
			pp.Agg.Rows, pp.Agg.Batches, time.Duration(nanos).Round(time.Microsecond))
	}
	pp.format(q, plan, stats, &b, 0)
	return b.String()
}

func (pp *PlanProfile) format(q *relalg.Query, p *relalg.Plan, stats *RunStats, b *strings.Builder, depth int) {
	if p == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	switch p.Log {
	case relalg.LogScan:
		name := "?"
		if q != nil && p.Rel < len(q.Rels) {
			name = q.Rels[p.Rel].Alias
		}
		if p.Phy == relalg.PhyIndexScan {
			fmt.Fprintf(b, "IndexScan %s key=%s", name, q.ColString(p.IdxCol))
		} else if p.Phy == relalg.PhySegScan {
			fmt.Fprintf(b, "SegScan %s zone=%s", name, q.ColString(p.IdxCol))
		} else {
			fmt.Fprintf(b, "TableScan %s", name)
		}
	case relalg.LogEnforce:
		fmt.Fprintf(b, "Sort %s", p.Prop)
	default:
		op := map[relalg.PhyOp]string{
			relalg.PhyHashJoin:    "HashJoin",
			relalg.PhyMergeJoin:   "MergeJoin",
			relalg.PhyIndexNLJoin: "IndexNLJoin",
		}[p.Phy]
		pred := ""
		if q != nil && p.Pred < len(q.Joins) {
			jp := q.Joins[p.Pred]
			pred = fmt.Sprintf(" on %s=%s", q.ColString(jp.L), q.ColString(jp.R))
		}
		fmt.Fprintf(b, "%s%s", op, pred)
	}

	fmt.Fprintf(b, "  [est=%.1f", p.Card)
	if act, ok := stats.Card(p.Expr); ok && p.Log != relalg.LogEnforce {
		fmt.Fprintf(b, " act=%d qerr=%.2f", act, qError(p.Card, act))
	} else {
		fmt.Fprintf(b, " act=-")
	}
	if sp := pp.spans[p]; sp != nil {
		fmt.Fprintf(b, " | rows=%d batches=%d time=%v]",
			sp.Rows, sp.Batches, time.Duration(pp.displayNanos(p)).Round(time.Microsecond))
	} else {
		fmt.Fprintf(b, " | not executed (cached)]")
	}
	b.WriteByte('\n')
	pp.format(q, p.Left, stats, b, depth+1)
	pp.format(q, p.Right, stats, b, depth+1)
}

// qError is the symmetric cardinality estimation error max(act/est,
// est/act), floored at one row on both sides — 1.0 means a perfect
// estimate.
func qError(est float64, act int64) float64 {
	a := float64(act)
	if a < 1 {
		a = 1
	}
	if est < 1 {
		est = 1
	}
	if a > est {
		return a / est
	}
	return est / a
}

// profVec is the serial profiling shim: it times Open/Next/Close around its
// input (inclusive time — the clock runs across the child's work) and
// counts emitted batches and live rows.
type profVec struct {
	in VecIterator
	sp *obs.Span
}

func (p *profVec) Open() error {
	t0 := time.Now()
	err := p.in.Open()
	p.sp.Record(0, 0, time.Since(t0))
	return err
}

func (p *profVec) Next() (*Batch, error) {
	t0 := time.Now()
	b, err := p.in.Next()
	if b != nil {
		p.sp.Record(1, int64(b.Len()), time.Since(t0))
	} else {
		p.sp.Record(0, 0, time.Since(t0))
	}
	return b, err
}

func (p *profVec) Close() error {
	t0 := time.Now()
	err := p.in.Close()
	p.sp.Record(0, 0, time.Since(t0))
	return err
}

// drainCols forwards the materializing fast path through the shim — wrapping
// must not demote a parallel drain to the batch stream. The whole drain is
// one timed observation: one logical batch carrying every live row.
func (p *profVec) drainCols() (colData, error) {
	t0 := time.Now()
	d, err := drainVecCols(p.in)
	p.sp.Record(1, int64(d.n), time.Since(t0))
	return d, err
}

// pipeProf carries the fused pipeline's profile spans: the scan, one span
// per probe stage (in probe order, matching parallelPipelineOp.stages), and
// the terminal (the fused aggregation; nil in collect mode, where terminal
// time folds into the last stage). All are self-time spans filled from
// per-worker stage clocks, merged once after the workers join.
type pipeProf struct {
	scan   *obs.Span
	stages []*obs.Span
	term   *obs.Span
}

// stageClock is one pipeline worker's private time-attribution register:
// slot 0 is the scan, slot i+1 probe stage i, slot len(stages)+1 the
// terminal sink. Exactly one slot accumulates at any instant; transitions
// cost one clock read. batches counts chunk arrivals per slot.
type stageClock struct {
	times   []int64
	batches []int64
	cur     int
	last    time.Time
}

func newStageClock(slots int) *stageClock {
	return &stageClock{times: make([]int64, slots), batches: make([]int64, slots)}
}

// to closes the current attribution segment and switches to slot.
func (c *stageClock) to(slot int) {
	now := time.Now()
	c.times[c.cur] += now.Sub(c.last).Nanoseconds()
	c.cur = slot
	c.last = now
}
