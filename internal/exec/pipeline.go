package exec

import (
	"errors"
	"sync"
	"sync/atomic"
)

// This file implements full-pipeline morsel-driven parallelism: instead of
// fanning out only at the leaf scan and funneling every batch through an
// exchange channel, a fused pipeline runs the whole
// scan → probe → … → probe → (partial aggregate | collect) chain inside
// each worker. Workers claim probe-side morsels off an atomic cursor, probe
// the shared immutable join tables of every fused hash join, and sink the
// surviving rows into worker-local state — a worker-local aggTable or a
// worker-local output buffer — merged exactly once when all workers finish.
// Nothing crosses between workers on the per-row path.

// pipeStage is one fused hash-join probe: the compiled build-side subtree,
// the key offsets of the build row and of the incoming probe row, the
// residual filters first checkable at this join, and the cardinality
// counter for the join's output. The joinTable is built at Open (with the
// partitioned parallel build for large sides) and is read-only afterwards,
// so all workers probe it without synchronization.
type pipeStage struct {
	build     VecIterator
	buildKeys []int
	probeKeys []int
	residual  []PredFn
	card      *int64

	table *joinTable
}

type parallelPipelineOp struct {
	// probe source: a morsel-addressable base table plus its scan filter
	// and cardinality counter.
	rows     [][]int64
	filter   ScanFilter
	scanCard *int64

	stages  []*pipeStage // in probe order: stages[0] is probed first
	agg     *AggSpecExec // nil = collect mode (emit joined rows)
	workers int

	out   [][]int64
	pos   int
	batch Batch
}

// newParallelPipeline assembles a fused pipeline over a probe-side base
// table. With agg == nil the op emits the joined rows; setting agg (via
// fuseAgg before Open) switches the terminal to worker-local partial
// aggregation with a final merge.
func newParallelPipeline(rows [][]int64, filter ScanFilter, scanCard *int64,
	stages []*pipeStage, workers int) *parallelPipelineOp {
	if max := (len(rows) + morselSize - 1) / morselSize; workers > max {
		workers = max
	}
	// At least one worker even for an empty probe table, so the merge
	// phase always has a terminal to read.
	if workers < 1 {
		workers = 1
	}
	return &parallelPipelineOp{rows: rows, filter: filter, scanCard: scanCard,
		stages: stages, workers: workers}
}

// fuseAgg replaces the pipeline's collect terminal with worker-local hash
// aggregation. Must be called before Open.
func (p *parallelPipelineOp) fuseAgg(spec AggSpecExec) { p.agg = &spec }

// pipeWorker is the per-worker private state: cardinality counters (index 0
// is the scan, index i+1 is stage i's output), per-depth scratch rows for
// the probe cascade, and the terminal sink (aggregate table or row buffer).
type pipeWorker struct {
	op      *parallelPipelineOp
	counts  []int64
	scratch [][]int64
	agg     *aggTable
	out     [][]int64
	alloc   rowAlloc
}

func (p *parallelPipelineOp) Open() error {
	// Build every stage's join table up front. Build sides drain through
	// drainVecRows, which parallelizes across morsels where the subtree
	// supports it; large tables use the partitioned parallel insert.
	for _, st := range p.stages {
		rows, err := drainVecRows(st.build)
		if err != nil {
			return err
		}
		st.table = newJoinTable(rows, st.buildKeys, p.workers)
	}

	var cursor atomic.Int64
	workers := make([]*pipeWorker, p.workers)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		pw := &pipeWorker{
			op:      p,
			counts:  make([]int64, len(p.stages)+1),
			scratch: make([][]int64, len(p.stages)),
		}
		if p.agg != nil {
			pw.agg = newAggTable(*p.agg)
		}
		workers[w] = pw
		wg.Add(1)
		go func() {
			defer wg.Done()
			pw.run(&cursor)
		}()
	}
	wg.Wait()

	// Exact-cardinality merge: per-worker counters sum to precisely the
	// counts the serial operator tree would have produced, so RunStats
	// feedback into the adaptive loop is byte-identical at any
	// parallelism.
	for _, pw := range workers {
		*p.scanCard += pw.counts[0]
		for i, st := range p.stages {
			*st.card += pw.counts[i+1]
		}
	}
	if p.agg != nil {
		agg := workers[0].agg
		for _, pw := range workers[1:] {
			agg.mergeFrom(pw.agg)
		}
		rows := agg.rows()
		p.out = make([][]int64, len(rows))
		for i, r := range rows {
			p.out[i] = r
		}
	} else {
		total := 0
		for _, pw := range workers {
			total += len(pw.out)
		}
		p.out = make([][]int64, 0, total)
		for _, pw := range workers {
			p.out = append(p.out, pw.out...)
		}
	}
	p.pos = 0
	return nil
}

func (w *pipeWorker) run(cursor *atomic.Int64) {
	rows := w.op.rows
	filter := w.op.filter
	var sel []int
	if !filter.Empty() {
		sel = make([]int, 0, morselSize)
	}
	for {
		lo := int(cursor.Add(1)-1) * morselSize
		if lo >= len(rows) {
			return
		}
		hi := lo + morselSize
		if hi > len(rows) {
			hi = len(rows)
		}
		chunk := rows[lo:hi]
		if filter.Empty() {
			w.counts[0] += int64(len(chunk))
			for _, r := range chunk {
				w.probe(0, r)
			}
		} else {
			sel = filter.Sel(chunk, sel)
			w.counts[0] += int64(len(sel))
			for _, i := range sel {
				w.probe(0, chunk[i])
			}
		}
	}
}

// probe advances row through the cascade from stage depth on, sinking
// fully-joined rows into the worker-local terminal. Intermediate join rows
// live in per-depth scratch buffers that are safely overwritten per match —
// the cascade below consumes each row synchronously — so the only per-row
// allocations are retained collect-mode outputs.
func (w *pipeWorker) probe(depth int, row []int64) {
	if depth == len(w.op.stages) {
		if w.agg != nil {
			w.agg.add(Row(row))
		} else {
			w.out = append(w.out, row)
		}
		return
	}
	st := w.op.stages[depth]
	t := st.table
	h := hashCols(row, st.probeKeys)
	retain := w.agg == nil && depth == len(w.op.stages)-1
	for ci := t.head[h&t.mask]; ci != 0; {
		i := ci - 1
		ci = t.next[i]
		if t.hashes[i] != h {
			continue
		}
		b := t.rows[i]
		if !keysEqual(Row(b), st.buildKeys, Row(row), st.probeKeys) {
			continue
		}
		var o []int64
		if retain {
			o = w.alloc.row(len(b) + len(row))
		} else {
			o = w.scratch[depth][:0]
		}
		o = append(o, b...)
		o = append(o, row...)
		if !retain {
			w.scratch[depth] = o
		}
		if !evalAll(st.residual, o) {
			continue
		}
		w.counts[depth+1]++
		w.probe(depth+1, o)
	}
}

func (p *parallelPipelineOp) Next() (*Batch, error) {
	if p.pos >= len(p.out) {
		return nil, nil
	}
	end := p.pos + BatchSize
	if end > len(p.out) {
		end = len(p.out)
	}
	p.batch = Batch{Rows: p.out[p.pos:end]}
	p.pos = end
	return &p.batch, nil
}

func (p *parallelPipelineOp) Close() error {
	p.out = nil
	for _, st := range p.stages {
		st.table = nil
	}
	return nil
}

// drainRows gives materializing consumers (e.g. an outer join draining a
// fused build-side pipeline) the already-collected output directly instead
// of re-copying it batch-by-batch.
func (p *parallelPipelineOp) drainRows() ([][]int64, error) {
	if err := p.Open(); err != nil {
		return nil, errors.Join(err, p.Close())
	}
	rows := p.out
	p.out = nil // ownership moves to the caller before Close drops it
	return rows, p.Close()
}
