package exec

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements full-pipeline morsel-driven parallelism: instead of
// fanning out only at the leaf scan and funneling every batch through an
// exchange channel, a fused pipeline runs the whole
// scan → probe → … → probe → (partial aggregate | collect) chain inside
// each worker. Workers claim probe-side morsels off an atomic cursor as
// zero-copy column windows, push them through the probe cascade in columnar
// chunks — per-batch hashing, pair collection against the shared immutable
// join tables, residual filtering and one Gather per output column — and
// sink the surviving chunks into worker-local state (an aggTable fed by
// addBatch, or a worker-local column buffer), merged exactly once when all
// workers finish. Nothing crosses between workers on the per-row path.

// pipeStage is one fused hash-join probe: the compiled build-side subtree,
// the key offsets of the build row and of the incoming probe row, the
// residual predicates first checkable at this join, and the cardinality
// counter for the join's output. The joinTable is built at Open (with the
// partitioned parallel build for large sides) and is read-only afterwards,
// so all workers probe it without synchronization.
type pipeStage struct {
	build     VecIterator
	buildKeys []int
	probeKeys []int
	residual  []ColPred
	card      *int64

	table *joinTable
}

type parallelPipelineOp struct {
	// probe source: a morsel-addressable column-major base table plus its
	// scan filter and cardinality counter.
	data     colData
	filter   ScanFilter
	scanCard *int64

	stages  []*pipeStage // in probe order: stages[0] is probed first
	agg     *AggSpecExec // nil = collect mode (emit joined rows)
	workers int
	mem     *MemTracker // child tracker; Force-only (fusion is admission-gated)
	// prof, when non-nil, receives the fused profile: per-worker stage
	// clocks attribute each worker's wall time exclusively to the segment
	// it is executing (scan, probe stage, terminal sink) and are merged
	// into the self-time spans once after the workers join. Nil — the
	// default — leaves only a per-chunk nil check on the probe path.
	prof *pipeProf

	out   colData
	pos   int
	batch Batch

	// Streaming collect terminal: instead of materializing worker-local
	// buffers and concatenating them, collect-mode workers copy finished
	// chunks into pooled batch shells and hand them to the consumer through
	// an exchange channel — joined rows never materialize whole. A closer
	// goroutine joins the workers, merges their exact cardinality counters
	// and profile clocks, then closes ch, so counters are fully merged
	// before the consumer can observe end-of-stream (the Snapshot-after-
	// drain contract). quit unblocks producers on early Close.
	stream bool
	ch     chan *Batch
	free   chan *Batch
	quit   chan struct{}
	last   *Batch // batch lent to the consumer, recycled on the next call
	closed bool
}

// newParallelPipeline assembles a fused pipeline over a probe-side base
// table. With agg == nil the op emits the joined rows; setting agg (via
// fuseAgg before Open) switches the terminal to worker-local partial
// aggregation with a final merge.
func newParallelPipeline(data colData, filter ScanFilter, scanCard *int64,
	stages []*pipeStage, workers int) *parallelPipelineOp {
	if max := (data.n + morselSize - 1) / morselSize; workers > max {
		workers = max
	}
	// At least one worker even for an empty probe table, so the merge
	// phase always has a terminal to read.
	if workers < 1 {
		workers = 1
	}
	return &parallelPipelineOp{data: data, filter: filter, scanCard: scanCard,
		stages: stages, workers: workers}
}

// fuseAgg replaces the pipeline's collect terminal with worker-local hash
// aggregation. Must be called before Open.
func (p *parallelPipelineOp) fuseAgg(spec AggSpecExec) { p.agg = &spec }

// stageScratch is one probe depth's reusable worker-private buffers: the
// probe-hash vector, the pending match pairs, and the stage's columnar
// output chunk (flat-backed, capacity BatchSize per column). The output
// chunk is consumed synchronously by the cascade below before the next
// flush overwrites it.
type stageScratch struct {
	hashes         []uint64
	pairsB, pairsP []int32
	out            [][]int64
}

// pipeWorker is the per-worker private state: cardinality counters (index 0
// is the scan, index i+1 is stage i's output), per-depth stage scratch, and
// the terminal sink (aggregate table or columnar collect buffer).
type pipeWorker struct {
	op      *parallelPipelineOp
	counts  []int64
	stages  []stageScratch
	agg     *aggTable
	aggScr  aggScratch
	stopped bool        // streaming consumer went away; stop producing
	clock   *stageClock // nil unless profiling
}

func (p *parallelPipelineOp) Open() error {
	// Build every stage's join table up front. Build sides drain through
	// drainVecCols, which parallelizes across morsels where the subtree
	// supports it; large tables use the partitioned parallel insert.
	width := p.data.width()
	stageWidths := make([]int, len(p.stages)) // output width per stage
	for i, st := range p.stages {
		data, err := drainVecCols(st.build)
		if err != nil {
			return err
		}
		p.mem.Force(colBytes(data.width(), data.n) + joinTableBytes(data.n))
		st.table = newJoinTable(data, st.buildKeys, p.workers)
		width += data.width()
		stageWidths[i] = width
	}

	p.stream = p.agg == nil
	if p.stream {
		p.ch = make(chan *Batch, p.workers)
		p.quit = make(chan struct{})
		shells := 2*p.workers + 1 // per-worker in flight + channel buffer + consumer
		p.free = make(chan *Batch, shells)
		for i := 0; i < shells; i++ {
			flat := make([]int64, width*BatchSize)
			b := &Batch{Cols: make([][]int64, width)}
			for c := range b.Cols {
				b.Cols[c] = flat[c*BatchSize : (c+1)*BatchSize : (c+1)*BatchSize]
			}
			p.free <- b
		}
		p.mem.Force(int64(shells) * colBytes(width, BatchSize))
	}

	var cursor atomic.Int64
	workers := make([]*pipeWorker, p.workers)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		pw := &pipeWorker{
			op:     p,
			counts: make([]int64, len(p.stages)+1),
			stages: make([]stageScratch, len(p.stages)),
		}
		for i := range pw.stages {
			sw := stageWidths[i]
			flat := make([]int64, sw*BatchSize)
			cols := make([][]int64, sw)
			for c := range cols {
				cols[c] = flat[c*BatchSize : (c+1)*BatchSize : (c+1)*BatchSize]
			}
			pw.stages[i] = stageScratch{
				pairsB: make([]int32, 0, BatchSize),
				pairsP: make([]int32, 0, BatchSize),
				out:    cols,
			}
		}
		if p.agg != nil {
			pw.agg = newAggTable(*p.agg)
		}
		if p.prof != nil {
			pw.clock = newStageClock(len(p.stages) + 2)
		}
		workers[w] = pw
		wg.Add(1)
		go func() {
			defer wg.Done()
			pw.run(&cursor)
		}()
	}

	if p.stream {
		go func() {
			wg.Wait()
			for _, pw := range workers {
				*p.scanCard += pw.counts[0]
				for i, st := range p.stages {
					*st.card += pw.counts[i+1]
				}
			}
			if p.prof != nil {
				p.mergeProf(workers)
			}
			close(p.ch)
		}()
		p.pos = 0
		return nil
	}
	wg.Wait()

	// Exact-cardinality merge: per-worker counters sum to precisely the
	// counts the serial operator tree would have produced, so RunStats
	// feedback into the adaptive loop is byte-identical at any
	// parallelism.
	for _, pw := range workers {
		*p.scanCard += pw.counts[0]
		for i, st := range p.stages {
			*st.card += pw.counts[i+1]
		}
	}
	agg := workers[0].agg
	for _, pw := range workers[1:] {
		agg.mergeFrom(pw.agg)
	}
	rows := agg.rows()
	var arity int
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	p.mem.Force(colBytes(arity, len(rows)))
	p.out = transposeRows(rowsAsRaw(rows), arity)
	if p.prof != nil {
		p.mergeProf(workers)
	}
	p.pos = 0
	return nil
}

// mergeProf folds the per-worker stage clocks into the profile's self-time
// spans. Span times become the sum of worker time per segment (CPU time,
// not wall time); rows reuse the exact per-worker cardinality counters, so
// profile rows == RunStats counts by construction. A stage's emitted-chunk
// count equals the entry count of the slot below it (each flush feeds the
// cascade synchronously).
func (p *parallelPipelineOp) mergeProf(workers []*pipeWorker) {
	last := len(p.stages) + 1 // terminal clock slot
	for _, pw := range workers {
		ck := pw.clock
		p.prof.scan.Record(ck.batches[1], pw.counts[0], time.Duration(ck.times[0]))
		for i := range p.stages {
			p.prof.stages[i].Record(ck.batches[i+2], pw.counts[i+1], time.Duration(ck.times[i+1]))
		}
		if p.prof.term != nil {
			p.prof.term.Record(0, 0, time.Duration(ck.times[last]))
		} else if n := len(p.stages); n > 0 {
			// Collect mode has no terminal operator; materialization time
			// belongs to the last stage's output.
			p.prof.stages[n-1].Record(0, 0, time.Duration(ck.times[last]))
		}
	}
	if p.prof.term != nil {
		p.prof.term.Record(int64((p.out.n+BatchSize-1)/BatchSize), int64(p.out.n), 0)
	}
}

func (w *pipeWorker) run(cursor *atomic.Int64) {
	data := w.op.data
	filter := w.op.filter
	var sel []int
	if !filter.Empty() {
		sel = make([]int, 0, morselSize)
	}
	if w.clock != nil {
		w.clock.last = time.Now() // attribution starts on the scan slot
	}
	var window [][]int64
	for {
		lo := int(cursor.Add(1)-1) * morselSize
		if lo >= data.n || w.stopped {
			if w.clock != nil {
				w.clock.to(0) // flush the trailing scan segment
			}
			return
		}
		hi := lo + morselSize
		if hi > data.n {
			hi = data.n
		}
		window = data.window(window, lo, hi)
		n := hi - lo
		if filter.Empty() {
			w.counts[0] += int64(n)
			w.probeStage(0, window, n, nil)
		} else {
			sel = filter.SelCols(window, n, sel)
			w.counts[0] += int64(len(sel))
			if len(sel) > 0 {
				w.probeStage(0, window, n, sel)
			}
		}
	}
}

// probeStage advances a columnar chunk through the cascade from stage depth
// on, sinking fully-joined chunks into the worker-local terminal. Each
// stage hashes the chunk's probe keys in one pass per key column, walks the
// shared chains collecting (build, probe) pairs, and flushes BatchSize
// pairs at a time through residual filtering and per-column Gather into the
// depth's scratch chunk — which the cascade below consumes synchronously
// before the next flush overwrites it.
//
// Under profiling, entering a stage switches the worker's clock to that
// stage's slot and leaving restores the caller's, so every instant of
// worker time is attributed to exactly one segment; slot depth+1 covers
// both probe stages and the terminal sink (depth == len(stages)).
func (w *pipeWorker) probeStage(depth int, cols [][]int64, n int, sel []int) {
	if ck := w.clock; ck != nil {
		prev := ck.cur
		ck.to(depth + 1)
		ck.batches[depth+1]++
		w.probeStageBody(depth, cols, n, sel)
		ck.to(prev)
		return
	}
	w.probeStageBody(depth, cols, n, sel)
}

func (w *pipeWorker) probeStageBody(depth int, cols [][]int64, n int, sel []int) {
	if depth == len(w.op.stages) {
		if w.agg != nil {
			w.agg.addBatch(cols, n, sel, &w.aggScr)
		} else {
			w.send(cols, n, sel)
		}
		return
	}
	st := w.op.stages[depth]
	sc := &w.stages[depth]
	sc.hashes = hashLive(sc.hashes, cols, st.probeKeys, n, sel)
	t := st.table
	if sel == nil {
		for i := 0; i < n; i++ {
			w.walkChain(depth, st, t, cols, i, sc.hashes[i])
		}
	} else {
		for k, i := range sel {
			w.walkChain(depth, st, t, cols, i, sc.hashes[k])
		}
	}
	if len(sc.pairsB) > 0 {
		w.flushStage(depth, cols)
	}
}

// send copies a finished chunk into a pooled shell and hands it to the
// consumer. Both the shell acquisition and the channel send select on quit,
// so producers never block past an early Close.
func (w *pipeWorker) send(cols [][]int64, n int, sel []int) {
	if w.stopped {
		return
	}
	var shell *Batch
	select {
	case shell = <-w.op.free:
	case <-w.op.quit:
		w.stopped = true
		return
	}
	m := n
	if sel != nil {
		m = len(sel)
	}
	for c := range shell.Cols {
		dst := shell.Cols[c][:BatchSize]
		if sel == nil {
			copy(dst[:n], cols[c][:n])
		} else {
			src := cols[c]
			for k, i := range sel {
				dst[k] = src[i]
			}
		}
		shell.Cols[c] = dst[:m]
	}
	shell.N = m
	shell.Sel = nil
	select {
	case w.op.ch <- shell:
	case <-w.op.quit:
		w.stopped = true
	}
}

func (w *pipeWorker) walkChain(depth int, st *pipeStage, t *joinTable, cols [][]int64, i int, h uint64) {
	sc := &w.stages[depth]
	for ci := t.head[h&t.mask]; ci != 0; {
		bi := ci - 1
		ci = t.next[bi]
		if t.hashes[bi] != h {
			continue
		}
		if !colKeysEqual(t.data.cols, st.buildKeys, int(bi), cols, st.probeKeys, i) {
			continue
		}
		sc.pairsB = append(sc.pairsB, bi)
		sc.pairsP = append(sc.pairsP, int32(i))
		if len(sc.pairsB) == BatchSize {
			w.flushStage(depth, cols)
		}
	}
}

// flushStage residual-filters the pending pairs of depth, stitches the
// survivors into the stage's scratch chunk, and recurses.
func (w *pipeWorker) flushStage(depth int, cols [][]int64) {
	st := w.op.stages[depth]
	sc := &w.stages[depth]
	pb, pp := filterPairs(st.residual, &st.table.data, cols, sc.pairsB, sc.pairsP)
	if m := len(pb); m > 0 {
		w.counts[depth+1] += int64(m)
		bw := st.table.data.width()
		for c := 0; c < bw; c++ {
			Gather(sc.out[c][:m], st.table.data.cols[c], pb)
		}
		for c := range cols {
			Gather(sc.out[bw+c][:m], cols[c], pp)
		}
		w.probeStage(depth+1, sc.out, m, nil)
	}
	sc.pairsB, sc.pairsP = sc.pairsB[:0], sc.pairsP[:0]
}

func (p *parallelPipelineOp) Next() (*Batch, error) {
	if p.stream {
		if p.last != nil {
			// Recycle the batch the consumer just finished with.
			select {
			case p.free <- p.last:
			default:
			}
			p.last = nil
		}
		b, ok := <-p.ch
		if !ok {
			return nil, nil
		}
		p.last = b
		return b, nil
	}
	if p.pos >= p.out.n {
		return nil, nil
	}
	end := p.pos + BatchSize
	if end > p.out.n {
		end = p.out.n
	}
	p.batch.Cols = p.out.window(p.batch.Cols, p.pos, end)
	p.batch.N = end - p.pos
	p.batch.Sel = nil
	p.pos = end
	return &p.batch, nil
}

func (p *parallelPipelineOp) Close() error {
	if p.stream && !p.closed {
		p.closed = true
		close(p.quit)
		// Drain until the closer goroutine closes ch: releases blocked
		// producers and guarantees the counter merge happened before
		// Close returns.
		for range p.ch {
		}
		p.last = nil
	}
	p.out = colData{}
	for _, st := range p.stages {
		st.table = nil
	}
	p.mem.ReleaseAll()
	return nil
}

// drainCols gives materializing consumers (e.g. an outer join draining a
// fused build-side pipeline) the pipeline's output in one column-major
// buffer: the streamed batches are appended as they arrive (same copy count
// as the former worker-local collect + concatenate), the aggregate path
// moves the already-materialized output.
func (p *parallelPipelineOp) drainCols() (colData, error) {
	if err := p.Open(); err != nil {
		return colData{}, errors.Join(err, p.Close())
	}
	if p.stream {
		var out colData
		for {
			b, err := p.Next()
			if err != nil {
				return out, errors.Join(err, p.Close())
			}
			if b == nil {
				break
			}
			out.appendBatch(b)
		}
		return out, p.Close()
	}
	out := p.out
	p.out = colData{} // ownership moves to the caller before Close drops it
	return out, p.Close()
}
