package exec

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// compileFor optimizes q and compiles it at the given parallelism.
func compileFor(t *testing.T, q *relalg.Query, par int) (VecIterator, *RunStats) {
	t.Helper()
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	comp := &Compiler{Q: q, Cat: cat, Parallelism: par}
	v, stats, err := comp.CompileVec(vr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	return v, stats
}

// TestCompilePipelineFuses asserts that the compiler actually fuses the
// workload shapes the pipeline was built for: join chains with and without
// aggregation, a multi-stage cascade, and the bare scan+agg plan.
func TestCompilePipelineFuses(t *testing.T) {
	if !columnarDefault {
		t.Skip("REPRO_COLUMNAR=0 routes compilation through the row engine; no pipelines fuse")
	}
	cases := []struct {
		q      *relalg.Query
		stages int
		agg    bool
	}{
		{tpch.Q3S(), 1, false}, // driving example: join chain, no agg
		{tpch.Q5(), 1, true},   // six-way join + agg
		{tpch.Q1(), 0, true},   // bare scan + agg (zero-stage pipeline)
	}
	for _, tc := range cases {
		v, _ := compileFor(t, tc.q, 4)
		pp, ok := v.(*parallelPipelineOp)
		if !ok {
			t.Fatalf("%s: compiled root is %T, want *parallelPipelineOp", tc.q.Name, v)
		}
		if len(pp.stages) != tc.stages {
			t.Errorf("%s: fused %d stages, want %d", tc.q.Name, len(pp.stages), tc.stages)
		}
		if (pp.agg != nil) != tc.agg {
			t.Errorf("%s: agg fused = %v, want %v", tc.q.Name, pp.agg != nil, tc.agg)
		}
	}
	// Serial compilation must not fuse.
	v, _ := compileFor(t, tpch.Q3S(), 1)
	if _, ok := v.(*parallelPipelineOp); ok {
		t.Fatal("Parallelism=1 compiled to a parallel pipeline")
	}
}

// TestPipelineCascadeMatchesSerial builds a two-stage probe cascade by hand
// and checks it against the nested serial hash joins, including residual
// filters and exact per-stage cardinality counters.
func TestPipelineCascadeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	probe := make([][]int64, 6*morselSize)
	for i := range probe {
		probe[i] = []int64{int64(rng.Intn(200)), int64(rng.Intn(100)), int64(i)}
	}
	buildA := make([][]int64, 150)
	for i := range buildA {
		buildA[i] = []int64{int64(rng.Intn(200)), int64(100 + i)}
	}
	buildB := make([][]int64, 80)
	for i := range buildB {
		buildB[i] = []int64{int64(rng.Intn(100)), int64(1000 + i)}
	}
	filter := ScanFilter{Conds: []ScanCond{{Off: 1, Op: relalg.CmpLT, Val: 90}}}
	// Structured residual over the final joined row
	// [b0, b1, a0, a1, p0, p1, p2]: b1 < p2, true for some pairs only.
	residual := []ColPred{{L: 1, R: 6, Op: relalg.CmpLT}}

	// Serial reference: joinB(joinA(filtered probe)). Stage A joins
	// buildA on probe col 0, stage B joins buildB on probe col 1 (offset
	// shifts by len(buildA row) = 2 after stage A).
	serial := NewVecHashJoin(
		NewVecScanRows(buildB, ScanFilter{}),
		NewVecHashJoin(
			NewVecScanRows(buildA, ScanFilter{}),
			NewVecScanRows(probe, filter),
			[]int{0}, []int{0}, nil, 1),
		[]int{0}, []int{3}, residual, 1)
	want, err := DrainVec(serial)
	if err != nil {
		t.Fatal(err)
	}

	var scanN, aN, bN int64
	stages := []*pipeStage{
		{build: NewVecScanRows(buildA, ScanFilter{}), buildKeys: []int{0},
			probeKeys: []int{0}, card: &aN},
		{build: NewVecScanRows(buildB, ScanFilter{}), buildKeys: []int{0},
			probeKeys: []int{3}, residual: residual, card: &bN},
	}
	pipe := newParallelPipeline(transposeRows(probe, 3), filter, &scanN, stages, 4)
	got, err := DrainVec(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := rowMultiset(got), rowMultiset(want); g != w {
		t.Fatalf("pipeline multiset differs from serial: %d rows vs %d", len(got), len(want))
	}
	if bN != int64(len(want)) {
		t.Errorf("final stage counter = %d, want %d", bN, len(want))
	}
	wantScan, err := CountVec(NewVecScanRows(probe, filter))
	if err != nil {
		t.Fatal(err)
	}
	if scanN != wantScan {
		t.Errorf("scan counter = %d, want %d", scanN, wantScan)
	}
	wantA, err := CountVec(NewVecHashJoin(NewVecScanRows(buildA, ScanFilter{}),
		NewVecScanRows(probe, filter), []int{0}, []int{0}, nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	if aN != wantA {
		t.Errorf("stage A counter = %d, want %d", aN, wantA)
	}
}

// TestPipelineAggMatchesSerial runs the same cascade with a fused
// aggregation terminal against the serial hash-agg-over-join reference.
func TestPipelineAggMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	probe := make([][]int64, 5*morselSize)
	for i := range probe {
		probe[i] = []int64{int64(rng.Intn(50)), int64(rng.Intn(1000))}
	}
	build := make([][]int64, 300)
	for i := range build {
		build[i] = []int64{int64(rng.Intn(50)), int64(i % 7)}
	}
	spec := AggSpecExec{GroupBy: []int{1}, Sums: []int{3}, CountAll: true,
		CountDistinct: []int{0}}

	serial := NewVecHashAgg(NewVecHashJoin(NewVecScanRows(build, ScanFilter{}),
		NewVecScanRows(probe, ScanFilter{}), []int{0}, []int{0}, nil, 1), spec)
	want, err := DrainVec(serial)
	if err != nil {
		t.Fatal(err)
	}

	var scanN, joinN int64
	stages := []*pipeStage{{build: NewVecScanRows(build, ScanFilter{}),
		buildKeys: []int{0}, probeKeys: []int{0}, card: &joinN}}
	pipe := newParallelPipeline(transposeRows(probe, 2), ScanFilter{}, &scanN, stages, 4)
	pipe.fuseAgg(spec)
	got, err := DrainVec(pipe)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregated output is deterministically ordered, so compare exactly.
	if g, w := rowMultiset(got), rowMultiset(want); g != w {
		t.Fatalf("fused agg differs from serial: %d groups vs %d", len(got), len(want))
	}
	for i := range got {
		if rowLess(got[i], want[i]) || rowLess(want[i], got[i]) {
			t.Fatalf("fused agg order differs at group %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestAggTableMerge splits a row stream across worker tables and checks the
// merged result against a single table, covering sums, COUNT(*) and
// COUNT(DISTINCT).
func TestAggTableMerge(t *testing.T) {
	spec := AggSpecExec{GroupBy: []int{0, 1}, Sums: []int{2}, CountAll: true,
		CountDistinct: []int{3}}
	rng := rand.New(rand.NewSource(5))
	rows := make([]Row, 20000)
	for i := range rows {
		rows[i] = Row{int64(rng.Intn(13)), int64(rng.Intn(7)),
			int64(rng.Intn(100)), int64(rng.Intn(9))}
	}
	single := newAggTable(spec)
	for _, r := range rows {
		single.add(r)
	}
	parts := make([]*aggTable, 4)
	for i := range parts {
		parts[i] = newAggTable(spec)
	}
	for i, r := range rows {
		parts[i%4].add(r)
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		merged.mergeFrom(p)
	}
	got, want := merged.rows(), single.rows()
	if len(got) != len(want) {
		t.Fatalf("merged %d groups, single table has %d", len(got), len(want))
	}
	for i := range got {
		if rowLess(got[i], want[i]) || rowLess(want[i], got[i]) {
			t.Fatalf("group %d: merged %v, single %v", i, got[i], want[i])
		}
	}
}

// TestAggTableGlobalGroup covers the zero-width group key (no GROUP BY).
func TestAggTableGlobalGroup(t *testing.T) {
	spec := AggSpecExec{Sums: []int{0}, CountAll: true}
	a, b := newAggTable(spec), newAggTable(spec)
	for i := int64(0); i < 1000; i++ {
		a.add(Row{i})
		b.add(Row{i * 2})
	}
	a.mergeFrom(b)
	out := a.rows()
	if len(out) != 1 {
		t.Fatalf("global aggregate produced %d rows, want 1", len(out))
	}
	if out[0][0] != 999*1000/2*3 || out[0][1] != 2000 {
		t.Fatalf("global aggregate = %v", out[0])
	}
}

// TestBuildJoinTableParallelMatchesSerial checks the partitioned parallel
// build produces the same table as the serial build: same sizing, same
// hashes, and identical per-bucket chain membership.
func TestBuildJoinTableParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := make([][]int64, 3*minParallelRows+777)
	for i := range rows {
		rows[i] = []int64{int64(rng.Intn(5000)), int64(rng.Intn(64)), int64(i)}
	}
	keys := []int{0, 1}
	data := transposeRows(rows, 3)
	serial := buildJoinTable(data, keys)
	for _, workers := range []int{2, 4, 7} {
		par := buildJoinTableParallel(data, keys, workers)
		if par.mask != serial.mask {
			t.Fatalf("workers=%d: mask %d != serial %d", workers, par.mask, serial.mask)
		}
		for i := range rows {
			if par.hashes[i] != serial.hashes[i] {
				t.Fatalf("workers=%d: hash of row %d differs", workers, i)
			}
		}
		chain := func(t *joinTable, b int) map[int32]bool {
			m := map[int32]bool{}
			for ci := t.head[b]; ci != 0; ci = t.next[ci-1] {
				m[ci] = true
			}
			return m
		}
		for b := 0; b <= int(serial.mask); b++ {
			sc, pc := chain(serial, b), chain(par, b)
			if len(sc) != len(pc) {
				t.Fatalf("workers=%d: bucket %d has %d rows, serial %d", workers, b, len(pc), len(sc))
			}
			for i := range sc {
				if !pc[i] {
					t.Fatalf("workers=%d: bucket %d missing row %d", workers, b, i)
				}
			}
		}
	}
}
