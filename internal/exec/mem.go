package exec

import "sync/atomic"

// This file implements per-query memory accounting. A query execution gets
// one root MemTracker carrying the byte budget; every memory-hungry operator
// charges a child tracker, and charges propagate to the root where the
// budget is enforced. Two charge modes exist:
//
//   - Reserve asks for bytes and FAILS (without charging) if granting them
//     would push the root past its budget. Operators that can spill — the
//     hash join build and the hash aggregation table — call Reserve and
//     switch to grace-hash spilling on failure, so on the spill-capable
//     path tracked memory never exceeds the budget.
//   - Force charges unconditionally and records the bytes past the budget
//     as overage. Operators with no out-of-core fallback (sorts, merge-join
//     materializations, index builds, the client-facing result set) use
//     Force; the recorded overage makes "the bound held" checkable — tests
//     assert peak <= budget exactly when Overage() == 0.
//
// What is tracked is memory that scales with data volume: materialized
// column sets, join tables, aggregation state, spill partition loads, and
// the streaming batch pools. Constant per-operator scratch (one batch of
// hashes, pair vectors, spill I/O buffers) is bounded by
// O(operators × BatchSize × width) and deliberately left untracked.
//
// A nil *MemTracker is valid everywhere and means "unbounded, untracked":
// every Reserve succeeds and nothing is recorded, so the unbounded fast
// path stays free of accounting overhead beyond a nil check.
type MemTracker struct {
	root  *MemTracker // self for the root tracker
	name  string
	limit int64 // root only; 0 = unbounded

	used    atomic.Int64 // bytes charged to this tracker (subtree-inclusive at the root)
	peak    atomic.Int64
	overage atomic.Int64 // root only: bytes Force-charged past the budget

	// spill statistics, accumulated at the root by the spilling operators.
	spillPartitions atomic.Int64
	spillBytes      atomic.Int64
	spillRecursions atomic.Int64

	// spillDir, root only: the directory spill partition files are created
	// in. Empty means the system temp directory.
	spillDir string
}

// NewMemTracker returns a root tracker enforcing a byte budget; limit 0
// tracks usage and peak without bounding them.
func NewMemTracker(limit int64) *MemTracker {
	t := &MemTracker{limit: limit}
	t.root = t
	return t
}

// SetSpillDir directs spill partition files of this tracker's query into
// dir ("" = system temp directory). Call before execution starts.
func (t *MemTracker) SetSpillDir(dir string) {
	if t != nil {
		t.root.spillDir = dir
	}
}

// SpillDir returns the directory spill files should be created in, "" for
// the system default. Nil-safe.
func (t *MemTracker) SpillDir() string {
	if t == nil {
		return ""
	}
	return t.root.spillDir
}

// Child returns a tracker whose charges also count against t's root budget.
// Operator-local usage stays readable per child while the root sees the
// query-wide total.
func (t *MemTracker) Child(name string) *MemTracker {
	if t == nil {
		return nil
	}
	return &MemTracker{root: t.root, name: name}
}

// Reserve charges n bytes, failing (with nothing charged) if that would
// exceed the root budget. n <= 0 and nil trackers always succeed.
func (t *MemTracker) Reserve(n int64) bool {
	if t == nil || n <= 0 {
		return true
	}
	r := t.root
	total := r.used.Add(n)
	if r.limit > 0 && total > r.limit {
		r.used.Add(-n)
		return false
	}
	r.notePeak(total)
	if t != r {
		t.notePeak(t.used.Add(n))
	}
	return true
}

// Force charges n bytes unconditionally, recording any bytes past the root
// budget as overage — the accounting escape hatch for operators that cannot
// spill.
func (t *MemTracker) Force(n int64) {
	if t == nil || n <= 0 {
		return
	}
	r := t.root
	total := r.used.Add(n)
	if r.limit > 0 && total > r.limit {
		over := total - r.limit
		if over > n {
			over = n
		}
		r.overage.Add(over)
	}
	r.notePeak(total)
	if t != r {
		t.notePeak(t.used.Add(n))
	}
}

// Release returns n bytes.
func (t *MemTracker) Release(n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.root.used.Add(-n)
	if t != t.root {
		t.used.Add(-n)
	}
}

// ReleaseAll returns everything this tracker still holds — the one-line
// operator Close path. Calling it on a root releases nothing (children own
// the charges).
func (t *MemTracker) ReleaseAll() {
	if t == nil || t == t.root {
		return
	}
	t.root.used.Add(-t.used.Swap(0))
}

func (t *MemTracker) notePeak(v int64) {
	for {
		p := t.peak.Load()
		if v <= p || t.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Used returns the bytes currently charged.
func (t *MemTracker) Used() int64 {
	if t == nil {
		return 0
	}
	return t.used.Load()
}

// Peak returns the high-water mark of Used.
func (t *MemTracker) Peak() int64 {
	if t == nil {
		return 0
	}
	return t.peak.Load()
}

// Limit returns the root budget (0 = unbounded).
func (t *MemTracker) Limit() int64 {
	if t == nil {
		return 0
	}
	return t.root.limit
}

// rootUsed returns the query-wide bytes currently charged.
func (t *MemTracker) rootUsed() int64 {
	if t == nil {
		return 0
	}
	return t.root.used.Load()
}

// Overage returns the total bytes Force-charged past the budget. Zero means
// the budget genuinely bounded tracked memory: Peak() <= Limit().
func (t *MemTracker) Overage() int64 {
	if t == nil {
		return 0
	}
	return t.root.overage.Load()
}

// Bounded reports whether a budget is being enforced.
func (t *MemTracker) Bounded() bool { return t != nil && t.root.limit > 0 }

func (t *MemTracker) noteSpillPartition(bytes int64) {
	if t == nil {
		return
	}
	t.root.spillPartitions.Add(1)
	t.root.spillBytes.Add(bytes)
}

func (t *MemTracker) noteSpillRecursion() {
	if t == nil {
		return
	}
	t.root.spillRecursions.Add(1)
}

// SpillStats returns the spill counters: partition files written, total
// bytes spilled, and recursive repartitioning steps.
func (t *MemTracker) SpillStats() (partitions, bytes, recursions int64) {
	if t == nil {
		return 0, 0, 0
	}
	r := t.root
	return r.spillPartitions.Load(), r.spillBytes.Load(), r.spillRecursions.Load()
}

// colBytes is the tracked size of an n-row, width-column materialization.
func colBytes(width, n int) int64 { return int64(width) * int64(n) * 8 }

// joinTableBytes is the tracked size of the chained hash table built over n
// rows (head array at the next power of two >= 2n, next links, full hashes);
// the row data itself is charged separately as colBytes.
func joinTableBytes(n int) int64 {
	size := 16
	for size < 2*n {
		size <<= 1
	}
	return int64(size)*4 + int64(n)*(4+8)
}
