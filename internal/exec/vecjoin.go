package exec

import (
	"errors"
	"fmt"
)

// The row-producing join operators share one output scheme: matches are
// collected as (build row, probe row) index pairs, residual predicates are
// evaluated directly on the pairs (reading only the referenced columns),
// and surviving pairs are stitched into the output batch with one Gather
// per column. Output columns live in a single flat buffer owned by the
// operator and recycled every batch.

// colEmitter is the reusable columnar output side of the join operators.
type colEmitter struct {
	batch Batch
}

func (e *colEmitter) init(width int) {
	flat := make([]int64, width*BatchSize)
	e.batch.Cols = make([][]int64, width)
	for c := range e.batch.Cols {
		e.batch.Cols[c] = flat[c*BatchSize : (c+1)*BatchSize : (c+1)*BatchSize]
	}
}

// emit gathers the paired rows (build ++ probe) into the output batch.
func (e *colEmitter) emit(build *colData, probeCols [][]int64, pb, pp []int32) *Batch {
	m := len(pb)
	bw := build.width()
	for c := 0; c < bw; c++ {
		Gather(e.batch.Cols[c][:m], build.cols[c], pb)
	}
	for c := bw; c < len(e.batch.Cols); c++ {
		Gather(e.batch.Cols[c][:m], probeCols[c-bw], pp)
	}
	e.batch.N = m
	e.batch.Sel = nil
	return &e.batch
}

// filterPairs compacts the pair vectors in place to the pairs whose
// concatenated (build ++ probe) row satisfies every residual predicate,
// reading only the referenced columns.
func filterPairs(preds []ColPred, build *colData, probeCols [][]int64, pb, pp []int32) ([]int32, []int32) {
	if len(preds) == 0 {
		return pb, pp
	}
	bw := build.width()
	k := 0
	for j := range pb {
		bi, pi := pb[j], pp[j]
		ok := true
		for _, p := range preds {
			var lv, rv int64
			if p.L < bw {
				lv = build.cols[p.L][bi]
			} else {
				lv = probeCols[p.L-bw][pi]
			}
			if p.R < bw {
				rv = build.cols[p.R][bi]
			} else {
				rv = probeCols[p.R-bw][pi]
			}
			if !p.Op.Eval(lv, rv+p.Off) {
				ok = false
				break
			}
		}
		if ok {
			pb[k], pp[k] = bi, pi
			k++
		}
	}
	return pb[:k], pp[:k]
}

// ---- vectorized hash join ----

type vecHashJoinOp struct {
	left, right  VecIterator
	lKeys, rKeys []int
	residual     []ColPred
	workers      int
	mem          *MemTracker // child tracker; nil = untracked

	table *joinTable
	spill *spillJoin // non-nil once the build overflowed its reservation

	// probe state, carried across Next calls
	pb      *Batch
	pi      int // cursor into the probe batch's live rows
	hs      []uint64
	curIdx  int
	curHash uint64
	chain   int32 // 1-based index into table rows, 0 = end of chain
	drained bool

	pairsB, pairsP []int32
	emit           colEmitter
}

// NewVecHashJoin is the vectorized counterpart of NewHashJoin: the build
// side (left) is drained column-major into a flat chained hash table at
// Open, the probe side (right) streams through batch-at-a-time. Probe-batch
// hashes are computed with one column pass per key; chain hits are
// prefiltered on the full hash before the key-equality check, collected as
// index pairs, residual-filtered, and gathered column-wise into the output.
// When workers > 1, the build side drains at worker parallelism where the
// source supports it and large tables are built with the partitioned
// parallel insert.
func NewVecHashJoin(left, right VecIterator, lKeys, rKeys []int, residual []ColPred, workers int) VecIterator {
	return &vecHashJoinOp{left: left, right: right, lKeys: lKeys, rKeys: rKeys,
		residual: residual, workers: workers}
}

func (j *vecHashJoinOp) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	if j.mem.Bounded() {
		if err := j.openBounded(); err != nil {
			// Release the already-opened probe side (which may have
			// launched parallel scan workers).
			return errors.Join(err, j.right.Close())
		}
	} else {
		build, err := drainVecCols(j.left)
		if err != nil {
			return errors.Join(err, j.right.Close())
		}
		j.mem.Force(colBytes(build.width(), build.n) + joinTableBytes(build.n))
		j.table = newJoinTable(build, j.lKeys, j.workers)
	}
	if j.pairsB == nil {
		j.pairsB = make([]int32, 0, BatchSize)
		j.pairsP = make([]int32, 0, BatchSize)
	}
	return nil
}

// openBounded drains the build side batch-at-a-time under the memory
// reservation (forgoing the parallel drainCols fast path — the price of a
// hard bound), switching to grace-hash spilling the moment a reservation
// fails. On the spill path openSpill takes over the open build input.
func (j *vecHashJoinOp) openBounded() error {
	if err := j.left.Open(); err != nil {
		return errors.Join(err, j.left.Close())
	}
	var (
		build   colData
		charged int64
	)
	for {
		b, err := j.left.Next()
		if err != nil {
			j.mem.Release(charged)
			return errors.Join(err, j.left.Close())
		}
		if b == nil {
			break
		}
		need := colBytes(b.Width(), b.Len())
		if !j.mem.Reserve(need) {
			return j.openSpill(build, b, charged)
		}
		charged += need
		build.appendBatch(b)
	}
	// Reserve the hash table before closing the build input: if even the
	// table does not fit, openSpill re-drains the (exhausted) input.
	if !j.mem.Reserve(joinTableBytes(build.n)) {
		return j.openSpill(build, nil, charged)
	}
	if err := j.left.Close(); err != nil {
		j.mem.ReleaseAll()
		return err
	}
	j.table = newJoinTable(build, j.lKeys, j.workers)
	return nil
}

// nextProbeBatch is the probe source indirection: the in-memory path streams
// the probe input directly, the spilled path streams partition runs.
func (j *vecHashJoinOp) nextProbeBatch() (*Batch, error) {
	if j.spill != nil {
		return j.spillNextBatch()
	}
	return j.right.Next()
}

// flushPairs residual-filters the pending pairs and stitches the survivors
// into an output batch, or returns nil when every pair was filtered out.
func (j *vecHashJoinOp) flushPairs() *Batch {
	pb, pp := filterPairs(j.residual, &j.table.data, j.pb.Cols, j.pairsB, j.pairsP)
	j.pairsB, j.pairsP = j.pairsB[:0], j.pairsP[:0]
	if len(pb) == 0 {
		return nil
	}
	if j.emit.batch.Cols == nil {
		j.emit.init(j.table.data.width() + j.pb.Width())
	}
	return j.emit.emit(&j.table.data, j.pb.Cols, pb, pp)
}

func (j *vecHashJoinOp) Next() (*Batch, error) {
	t := j.table
	for {
		for j.chain != 0 {
			i := j.chain - 1
			j.chain = t.next[i]
			if t.hashes[i] != j.curHash {
				continue
			}
			if !colKeysEqual(t.data.cols, j.lKeys, int(i), j.pb.Cols, j.rKeys, j.curIdx) {
				continue
			}
			j.pairsB = append(j.pairsB, i)
			j.pairsP = append(j.pairsP, int32(j.curIdx))
			if len(j.pairsB) == BatchSize {
				if out := j.flushPairs(); out != nil {
					return out, nil
				}
			}
		}
		// advance to the next probe row
		if j.pb != nil && j.pi < j.pb.Len() {
			j.curIdx = j.pi
			if j.pb.Sel != nil {
				j.curIdx = j.pb.Sel[j.pi]
			}
			j.curHash = j.hs[j.pi]
			j.pi++
			j.chain = t.head[j.curHash&t.mask]
			continue
		}
		// Pairs index into the current probe batch's columns, so they must
		// be stitched out before the batch is released or replaced.
		if len(j.pairsB) > 0 {
			if out := j.flushPairs(); out != nil {
				return out, nil
			}
		}
		if j.drained {
			return nil, nil
		}
		b, err := j.nextProbeBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.drained = true
			// The producer may recycle its last batch when it reports end
			// of stream (the parallel scan clears Sel, changing Len), so
			// drop the stale reference before re-checking the cursor.
			j.pb = nil
			continue
		}
		j.pb, j.pi = b, 0
		j.hs = hashLive(j.hs, b.Cols, j.rKeys, b.N, b.Sel)
		// The spilled path installs a fresh table per partition; pairs are
		// always flushed before a new probe batch, so the swap is safe here.
		t = j.table
	}
}

func (j *vecHashJoinOp) Close() error {
	j.table = nil
	j.spill.closeAll()
	j.spill = nil
	j.mem.ReleaseAll()
	return j.right.Close()
}

// ---- vectorized merge join ----

type vecMergeJoinOp struct {
	left, right VecIterator
	lKey, rKey  int
	residual    []ColPred
	mem         *MemTracker // child tracker; Force-only (no spill fallback)

	lData, rData colData
	li, ri       int
	gls, gle     int // current left key group [gls, gle)
	grs, gre     int
	gi, gj       int

	pairsB, pairsP []int32
	emit           colEmitter
}

// NewVecMergeJoin joins two inputs already sorted on their key columns,
// batch-at-a-time over column-major materializations.
func NewVecMergeJoin(left, right VecIterator, lKey, rKey int, residual []ColPred) VecIterator {
	return &vecMergeJoinOp{left: left, right: right, lKey: lKey, rKey: rKey, residual: residual}
}

func (m *vecMergeJoinOp) Open() error {
	var err error
	if m.lData, err = drainVecCols(m.left); err != nil {
		return err
	}
	if m.rData, err = drainVecCols(m.right); err != nil {
		return err
	}
	m.mem.Force(colBytes(m.lData.width(), m.lData.n) + colBytes(m.rData.width(), m.rData.n))
	// Same defensive sortedness check as the row-at-a-time operator — now a
	// single pass over one contiguous key column per side.
	if m.lData.n > 0 {
		key := m.lData.cols[m.lKey]
		for i := 1; i < len(key); i++ {
			if key[i-1] > key[i] {
				return fmt.Errorf("exec: merge join left input not sorted on col %d", m.lKey)
			}
		}
	}
	if m.rData.n > 0 {
		key := m.rData.cols[m.rKey]
		for i := 1; i < len(key); i++ {
			if key[i-1] > key[i] {
				return fmt.Errorf("exec: merge join right input not sorted on col %d", m.rKey)
			}
		}
	}
	m.pairsB = make([]int32, 0, BatchSize)
	m.pairsP = make([]int32, 0, BatchSize)
	return nil
}

func (m *vecMergeJoinOp) flushPairs() *Batch {
	pb, pp := filterPairs(m.residual, &m.lData, m.rData.cols, m.pairsB, m.pairsP)
	m.pairsB, m.pairsP = m.pairsB[:0], m.pairsP[:0]
	if len(pb) == 0 {
		return nil
	}
	if m.emit.batch.Cols == nil {
		m.emit.init(m.lData.width() + m.rData.width())
	}
	return m.emit.emit(&m.lData, m.rData.cols, pb, pp)
}

func (m *vecMergeJoinOp) Next() (*Batch, error) {
	for {
		for m.gi < m.gle-m.gls {
			for m.gj < m.gre-m.grs {
				m.pairsB = append(m.pairsB, int32(m.gls+m.gi))
				m.pairsP = append(m.pairsP, int32(m.grs+m.gj))
				m.gj++
				if len(m.pairsB) == BatchSize {
					if out := m.flushPairs(); out != nil {
						return out, nil
					}
				}
			}
			m.gj = 0
			m.gi++
		}
		// advance to the next matching key group
		if m.li >= m.lData.n || m.ri >= m.rData.n {
			if len(m.pairsB) > 0 {
				if out := m.flushPairs(); out != nil {
					return out, nil
				}
			}
			return nil, nil
		}
		lCol, rCol := m.lData.cols[m.lKey], m.rData.cols[m.rKey]
		lk, rk := lCol[m.li], rCol[m.ri]
		switch {
		case lk < rk:
			m.li++
		case lk > rk:
			m.ri++
		default:
			ls, rs := m.li, m.ri
			for m.li < m.lData.n && lCol[m.li] == lk {
				m.li++
			}
			for m.ri < m.rData.n && rCol[m.ri] == rk {
				m.ri++
			}
			m.gls, m.gle, m.grs, m.gre = ls, m.li, rs, m.ri
			m.gi, m.gj = 0, 0
		}
	}
}

func (m *vecMergeJoinOp) Close() error {
	m.lData, m.rData = colData{}, colData{}
	m.mem.ReleaseAll()
	return nil
}

// ---- vectorized index nested-loops join ----

// colIndex is a hash index over one column of a column-major base table:
// value -> row indices into data.
type colIndex struct {
	data colData
	m    map[int64][]int32
}

// buildColIndex constructs an index on column col of a column-major table;
// filter applies the pushed-down local selections of the inner relation.
func buildColIndex(data colData, col int, filter ScanFilter) *colIndex {
	ix := &colIndex{data: data, m: map[int64][]int32{}}
	key := data.cols[col]
	if filter.Empty() {
		for i := 0; i < data.n; i++ {
			ix.m[key[i]] = append(ix.m[key[i]], int32(i))
		}
		return ix
	}
	sel := filter.SelCols(data.cols, data.n, make([]int, 0, data.n))
	for _, i := range sel {
		ix.m[key[i]] = append(ix.m[key[i]], int32(i))
	}
	return ix
}

type vecIndexNLOp struct {
	outer    VecIterator // the plan's RIGHT child
	index    *colIndex   // inner: the plan's LEFT child
	outerKey int
	residual []ColPred

	ob      *Batch
	oi      int
	matches []int32
	mi      int
	curIdx  int
	drained bool

	pairsB, pairsP []int32
	emit           colEmitter
}

// NewVecIndexNLJoin probes a prebuilt inner index with each outer row,
// batch-at-a-time. The output row is inner ++ outer, matching the plan
// convention that the indexed inner is the left child.
func NewVecIndexNLJoin(outer VecIterator, index *colIndex, outerKey int, residual []ColPred) VecIterator {
	return &vecIndexNLOp{outer: outer, index: index, outerKey: outerKey, residual: residual}
}

func (j *vecIndexNLOp) Open() error {
	j.pairsB = make([]int32, 0, BatchSize)
	j.pairsP = make([]int32, 0, BatchSize)
	return j.outer.Open()
}

func (j *vecIndexNLOp) flushPairs() *Batch {
	pb, pp := filterPairs(j.residual, &j.index.data, j.ob.Cols, j.pairsB, j.pairsP)
	j.pairsB, j.pairsP = j.pairsB[:0], j.pairsP[:0]
	if len(pb) == 0 {
		return nil
	}
	if j.emit.batch.Cols == nil {
		j.emit.init(j.index.data.width() + j.ob.Width())
	}
	return j.emit.emit(&j.index.data, j.ob.Cols, pb, pp)
}

func (j *vecIndexNLOp) Next() (*Batch, error) {
	for {
		for j.mi < len(j.matches) {
			j.pairsB = append(j.pairsB, j.matches[j.mi])
			j.pairsP = append(j.pairsP, int32(j.curIdx))
			j.mi++
			if len(j.pairsB) == BatchSize {
				if out := j.flushPairs(); out != nil {
					return out, nil
				}
			}
		}
		if j.ob != nil && j.oi < j.ob.Len() {
			j.curIdx = j.oi
			if j.ob.Sel != nil {
				j.curIdx = j.ob.Sel[j.oi]
			}
			j.oi++
			j.matches = j.index.m[j.ob.Cols[j.outerKey][j.curIdx]]
			j.mi = 0
			continue
		}
		// Flush before the outer batch is replaced — pairs index into it.
		if len(j.pairsB) > 0 {
			if out := j.flushPairs(); out != nil {
				return out, nil
			}
		}
		if j.drained {
			return nil, nil
		}
		b, err := j.outer.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.drained = true
			// Same stale-batch hazard as the hash join: the producer may
			// recycle its last batch at end of stream.
			j.ob = nil
			continue
		}
		j.ob, j.oi = b, 0
	}
}

func (j *vecIndexNLOp) Close() error { return j.outer.Close() }
