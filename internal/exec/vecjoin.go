package exec

import (
	"errors"
	"fmt"
)

// batchEmitter is the shared output side of the row-producing join
// operators: a reusable output batch whose row storage is carved from a
// rowAlloc, flushed whenever it fills or the input is exhausted.
type batchEmitter struct {
	out   Batch
	rows  [][]int64
	alloc rowAlloc
}

func (e *batchEmitter) flush(rows [][]int64) *Batch {
	e.rows = rows
	e.out = Batch{Rows: rows}
	return &e.out
}

// ---- vectorized hash join ----

type vecHashJoinOp struct {
	left, right  VecIterator
	lKeys, rKeys []int
	residual     []PredFn
	workers      int

	table *joinTable

	// probe state, carried across Next calls
	pb        *Batch
	pi        int
	probeRow  Row
	probeHash uint64
	chain     int32 // 1-based index into table.rows, 0 = end of chain
	drained   bool

	batchEmitter
}

// NewVecHashJoin is the vectorized counterpart of NewHashJoin: the build
// side (left) is drained into a flat chained hash table at Open, the probe
// side (right) streams through batch-at-a-time. Chain hits are prefiltered
// on the full hash before the key-equality check. When workers > 1, the
// build side drains at worker parallelism where the source supports it and
// large tables are built with the partitioned parallel insert.
func NewVecHashJoin(left, right VecIterator, lKeys, rKeys []int, residual []PredFn, workers int) VecIterator {
	return &vecHashJoinOp{left: left, right: right, lKeys: lKeys, rKeys: rKeys,
		residual: residual, workers: workers}
}

func (j *vecHashJoinOp) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	build, err := drainVecRows(j.left)
	if err != nil {
		// Release the already-opened probe side (which may have
		// launched parallel scan workers).
		return errors.Join(err, j.right.Close())
	}
	j.table = newJoinTable(build, j.lKeys, j.workers)
	return nil
}

func (j *vecHashJoinOp) Next() (*Batch, error) {
	t := j.table
	out := j.rows[:0]
	for {
		for j.chain != 0 {
			i := j.chain - 1
			j.chain = t.next[i]
			if t.hashes[i] != j.probeHash {
				continue
			}
			l := Row(t.rows[i])
			if !keysEqual(l, j.lKeys, j.probeRow, j.rKeys) {
				continue
			}
			o := j.alloc.row(len(l) + len(j.probeRow))
			o = append(o, l...)
			o = append(o, j.probeRow...)
			if !evalAll(j.residual, o) {
				continue
			}
			out = append(out, o)
			if len(out) == BatchSize {
				return j.flush(out), nil
			}
		}
		// advance to the next probe row
		if j.pb != nil && j.pi < j.pb.Len() {
			j.probeRow = j.pb.Row(j.pi)
			j.pi++
			j.probeHash = hashCols(j.probeRow, j.rKeys)
			j.chain = t.head[j.probeHash&t.mask]
			continue
		}
		if j.drained {
			if len(out) > 0 {
				return j.flush(out), nil
			}
			return nil, nil
		}
		b, err := j.right.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.drained = true
			continue
		}
		j.pb, j.pi = b, 0
	}
}

func (j *vecHashJoinOp) Close() error { j.table = nil; return j.right.Close() }

// ---- vectorized merge join ----

type vecMergeJoinOp struct {
	left, right VecIterator
	lKey, rKey  int
	residual    []PredFn

	lRows, rRows   [][]int64
	li, ri         int
	groupL, groupR [][]int64
	gi, gj         int

	batchEmitter
}

// NewVecMergeJoin joins two inputs already sorted on their key columns,
// batch-at-a-time.
func NewVecMergeJoin(left, right VecIterator, lKey, rKey int, residual []PredFn) VecIterator {
	return &vecMergeJoinOp{left: left, right: right, lKey: lKey, rKey: rKey, residual: residual}
}

func (m *vecMergeJoinOp) Open() error {
	var err error
	if m.lRows, err = drainVecRows(m.left); err != nil {
		return err
	}
	if m.rRows, err = drainVecRows(m.right); err != nil {
		return err
	}
	// Same defensive sortedness check as the row-at-a-time operator: a
	// violation is a planning bug worth surfacing.
	for i := 1; i < len(m.lRows); i++ {
		if m.lRows[i-1][m.lKey] > m.lRows[i][m.lKey] {
			return fmt.Errorf("exec: merge join left input not sorted on col %d", m.lKey)
		}
	}
	for i := 1; i < len(m.rRows); i++ {
		if m.rRows[i-1][m.rKey] > m.rRows[i][m.rKey] {
			return fmt.Errorf("exec: merge join right input not sorted on col %d", m.rKey)
		}
	}
	return nil
}

func (m *vecMergeJoinOp) Next() (*Batch, error) {
	out := m.rows[:0]
	for {
		for m.gi < len(m.groupL) {
			for m.gj < len(m.groupR) {
				l, r := m.groupL[m.gi], m.groupR[m.gj]
				m.gj++
				o := m.alloc.row(len(l) + len(r))
				o = append(o, l...)
				o = append(o, r...)
				if !evalAll(m.residual, o) {
					continue
				}
				out = append(out, o)
				if len(out) == BatchSize {
					return m.flush(out), nil
				}
			}
			m.gj = 0
			m.gi++
		}
		// advance to the next matching key group
		if m.li >= len(m.lRows) || m.ri >= len(m.rRows) {
			if len(out) > 0 {
				return m.flush(out), nil
			}
			return nil, nil
		}
		lk, rk := m.lRows[m.li][m.lKey], m.rRows[m.ri][m.rKey]
		switch {
		case lk < rk:
			m.li++
		case lk > rk:
			m.ri++
		default:
			ls, rs := m.li, m.ri
			for m.li < len(m.lRows) && m.lRows[m.li][m.lKey] == lk {
				m.li++
			}
			for m.ri < len(m.rRows) && m.rRows[m.ri][m.rKey] == rk {
				m.ri++
			}
			m.groupL, m.groupR = m.lRows[ls:m.li], m.rRows[rs:m.ri]
			m.gi, m.gj = 0, 0
		}
	}
}

func (m *vecMergeJoinOp) Close() error { m.lRows, m.rRows = nil, nil; return nil }

// ---- vectorized index nested-loops join ----

type vecIndexNLOp struct {
	outer    VecIterator // the plan's RIGHT child
	index    Index       // inner: the plan's LEFT child
	outerKey int
	innerLen int
	residual []PredFn

	ob       *Batch
	oi       int
	outerRow Row
	matches  []Row
	mi       int
	drained  bool

	batchEmitter
}

// NewVecIndexNLJoin probes a prebuilt inner index with each outer row,
// batch-at-a-time. The output row is inner ++ outer, matching the plan
// convention that the indexed inner is the left child.
func NewVecIndexNLJoin(outer VecIterator, index Index, outerKey, innerLen int, residual []PredFn) VecIterator {
	return &vecIndexNLOp{outer: outer, index: index, outerKey: outerKey,
		innerLen: innerLen, residual: residual}
}

func (j *vecIndexNLOp) Open() error { return j.outer.Open() }

func (j *vecIndexNLOp) Next() (*Batch, error) {
	out := j.rows[:0]
	for {
		for j.mi < len(j.matches) {
			in := j.matches[j.mi]
			j.mi++
			o := j.alloc.row(len(in) + len(j.outerRow))
			o = append(o, in...)
			o = append(o, j.outerRow...)
			if !evalAll(j.residual, o) {
				continue
			}
			out = append(out, o)
			if len(out) == BatchSize {
				return j.flush(out), nil
			}
		}
		if j.ob != nil && j.oi < j.ob.Len() {
			j.outerRow = j.ob.Row(j.oi)
			j.oi++
			j.matches = j.index[j.outerRow[j.outerKey]]
			j.mi = 0
			continue
		}
		if j.drained {
			if len(out) > 0 {
				return j.flush(out), nil
			}
			return nil, nil
		}
		b, err := j.outer.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.drained = true
			continue
		}
		j.ob, j.oi = b, 0
	}
}

func (j *vecIndexNLOp) Close() error { return j.outer.Close() }
