package exec

import "sort"

// Grace-hash spill for vectorized hash aggregation. Aggregation state is
// associative — a group's (sums, count) accumulators merge by addition — so
// when the table outgrows its reservation the operator dumps every group as
// a PARTIAL ROW (key columns, sums, count) into hash partitions on disk,
// resets the table, and keeps pre-aggregating the remaining input in memory.
// Raw input rows and dumped partials share one run format: a raw row is just
// a partial with count 1 folded in before it was ever dumped.
//
// After the input is consumed, each partition is merged independently into a
// fresh aggTable (findOrCreateKey with the recomputed key hash — bit
// identical to the hash the group had in memory), recursing one hash-bit
// window deeper when a partition's merged table overflows. Every partial of
// a group shares the group key's hash, hence its partition at every level,
// so each group materializes in exactly one partition and the final merged
// multiset of groups equals the unbounded run's. Outputs of all partitions
// are concatenated and sorted once with the same comparator as
// aggTable.rows(), making the emitted rows byte-identical to the unbounded
// ordering.
//
// COUNT(DISTINCT) state is a value set, which a dumped scalar cannot
// represent, so plans carrying CountDistinct never spill: their table is
// Force-charged (overage recorded) instead. The TPC-H workload has none.

// aggSpill holds the partial-row codec state of one spilling aggregation.
type aggSpill struct {
	spec    AggSpecExec
	gw, sw  int
	pw      int   // partial-row width: gw + sw + 1 (count last)
	keyOffs []int // 0..gw-1: key columns of a partial row
	mem     *MemTracker

	flat       []int64   // dump chunk backing store
	cols       [][]int64 // dump chunk column windows into flat
	keyScratch []int64
	hs         []uint64
}

func newAggSpill(spec AggSpecExec, mem *MemTracker) *aggSpill {
	sp := &aggSpill{spec: spec, gw: len(spec.GroupBy), sw: len(spec.Sums), mem: mem}
	sp.pw = sp.gw + sp.sw + 1
	sp.keyOffs = make([]int, sp.gw)
	for i := range sp.keyOffs {
		sp.keyOffs[i] = i
	}
	sp.flat = make([]int64, sp.pw*BatchSize)
	sp.cols = make([][]int64, sp.pw)
	for c := range sp.cols {
		sp.cols[c] = sp.flat[c*BatchSize : (c+1)*BatchSize : (c+1)*BatchSize]
	}
	sp.keyScratch = make([]int64, sp.gw)
	return sp
}

// dump writes every group of t as partial rows into the partitioner, in
// BatchSize blocks through the reused chunk scratch. The partitioner rehashes
// the key columns — bit-identical to the hashes t stored for its groups.
func (sp *aggSpill) dump(t *aggTable, part *spillPartitioner) error {
	for base := 0; base < t.n; base += BatchSize {
		m := t.n - base
		if m > BatchSize {
			m = BatchSize
		}
		for k := 0; k < sp.gw; k++ {
			col := sp.cols[k]
			for i := 0; i < m; i++ {
				col[i] = t.keys[(base+i)*sp.gw+k]
			}
		}
		for s := 0; s < sp.sw; s++ {
			col := sp.cols[sp.gw+s]
			for i := 0; i < m; i++ {
				col[i] = t.sums[(base+i)*sp.sw+s]
			}
		}
		cc := sp.cols[sp.gw+sp.sw]
		copy(cc[:m], t.counts[base:base+m])
		if err := part.add(sp.cols, m, nil); err != nil {
			return err
		}
	}
	return nil
}

// mergeBatch folds a batch of partial rows into t.
func (sp *aggSpill) mergeBatch(t *aggTable, b *Batch) {
	sp.hs = hashLive(sp.hs, b.Cols, sp.keyOffs, b.N, nil)
	for i := 0; i < b.N; i++ {
		for k := 0; k < sp.gw; k++ {
			sp.keyScratch[k] = b.Cols[k][i]
		}
		g := t.findOrCreateKey(sp.hs[i], sp.keyScratch)
		for s := 0; s < sp.sw; s++ {
			t.sums[g*t.sw+s] += b.Cols[sp.gw+s][i]
		}
		t.counts[g] += b.Cols[sp.gw+sp.sw][i]
	}
}

// mergeRun merges one partition run of partial rows into output rows,
// recursing one level deeper if the merged table overflows its reservation.
// At maxSpillLevel the remaining table is Force-charged (skewed keys have
// exhausted the hash windows; overage records that the bound gave way).
func (sp *aggSpill) mergeRun(run *spillRun, level int) ([]Row, error) {
	t := newAggTable(sp.spec)
	var charged int64
	rd, err := run.reader()
	if err != nil {
		return nil, err
	}
	var part *spillPartitioner // non-nil once this run recursed
	for {
		b, err := rd.next()
		if err != nil {
			if part != nil {
				part.abort()
			}
			return nil, err
		}
		if b == nil {
			break
		}
		if part != nil {
			// Already recursing: route the rest of the run (pre-aggregated
			// partials stay mergeable) straight to the sub-partitions.
			if err := part.add(b.Cols, b.N, nil); err != nil {
				part.abort()
				return nil, err
			}
			continue
		}
		sp.mergeBatch(t, b)
		delta := t.approxBytes() - charged
		if delta <= 0 {
			continue
		}
		if sp.mem.Reserve(delta) {
			charged += delta
			continue
		}
		if level >= maxSpillLevel {
			sp.mem.Force(delta)
			charged += delta
			continue
		}
		sp.mem.noteSpillRecursion()
		if part, err = newSpillPartitioner(sp.mem, sp.pw, sp.keyOffs, level+1); err != nil {
			sp.mem.Release(charged)
			return nil, err
		}
		if err := sp.dump(t, part); err != nil {
			part.abort()
			sp.mem.Release(charged)
			return nil, err
		}
		sp.mem.Release(charged)
		charged = 0
		t = newAggTable(sp.spec)
	}
	if part == nil {
		rows := t.rows()
		sp.mem.Release(charged)
		return rows, nil
	}
	subs, err := part.finish(sp.mem)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for i, r := range subs {
		if r.rows == 0 {
			r.close()
			continue
		}
		sub, err := sp.mergeRun(r, level+1)
		r.close()
		if err != nil {
			for _, rest := range subs[i+1:] {
				rest.close()
			}
			return nil, err
		}
		rows = append(rows, sub...)
	}
	return rows, nil
}

// mergeAll merges every level-0 partition and restores the unbounded
// operator's deterministic global output order.
func (sp *aggSpill) mergeAll(runs []*spillRun) ([]Row, error) {
	var rows []Row
	for i, r := range runs {
		if r.rows == 0 {
			r.close()
			continue
		}
		sub, err := sp.mergeRun(r, 0)
		r.close()
		if err != nil {
			for _, rest := range runs[i+1:] {
				rest.close()
			}
			return nil, err
		}
		rows = append(rows, sub...)
	}
	sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j]) })
	return rows, nil
}
