package exec

// This file integrates the cross-query semantic result cache
// (internal/rescache) into the vectorized compiler as a spool/probe pair.
// The serving layer derives cache CANDIDATES from a plan once per plan
// version — the cacheable subtrees, each with its canonical fingerprint —
// and hands them to the Compiler. At compile time every candidate is
// resolved into a DECISION:
//
//   - probe hit: the whole subtree is replaced by a cached scan handing out
//     zero-copy column windows over the materialized result, permuted from
//     the entry's canonical column order into this plan's schema order, and
//     the entry's recorded per-node cardinalities are replayed into RunStats
//     so the adaptive feedback loop observes byte-identical counts;
//   - miss: the subtree compiles normally and is wrapped in a spool that
//     tees its batches into a materialization, permutes it into canonical
//     column order at end-of-stream and stores it, pinned to the data
//     versions of its base tables.
//
// Soundness leans on three invariants. First, equal fingerprints imply
// isomorphic subexpressions (relalg.Fingerprinter), and candidates refuse
// sets whose canonical member order is ambiguous (self-joins), so the
// canonical column order is well-defined across queries. Second, only
// subtrees promising no physical property (Prop == Any) are candidates: a
// cached result is a multiset, and every order-sensitive consumer (merge
// join, sorted output) sits behind an explicit Prop or Enforce the
// candidate walk refuses. Third, a probe only hits when the entry records a
// cardinality for every counted node of THIS plan's subtree shape; a
// fingerprint-equal entry produced by a differently-shaped plan bypasses to
// a miss and is overwritten by the new spool.

import (
	"fmt"

	"repro/internal/relalg"
	"repro/internal/rescache"
)

// CachePoint pairs one counted node of a cacheable subtree with its
// canonical fingerprint: the unit of cardinality replay.
type CachePoint struct {
	Set relalg.RelSet
	FP  string
}

// CacheCandidate is one cacheable subtree of a specific plan tree.
type CacheCandidate struct {
	// Node is the subtree root inside the plan the candidate was built
	// from; decisions are matched by node identity, so candidates must be
	// rebuilt whenever the plan tree is replaced (every repair).
	Node *relalg.Plan
	// Expr is the subtree's relation set in the minting query.
	Expr relalg.RelSet
	// FP is the canonical fingerprint of Expr — the cache key.
	FP string
	// CanonOrder lists Expr's member relations in canonical fingerprint
	// order: the column order of the materialized entry.
	CanonOrder []int
	// Counts lists every node of the subtree that the compiler wires a
	// cardinality counter onto (the root first), with its fingerprint.
	Counts []CachePoint
	// Cost is the optimizer's cost estimate for the subtree — what a probe
	// hit saves, and the admission threshold input.
	Cost float64
}

// BuildCacheCandidates walks plan and returns its cacheable subtrees in
// pre-order (parents before children). A node qualifies when it is a
// filtered table scan or a join, promises no physical property, its member
// order is unambiguous (no self-join tie-break), and its estimated cost
// reaches minCost. The walk mirrors the compiler's counting structure: the
// folded inner leaf of an index nested-loops join is neither counted nor
// offered. The Fingerprinter must be the minting query's; the caller
// serializes access to it (it memoizes internally).
func BuildCacheCandidates(q *relalg.Query, plan *relalg.Plan, fper *relalg.Fingerprinter, minCost float64) []CacheCandidate {
	var out []CacheCandidate
	var walk func(p *relalg.Plan)
	walk = func(p *relalg.Plan) {
		if p == nil {
			return
		}
		if cacheEligible(q, p, minCost) && !fper.AmbiguousOrder(p.Expr) {
			out = append(out, CacheCandidate{
				Node:       p,
				Expr:       p.Expr,
				FP:         fper.Fingerprint(p.Expr),
				CanonOrder: fper.CanonicalMembers(p.Expr),
				Counts:     collectCachePoints(nil, p, fper),
				Cost:       p.Cost,
			})
		}
		switch p.Log {
		case relalg.LogScan:
		case relalg.LogEnforce:
			walk(p.Left)
		case relalg.LogJoin:
			if p.Phy != relalg.PhyIndexNLJoin {
				walk(p.Left)
			}
			walk(p.Right)
		}
	}
	walk(plan)
	return out
}

// cacheEligible applies the per-node candidacy rules.
func cacheEligible(q *relalg.Query, p *relalg.Plan, minCost float64) bool {
	if p.Prop.Kind != relalg.PropAny || p.Cost < minCost {
		return false
	}
	switch p.Log {
	case relalg.LogScan:
		// Unfiltered scans would cache a copy of the base table; index
		// scans promise an order even when Prop does not demand one.
		return p.Phy != relalg.PhyIndexScan && len(q.ScanPredsOf(p.Rel)) > 0
	case relalg.LogJoin:
		return true
	}
	return false
}

// collectCachePoints appends the (set, fingerprint) of every node the
// compiler counts within the subtree, mirroring compileVec: scans and joins
// are counted, enforcers are not, and the inner leaf of an index
// nested-loops join is folded into the join operator uncounted.
func collectCachePoints(out []CachePoint, p *relalg.Plan, fper *relalg.Fingerprinter) []CachePoint {
	if p == nil {
		return out
	}
	switch p.Log {
	case relalg.LogScan:
		out = append(out, CachePoint{Set: p.Expr, FP: fper.Fingerprint(p.Expr)})
	case relalg.LogEnforce:
		out = collectCachePoints(out, p.Left, fper)
	case relalg.LogJoin:
		out = append(out, CachePoint{Set: p.Expr, FP: fper.Fingerprint(p.Expr)})
		if p.Phy != relalg.PhyIndexNLJoin {
			out = collectCachePoints(out, p.Left, fper)
		}
		out = collectCachePoints(out, p.Right, fper)
	}
	return out
}

// cacheDecision is one resolved candidate: serve (entry != nil) or spool.
type cacheDecision struct {
	cand     *CacheCandidate
	entry    *rescache.Entry         // probe hit: serve these columns
	versions []rescache.TableVersion // spool: versions pinned at decision time
}

// tableVersion resolves a base table's current data version for probe
// revalidation.
func (c *Compiler) tableVersion(table string) (uint64, bool) {
	t, err := c.Cat.Table(table)
	if err != nil {
		return 0, false
	}
	return t.DataVersion(), true
}

// resolveCache turns the candidate list into per-node decisions for this
// compilation. Candidates arrive in pre-order, so containment is resolved
// outermost-first: everything inside a probe hit is skipped (those nodes are
// never compiled), and at most one spool is placed along any root-to-leaf
// path (a nested spool would tee rows the outer spool already pays for).
// The row-at-a-time layout and Data-overridden relations (stream windows)
// compile cache-free.
func (c *Compiler) resolveCache() {
	c.decisions = nil
	if !c.Cache.Enabled() || len(c.CacheCands) == 0 || c.Data != nil || !c.columnarEnabled() {
		return
	}
	var hitRoots, spoolRoots []relalg.RelSet
	under := func(s relalg.RelSet, roots []relalg.RelSet) bool {
		for _, r := range roots {
			if s.IsSubset(r) {
				return true
			}
		}
		return false
	}
	for i := range c.CacheCands {
		cand := &c.CacheCands[i]
		if under(cand.Expr, hitRoots) {
			continue
		}
		entry, ok := c.Cache.Probe(cand.FP, c.tableVersion, func(e *rescache.Entry) bool {
			return c.cacheCompatible(cand, e)
		})
		if ok {
			if c.decisions == nil {
				c.decisions = map[*relalg.Plan]*cacheDecision{}
			}
			c.decisions[cand.Node] = &cacheDecision{cand: cand, entry: entry}
			hitRoots = append(hitRoots, cand.Expr)
			continue
		}
		if under(cand.Expr, spoolRoots) {
			continue
		}
		versions := make([]rescache.TableVersion, 0, len(cand.CanonOrder))
		usable := true
		for _, rel := range cand.CanonOrder {
			name := c.Q.Rels[rel].Table
			v, ok := c.tableVersion(name)
			if !ok {
				usable = false
				break
			}
			versions = append(versions, rescache.TableVersion{Table: name, Version: v})
		}
		if !usable {
			continue
		}
		if c.decisions == nil {
			c.decisions = map[*relalg.Plan]*cacheDecision{}
		}
		c.decisions[cand.Node] = &cacheDecision{cand: cand, versions: versions}
		spoolRoots = append(spoolRoots, cand.Expr)
	}
}

// cacheCompatible reports whether a stored entry can serve this plan's
// subtree: the column count matches the subtree's full output width and the
// entry records a cardinality for every node this plan shape counts.
func (c *Compiler) cacheCompatible(cand *CacheCandidate, e *rescache.Entry) bool {
	width := 0
	for _, rel := range cand.CanonOrder {
		arity, err := c.tableArity(rel)
		if err != nil {
			return false
		}
		width += arity
	}
	if len(e.Cols) != width || int64(e.N) != e.Cards[cand.FP] {
		return false
	}
	for _, cp := range cand.Counts {
		if _, ok := e.Cards[cp.FP]; !ok {
			return false
		}
	}
	return true
}

// takeDecision pops the decision attached to a plan node, if any. Popping
// (rather than reading) lets applyCacheDecision recurse into compileVec on
// the same node to build a spool's input without re-triggering itself.
func (c *Compiler) takeDecision(p *relalg.Plan) *cacheDecision {
	d := c.decisions[p]
	if d != nil {
		delete(c.decisions, p)
	}
	return d
}

// decisionWithin reports whether any unconsumed decision targets a node
// inside the subtree rooted at p. Pipeline fusion bails out in that case:
// the fused operator compiles the spine wholesale and would silently skip
// the probe or spool.
func (c *Compiler) decisionWithin(p *relalg.Plan) bool {
	for _, d := range c.decisions {
		if d.cand.Expr.IsSubset(p.Expr) {
			return true
		}
	}
	return false
}

// canonColOffsets maps every output column of the candidate's subtree to its
// offset in the entry's canonical column order.
func (c *Compiler) canonColOffsets(cand *CacheCandidate) (map[relalg.ColID]int, error) {
	off := map[relalg.ColID]int{}
	base := 0
	for _, rel := range cand.CanonOrder {
		arity, err := c.tableArity(rel)
		if err != nil {
			return nil, err
		}
		for i := 0; i < arity; i++ {
			off[relalg.ColID{Rel: rel, Off: i}] = base + i
		}
		base += arity
	}
	return off, nil
}

// applyCacheDecision compiles a decided node: a probe hit becomes a cached
// scan over the entry's columns permuted into this plan's schema order, with
// the entry's cardinalities replayed into RunStats (the subtree's operators
// never exist, so nothing double-counts); a miss compiles the subtree
// normally and wraps it in a spool.
func (c *Compiler) applyCacheDecision(d *cacheDecision, p *relalg.Plan, stats *RunStats) (VecIterator, []relalg.ColID, error) {
	schema, err := c.PlanSchema(p)
	if err != nil {
		return nil, nil, err
	}
	canon, err := c.canonColOffsets(d.cand)
	if err != nil {
		return nil, nil, err
	}
	if len(schema) != len(canon) {
		return nil, nil, fmt.Errorf("exec: cache candidate %v: schema width %d != canonical width %d",
			d.cand.Expr, len(schema), len(canon))
	}

	if d.entry != nil {
		cols := make([][]int64, len(schema))
		for i, cid := range schema {
			k, ok := canon[cid]
			if !ok {
				return nil, nil, fmt.Errorf("exec: cache candidate %v: column %+v not in canonical order", d.cand.Expr, cid)
			}
			cols[i] = d.entry.Cols[k]
			if cols[i] == nil {
				cols[i] = []int64{}
			}
		}
		for _, cp := range d.cand.Counts {
			*stats.counter(cp.Set) = d.entry.Cards[cp.FP]
		}
		return NewVecScan(cols, d.entry.N, ScanFilter{}), schema, nil
	}

	// Compile the missed subtree via compileVecNode: the profiling shim for
	// p (if any) is added by the compileVec wrapper around THIS call, so
	// going through compileVec here would double-register p's span.
	in, schema, err := c.compileVecNode(p, stats)
	if err != nil {
		return nil, nil, err
	}
	// canonPos[k] = position in the subtree schema of canonical column k.
	canonPos := make([]int, len(schema))
	for i, cid := range schema {
		canonPos[canon[cid]] = i
	}
	return &spoolOp{
		in:       in,
		cache:    c.Cache,
		fp:       d.cand.FP,
		canonPos: canonPos,
		counts:   d.cand.Counts,
		stats:    stats,
		versions: d.versions,
		maxBytes: c.Cache.MaxBytes(),
	}, schema, nil
}

// PlanSchema returns the output schema (the ColID of every output column, in
// order) of the operator tree the vectorized compiler builds for p, without
// building it.
func (c *Compiler) PlanSchema(p *relalg.Plan) ([]relalg.ColID, error) {
	relSchema := func(rel int) ([]relalg.ColID, error) {
		arity, err := c.tableArity(rel)
		if err != nil {
			return nil, err
		}
		s := make([]relalg.ColID, arity)
		for i := range s {
			s[i] = relalg.ColID{Rel: rel, Off: i}
		}
		return s, nil
	}
	switch p.Log {
	case relalg.LogScan:
		return relSchema(p.Rel)
	case relalg.LogEnforce:
		return c.PlanSchema(p.Left)
	case relalg.LogJoin:
		var ls []relalg.ColID
		var err error
		if p.Phy == relalg.PhyIndexNLJoin {
			ls, err = relSchema(p.Left.Expr.SingleMember())
		} else {
			ls, err = c.PlanSchema(p.Left)
		}
		if err != nil {
			return nil, err
		}
		rs, err := c.PlanSchema(p.Right)
		if err != nil {
			return nil, err
		}
		return append(append([]relalg.ColID(nil), ls...), rs...), nil
	}
	return nil, fmt.Errorf("exec: unknown logical operator %v", p.Log)
}

// spoolOp tees its input's batches into a materialization while streaming
// them onward unchanged. At end of stream it permutes the materialized
// columns into canonical order, attaches the subtree's observed
// cardinalities (final by then — the whole subtree has drained) and the
// pinned table versions, and stores the entry. Teeing is abandoned — the
// stream continues untouched — if the materialization outgrows the cache's
// whole byte budget, or on any error; an operator tree torn down before end
// of stream simply never stores.
type spoolOp struct {
	in       VecIterator
	cache    *rescache.Cache
	fp       string
	canonPos []int // canonical column k -> subtree schema position
	counts   []CachePoint
	stats    *RunStats
	versions []rescache.TableVersion
	maxBytes int64

	data      colData
	abandoned bool
	done      bool
}

func (s *spoolOp) Open() error { return s.in.Open() }

func (s *spoolOp) Next() (*Batch, error) {
	b, err := s.in.Next()
	if err != nil {
		s.abandoned = true
		s.data = colData{}
		return b, err
	}
	if b == nil {
		s.finish()
		return nil, nil
	}
	if !s.abandoned {
		s.data.appendBatch(b)
		if int64(s.data.n)*int64(len(s.canonPos))*8 > s.maxBytes {
			s.abandoned = true
			s.data = colData{}
		}
	}
	return b, nil
}

func (s *spoolOp) Close() error { return s.in.Close() }

// finish builds and stores the entry, once.
func (s *spoolOp) finish() {
	if s.abandoned || s.done {
		return
	}
	s.done = true
	cols := make([][]int64, len(s.canonPos))
	for k, i := range s.canonPos {
		if s.data.cols != nil {
			cols[k] = s.data.cols[i]
		} else {
			cols[k] = []int64{}
		}
	}
	cards := make(map[string]int64, len(s.counts))
	for _, cp := range s.counts {
		cards[cp.FP] = *s.stats.counter(cp.Set)
	}
	s.cache.Store(s.fp, &rescache.Entry{
		Cols: cols, N: s.data.n, Cards: cards, Versions: s.versions,
	})
}
