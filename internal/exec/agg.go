package exec

import (
	"errors"
	"sort"
)

// AggSpecExec describes a hash aggregation over the join output.
type AggSpecExec struct {
	GroupBy       []int // column offsets in the input row
	Sums          []int
	CountAll      bool
	CountDistinct []int
}

// aggTable is the grouping core shared by the row-at-a-time, vectorized and
// parallel hash aggregation operators: an open-addressing table of 1-based
// group ids hashed directly on the int64 group-key columns, with all group
// state (keys, sums, counts) in flat arrays. Adding a row allocates nothing
// beyond amortized slice growth — no per-row key string, no per-group
// state struct — which is what keeps the aggregation hot path off the
// allocator at any parallelism.
type aggTable struct {
	spec AggSpecExec
	gw   int // group-key width
	sw   int // sum width
	dw   int // count-distinct width

	mask   uint64
	slots  []int32 // open addressing: 0 = empty, else 1-based group id
	hashes []uint64
	keys   []int64 // group g's key columns at [g*gw, (g+1)*gw)
	sums   []int64 // group g's sums at [g*sw, (g+1)*sw)
	counts []int64
	idCols []int // 0..gw-1, for inserting already-extracted flat keys
	// distinct value sets per (group, CountDistinct column); the only
	// per-group allocation left, and only for COUNT(DISTINCT) queries.
	distinct []map[int64]struct{}
	n        int
}

const aggInitSlots = 256 // power of two

func newAggTable(spec AggSpecExec) *aggTable {
	t := &aggTable{
		spec:  spec,
		gw:    len(spec.GroupBy),
		sw:    len(spec.Sums),
		dw:    len(spec.CountDistinct),
		mask:  aggInitSlots - 1,
		slots: make([]int32, aggInitSlots),
	}
	t.idCols = make([]int, t.gw)
	for i := range t.idCols {
		t.idCols[i] = i
	}
	return t
}

func (t *aggTable) add(r Row) {
	g := t.findOrCreate(hashCols(r, t.spec.GroupBy), r)
	for i, c := range t.spec.Sums {
		t.sums[g*t.sw+i] += r[c]
	}
	t.counts[g]++
	for i, c := range t.spec.CountDistinct {
		t.distinct[g*t.dw+i][r[c]] = struct{}{}
	}
}

// aggScratch is the reusable per-consumer scratch of the columnar
// aggregation path: the batch hash vector and the resolved group id per
// live row. One instance per serial consumer or pipeline worker.
type aggScratch struct {
	hashes []uint64
	gids   []int32
}

// addBatch folds a column-major chunk (cols[c] holding rows 0..n-1, live
// rows given by sel) into the table: group-key hashes are computed with one
// column pass per key (bit-identical to hashCols, so merge stays
// compatible), group ids are resolved once per row, and each accumulator
// column is then updated in its own tight loop over the chunk — column
// locality on both the input and the flat sums array.
func (t *aggTable) addBatch(cols [][]int64, n int, sel []int, s *aggScratch) {
	s.hashes = hashLive(s.hashes, cols, t.spec.GroupBy, n, sel)
	m := len(s.hashes)
	if cap(s.gids) < m {
		s.gids = make([]int32, m)
	}
	s.gids = s.gids[:m]
	t.resolveGids(cols, n, sel, s)
	for si, c := range t.spec.Sums {
		col, sums, sw := cols[c], t.sums, t.sw
		if sel == nil {
			for i := 0; i < n; i++ {
				sums[int(s.gids[i])*sw+si] += col[i]
			}
		} else {
			for k, i := range sel {
				sums[int(s.gids[k])*sw+si] += col[i]
			}
		}
	}
	for di, c := range t.spec.CountDistinct {
		col := cols[c]
		if sel == nil {
			for i := 0; i < n; i++ {
				t.distinct[int(s.gids[i])*t.dw+di][col[i]] = struct{}{}
			}
		} else {
			for k, i := range sel {
				t.distinct[int(s.gids[k])*t.dw+di][col[i]] = struct{}{}
			}
		}
	}
}

// resolveGids fills s.gids[k] with the group id of the k-th live row,
// creating groups as needed, and bumps each group's COUNT(*) in the same
// pass. The overwhelmingly common case — the group already exists and sits
// in its home slot — is handled inline, with the key comparison specialized
// for one- and two-column group keys so the hit path is pure slice reads;
// home-slot misses fall into findOrCreateCols' full open-addressing probe.
// Table fields (slots, hashes, keys, counts, mask) are reloaded every row
// because a miss can grow the table mid-batch.
func (t *aggTable) resolveGids(cols [][]int64, n int, sel []int, s *aggScratch) {
	switch len(t.spec.GroupBy) {
	case 1:
		c0 := cols[t.spec.GroupBy[0]]
		if sel == nil {
			for i := 0; i < n; i++ {
				h := s.hashes[i]
				g := -1
				if gi := t.slots[h&t.mask]; gi > 0 {
					if cand := int(gi - 1); t.hashes[cand] == h && t.keys[cand] == c0[i] {
						g = cand
					}
				}
				if g < 0 {
					g = t.findOrCreateCols(h, cols, i)
				}
				s.gids[i] = int32(g)
				t.counts[g]++
			}
		} else {
			for k, i := range sel {
				h := s.hashes[k]
				g := -1
				if gi := t.slots[h&t.mask]; gi > 0 {
					if cand := int(gi - 1); t.hashes[cand] == h && t.keys[cand] == c0[i] {
						g = cand
					}
				}
				if g < 0 {
					g = t.findOrCreateCols(h, cols, i)
				}
				s.gids[k] = int32(g)
				t.counts[g]++
			}
		}
	case 2:
		c0, c1 := cols[t.spec.GroupBy[0]], cols[t.spec.GroupBy[1]]
		if sel == nil {
			for i := 0; i < n; i++ {
				h := s.hashes[i]
				g := -1
				if gi := t.slots[h&t.mask]; gi > 0 {
					if cand := int(gi - 1); t.hashes[cand] == h &&
						t.keys[cand*2] == c0[i] && t.keys[cand*2+1] == c1[i] {
						g = cand
					}
				}
				if g < 0 {
					g = t.findOrCreateCols(h, cols, i)
				}
				s.gids[i] = int32(g)
				t.counts[g]++
			}
		} else {
			for k, i := range sel {
				h := s.hashes[k]
				g := -1
				if gi := t.slots[h&t.mask]; gi > 0 {
					if cand := int(gi - 1); t.hashes[cand] == h &&
						t.keys[cand*2] == c0[i] && t.keys[cand*2+1] == c1[i] {
						g = cand
					}
				}
				if g < 0 {
					g = t.findOrCreateCols(h, cols, i)
				}
				s.gids[k] = int32(g)
				t.counts[g]++
			}
		}
	default:
		if sel == nil {
			for i := 0; i < n; i++ {
				g := t.findOrCreateCols(s.hashes[i], cols, i)
				s.gids[i] = int32(g)
				t.counts[g]++
			}
		} else {
			for k, i := range sel {
				g := t.findOrCreateCols(s.hashes[k], cols, i)
				s.gids[k] = int32(g)
				t.counts[g]++
			}
		}
	}
}

// findOrCreateCols is findOrCreate with the probe row read out of a
// column-major chunk. h must be the hash of row i's group-key columns.
func (t *aggTable) findOrCreateCols(h uint64, cols [][]int64, i int) int {
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		gi := t.slots[s]
		if gi == 0 {
			g := t.n
			t.n++
			t.slots[s] = int32(g + 1)
			t.hashes = append(t.hashes, h)
			for _, c := range t.spec.GroupBy {
				t.keys = append(t.keys, cols[c][i])
			}
			t.sums = append(t.sums, make([]int64, t.sw)...)
			t.counts = append(t.counts, 0)
			for d := 0; d < t.dw; d++ {
				t.distinct = append(t.distinct, map[int64]struct{}{})
			}
			if uint64(t.n)*4 > (t.mask+1)*3 {
				t.grow()
			}
			return g
		}
		g := int(gi - 1)
		if t.hashes[g] != h {
			continue
		}
		eq := true
		for k, c := range t.spec.GroupBy {
			if t.keys[g*t.gw+k] != cols[c][i] {
				eq = false
				break
			}
		}
		if eq {
			return g
		}
	}
}

// findOrCreate returns the group id of r's key columns, creating the group
// if absent. h must be hashCols(r, spec.GroupBy).
func (t *aggTable) findOrCreate(h uint64, r Row) int {
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		gi := t.slots[s]
		if gi == 0 {
			return t.newGroup(s, h, r, t.spec.GroupBy)
		}
		g := int(gi - 1)
		if t.hashes[g] != h {
			continue
		}
		eq := true
		for i, c := range t.spec.GroupBy {
			if t.keys[g*t.gw+i] != r[c] {
				eq = false
				break
			}
		}
		if eq {
			return g
		}
	}
}

// findOrCreateKey is findOrCreate over an already-extracted flat key (the
// merge path, where the source group's hash is reused verbatim).
func (t *aggTable) findOrCreateKey(h uint64, key []int64) int {
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		gi := t.slots[s]
		if gi == 0 {
			return t.newGroup(s, h, Row(key), t.idCols)
		}
		g := int(gi - 1)
		if t.hashes[g] != h {
			continue
		}
		eq := true
		for i := 0; i < t.gw; i++ {
			if t.keys[g*t.gw+i] != key[i] {
				eq = false
				break
			}
		}
		if eq {
			return g
		}
	}
}

func (t *aggTable) newGroup(slot uint64, h uint64, r Row, cols []int) int {
	g := t.n
	t.n++
	t.slots[slot] = int32(g + 1)
	t.hashes = append(t.hashes, h)
	for _, c := range cols {
		t.keys = append(t.keys, r[c])
	}
	t.sums = append(t.sums, make([]int64, t.sw)...)
	t.counts = append(t.counts, 0)
	for i := 0; i < t.dw; i++ {
		t.distinct = append(t.distinct, map[int64]struct{}{})
	}
	// Grow at 3/4 load; rehashing only touches the slot array (hashes are
	// stored per group).
	if uint64(t.n)*4 > (t.mask+1)*3 {
		t.grow()
	}
	return g
}

// approxBytes estimates the table's tracked footprint: the slot array plus
// per-group hash, key, sum and count storage (and a nominal map allowance
// per COUNT(DISTINCT) set). Monotone in n, so charging the delta after each
// batch keeps the reservation current.
func (t *aggTable) approxBytes() int64 {
	per := int64(8 + t.gw*8 + t.sw*8 + 8 + t.dw*48)
	return int64(t.mask+1)*4 + int64(t.n)*per
}

func (t *aggTable) grow() {
	size := 2 * (t.mask + 1)
	t.mask = size - 1
	t.slots = make([]int32, size)
	for g := 0; g < t.n; g++ {
		s := t.hashes[g] & t.mask
		for t.slots[s] != 0 {
			s = (s + 1) & t.mask
		}
		t.slots[s] = int32(g + 1)
	}
}

// mergeFrom folds another table's partial aggregates into t — the final
// merge of worker-local aggregation state in the parallel pipeline. Both
// tables must share the same spec.
func (t *aggTable) mergeFrom(o *aggTable) {
	for g := 0; g < o.n; g++ {
		tg := t.findOrCreateKey(o.hashes[g], o.keys[g*o.gw:(g+1)*o.gw])
		for i := 0; i < t.sw; i++ {
			t.sums[tg*t.sw+i] += o.sums[g*o.sw+i]
		}
		t.counts[tg] += o.counts[g]
		for i := 0; i < t.dw; i++ {
			dst := t.distinct[tg*t.dw+i]
			for v := range o.distinct[g*o.dw+i] {
				dst[v] = struct{}{}
			}
		}
	}
}

// rows renders the groups as output rows in deterministic (sorted group
// key) order: group-by columns, SUMs, COUNT(*) if requested, then
// COUNT(DISTINCT) values.
func (t *aggTable) rows() []Row {
	out := make([]Row, 0, t.n)
	for g := 0; g < t.n; g++ {
		row := make(Row, 0, t.gw+t.sw+1+t.dw)
		row = append(row, t.keys[g*t.gw:(g+1)*t.gw]...)
		row = append(row, t.sums[g*t.sw:(g+1)*t.sw]...)
		if t.spec.CountAll {
			row = append(row, t.counts[g])
		}
		for i := 0; i < t.dw; i++ {
			row = append(row, int64(len(t.distinct[g*t.dw+i])))
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return rowLess(out[i], out[j]) })
	return out
}

type hashAggOp struct {
	in   Iterator
	spec AggSpecExec
	out  []Row
	pos  int
}

// NewHashAgg returns a blocking hash aggregation. Output rows are the
// group-by columns followed by SUM values, COUNT(*) if requested, then
// COUNT(DISTINCT) values, in deterministic (sorted group key) order.
func NewHashAgg(in Iterator, spec AggSpecExec) Iterator {
	return &hashAggOp{in: in, spec: spec}
}

func (a *hashAggOp) Open() error {
	t := newAggTable(a.spec)
	if err := a.in.Open(); err != nil {
		return err
	}
	for {
		r, ok, err := a.in.Next()
		if err != nil {
			return errors.Join(err, a.in.Close())
		}
		if !ok {
			break
		}
		t.add(r)
	}
	if err := a.in.Close(); err != nil {
		return err
	}
	a.out = t.rows()
	a.pos = 0
	return nil
}

func (a *hashAggOp) Next() (Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}

func (a *hashAggOp) Close() error { a.out = nil; return nil }

// ---- vectorized hash aggregation ----

type vecHashAggOp struct {
	in    VecIterator
	spec  AggSpecExec
	mem   *MemTracker // nil = untracked; set by the compiler
	out   colData
	pos   int
	batch Batch
}

// NewVecHashAgg is the vectorized counterpart of NewHashAgg: it consumes
// its input batch-at-a-time through aggTable.addBatch (columnar group-key
// hashing and per-column accumulator loops) and emits the aggregated groups
// as dense column windows in the same deterministic order.
func NewVecHashAgg(in VecIterator, spec AggSpecExec) VecIterator {
	return &vecHashAggOp{in: in, spec: spec}
}

func (a *vecHashAggOp) Open() error {
	t := newAggTable(a.spec)
	if err := a.in.Open(); err != nil {
		return err
	}
	var (
		scratch aggScratch
		sp      *aggSpill
		part    *spillPartitioner
		charged int64
	)
	// COUNT(DISTINCT) state cannot round-trip through scalar partials, so
	// such plans stay in memory (Force-charged; see spillagg.go).
	spillable := a.mem.Bounded() && len(a.spec.CountDistinct) == 0
	fail := func(err error) error {
		if part != nil {
			part.abort()
		}
		a.mem.Release(charged)
		return err
	}
	for {
		b, err := a.in.Next()
		if err != nil {
			return fail(errors.Join(err, a.in.Close()))
		}
		if b == nil {
			break
		}
		t.addBatch(b.Cols, b.N, b.Sel, &scratch)
		if a.mem == nil {
			continue
		}
		delta := t.approxBytes() - charged
		if delta <= 0 {
			continue
		}
		if !spillable {
			a.mem.Force(delta)
			charged += delta
			continue
		}
		if a.mem.Reserve(delta) {
			charged += delta
			continue
		}
		// The table outgrew its reservation: dump partials to disk and
		// restart in-memory pre-aggregation on the remaining input.
		if sp == nil {
			sp = newAggSpill(a.spec, a.mem)
			if part, err = newSpillPartitioner(a.mem, sp.pw, sp.keyOffs, 0); err != nil {
				part = nil
				return fail(errors.Join(err, a.in.Close()))
			}
		}
		if err := sp.dump(t, part); err != nil {
			return fail(errors.Join(err, a.in.Close()))
		}
		a.mem.Release(charged)
		charged = 0
		t = newAggTable(a.spec)
	}
	if err := a.in.Close(); err != nil {
		return fail(err)
	}
	var rows []Row
	if part == nil {
		rows = t.rows()
		a.mem.Release(charged)
		charged = 0
	} else {
		if err := sp.dump(t, part); err != nil {
			return fail(err)
		}
		a.mem.Release(charged)
		charged = 0
		runs, err := part.finish(a.mem)
		if err != nil {
			return err
		}
		if rows, err = sp.mergeAll(runs); err != nil {
			return err
		}
	}
	var arity int
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	// The final output must materialize for the consumer regardless of
	// budget; Force records any overage.
	a.mem.Force(colBytes(arity, len(rows)))
	a.out = transposeRows(rowsAsRaw(rows), arity)
	a.pos = 0
	return nil
}

func rowsAsRaw(rows []Row) [][]int64 {
	out := make([][]int64, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

func (a *vecHashAggOp) Next() (*Batch, error) {
	if a.pos >= a.out.n {
		return nil, nil
	}
	end := a.pos + BatchSize
	if end > a.out.n {
		end = a.out.n
	}
	a.batch.Cols = a.out.window(a.batch.Cols, a.pos, end)
	a.batch.N = end - a.pos
	a.batch.Sel = nil
	a.pos = end
	return &a.batch, nil
}

func (a *vecHashAggOp) Close() error {
	a.out = colData{}
	a.mem.ReleaseAll()
	return nil
}

func rowLess(a, b Row) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
