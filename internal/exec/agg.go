package exec

import "sort"

// AggSpecExec describes a hash aggregation over the join output.
type AggSpecExec struct {
	GroupBy       []int // column offsets in the input row
	Sums          []int
	CountAll      bool
	CountDistinct []int
}

type hashAggOp struct {
	in   Iterator
	spec AggSpecExec
	out  []Row
	pos  int
}

type aggState struct {
	key      Row
	sums     []int64
	count    int64
	distinct []map[int64]struct{}
}

// NewHashAgg returns a blocking hash aggregation. Output rows are the
// group-by columns followed by SUM values, COUNT(*) if requested, then
// COUNT(DISTINCT) values, in deterministic (sorted group key) order.
func NewHashAgg(in Iterator, spec AggSpecExec) Iterator {
	return &hashAggOp{in: in, spec: spec}
}

func (a *hashAggOp) Open() error {
	groups := map[string]*aggState{}
	if err := a.in.Open(); err != nil {
		return err
	}
	for {
		r, ok, err := a.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key := make(Row, len(a.spec.GroupBy))
		for i, c := range a.spec.GroupBy {
			key[i] = r[c]
		}
		ks := keyString(key)
		st := groups[ks]
		if st == nil {
			st = &aggState{
				key:      key,
				sums:     make([]int64, len(a.spec.Sums)),
				distinct: make([]map[int64]struct{}, len(a.spec.CountDistinct)),
			}
			for i := range st.distinct {
				st.distinct[i] = map[int64]struct{}{}
			}
			groups[ks] = st
		}
		for i, c := range a.spec.Sums {
			st.sums[i] += r[c]
		}
		st.count++
		for i, c := range a.spec.CountDistinct {
			st.distinct[i][r[c]] = struct{}{}
		}
	}
	if err := a.in.Close(); err != nil {
		return err
	}
	a.out = a.out[:0]
	for _, st := range groups {
		row := append(Row(nil), st.key...)
		row = append(row, st.sums...)
		if a.spec.CountAll {
			row = append(row, st.count)
		}
		for _, d := range st.distinct {
			row = append(row, int64(len(d)))
		}
		a.out = append(a.out, row)
	}
	sort.Slice(a.out, func(i, j int) bool { return rowLess(a.out[i], a.out[j]) })
	a.pos = 0
	return nil
}

func (a *hashAggOp) Next() (Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}

func (a *hashAggOp) Close() error { a.out = nil; return nil }

func keyString(r Row) string {
	b := make([]byte, 0, len(r)*8)
	for _, v := range r {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>uint(s)))
		}
	}
	return string(b)
}

func rowLess(a, b Row) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
