package exec

import (
	"errors"
	"sort"
)

// AggSpecExec describes a hash aggregation over the join output.
type AggSpecExec struct {
	GroupBy       []int // column offsets in the input row
	Sums          []int
	CountAll      bool
	CountDistinct []int
}

type aggState struct {
	key      Row
	sums     []int64
	count    int64
	distinct []map[int64]struct{}
}

// aggTable is the grouping core shared by the row-at-a-time and vectorized
// hash aggregation operators.
type aggTable struct {
	spec   AggSpecExec
	groups map[string]*aggState
}

func newAggTable(spec AggSpecExec) *aggTable {
	return &aggTable{spec: spec, groups: map[string]*aggState{}}
}

func (t *aggTable) add(r Row) {
	key := make(Row, len(t.spec.GroupBy))
	for i, c := range t.spec.GroupBy {
		key[i] = r[c]
	}
	ks := keyString(key)
	st := t.groups[ks]
	if st == nil {
		st = &aggState{
			key:      key,
			sums:     make([]int64, len(t.spec.Sums)),
			distinct: make([]map[int64]struct{}, len(t.spec.CountDistinct)),
		}
		for i := range st.distinct {
			st.distinct[i] = map[int64]struct{}{}
		}
		t.groups[ks] = st
	}
	for i, c := range t.spec.Sums {
		st.sums[i] += r[c]
	}
	st.count++
	for i, c := range t.spec.CountDistinct {
		st.distinct[i][r[c]] = struct{}{}
	}
}

// rows renders the groups as output rows in deterministic (sorted group
// key) order: group-by columns, SUMs, COUNT(*) if requested, then
// COUNT(DISTINCT) values.
func (t *aggTable) rows() []Row {
	out := make([]Row, 0, len(t.groups))
	for _, st := range t.groups {
		row := append(Row(nil), st.key...)
		row = append(row, st.sums...)
		if t.spec.CountAll {
			row = append(row, st.count)
		}
		for _, d := range st.distinct {
			row = append(row, int64(len(d)))
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return rowLess(out[i], out[j]) })
	return out
}

type hashAggOp struct {
	in   Iterator
	spec AggSpecExec
	out  []Row
	pos  int
}

// NewHashAgg returns a blocking hash aggregation. Output rows are the
// group-by columns followed by SUM values, COUNT(*) if requested, then
// COUNT(DISTINCT) values, in deterministic (sorted group key) order.
func NewHashAgg(in Iterator, spec AggSpecExec) Iterator {
	return &hashAggOp{in: in, spec: spec}
}

func (a *hashAggOp) Open() error {
	t := newAggTable(a.spec)
	if err := a.in.Open(); err != nil {
		return err
	}
	for {
		r, ok, err := a.in.Next()
		if err != nil {
			return errors.Join(err, a.in.Close())
		}
		if !ok {
			break
		}
		t.add(r)
	}
	if err := a.in.Close(); err != nil {
		return err
	}
	a.out = t.rows()
	a.pos = 0
	return nil
}

func (a *hashAggOp) Next() (Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}

func (a *hashAggOp) Close() error { a.out = nil; return nil }

// ---- vectorized hash aggregation ----

type vecHashAggOp struct {
	in    VecIterator
	spec  AggSpecExec
	out   [][]int64
	pos   int
	batch Batch
}

// NewVecHashAgg is the vectorized counterpart of NewHashAgg: it consumes
// its input batch-at-a-time and emits the aggregated groups as dense
// batches in the same deterministic order.
func NewVecHashAgg(in VecIterator, spec AggSpecExec) VecIterator {
	return &vecHashAggOp{in: in, spec: spec}
}

func (a *vecHashAggOp) Open() error {
	t := newAggTable(a.spec)
	if err := a.in.Open(); err != nil {
		return err
	}
	for {
		b, err := a.in.Next()
		if err != nil {
			return errors.Join(err, a.in.Close())
		}
		if b == nil {
			break
		}
		if b.Sel == nil {
			for _, r := range b.Rows {
				t.add(Row(r))
			}
		} else {
			for _, i := range b.Sel {
				t.add(Row(b.Rows[i]))
			}
		}
	}
	if err := a.in.Close(); err != nil {
		return err
	}
	rows := t.rows()
	a.out = make([][]int64, len(rows))
	for i, r := range rows {
		a.out[i] = r
	}
	a.pos = 0
	return nil
}

func (a *vecHashAggOp) Next() (*Batch, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	end := a.pos + BatchSize
	if end > len(a.out) {
		end = len(a.out)
	}
	a.batch = Batch{Rows: a.out[a.pos:end]}
	a.pos = end
	return &a.batch, nil
}

func (a *vecHashAggOp) Close() error { a.out = nil; return nil }

func keyString(r Row) string {
	b := make([]byte, 0, len(r)*8)
	for _, v := range r {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>uint(s)))
		}
	}
	return string(b)
}

func rowLess(a, b Row) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
