package exec

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSpillDirRedirectsPartitionFiles runs the forced-recursion join with the
// spill directory redirected away from the system default: the run must spill
// and still match the unbounded result, proving the redirected directory was
// actually used and usable. (Partition files are unlinked at creation, so an
// empty directory afterwards is the expected state, not an error.)
func TestSpillDirRedirectsPartitionFiles(t *testing.T) {
	build, probe := spillJoinInputs(65536, 512, 1000)
	want, _ := runTrackedJoin(t, build, probe, 0)

	dir := t.TempDir()
	j := NewVecHashJoin(NewVecScanRows(build, ScanFilter{}), NewVecScanRows(probe, ScanFilter{}),
		[]int{0}, []int{0}, nil, 1)
	tr := NewMemTracker(32 << 10)
	tr.SetSpillDir(dir)
	j.(*vecHashJoinOp).mem = tr.Child("hashjoin")
	got, err := DrainVec(j)
	if err != nil {
		t.Fatalf("join with redirected spill dir: %v", err)
	}
	if rowMultiset(got) != rowMultiset(want) {
		t.Fatalf("redirected spill join multiset differs: %d rows vs %d unbounded", len(got), len(want))
	}
	if parts, _, _ := tr.SpillStats(); parts == 0 {
		t.Fatal("join never spilled; the redirect was not exercised")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill files leaked into the redirected directory: %v", ents)
	}
}

// TestSpillDirErrorSurfacesAsQueryError points the spill directory at a path
// that cannot hold files: the first partition write must fail the query with
// an error — not a panic, not a hang — and the error must name the failure.
func TestSpillDirErrorSurfacesAsQueryError(t *testing.T) {
	build, probe := spillJoinInputs(65536, 512, 1000)
	bogus := filepath.Join(t.TempDir(), "does", "not", "exist")
	j := NewVecHashJoin(NewVecScanRows(build, ScanFilter{}), NewVecScanRows(probe, ScanFilter{}),
		[]int{0}, []int{0}, nil, 1)
	tr := NewMemTracker(32 << 10)
	tr.SetSpillDir(bogus)
	j.(*vecHashJoinOp).mem = tr.Child("hashjoin")
	_, err := DrainVec(j)
	if err == nil {
		t.Fatal("spilling into a nonexistent directory did not surface as a query error")
	}

	// The same failure must flow through the Compiler option: a budgeted
	// aggregation that has to dump partials hits the bad directory too.
	input := make([][]int64, 60000)
	for i := range input {
		input[i] = []int64{int64(i % 8000), int64(i % 4), int64(i % 100)}
	}
	a := NewVecHashAgg(NewVecScanRows(input, ScanFilter{}), AggSpecExec{GroupBy: []int{0, 1}, Sums: []int{2}})
	tr2 := NewMemTracker(128 << 10)
	tr2.SetSpillDir(bogus)
	a.(*vecHashAggOp).mem = tr2.Child("agg")
	if _, err := DrainVec(a); err == nil {
		t.Fatal("spilling aggregation into a nonexistent directory did not surface as a query error")
	}
}

// TestCompilerSpillDirPropagates: the Compiler.SpillDir option must land on
// the root memory tracker the operators consult.
func TestCompilerSpillDirPropagates(t *testing.T) {
	dir := t.TempDir()
	c := &Compiler{SpillDir: dir, MemBudgetBytes: 1 << 20}
	c.Mem = NewMemTracker(c.MemBudgetBytes)
	c.Mem.SetSpillDir(c.SpillDir)
	if got := c.Mem.Child("x").SpillDir(); got != dir {
		t.Fatalf("child tracker spill dir = %q, want %q", got, dir)
	}
}
