package exec

import (
	"math/rand"
	"sort"
	"testing"
)

// The keyString baseline: the pre-flat-table aggregation core, kept here as
// the benchmark comparator. It materializes a Row key and an 8-bytes-per-
// column string for every input row, plus a state struct per group — the
// allocations the flat open-addressing table eliminates.

type baselineAggState struct {
	key   Row
	sums  []int64
	count int64
}

type baselineAggTable struct {
	spec   AggSpecExec
	groups map[string]*baselineAggState
}

func (t *baselineAggTable) add(r Row) {
	key := make(Row, len(t.spec.GroupBy))
	for i, c := range t.spec.GroupBy {
		key[i] = r[c]
	}
	b := make([]byte, 0, len(key)*8)
	for _, v := range key {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>uint(s)))
		}
	}
	ks := string(b)
	st := t.groups[ks]
	if st == nil {
		st = &baselineAggState{key: key, sums: make([]int64, len(t.spec.Sums))}
		t.groups[ks] = st
	}
	for i, c := range t.spec.Sums {
		st.sums[i] += r[c]
	}
	st.count++
}

// aggBenchRows builds an aggregation-heavy input: 200k rows over a few
// hundred groups, the shape where per-row key allocation dominates.
func aggBenchRows() []Row {
	rng := rand.New(rand.NewSource(42))
	rows := make([]Row, 200000)
	for i := range rows {
		rows[i] = Row{int64(rng.Intn(25)), int64(rng.Intn(16)),
			int64(rng.Intn(1000)), int64(rng.Intn(1000))}
	}
	return rows
}

// TestAggTableMatchesKeyStringBaseline uses the retained baseline as an
// independent oracle for the flat table: the two implementations share no
// hashing or probing code, so a collision-handling or growth bug in the
// open-addressing table (which the row-vs-vec differential cannot see —
// both paths share the flat table) would surface here.
func TestAggTableMatchesKeyStringBaseline(t *testing.T) {
	rows := aggBenchRows()
	spec := AggSpecExec{GroupBy: []int{0, 1}, Sums: []int{2, 3}, CountAll: true}
	flat := newAggTable(spec)
	base := &baselineAggTable{spec: spec, groups: map[string]*baselineAggState{}}
	for _, r := range rows {
		flat.add(r)
		base.add(r)
	}
	got := flat.rows()
	if len(got) != len(base.groups) {
		t.Fatalf("flat table has %d groups, baseline %d", len(got), len(base.groups))
	}
	want := make([]Row, 0, len(base.groups))
	for _, st := range base.groups {
		row := append(append(Row(nil), st.key...), st.sums...)
		want = append(want, append(row, st.count))
	}
	sort.Slice(want, func(i, j int) bool { return rowLess(want[i], want[j]) })
	for i := range got {
		if rowLess(got[i], want[i]) || rowLess(want[i], got[i]) {
			t.Fatalf("group %d: flat %v, baseline %v", i, got[i], want[i])
		}
	}
}

// BenchmarkAggTable compares the flat open-addressing aggregation table
// against the keyString/map baseline it replaced. Run with -benchmem: the
// flat table's allocs/op stay near zero while the baseline allocates
// multiple objects per input row.
func BenchmarkAggTable(b *testing.B) {
	rows := aggBenchRows()
	spec := AggSpecExec{GroupBy: []int{0, 1}, Sums: []int{2, 3}, CountAll: true}
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := newAggTable(spec)
			for _, r := range rows {
				t.add(r)
			}
			if t.n == 0 {
				b.Fatal("no groups")
			}
		}
	})
	b.Run("keystring-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := &baselineAggTable{spec: spec, groups: map[string]*baselineAggState{}}
			for _, r := range rows {
				t.add(r)
			}
			if len(t.groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})
}
