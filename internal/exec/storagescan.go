package exec

import (
	"repro/internal/relalg"
	"repro/internal/storage"
)

// storageScanOp is the vectorized leaf behind PhySegScan: it pulls
// zero-copy column windows from a storage backend's segment iterator, which
// skips whole segments whose zone maps prove the pushed-down predicates
// unsatisfiable. The surviving windows still pass through the same
// ScanFilter kernels as a plain table scan — pruning only removes rows the
// filter would reject anyway, so the result multiset is identical.
type storageScanOp struct {
	store  storage.Backend
	preds  []storage.Pred
	filter ScanFilter
	it     *storage.SegIter
	batch  Batch
	sel    []int
	pruned int64
}

// newStorageScan builds the leaf. The pushed preds mirror filter.Conds so
// pruning and filtering agree on the predicate set.
func newStorageScan(store storage.Backend, preds []storage.Pred, filter ScanFilter) *storageScanOp {
	return &storageScanOp{store: store, preds: preds, filter: filter}
}

func (s *storageScanOp) Open() error {
	// The iterator pins one storage snapshot for the whole scan; appends
	// that land mid-query publish new snapshots and never disturb this one.
	s.it = s.store.Scan(s.preds, BatchSize)
	s.pruned = int64(s.it.PrunedRows())
	return nil
}

func (s *storageScanOp) Next() (*Batch, error) {
	for {
		cols, n, ok := s.it.Next()
		if !ok {
			return nil, nil
		}
		if cap(s.batch.Cols) < len(cols) {
			s.batch.Cols = make([][]int64, len(cols))
		}
		s.batch.Cols = s.batch.Cols[:len(cols)]
		copy(s.batch.Cols, cols)
		s.batch.N = n
		if len(s.filter.Conds) == 0 && len(s.filter.Preds) == 0 {
			s.batch.Sel = nil
			return &s.batch, nil
		}
		s.sel = s.filter.SelCols(s.batch.Cols, s.batch.N, s.sel)
		if len(s.sel) == 0 {
			continue
		}
		s.batch.Sel = s.sel
		return &s.batch, nil
	}
}

func (s *storageScanOp) Close() error {
	if s.it != nil {
		s.it.Release()
		s.it = nil
	}
	return nil
}

// storagePreds translates the compiled scan conditions into storage-layer
// pushdown predicates. The operator mapping is explicit so a reordering of
// either enum cannot silently flip comparison semantics.
func storagePreds(conds []ScanCond) []storage.Pred {
	if len(conds) == 0 {
		return nil
	}
	out := make([]storage.Pred, 0, len(conds))
	for _, cn := range conds {
		var op storage.CmpOp
		switch cn.Op {
		case relalg.CmpEQ:
			op = storage.CmpEQ
		case relalg.CmpNE:
			op = storage.CmpNE
		case relalg.CmpLT:
			op = storage.CmpLT
		case relalg.CmpLE:
			op = storage.CmpLE
		case relalg.CmpGT:
			op = storage.CmpGT
		case relalg.CmpGE:
			op = storage.CmpGE
		default:
			continue // unknown operator: not pushed, still filtered
		}
		out = append(out, storage.Pred{Col: cn.Off, Op: op, Val: cn.Val})
	}
	return out
}
