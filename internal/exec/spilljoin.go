package exec

// Grace-hash spill for the vectorized hash join. When the build-side drain
// exceeds its memory reservation, both inputs are partitioned to disk by the
// high bits of the join-key hash and the partitions are processed one at a
// time: each partition's build rows are loaded and hashed with the exact
// same joinTable + probe kernels as the in-memory path, and its probe run is
// streamed through the unchanged chain-walk state machine in
// vecHashJoinOp.Next. Matching rows share a key, hence a hash, hence a
// partition at every level, so every matching pair is emitted exactly once
// and the join's output multiset and cardinality counters are identical to
// the unbounded run.
//
// A partition whose build side still exceeds the reservation is recursively
// repartitioned one hash-bit window deeper; at maxSpillLevel (few distinct
// hash bits left — the skewed-key end state) the driver falls back to
// block-chunked processing: the build run is consumed in reservation-sized
// chunks and the probe run is re-read once per chunk. Each build row lives
// in exactly one chunk, so pairs are still emitted exactly once.

// spillPair is one pending (build, probe) partition at a recursion level.
type spillPair struct {
	build, probe *spillRun
	level        int
}

// spillJoin drives partition-at-a-time probing for a spilled vecHashJoinOp.
type spillJoin struct {
	mem     *MemTracker
	workers int
	lKeys   []int
	rKeys   []int

	work []spillPair // LIFO: recursive sub-partitions are processed first

	cur     spillPair // partition currently being probed
	probeRd *spillRunReader
	charged int64 // bytes reserved for the loaded build table

	// chunk fallback state (cur.level == maxSpillLevel and still too big)
	chunkMode bool
	buildRd   *spillRunReader // sequential chunk source over cur.build
}

// spillBuildBytes is the reservation needed to load and hash n build rows.
func spillBuildBytes(width, n int) int64 {
	return colBytes(width, n) + joinTableBytes(n)
}

// releaseTable drops the charge of the partition table being left behind.
func (s *spillJoin) releaseTable() {
	s.mem.Release(s.charged)
	s.charged = 0
}

// nextBatch returns the next probe batch for the current partition table,
// transparently advancing across partitions, recursive repartitions and
// build chunks. It installs the partition's table into j.table before
// returning batches; nil means the spilled join is fully drained.
func (j *vecHashJoinOp) spillNextBatch() (*Batch, error) {
	s := j.spill
	for {
		if s.probeRd != nil {
			b, err := s.probeRd.next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
			// Probe run exhausted for the current table.
			s.probeRd = nil
			if s.chunkMode {
				ok, err := s.loadChunk(j)
				if err != nil {
					return nil, err
				}
				if ok {
					continue
				}
				// Build run exhausted: partition done.
				s.chunkMode = false
				s.buildRd = nil
			} else {
				s.releaseTable()
			}
			j.table = nil
			s.cur.build.close()
			s.cur.probe.close()
		}
		ok, err := s.advance(j)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}
}

// advance pops work until a partition's table is installed (possibly after
// recursive repartitioning or entering chunk mode); false means no work
// remains.
func (s *spillJoin) advance(j *vecHashJoinOp) (bool, error) {
	for len(s.work) > 0 {
		it := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		if it.build.rows == 0 || it.probe.rows == 0 {
			it.build.close()
			it.probe.close()
			continue
		}
		need := spillBuildBytes(it.build.width, it.build.rows)
		if s.mem.Reserve(need) {
			data, err := readRunAll(it.build)
			if err != nil {
				s.mem.Release(need)
				it.build.close()
				it.probe.close()
				return false, err
			}
			j.table = newJoinTable(data, s.lKeys, s.workers)
			s.charged = need
			rd, err := it.probe.reader()
			if err != nil {
				s.releaseTable()
				j.table = nil
				it.build.close()
				it.probe.close()
				return false, err
			}
			s.cur, s.probeRd = it, rd
			return true, nil
		}
		if it.level < maxSpillLevel {
			// Recursive repartition: split both runs one bit window deeper.
			s.mem.noteSpillRecursion()
			bsub, err := repartitionRun(it.build, s.lKeys, it.level+1, s.mem)
			if err == nil {
				var psub []*spillRun
				psub, err = repartitionRun(it.probe, s.rKeys, it.level+1, s.mem)
				if err != nil {
					for _, r := range bsub {
						r.close()
					}
				} else {
					for p := range bsub {
						s.work = append(s.work, spillPair{build: bsub[p], probe: psub[p], level: it.level + 1})
					}
				}
			}
			it.build.close()
			it.probe.close()
			if err != nil {
				return false, err
			}
			continue
		}
		// Chunk fallback: consume the build run in reservation-sized chunks,
		// re-reading the probe run once per chunk.
		rd, err := it.build.reader()
		if err != nil {
			it.build.close()
			it.probe.close()
			return false, err
		}
		s.cur = it
		s.chunkMode = true
		s.buildRd = rd
		ok, err := s.loadChunk(j)
		if err != nil {
			return false, err
		}
		if !ok {
			// Empty build run (cannot happen past the rows check, but keep
			// the state machine honest).
			s.chunkMode = false
			s.buildRd = nil
			it.build.close()
			it.probe.close()
			continue
		}
		return true, nil
	}
	return false, nil
}

// loadChunk reads the next build chunk off s.buildRd, builds its table and
// rewinds the probe run; false means the build run is exhausted. The chunk
// is sized to the remaining budget (at least one batch — Force-charged if
// even that does not fit, recording overage rather than deadlocking).
func (s *spillJoin) loadChunk(j *vecHashJoinOp) (bool, error) {
	s.releaseTable()
	width := s.cur.build.width
	// Per-row cost upper bound: 8 bytes per column plus at most 28 bytes of
	// join-table overhead (head slots round up to 4n ints worst case, next
	// links and hashes are 12). One reader-batch of slack is left below the
	// budget because chunk accumulation only checks the target between
	// batches.
	rowCost := int64(width*8) + 28
	target := BatchSize
	if lim := s.mem.Limit(); lim > 0 {
		if fit := (lim-s.mem.rootUsed())/rowCost - BatchSize; fit > int64(target) {
			target = int(fit)
		}
	}
	data := newColData(width, 0)
	for data.n < target {
		b, err := s.buildRd.next()
		if err != nil {
			return false, err
		}
		if b == nil {
			break
		}
		data.appendBatch(b)
	}
	if data.n == 0 {
		return false, nil
	}
	need := spillBuildBytes(width, data.n)
	if !s.mem.Reserve(need) {
		s.mem.Force(need)
	}
	s.charged = need
	j.table = newJoinTable(data, s.lKeys, s.workers)
	rd, err := s.cur.probe.reader()
	if err != nil {
		return false, err
	}
	s.probeRd = rd
	return true, nil
}

// closeAll releases whatever the spilled join still holds.
func (s *spillJoin) closeAll() {
	if s == nil {
		return
	}
	s.releaseTable()
	if s.probeRd != nil || s.chunkMode {
		s.cur.build.close()
		s.cur.probe.close()
		s.probeRd = nil
		s.chunkMode = false
		s.buildRd = nil
	}
	for _, it := range s.work {
		it.build.close()
		it.probe.close()
	}
	s.work = nil
}

// openSpill finishes a budget-overflowing build: the rows drained so far
// plus the rest of the build input are partitioned to disk, then the entire
// probe input is partitioned by the same hash windows. Called from
// vecHashJoinOp.Open with the build input already open.
func (j *vecHashJoinOp) openSpill(sofar colData, pending *Batch, charged int64) error {
	s := &spillJoin{mem: j.mem, workers: j.workers, lKeys: j.lKeys, rKeys: j.rKeys}
	// The very first batch can already overflow a tiny budget, leaving the
	// drained prefix empty; the build width then comes from the batch.
	bWidth := sofar.width()
	if bWidth == 0 && pending != nil {
		bWidth = pending.Width()
	}
	bp, err := newSpillPartitioner(j.mem, bWidth, j.lKeys, 0)
	if err != nil {
		return err
	}
	// Route the already-drained prefix chunk-wise, then release its memory.
	for lo := 0; lo < sofar.n; lo += BatchSize {
		hi := lo + BatchSize
		if hi > sofar.n {
			hi = sofar.n
		}
		var w [][]int64
		w = sofar.window(w, lo, hi)
		if err := bp.add(w, hi-lo, nil); err != nil {
			bp.abort()
			return err
		}
	}
	j.mem.Release(charged)
	if pending != nil {
		if err := bp.add(pending.Cols, pending.N, pending.Sel); err != nil {
			bp.abort()
			return err
		}
	}
	for {
		b, err := j.left.Next()
		if err != nil {
			bp.abort()
			return err
		}
		if b == nil {
			break
		}
		if err := bp.add(b.Cols, b.N, b.Sel); err != nil {
			bp.abort()
			return err
		}
	}
	if err := j.left.Close(); err != nil {
		bp.abort()
		return err
	}
	bruns, err := bp.finish(j.mem)
	if err != nil {
		return err
	}
	closeRuns := func(runs []*spillRun) {
		for _, r := range runs {
			r.close()
		}
	}
	// Partition the probe side by the same level-0 hash windows.
	pWidth := -1
	var pp *spillPartitioner
	for {
		b, err := j.right.Next()
		if err != nil {
			if pp != nil {
				pp.abort()
			}
			closeRuns(bruns)
			return err
		}
		if b == nil {
			break
		}
		if pp == nil {
			pWidth = b.Width()
			if pp, err = newSpillPartitioner(j.mem, pWidth, j.rKeys, 0); err != nil {
				closeRuns(bruns)
				return err
			}
		}
		if err := pp.add(b.Cols, b.N, b.Sel); err != nil {
			pp.abort()
			closeRuns(bruns)
			return err
		}
	}
	if pp == nil {
		// Empty probe input: no partitions, the join is empty.
		closeRuns(bruns)
		j.spill = s
		return nil
	}
	pruns, err := pp.finish(j.mem)
	if err != nil {
		closeRuns(bruns)
		return err
	}
	for p := range bruns {
		s.work = append(s.work, spillPair{build: bruns[p], probe: pruns[p], level: 0})
	}
	j.spill = s
	return nil
}
