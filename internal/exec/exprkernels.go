package exec

import "sort"

// Typed expression kernels over contiguous column slices, dispatched once
// per batch. Gather is the workhorse of join result stitching and the sort
// operator; the arithmetic, min/max and CASE kernels are the building
// blocks for computed projections (derived measures, conditional
// aggregation inputs) so those grow column-at-a-time instead of row-by-row.
// All kernels are allocation-free: the caller owns dst and sizes it.

// Gather copies src values through an index vector: dst[k] = src[idx[k]]
// for k < len(idx). dst must have length >= len(idx).
func Gather(dst, src []int64, idx []int32) {
	_ = dst[:len(idx)]
	for k, i := range idx {
		dst[k] = src[i]
	}
}

// AddCols computes dst[i] = a[i] + b[i] over len(dst) elements.
func AddCols(dst, a, b []int64) {
	_, _ = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// SubCols computes dst[i] = a[i] - b[i] over len(dst) elements.
func SubCols(dst, a, b []int64) {
	_, _ = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// MulCols computes dst[i] = a[i] * b[i] over len(dst) elements.
func MulCols(dst, a, b []int64) {
	_, _ = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// AddConst computes dst[i] = a[i] + c over len(dst) elements.
func AddConst(dst, a []int64, c int64) {
	_ = a[:len(dst)]
	for i := range dst {
		dst[i] = a[i] + c
	}
}

// MinCol returns the minimum of the live values of col (all n when sel is
// nil, the selected indices otherwise); ok=false on an empty selection.
func MinCol(col []int64, n int, sel []int) (min int64, ok bool) {
	if sel == nil {
		if n == 0 {
			return 0, false
		}
		min = col[0]
		for _, v := range col[1:n] {
			if v < min {
				min = v
			}
		}
		return min, true
	}
	if len(sel) == 0 {
		return 0, false
	}
	min = col[sel[0]]
	for _, i := range sel[1:] {
		if v := col[i]; v < min {
			min = v
		}
	}
	return min, true
}

// MaxCol returns the maximum of the live values of col; ok=false on an
// empty selection.
func MaxCol(col []int64, n int, sel []int) (max int64, ok bool) {
	if sel == nil {
		if n == 0 {
			return 0, false
		}
		max = col[0]
		for _, v := range col[1:n] {
			if v > max {
				max = v
			}
		}
		return max, true
	}
	if len(sel) == 0 {
		return 0, false
	}
	max = col[sel[0]]
	for _, i := range sel[1:] {
		if v := col[i]; v > max {
			max = v
		}
	}
	return max, true
}

// CaseSelect is the CASE-style conditional select: dst[i] = a[i] when
// cond[i] != 0, else b[i], over len(dst) elements — a branch-free merge of
// two candidate columns under a boolean column.
func CaseSelect(dst, cond, a, b []int64) {
	_, _, _ = cond[:len(dst)], a[:len(dst)], b[:len(dst)]
	for i := range dst {
		c := cond[i]
		av, bv := a[i], b[i]
		if c != 0 {
			dst[i] = av
		} else {
			dst[i] = bv
		}
	}
}

// stableSortPerm stable-sorts a row-index permutation by key[perm[i]] — the
// comparison side of the sort operator; every data column is then moved
// once with Gather.
func stableSortPerm(perm []int32, key []int64) {
	sort.SliceStable(perm, func(i, j int) bool { return key[perm[i]] < key[perm[j]] })
}
