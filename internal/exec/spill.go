package exec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// This file holds the grace-hash spill substrate shared by the hash join and
// hash aggregation: columnar run files on disk, chunk-framed so they stream
// back as regular batches, plus the hash partitioner that routes batches to
// runs by the HIGH bits of the existing vectorized key hash. Bucket and slot
// selection in joinTable and aggTable use the LOW bits (h & mask), so rows
// within one partition still hash uniformly across a partition-local table.
//
// Run format: a sequence of chunks, each [n uint32][col0 n×int64]...[colW-1
// n×int64], little-endian. Chunks carry at most BatchSize rows, so readers
// hand out standard recycled batches. Files are created with os.CreateTemp
// and unlinked immediately; the OS reclaims them when the fd closes, even on
// a crash.
//
// Partitioning uses spillBits bits per level starting from the top of the
// 64-bit hash: level 0 routes on bits 61..63, level 1 on 58..60, and so on.
// Equal keys have equal hashes, so matching join rows and mergeable
// aggregation partials land in the same partition at every level. A
// partition that still exceeds its reservation at maxSpillLevel stops
// recursing (the skewed-key end state: few distinct hash values left) and
// is handled by the operators' block-chunked fallbacks.

const (
	spillBits     = 3
	spillFanout   = 1 << spillBits
	maxSpillLevel = 6
)

// spillPart returns the partition of hash h at a recursion level, reading a
// disjoint bit window per level.
func spillPart(h uint64, level int) int {
	return int(h>>(64-spillBits*(level+1))) & (spillFanout - 1)
}

// spillWriter appends chunks to one partition run file.
type spillWriter struct {
	f       *os.File
	w       *bufio.Writer
	width   int
	rows    int
	bytes   int64
	scratch []byte
}

func newSpillWriter(dir string, width int) (*spillWriter, error) {
	f, err := os.CreateTemp(dir, "repro-spill-*")
	if err != nil {
		return nil, fmt.Errorf("exec: spill: %w", err)
	}
	// Unlink immediately: the run lives exactly as long as its fd.
	os.Remove(f.Name())
	return &spillWriter{f: f, w: bufio.NewWriterSize(f, 1<<14), width: width}, nil
}

// writeChunk appends the live rows of a column-major chunk as one framed
// chunk. The rows are gathered through sel into a reused scratch encode
// buffer, so callers may hand zero-copy column windows.
func (w *spillWriter) writeChunk(cols [][]int64, n int, sel []int) error {
	m := n
	if sel != nil {
		m = len(sel)
	}
	if m == 0 {
		return nil
	}
	need := 4 + m*w.width*8
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	buf := w.scratch[:need]
	binary.LittleEndian.PutUint32(buf, uint32(m))
	off := 4
	for c := 0; c < w.width; c++ {
		col := cols[c]
		if sel == nil {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(buf[off:], uint64(col[i]))
				off += 8
			}
		} else {
			for _, i := range sel {
				binary.LittleEndian.PutUint64(buf[off:], uint64(col[i]))
				off += 8
			}
		}
	}
	w.rows += m
	w.bytes += int64(need)
	if _, err := w.w.Write(buf); err != nil {
		return fmt.Errorf("exec: spill write: %w", err)
	}
	return nil
}

// run flushes the writer and returns the finished, readable run.
func (w *spillWriter) run() (*spillRun, error) {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return nil, fmt.Errorf("exec: spill flush: %w", err)
	}
	return &spillRun{f: w.f, width: w.width, rows: w.rows, bytes: w.bytes}, nil
}

// spillRun is a finished partition run file; it can be read back any number
// of times (the chunk-fallback re-reads the probe run per build chunk).
type spillRun struct {
	f     *os.File
	width int
	rows  int
	bytes int64
}

func (r *spillRun) close() {
	if r != nil && r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// reader rewinds the run and returns a chunk reader over it.
func (r *spillRun) reader() (*spillRunReader, error) {
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("exec: spill seek: %w", err)
	}
	return &spillRunReader{r: bufio.NewReaderSize(r.f, 1<<14), width: r.width}, nil
}

// spillRunReader streams a run back as recycled column-major batches —
// the standard producer contract: the batch and its columns are reused on
// the next call.
type spillRunReader struct {
	r     *bufio.Reader
	width int
	buf   []byte
	flat  []int64
	batch Batch
}

// next returns the next chunk as a batch, or nil at end of run.
func (r *spillRunReader) next() (*Batch, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("exec: spill read: %w", err)
	}
	m := int(binary.LittleEndian.Uint32(hdr[:]))
	need := m * r.width * 8
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	if _, err := io.ReadFull(r.r, r.buf[:need]); err != nil {
		return nil, fmt.Errorf("exec: spill read: %w", err)
	}
	if cap(r.flat) < m*r.width {
		r.flat = make([]int64, m*r.width)
	}
	if r.batch.Cols == nil {
		r.batch.Cols = make([][]int64, r.width)
	}
	off := 0
	for c := 0; c < r.width; c++ {
		col := r.flat[c*m : (c+1)*m : (c+1)*m]
		for i := range col {
			col[i] = int64(binary.LittleEndian.Uint64(r.buf[off:]))
			off += 8
		}
		r.batch.Cols[c] = col
	}
	r.batch.N = m
	r.batch.Sel = nil
	return &r.batch, nil
}

// spillPartitioner fans incoming batches out to spillFanout partition runs
// by the level's hash-bit window over the key columns.
type spillPartitioner struct {
	level int
	keys  []int
	parts [spillFanout]*spillWriter
	sels  [spillFanout][]int
	hs    []uint64
}

// newSpillPartitioner creates the fanout writers in the tracker's spill
// directory (nil tracker or unset directory = system temp).
func newSpillPartitioner(tr *MemTracker, width int, keys []int, level int) (*spillPartitioner, error) {
	s := &spillPartitioner{level: level, keys: keys}
	dir := tr.SpillDir()
	for p := range s.parts {
		w, err := newSpillWriter(dir, width)
		if err != nil {
			s.abort()
			return nil, err
		}
		s.parts[p] = w
	}
	return s, nil
}

// add routes the live rows of a column-major chunk to their partitions.
func (s *spillPartitioner) add(cols [][]int64, n int, sel []int) error {
	s.hs = hashLive(s.hs, cols, s.keys, n, sel)
	for p := range s.sels {
		s.sels[p] = s.sels[p][:0]
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			p := spillPart(s.hs[i], s.level)
			s.sels[p] = append(s.sels[p], i)
		}
	} else {
		for k, i := range sel {
			p := spillPart(s.hs[k], s.level)
			s.sels[p] = append(s.sels[p], i)
		}
	}
	for p, w := range s.parts {
		if len(s.sels[p]) == 0 {
			continue
		}
		if err := w.writeChunk(cols, n, s.sels[p]); err != nil {
			return err
		}
	}
	return nil
}

// finish flushes every partition and returns the runs (empty partitions
// included — callers skip zero-row runs), recording each non-empty run in
// the tracker's spill counters.
func (s *spillPartitioner) finish(tr *MemTracker) ([]*spillRun, error) {
	runs := make([]*spillRun, spillFanout)
	for p, w := range s.parts {
		r, err := w.run()
		if err != nil {
			for _, done := range runs {
				done.close()
			}
			for _, rest := range s.parts[p+1:] {
				rest.f.Close()
			}
			return nil, err
		}
		runs[p] = r
		if r.rows > 0 {
			tr.noteSpillPartition(r.bytes)
		}
	}
	return runs, nil
}

// abort closes every partition writer without producing runs.
func (s *spillPartitioner) abort() {
	for _, w := range s.parts {
		if w != nil {
			w.f.Close()
		}
	}
}

// repartitionRun re-reads a run and splits it one level deeper — the
// recursive repartitioning step for skewed partitions.
func repartitionRun(r *spillRun, keys []int, level int, tr *MemTracker) ([]*spillRun, error) {
	part, err := newSpillPartitioner(tr, r.width, keys, level)
	if err != nil {
		return nil, err
	}
	rd, err := r.reader()
	if err != nil {
		part.abort()
		return nil, err
	}
	for {
		b, err := rd.next()
		if err != nil {
			part.abort()
			return nil, err
		}
		if b == nil {
			break
		}
		if err := part.add(b.Cols, b.N, b.Sel); err != nil {
			part.abort()
			return nil, err
		}
	}
	return part.finish(tr)
}

// readRunAll materializes a whole run column-major — the per-partition build
// load, charged by the caller before calling.
func readRunAll(r *spillRun) (colData, error) {
	rd, err := r.reader()
	if err != nil {
		return colData{}, err
	}
	out := newColData(r.width, r.rows)
	for {
		b, err := rd.next()
		if err != nil {
			return out, err
		}
		if b == nil {
			return out, nil
		}
		out.appendBatch(b)
	}
}
