package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// ---- vectorized operator unit tests ----

func TestVecScanBatchesAndSelection(t *testing.T) {
	n := 3*BatchSize + 17
	data := make([][]int64, n)
	for i := range data {
		data[i] = []int64{int64(i), int64(i % 2)}
	}
	v := NewVecScanRows(data, ScanFilter{Preds: []PredFn{func(r Row) bool { return r[1] == 0 }}})
	if err := v.Open(); err != nil {
		t.Fatal(err)
	}
	var total, batches int
	for {
		b, err := v.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		if b.N > BatchSize {
			t.Fatalf("batch of %d rows exceeds capacity %d", b.N, BatchSize)
		}
		for k := 0; k < b.Len(); k++ {
			idx := k
			if b.Sel != nil {
				idx = b.Sel[k]
			}
			if b.Cols[1][idx] != 0 {
				t.Fatalf("selection vector leaked filtered row %d", b.Cols[0][idx])
			}
		}
		total += b.Len()
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if want := (n + 1) / 2; total != want {
		t.Fatalf("selected %d rows, want %d", total, want)
	}
	if batches != 4 {
		t.Fatalf("got %d batches, want 4", batches)
	}
}

func TestParallelScanMatchesSerial(t *testing.T) {
	n := 10*morselSize + 123
	data := make([][]int64, n)
	for i := range data {
		data[i] = []int64{int64(i), int64(i % 7)}
	}
	filter := ScanFilter{Conds: []ScanCond{{Off: 1, Op: relalg.CmpLT, Val: 3}}}
	serial, err := DrainVec(NewVecScanRows(data, filter))
	if err != nil {
		t.Fatal(err)
	}
	cols := transposeRows(data, 2)
	for _, workers := range []int{2, 4, 13} {
		par, err := DrainVec(NewParallelScan(cols.cols, cols.n, filter, workers))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rowMultiset(par), rowMultiset(serial); got != want {
			t.Fatalf("workers=%d: parallel scan multiset differs from serial", workers)
		}
	}
}

func TestParallelScanEarlyClose(t *testing.T) {
	data := make([][]int64, 50*morselSize)
	for i := range data {
		data[i] = []int64{int64(i)}
	}
	cols := transposeRows(data, 1)
	v := NewParallelScan(cols.cols, cols.n, ScanFilter{}, 4)
	if err := v.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Next(); err != nil {
		t.Fatal(err)
	}
	// Close with most batches unconsumed: workers must unblock and exit.
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

func TestVecHashJoinSpansBatches(t *testing.T) {
	// Every probe row matches every build row: 60 * 60 = 3600 outputs,
	// forcing multiple output batch flushes.
	build := make([][]int64, 60)
	probe := make([][]int64, 60)
	for i := range build {
		build[i] = []int64{1, int64(i)}
		probe[i] = []int64{1, int64(100 + i)}
	}
	v := NewVecHashJoin(NewVecScanRows(build, ScanFilter{}), NewVecScanRows(probe, ScanFilter{}), []int{0}, []int{0}, nil, 1)
	out, err := DrainVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3600 {
		t.Fatalf("got %d join rows, want 3600", len(out))
	}
	for _, r := range out {
		if len(r) != 4 || r[0] != 1 || r[2] != 1 {
			t.Fatalf("bad join row %v", r)
		}
	}
}

func TestVecRowShimRoundTrip(t *testing.T) {
	data := rows([]int64{3, 0}, []int64{1, 1}, []int64{2, 2})
	it := NewRowIterator(NewVecSort(NewVecScanRows(data, ScanFilter{}), 0))
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0][0] != 1 || out[1][0] != 2 || out[2][0] != 3 {
		t.Fatalf("shim output = %v", out)
	}
}

func TestVecProject(t *testing.T) {
	out, err := DrainVec(NewVecProject(NewVecScanRows(rows([]int64{1, 2, 3}), ScanFilter{}), []int{2, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0] != 3 || out[0][1] != 1 {
		t.Fatalf("vec project = %v", out)
	}
}

// ---- error-path tests ----

type failingIter struct{ closeErr error }

func (f *failingIter) Open() error              { return nil }
func (f *failingIter) Next() (Row, bool, error) { return nil, false, errors.New("next failed") }
func (f *failingIter) Close() error             { return f.closeErr }

func TestDrainJoinsCloseError(t *testing.T) {
	closeErr := errors.New("close failed")
	_, err := Drain(&failingIter{closeErr: closeErr})
	if err == nil || !strings.Contains(err.Error(), "next failed") {
		t.Fatalf("Drain error = %v, want next error", err)
	}
	if !errors.Is(err, closeErr) {
		t.Fatalf("Drain error %v does not join the Close error", err)
	}
	if _, err := Count(&failingIter{closeErr: closeErr}); !errors.Is(err, closeErr) {
		t.Fatalf("Count error %v does not join the Close error", err)
	}
}

// TestVecHashJoinOpenErrorReleasesProbe: when draining the build side fails
// (unsorted merge join below), the already-opened probe side — including
// parallel scan workers — must be released rather than leaked.
func TestVecHashJoinOpenErrorReleasesProbe(t *testing.T) {
	probeData := make([][]int64, 8*morselSize)
	for i := range probeData {
		probeData[i] = []int64{int64(i)}
	}
	unsorted := rows([]int64{2}, []int64{1})
	sorted := rows([]int64{1})
	build := NewVecMergeJoin(NewVecScanRows(unsorted, ScanFilter{}), NewVecScanRows(sorted, ScanFilter{}), 0, 0, nil)
	before := runtime.NumGoroutine()
	probeCols := transposeRows(probeData, 1)
	j := NewVecHashJoin(build, NewParallelScan(probeCols.cols, probeCols.n, ScanFilter{}, 4), []int{0}, []int{0}, nil, 1)
	if err := j.Open(); err == nil {
		t.Fatal("unsorted build input accepted")
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("probe-side workers leaked: %d goroutines, started with %d",
		runtime.NumGoroutine(), before)
}

// ---- differential test: row shim vs vectorized path, TPC-H workload ----

func rowMultiset(rows []Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			fmt.Fprintf(&b, "|%d", v)
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestTPCHRowVecDifferential executes every TPC-H workload query through
// the legacy row-at-a-time interpreter and the vectorized path at every
// parallelism level (serial, and with fused parallel pipelines plus
// morsel-driven scans at 2 and 4 workers), asserting identical result
// multisets and identical RunStats feedback cardinalities — the proof that
// the §5.4 adaptive loop sees byte-identical feedback at any parallelism.
// Run under -race (the CI race shard) this also exercises the pipeline
// workers, partitioned build, and exchange machinery for data races.
func TestTPCHRowVecDifferential(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	for name, q := range tpch.Queries() {
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vr, err := volcano.Optimize(m, relalg.DefaultSpace())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		rowComp := &Compiler{Q: q, Cat: cat}
		it, rowStats, err := rowComp.CompileRow(vr.Plan)
		if err != nil {
			t.Fatalf("%s: compile row: %v", name, err)
		}
		rowRows, err := Drain(it)
		if err != nil {
			t.Fatalf("%s: row path: %v", name, err)
		}
		want := rowMultiset(rowRows)

		for _, par := range []int{1, 2, 4} {
			vecComp := &Compiler{Q: q, Cat: cat, Parallelism: par}
			v, vecStats, err := vecComp.CompileVec(vr.Plan)
			if err != nil {
				t.Fatalf("%s: compile vec: %v", name, err)
			}
			vecRows, err := DrainVec(v)
			if err != nil {
				t.Fatalf("%s: vec path (par=%d): %v", name, par, err)
			}
			if got := rowMultiset(vecRows); got != want {
				t.Fatalf("%s (par=%d): result multiset differs: %d vec rows vs %d row rows",
					name, par, len(vecRows), len(rowRows))
			}
			if len(vecStats.Cards) != len(rowStats.Cards) {
				t.Fatalf("%s (par=%d): stats cover %d exprs, row path %d",
					name, par, len(vecStats.Cards), len(rowStats.Cards))
			}
			for set, n := range rowStats.Cards {
				got, ok := vecStats.Card(set)
				if !ok || got != *n {
					t.Fatalf("%s (par=%d): cardinality of %v = %d, row path %d",
						name, par, set, got, *n)
				}
			}
		}
	}
}

// TestCompileParallelCountMatches runs an aggregate query end to end via
// Count under parallel scans — the aqp.RunSlice code path.
func TestCompileParallelCountMatches(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 11})
	q := tpch.Q3S()
	m, _ := cost.NewModel(q, cat, cost.DefaultParams())
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	comp := &Compiler{Q: q, Cat: cat}
	it, _, err := comp.CompileRow(vr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Count(it)
	if err != nil {
		t.Fatal(err)
	}
	parComp := &Compiler{Q: q, Cat: cat, Parallelism: 4}
	v, _, err := parComp.CompileVec(vr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parallel count = %d, row count = %d", got, want)
	}
}
