package exec

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/volcano"

	"repro/internal/catalog"
)

// ---- operator unit tests ----

func rows(vals ...[]int64) [][]int64 { return vals }

func TestScanWithPredicates(t *testing.T) {
	data := rows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	it := NewScan(data, []PredFn{func(r Row) bool { return r[1] >= 20 }})
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0][0] != 2 || out[1][0] != 3 {
		t.Fatalf("scan output = %v", out)
	}
}

func TestHashJoinCompoundKeys(t *testing.T) {
	l := NewScan(rows([]int64{1, 5}, []int64{1, 6}, []int64{2, 5}), nil)
	r := NewScan(rows([]int64{1, 5, 100}, []int64{2, 6, 200}), nil)
	it := NewHashJoin(l, r, []int{0, 1}, []int{0, 1}, 2, nil)
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][2] != 1 || out[0][4] != 100 {
		t.Fatalf("compound-key join = %v", out)
	}
}

func TestMergeJoinRequiresSortedInputs(t *testing.T) {
	l := NewScan(rows([]int64{2}, []int64{1}), nil) // unsorted
	r := NewScan(rows([]int64{1}), nil)
	it := NewMergeJoin(l, r, 0, 0, nil)
	if err := it.Open(); err == nil {
		t.Fatal("unsorted merge input accepted")
	}
}

func TestMergeJoinDuplicateGroups(t *testing.T) {
	l := NewScan(rows([]int64{1, 1}, []int64{1, 2}, []int64{3, 3}), nil)
	r := NewScan(rows([]int64{1, 10}, []int64{1, 20}, []int64{2, 30}), nil)
	it := NewMergeJoin(l, r, 0, 0, nil)
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 { // 2x2 cross within key group 1
		t.Fatalf("merge join output = %v", out)
	}
}

func TestIndexNLJoin(t *testing.T) {
	inner := rows([]int64{1, 100}, []int64{2, 200}, []int64{2, 201})
	idx := BuildIndex(inner, 0, nil)
	outer := NewScan(rows([]int64{2, 9}, []int64{5, 9}), nil)
	it := NewIndexNLJoin(outer, idx, 0, 2, nil)
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0][1] != 200 || out[1][1] != 201 {
		t.Fatalf("index NL output = %v", out)
	}
}

func TestSortStable(t *testing.T) {
	it := NewSort(NewScan(rows([]int64{3, 0}, []int64{1, 1}, []int64{3, 2}, []int64{2, 3}), nil), 0)
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 3}
	for i, r := range out {
		if r[0] != want[i] {
			t.Fatalf("sort output = %v", out)
		}
	}
	if out[2][1] != 0 || out[3][1] != 2 {
		t.Fatal("sort not stable")
	}
}

func TestHashAgg(t *testing.T) {
	data := rows(
		[]int64{1, 10, 5}, []int64{1, 20, 5}, []int64{2, 30, 7}, []int64{1, 5, 6},
	)
	it := NewHashAgg(NewScan(data, nil), AggSpecExec{
		GroupBy: []int{0}, Sums: []int{1}, CountAll: true, CountDistinct: []int{2},
	})
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	// groups sorted: (1, sum 35, count 3, 2 distinct), (2, 30, 1, 1)
	if len(out) != 2 ||
		out[0][0] != 1 || out[0][1] != 35 || out[0][2] != 3 || out[0][3] != 2 ||
		out[1][0] != 2 || out[1][1] != 30 || out[1][2] != 1 || out[1][3] != 1 {
		t.Fatalf("agg output = %v", out)
	}
}

func TestCounter(t *testing.T) {
	var n int64
	it := NewCounter(NewScan(rows([]int64{1}, []int64{2}), nil), &n)
	if _, err := Count(it); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("counter = %d", n)
	}
}

func TestProject(t *testing.T) {
	it := NewProject(NewScan(rows([]int64{1, 2, 3}), nil), []int{2, 0})
	out, _ := Drain(it)
	if len(out) != 1 || out[0][0] != 3 || out[0][1] != 1 {
		t.Fatalf("project = %v", out)
	}
}

// ---- end-to-end cross-plan equivalence ----

// tinyCatalog builds small tables with data for execution tests.
func tinyCatalog(seed uint64, nTables, rowsPer int) *catalog.Catalog {
	r := stats.NewRand(seed)
	cat := catalog.New()
	for i := 0; i < nTables; i++ {
		name := string(rune('t' + 0)) // "t"
		_ = name
		tb := catalog.NewTable(tableName(i), "c0", "c1", "c2", "c3")
		n := 1 + r.Intn(rowsPer)
		for j := 0; j < n; j++ {
			tb.Append([]int64{r.Int64n(8), r.Int64n(8), r.Int64n(8), r.Int64n(8)})
		}
		for c := 0; c < 4; c++ {
			if r.Intn(2) == 0 {
				tb.AddIndex(tb.ColNames[c])
			}
		}
		cat.Add(tb)
	}
	cat.AnalyzeAll(8)
	return cat
}

func tableName(i int) string { return "T" + string(rune('0'+i)) }

// randomExecQuery builds a small random join query over the tiny catalog.
func randomExecQuery(r *stats.Rand, cat *catalog.Catalog, nRels int) *relalg.Query {
	q := &relalg.Query{Name: "exec"}
	names := cat.Names()
	for i := 0; i < nRels; i++ {
		q.Rels = append(q.Rels, relalg.RelRef{
			Alias: "R" + string(rune('0'+i)), Table: names[r.Intn(len(names))],
		})
	}
	for i := 1; i < nRels; i++ {
		j := r.Intn(i)
		q.Joins = append(q.Joins, relalg.JoinPred{
			L: relalg.ColID{Rel: j, Off: r.Intn(4)},
			R: relalg.ColID{Rel: i, Off: r.Intn(4)},
		})
	}
	if r.Intn(2) == 0 {
		q.Scans = append(q.Scans, relalg.ScanPred{
			Col: relalg.ColID{Rel: r.Intn(nRels), Off: r.Intn(4)},
			Op:  relalg.CmpLE, Val: r.Int64n(8),
		})
	}
	if err := q.Validate(); err != nil {
		panic(err)
	}
	return q
}

// bruteForceJoin computes the query result with nested loops directly from
// the data — the executor oracle.
func bruteForceJoin(q *relalg.Query, cat *catalog.Catalog) []Row {
	var out []Row
	var rec func(i int, acc []Row)
	tables := make([][][]int64, len(q.Rels))
	offsets := make([]int, len(q.Rels))
	off := 0
	for i, rr := range q.Rels {
		tables[i] = cat.MustTable(rr.Table).Rows
		offsets[i] = off
		off += len(cat.MustTable(rr.Table).ColNames)
	}
	colVal := func(acc []Row, c relalg.ColID) int64 {
		return acc[c.Rel][c.Off]
	}
	rec = func(i int, acc []Row) {
		if i == len(q.Rels) {
			full := make(Row, 0, off)
			for _, part := range acc {
				full = append(full, part...)
			}
			out = append(out, full)
			return
		}
	rows:
		for _, row := range tables[i] {
			acc2 := append(acc, Row(row))
			for _, sp := range q.Scans {
				if sp.Col.Rel == i && !sp.Op.Eval(row[sp.Col.Off], sp.Val) {
					continue rows
				}
			}
			for _, jp := range q.Joins {
				if jp.L.Rel <= i && jp.R.Rel <= i && (jp.L.Rel == i || jp.R.Rel == i) {
					if colVal(acc2, jp.L) != colVal(acc2, jp.R) {
						continue rows
					}
				}
			}
			rec(i+1, acc2)
		}
	}
	rec(0, nil)
	return out
}

// canonical renders a multiset of rows order-independently, projecting each
// row onto the canonical column order (by query relation then offset) so
// plans with different join orders compare equal.
func canonical(q *relalg.Query, cat *catalog.Catalog, schemaOf func() []relalg.ColID, rows []Row, schema []relalg.ColID) string {
	var keys []string
	for _, r := range rows {
		vals := make(map[relalg.ColID]int64, len(schema))
		for i, c := range schema {
			vals[c] = r[i]
		}
		var b strings.Builder
		for rel := range q.Rels {
			arity := len(cat.MustTable(q.Rels[rel].Table).ColNames)
			for off := 0; off < arity; off++ {
				b.WriteString("|")
				b.WriteString(int64Str(vals[relalg.ColID{Rel: rel, Off: off}]))
			}
		}
		keys = append(keys, b.String())
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func int64Str(v int64) string {
	var b [24]byte
	n := len(b)
	neg := v < 0
	if neg {
		v = -v
	}
	if v == 0 {
		return "0"
	}
	for v > 0 {
		n--
		b[n] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		n--
		b[n] = '-'
	}
	return string(b[n:])
}

// TestPlansAgreeWithBruteForce executes the optimal plan of each
// architecture — and the deliberately worst plan — and compares the result
// multiset against a nested-loop oracle. This exercises hash, merge and
// index-NL joins, sort enforcers, and residual predicates across arbitrary
// plan shapes.
func TestPlansAgreeWithBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		r := stats.NewRand(seed * 131)
		cat := tinyCatalog(seed, 3, 30)
		q := randomExecQuery(r, cat, 2+int(seed%3))
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}

		oracleRows := bruteForceJoin(q, cat)
		fullSchema := func() []relalg.ColID {
			var s []relalg.ColID
			for rel, rr := range q.Rels {
				for off := range cat.MustTable(rr.Table).ColNames {
					s = append(s, relalg.ColID{Rel: rel, Off: off})
				}
			}
			return s
		}
		want := canonical(q, cat, fullSchema, oracleRows, fullSchema())

		var plans []*relalg.Plan
		if vr, err := volcano.Optimize(m, relalg.DefaultSpace()); err == nil {
			plans = append(plans, vr.Plan)
		} else {
			t.Fatal(err)
		}
		if sr, err := systemr.Optimize(m, relalg.DefaultSpace()); err == nil {
			plans = append(plans, sr.Plan)
		}
		o, err := core.New(m, relalg.DefaultSpace(), core.PruneNone)
		if err != nil {
			t.Fatal(err)
		}
		if p, err := o.Optimize(); err == nil {
			plans = append(plans, p)
		} else {
			t.Fatal(err)
		}
		if wp, err := o.WorstPlan(); err == nil {
			plans = append(plans, wp)
		}

		for pi, plan := range plans {
			// Both execution paths must agree with the oracle: the
			// vectorized default (Compile, behind the row shim) and
			// the legacy row-at-a-time interpreter (CompileRow).
			compile := map[string]func(*Compiler, *relalg.Plan) (Iterator, *RunStats, error){
				"vec": (*Compiler).Compile,
				"row": (*Compiler).CompileRow,
			}
			for mode, fn := range compile {
				comp := &Compiler{Q: q, Cat: cat}
				it, _, err := fn(comp, plan)
				if err != nil {
					t.Fatalf("seed %d plan %d (%s): compile: %v\n%s", seed, pi, mode, err, plan.Explain(q))
				}
				got, err := Drain(it)
				if err != nil {
					t.Fatalf("seed %d plan %d (%s): %v\n%s", seed, pi, mode, err, plan.Explain(q))
				}
				// Reconstruct the plan's output schema through a
				// second compile (schema equals full column set in
				// plan order); canonicalize via column ids.
				schema := planSchema(q, cat, plan)
				if gotStr := canonical(q, cat, fullSchema, got, schema); gotStr != want {
					t.Fatalf("seed %d plan %d (%s): result mismatch\nplan:\n%s\ngot %d rows, want %d",
						seed, pi, mode, plan.Explain(q), len(got), len(oracleRows))
				}
			}
		}
	}
}

// planSchema recomputes the output schema of a plan (mirrors the compiler).
func planSchema(q *relalg.Query, cat *catalog.Catalog, p *relalg.Plan) []relalg.ColID {
	switch p.Log {
	case relalg.LogScan:
		var s []relalg.ColID
		for off := range cat.MustTable(q.Rels[p.Rel].Table).ColNames {
			s = append(s, relalg.ColID{Rel: p.Rel, Off: off})
		}
		return s
	case relalg.LogEnforce:
		return planSchema(q, cat, p.Left)
	default:
		return append(planSchema(q, cat, p.Left), planSchema(q, cat, p.Right)...)
	}
}

// TestRunStatsCollected checks the feedback probes: executing a plan yields
// an actual cardinality for every scan/join subexpression of the plan.
func TestRunStatsCollected(t *testing.T) {
	r := stats.NewRand(5)
	cat := tinyCatalog(5, 3, 40)
	q := randomExecQuery(r, cat, 3)
	m, _ := cost.NewModel(q, cat, cost.DefaultParams())
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	comp := &Compiler{Q: q, Cat: cat}
	it, st, err := comp.Compile(vr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Count(it); err != nil {
		t.Fatal(err)
	}
	var walk func(p *relalg.Plan)
	walk = func(p *relalg.Plan) {
		if p == nil {
			return
		}
		if p.Log != relalg.LogEnforce {
			if _, ok := st.Card(p.Expr); !ok {
				t.Fatalf("no actual cardinality for %v", p.Expr)
			}
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(vr.Plan)
}
