package exec

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/relalg"
	"repro/internal/rescache"
)

// RunStats accumulates actual output cardinalities per subexpression during
// execution. The adaptive layer compares them with the optimizer's
// estimates and feeds the ratios back as cardinality updates.
type RunStats struct {
	Cards map[relalg.RelSet]*int64
}

// Card returns the observed cardinality of a subexpression.
func (s *RunStats) Card(set relalg.RelSet) (int64, bool) {
	if p, ok := s.Cards[set]; ok {
		return *p, true
	}
	return 0, false
}

// counter returns the accumulator for a subexpression, creating it when
// first requested.
func (s *RunStats) counter(set relalg.RelSet) *int64 {
	n, ok := s.Cards[set]
	if !ok {
		n = new(int64)
		s.Cards[set] = n
	}
	return n
}

// Snapshot copies the observed cardinalities into a plain map — the handoff
// from one finished execution to the feedback consumer (the adaptive loop or
// the serving layer's shared stats store). It must only be called after the
// operator tree has been drained and closed: parallel operators merge their
// per-worker counters at pipeline end, so earlier reads would race.
func (s *RunStats) Snapshot() map[relalg.RelSet]int64 {
	out := make(map[relalg.RelSet]int64, len(s.Cards))
	for set, n := range s.Cards {
		out[set] = *n
	}
	return out
}

// Compiler turns a physical plan into an operator tree over concrete data.
type Compiler struct {
	Q   *relalg.Query
	Cat *catalog.Catalog
	// Data overrides the row source per query relation; when nil (or when
	// it returns nil) the catalog table's rows are used. The stream layer
	// uses this to execute over window buffers.
	Data func(rel int) [][]int64
	// Parallelism caps the number of workers of morsel-driven parallel
	// execution; values <= 1 execute serially. Right-spine hash-join
	// chains over a large unsorted leaf scan fuse into full parallel
	// pipelines (scan → probe cascade → worker-local aggregation, see
	// pipeline.go); remaining large leaf scans fan out individually.
	// Per-operator cardinality counters stay exact either way (fused
	// pipelines merge per-worker counters, exchange scans count above the
	// exchange), so RunStats feedback into the adaptive layer is
	// unaffected.
	Parallelism int
	// DisableColumnar routes CompileVec through the row-at-a-time engine
	// wrapped in a batch adapter — the escape hatch for A/B-ing the
	// columnar layout (reprobench -columnar=false). The REPRO_COLUMNAR
	// environment variable ("0"/"false" disables) flips the same switch
	// process-wide. RunStats feedback is identical either way.
	DisableColumnar bool
	// Cache, when enabled, is the server-wide semantic result cache, and
	// CacheCands the plan's cacheable subtrees (BuildCacheCandidates on
	// THIS plan tree — candidates match by node identity). CompileVec
	// resolves them into probe hits (subtree replaced by a cached scan) or
	// spools (subtree teed into the cache); see rescache.go. Columnar-only:
	// the row engine and Data-overridden compilations ignore both.
	Cache      *rescache.Cache
	CacheCands []CacheCandidate
	// Prof, when non-nil, collects a per-operator execution profile for
	// EXPLAIN ANALYZE: every compiled operator is wrapped in a timing shim
	// recording batches/rows/wall time per plan node (fused pipelines
	// register per-stage spans instead; see profile.go). Nil — the default
	// — compiles exactly the unprofiled operator tree. Columnar-only: the
	// DisableColumnar row path ignores it.
	Prof *PlanProfile
	// MemBudgetBytes bounds the query's tracked execution memory. When > 0
	// and Mem is nil, CompileVec creates the tracker; operators that can go
	// out of core (hash join build, hash aggregation) spill under grace
	// hashing instead of exceeding the budget, operators that cannot (sorts,
	// merge joins, index builds, fused pipelines admitted by the planner's
	// size estimate) charge through and record overage. 0 keeps today's
	// unbounded execution paths exactly. Columnar-only.
	MemBudgetBytes int64
	// Mem is the query's memory tracker. Callers either pass one in (the
	// server, to read back peak and spill statistics) or leave it nil and
	// set MemBudgetBytes. A Compiler carrying a tracker is single-execution:
	// reusing it across queries would accumulate charges.
	Mem *MemTracker
	// SpillDir is the directory spill partition files are created in when
	// out-of-core operators go to disk ("" = system temp directory). A
	// write failure there (disk full, bad mount) surfaces as the query's
	// error; the partition files themselves are unlinked at creation, so
	// nothing leaks even on abrupt failure.
	SpillDir string
	// decisions maps plan nodes to their resolved cache decision for the
	// current CompileVec call.
	decisions map[*relalg.Plan]*cacheDecision
}

// columnarDefault is the process-wide layout switch read from
// REPRO_COLUMNAR at startup; unset or anything but "0"/"false"/"off"/"no"
// means columnar.
var columnarDefault = func() bool {
	switch strings.ToLower(os.Getenv("REPRO_COLUMNAR")) {
	case "0", "false", "off", "no":
		return false
	}
	return true
}()

func (c *Compiler) columnarEnabled() bool { return columnarDefault && !c.DisableColumnar }

// rowVecAdapter presents a row-at-a-time iterator tree as a VecIterator,
// transposing rows into a reused columnar batch — the DisableColumnar
// execution path, and deliberately the only place the disabled layout pays
// a per-row transposition cost.
type rowVecAdapter struct {
	in    Iterator
	batch Batch
}

func (a *rowVecAdapter) Open() error { return a.in.Open() }

func (a *rowVecAdapter) Next() (*Batch, error) {
	n := 0
	for n < BatchSize {
		r, ok, err := a.in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if a.batch.Cols == nil {
			w := len(r)
			flat := make([]int64, w*BatchSize)
			a.batch.Cols = make([][]int64, w)
			for c := range a.batch.Cols {
				a.batch.Cols[c] = flat[c*BatchSize : (c+1)*BatchSize : (c+1)*BatchSize]
			}
		}
		for c, v := range r {
			a.batch.Cols[c][n] = v
		}
		n++
	}
	if n == 0 {
		return nil, nil
	}
	a.batch.N = n
	a.batch.Sel = nil
	return &a.batch, nil
}

func (a *rowVecAdapter) Close() error { return a.in.Close() }

// Compile builds the vectorized operator tree for plan and adapts it to the
// row-at-a-time Iterator interface, wiring a cardinality counter onto every
// scan and join operator and applying the query's aggregation (if any) on
// top. It returns the root iterator and the stats collector.
func (c *Compiler) Compile(plan *relalg.Plan) (Iterator, *RunStats, error) {
	v, stats, err := c.CompileVec(plan)
	if err != nil {
		return nil, nil, err
	}
	return NewRowIterator(v), stats, nil
}

// CompileVec builds the vectorized (batch-at-a-time) operator tree for
// plan. It is the primary execution path; Compile wraps it in the row shim.
func (c *Compiler) CompileVec(plan *relalg.Plan) (VecIterator, *RunStats, error) {
	if !c.columnarEnabled() {
		it, stats, err := c.CompileRow(plan)
		if err != nil {
			return nil, nil, err
		}
		return &rowVecAdapter{in: it}, stats, nil
	}
	stats := &RunStats{Cards: map[relalg.RelSet]*int64{}}
	c.resolveCache()
	if c.Mem == nil && c.MemBudgetBytes > 0 {
		c.Mem = NewMemTracker(c.MemBudgetBytes)
	}
	if c.SpillDir != "" {
		c.Mem.SetSpillDir(c.SpillDir)
	}
	if c.Prof != nil {
		c.Prof.workers = c.Parallelism
	}
	// Full-pipeline fusion at the root: when the query aggregates, the
	// fused pipeline's terminal becomes worker-local partial aggregation
	// (even for a bare scan plan, the Q1/Q6 shape), so no exchange or
	// shared aggregation state sits on the per-row path. Under a memory
	// budget the aggregation must stay spillable, so the root terminal
	// falls back to the serial spill-capable operator over the (possibly
	// still fused, estimate-admitted) join pipeline below.
	if c.Parallelism > 1 && !(c.Q.Agg != nil && c.Mem.Bounded()) {
		minStages := 1
		if c.Q.Agg != nil {
			minStages = 0
		}
		op, schema, ok, err := c.compilePipeline(plan, stats, minStages)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			if c.Q.Agg != nil {
				spec, err := c.aggSpec(schema)
				if err != nil {
					return nil, nil, err
				}
				op.fuseAgg(spec)
				if op.prof != nil {
					// The fused aggregation is the pipeline's terminal:
					// its time comes from the workers' terminal clock
					// slot, self-time like the other stages.
					c.Prof.Agg.Self = true
					op.prof.term = c.Prof.Agg
				}
			}
			return op, stats, nil
		}
	}
	v, schema, err := c.compileVec(plan, stats)
	if err != nil {
		return nil, nil, err
	}
	if c.Q.Agg != nil {
		spec, err := c.aggSpec(schema)
		if err != nil {
			return nil, nil, err
		}
		v = NewVecHashAgg(v, spec)
		if ha, ok := v.(*vecHashAggOp); ok {
			ha.mem = c.Mem.Child("agg")
		}
		if c.Prof != nil {
			v = &profVec{in: v, sp: c.Prof.Agg}
		}
	}
	return v, stats, nil
}

// CompileRow builds the legacy row-at-a-time iterator tree for plan — the
// differential baseline the vectorized path is tested and benchmarked
// against.
func (c *Compiler) CompileRow(plan *relalg.Plan) (Iterator, *RunStats, error) {
	stats := &RunStats{Cards: map[relalg.RelSet]*int64{}}
	it, schema, err := c.compile(plan, stats)
	if err != nil {
		return nil, nil, err
	}
	if c.Q.Agg != nil {
		spec, err := c.aggSpec(schema)
		if err != nil {
			return nil, nil, err
		}
		it = NewHashAgg(it, spec)
	}
	return it, stats, nil
}

// aggSpec resolves the query's aggregation columns against the plan root's
// output schema.
func (c *Compiler) aggSpec(schema []relalg.ColID) (AggSpecExec, error) {
	spec := AggSpecExec{CountAll: c.Q.Agg.CountAll}
	for _, col := range c.Q.Agg.GroupBy {
		off, err := colOffset(schema, col)
		if err != nil {
			return spec, err
		}
		spec.GroupBy = append(spec.GroupBy, off)
	}
	for _, col := range c.Q.Agg.Sums {
		off, err := colOffset(schema, col)
		if err != nil {
			return spec, err
		}
		spec.Sums = append(spec.Sums, off)
	}
	for _, col := range c.Q.Agg.CountDistinct {
		off, err := colOffset(schema, col)
		if err != nil {
			return spec, err
		}
		spec.CountDistinct = append(spec.CountDistinct, off)
	}
	return spec, nil
}

func (c *Compiler) rows(rel int) ([][]int64, error) {
	if c.Data != nil {
		if rows := c.Data(rel); rows != nil {
			return rows, nil
		}
	}
	t, err := c.Cat.Table(c.Q.Rels[rel].Table)
	if err != nil {
		return nil, err
	}
	return t.Rows, nil
}

func (c *Compiler) tableArity(rel int) (int, error) {
	t, err := c.Cat.Table(c.Q.Rels[rel].Table)
	if err != nil {
		return 0, err
	}
	return len(t.ColNames), nil
}

// cols returns the column-major data of a query relation: the catalog
// table's zero-copy column mirror, or — for Data-overridden relations (the
// stream layer's window buffers) — a one-time transposition of the override
// rows.
func (c *Compiler) cols(rel int) (colData, error) {
	t, err := c.Cat.Table(c.Q.Rels[rel].Table)
	if err != nil {
		return colData{}, err
	}
	if c.Data != nil {
		if rows := c.Data(rel); rows != nil {
			return transposeRows(rows, len(t.ColNames)), nil
		}
	}
	// ColumnSnapshot returns a consistent (columns, row count) pair from
	// the storage backend's atomically published snapshot, so compiling
	// concurrently with appends can never pair fresh columns with a stale
	// count (or vice versa).
	cols, n := t.ColumnSnapshot()
	return colData{cols: cols, n: n}, nil
}

// compile returns the iterator and its output schema (the ColID of every
// output column, in order).
func (c *Compiler) compile(p *relalg.Plan, stats *RunStats) (Iterator, []relalg.ColID, error) {
	switch p.Log {
	case relalg.LogScan:
		rows, err := c.rows(p.Rel)
		if err != nil {
			return nil, nil, err
		}
		arity, err := c.tableArity(p.Rel)
		if err != nil {
			return nil, nil, err
		}
		schema := make([]relalg.ColID, arity)
		for i := range schema {
			schema[i] = relalg.ColID{Rel: p.Rel, Off: i}
		}
		preds, err := c.scanPreds(p.Rel, schema)
		if err != nil {
			return nil, nil, err
		}
		var it Iterator = NewScan(rows, preds)
		if p.Prop.Kind == relalg.PropSorted {
			// Index-order (or clustered-order) retrieval: the
			// in-memory substitute is an explicit sort of the
			// filtered rows.
			off, err := colOffset(schema, p.Prop.Col)
			if err != nil {
				return nil, nil, err
			}
			it = NewSort(it, off)
		} else if p.Phy == relalg.PhyIndexScan {
			off, err := colOffset(schema, p.IdxCol)
			if err != nil {
				return nil, nil, err
			}
			it = NewSort(it, off)
		}
		return c.counted(it, p.Expr, stats), schema, nil

	case relalg.LogEnforce:
		child, schema, err := c.compile(p.Left, stats)
		if err != nil {
			return nil, nil, err
		}
		off, err := colOffset(schema, p.Prop.Col)
		if err != nil {
			return nil, nil, err
		}
		return NewSort(child, off), schema, nil

	case relalg.LogJoin:
		jp := c.Q.Joins[p.Pred]
		if p.Phy == relalg.PhyIndexNLJoin {
			return c.compileIndexNL(p, jp, stats)
		}
		left, ls, err := c.compile(p.Left, stats)
		if err != nil {
			return nil, nil, err
		}
		right, rs, err := c.compile(p.Right, stats)
		if err != nil {
			return nil, nil, err
		}
		schema := append(append([]relalg.ColID(nil), ls...), rs...)
		lk, rk, err := c.joinOffsets(p, jp, ls, rs)
		if err != nil {
			return nil, nil, err
		}
		var it Iterator
		switch p.Phy {
		case relalg.PhyHashJoin:
			// Hash on the compound key of every cross equi-predicate;
			// only non-equi filters remain as residuals.
			lKeys, rKeys, err := c.hashJoinKeys(p, ls, rs, lk, rk)
			if err != nil {
				return nil, nil, err
			}
			residual, err := c.filterPredsOnly(p, schema)
			if err != nil {
				return nil, nil, err
			}
			it = NewHashJoin(left, right, lKeys, rKeys, len(ls), residual)
		case relalg.PhyMergeJoin:
			residual, err := c.residualPreds(p, schema)
			if err != nil {
				return nil, nil, err
			}
			it = NewMergeJoin(left, right, lk, rk, residual)
		default:
			return nil, nil, fmt.Errorf("exec: unexpected join operator %v", p.Phy)
		}
		return c.counted(it, p.Expr, stats), schema, nil
	}
	return nil, nil, fmt.Errorf("exec: unknown logical operator %v", p.Log)
}

func (c *Compiler) compileIndexNL(p *relalg.Plan, jp relalg.JoinPred, stats *RunStats) (Iterator, []relalg.ColID, error) {
	// Plan convention (paper Table 1): left child is the indexed inner
	// (a single base relation), right child is the outer.
	inner := p.Left.Expr.SingleMember()
	innerArity, err := c.tableArity(inner)
	if err != nil {
		return nil, nil, err
	}
	innerSchema := make([]relalg.ColID, innerArity)
	for i := range innerSchema {
		innerSchema[i] = relalg.ColID{Rel: inner, Off: i}
	}
	innerRows, err := c.rows(inner)
	if err != nil {
		return nil, nil, err
	}
	innerPreds, err := c.scanPreds(inner, innerSchema)
	if err != nil {
		return nil, nil, err
	}
	innerCol, outerCol := jp.L, jp.R
	if innerCol.Rel != inner {
		innerCol, outerCol = outerCol, innerCol
	}
	index := BuildIndex(innerRows, innerCol.Off, innerPreds)

	outer, os, err := c.compile(p.Right, stats)
	if err != nil {
		return nil, nil, err
	}
	ok, err := colOffset(os, outerCol)
	if err != nil {
		return nil, nil, err
	}
	schema := append(append([]relalg.ColID(nil), innerSchema...), os...)
	residual, err := c.residualPreds(p, schema)
	if err != nil {
		return nil, nil, err
	}
	it := NewIndexNLJoin(outer, index, ok, innerArity, residual)
	return c.counted(it, p.Expr, stats), schema, nil
}

func (c *Compiler) counted(it Iterator, set relalg.RelSet, stats *RunStats) Iterator {
	return NewCounter(it, stats.counter(set))
}

// ---- vectorized compilation ----

// compileVec compiles one plan node via compileVecNode and — when
// profiling — wraps the result in the timing shim for that node. Fused
// pipelines are exempt: they register their own per-stage spans.
func (c *Compiler) compileVec(p *relalg.Plan, stats *RunStats) (VecIterator, []relalg.ColID, error) {
	v, schema, err := c.compileVecNode(p, stats)
	if err != nil || c.Prof == nil {
		return v, schema, err
	}
	if _, fused := v.(*parallelPipelineOp); fused {
		return v, schema, nil
	}
	return &profVec{in: v, sp: c.Prof.span(p)}, schema, nil
}

// compileVecNode mirrors compile over the vectorized operator set and
// returns the operator and its output schema.
func (c *Compiler) compileVecNode(p *relalg.Plan, stats *RunStats) (VecIterator, []relalg.ColID, error) {
	if d := c.takeDecision(p); d != nil {
		return c.applyCacheDecision(d, p, stats)
	}
	switch p.Log {
	case relalg.LogScan:
		data, err := c.cols(p.Rel)
		if err != nil {
			return nil, nil, err
		}
		arity, err := c.tableArity(p.Rel)
		if err != nil {
			return nil, nil, err
		}
		schema := make([]relalg.ColID, arity)
		for i := range schema {
			schema[i] = relalg.ColID{Rel: p.Rel, Off: i}
		}
		conds, err := c.scanConds(p.Rel, schema)
		if err != nil {
			return nil, nil, err
		}
		var v VecIterator
		if p.Phy == relalg.PhySegScan && c.Data == nil {
			// Segment-pruned access path: scan through the storage
			// backend, which skips segments whose zone maps exclude the
			// pushed-down conditions. Data-overridden relations (stream
			// windows) have no backend and fall through to the plain scan.
			t, err := c.Cat.Table(c.Q.Rels[p.Rel].Table)
			if err != nil {
				return nil, nil, err
			}
			v = newStorageScan(t.Store(), storagePreds(conds), ScanFilter{Conds: conds})
		} else {
			v = c.scanVec(data, ScanFilter{Conds: conds})
		}
		if p.Prop.Kind == relalg.PropSorted {
			off, err := colOffset(schema, p.Prop.Col)
			if err != nil {
				return nil, nil, err
			}
			v = c.trackedSort(v, off)
		} else if p.Phy == relalg.PhyIndexScan {
			off, err := colOffset(schema, p.IdxCol)
			if err != nil {
				return nil, nil, err
			}
			v = c.trackedSort(v, off)
		}
		return c.countedVec(v, p.Expr, stats), schema, nil

	case relalg.LogEnforce:
		child, schema, err := c.compileVec(p.Left, stats)
		if err != nil {
			return nil, nil, err
		}
		off, err := colOffset(schema, p.Prop.Col)
		if err != nil {
			return nil, nil, err
		}
		return c.trackedSort(child, off), schema, nil

	case relalg.LogJoin:
		jp := c.Q.Joins[p.Pred]
		if p.Phy == relalg.PhyIndexNLJoin {
			return c.compileVecIndexNL(p, jp, stats)
		}
		if p.Phy == relalg.PhyHashJoin {
			// Fuse an interior hash-join chain (e.g. a build-side
			// subtree) into a collect-mode parallel pipeline.
			op, schema, ok, err := c.compilePipeline(p, stats, 1)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				return op, schema, nil
			}
		}
		left, ls, err := c.compileVec(p.Left, stats)
		if err != nil {
			return nil, nil, err
		}
		right, rs, err := c.compileVec(p.Right, stats)
		if err != nil {
			return nil, nil, err
		}
		schema := append(append([]relalg.ColID(nil), ls...), rs...)
		lk, rk, err := c.joinOffsets(p, jp, ls, rs)
		if err != nil {
			return nil, nil, err
		}
		var v VecIterator
		switch p.Phy {
		case relalg.PhyHashJoin:
			lKeys, rKeys, err := c.hashJoinKeys(p, ls, rs, lk, rk)
			if err != nil {
				return nil, nil, err
			}
			residual, err := c.colFilterPredsOnly(p, schema)
			if err != nil {
				return nil, nil, err
			}
			v = NewVecHashJoin(left, right, lKeys, rKeys, residual, c.Parallelism)
			if hj, ok := v.(*vecHashJoinOp); ok {
				hj.mem = c.Mem.Child("hashjoin")
			}
		case relalg.PhyMergeJoin:
			residual, err := c.colResidualPreds(p, schema)
			if err != nil {
				return nil, nil, err
			}
			v = NewVecMergeJoin(left, right, lk, rk, residual)
			if mj, ok := v.(*vecMergeJoinOp); ok {
				mj.mem = c.Mem.Child("mergejoin")
			}
		default:
			return nil, nil, fmt.Errorf("exec: unexpected join operator %v", p.Phy)
		}
		return c.countedVec(v, p.Expr, stats), schema, nil
	}
	return nil, nil, fmt.Errorf("exec: unknown logical operator %v", p.Log)
}

func (c *Compiler) compileVecIndexNL(p *relalg.Plan, jp relalg.JoinPred, stats *RunStats) (VecIterator, []relalg.ColID, error) {
	inner := p.Left.Expr.SingleMember()
	innerArity, err := c.tableArity(inner)
	if err != nil {
		return nil, nil, err
	}
	innerSchema := make([]relalg.ColID, innerArity)
	for i := range innerSchema {
		innerSchema[i] = relalg.ColID{Rel: inner, Off: i}
	}
	innerData, err := c.cols(inner)
	if err != nil {
		return nil, nil, err
	}
	innerConds, err := c.scanConds(inner, innerSchema)
	if err != nil {
		return nil, nil, err
	}
	innerCol, outerCol := jp.L, jp.R
	if innerCol.Rel != inner {
		innerCol, outerCol = outerCol, innerCol
	}
	index := buildColIndex(innerData, innerCol.Off, ScanFilter{Conds: innerConds})
	// The index map (per-key row-id slices + bucket overhead) has no
	// out-of-core fallback; the base column data it points into is the
	// catalog's untracked mirror.
	c.Mem.Force(int64(innerData.n) * 40)

	outer, os, err := c.compileVec(p.Right, stats)
	if err != nil {
		return nil, nil, err
	}
	ok, err := colOffset(os, outerCol)
	if err != nil {
		return nil, nil, err
	}
	schema := append(append([]relalg.ColID(nil), innerSchema...), os...)
	residual, err := c.colResidualPreds(p, schema)
	if err != nil {
		return nil, nil, err
	}
	v := NewVecIndexNLJoin(outer, index, ok, residual)
	return c.countedVec(v, p.Expr, stats), schema, nil
}

// compilePipeline tries to fuse the subtree rooted at p into one
// parallelPipelineOp: a right-spine chain of at least minStages hash joins
// (possibly zero, for bare scan+agg plans) over a large unsorted leaf scan.
// Each stage's build side is compiled with the regular vectorized compiler
// (and may itself fuse recursively), drained at Open, and probed by every
// pipeline worker against the shared immutable table. The op registers the
// cardinality counters of every fused expression itself — the scan and each
// join — merging exact per-worker counts, so it must not be wrapped in
// countedVec. Returns ok=false when the shape doesn't match or the scan is
// too small to pay for workers; the caller falls back to the exchange-based
// operators.
func (c *Compiler) compilePipeline(p *relalg.Plan, stats *RunStats, minStages int) (*parallelPipelineOp, []relalg.ColID, bool, error) {
	if c.Parallelism <= 1 {
		return nil, nil, false, nil
	}
	if c.decisionWithin(p) {
		// A probe or spool targets a node inside this subtree; fusing it
		// into one operator would silently skip the cache. Fall back to
		// the plain operator tree, where compileVec honors the decision.
		return nil, nil, false, nil
	}
	var spine []*relalg.Plan
	cur := p
	for cur.Log == relalg.LogJoin && cur.Phy == relalg.PhyHashJoin {
		spine = append(spine, cur)
		cur = cur.Right
	}
	if len(spine) < minStages {
		return nil, nil, false, nil
	}
	if cur.Log != relalg.LogScan || cur.Prop.Kind == relalg.PropSorted ||
		cur.Phy == relalg.PhyIndexScan || cur.Phy == relalg.PhySegScan {
		return nil, nil, false, nil
	}
	data, err := c.cols(cur.Rel)
	if err != nil {
		return nil, nil, false, err
	}
	if data.n < minParallelRows {
		return nil, nil, false, nil
	}
	arity, err := c.tableArity(cur.Rel)
	if err != nil {
		return nil, nil, false, err
	}
	schema := make([]relalg.ColID, arity)
	for i := range schema {
		schema[i] = relalg.ColID{Rel: cur.Rel, Off: i}
	}
	conds, err := c.scanConds(cur.Rel, schema)
	if err != nil {
		return nil, nil, false, err
	}
	scanCard := stats.counter(cur.Expr)

	// Under a memory budget, fusion is admission-gated: the fused pipeline
	// Force-charges its build tables (it cannot spill them), so it is only
	// used when the optimizer's cardinality estimates put the combined build
	// footprint within half the budget. The check runs before any build
	// subtree is compiled — bailing later would leave counters and cache
	// decisions half-registered. Misestimates surface as tracked overage.
	if c.Mem.Bounded() {
		var est int64
		for _, pj := range spine {
			width := 0
			for rel := range c.Q.Rels {
				if pj.Left.Expr.Has(rel) {
					arity, err := c.tableArity(rel)
					if err != nil {
						return nil, nil, false, err
					}
					width += arity
				}
			}
			rows := int64(pj.Left.Card)
			est += colBytes(width, int(rows)) + joinTableBytes(int(rows))
		}
		if est > c.Mem.Limit()/2 {
			return nil, nil, false, nil
		}
	}

	// Stages assemble bottom-up: the innermost join of the spine is probed
	// first, and each stage's output schema (build ++ probe) is the next
	// stage's probe schema — exactly the schema the unfused operator tree
	// would produce.
	stages := make([]*pipeStage, 0, len(spine))
	for i := len(spine) - 1; i >= 0; i-- {
		pj := spine[i]
		jp := c.Q.Joins[pj.Pred]
		build, ls, err := c.compileVec(pj.Left, stats)
		if err != nil {
			return nil, nil, false, err
		}
		lk, rk, err := c.joinOffsets(pj, jp, ls, schema)
		if err != nil {
			return nil, nil, false, err
		}
		lKeys, rKeys, err := c.hashJoinKeys(pj, ls, schema, lk, rk)
		if err != nil {
			return nil, nil, false, err
		}
		schema = append(append([]relalg.ColID(nil), ls...), schema...)
		residual, err := c.colFilterPredsOnly(pj, schema)
		if err != nil {
			return nil, nil, false, err
		}
		stages = append(stages, &pipeStage{build: build, buildKeys: lKeys,
			probeKeys: rKeys, residual: residual, card: stats.counter(pj.Expr)})
	}
	op := newParallelPipeline(data, ScanFilter{Conds: conds}, scanCard, stages, c.Parallelism)
	op.mem = c.Mem.Child("pipeline")
	if c.Prof != nil {
		// Register self-time spans for every fused node: stages[j] probes
		// spine[len-1-j] (the stage list assembles bottom-up), and the
		// scan span belongs to the leaf. Build subtrees were compiled via
		// compileVec above and carry their own inclusive shims.
		pr := &pipeProf{scan: c.Prof.selfSpan(cur), stages: make([]*obs.Span, len(stages))}
		for j := range stages {
			pr.stages[j] = c.Prof.selfSpan(spine[len(spine)-1-j])
		}
		op.prof = pr
	}
	return op, schema, true, nil
}

// scanVec picks the leaf scan implementation: morsel-driven parallel when
// the Parallelism option allows it and the table is large enough to pay for
// worker startup, serial otherwise.
func (c *Compiler) scanVec(data colData, filter ScanFilter) VecIterator {
	if c.Parallelism > 1 && data.n >= minParallelRows {
		return NewParallelScan(data.cols, data.n, filter, c.Parallelism)
	}
	return NewVecScan(data.cols, data.n, filter)
}

func (c *Compiler) countedVec(v VecIterator, set relalg.RelSet, stats *RunStats) VecIterator {
	return NewVecCounter(v, stats.counter(set))
}

// trackedSort builds a sort operator with its memory child tracker attached.
func (c *Compiler) trackedSort(in VecIterator, col int) VecIterator {
	v := NewVecSort(in, col)
	if s, ok := v.(*vecSortOp); ok {
		s.mem = c.Mem.Child("sort")
	}
	return v
}

// joinOffsets resolves the primary equi-join columns of p against the
// child schemas, orienting the predicate so its left column comes from the
// plan's left child.
func (c *Compiler) joinOffsets(p *relalg.Plan, jp relalg.JoinPred, ls, rs []relalg.ColID) (lk, rk int, err error) {
	lcol, rcol := jp.L, jp.R
	if !p.Left.Expr.Has(lcol.Rel) {
		lcol, rcol = rcol, lcol
	}
	if lk, err = colOffset(ls, lcol); err != nil {
		return 0, 0, err
	}
	if rk, err = colOffset(rs, rcol); err != nil {
		return 0, 0, err
	}
	return lk, rk, nil
}

// hashJoinKeys extends the primary key columns with every other cross
// equi-predicate of the join, yielding the compound hash key. Keying on
// every available equi-join column keeps match sets minimal.
func (c *Compiler) hashJoinKeys(p *relalg.Plan, ls, rs []relalg.ColID, lk, rk int) (lKeys, rKeys []int, err error) {
	lKeys, rKeys = []int{lk}, []int{rk}
	for pi, ojp := range c.Q.Joins {
		if pi == p.Pred || !ojp.Crosses(p.Left.Expr, p.Right.Expr) {
			continue
		}
		ol, or := ojp.L, ojp.R
		if !p.Left.Expr.Has(ol.Rel) {
			ol, or = or, ol
		}
		lo, err := colOffset(ls, ol)
		if err != nil {
			return nil, nil, err
		}
		ro, err := colOffset(rs, or)
		if err != nil {
			return nil, nil, err
		}
		lKeys = append(lKeys, lo)
		rKeys = append(rKeys, ro)
	}
	return lKeys, rKeys, nil
}

// scanConds resolves the local selection predicates of a relation into the
// structured conditions evaluated by the vectorized scan kernels.
func (c *Compiler) scanConds(rel int, schema []relalg.ColID) ([]ScanCond, error) {
	var conds []ScanCond
	for _, pr := range c.Q.ScanPredsOf(rel) {
		off, err := colOffset(schema, pr.Col)
		if err != nil {
			return nil, err
		}
		conds = append(conds, ScanCond{Off: off, Op: pr.Op, Val: pr.Val})
	}
	return conds, nil
}

// scanPreds compiles the local selection predicates of a relation against a
// schema.
func (c *Compiler) scanPreds(rel int, schema []relalg.ColID) ([]PredFn, error) {
	var preds []PredFn
	for _, pr := range c.Q.ScanPredsOf(rel) {
		off, err := colOffset(schema, pr.Col)
		if err != nil {
			return nil, err
		}
		op, val := pr.Op, pr.Val
		preds = append(preds, func(r Row) bool { return op.Eval(r[off], val) })
	}
	return preds, nil
}

// filterPredsOnly compiles just the non-equi residual filters crossing this
// join (used when all equi predicates are part of the hash key).
func (c *Compiler) filterPredsOnly(p *relalg.Plan, schema []relalg.ColID) ([]PredFn, error) {
	var preds []PredFn
	lset, rset := p.Left.Expr, p.Right.Expr
	for _, f := range c.Q.Filters {
		crosses := (lset.Has(f.L.Rel) && rset.Has(f.R.Rel)) || (rset.Has(f.L.Rel) && lset.Has(f.R.Rel))
		if !crosses {
			continue
		}
		lo, err := colOffset(schema, f.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, f.R)
		if err != nil {
			return nil, err
		}
		op, off := f.Op, f.Off
		preds = append(preds, func(r Row) bool { return op.Eval(r[lo], r[ro]+off) })
	}
	return preds, nil
}

// colFilterPredsOnly is filterPredsOnly compiled to structured ColPreds —
// the vectorized joins evaluate these directly on (build, probe) index
// pairs without materializing a row.
func (c *Compiler) colFilterPredsOnly(p *relalg.Plan, schema []relalg.ColID) ([]ColPred, error) {
	var preds []ColPred
	lset, rset := p.Left.Expr, p.Right.Expr
	for _, f := range c.Q.Filters {
		crosses := (lset.Has(f.L.Rel) && rset.Has(f.R.Rel)) || (rset.Has(f.L.Rel) && lset.Has(f.R.Rel))
		if !crosses {
			continue
		}
		lo, err := colOffset(schema, f.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, f.R)
		if err != nil {
			return nil, err
		}
		preds = append(preds, ColPred{L: lo, R: ro, Op: f.Op, Off: f.Off})
	}
	return preds, nil
}

// colResidualPreds is residualPreds compiled to structured ColPreds: the
// secondary equi-join predicates become {CmpEQ, 0} entries, the
// cross-relation filters keep their operator and constant offset.
func (c *Compiler) colResidualPreds(p *relalg.Plan, schema []relalg.ColID) ([]ColPred, error) {
	var preds []ColPred
	lset, rset := p.Left.Expr, p.Right.Expr
	for pi, jp := range c.Q.Joins {
		if pi == p.Pred || !jp.Crosses(lset, rset) {
			continue
		}
		lo, err := colOffset(schema, jp.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, jp.R)
		if err != nil {
			return nil, err
		}
		preds = append(preds, ColPred{L: lo, R: ro, Op: relalg.CmpEQ})
	}
	for _, f := range c.Q.Filters {
		crosses := (lset.Has(f.L.Rel) && rset.Has(f.R.Rel)) || (rset.Has(f.L.Rel) && lset.Has(f.R.Rel))
		if !crosses {
			continue
		}
		lo, err := colOffset(schema, f.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, f.R)
		if err != nil {
			return nil, err
		}
		preds = append(preds, ColPred{L: lo, R: ro, Op: f.Op, Off: f.Off})
	}
	return preds, nil
}

// residualPreds compiles the join predicates and residual filters that
// first become checkable at this join (both sides present, not the primary
// equi-key).
func (c *Compiler) residualPreds(p *relalg.Plan, schema []relalg.ColID) ([]PredFn, error) {
	var preds []PredFn
	lset, rset := p.Left.Expr, p.Right.Expr
	for pi, jp := range c.Q.Joins {
		if pi == p.Pred || !jp.Crosses(lset, rset) {
			continue
		}
		lo, err := colOffset(schema, jp.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, jp.R)
		if err != nil {
			return nil, err
		}
		preds = append(preds, func(r Row) bool { return r[lo] == r[ro] })
	}
	for _, f := range c.Q.Filters {
		crosses := (lset.Has(f.L.Rel) && rset.Has(f.R.Rel)) || (rset.Has(f.L.Rel) && lset.Has(f.R.Rel))
		if !crosses {
			continue
		}
		lo, err := colOffset(schema, f.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, f.R)
		if err != nil {
			return nil, err
		}
		op, off := f.Op, f.Off
		preds = append(preds, func(r Row) bool { return op.Eval(r[lo], r[ro]+off) })
	}
	return preds, nil
}

func colOffset(schema []relalg.ColID, c relalg.ColID) (int, error) {
	for i, s := range schema {
		if s == c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: column %+v not in schema %+v", c, schema)
}
