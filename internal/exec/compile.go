package exec

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/relalg"
)

// RunStats accumulates actual output cardinalities per subexpression during
// execution. The adaptive layer compares them with the optimizer's
// estimates and feeds the ratios back as cardinality updates.
type RunStats struct {
	Cards map[relalg.RelSet]*int64
}

// Card returns the observed cardinality of a subexpression.
func (s *RunStats) Card(set relalg.RelSet) (int64, bool) {
	if p, ok := s.Cards[set]; ok {
		return *p, true
	}
	return 0, false
}

// Compiler turns a physical plan into an iterator tree over concrete data.
type Compiler struct {
	Q   *relalg.Query
	Cat *catalog.Catalog
	// Data overrides the row source per query relation; when nil (or when
	// it returns nil) the catalog table's rows are used. The stream layer
	// uses this to execute over window buffers.
	Data func(rel int) [][]int64
}

// Compile builds the iterator tree for plan, wiring a cardinality counter
// onto every scan and join operator, and applying the query's aggregation
// (if any) on top. It returns the root iterator and the stats collector.
func (c *Compiler) Compile(plan *relalg.Plan) (Iterator, *RunStats, error) {
	stats := &RunStats{Cards: map[relalg.RelSet]*int64{}}
	it, schema, err := c.compile(plan, stats)
	if err != nil {
		return nil, nil, err
	}
	if c.Q.Agg != nil {
		spec := AggSpecExec{CountAll: c.Q.Agg.CountAll}
		for _, col := range c.Q.Agg.GroupBy {
			off, err := colOffset(schema, col)
			if err != nil {
				return nil, nil, err
			}
			spec.GroupBy = append(spec.GroupBy, off)
		}
		for _, col := range c.Q.Agg.Sums {
			off, err := colOffset(schema, col)
			if err != nil {
				return nil, nil, err
			}
			spec.Sums = append(spec.Sums, off)
		}
		for _, col := range c.Q.Agg.CountDistinct {
			off, err := colOffset(schema, col)
			if err != nil {
				return nil, nil, err
			}
			spec.CountDistinct = append(spec.CountDistinct, off)
		}
		it = NewHashAgg(it, spec)
	}
	return it, stats, nil
}

func (c *Compiler) rows(rel int) ([][]int64, error) {
	if c.Data != nil {
		if rows := c.Data(rel); rows != nil {
			return rows, nil
		}
	}
	t, err := c.Cat.Table(c.Q.Rels[rel].Table)
	if err != nil {
		return nil, err
	}
	return t.Rows, nil
}

func (c *Compiler) tableArity(rel int) (int, error) {
	t, err := c.Cat.Table(c.Q.Rels[rel].Table)
	if err != nil {
		return 0, err
	}
	return len(t.ColNames), nil
}

// compile returns the iterator and its output schema (the ColID of every
// output column, in order).
func (c *Compiler) compile(p *relalg.Plan, stats *RunStats) (Iterator, []relalg.ColID, error) {
	switch p.Log {
	case relalg.LogScan:
		rows, err := c.rows(p.Rel)
		if err != nil {
			return nil, nil, err
		}
		arity, err := c.tableArity(p.Rel)
		if err != nil {
			return nil, nil, err
		}
		schema := make([]relalg.ColID, arity)
		for i := range schema {
			schema[i] = relalg.ColID{Rel: p.Rel, Off: i}
		}
		preds, err := c.scanPreds(p.Rel, schema)
		if err != nil {
			return nil, nil, err
		}
		var it Iterator = NewScan(rows, preds)
		if p.Prop.Kind == relalg.PropSorted {
			// Index-order (or clustered-order) retrieval: the
			// in-memory substitute is an explicit sort of the
			// filtered rows.
			off, err := colOffset(schema, p.Prop.Col)
			if err != nil {
				return nil, nil, err
			}
			it = NewSort(it, off)
		} else if p.Phy == relalg.PhyIndexScan {
			off, err := colOffset(schema, p.IdxCol)
			if err != nil {
				return nil, nil, err
			}
			it = NewSort(it, off)
		}
		return c.counted(it, p.Expr, stats), schema, nil

	case relalg.LogEnforce:
		child, schema, err := c.compile(p.Left, stats)
		if err != nil {
			return nil, nil, err
		}
		off, err := colOffset(schema, p.Prop.Col)
		if err != nil {
			return nil, nil, err
		}
		return NewSort(child, off), schema, nil

	case relalg.LogJoin:
		jp := c.Q.Joins[p.Pred]
		if p.Phy == relalg.PhyIndexNLJoin {
			return c.compileIndexNL(p, jp, stats)
		}
		left, ls, err := c.compile(p.Left, stats)
		if err != nil {
			return nil, nil, err
		}
		right, rs, err := c.compile(p.Right, stats)
		if err != nil {
			return nil, nil, err
		}
		schema := append(append([]relalg.ColID(nil), ls...), rs...)
		lcol, rcol := jp.L, jp.R
		if !p.Left.Expr.Has(lcol.Rel) {
			lcol, rcol = rcol, lcol
		}
		lk, err := colOffset(ls, lcol)
		if err != nil {
			return nil, nil, err
		}
		rk, err := colOffset(rs, rcol)
		if err != nil {
			return nil, nil, err
		}
		var it Iterator
		switch p.Phy {
		case relalg.PhyHashJoin:
			// Hash on the compound key of every cross equi-predicate;
			// only non-equi filters remain as residuals.
			lKeys, rKeys := []int{lk}, []int{rk}
			for pi, ojp := range c.Q.Joins {
				if pi == p.Pred || !ojp.Crosses(p.Left.Expr, p.Right.Expr) {
					continue
				}
				ol, or := ojp.L, ojp.R
				if !p.Left.Expr.Has(ol.Rel) {
					ol, or = or, ol
				}
				lo, err := colOffset(ls, ol)
				if err != nil {
					return nil, nil, err
				}
				ro, err := colOffset(rs, or)
				if err != nil {
					return nil, nil, err
				}
				lKeys = append(lKeys, lo)
				rKeys = append(rKeys, ro)
			}
			residual, err := c.filterPredsOnly(p, schema)
			if err != nil {
				return nil, nil, err
			}
			it = NewHashJoin(left, right, lKeys, rKeys, len(ls), residual)
		case relalg.PhyMergeJoin:
			residual, err := c.residualPreds(p, schema)
			if err != nil {
				return nil, nil, err
			}
			it = NewMergeJoin(left, right, lk, rk, residual)
		default:
			return nil, nil, fmt.Errorf("exec: unexpected join operator %v", p.Phy)
		}
		return c.counted(it, p.Expr, stats), schema, nil
	}
	return nil, nil, fmt.Errorf("exec: unknown logical operator %v", p.Log)
}

func (c *Compiler) compileIndexNL(p *relalg.Plan, jp relalg.JoinPred, stats *RunStats) (Iterator, []relalg.ColID, error) {
	// Plan convention (paper Table 1): left child is the indexed inner
	// (a single base relation), right child is the outer.
	inner := p.Left.Expr.SingleMember()
	innerArity, err := c.tableArity(inner)
	if err != nil {
		return nil, nil, err
	}
	innerSchema := make([]relalg.ColID, innerArity)
	for i := range innerSchema {
		innerSchema[i] = relalg.ColID{Rel: inner, Off: i}
	}
	innerRows, err := c.rows(inner)
	if err != nil {
		return nil, nil, err
	}
	innerPreds, err := c.scanPreds(inner, innerSchema)
	if err != nil {
		return nil, nil, err
	}
	innerCol, outerCol := jp.L, jp.R
	if innerCol.Rel != inner {
		innerCol, outerCol = outerCol, innerCol
	}
	index := BuildIndex(innerRows, innerCol.Off, innerPreds)

	outer, os, err := c.compile(p.Right, stats)
	if err != nil {
		return nil, nil, err
	}
	ok, err := colOffset(os, outerCol)
	if err != nil {
		return nil, nil, err
	}
	schema := append(append([]relalg.ColID(nil), innerSchema...), os...)
	residual, err := c.residualPreds(p, schema)
	if err != nil {
		return nil, nil, err
	}
	it := NewIndexNLJoin(outer, index, ok, innerArity, residual)
	return c.counted(it, p.Expr, stats), schema, nil
}

func (c *Compiler) counted(it Iterator, set relalg.RelSet, stats *RunStats) Iterator {
	n, ok := stats.Cards[set]
	if !ok {
		n = new(int64)
		stats.Cards[set] = n
	}
	return NewCounter(it, n)
}

// scanPreds compiles the local selection predicates of a relation against a
// schema.
func (c *Compiler) scanPreds(rel int, schema []relalg.ColID) ([]PredFn, error) {
	var preds []PredFn
	for _, pr := range c.Q.ScanPredsOf(rel) {
		off, err := colOffset(schema, pr.Col)
		if err != nil {
			return nil, err
		}
		op, val := pr.Op, pr.Val
		preds = append(preds, func(r Row) bool { return op.Eval(r[off], val) })
	}
	return preds, nil
}

// filterPredsOnly compiles just the non-equi residual filters crossing this
// join (used when all equi predicates are part of the hash key).
func (c *Compiler) filterPredsOnly(p *relalg.Plan, schema []relalg.ColID) ([]PredFn, error) {
	var preds []PredFn
	lset, rset := p.Left.Expr, p.Right.Expr
	for _, f := range c.Q.Filters {
		crosses := (lset.Has(f.L.Rel) && rset.Has(f.R.Rel)) || (rset.Has(f.L.Rel) && lset.Has(f.R.Rel))
		if !crosses {
			continue
		}
		lo, err := colOffset(schema, f.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, f.R)
		if err != nil {
			return nil, err
		}
		op, off := f.Op, f.Off
		preds = append(preds, func(r Row) bool { return op.Eval(r[lo], r[ro]+off) })
	}
	return preds, nil
}

// residualPreds compiles the join predicates and residual filters that
// first become checkable at this join (both sides present, not the primary
// equi-key).
func (c *Compiler) residualPreds(p *relalg.Plan, schema []relalg.ColID) ([]PredFn, error) {
	var preds []PredFn
	lset, rset := p.Left.Expr, p.Right.Expr
	for pi, jp := range c.Q.Joins {
		if pi == p.Pred || !jp.Crosses(lset, rset) {
			continue
		}
		lo, err := colOffset(schema, jp.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, jp.R)
		if err != nil {
			return nil, err
		}
		preds = append(preds, func(r Row) bool { return r[lo] == r[ro] })
	}
	for _, f := range c.Q.Filters {
		crosses := (lset.Has(f.L.Rel) && rset.Has(f.R.Rel)) || (rset.Has(f.L.Rel) && lset.Has(f.R.Rel))
		if !crosses {
			continue
		}
		lo, err := colOffset(schema, f.L)
		if err != nil {
			return nil, err
		}
		ro, err := colOffset(schema, f.R)
		if err != nil {
			return nil, err
		}
		op, off := f.Op, f.Off
		preds = append(preds, func(r Row) bool { return op.Eval(r[lo], r[ro]+off) })
	}
	return preds, nil
}

func colOffset(schema []relalg.ColID, c relalg.ColID) (int, error) {
	for i, s := range schema {
		if s == c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: column %+v not in schema %+v", c, schema)
}
