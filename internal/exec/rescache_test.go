package exec

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/rescache"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// statsEqual asserts two RunStats snapshots are byte-identical: same
// subexpression sets, same counts. This is the §5.4 soundness bar — the
// adaptive feedback loop must be provably unaffected by result caching.
func statsEqual(t *testing.T, name string, got, want map[relalg.RelSet]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: stats cover %d exprs, want %d", name, len(got), len(want))
	}
	for set, n := range want {
		if g, ok := got[set]; !ok || g != n {
			t.Fatalf("%s: cardinality of %v = %d (present=%v), want %d", name, set, g, ok, n)
		}
	}
}

// TestResultCacheSpoolProbeDifferential is the core spool/probe soundness
// gate, run over every workload query: a first cache-enabled execution
// (spooling) and a second (probing) must both reproduce the uncached result
// multiset AND the uncached RunStats byte for byte, at serial and parallel
// compilation. The probe run must actually hit — a silently cold cache would
// pass the differential while testing nothing.
func TestResultCacheSpoolProbeDifferential(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	for name, q := range tpch.Queries() {
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vr, err := volcano.Optimize(m, relalg.DefaultSpace())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fper := relalg.NewFingerprinter(q)
		cands := BuildCacheCandidates(q, vr.Plan, fper, 0)

		base := &Compiler{Q: q, Cat: cat}
		v, baseStats, err := base.CompileVec(vr.Plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		baseRows, err := DrainVec(v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := rowMultiset(baseRows)
		wantStats := baseStats.Snapshot()

		for _, par := range []int{1, 2} {
			cache := rescache.New(rescache.Options{MaxBytes: 64 << 20})
			for run, label := range []string{"spool", "probe"} {
				comp := &Compiler{Q: q, Cat: cat, Parallelism: par,
					Cache: cache, CacheCands: cands}
				v, stats, err := comp.CompileVec(vr.Plan)
				if err != nil {
					t.Fatalf("%s/%s par=%d: %v", name, label, par, err)
				}
				rows, err := DrainVec(v)
				if err != nil {
					t.Fatalf("%s/%s par=%d: %v", name, label, par, err)
				}
				if got := rowMultiset(rows); got != want {
					t.Fatalf("%s/%s par=%d: result multiset differs from uncached (%d vs %d rows)",
						name, label, par, len(rows), len(baseRows))
				}
				statsEqual(t, name+"/"+label, stats.Snapshot(), wantStats)
				met := cache.Metrics()
				if run == 0 && len(cands) > 0 && met.Stores == 0 {
					t.Fatalf("%s: spool run stored nothing despite %d candidates", name, len(cands))
				}
				if run == 1 && met.Stores > 0 && met.Hits == 0 {
					t.Fatalf("%s par=%d: probe run hit nothing despite %d stored entries",
						name, par, met.Entries)
				}
			}
		}
	}
}

// TestResultCacheCandidateShape pins the candidacy rules on a concrete
// plan: candidates come out in pre-order, refuse order-promising nodes, and
// record a count point for every counted node of their subtree.
func TestResultCacheCandidateShape(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	q := tpch.Q3S()
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	fper := relalg.NewFingerprinter(q)
	cands := BuildCacheCandidates(q, vr.Plan, fper, 0)
	if len(cands) == 0 {
		t.Fatal("no candidates on a 3-way join plan")
	}
	seen := map[string]bool{}
	for _, cand := range cands {
		if cand.Node.Prop.Kind != relalg.PropAny {
			t.Fatalf("candidate %v promises a physical property", cand.Expr)
		}
		if fper.AmbiguousOrder(cand.Expr) {
			t.Fatalf("candidate %v has ambiguous canonical order", cand.Expr)
		}
		if len(cand.CanonOrder) != cand.Expr.Count() {
			t.Fatalf("candidate %v: %d canonical members, want %d",
				cand.Expr, len(cand.CanonOrder), cand.Expr.Count())
		}
		if len(cand.Counts) == 0 || cand.Counts[0].Set != cand.Expr {
			t.Fatalf("candidate %v: count points must start with the root, got %+v",
				cand.Expr, cand.Counts)
		}
		if seen[cand.FP] {
			t.Fatalf("duplicate candidate fingerprint %q", cand.FP)
		}
		seen[cand.FP] = true
	}
	// Pre-order: a candidate containing another must come first.
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if cands[i].Expr.IsSubset(cands[j].Expr) && cands[i].Expr != cands[j].Expr {
				t.Fatalf("candidate %v precedes its superset %v", cands[i].Expr, cands[j].Expr)
			}
		}
	}
}

// TestResultCacheVersionPinning: a probe against entries pinned to an older
// data version must miss (and invalidate), and the following spool must
// repin the new version — end to end through the compiler.
func TestResultCacheVersionPinning(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	q := tpch.Q3S()
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	fper := relalg.NewFingerprinter(q)
	cands := BuildCacheCandidates(q, vr.Plan, fper, 0)
	cache := rescache.New(rescache.Options{MaxBytes: 64 << 20})

	run := func() string {
		comp := &Compiler{Q: q, Cat: cat, Cache: cache, CacheCands: cands}
		v, _, err := comp.CompileVec(vr.Plan)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := DrainVec(v)
		if err != nil {
			t.Fatal(err)
		}
		return rowMultiset(rows)
	}
	before := run()
	warm := cache.Metrics()
	if warm.Stores == 0 {
		t.Fatal("spool run stored nothing")
	}
	if run() != before {
		t.Fatal("warm probe changed the result")
	}
	if h := cache.Metrics().Hits; h == 0 {
		t.Fatal("second run did not probe-hit")
	}

	// Mutate the customer table: every cached entry over it must bypass.
	cust := cat.MustTable("customer")
	cust.Append(append([]int64(nil), cust.Rows[0]...))
	cust.Rows = cust.Rows[:len(cust.Rows)-1]
	cust.Analyze(0)

	hitsBefore := cache.Metrics().Hits
	after := run()
	met := cache.Metrics()
	if met.Invalidations == 0 {
		t.Fatal("no invalidation after Append+Analyze bumped the data version")
	}
	if after != before {
		t.Fatal("post-invalidation run (same logical data) changed the result")
	}
	// Entries not over customer (e.g. the orders filter scan) may still hit;
	// the join cores over customer must not have.
	_ = hitsBefore
	// And the re-spooled entries must now serve again.
	hitsMid := cache.Metrics().Hits
	if run() != before {
		t.Fatal("re-warmed probe changed the result")
	}
	if cache.Metrics().Hits == hitsMid {
		t.Fatal("re-spooled entries never served")
	}
}
