package exec

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

// ---- spill differential: TPC-H under a tight budget ----

// tightBudget forces grace-hash spilling on every TPC-H join and aggregation
// at SF 0.002 while leaving enough headroom for clean per-partition loads.
const tightBudget = 96 << 10

// TestTPCHSpillDifferential executes every TPC-H workload query with an
// unbounded baseline and then under a tight memory budget at every
// parallelism level, asserting identical result multisets and identical
// RunStats feedback cardinalities — the spill-mode extension of
// TestTPCHRowVecDifferential's parallelism sweep. It additionally asserts
// that the sweep really spilled (the differential is meaningless otherwise;
// CI greps for its run) and that, whenever no operator was forced past the
// budget, tracked peak memory stayed under it.
func TestTPCHSpillDifferential(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	var totalSpilled int64
	for name, q := range tpch.Queries() {
		m, err := cost.NewModel(q, cat, cost.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vr, err := volcano.Optimize(m, relalg.DefaultSpace())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		base := &Compiler{Q: q, Cat: cat}
		v, baseStats, err := base.CompileVec(vr.Plan)
		if err != nil {
			t.Fatalf("%s: compile unbounded: %v", name, err)
		}
		baseRows, err := DrainVec(v)
		if err != nil {
			t.Fatalf("%s: unbounded path: %v", name, err)
		}
		want := rowMultiset(baseRows)

		for _, par := range []int{1, 2, 4} {
			comp := &Compiler{Q: q, Cat: cat, Parallelism: par, MemBudgetBytes: tightBudget}
			v, stats, err := comp.CompileVec(vr.Plan)
			if err != nil {
				t.Fatalf("%s: compile budgeted (par=%d): %v", name, par, err)
			}
			gotRows, err := DrainVec(v)
			if err != nil {
				t.Fatalf("%s: budgeted path (par=%d): %v", name, par, err)
			}
			if got := rowMultiset(gotRows); got != want {
				t.Fatalf("%s (par=%d, budget=%d): result multiset differs: %d budgeted rows vs %d unbounded",
					name, par, tightBudget, len(gotRows), len(baseRows))
			}
			if len(stats.Cards) != len(baseStats.Cards) {
				t.Fatalf("%s (par=%d): stats cover %d exprs, unbounded %d",
					name, par, len(stats.Cards), len(baseStats.Cards))
			}
			for set, n := range baseStats.Cards {
				got, ok := stats.Card(set)
				if !ok || got != *n {
					t.Fatalf("%s (par=%d): cardinality of %v = %d, unbounded %d",
						name, par, set, got, *n)
				}
			}
			parts, bytes, _ := comp.Mem.SpillStats()
			totalSpilled += parts
			if comp.Mem.Overage() == 0 && comp.Mem.Peak() > tightBudget {
				t.Fatalf("%s (par=%d): peak %d exceeds budget %d with zero overage (%d partitions, %d bytes spilled)",
					name, par, comp.Mem.Peak(), tightBudget, parts, bytes)
			}
		}
	}
	if totalSpilled == 0 {
		t.Fatal("budget sweep never spilled: the differential exercised nothing")
	}
}

// ---- deterministic synthetic spill tests ----

func spillJoinInputs(buildN, probeN, keyMod int) (build, probe [][]int64) {
	rng := rand.New(rand.NewSource(3))
	build = make([][]int64, buildN)
	for i := range build {
		build[i] = []int64{int64(i % keyMod), rng.Int63n(1000)}
	}
	probe = make([][]int64, probeN)
	for i := range probe {
		probe[i] = []int64{int64(i % keyMod), int64(10000 + i)}
	}
	return build, probe
}

func runTrackedJoin(t *testing.T, build, probe [][]int64, budget int64) ([]Row, *MemTracker) {
	t.Helper()
	j := NewVecHashJoin(NewVecScanRows(build, ScanFilter{}), NewVecScanRows(probe, ScanFilter{}),
		[]int{0}, []int{0}, nil, 1)
	tr := NewMemTracker(budget)
	j.(*vecHashJoinOp).mem = tr.Child("hashjoin")
	out, err := DrainVec(j)
	if err != nil {
		t.Fatalf("budget=%d: %v", budget, err)
	}
	return out, tr
}

// TestSpillJoinForcedRecursion drives a uniform-key join through recursive
// repartitioning: the build side exceeds the budget even after the level-0
// split, so every partition recurses one level before fitting. Results must
// match the unbounded join, the recursion must be recorded, and — since
// every reservation on this path can be honored — tracked peak memory must
// stay under the budget with zero overage.
func TestSpillJoinForcedRecursion(t *testing.T) {
	build, probe := spillJoinInputs(65536, 512, 1000)
	want, _ := runTrackedJoin(t, build, probe, 0)

	const budget = 32 << 10
	got, tr := runTrackedJoin(t, build, probe, budget)
	if rowMultiset(got) != rowMultiset(want) {
		t.Fatalf("spilled join multiset differs: %d rows vs %d unbounded", len(got), len(want))
	}
	parts, bytes, recs := tr.SpillStats()
	if parts == 0 || bytes == 0 {
		t.Fatalf("join never spilled under %d-byte budget", budget)
	}
	if recs == 0 {
		t.Fatalf("expected recursive repartitioning (%d partitions, %d bytes, 0 recursions)", parts, bytes)
	}
	if over := tr.Overage(); over != 0 {
		t.Fatalf("unexpected overage %d on a fully spillable join", over)
	}
	if tr.Peak() > budget {
		t.Fatalf("tracked peak %d exceeds budget %d", tr.Peak(), budget)
	}
}

// TestSpillJoinSkewChunkFallback joins a build side where every row carries
// the same key: the single partition survives every recursion level, so the
// driver must fall back to block-chunked processing (build chunks × probe
// re-reads) and still emit each matching pair exactly once within budget.
func TestSpillJoinSkewChunkFallback(t *testing.T) {
	build := make([][]int64, 4096)
	for i := range build {
		build[i] = []int64{42, int64(i)}
	}
	probe := [][]int64{{42, 1}, {42, 2}, {7, 3}}
	want, _ := runTrackedJoin(t, build, probe, 0)
	if len(want) != 2*len(build) {
		t.Fatalf("unbounded skew join produced %d rows, want %d", len(want), 2*len(build))
	}

	const budget = 64 << 10
	got, tr := runTrackedJoin(t, build, probe, budget)
	if rowMultiset(got) != rowMultiset(want) {
		t.Fatalf("chunked skew join multiset differs: %d rows vs %d unbounded", len(got), len(want))
	}
	_, _, recs := tr.SpillStats()
	if recs < maxSpillLevel {
		t.Fatalf("skewed key recursed only %d times, want %d before the chunk fallback", recs, maxSpillLevel)
	}
	if over := tr.Overage(); over != 0 {
		t.Fatalf("unexpected overage %d in chunk fallback", over)
	}
	if tr.Peak() > budget {
		t.Fatalf("tracked peak %d exceeds budget %d", tr.Peak(), budget)
	}
}

// TestSpillAggMatchesUnbounded pre-aggregates a high-cardinality group set
// under a budget small enough to force several partial dumps and verifies
// the ordered output — not just the multiset — is byte-identical to the
// unbounded operator: spilled aggregation merges partials per partition and
// restores the deterministic global order with one final sort.
func TestSpillAggMatchesUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	input := make([][]int64, 60000)
	for i := range input {
		input[i] = []int64{int64(rng.Intn(8000)), int64(rng.Intn(4)), rng.Int63n(100)}
	}
	spec := AggSpecExec{GroupBy: []int{0, 1}, Sums: []int{2}, CountAll: true}

	run := func(budget int64) ([]Row, *MemTracker) {
		a := NewVecHashAgg(NewVecScanRows(input, ScanFilter{}), spec)
		tr := NewMemTracker(budget)
		a.(*vecHashAggOp).mem = tr.Child("agg")
		out, err := DrainVec(a)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		return out, tr
	}

	want, _ := run(0)
	const budget = 128 << 10
	got, tr := run(budget)
	if len(got) != len(want) {
		t.Fatalf("spilled agg emitted %d groups, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("row %d differs: %v vs unbounded %v", i, got[i], want[i])
			}
		}
	}
	parts, _, _ := tr.SpillStats()
	if parts == 0 {
		t.Fatalf("aggregation never spilled under %d-byte budget", budget)
	}
	// The final output columns are Force-charged (the consumer needs them
	// materialized), so only the pre-output phase is asserted via overage
	// accounting: overage must equal zero unless the output itself overflowed.
	if out := colBytes(4, len(want)); tr.Overage() > out {
		t.Fatalf("overage %d exceeds the final output size %d", tr.Overage(), out)
	}
}

// TestMemTrackerBasics pins the Reserve/Force/Release semantics the spill
// operators rely on.
func TestMemTrackerBasics(t *testing.T) {
	root := NewMemTracker(100)
	a, b := root.Child("a"), root.Child("b")
	if !a.Reserve(60) || !b.Reserve(40) {
		t.Fatal("reservations within the budget must succeed")
	}
	if b.Reserve(1) {
		t.Fatal("reservation past the budget must fail")
	}
	if root.Used() != 100 || root.Peak() != 100 {
		t.Fatalf("used=%d peak=%d, want 100/100", root.Used(), root.Peak())
	}
	b.Force(10)
	if root.Overage() != 10 {
		t.Fatalf("overage = %d, want 10", root.Overage())
	}
	a.ReleaseAll()
	b.ReleaseAll()
	if root.Used() != 0 {
		t.Fatalf("used = %d after ReleaseAll, want 0", root.Used())
	}
	if root.Peak() != 110 {
		t.Fatalf("peak = %d, want 110", root.Peak())
	}
	var nilTr *MemTracker
	if !nilTr.Reserve(1<<40) || nilTr.Bounded() {
		t.Fatal("nil tracker must be unbounded")
	}
	nilTr.Force(1)
	nilTr.Release(1)
	nilTr.ReleaseAll()
}

// ---- spill benchmarks (CI smoke) ----

func benchSpillJoin(b *testing.B, budget int64) {
	build, probe := spillJoinInputs(100000, 20000, 5000)
	b.ResetTimer()
	var peak int64
	for i := 0; i < b.N; i++ {
		j := NewVecHashJoin(NewVecScanRows(build, ScanFilter{}), NewVecScanRows(probe, ScanFilter{}),
			[]int{0}, []int{0}, nil, 1)
		tr := NewMemTracker(budget)
		j.(*vecHashJoinOp).mem = tr.Child("hashjoin")
		n, err := CountVec(j)
		if err != nil {
			b.Fatal(err)
		}
		_ = n
		peak = tr.Peak()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
}

func BenchmarkSpillJoin(b *testing.B) {
	b.Run("unbounded", func(b *testing.B) { benchSpillJoin(b, 0) })
	b.Run("spill", func(b *testing.B) { benchSpillJoin(b, 256<<10) })
}

func benchSpillAgg(b *testing.B, budget int64) {
	rng := rand.New(rand.NewSource(5))
	input := make([][]int64, 200000)
	for i := range input {
		input[i] = []int64{int64(rng.Intn(30000)), rng.Int63n(100)}
	}
	spec := AggSpecExec{GroupBy: []int{0}, Sums: []int{1}, CountAll: true}
	b.ResetTimer()
	var peak int64
	for i := 0; i < b.N; i++ {
		a := NewVecHashAgg(NewVecScanRows(input, ScanFilter{}), spec)
		tr := NewMemTracker(budget)
		a.(*vecHashAggOp).mem = tr.Child("agg")
		if _, err := CountVec(a); err != nil {
			b.Fatal(err)
		}
		peak = tr.Peak()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
}

func BenchmarkSpillAgg(b *testing.B) {
	b.Run("unbounded", func(b *testing.B) { benchSpillAgg(b, 0) })
	b.Run("spill", func(b *testing.B) { benchSpillAgg(b, 512<<10) })
}
