package exec

import (
	"sync"
	"sync/atomic"
)

// morselSize is the number of base-table rows a scan worker claims at a
// time. One atomic fetch-add per morsel keeps coordination overhead
// negligible while still load-balancing skewed predicate costs.
const morselSize = BatchSize

// minParallelRows is the smallest base table worth parallelizing: below
// this, worker startup dominates the scan itself.
const minParallelRows = 4 * morselSize

// rowDrainer is implemented by operators that can materialize their entire
// output into per-worker buffers without going through the batch exchange.
// drainVecRows uses it as a fast path, so blocking consumers (hash-join
// build, merge join, sort) drain parallel scans at full worker parallelism
// instead of serializing every batch through one channel consumer.
type rowDrainer interface {
	drainRows() ([][]int64, error)
}

type parallelScanOp struct {
	rows    [][]int64
	filter  ScanFilter
	workers int

	cursor  atomic.Int64
	ch      chan *Batch
	quit    chan struct{}
	wg      sync.WaitGroup
	closed  bool
	selFree chan []int
	last    *Batch // batch handed out by the previous Next call
}

// NewParallelScan returns a morsel-driven parallel filtering scan: workers
// claim fixed-size morsels of the base table off a shared atomic cursor,
// filter them in place, and feed the resulting batches through an exchange
// channel to the single consumer calling Next. Each emitted batch owns its
// selection vector until the consumer asks for the next batch, at which
// point the vector returns to a free list for reuse by the workers.
func NewParallelScan(rows [][]int64, filter ScanFilter, workers int) VecIterator {
	if workers < 1 {
		workers = 1
	}
	if max := (len(rows) + morselSize - 1) / morselSize; workers > max {
		workers = max
	}
	return &parallelScanOp{rows: rows, filter: filter, workers: workers}
}

func (s *parallelScanOp) Open() error {
	s.cursor.Store(0)
	s.closed = false
	s.ch = make(chan *Batch, 2*s.workers)
	s.quit = make(chan struct{})
	// Sized so a put never blocks: one vector per in-flight batch (channel
	// capacity) plus one per worker and the consumer's retained batch.
	s.selFree = make(chan []int, 3*s.workers+1)
	s.last = nil
	s.wg.Add(s.workers)
	for w := 0; w < s.workers; w++ {
		go s.worker()
	}
	go func() {
		s.wg.Wait()
		close(s.ch)
	}()
	return nil
}

// selBuf fetches a recycled selection buffer, or allocates one.
func (s *parallelScanOp) selBuf() []int {
	select {
	case buf := <-s.selFree:
		return buf
	default:
		return make([]int, 0, morselSize)
	}
}

func (s *parallelScanOp) worker() {
	defer s.wg.Done()
	var sel []int
	for {
		lo := int(s.cursor.Add(1)-1) * morselSize
		if lo >= len(s.rows) {
			return
		}
		hi := lo + morselSize
		if hi > len(s.rows) {
			hi = len(s.rows)
		}
		chunk := s.rows[lo:hi]
		b := &Batch{Rows: chunk}
		if !s.filter.Empty() {
			if sel == nil {
				sel = s.selBuf()
			}
			sel = s.filter.Sel(chunk, sel)
			if len(sel) == 0 {
				continue // keep sel for the next morsel
			}
			b.Sel = sel
			sel = nil // ownership moves to the batch until recycled
		}
		select {
		case s.ch <- b:
		case <-s.quit:
			return
		}
	}
}

func (s *parallelScanOp) Next() (*Batch, error) {
	if s.last != nil && s.last.Sel != nil {
		// The consumer is done with the previous batch; its selection
		// vector goes back to the workers.
		select {
		case s.selFree <- s.last.Sel:
		default:
		}
	}
	s.last = nil
	b, ok := <-s.ch
	if !ok {
		return nil, nil
	}
	s.last = b
	return b, nil
}

func (s *parallelScanOp) Close() error {
	if s.ch == nil || s.closed {
		return nil
	}
	s.closed = true
	close(s.quit)
	// Unblock any worker parked on a send, then wait for them all.
	for range s.ch {
	}
	s.wg.Wait()
	s.last = nil
	return nil
}

// drainRows materializes the filtered scan without the exchange channel:
// workers claim morsels off a private cursor and append surviving row
// references to per-worker buffers, concatenated once at the end. This is
// the build-side path of the parallel pipeline — the whole drain runs at
// worker parallelism with zero cross-worker coordination beyond the cursor.
func (s *parallelScanOp) drainRows() ([][]int64, error) {
	var cursor atomic.Int64
	bufs := make([][][]int64, s.workers)
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out [][]int64
			sel := make([]int, 0, morselSize)
			for {
				lo := int(cursor.Add(1)-1) * morselSize
				if lo >= len(s.rows) {
					break
				}
				hi := lo + morselSize
				if hi > len(s.rows) {
					hi = len(s.rows)
				}
				chunk := s.rows[lo:hi]
				if s.filter.Empty() {
					out = append(out, chunk...)
					continue
				}
				sel = s.filter.Sel(chunk, sel)
				for _, i := range sel {
					out = append(out, chunk[i])
				}
			}
			bufs[w] = out
		}(w)
	}
	wg.Wait()
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	rows := make([][]int64, 0, total)
	for _, b := range bufs {
		rows = append(rows, b...)
	}
	return rows, nil
}
