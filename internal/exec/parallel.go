package exec

import (
	"sync"
	"sync/atomic"
)

// morselSize is the number of base-table rows a scan worker claims at a
// time. One atomic fetch-add per morsel keeps coordination overhead
// negligible while still load-balancing skewed predicate costs.
const morselSize = BatchSize

// minParallelRows is the smallest base table worth parallelizing: below
// this, worker startup dominates the scan itself.
const minParallelRows = 4 * morselSize

type parallelScanOp struct {
	data    colData
	filter  ScanFilter
	workers int

	cursor atomic.Int64
	ch     chan *Batch
	quit   chan struct{}
	wg     sync.WaitGroup
	closed bool
	// Free lists mirroring each other: recycled selection vectors for the
	// workers and recycled Batch shells (struct + column-header slice) for
	// the exchange. Batches carry zero-copy column windows, so the shells
	// and sel vectors are the only per-batch state to pool.
	selFree   chan []int
	batchFree chan *Batch
	last      *Batch // batch handed out by the previous Next call
}

// NewParallelScan returns a morsel-driven parallel filtering scan over
// column-major data: workers claim fixed-size morsels off a shared atomic
// cursor, compute the selection vector with the columnar kernels, and feed
// zero-copy column-window batches through an exchange channel to the single
// consumer calling Next. Each emitted batch owns its shell and selection
// vector until the consumer asks for the next batch, at which point both
// return to free lists for reuse by the workers.
func NewParallelScan(cols [][]int64, n int, filter ScanFilter, workers int) VecIterator {
	if workers < 1 {
		workers = 1
	}
	if max := (n + morselSize - 1) / morselSize; workers > max {
		workers = max
	}
	return &parallelScanOp{data: colData{cols: cols, n: n}, filter: filter, workers: workers}
}

func (s *parallelScanOp) Open() error {
	s.cursor.Store(0)
	s.closed = false
	s.ch = make(chan *Batch, 2*s.workers)
	s.quit = make(chan struct{})
	// Sized so a put never blocks: one entry per in-flight batch (channel
	// capacity) plus one per worker and the consumer's retained batch.
	s.selFree = make(chan []int, 3*s.workers+1)
	s.batchFree = make(chan *Batch, 3*s.workers+1)
	s.last = nil
	s.wg.Add(s.workers)
	for w := 0; w < s.workers; w++ {
		go s.worker()
	}
	go func() {
		s.wg.Wait()
		close(s.ch)
	}()
	return nil
}

// selBuf fetches a recycled selection buffer, or allocates one.
func (s *parallelScanOp) selBuf() []int {
	select {
	case buf := <-s.selFree:
		return buf
	default:
		return make([]int, 0, morselSize)
	}
}

// batchShell fetches a recycled Batch shell, or allocates one.
func (s *parallelScanOp) batchShell() *Batch {
	select {
	case b := <-s.batchFree:
		return b
	default:
		return &Batch{Cols: make([][]int64, 0, s.data.width())}
	}
}

func (s *parallelScanOp) worker() {
	defer s.wg.Done()
	var sel []int
	for {
		lo := int(s.cursor.Add(1)-1) * morselSize
		if lo >= s.data.n {
			return
		}
		hi := lo + morselSize
		if hi > s.data.n {
			hi = s.data.n
		}
		b := s.batchShell()
		b.Cols = s.data.window(b.Cols, lo, hi)
		b.N = hi - lo
		b.Sel = nil
		if !s.filter.Empty() {
			if sel == nil {
				sel = s.selBuf()
			}
			sel = s.filter.SelCols(b.Cols, b.N, sel)
			if len(sel) == 0 {
				// Recycle the shell; keep sel for the next morsel.
				select {
				case s.batchFree <- b:
				default:
				}
				continue
			}
			b.Sel = sel
			sel = nil // ownership moves to the batch until recycled
		}
		select {
		case s.ch <- b:
		case <-s.quit:
			return
		}
	}
}

func (s *parallelScanOp) Next() (*Batch, error) {
	if s.last != nil {
		// The consumer is done with the previous batch; its selection
		// vector and shell go back to the workers.
		if s.last.Sel != nil {
			select {
			case s.selFree <- s.last.Sel:
			default:
			}
			s.last.Sel = nil
		}
		select {
		case s.batchFree <- s.last:
		default:
		}
	}
	s.last = nil
	b, ok := <-s.ch
	if !ok {
		return nil, nil
	}
	s.last = b
	return b, nil
}

func (s *parallelScanOp) Close() error {
	if s.ch == nil || s.closed {
		return nil
	}
	s.closed = true
	close(s.quit)
	// Unblock any worker parked on a send, then wait for them all.
	for range s.ch {
	}
	s.wg.Wait()
	s.last = nil
	return nil
}

// drainCols materializes the filtered scan without the exchange channel:
// workers claim morsels off a private cursor and append surviving rows
// column-wise to per-worker buffers, concatenated once at the end. This is
// the build-side path of the parallel pipeline — the whole drain runs at
// worker parallelism with zero cross-worker coordination beyond the cursor.
func (s *parallelScanOp) drainCols() (colData, error) {
	var cursor atomic.Int64
	bufs := make([]colData, s.workers)
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := colData{cols: make([][]int64, s.data.width())}
			sel := make([]int, 0, morselSize)
			var window [][]int64
			for {
				lo := int(cursor.Add(1)-1) * morselSize
				if lo >= s.data.n {
					break
				}
				hi := lo + morselSize
				if hi > s.data.n {
					hi = s.data.n
				}
				window = s.data.window(window, lo, hi)
				if s.filter.Empty() {
					out.appendSel(window, hi-lo, nil)
					continue
				}
				sel = s.filter.SelCols(window, hi-lo, sel)
				out.appendSel(window, hi-lo, sel)
			}
			bufs[w] = out
		}(w)
	}
	wg.Wait()
	var out colData
	for _, b := range bufs {
		out.appendFrom(b)
	}
	return out, nil
}
