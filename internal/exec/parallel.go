package exec

import (
	"sync"
	"sync/atomic"
)

// morselSize is the number of base-table rows a scan worker claims at a
// time. One atomic fetch-add per morsel keeps coordination overhead
// negligible while still load-balancing skewed predicate costs.
const morselSize = BatchSize

// minParallelRows is the smallest base table worth parallelizing: below
// this, worker startup dominates the scan itself.
const minParallelRows = 4 * morselSize

type parallelScanOp struct {
	rows    [][]int64
	filter  ScanFilter
	workers int

	cursor atomic.Int64
	ch     chan *Batch
	quit   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewParallelScan returns a morsel-driven parallel filtering scan: workers
// claim fixed-size morsels of the base table off a shared atomic cursor,
// filter them in place, and feed the resulting batches through an exchange
// channel to the single consumer calling Next. Each emitted batch owns its
// selection vector, so batches from different workers never alias.
func NewParallelScan(rows [][]int64, filter ScanFilter, workers int) VecIterator {
	if workers < 1 {
		workers = 1
	}
	if max := (len(rows) + morselSize - 1) / morselSize; workers > max {
		workers = max
	}
	return &parallelScanOp{rows: rows, filter: filter, workers: workers}
}

func (s *parallelScanOp) Open() error {
	s.cursor.Store(0)
	s.closed = false
	s.ch = make(chan *Batch, 2*s.workers)
	s.quit = make(chan struct{})
	s.wg.Add(s.workers)
	for w := 0; w < s.workers; w++ {
		go s.worker()
	}
	go func() {
		s.wg.Wait()
		close(s.ch)
	}()
	return nil
}

func (s *parallelScanOp) worker() {
	defer s.wg.Done()
	for {
		lo := int(s.cursor.Add(1)-1) * morselSize
		if lo >= len(s.rows) {
			return
		}
		hi := lo + morselSize
		if hi > len(s.rows) {
			hi = len(s.rows)
		}
		chunk := s.rows[lo:hi]
		b := &Batch{Rows: chunk}
		if !s.filter.Empty() {
			sel := s.filter.Sel(chunk, make([]int, 0, len(chunk)))
			if len(sel) == 0 {
				continue
			}
			b.Sel = sel
		}
		select {
		case s.ch <- b:
		case <-s.quit:
			return
		}
	}
}

func (s *parallelScanOp) Next() (*Batch, error) {
	b, ok := <-s.ch
	if !ok {
		return nil, nil
	}
	return b, nil
}

func (s *parallelScanOp) Close() error {
	if s.ch == nil || s.closed {
		return nil
	}
	s.closed = true
	close(s.quit)
	// Unblock any worker parked on a send, then wait for them all.
	for range s.ch {
	}
	s.wg.Wait()
	return nil
}
