package exec

import "errors"

// BatchSize is the fixed batch capacity of the vectorized executor. Batches
// are row-chunked: a window of up to BatchSize rows plus an optional
// selection vector, so leaf scans hand out zero-copy windows over the base
// table and predicates only ever touch the selection vector.
const BatchSize = 1024

// Batch is one unit of vectorized data flow.
//
// Ownership contract: the row slices reachable through Row(i) are immutable
// and may be retained by consumers indefinitely (they alias either base
// table storage or freshly allocated output rows). The Batch struct itself,
// its Rows header and its Sel vector are owned by the producer and may be
// reused as soon as the consumer asks for the next batch — consumers must
// copy row references out, never the Batch, Rows or Sel.
type Batch struct {
	Rows [][]int64
	Sel  []int // indices of live rows in Rows; nil means all rows are live
}

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Rows)
}

// Row returns the i-th live row.
func (b *Batch) Row(i int) Row {
	if b.Sel != nil {
		return Row(b.Rows[b.Sel[i]])
	}
	return Row(b.Rows[i])
}

// VecIterator is the batch-at-a-time (vectorized Volcano) operator
// interface. Next returns nil at end of stream.
type VecIterator interface {
	// Open prepares the operator (builds hash tables, sorts inputs,
	// launches scan workers).
	Open() error
	// Next returns the next batch, or nil at end of stream.
	Next() (*Batch, error)
	// Close releases operator state.
	Close() error
}

// DrainVec runs a vectorized iterator to completion and returns all rows.
func DrainVec(v VecIterator) ([]Row, error) {
	if err := v.Open(); err != nil {
		return nil, errors.Join(err, v.Close())
	}
	var out []Row
	for {
		b, err := v.Next()
		if err != nil {
			return nil, errors.Join(err, v.Close())
		}
		if b == nil {
			break
		}
		for i, n := 0, b.Len(); i < n; i++ {
			out = append(out, b.Row(i))
		}
	}
	return out, v.Close()
}

// CountVec runs a vectorized iterator to completion and returns the row
// count without retaining rows.
func CountVec(v VecIterator) (int64, error) {
	if err := v.Open(); err != nil {
		return 0, errors.Join(err, v.Close())
	}
	var n int64
	for {
		b, err := v.Next()
		if err != nil {
			return n, errors.Join(err, v.Close())
		}
		if b == nil {
			break
		}
		n += int64(b.Len())
	}
	return n, v.Close()
}

// ---- row compatibility shim ----

type vecRowIter struct {
	v VecIterator
	b *Batch
	i int
}

// NewRowIterator adapts a vectorized operator tree to the row-at-a-time
// Iterator interface, so Drain/Count and every legacy consumer keep working
// on top of the batch executor.
func NewRowIterator(v VecIterator) Iterator { return &vecRowIter{v: v} }

func (r *vecRowIter) Open() error { return r.v.Open() }

func (r *vecRowIter) Next() (Row, bool, error) {
	for {
		if r.b != nil && r.i < r.b.Len() {
			row := r.b.Row(r.i)
			r.i++
			return row, true, nil
		}
		b, err := r.v.Next()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		r.b, r.i = b, 0
	}
}

func (r *vecRowIter) Close() error { return r.v.Close() }

// rowAlloc carves output rows out of BatchSize-rows chunks, amortizing one
// allocation across a whole output batch. Carved rows are never reused, so
// consumers may retain them.
type rowAlloc struct {
	buf []int64
}

func (a *rowAlloc) row(w int) Row {
	if len(a.buf) < w {
		n := BatchSize * w
		if n < w {
			n = w
		}
		a.buf = make([]int64, n)
	}
	r := Row(a.buf[0:0:w])
	a.buf = a.buf[w:]
	return r
}

// ---- vectorized scan ----

type vecScanOp struct {
	rows   [][]int64
	filter ScanFilter
	pos    int
	batch  Batch
	sel    []int
}

// NewVecScan returns a serial vectorized filtering scan over materialized
// rows: each batch is a zero-copy window of the input with a selection
// vector for the surviving rows. Structured conditions in the filter are
// evaluated with per-batch kernels (one operator dispatch per batch).
func NewVecScan(rows [][]int64, filter ScanFilter) VecIterator {
	return &vecScanOp{rows: rows, filter: filter}
}

func (s *vecScanOp) Open() error { s.pos = 0; return nil }

func (s *vecScanOp) Next() (*Batch, error) {
	for s.pos < len(s.rows) {
		end := s.pos + BatchSize
		if end > len(s.rows) {
			end = len(s.rows)
		}
		chunk := s.rows[s.pos:end]
		s.pos = end
		if s.filter.Empty() {
			s.batch = Batch{Rows: chunk}
			return &s.batch, nil
		}
		if s.sel == nil {
			s.sel = make([]int, 0, BatchSize)
		}
		s.sel = s.filter.Sel(chunk, s.sel)
		if len(s.sel) == 0 {
			continue
		}
		s.batch = Batch{Rows: chunk, Sel: s.sel}
		return &s.batch, nil
	}
	return nil, nil
}

func (s *vecScanOp) Close() error { return nil }

// ---- vectorized projection ----

type vecProjectOp struct {
	in   VecIterator
	cols []int
	batchEmitter
}

// NewVecProject returns vectorized column projection.
func NewVecProject(in VecIterator, cols []int) VecIterator {
	return &vecProjectOp{in: in, cols: cols}
}

func (p *vecProjectOp) Open() error { return p.in.Open() }

func (p *vecProjectOp) Next() (*Batch, error) {
	b, err := p.in.Next()
	if err != nil || b == nil {
		return nil, err
	}
	out := p.rows[:0]
	for i, n := 0, b.Len(); i < n; i++ {
		r := b.Row(i)
		o := p.alloc.row(len(p.cols))
		for _, c := range p.cols {
			o = append(o, r[c])
		}
		out = append(out, o)
	}
	return p.flush(out), nil
}

func (p *vecProjectOp) Close() error { return p.in.Close() }

// ---- vectorized sort ----

type vecSortOp struct {
	in    VecIterator
	col   int
	rows  [][]int64
	pos   int
	batch Batch
}

// NewVecSort materializes and sorts its input by the given column, emitting
// dense zero-copy batches of the sorted run.
func NewVecSort(in VecIterator, col int) VecIterator { return &vecSortOp{in: in, col: col} }

func (s *vecSortOp) Open() error {
	rows, err := drainVecRows(s.in)
	if err != nil {
		return err
	}
	sortRowsStable(rows, s.col)
	s.rows = rows
	s.pos = 0
	return nil
}

func (s *vecSortOp) Next() (*Batch, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(s.rows) {
		end = len(s.rows)
	}
	s.batch = Batch{Rows: s.rows[s.pos:end]}
	s.pos = end
	return &s.batch, nil
}

func (s *vecSortOp) Close() error { s.rows = nil; return nil }

// ---- vectorized cardinality counter ----

type vecCounterOp struct {
	in VecIterator
	n  *int64
}

// NewVecCounter wraps a vectorized iterator and accumulates its output
// cardinality into n. The counter sits above any exchange, so counts stay
// exact (and race-free) under morsel-driven parallel scans.
func NewVecCounter(in VecIterator, n *int64) VecIterator { return &vecCounterOp{in: in, n: n} }

func (c *vecCounterOp) Open() error { return c.in.Open() }

func (c *vecCounterOp) Next() (*Batch, error) {
	b, err := c.in.Next()
	if b != nil {
		*c.n += int64(b.Len())
	}
	return b, err
}

func (c *vecCounterOp) Close() error { return c.in.Close() }

// drainRows forwards the parallel drain fast path through the counter,
// keeping the counted cardinality exact: the materialized row count is by
// definition the operator's output cardinality.
func (c *vecCounterOp) drainRows() ([][]int64, error) {
	rows, err := drainVecRows(c.in)
	*c.n += int64(len(rows))
	return rows, err
}

// drainVecRows opens in, collects every live row reference and closes it —
// the materializing primitive shared by sort, merge join, hash agg and the
// pipeline's build sides. Sources that support it (parallel scans, possibly
// under counters) are drained via rowDrainer at full worker parallelism
// instead of through the single-consumer exchange.
func drainVecRows(in VecIterator) ([][]int64, error) {
	if d, ok := in.(rowDrainer); ok {
		return d.drainRows()
	}
	if err := in.Open(); err != nil {
		return nil, errors.Join(err, in.Close())
	}
	var rows [][]int64
	for {
		b, err := in.Next()
		if err != nil {
			return nil, errors.Join(err, in.Close())
		}
		if b == nil {
			break
		}
		if b.Sel == nil {
			rows = append(rows, b.Rows...)
		} else {
			for _, i := range b.Sel {
				rows = append(rows, b.Rows[i])
			}
		}
	}
	return rows, in.Close()
}
