package exec

import "errors"

// BatchSize is the fixed batch capacity of the vectorized executor. Batches
// are column-major: up to BatchSize rows held as one contiguous []int64 per
// column, plus an optional selection vector, so leaf scans hand out
// zero-copy column windows over the base table and predicate/join/agg
// kernels run tight loops over contiguous typed slices.
const BatchSize = 1024

// Batch is one unit of vectorized data flow, laid out column-major:
// Cols[c][i] is column c of row i, 0 <= i < N. Sel, when non-nil, lists the
// live row indices in ascending order; nil means all N rows are live.
//
// Ownership contract (columnar): the column slices reachable through Cols
// either alias immutable base-table storage (zero-copy scan windows) or are
// output buffers owned by the producing operator. The Batch struct, its
// Cols headers, the column buffers of produced batches, and the Sel vector
// are ALL recycled by the producer as soon as the consumer asks for the
// next batch. Consumers must therefore copy values out (not retain Cols or
// Sel) before calling Next again; DrainVec and the materializing drains do
// exactly one such copy per row.
type Batch struct {
	Cols [][]int64
	N    int
	Sel  []int
}

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.Cols) }

// VecIterator is the batch-at-a-time (vectorized Volcano) operator
// interface. Next returns nil at end of stream.
type VecIterator interface {
	// Open prepares the operator (builds hash tables, sorts inputs,
	// launches scan workers).
	Open() error
	// Next returns the next batch, or nil at end of stream.
	Next() (*Batch, error)
	// Close releases operator state.
	Close() error
}

// DrainVec runs a vectorized iterator to completion and returns all rows.
// Each batch's live rows are copied out of the (recycled) columnar batch
// exactly once, into one backing allocation per batch; the returned rows
// are never reused and may be retained indefinitely.
func DrainVec(v VecIterator) ([]Row, error) {
	if err := v.Open(); err != nil {
		return nil, errors.Join(err, v.Close())
	}
	var out []Row
	for {
		b, err := v.Next()
		if err != nil {
			return nil, errors.Join(err, v.Close())
		}
		if b == nil {
			break
		}
		n, w := b.Len(), b.Width()
		if n == 0 {
			continue
		}
		buf := make([]int64, n*w)
		if b.Sel == nil {
			for c, col := range b.Cols {
				for i := 0; i < n; i++ {
					buf[i*w+c] = col[i]
				}
			}
		} else {
			for c, col := range b.Cols {
				for k, i := range b.Sel {
					buf[k*w+c] = col[i]
				}
			}
		}
		for i := 0; i < n; i++ {
			out = append(out, Row(buf[i*w:(i+1)*w:(i+1)*w]))
		}
	}
	return out, v.Close()
}

// CountVec runs a vectorized iterator to completion and returns the row
// count without retaining rows.
func CountVec(v VecIterator) (int64, error) {
	if err := v.Open(); err != nil {
		return 0, errors.Join(err, v.Close())
	}
	var n int64
	for {
		b, err := v.Next()
		if err != nil {
			return n, errors.Join(err, v.Close())
		}
		if b == nil {
			break
		}
		n += int64(b.Len())
	}
	return n, v.Close()
}

// ---- materialized columnar data ----

// colData is a materialized column-major row set: cols[c][i] is column c of
// row i, 0 <= i < n. It is the unit of blocking materialization (join build
// sides, sort runs, pipeline outputs) and of base-table storage handed out
// by the catalog.
type colData struct {
	cols [][]int64
	n    int
}

func newColData(width, capHint int) colData {
	cols := make([][]int64, width)
	for c := range cols {
		cols[c] = make([]int64, 0, capHint)
	}
	return colData{cols: cols}
}

func (d *colData) width() int { return len(d.cols) }

// window returns the zero-copy column windows of rows [lo, hi) into dst
// (reused across calls).
func (d *colData) window(dst [][]int64, lo, hi int) [][]int64 {
	dst = dst[:0]
	for _, col := range d.cols {
		dst = append(dst, col[lo:hi])
	}
	return dst
}

// appendBatch copies a batch's live rows onto the end of d, initializing
// the column set from the first batch.
func (d *colData) appendBatch(b *Batch) {
	if d.cols == nil {
		d.cols = make([][]int64, b.Width())
	}
	if b.Sel == nil {
		for c := range d.cols {
			d.cols[c] = append(d.cols[c], b.Cols[c][:b.N]...)
		}
	} else {
		for c := range d.cols {
			col, dst := b.Cols[c], d.cols[c]
			for _, i := range b.Sel {
				dst = append(dst, col[i])
			}
			d.cols[c] = dst
		}
	}
	d.n += b.Len()
}

// appendSel copies the selected rows of a column window set onto d.
func (d *colData) appendSel(cols [][]int64, n int, sel []int) {
	if d.cols == nil {
		d.cols = make([][]int64, len(cols))
	}
	if sel == nil {
		for c := range d.cols {
			d.cols[c] = append(d.cols[c], cols[c][:n]...)
		}
		d.n += n
		return
	}
	for c := range d.cols {
		col, dst := cols[c], d.cols[c]
		for _, i := range sel {
			dst = append(dst, col[i])
		}
		d.cols[c] = dst
	}
	d.n += len(sel)
}

// appendFrom concatenates another colData (the per-worker merge).
func (d *colData) appendFrom(o colData) {
	if d.cols == nil {
		d.cols = make([][]int64, o.width())
	}
	for c := range d.cols {
		d.cols[c] = append(d.cols[c], o.cols[c]...)
	}
	d.n += o.n
}

// row gathers row i into dst (grown as needed) — the row-compatibility
// primitive; hot paths never call it.
func (d *colData) row(dst Row, i int) Row {
	dst = dst[:0]
	for _, col := range d.cols {
		dst = append(dst, col[i])
	}
	return dst
}

// transposeRows converts row-major data (the Compiler.Data override path
// and test helpers) into columnar form.
func transposeRows(rows [][]int64, arity int) colData {
	d := newColData(arity, len(rows))
	for _, r := range rows {
		for c := range d.cols {
			d.cols[c] = append(d.cols[c], r[c])
		}
	}
	d.n = len(rows)
	return d
}

// colDrainer is implemented by operators that can materialize their entire
// output as colData without going through the batch stream. drainVecCols
// uses it as a fast path, so blocking consumers (hash-join build, merge
// join, sort) drain parallel scans and fused pipelines at full worker
// parallelism instead of serializing every batch through one consumer.
type colDrainer interface {
	drainCols() (colData, error)
}

// drainVecCols opens in, materializes every live row column-wise and closes
// it — the materializing primitive shared by sort, merge join, hash join
// builds and the pipeline's build sides.
func drainVecCols(in VecIterator) (colData, error) {
	if d, ok := in.(colDrainer); ok {
		return d.drainCols()
	}
	var out colData
	if err := in.Open(); err != nil {
		return out, errors.Join(err, in.Close())
	}
	for {
		b, err := in.Next()
		if err != nil {
			return out, errors.Join(err, in.Close())
		}
		if b == nil {
			break
		}
		out.appendBatch(b)
	}
	return out, in.Close()
}

// ---- row compatibility shim ----

type vecRowIter struct {
	v     VecIterator
	b     *Batch
	i     int
	alloc rowAlloc
}

// NewRowIterator adapts a vectorized operator tree to the row-at-a-time
// Iterator interface, so Drain/Count and every legacy consumer keep working
// on top of the columnar batch executor. Emitted rows are gathered out of
// the batch into carved storage (one allocation per BatchSize rows) and may
// be retained by the caller.
func NewRowIterator(v VecIterator) Iterator { return &vecRowIter{v: v} }

func (r *vecRowIter) Open() error { return r.v.Open() }

func (r *vecRowIter) Next() (Row, bool, error) {
	for {
		if r.b != nil && r.i < r.b.Len() {
			idx := r.i
			if r.b.Sel != nil {
				idx = r.b.Sel[r.i]
			}
			r.i++
			row := r.alloc.row(r.b.Width())
			for _, col := range r.b.Cols {
				row = append(row, col[idx])
			}
			return row, true, nil
		}
		b, err := r.v.Next()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		r.b, r.i = b, 0
	}
}

func (r *vecRowIter) Close() error { return r.v.Close() }

// rowAlloc carves output rows out of BatchSize-rows chunks, amortizing one
// allocation across a whole output batch. Carved rows are never reused, so
// consumers may retain them.
type rowAlloc struct {
	buf []int64
}

func (a *rowAlloc) row(w int) Row {
	if len(a.buf) < w {
		n := BatchSize * w
		if n < w {
			n = w
		}
		a.buf = make([]int64, n)
	}
	r := Row(a.buf[0:0:w])
	a.buf = a.buf[w:]
	return r
}

// ---- vectorized scan ----

type vecScanOp struct {
	data   colData
	filter ScanFilter
	pos    int
	batch  Batch
	sel    []int
}

// NewVecScan returns a serial vectorized filtering scan over column-major
// data (cols[c] must all have length n): each batch is a set of zero-copy
// column windows with a selection vector for the surviving rows. Structured
// conditions in the filter are evaluated with typed columnar kernels (one
// operator dispatch per batch over contiguous slices).
func NewVecScan(cols [][]int64, n int, filter ScanFilter) VecIterator {
	return &vecScanOp{data: colData{cols: cols, n: n}, filter: filter}
}

// NewVecScanRows is NewVecScan over row-major input, transposed once at
// construction — the Data-override and test-convenience path.
func NewVecScanRows(rows [][]int64, filter ScanFilter) VecIterator {
	var arity int
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	d := transposeRows(rows, arity)
	return &vecScanOp{data: d, filter: filter}
}

func (s *vecScanOp) Open() error { s.pos = 0; return nil }

func (s *vecScanOp) Next() (*Batch, error) {
	for s.pos < s.data.n {
		end := s.pos + BatchSize
		if end > s.data.n {
			end = s.data.n
		}
		lo := s.pos
		s.pos = end
		s.batch.Cols = s.data.window(s.batch.Cols, lo, end)
		s.batch.N = end - lo
		if s.filter.Empty() {
			s.batch.Sel = nil
			return &s.batch, nil
		}
		if s.sel == nil {
			s.sel = make([]int, 0, BatchSize)
		}
		s.sel = s.filter.SelCols(s.batch.Cols, s.batch.N, s.sel)
		if len(s.sel) == 0 {
			continue
		}
		s.batch.Sel = s.sel
		return &s.batch, nil
	}
	return nil, nil
}

func (s *vecScanOp) Close() error { return nil }

// ---- vectorized projection ----

type vecProjectOp struct {
	in    VecIterator
	cols  []int
	batch Batch
}

// NewVecProject returns vectorized column projection — with a columnar
// layout this is pure column-header shuffling, zero copies.
func NewVecProject(in VecIterator, cols []int) VecIterator {
	return &vecProjectOp{in: in, cols: cols}
}

func (p *vecProjectOp) Open() error { return p.in.Open() }

func (p *vecProjectOp) Next() (*Batch, error) {
	b, err := p.in.Next()
	if err != nil || b == nil {
		return nil, err
	}
	out := p.batch.Cols[:0]
	for _, c := range p.cols {
		out = append(out, b.Cols[c])
	}
	p.batch.Cols = out
	p.batch.N = b.N
	p.batch.Sel = b.Sel
	return &p.batch, nil
}

func (p *vecProjectOp) Close() error { return p.in.Close() }

// ---- vectorized sort ----

type vecSortOp struct {
	in    VecIterator
	col   int
	mem   *MemTracker // child tracker; Force-only (no external sort)
	data  colData
	pos   int
	batch Batch
}

// NewVecSort materializes and sorts its input by the given column, emitting
// dense zero-copy column windows of the sorted run. Sorting permutes a row
// index vector, then gathers each column once.
func NewVecSort(in VecIterator, col int) VecIterator { return &vecSortOp{in: in, col: col} }

func (s *vecSortOp) Open() error {
	data, err := drainVecCols(s.in)
	if err != nil {
		return err
	}
	// sortColsStable gathers into a second allocation; both copies are live
	// during the sort, then the input is dropped.
	in := colBytes(data.width(), data.n)
	s.mem.Force(2 * in)
	s.data = sortColsStable(data, s.col)
	s.mem.Release(in)
	s.pos = 0
	return nil
}

func (s *vecSortOp) Next() (*Batch, error) {
	if s.pos >= s.data.n {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > s.data.n {
		end = s.data.n
	}
	s.batch.Cols = s.data.window(s.batch.Cols, s.pos, end)
	s.batch.N = end - s.pos
	s.batch.Sel = nil
	s.pos = end
	return &s.batch, nil
}

func (s *vecSortOp) Close() error {
	s.data = colData{}
	s.mem.ReleaseAll()
	return nil
}

// ---- vectorized cardinality counter ----

type vecCounterOp struct {
	in VecIterator
	n  *int64
}

// NewVecCounter wraps a vectorized iterator and accumulates its output
// cardinality into n. The counter sits above any exchange, so counts stay
// exact (and race-free) under morsel-driven parallel scans.
func NewVecCounter(in VecIterator, n *int64) VecIterator { return &vecCounterOp{in: in, n: n} }

func (c *vecCounterOp) Open() error { return c.in.Open() }

func (c *vecCounterOp) Next() (*Batch, error) {
	b, err := c.in.Next()
	if b != nil {
		*c.n += int64(b.Len())
	}
	return b, err
}

func (c *vecCounterOp) Close() error { return c.in.Close() }

// drainCols forwards the parallel drain fast path through the counter,
// keeping the counted cardinality exact: the materialized row count is by
// definition the operator's output cardinality.
func (c *vecCounterOp) drainCols() (colData, error) {
	d, err := drainVecCols(c.in)
	*c.n += int64(d.n)
	return d, err
}
