// Package storage is the pluggable table storage layer beneath the catalog:
// a narrow Backend interface — columnar snapshots, batched append, segment
// scans with predicate pushdown, ordered secondary-index lookups, and
// data-version reporting — with two implementations.
//
// MemStore wraps the in-memory column mirror every table has always had. It
// keeps the zero-copy fast path exactly: the executor scans column windows
// straight over the snapshot arrays. What it adds is mutation safety — the
// snapshot is published behind one atomic pointer, so an Append never
// invalidates the columns an in-flight execution is reading (the old
// snapshot stays intact for its holders; see Snapshot).
//
// DiskStore is a log-structured persistent backend layered over a MemStore:
// every append is framed into a write-ahead log, and Flush compacts the
// unflushed tail into an immutable column-segment file — rows sorted by the
// table's clustered column, per-column zone maps (min/max) in the header,
// and sorted (key, rowid) secondary-index segments using an
// order-preserving int64 key encoding (see EncodeKey). On open, segments
// and the log replay into the memory snapshot, so serving reads are as fast
// as the pure in-memory store; the segment zone maps additionally let scans
// skip whole segments that a pushed-down predicate proves empty.
package storage

import (
	"fmt"
	"sync"
)

// CmpOp is a pushed-down comparison operator. The constants deliberately
// mirror relalg.CmpOp but are redeclared here so the storage layer depends
// on nothing above it.
type CmpOp uint8

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOp) String() string {
	switch o {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(o))
}

// Pred is one pushed-down scan predicate: column Col compared to the
// constant Val. Backends use predicates only to PRUNE (skip row ranges that
// provably contain no matching row); the caller still filters the returned
// batches, so a backend that ignores predicates is merely slower, never
// wrong.
type Pred struct {
	Col int
	Op  CmpOp
	Val int64
}

// Snapshot is an immutable column-major view of a store's rows:
// Cols[c][i] is row i's value in column c, valid for i < N. Later appends
// publish new snapshots without disturbing existing ones, so holders may
// keep reading (and hand out zero-copy windows) for as long as they like.
type Snapshot struct {
	Cols [][]int64
	N    int
}

// Backend is the storage interface a catalog table binds to.
type Backend interface {
	// Kind names the implementation ("mem", "disk") for logs and tests.
	Kind() string
	// Snapshot returns the current immutable column-major view.
	Snapshot() *Snapshot
	// Append adds rows (batched; each row len must equal the store width),
	// durably for persistent backends. The new rows are visible in
	// snapshots taken after Append returns.
	Append(rows [][]int64) error
	// ResetRows replaces the store's content wholesale from row-major data
	// — the catalog's Analyze/rebuild path. Persistent backends rewrite
	// their history at the next Flush when the content genuinely changed.
	ResetRows(rows [][]int64)
	// Scan returns a pooled batch iterator over the rows, pruned by the
	// predicates where zone maps allow, yielding zero-copy column windows
	// of at most batch rows (batch <= 0 uses a default). Callers must
	// Release the iterator when done.
	Scan(preds []Pred, batch int) *SegIter
	// ZoneCols returns the column offsets whose segment zone maps make
	// predicate pruning effective (the clustered column for a DiskStore),
	// or nil. The optimizer uses this to enumerate segment-pruned scans.
	ZoneCols() []int
	// OrderedIndex returns the persisted ordered secondary index on a
	// column, or nil when none exists or it does not cover every row
	// (e.g. after unflushed appends).
	OrderedIndex(col int) *OrderedIndex
	// LoadedVersion reports the data version persisted at the last
	// Flush (0 for volatile backends or a fresh directory).
	LoadedVersion() uint64
	// Flush persists everything appended so far together with the given
	// data version. A no-op for volatile backends.
	Flush(version uint64) error
	// Close releases file handles without flushing.
	Close() error
}

// DefaultBatchRows is the window size Scan uses when the caller passes
// batch <= 0. It matches the executor's batch size.
const DefaultBatchRows = 1024

// span is a half-open row range [lo, hi) of a snapshot retained by a scan.
type span struct{ lo, hi int }

// SegIter iterates a store's rows as zero-copy column windows of at most
// batchRows rows each, skipping segments the zone maps prune. Iterators are
// pooled; Release returns one for reuse.
type SegIter struct {
	snap      *Snapshot
	spans     []span
	i         int
	batchRows int
	win       [][]int64
	pruned    int // rows skipped by zone pruning
}

var segIterPool = sync.Pool{New: func() any { return &SegIter{} }}

// newSegIter assembles a pooled iterator over the retained spans.
func newSegIter(snap *Snapshot, spans []span, prunedRows, batch int) *SegIter {
	if batch <= 0 {
		batch = DefaultBatchRows
	}
	it := segIterPool.Get().(*SegIter)
	it.snap = snap
	it.spans = append(it.spans[:0], spans...)
	it.i = 0
	it.batchRows = batch
	it.pruned = prunedRows
	if cap(it.win) < len(snap.Cols) {
		it.win = make([][]int64, len(snap.Cols))
	}
	it.win = it.win[:len(snap.Cols)]
	return it
}

// Next returns the next window: up to batchRows rows of every column,
// zero-copy over the snapshot arrays. The returned slice headers are reused
// by the following Next call; the underlying data is immutable. ok is false
// when the scan is exhausted.
func (it *SegIter) Next() (cols [][]int64, n int, ok bool) {
	for it.i < len(it.spans) {
		sp := &it.spans[it.i]
		if sp.lo >= sp.hi {
			it.i++
			continue
		}
		hi := sp.lo + it.batchRows
		if hi > sp.hi {
			hi = sp.hi
		}
		for c := range it.win {
			it.win[c] = it.snap.Cols[c][sp.lo:hi:hi]
		}
		n = hi - sp.lo
		sp.lo = hi
		return it.win, n, true
	}
	return nil, 0, false
}

// PrunedRows reports how many rows the zone maps let this scan skip.
func (it *SegIter) PrunedRows() int { return it.pruned }

// Release returns the iterator to the pool. The iterator must not be used
// afterwards.
func (it *SegIter) Release() {
	it.snap = nil
	it.spans = it.spans[:0]
	for c := range it.win {
		it.win[c] = nil
	}
	segIterPool.Put(it)
}

// Zone is the min/max summary of one column over one segment.
type Zone struct {
	Min, Max int64
}

// excludes reports whether the predicate proves that NO value in [Min, Max]
// can satisfy it — the zone-map pruning test. It must stay conservative:
// false negatives cost a segment read, false positives lose rows.
func (z Zone) excludes(p Pred) bool {
	switch p.Op {
	case CmpEQ:
		return p.Val < z.Min || p.Val > z.Max
	case CmpNE:
		return z.Min == z.Max && z.Min == p.Val
	case CmpLT:
		return z.Min >= p.Val
	case CmpLE:
		return z.Min > p.Val
	case CmpGT:
		return z.Max <= p.Val
	case CmpGE:
		return z.Max < p.Val
	}
	return false
}

// prunes reports whether any predicate excludes the whole zone vector.
func prunes(zones []Zone, preds []Pred) bool {
	for _, p := range preds {
		if p.Col >= 0 && p.Col < len(zones) && zones[p.Col].excludes(p) {
			return true
		}
	}
	return false
}
