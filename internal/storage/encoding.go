package storage

import (
	"encoding/binary"
)

// Key encoding for index segments: an order-preserving mapping from int64 to
// 8 bytes such that bytes.Compare on encodings agrees with numeric order.
// Flipping the sign bit biases the value into unsigned space
// (math.MinInt64 -> 0x00.., -1 -> 0x7fff.., 0 -> 0x8000.., max -> 0xffff..),
// and big-endian layout makes lexicographic byte order equal numeric order.

// EncodeKey writes the order-preserving encoding of v into b[:8].
func EncodeKey(b []byte, v int64) {
	binary.BigEndian.PutUint64(b, uint64(v)^(1<<63))
}

// DecodeKey inverts EncodeKey.
func DecodeKey(b []byte) int64 {
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63))
}

// appendKey appends the order-preserving encoding of v to dst.
func appendKey(dst []byte, v int64) []byte {
	var b [8]byte
	EncodeKey(b[:], v)
	return append(dst, b[:]...)
}
