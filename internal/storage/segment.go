package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// File I/O for the three on-disk record kinds. Segments and index segments
// are written to a temporary name and renamed into place so readers never
// observe a partial file; the WAL is the only file appended in place, and
// its framing lets replay stop cleanly at a torn tail.

// writeSegment persists snapshot rows, in perm order, as one immutable
// column segment and returns the per-column zone maps written to its
// header.
func writeSegment(path string, snap *Snapshot, perm []int) ([]Zone, error) {
	width := len(snap.Cols)
	n := len(perm)
	zones := make([]Zone, width)
	for c, col := range snap.Cols {
		if n == 0 {
			continue
		}
		z := Zone{Min: col[perm[0]], Max: col[perm[0]]}
		for _, i := range perm[1:] {
			if v := col[i]; v < z.Min {
				z.Min = v
			} else if v > z.Max {
				z.Max = v
			}
		}
		zones[c] = z
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("storage: create segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var scratch [16]byte
	w.WriteString(segMagic)
	binary.LittleEndian.PutUint32(scratch[0:4], uint32(width))
	binary.LittleEndian.PutUint32(scratch[4:8], uint32(n))
	w.Write(scratch[:8])
	for _, z := range zones {
		binary.LittleEndian.PutUint64(scratch[0:8], uint64(z.Min))
		binary.LittleEndian.PutUint64(scratch[8:16], uint64(z.Max))
		w.Write(scratch[:16])
	}
	for _, col := range snap.Cols {
		for _, i := range perm {
			binary.LittleEndian.PutUint64(scratch[:8], uint64(col[i]))
			if _, err := w.Write(scratch[:8]); err != nil {
				break
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("storage: write segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("storage: sync segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("storage: close segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("storage: publish segment: %w", err)
	}
	return zones, nil
}

// readSegment loads a segment's zone maps and rows (row-major, in file
// order).
func readSegment(path string, width int) ([]Zone, [][]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:8]); err != nil {
		return nil, nil, fmt.Errorf("read magic: %w", err)
	}
	if string(hdr[:8]) != segMagic {
		return nil, nil, fmt.Errorf("bad magic %q", hdr[:8])
	}
	if _, err := io.ReadFull(r, hdr[:8]); err != nil {
		return nil, nil, fmt.Errorf("read header: %w", err)
	}
	w := int(binary.LittleEndian.Uint32(hdr[0:4]))
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if w != width {
		return nil, nil, fmt.Errorf("segment width %d, want %d", w, width)
	}
	zones := make([]Zone, width)
	for c := range zones {
		if _, err := io.ReadFull(r, hdr[:16]); err != nil {
			return nil, nil, fmt.Errorf("read zones: %w", err)
		}
		zones[c].Min = int64(binary.LittleEndian.Uint64(hdr[0:8]))
		zones[c].Max = int64(binary.LittleEndian.Uint64(hdr[8:16]))
	}
	flat := make([]int64, width*n)
	buf := make([]byte, 8*1024)
	for off := 0; off < len(flat); {
		want := (len(flat) - off) * 8
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, nil, fmt.Errorf("read data: %w", err)
		}
		for b := 0; b < want; b += 8 {
			flat[off] = int64(binary.LittleEndian.Uint64(buf[b : b+8]))
			off++
		}
	}
	rows := make([][]int64, n)
	rowFlat := make([]int64, n*width)
	for i := 0; i < n; i++ {
		row := rowFlat[i*width : (i+1)*width : (i+1)*width]
		for c := 0; c < width; c++ {
			row[c] = flat[c*n+i]
		}
		rows[i] = row
	}
	return zones, rows, nil
}

// writeIndexSegment persists the ordered (key, global row id) pairs for one
// column of a segment. base is the segment's starting global row position;
// the pair for perm position i gets row id base+i, matching where the row
// will sit after the next boot replays the segment.
func writeIndexSegment(path string, col int, snap *Snapshot, perm []int, base int) error {
	n := len(perm)
	keys := make([]int64, n)
	rows := make([]int64, n)
	vals := snap.Cols[col]
	for i, p := range perm {
		keys[i] = vals[p]
		rows[i] = int64(base + i)
	}
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return keys[ord[a]] < keys[ord[b]] })
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: create index segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var scratch [16]byte
	w.WriteString(ixMagic)
	binary.LittleEndian.PutUint32(scratch[0:4], uint32(col))
	binary.LittleEndian.PutUint32(scratch[4:8], uint32(n))
	w.Write(scratch[:8])
	for _, i := range ord {
		EncodeKey(scratch[0:8], keys[i])
		binary.LittleEndian.PutUint64(scratch[8:16], uint64(rows[i]))
		if _, err := w.Write(scratch[:16]); err != nil {
			break
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: write index segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: sync index segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: close index segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publish index segment: %w", err)
	}
	return nil
}

// readIndexSegment loads one index segment's (key, row id) pairs in key
// order.
func readIndexSegment(path string, col int) (keys, rows []int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:8]); err != nil {
		return nil, nil, fmt.Errorf("read magic: %w", err)
	}
	if string(hdr[:8]) != ixMagic {
		return nil, nil, fmt.Errorf("bad magic %q", hdr[:8])
	}
	if _, err := io.ReadFull(r, hdr[:8]); err != nil {
		return nil, nil, fmt.Errorf("read header: %w", err)
	}
	if c := int(binary.LittleEndian.Uint32(hdr[0:4])); c != col {
		return nil, nil, fmt.Errorf("index segment is for column %d, want %d", c, col)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	keys = make([]int64, n)
	rows = make([]int64, n)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, hdr[:16]); err != nil {
			return nil, nil, fmt.Errorf("read entries: %w", err)
		}
		keys[i] = DecodeKey(hdr[0:8])
		rows[i] = int64(binary.LittleEndian.Uint64(hdr[8:16]))
	}
	return keys, rows, nil
}

// writeWALRecord appends one framed batch: [u32 row count][rows × width ×
// int64], all little-endian.
func writeWALRecord(f *os.File, rows [][]int64) error {
	width := len(rows[0])
	buf := make([]byte, 4+len(rows)*width*8)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(rows)))
	off := 4
	for _, row := range rows {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[off:off+8], uint64(v))
			off += 8
		}
	}
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	return nil
}

// replayWAL feeds every complete record's rows to fn, in order, stopping
// silently at a torn tail. It returns the number of rows replayed.
func replayWAL(path string, width int, fn func(rows [][]int64) error) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: open wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	total := 0
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return total, nil // clean EOF or torn length prefix
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		body := make([]byte, n*width*8)
		if _, err := io.ReadFull(r, body); err != nil {
			return total, nil // torn record body
		}
		rows := make([][]int64, n)
		flat := make([]int64, n*width)
		for i := 0; i < n; i++ {
			row := flat[i*width : (i+1)*width : (i+1)*width]
			for c := 0; c < width; c++ {
				row[c] = int64(binary.LittleEndian.Uint64(body[(i*width+c)*8:]))
			}
			rows[i] = row
		}
		if err := fn(rows); err != nil {
			return total, err
		}
		total += n
	}
}

// walGoodPrefix returns the byte length of the longest prefix of the log
// made of complete records, so a torn tail can be truncated before new
// appends.
func walGoodPrefix(path string, width int) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: open wal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("storage: stat wal: %w", err)
	}
	size := info.Size()
	var good int64
	var hdr [4]byte
	for {
		if _, err := f.ReadAt(hdr[:], good); err != nil {
			return good, nil
		}
		rec := 4 + int64(binary.LittleEndian.Uint32(hdr[:]))*int64(width)*8
		if good+rec > size {
			return good, nil
		}
		good += rec
	}
}
