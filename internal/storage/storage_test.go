package storage

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func row(vs ...int64) []int64 { return vs }

// collect drains a scan into row-major form (arrival order of the windows).
func collect(it *SegIter, width int) [][]int64 {
	defer it.Release()
	var out [][]int64
	for {
		cols, n, ok := it.Next()
		if !ok {
			return out
		}
		for i := 0; i < n; i++ {
			r := make([]int64, width)
			for c := range cols {
				r[c] = cols[c][i]
			}
			out = append(out, r)
		}
	}
}

// sortRows orders rows lexicographically so multisets compare with
// reflect.DeepEqual.
func sortRows(rows [][]int64) {
	sort.Slice(rows, func(a, b int) bool {
		for c := range rows[a] {
			if rows[a][c] != rows[b][c] {
				return rows[a][c] < rows[b][c]
			}
		}
		return false
	})
}

func TestEncodeKeyPreservesOrder(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1e12, -2, -1, 0, 1, 2, 7, 1e12, math.MaxInt64 - 1, math.MaxInt64}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		vals = append(vals, rng.Int63()-rng.Int63())
	}
	var a, b [8]byte
	for _, x := range vals {
		for _, y := range vals {
			EncodeKey(a[:], x)
			EncodeKey(b[:], y)
			cmp := bytes.Compare(a[:], b[:])
			want := 0
			if x < y {
				want = -1
			} else if x > y {
				want = 1
			}
			if cmp != want {
				t.Fatalf("EncodeKey order broken: %d vs %d -> %d, want %d", x, y, cmp, want)
			}
		}
		if got := DecodeKey(a[:]); got != x {
			t.Fatalf("DecodeKey(EncodeKey(%d)) = %d", x, got)
		}
	}
}

func TestMemStoreSnapshotIsolation(t *testing.T) {
	s := NewMemStore(2)
	if err := s.Append([][]int64{row(1, 10), row(2, 20)}); err != nil {
		t.Fatal(err)
	}
	old := s.Snapshot()
	if err := s.Append([][]int64{row(3, 30)}); err != nil {
		t.Fatal(err)
	}
	if old.N != 2 {
		t.Fatalf("old snapshot N changed: %d", old.N)
	}
	if old.Cols[0][0] != 1 || old.Cols[1][1] != 20 {
		t.Fatalf("old snapshot data changed: %v", old.Cols)
	}
	now := s.Snapshot()
	if now.N != 3 || now.Cols[0][2] != 3 || now.Cols[1][2] != 30 {
		t.Fatalf("new snapshot wrong: N=%d cols=%v", now.N, now.Cols)
	}
}

func TestMemStoreConcurrentAppendScan(t *testing.T) {
	s := NewMemStore(2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 500; i++ {
			if err := s.Append([][]int64{row(i, i*2)}); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		rows := collect(s.Scan(nil, 64), 2)
		for _, r := range rows {
			if r[1] != r[0]*2 {
				t.Fatalf("torn row observed: %v", r)
			}
		}
	}
	wg.Wait()
	if got := s.Snapshot().N; got != 500 {
		t.Fatalf("final N = %d, want 500", got)
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, "t", 2, 0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{row(3, 30), row(1, 10), row(2, 20)}
	if err := s.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(7); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDiskStore(dir, "t", 2, 0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.LoadedVersion(); got != 7 {
		t.Fatalf("LoadedVersion = %d, want 7", got)
	}
	got := collect(s2.Scan(nil, 0), 2)
	// The flushed segment is sorted by column 0.
	if !reflect.DeepEqual(got, [][]int64{row(1, 10), row(2, 20), row(3, 30)}) {
		t.Fatalf("reloaded rows = %v", got)
	}
	ix := s2.OrderedIndex(1)
	if ix == nil {
		t.Fatal("no ordered index after clean reload")
	}
	if ids := ix.Lookup(20); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Lookup(20) = %v, want [1]", ids)
	}
	if ids := ix.RowIDs(); !reflect.DeepEqual(ids, []int64{0, 1, 2}) {
		t.Fatalf("RowIDs = %v", ids)
	}
	// An unflushed append invalidates the persisted index.
	if err := s2.Append([][]int64{row(9, 90)}); err != nil {
		t.Fatal(err)
	}
	if s2.OrderedIndex(1) != nil {
		t.Fatal("index survived an unflushed append")
	}
}

func TestDiskStoreWALReplayAndTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, "t", 2, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([][]int64{row(1, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([][]int64{row(2, 20), row(3, 30)}); err != nil {
		t.Fatal(err)
	}
	// No Flush: rows live only in the log.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append a truncated record.
	wal := filepath.Join(dir, walName)
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{5, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenDiskStore(dir, "t", 2, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s2.Scan(nil, 0), 2)
	if !reflect.DeepEqual(got, [][]int64{row(1, 10), row(2, 20), row(3, 30)}) {
		t.Fatalf("replayed rows = %v", got)
	}
	// The torn tail was truncated; appending and reloading again is clean.
	if err := s2.Append([][]int64{row(4, 40)}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenDiskStore(dir, "t", 2, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Snapshot().N; got != 4 {
		t.Fatalf("rows after torn-tail recovery = %d, want 4", got)
	}
}

func TestDiskStoreZonePruningDifferential(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, "t", 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var all [][]int64
	// Several flushes build several segments with distinct key ranges, so
	// zone maps genuinely prune.
	for seg := 0; seg < 4; seg++ {
		var batch [][]int64
		for i := 0; i < 300; i++ {
			k := int64(seg*1000) + rng.Int63n(900)
			batch = append(batch, row(k, rng.Int63n(50)))
		}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(uint64(seg + 1)); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
	}
	// Plus an unflushed tail that can never be pruned.
	tail := [][]int64{row(5, 1), w2(2500, 2)}
	if err := s.Append(tail); err != nil {
		t.Fatal(err)
	}
	all = append(all, tail...)

	preds := [][]Pred{
		nil,
		{{Col: 0, Op: CmpLT, Val: 1000}},
		{{Col: 0, Op: CmpGE, Val: 3000}},
		{{Col: 0, Op: CmpEQ, Val: 2500}},
		{{Col: 0, Op: CmpGT, Val: 1500}, {Col: 0, Op: CmpLE, Val: 2200}},
		{{Col: 0, Op: CmpLT, Val: -1}},
		{{Col: 1, Op: CmpGE, Val: 25}}, // non-zone column: no pruning, still correct
	}
	for pi, ps := range preds {
		it := s.Scan(ps, 97)
		prunedRows := it.PrunedRows()
		got := collect(it, 2)
		// Apply the predicates exactly to both sides; pruning must never
		// drop a matching row.
		want := filterRows(all, ps)
		gotF := filterRows(got, ps)
		sortRows(want)
		sortRows(gotF)
		if !reflect.DeepEqual(gotF, want) {
			t.Fatalf("pred set %d: pruned scan lost/added rows (got %d want %d)", pi, len(gotF), len(want))
		}
		if len(got)+prunedRows != len(all) {
			t.Fatalf("pred set %d: scanned %d + pruned %d != total %d", pi, len(got), prunedRows, len(all))
		}
		if pi == 1 && prunedRows == 0 {
			t.Fatal("range predicate pruned nothing across disjoint segments")
		}
	}
	s.Close()
}

func w2(a, b int64) []int64 { return []int64{a, b} }

func filterRows(rows [][]int64, preds []Pred) [][]int64 {
	var out [][]int64
	for _, r := range rows {
		ok := true
		for _, p := range preds {
			v := r[p.Col]
			switch p.Op {
			case CmpEQ:
				ok = v == p.Val
			case CmpNE:
				ok = v != p.Val
			case CmpLT:
				ok = v < p.Val
			case CmpLE:
				ok = v <= p.Val
			case CmpGT:
				ok = v > p.Val
			case CmpGE:
				ok = v >= p.Val
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, append([]int64(nil), r...))
		}
	}
	return out
}

func TestDiskStoreResetRows(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, "t", 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([][]int64{row(1), row(2), row(3)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(1); err != nil {
		t.Fatal(err)
	}
	// Same row count: the analyze path. Segments survive.
	s.ResetRows([][]int64{row(1), row(2), row(3)})
	if got := len(s.segs); got != 1 {
		t.Fatalf("same-N reset dropped segments: %d", got)
	}
	// Different count: wholesale replacement; next flush rewrites.
	s.ResetRows([][]int64{row(7), row(8)})
	if err := s.Flush(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(dir, "t", 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collect(s2.Scan(nil, 0), 1)
	if !reflect.DeepEqual(got, [][]int64{row(7), row(8)}) {
		t.Fatalf("rows after wholesale reset = %v", got)
	}
	if len(s2.segs) != 1 {
		t.Fatalf("expected 1 rewritten segment, have %d", len(s2.segs))
	}
}

// TestDiskStoreFlushCrashWindowNoDuplication simulates a crash between
// Flush publishing the new manifest and removing the superseded log: the
// old log survives on disk holding the very rows the new segment already
// covers. Replay must not duplicate them.
func TestDiskStoreFlushCrashWindowNoDuplication(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, "t", 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([][]int64{row(3, 30), row(1, 10), row(2, 20)}); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil || len(walBytes) == 0 {
		t.Fatalf("expected a populated bootstrap log: %v (%d bytes)", err, len(walBytes))
	}
	if err := s.Flush(1); err != nil {
		t.Fatal(err)
	}
	// Resurrect the superseded log with its pre-flush content, as if the
	// post-publish Remove never landed.
	if err := os.WriteFile(filepath.Join(dir, walName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDiskStore(dir, "t", 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s2.Scan(nil, 0), 2)
	if !reflect.DeepEqual(got, [][]int64{row(1, 10), row(2, 20), row(3, 30)}) {
		t.Fatalf("rows after crash-window recovery = %v (stale log replayed?)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, walName)); !os.IsNotExist(err) {
		t.Fatalf("stale log not cleaned at open: %v", err)
	}
	// Appends after the flush land in the rotated, manifest-named log and
	// replay across another reboot.
	if err := s2.Append([][]int64{row(4, 40)}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenDiskStore(dir, "t", 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Snapshot().N; got != 4 {
		t.Fatalf("rows after rotated-log replay = %d, want 4", got)
	}
}

// TestDiskStoreResetRowsSameCountNewContent covers the wholesale
// replacement that keeps the row count (a full sliding window): segments
// must be rewritten at the next flush and the persisted indexes dropped.
func TestDiskStoreResetRowsSameCountNewContent(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, "t", 1, 0, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([][]int64{row(1), row(2), row(3)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(dir, "t", 1, 0, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if s2.OrderedIndex(0) == nil {
		t.Fatal("no ordered index after clean reload")
	}
	s2.ResetRows([][]int64{row(7), row(8), row(9)})
	if s2.OrderedIndex(0) != nil {
		t.Fatal("index survived a same-count content change")
	}
	// The old zones (1..3) would prune this predicate; the new rows all
	// match it.
	got := collect(s2.Scan([]Pred{{Col: 0, Op: CmpGE, Val: 7}}, 0), 1)
	if len(filterRows(got, []Pred{{Col: 0, Op: CmpGE, Val: 7}})) != 3 {
		t.Fatalf("stale zones pruned replaced rows: scan returned %v", got)
	}
	if err := s2.Flush(2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenDiskStore(dir, "t", 1, 0, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	rows := collect(s3.Scan(nil, 0), 1)
	if !reflect.DeepEqual(rows, [][]int64{row(7), row(8), row(9)}) {
		t.Fatalf("restart resurrected pre-reset rows: %v", rows)
	}
}

// TestDiskStoreScanConcurrentResetRows races pruned scans against
// wholesale resets (and periodic flushes). Every scan must observe one
// generation, whole: the snapshot and the segment metadata used to prune
// it are captured atomically.
func TestDiskStoreScanConcurrentResetRows(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, "t", 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 256
	gen := func(g int64) [][]int64 {
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = row(int64(i)+g*10000, g)
		}
		return rows
	}
	if err := s.Append(gen(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 400; k++ {
			s.ResetRows(gen(int64(k % 2)))
			if k%64 == 63 {
				if err := s.Flush(uint64(k)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	preds := []Pred{{Col: 0, Op: CmpLT, Val: 5000}} // all of gen 0, none of gen 1
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		it := s.Scan(preds, 64)
		pruned := it.PrunedRows()
		got := collect(it, 2)
		if len(got)+pruned != n {
			t.Fatalf("scanned %d + pruned %d != %d", len(got), pruned, n)
		}
		match := filterRows(got, preds)
		for _, r := range match {
			if r[1] != 0 {
				t.Fatalf("generations mixed in one scan: %v", r)
			}
		}
		if len(match) != 0 && len(match) != n {
			t.Fatalf("scan lost rows of its own generation: %d of %d", len(match), n)
		}
	}
}

func TestOrderedIndexRange(t *testing.T) {
	ix := NewOrderedIndex(0, []int64{5, 1, 3, 3, 9}, []int64{0, 1, 2, 3, 4})
	if ids := ix.Lookup(3); !reflect.DeepEqual(ids, []int64{2, 3}) {
		t.Fatalf("Lookup(3) = %v", ids)
	}
	if ids := ix.Range(2, 5); !reflect.DeepEqual(ids, []int64{2, 3, 0}) {
		t.Fatalf("Range(2,5) = %v", ids)
	}
	if ids := ix.Range(10, 20); ids != nil {
		t.Fatalf("Range(10,20) = %v, want nil", ids)
	}
}
